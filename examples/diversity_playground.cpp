// DPP playground: the probability kernels and determinantal machinery the
// dHMM prior is built on, used directly — kernel values vs row similarity,
// the repulsion property of k-DPP samples, and the diversity objective's
// response to moving rows apart.
//
// Build & run:  ./build/examples/diversity_playground
#include <cmath>
#include <cstdio>
#include <map>

#include "dpp/logdet.h"
#include "dpp/product_kernel.h"
#include "dpp/sampling.h"
#include "eval/diversity.h"
#include "optim/simplex_projection.h"
#include "prob/rng.h"

int main() {
  using namespace dhmm;

  // 1. The normalized probability product kernel (Eq. 2/5) between two
  //    categorical distributions, as they interpolate from identical to
  //    disjoint.
  std::printf("--- kernel vs row overlap (rho = 0.5) ---\n");
  std::printf("%8s %12s %16s\n", "overlap", "K~(p,q)", "Bhattacharyya dist");
  for (double w : {1.0, 0.75, 0.5, 0.25, 0.0}) {
    // p fixed; q moves mass from p's support to the complement.
    linalg::Matrix rows{{0.5, 0.5, 0.0, 0.0},
                        {0.5 * w, 0.5 * w, 0.5 * (1 - w), 0.5 * (1 - w)}};
    linalg::Matrix kernel = dpp::NormalizedKernel(rows);
    std::printf("%8.2f %12.4f %16.4f\n", w, kernel(0, 1),
                eval::BhattacharyyaDistance(rows.Row(0), rows.Row(1)));
  }

  // 2. log det K~ rewards diverse row sets (the dHMM prior, Eq. 6).
  std::printf("\n--- log det K~ vs row concentration ---\n");
  prob::Rng rng(1);
  for (double conc : {50.0, 5.0, 1.0, 0.2}) {
    linalg::Matrix a = rng.RandomStochasticMatrix(4, 4, conc);
    std::printf("Dirichlet(%5.1f) rows:  log det K~ = %9.4f   "
                "avg B-dist = %.4f\n",
                conc, dpp::LogDetNormalizedKernel(a),
                eval::AveragePairwiseDiversity(a));
  }

  // 3. k-DPP repulsion: ground set with two near-duplicate items; count how
  //    often a 2-DPP picks the duplicate pair vs a diverse pair.
  std::printf("\n--- k-DPP repulsion ---\n");
  linalg::Matrix l{{1.0, 0.95, 0.10}, {0.95, 1.0, 0.10}, {0.10, 0.10, 1.0}};
  std::map<std::pair<size_t, size_t>, int> counts;
  const int trials = 5000;
  for (int t = 0; t < trials; ++t) {
    auto s = dpp::SampleKDpp(l, 2, rng);
    ++counts[{s[0], s[1]}];
  }
  for (const auto& [pair, count] : counts) {
    std::printf("subset {%zu,%zu}: %5.3f  (exact k-DPP prob %5.3f)\n",
                pair.first, pair.second,
                static_cast<double>(count) / trials,
                std::exp(dpp::KDppLogProb(l, {pair.first, pair.second})));
  }
  std::printf("items 0 and 1 are 0.95-similar: the k-DPP almost never "
              "selects them together.\n");

  // 4. The gradient of the diversity objective pushes similar rows apart.
  std::printf("\n--- gradient ascent on log det K~ ---\n");
  linalg::Matrix a{{0.52, 0.48}, {0.48, 0.52}};
  for (int step = 0; step < 5; ++step) {
    linalg::Matrix grad;
    dpp::GradLogDetNormalizedKernel(a, 0.5, &grad);
    std::printf("step %d: rows (%.3f, %.3f) / (%.3f, %.3f)   log det = %.4f\n",
                step, a(0, 0), a(0, 1), a(1, 0), a(1, 1),
                dpp::LogDetNormalizedKernel(a));
    a += grad * 0.02;
    optim::ProjectRowsToSimplex(&a);  // keep rows on the probability simplex
  }
  return 0;
}
