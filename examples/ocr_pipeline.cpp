// Supervised OCR end to end (paper §4.2.2): render a corpus of noisy 16x8
// glyph words, train the supervised diversified HMM (counting + tethered
// DPP refinement of the letter-transition matrix), decode held-out words,
// and show some decodes with their glyph images.
//
// Flags: --alpha=<double> (default 10)  --tether=<double> (default 1e5)
//        --words=<int>  --noise=<double>
#include <cstdio>
#include <memory>

#include "core/supervised_diversified.h"
#include "data/ocr.h"
#include "eval/metrics.h"
#include "hmm/inference.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace dhmm;
  FlagParser flags;
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  // 1. Dataset: noisy renderings of English words.
  data::OcrOptions oopts;
  oopts.num_words = static_cast<size_t>(flags.GetInt("words", 1500));
  oopts.pixel_flip = flags.GetDouble("noise", 0.10);
  oopts.seed = 5;
  data::OcrDataset ds = GenerateOcrDataset(oopts);

  // 90/10 train/test split.
  hmm::Dataset<prob::BinaryObs> train, test;
  for (size_t i = 0; i < ds.words.size(); ++i) {
    (i % 10 == 0 ? test : train).push_back(ds.words[i]);
  }
  std::printf("train %zu words, test %zu words, noise %.2f\n", train.size(),
              test.size(), oopts.pixel_flip);

  // 2. Supervised diversified training (Eq. 8).
  std::unique_ptr<prob::EmissionModel<prob::BinaryObs>> emission =
      std::make_unique<prob::BernoulliEmission>(
          linalg::Matrix(data::kNumLetters, data::kGlyphDims, 0.5));
  core::SupervisedDiversifiedOptions opts;
  opts.alpha = flags.GetDouble("alpha", 10.0);
  opts.tether_weight = flags.GetDouble("tether", 1e5);
  opts.counting.transition_pseudo_count = 0.1;
  opts.counting.initial_pseudo_count = 0.1;
  st = flags.VerifyAllRead();
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  core::SupervisedDiversifiedDiagnostics diag;
  hmm::HmmModel<prob::BinaryObs> model = core::FitSupervisedDiversified(
      train, data::kNumLetters, std::move(emission), opts, &diag);
  std::printf("A refined: log det K~ %.4f -> %.4f, drift ||A - A0|| = %.5f\n",
              diag.log_det_a0, diag.log_det_a, diag.drift);

  // 3. Decode test words; per-letter and per-word accuracy.
  eval::LabelSequences gold, pred;
  size_t words_exact = 0;
  for (const auto& seq : test) {
    auto path = hmm::Viterbi(model.pi, model.a,
                             model.emission->LogProbTable(seq.obs))
                    .path;
    words_exact += path == seq.labels;
    pred.push_back(path);
    gold.push_back(seq.labels);
  }
  std::printf("letter accuracy: %.4f   exact-word rate: %.4f\n",
              eval::FrameAccuracy(pred, gold),
              static_cast<double>(words_exact) / test.size());

  // 4. Show a couple of decodes with their glyphs.
  for (size_t i = 0; i < 2 && i < test.size(); ++i) {
    std::printf("\ntruth: %-14s decoded: %s\n",
                data::LabelsToWord(test[i].labels).c_str(),
                data::LabelsToWord(pred[i]).c_str());
    std::printf("%s", data::RenderWordAscii(test[i].obs).c_str());
  }
  return 0;
}
