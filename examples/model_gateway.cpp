// The multi-model serving stack end to end: register several models in a
// ModelRegistry (one pinned, a residency cap forcing LRU eviction), stand
// up the wire front-end on a loopback port, and talk to it with the
// binary protocol — healthy decodes against every model, a hot reload
// from an atomically-saved checkpoint mid-traffic, and the typed error
// responses (unknown model, expired deadline) a client must handle.
//
// Flags: --models=<int> (default 3)  --max-resident=<int> (default 2)
//        --requests=<int> (default 12, per model)
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "hmm/model.h"
#include "hmm/sampler.h"
#include "hmm/sequence.h"
#include "hmm/serialization.h"
#include "prob/gaussian_emission.h"
#include "prob/rng.h"
#include "serve/frontend.h"
#include "serve/model_registry.h"
#include "serve/wire_client.h"
#include "util/flags.h"

namespace {

using namespace dhmm;

std::shared_ptr<const hmm::HmmModel<double>> MakeModel(size_t k,
                                                       uint64_t seed) {
  prob::Rng rng(seed);
  linalg::Vector mu(k);
  linalg::Vector sigma(k, 0.8);
  for (size_t i = 0; i < k; ++i) mu[i] = static_cast<double>(i);
  return std::make_shared<const hmm::HmmModel<double>>(
      rng.DirichletSymmetric(k, 2.0), rng.RandomStochasticMatrix(k, k, 2.0),
      std::make_unique<prob::GaussianEmission>(mu, sigma));
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const int models_flag = flags.GetInt("models", 3);
  const int resident_flag = flags.GetInt("max-resident", 2);
  const int requests_flag = flags.GetInt("requests", 12);
  st = flags.VerifyAllRead();
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (models_flag < 1 || models_flag > 64 || resident_flag < 1 ||
      requests_flag < 1 || requests_flag > 100000) {
    std::fprintf(stderr, "--models in [1,64], --max-resident >= 1, "
                         "--requests in [1,100000]\n");
    return 1;
  }
  const size_t num_models = static_cast<size_t>(models_flag);
  const size_t per_model = static_cast<size_t>(requests_flag);

  // 1. A fleet of per-tenant models: each goes through an atomic
  // checkpoint save so the registry can cold-reload it after eviction.
  serve::ModelRegistryOptions ropts;
  ropts.max_resident = static_cast<size_t>(resident_flag);
  serve::ModelRegistry<double> registry(ropts);
  std::vector<std::shared_ptr<const hmm::HmmModel<double>>> models;
  for (size_t m = 0; m < num_models; ++m) {
    auto model = MakeModel(3 + m % 3, 100 + m);
    const std::string path =
        "/tmp/dhmm_gateway_" + std::to_string(m + 1) + ".txt";
    st = hmm::SaveHmmToFile(*model, path);
    if (!st.ok()) {
      std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
      return 1;
    }
    // Model 1 is the hot tenant: pinned, never LRU-evicted.
    st = registry.RegisterFromFile(m + 1, path, /*pinned=*/m == 0);
    if (!st.ok()) {
      std::fprintf(stderr, "register failed: %s\n", st.ToString().c_str());
      return 1;
    }
    models.push_back(std::move(model));
  }
  std::printf("registered %zu models, %zu resident (cap %zu, model 1 "
              "pinned)\n",
              num_models, registry.resident_count(), ropts.max_resident);

  // 2. The wire front-end on an ephemeral loopback port.
  serve::FrontEnd<double> frontend(&registry);
  st = frontend.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "start failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("front-end listening on 127.0.0.1:%u\n", frontend.port());

  serve::WireClient client;
  st = client.Connect(frontend.port());
  if (!st.ok()) {
    std::fprintf(stderr, "connect failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // 3. Traffic round-robined over every model — evicted models come back
  // transparently from their checkpoints.
  prob::Rng rng(7);
  uint64_t next_id = 1;
  for (size_t m = 0; m < num_models; ++m) {
    const std::vector<double> obs =
        hmm::SampleSequence(*models[m], 24, rng).obs;
    double sum_ll = 0.0;
    for (size_t i = 0; i < per_model; ++i) {
      serve::DecodeRequest<double> req;
      req.request_id = next_id++;
      req.model = m + 1;
      req.kind = serve::DecodeKind::kLogLikelihood;
      req.obs = &obs;
      serve::DecodeResponse resp;
      st = client.Call(req, &resp);
      if (!st.ok() || !resp.status.ok()) {
        std::fprintf(stderr, "request failed: %s / %s\n",
                     st.ToString().c_str(), resp.status.ToString().c_str());
        return 1;
      }
      sum_ll += resp.value;
    }
    std::printf("model %zu: %zu decodes, mean loglik %.3f (version %llu)\n",
                m + 1, per_model,
                sum_ll / static_cast<double>(per_model),
                static_cast<unsigned long long>(
                    registry.ModelVersion(m + 1).value_or(0)));
  }

  // 4. Hot reload model 1 from its checkpoint mid-traffic.
  st = registry.ReloadModel(1);
  if (!st.ok()) {
    std::fprintf(stderr, "reload failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("model 1 hot-reloaded: version %llu, still %zu resident\n",
              static_cast<unsigned long long>(
                  registry.ModelVersion(1).value_or(0)),
              registry.resident_count());

  // 5. The typed error surface every client must handle.
  {
    const std::vector<double> obs = {0.5, 1.5};
    serve::DecodeRequest<double> req;
    req.request_id = next_id++;
    req.model = 999;  // never registered
    req.obs = &obs;
    serve::DecodeResponse resp;
    if (client.Call(req, &resp).ok()) {
      std::printf("unknown model -> %s\n", resp.status.ToString().c_str());
    }
    req.request_id = next_id++;
    req.model = 1;
    req.deadline_micros = 1;  // expires while queued
    frontend.PauseDispatch();
    if (client.Send(req).ok()) {
      frontend.ResumeDispatch();
      if (client.Receive(&resp).ok()) {
        std::printf("expired deadline -> %s\n",
                    resp.status.ToString().c_str());
      }
    }
  }

  std::printf("served=%llu shed=%llu deadline_expired=%llu "
              "routing_errors=%llu\n",
              static_cast<unsigned long long>(frontend.requests_served()),
              static_cast<unsigned long long>(frontend.requests_shed()),
              static_cast<unsigned long long>(frontend.deadline_expired()),
              static_cast<unsigned long long>(frontend.routing_errors()));
  return 0;
}
