// The train→serve loop end to end: hold many low-rate sensor streams
// resident in a serve::SessionManager, label every frame online with
// fixed-lag smoothing, feed the same posteriors into a
// core::IncrementalEmTrainer, and periodically Step() the trainer and
// hot-swap the improved snapshot back into the manager — the model gets
// better from the very traffic it is serving. An idle-eviction sweep at
// the end shows the LRU policy reclaiming finished streams.
//
// Flags: --streams=<int> (default 64)  --frames=<int> (default 200)
//        --lag=<int> (default 6)  --steps=<int> (default 4)
#include <cstdio>
#include <memory>
#include <vector>

#include "core/incremental_em.h"
#include "data/toy.h"
#include "hmm/trainer.h"
#include "serve/session_manager.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace dhmm;
  FlagParser flags;
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const int streams_flag = flags.GetInt("streams", 64);
  const int frames_flag = flags.GetInt("frames", 200);
  const int lag_flag = flags.GetInt("lag", 6);
  const int steps_flag = flags.GetInt("steps", 4);
  st = flags.VerifyAllRead();
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (streams_flag < 1 || streams_flag > 1000000 || frames_flag < 1 ||
      frames_flag > 1000000 || lag_flag < 1 || lag_flag > 1000 ||
      steps_flag < 1 || steps_flag > 1000) {
    std::fprintf(stderr, "flag out of range\n");
    return 1;
  }
  const size_t num_streams = static_cast<size_t>(streams_flag);
  const size_t num_frames = static_cast<size_t>(frames_flag);

  // 1. Simulated sensor fleet: toy-chain streams the serving model has
  // never been fit to (a random initializer stands in for a stale
  // checkpoint).
  prob::Rng data_rng(7);
  hmm::Dataset<double> streams =
      data::GenerateToyDataset(0.5, num_streams, num_frames, data_rng);
  prob::Rng init_rng(8);
  auto serving = std::make_shared<const hmm::HmmModel<double>>(
      data::ToyRandomInit(init_rng));
  const double before = hmm::DatasetLogLikelihood(*serving, streams);

  // 2. One resident session per stream, with the incremental trainer
  // attached: every emitted label also contributes its smoothed posterior
  // to the next M-step.
  core::IncrementalEmOptions topts;
  topts.alpha = 0.5;  // the paper's diversified transition update, online
  core::IncrementalEmTrainer<double> trainer(serving, topts);
  serve::SessionManagerOptions sopts;
  sopts.lag = static_cast<size_t>(lag_flag);
  serve::SessionManager<double> manager(serving, sopts);
  manager.AttachTrainer(&trainer);

  std::vector<serve::SessionHandle> handles(num_streams);
  for (size_t s = 0; s < num_streams; ++s) {
    auto created = manager.CreateSession();
    if (!created.ok()) {
      std::fprintf(stderr, "%s\n", created.status().ToString().c_str());
      return 1;
    }
    handles[s] = created.value();
  }

  // 3. Interleave the streams frame by frame (round-robin, the way a
  // gateway sees them) and Step() the trainer on a fixed cadence,
  // hot-swapping each published snapshot into the manager. Live sessions
  // keep the snapshot they started on; the swap pays off as sessions
  // recycle.
  const size_t frames_per_step =
      num_streams * num_frames / static_cast<size_t>(steps_flag);
  size_t until_step = frames_per_step;
  size_t labels = 0;
  int swaps = 0;
  for (size_t t = 0; t < num_frames; ++t) {
    for (size_t s = 0; s < num_streams; ++s) {
      int label = -1;
      st = manager.Push(handles[s], streams[s].obs[t], &label);
      if (!st.ok()) {
        std::fprintf(stderr, "stream %zu: %s\n", s, st.ToString().c_str());
        return 1;
      }
      if (label >= 0) ++labels;
      if (--until_step == 0) {
        until_step = frames_per_step;
        manager.UpdateModel(trainer.Step());
        ++swaps;
      }
    }
  }
  const double after =
      hmm::DatasetLogLikelihood(*manager.ModelSnapshot(), streams);

  std::printf("streams        : %zu x %zu frames (lag %d)\n", num_streams,
              num_frames, lag_flag);
  std::printf("labels emitted : %zu\n", labels);
  std::printf("trainer steps  : %d (model version %llu)\n", swaps,
              static_cast<unsigned long long>(manager.model_version()));
  std::printf("data loglik    : %.3f -> %.3f (%s)\n", before, after,
              after > before ? "improved online" : "no improvement");

  // 4. Idle eviction: everything is idle now, so one sweep reclaims the
  // whole fleet; slots and ring blocks return to their free lists for the
  // next wave of streams.
  const uint64_t cutoff = manager.tick() + 1;
  const size_t evicted = manager.EvictIdle(cutoff);
  std::printf("evicted        : %zu idle sessions (%zu live)\n", evicted,
              manager.live_sessions());
  return after > before ? 0 : 2;
}
