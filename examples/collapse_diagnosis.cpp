// Diagnosing static-mixture collapse — the failure mode the dHMM prior
// exists to prevent, made measurable. For increasingly flat emissions, we
// train HMM and dHMM and report:
//   * MixtureCollapseGap: mean TV distance between rows of A and the chain's
//     stationary distribution (0 = the HMM is literally a static mixture),
//   * EntropyRate vs stationary entropy (they coincide under collapse),
//   * log det K~ (the prior's own diversity measure).
//
// Build & run:  ./build/examples/collapse_diagnosis
#include <cstdio>

#include "core/dhmm_trainer.h"
#include "data/toy.h"
#include "dpp/logdet.h"
#include "hmm/diagnostics.h"
#include "hmm/sampler.h"
#include "hmm/trainer.h"

int main() {
  using namespace dhmm;

  std::printf("%8s | %21s | %21s\n", "", "HMM (Baum-Welch)", "dHMM (alpha=1)");
  std::printf("%8s | %10s %10s | %10s %10s\n", "sigma", "TV gap", "logdetK",
              "TV gap", "logdetK");
  std::printf("-----------------------------------------------------------\n");

  for (double sigma : {0.1, 0.5, 1.0, 2.0, 3.0, 4.0}) {
    prob::Rng data_rng(7);
    hmm::Dataset<double> data =
        data::GenerateToyDataset(sigma, 200, 6, data_rng);
    prob::Rng init_rng(8);
    hmm::HmmModel<double> plain = data::ToyRandomInit(init_rng);
    hmm::HmmModel<double> diverse = plain;

    hmm::EmOptions em;
    em.max_iters = 40;
    hmm::FitEm(&plain, data, em);

    core::DiversifiedEmOptions opts;
    opts.alpha = 1.0;
    opts.max_iters = 40;
    core::FitDiversifiedHmm(&diverse, data, opts);

    std::printf("%8.2f | %10.4f %10.4f | %10.4f %10.4f\n", sigma,
                hmm::MixtureCollapseGap(plain.a).value(),
                dpp::LogDetNormalizedKernel(plain.a),
                hmm::MixtureCollapseGap(diverse.a).value(),
                dpp::LogDetNormalizedKernel(diverse.a));
  }

  // The collapse identity: when rows coincide, the entropy rate equals the
  // stationary entropy (knowing the current state tells you nothing).
  std::printf("\ncollapse identity check (entropy rate vs stationary "
              "entropy):\n");
  linalg::Matrix collapsed(3, 3);
  for (size_t i = 0; i < 3; ++i) {
    collapsed(i, 0) = 0.2;
    collapsed(i, 1) = 0.5;
    collapsed(i, 2) = 0.3;
  }
  linalg::Vector pi = hmm::StationaryDistribution(collapsed).value();
  std::printf("  static mixture: entropy rate %.4f, stationary entropy %.4f "
              "(equal)\n",
              hmm::EntropyRate(collapsed).value(), hmm::Entropy(pi));
  linalg::Matrix dynamic{{0.9, 0.05, 0.05}, {0.05, 0.9, 0.05},
                         {0.05, 0.05, 0.9}};
  std::printf("  dynamic chain : entropy rate %.4f, stationary entropy %.4f "
              "(rate far lower)\n",
              hmm::EntropyRate(dynamic).value(),
              hmm::Entropy(hmm::StationaryDistribution(dynamic).value()));
  std::printf("\nReading: as sigma grows the HMM's TV gap shrinks toward the "
              "static-mixture regime while the dHMM holds it (and log det "
              "K~) up — the paper's central claim in diagnostic form.\n");
  return 0;
}
