// Quickstart: sample sequences from a ground-truth HMM, fit a plain HMM and a
// diversified HMM (dHMM) from the same random start, and compare transition
// diversity and labeling accuracy.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/dhmm_trainer.h"
#include "data/toy.h"
#include "dpp/logdet.h"
#include "eval/diversity.h"
#include "eval/metrics.h"
#include "hmm/sampler.h"
#include "hmm/trainer.h"

int main() {
  using namespace dhmm;

  // 1. Data: the paper's 5-state toy problem with Gaussian emissions.
  //    Each Sequence keeps its true labels, so we can score the fits.
  prob::Rng data_rng(/*seed=*/1);
  hmm::Dataset<double> data =
      data::GenerateToyDataset(/*sigma=*/0.5, /*num_sequences=*/200,
                               /*length=*/6, data_rng);
  std::printf("sampled %zu sequences (%zu frames)\n", data.size(),
              hmm::TotalFrames(data));

  // 2. Two models from the *same* random initialization.
  prob::Rng init_rng(/*seed=*/2);
  hmm::HmmModel<double> plain = data::ToyRandomInit(init_rng);
  hmm::HmmModel<double> diversified = plain;

  // 3a. Classical Baum-Welch EM.
  hmm::EmOptions em;
  em.max_iters = 50;
  hmm::EmResult em_result = hmm::FitEm(&plain, data, em);
  std::printf("HMM : EM ran %d iterations, final loglik %.2f\n",
              em_result.iterations, em_result.final_loglik);

  // 3b. Diversified MAP-EM: identical E-step, DPP-penalized M-step for A.
  core::DiversifiedEmOptions opts;
  opts.alpha = 1.0;  // diversity weight
  opts.max_iters = 50;
  core::DiversifiedFitResult dr =
      core::FitDiversifiedHmm(&diversified, data, opts);
  std::printf("dHMM: MAP-EM ran %d iterations, final MAP objective %.2f\n",
              dr.iterations, dr.final_map_objective);

  // 4. Compare: diversity of transition rows and 1-to-1 accuracy.
  eval::LabelSequences gold;
  for (const auto& seq : data) gold.push_back(seq.labels);
  auto score = [&](const hmm::HmmModel<double>& m) {
    return eval::OneToOneAccuracy(hmm::DecodeDataset(m, data), gold,
                                  data::kToyStates)
        .accuracy;
  };
  std::printf("\n%-22s %10s %12s %12s\n", "model", "accuracy",
              "avg B-dist", "log det K~");
  std::printf("%-22s %10.4f %12.4f %12.4f\n", "HMM (Baum-Welch)",
              score(plain), eval::AveragePairwiseDiversity(plain.a),
              dpp::LogDetNormalizedKernel(plain.a));
  std::printf("%-22s %10.4f %12.4f %12.4f\n", "dHMM (alpha=1)",
              score(diversified),
              eval::AveragePairwiseDiversity(diversified.a),
              dpp::LogDetNormalizedKernel(diversified.a));
  std::printf("%-22s %10.4f %12.4f %12.4f\n", "ground truth", 1.0,
              eval::AveragePairwiseDiversity(data::ToyGroundTruth().a),
              dpp::LogDetNormalizedKernel(data::ToyGroundTruth().a));
  return 0;
}
