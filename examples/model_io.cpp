// Model persistence: train a dHMM, save it to disk, load it back, verify the
// round trip preserves the model exactly, and resume training from the
// loaded checkpoint.
//
// Flags: --path=<file> (default /tmp/dhmm_model.txt)
#include <cstdio>
#include <memory>

#include "core/dhmm_trainer.h"
#include "data/toy.h"
#include "hmm/sampler.h"
#include "hmm/serialization.h"
#include "hmm/trainer.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace dhmm;
  FlagParser flags;
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const std::string path = flags.GetString("path", "/tmp/dhmm_model.txt");
  st = flags.VerifyAllRead();
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  // 1. Train briefly.
  prob::Rng data_rng(1);
  hmm::Dataset<double> data =
      data::GenerateToyDataset(0.5, 100, 6, data_rng);
  prob::Rng init_rng(2);
  hmm::HmmModel<double> model = data::ToyRandomInit(init_rng);
  core::DiversifiedEmOptions opts;
  opts.alpha = 1.0;
  opts.max_iters = 10;
  core::FitDiversifiedHmm(&model, data, opts);
  double ll_before = hmm::DatasetLogLikelihood(model, data);
  std::printf("trained 10 iterations, loglik %.4f\n", ll_before);

  // 2. Save.
  st = hmm::SaveHmmToFile(model, path);
  if (!st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("saved to %s\n", path.c_str());

  // 3. Load and verify.
  Result<hmm::HmmModel<double>> loaded = hmm::LoadHmmFromFile<double>(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  double ll_after = hmm::DatasetLogLikelihood(loaded.value(), data);
  std::printf("loaded: loglik %.4f (delta %.2e)\n", ll_after,
              ll_after - ll_before);

  // 4. Resume training from the checkpoint.
  hmm::HmmModel<double> resumed = std::move(loaded).value();
  opts.max_iters = 20;
  core::DiversifiedFitResult more =
      core::FitDiversifiedHmm(&resumed, data, opts);
  std::printf("resumed %d more iterations, loglik %.4f -> %.4f\n",
              more.iterations, ll_after,
              hmm::DatasetLogLikelihood(resumed, data));
  return 0;
}
