// Unsupervised part-of-speech tagging end to end (paper §4.2.1):
// generate a WSJ-like corpus, train a diversified HMM with no label access,
// align the induced states to gold tags with the Hungarian algorithm, and
// print a tagged sentence in the style of the paper's Fig. 6.
//
// Flags: --alpha=<double> (default 100)  --sentences=<int>  --vocab=<int>
#include <cstdio>
#include <memory>

#include "core/dhmm_trainer.h"
#include "data/pos_corpus.h"
#include "eval/metrics.h"
#include "hmm/trainer.h"
#include "prob/categorical_emission.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace dhmm;
  FlagParser flags;
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const double alpha = flags.GetDouble("alpha", 100.0);
  const size_t k = data::kNumPosTags;

  // 1. Corpus with gold tags (used only for evaluation).
  data::PosCorpusOptions copts;
  copts.num_sentences = static_cast<size_t>(flags.GetInt("sentences", 800));
  copts.vocab_size = static_cast<size_t>(flags.GetInt("vocab", 800));
  st = flags.VerifyAllRead();
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  copts.ambiguity = 0.10;
  copts.seed = 11;
  data::PosCorpus corpus = GeneratePosCorpus(copts);
  std::printf("corpus: %zu sentences, vocab %zu, %zu tags\n",
              corpus.sentences.size(), corpus.vocab_size, k);

  // 2. Unsupervised training (labels never touched).
  prob::Rng init_rng(3);
  hmm::HmmModel<int> model(
      init_rng.DirichletSymmetric(k, 1.0),
      init_rng.RandomStochasticMatrix(k, k, 1.0),
      std::make_unique<prob::CategoricalEmission>(
          prob::CategoricalEmission::RandomInit(k, corpus.vocab_size,
                                                init_rng)));
  core::DiversifiedEmOptions opts;
  opts.alpha = alpha;
  opts.max_iters = 50;
  core::DiversifiedFitResult fit =
      core::FitDiversifiedHmm(&model, corpus.sentences, opts);
  std::printf("trained dHMM (alpha=%g): %d EM iterations, MAP objective %.1f\n",
              alpha, fit.iterations, fit.final_map_objective);

  // 3. Decode and align induced states to gold tags.
  eval::LabelSequences decoded = hmm::DecodeDataset(model, corpus.sentences);
  eval::LabelSequences gold;
  for (const auto& s : corpus.sentences) gold.push_back(s.labels);
  eval::AlignedAccuracy one = eval::OneToOneAccuracy(decoded, gold, k);
  eval::AlignedAccuracy many = eval::ManyToOneAccuracy(decoded, gold, k);
  std::printf("1-to-1 accuracy: %.4f   many-to-1 accuracy: %.4f\n",
              one.accuracy, many.accuracy);

  // 4. Print one tagged sentence (Fig. 6 style): word ids with predicted
  //    (aligned) and gold tag names.
  const auto& sent = corpus.sentences.front();
  std::printf("\nexample sentence (word-id/predicted-tag[gold-tag]):\n  ");
  for (size_t t = 0; t < sent.length() && t < 12; ++t) {
    int mapped = one.mapping[static_cast<size_t>(decoded.front()[t])];
    std::printf("w%d/%s[%s] ", sent.obs[t],
                corpus.tag_names[static_cast<size_t>(mapped)].c_str(),
                corpus.tag_names[static_cast<size_t>(sent.labels[t])].c_str());
  }
  std::printf("\n");
  return 0;
}
