// The serve layer end to end: train a model, stand up a DecodeService,
// submit a burst of mixed decode requests, hot-swap to a better checkpoint
// via the atomic save + reload path while the service keeps running, and
// label a live stream with the fixed-lag StreamingDecoder.
//
// Flags: --requests=<int> (default 64)  --threads=<int> (default 2)
//        --lag=<int> (default 4)  --path=<file> (checkpoint path)
#include <cstdio>
#include <memory>
#include <vector>

#include "core/dhmm_trainer.h"
#include "data/toy.h"
#include "hmm/sampler.h"
#include "hmm/serialization.h"
#include "hmm/trainer.h"
#include "serve/decode_service.h"
#include "serve/streaming_decoder.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace dhmm;
  FlagParser flags;
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const int requests_flag = flags.GetInt("requests", 64);
  const int threads = flags.GetInt("threads", 2);
  const int lag_flag = flags.GetInt("lag", 4);
  const std::string path =
      flags.GetString("path", "/tmp/dhmm_serving_demo.txt");
  // Misspelled flags fail loudly instead of being silently ignored.
  st = flags.VerifyAllRead();
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  // Range-check before casting so negative values cannot wrap to huge
  // size_t counts.
  if (requests_flag < 3 || requests_flag > 1000000) {
    std::fprintf(stderr,
                 "--requests must be in [3, 1000000] (one per kind)\n");
    return 1;
  }
  if (lag_flag < 0 || lag_flag > 1000000) {
    std::fprintf(stderr, "--lag must be in [0, 1000000]\n");
    return 1;
  }
  const size_t num_requests = static_cast<size_t>(requests_flag);
  const size_t lag = static_cast<size_t>(lag_flag);

  // 1. A briefly-trained checkpoint v1 and a longer-trained v2.
  prob::Rng data_rng(1);
  hmm::Dataset<double> data = data::GenerateToyDataset(0.5, 120, 8, data_rng);
  prob::Rng init_rng(2);
  hmm::HmmModel<double> trained = data::ToyRandomInit(init_rng);
  core::DiversifiedEmOptions opts;
  opts.alpha = 1.0;
  opts.max_iters = 3;
  core::FitDiversifiedHmm(&trained, data, opts);
  auto v1 = std::make_shared<const hmm::HmmModel<double>>(trained);
  opts.max_iters = 25;
  core::FitDiversifiedHmm(&trained, data, opts);
  st = hmm::SaveHmmToFile(trained, path);  // atomic: write tmp, rename
  if (!st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // 2. Serve a burst of mixed requests on checkpoint v1.
  prob::Rng req_rng(3);
  hmm::Dataset<double> requests =
      hmm::SampleDataset(trained, num_requests, 16, req_rng);
  serve::ServeOptions sopts;
  sopts.num_threads = threads;
  sopts.max_batch = 16;
  serve::DecodeService<double> service(v1, sopts);

  const serve::DecodeKind kinds[] = {serve::DecodeKind::kViterbi,
                                     serve::DecodeKind::kPosterior,
                                     serve::DecodeKind::kLogLikelihood};
  std::vector<serve::DecodeFuture<double>> futures;
  for (size_t i = 0; i < requests.size(); ++i) {
    futures.push_back(service.Submit(kinds[i % 3], requests[i].obs));
  }
  double total_ll = 0.0;
  size_t ll_count = 0;
  for (auto& f : futures) {
    const serve::DecodeResult& r = f.Wait();
    if (r.kind == serve::DecodeKind::kLogLikelihood) {
      total_ll += r.value;
      ++ll_count;
    }
  }
  futures.clear();
  const double avg_v1 = total_ll / static_cast<double>(ll_count);
  std::printf("v%llu served %llu requests in %llu batches "
              "(largest %zu), mean loglik %.3f\n",
              static_cast<unsigned long long>(service.model_version()),
              static_cast<unsigned long long>(service.requests_served()),
              static_cast<unsigned long long>(service.batches_dispatched()),
              service.largest_batch(), avg_v1);

  // 3. Hot-swap to checkpoint v2 from disk; the service never stops.
  st = service.ReloadModel(path);
  if (!st.ok()) {
    std::fprintf(stderr, "reload failed: %s\n", st.ToString().c_str());
    return 1;
  }
  double total_ll_v2 = 0.0;
  for (size_t i = 0; i < requests.size(); ++i) {
    futures.push_back(
        service.Submit(serve::DecodeKind::kLogLikelihood, requests[i].obs));
  }
  for (auto& f : futures) total_ll_v2 += f.Wait().value;
  futures.clear();
  const double avg_v2 = total_ll_v2 / static_cast<double>(requests.size());
  std::printf("v%llu (hot-swapped from %s) mean loglik %.3f "
              "(better fit: %s)\n",
              static_cast<unsigned long long>(service.model_version()),
              path.c_str(), avg_v2, avg_v2 > avg_v1 ? "yes" : "no");

  // 4. Online labeling: fixed-lag smoothing over a live stream.
  serve::StreamingOptions stream_opts;
  stream_opts.lag = lag;
  serve::StreamingDecoder<double> stream(service.ModelSnapshot(),
                                         stream_opts);
  const std::vector<double>& live = requests[0].obs;
  std::printf("streaming %zu frames at lag %zu:", live.size(), lag);
  std::vector<int> labels;
  for (double y : live) {
    if (stream.Push(y)) labels.push_back(stream.last_label());
  }
  stream.Finish(&labels);
  for (int label : labels) std::printf(" %d", label);
  std::printf("\n  prefix loglik %.3f over %zu frames, %zu labels\n",
              stream.log_likelihood(), stream.frames_pushed(),
              stream.labels_emitted());
  return 0;
}
