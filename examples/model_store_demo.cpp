// The binary model store end to end: train a model, publish two versions
// through a dual-slot store, hot-reload a serving DecodeService from it,
// then corrupt the active slot and show the failsafe — open falls back to
// the surviving slot and serving never misses a beat.
//
// Flags: --dir=<directory> (default /tmp/dhmm_store_demo)
#include <cstdio>
#include <fstream>
#include <memory>
#include <vector>

#include "core/dhmm_trainer.h"
#include "data/toy.h"
#include "hmm/sampler.h"
#include "hmm/trainer.h"
#include "serve/decode_service.h"
#include "store/dual_slot.h"
#include "store/model_codec.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace dhmm;
  FlagParser flags;
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const std::string dir = flags.GetString("dir", "/tmp/dhmm_store_demo");
  st = flags.VerifyAllRead();
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  // 1. Train two model versions (v2 = v1 plus extra EM iterations).
  prob::Rng data_rng(1);
  hmm::Dataset<double> data = data::GenerateToyDataset(0.5, 80, 6, data_rng);
  prob::Rng init_rng(2);
  hmm::HmmModel<double> model = data::ToyRandomInit(init_rng);
  hmm::EmOptions em;
  em.max_iters = 5;
  FitEm(&model, data, em);
  hmm::HmmModel<double> v1 = model;
  FitEm(&model, data, em);

  // 2. Publish both into the dual-slot store. Each publish writes the
  // inactive slot atomically, then flips the manifest.
  auto slots = store::DualSlotStore::Open(dir);
  if (!slots.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 slots.status().ToString().c_str());
    return 1;
  }
  if (!slots.value().Publish(v1).ok() || !slots.value().Publish(model).ok()) {
    std::fprintf(stderr, "publish failed\n");
    return 1;
  }
  std::printf("published seq 1 and 2; active slot file: %s\n",
              slots.value().active_path().c_str());

  // 3. Serve from the store: ReloadModel routes a directory path to the
  // dual-slot store (binary read, no text parse).
  serve::DecodeService<double> service(
      std::make_shared<const hmm::HmmModel<double>>(v1));
  st = service.ReloadModel(dir);
  std::printf("reload from store: %s (model version %llu)\n",
              st.ok() ? "ok" : st.ToString().c_str(),
              static_cast<unsigned long long>(service.model_version()));
  auto before = service.Submit(serve::DecodeKind::kPosterior, data[0].obs);
  const double value_before = before.Wait().value;
  before.Release();
  std::printf("decode under seq-2 model: log-lik %.6f\n", value_before);

  // 4. Corrupt the active slot on disk — flip one byte.
  {
    const std::string active = slots.value().active_path();
    std::fstream f(active,
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(0, std::ios::end);
    const std::streamoff size = f.tellg();
    f.seekg(size - 1);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(size - 1);
    f.write(&byte, 1);
    std::printf("corrupted one byte of %s\n", active.c_str());
  }

  // 5. Failsafe: a fresh open detects the corruption (CRC mismatch) and
  // falls back to the surviving slot; the service keeps serving either way.
  st = service.ReloadModel(dir);
  std::printf("reload after corruption: %s\n",
              st.ok() ? "ok (fell back to surviving slot)"
                      : st.ToString().c_str());
  auto reopened = store::DualSlotStore::Open(dir);
  if (reopened.ok()) {
    std::printf("store now serves seq %llu (was 2 before corruption)\n",
                static_cast<unsigned long long>(
                    reopened.value().sequence_number()));
  }
  auto after = service.Submit(serve::DecodeKind::kPosterior, data[0].obs);
  std::printf("decode still works: log-lik %.6f\n", after.Wait().value);
  after.Release();
  return 0;
}
