// Per-state univariate Gaussian emissions (the toy experiment, §4.1).
#ifndef DHMM_PROB_GAUSSIAN_EMISSION_H_
#define DHMM_PROB_GAUSSIAN_EMISSION_H_

#include <iosfwd>
#include <memory>

#include "prob/emission.h"

namespace dhmm::prob {

/// \brief Y | X=i ~ Normal(mu_i, sigma_i^2), scalar observations.
///
/// The EM update is the posterior-weighted mean/variance (paper Eqs. 11-12).
/// Variances are floored to keep the likelihood bounded — exactly the
/// singular-estimate failure mode the paper's prior addresses cannot be
/// allowed to produce NaNs in the baseline.
class GaussianEmission : public EmissionModel<double> {
 public:
  /// Constructs with explicit parameters; sizes must match and sigmas > 0.
  GaussianEmission(linalg::Vector mu, linalg::Vector sigma,
                   double sigma_floor = 1e-4);

  /// Random initialization: mu_i ~ Normal(mu0, mu_spread), sigma_i ~
  /// Gamma(2, sigma_scale) (matching the paper's toy initialization).
  static GaussianEmission RandomInit(size_t k, Rng& rng, double mu0 = 3.0,
                                     double mu_spread = 2.0,
                                     double sigma_scale = 0.5);

  /// Loads from the text produced by Save().
  static Result<GaussianEmission> Load(std::istream& is);

  size_t num_states() const override { return mu_.size(); }
  double LogProb(size_t state, const double& y) const override;
  double Sample(size_t state, Rng& rng) const override;

  void BeginAccumulate() override;
  void Accumulate(const double& y, const linalg::Vector& q) override;
  void FinishAccumulate() override;

  std::unique_ptr<EmissionModel<double>> Clone() const override;
  std::string TypeName() const override { return "gaussian"; }
  Status Save(std::ostream& os) const override;

  const linalg::Vector& mu() const { return mu_; }
  const linalg::Vector& sigma() const { return sigma_; }
  /// M-step variance floor (binary store round-trips it).
  double sigma_floor() const { return sigma_floor_; }

 private:
  linalg::Vector mu_;
  linalg::Vector sigma_;
  double sigma_floor_;
  // Sufficient statistics: sum q, sum q*y, sum q*y^2 per state.
  linalg::Vector acc_w_, acc_y_, acc_yy_;
};

}  // namespace dhmm::prob

#endif  // DHMM_PROB_GAUSSIAN_EMISSION_H_
