// Per-state product-of-Bernoullis emissions over binary feature vectors
// (the OCR experiment, §4.2.2: 16x8 binary glyphs -> 128-dim vectors).
#ifndef DHMM_PROB_BERNOULLI_EMISSION_H_
#define DHMM_PROB_BERNOULLI_EMISSION_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "prob/emission.h"

namespace dhmm::prob {

/// Binary observation vector (one glyph image, flattened).
using BinaryObs = std::vector<uint8_t>;

/// \brief Y | X=i ~ prod_d Bernoulli(p_{i,d})  (naive-Bayes pixels).
///
/// Parameters are a k x D matrix of pixel-on probabilities, clamped to
/// [p_floor, 1 - p_floor] so single contradicting pixels cannot veto a state.
class BernoulliEmission : public EmissionModel<BinaryObs> {
 public:
  /// Constructs from a k x D probability matrix (entries in [0, 1]).
  explicit BernoulliEmission(linalg::Matrix p, double p_floor = 1e-3);

  /// Random initialization with probabilities uniform in [0.25, 0.75].
  static BernoulliEmission RandomInit(size_t k, size_t dims, Rng& rng,
                                      double p_floor = 1e-3);

  /// Loads from the text produced by Save().
  static Result<BernoulliEmission> Load(std::istream& is);

  size_t num_states() const override { return p_.rows(); }
  size_t dims() const { return p_.cols(); }

  double LogProb(size_t state, const BinaryObs& y) const override;
  BinaryObs Sample(size_t state, Rng& rng) const override;

  void BeginAccumulate() override;
  void Accumulate(const BinaryObs& y, const linalg::Vector& q) override;
  void FinishAccumulate() override;

  std::unique_ptr<EmissionModel<BinaryObs>> Clone() const override;
  std::string TypeName() const override { return "bernoulli"; }
  Status Save(std::ostream& os) const override;

  /// Pixel-on probability table (k x D).
  const linalg::Matrix& p() const { return p_; }
  /// M-step probability floor (binary store round-trips it).
  double p_floor() const { return p_floor_; }

 private:
  void Clamp();
  void RebuildLogTables();

  linalg::Matrix p_;
  linalg::Matrix log_p_;     // log p
  linalg::Matrix log_1mp_;   // log (1 - p)
  double p_floor_;
  linalg::Matrix acc_on_;    // expected on-counts, k x D
  linalg::Vector acc_w_;     // expected total weight per state
};

}  // namespace dhmm::prob

#endif  // DHMM_PROB_BERNOULLI_EMISSION_H_
