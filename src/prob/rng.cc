#include "prob/rng.h"

#include <cmath>

#include "util/check.h"

namespace dhmm::prob {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
  // Avoid the all-zero state (cannot occur via splitmix64, but be safe).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> [0,1) double.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * Uniform();
}

uint64_t Rng::UniformInt(uint64_t n) {
  DHMM_CHECK(n > 0);
  // Rejection sampling to remove modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  uint64_t v;
  do {
    v = NextU64();
  } while (v >= limit);
  return v % n;
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1, u2;
  do {
    u1 = Uniform();
  } while (u1 <= 0.0);
  u2 = Uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double sigma) {
  DHMM_CHECK(sigma >= 0.0);
  return mean + sigma * Gaussian();
}

double Rng::Gamma(double shape) {
  DHMM_CHECK(shape > 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 and scale back (Marsaglia–Tsang trick).
    double u;
    do {
      u = Uniform();
    } while (u <= 0.0);
    return Gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = Gaussian();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    double u = Uniform();
    if (u < 1.0 - 0.0331 * (x * x) * (x * x)) return d * v;
    if (u > 0.0 &&
        std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

double Rng::Gamma(double shape, double scale) {
  DHMM_CHECK(scale > 0.0);
  return Gamma(shape) * scale;
}

linalg::Vector Rng::Dirichlet(const linalg::Vector& alpha) {
  DHMM_CHECK(!alpha.empty());
  linalg::Vector v(alpha.size());
  double total = 0.0;
  for (size_t i = 0; i < alpha.size(); ++i) {
    v[i] = Gamma(alpha[i]);
    total += v[i];
  }
  if (total <= 0.0) {
    // Pathologically tiny draws; fall back to uniform.
    for (size_t i = 0; i < v.size(); ++i) v[i] = 1.0 / v.size();
    return v;
  }
  for (size_t i = 0; i < v.size(); ++i) v[i] /= total;
  return v;
}

linalg::Vector Rng::DirichletSymmetric(size_t n, double concentration) {
  return Dirichlet(linalg::Vector(n, concentration));
}

size_t Rng::Categorical(const linalg::Vector& weights) {
  DHMM_CHECK(!weights.empty());
  double total = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    DHMM_DCHECK(weights[i] >= 0.0);
    total += weights[i];
  }
  DHMM_CHECK_MSG(total > 0.0, "categorical weights must have positive mass");
  double u = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return i;
  }
  return weights.size() - 1;  // numerical edge: u == total
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  for (size_t i = n; i > 1; --i) {
    size_t j = UniformInt(i);
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

linalg::Matrix Rng::RandomStochasticMatrix(size_t rows, size_t cols,
                                           double concentration) {
  linalg::Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    m.SetRow(r, DirichletSymmetric(cols, concentration));
  }
  return m;
}

}  // namespace dhmm::prob
