#include "prob/gaussian_emission.h"

#include <cmath>
#include <istream>
#include <ostream>

#include "util/check.h"

namespace dhmm::prob {

namespace {
constexpr double kLogSqrt2Pi = 0.9189385332046727;  // log(sqrt(2*pi))
}

GaussianEmission::GaussianEmission(linalg::Vector mu, linalg::Vector sigma,
                                   double sigma_floor)
    : mu_(std::move(mu)), sigma_(std::move(sigma)),
      sigma_floor_(sigma_floor) {
  DHMM_CHECK(mu_.size() == sigma_.size());
  DHMM_CHECK(sigma_floor_ > 0.0);
  for (size_t i = 0; i < sigma_.size(); ++i) {
    DHMM_CHECK_MSG(sigma_[i] > 0.0, "sigma must be positive");
    if (sigma_[i] < sigma_floor_) sigma_[i] = sigma_floor_;
  }
}

GaussianEmission GaussianEmission::RandomInit(size_t k, Rng& rng, double mu0,
                                              double mu_spread,
                                              double sigma_scale) {
  linalg::Vector mu(k), sigma(k);
  for (size_t i = 0; i < k; ++i) {
    mu[i] = rng.Gaussian(mu0, mu_spread);
    sigma[i] = rng.Gamma(2.0, sigma_scale);
  }
  return GaussianEmission(std::move(mu), std::move(sigma));
}

double GaussianEmission::LogProb(size_t state, const double& y) const {
  DHMM_DCHECK(state < mu_.size());
  double z = (y - mu_[state]) / sigma_[state];
  return -0.5 * z * z - std::log(sigma_[state]) - kLogSqrt2Pi;
}

double GaussianEmission::Sample(size_t state, Rng& rng) const {
  DHMM_DCHECK(state < mu_.size());
  return rng.Gaussian(mu_[state], sigma_[state]);
}

void GaussianEmission::BeginAccumulate() {
  acc_w_ = linalg::Vector(num_states());
  acc_y_ = linalg::Vector(num_states());
  acc_yy_ = linalg::Vector(num_states());
}

void GaussianEmission::Accumulate(const double& y, const linalg::Vector& q) {
  DHMM_DCHECK(q.size() == num_states());
  for (size_t i = 0; i < q.size(); ++i) {
    acc_w_[i] += q[i];
    acc_y_[i] += q[i] * y;
    acc_yy_[i] += q[i] * y * y;
  }
}

void GaussianEmission::FinishAccumulate() {
  DHMM_CHECK_MSG(acc_w_.size() == num_states(),
                 "FinishAccumulate without BeginAccumulate");
  for (size_t i = 0; i < num_states(); ++i) {
    if (acc_w_[i] <= 0.0) continue;  // state never used: keep old parameters
    double mean = acc_y_[i] / acc_w_[i];
    double var = acc_yy_[i] / acc_w_[i] - mean * mean;
    mu_[i] = mean;
    sigma_[i] = std::sqrt(std::max(var, sigma_floor_ * sigma_floor_));
  }
}

std::unique_ptr<EmissionModel<double>> GaussianEmission::Clone() const {
  return std::make_unique<GaussianEmission>(*this);
}

Status GaussianEmission::Save(std::ostream& os) const {
  os << num_states() << " " << sigma_floor_ << "\n";
  for (size_t i = 0; i < num_states(); ++i) {
    os << mu_[i] << " " << sigma_[i] << "\n";
  }
  if (!os) return Status::IOError("failed writing GaussianEmission");
  return Status::OK();
}

Result<GaussianEmission> GaussianEmission::Load(std::istream& is) {
  size_t k = 0;
  double floor = 0.0;
  if (!(is >> k >> floor) || k == 0 || floor <= 0.0) {
    return Status::IOError("bad GaussianEmission header");
  }
  linalg::Vector mu(k), sigma(k);
  for (size_t i = 0; i < k; ++i) {
    if (!(is >> mu[i] >> sigma[i]) || sigma[i] <= 0.0) {
      return Status::IOError("bad GaussianEmission row");
    }
  }
  return GaussianEmission(std::move(mu), std::move(sigma), floor);
}

}  // namespace dhmm::prob
