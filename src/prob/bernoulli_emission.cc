#include "prob/bernoulli_emission.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "util/check.h"

namespace dhmm::prob {

BernoulliEmission::BernoulliEmission(linalg::Matrix p, double p_floor)
    : p_(std::move(p)), p_floor_(p_floor) {
  DHMM_CHECK(p_floor_ > 0.0 && p_floor_ < 0.5);
  for (size_t i = 0; i < p_.rows(); ++i) {
    for (size_t d = 0; d < p_.cols(); ++d) {
      DHMM_CHECK_MSG(p_(i, d) >= 0.0 && p_(i, d) <= 1.0,
                     "Bernoulli parameters must be in [0,1]");
    }
  }
  Clamp();
  RebuildLogTables();
}

BernoulliEmission BernoulliEmission::RandomInit(size_t k, size_t dims,
                                                Rng& rng, double p_floor) {
  linalg::Matrix p(k, dims);
  for (size_t i = 0; i < k; ++i)
    for (size_t d = 0; d < dims; ++d) p(i, d) = rng.Uniform(0.25, 0.75);
  return BernoulliEmission(std::move(p), p_floor);
}

void BernoulliEmission::Clamp() {
  for (size_t i = 0; i < p_.rows(); ++i) {
    for (size_t d = 0; d < p_.cols(); ++d) {
      p_(i, d) = std::clamp(p_(i, d), p_floor_, 1.0 - p_floor_);
    }
  }
}

void BernoulliEmission::RebuildLogTables() {
  log_p_ = linalg::Matrix(p_.rows(), p_.cols());
  log_1mp_ = linalg::Matrix(p_.rows(), p_.cols());
  for (size_t i = 0; i < p_.rows(); ++i) {
    for (size_t d = 0; d < p_.cols(); ++d) {
      log_p_(i, d) = std::log(p_(i, d));
      log_1mp_(i, d) = std::log(1.0 - p_(i, d));
    }
  }
}

double BernoulliEmission::LogProb(size_t state, const BinaryObs& y) const {
  DHMM_DCHECK(state < p_.rows());
  DHMM_CHECK_MSG(y.size() == p_.cols(), "observation dimensionality mismatch");
  double s = 0.0;
  const double* lp = log_p_.row_data(state);
  const double* lq = log_1mp_.row_data(state);
  for (size_t d = 0; d < y.size(); ++d) {
    s += y[d] ? lp[d] : lq[d];
  }
  return s;
}

BinaryObs BernoulliEmission::Sample(size_t state, Rng& rng) const {
  DHMM_DCHECK(state < p_.rows());
  BinaryObs y(p_.cols());
  for (size_t d = 0; d < y.size(); ++d) {
    y[d] = rng.Bernoulli(p_(state, d)) ? 1 : 0;
  }
  return y;
}

void BernoulliEmission::BeginAccumulate() {
  acc_on_ = linalg::Matrix(p_.rows(), p_.cols());
  acc_w_ = linalg::Vector(p_.rows());
}

void BernoulliEmission::Accumulate(const BinaryObs& y,
                                   const linalg::Vector& q) {
  DHMM_DCHECK(q.size() == p_.rows());
  DHMM_CHECK(y.size() == p_.cols());
  for (size_t i = 0; i < q.size(); ++i) {
    if (q[i] == 0.0) continue;
    acc_w_[i] += q[i];
    double* row = acc_on_.row_data(i);
    for (size_t d = 0; d < y.size(); ++d) {
      if (y[d]) row[d] += q[i];
    }
  }
}

void BernoulliEmission::FinishAccumulate() {
  DHMM_CHECK_MSG(acc_w_.size() == p_.rows(),
                 "FinishAccumulate without BeginAccumulate");
  for (size_t i = 0; i < p_.rows(); ++i) {
    if (acc_w_[i] <= 0.0) continue;  // unused state keeps old parameters
    for (size_t d = 0; d < p_.cols(); ++d) {
      p_(i, d) = acc_on_(i, d) / acc_w_[i];
    }
  }
  Clamp();
  RebuildLogTables();
}

std::unique_ptr<EmissionModel<BinaryObs>> BernoulliEmission::Clone() const {
  return std::make_unique<BernoulliEmission>(*this);
}

Status BernoulliEmission::Save(std::ostream& os) const {
  os << p_.rows() << " " << p_.cols() << " " << p_floor_ << "\n";
  for (size_t i = 0; i < p_.rows(); ++i) {
    for (size_t d = 0; d < p_.cols(); ++d) {
      os << p_(i, d) << (d + 1 == p_.cols() ? "\n" : " ");
    }
  }
  if (!os) return Status::IOError("failed writing BernoulliEmission");
  return Status::OK();
}

Result<BernoulliEmission> BernoulliEmission::Load(std::istream& is) {
  size_t k = 0, dims = 0;
  double floor = 0.0;
  if (!(is >> k >> dims >> floor) || k == 0 || dims == 0 || floor <= 0.0 ||
      floor >= 0.5) {
    return Status::IOError("bad BernoulliEmission header");
  }
  linalg::Matrix p(k, dims);
  for (size_t i = 0; i < k; ++i) {
    for (size_t d = 0; d < dims; ++d) {
      if (!(is >> p(i, d)) || p(i, d) < 0.0 || p(i, d) > 1.0) {
        return Status::IOError("bad BernoulliEmission entry");
      }
    }
  }
  return BernoulliEmission(std::move(p), floor);
}

}  // namespace dhmm::prob
