#include "prob/categorical_emission.h"

#include <cmath>
#include <istream>
#include <ostream>

#include "prob/logsumexp.h"
#include "util/check.h"

namespace dhmm::prob {

CategoricalEmission::CategoricalEmission(linalg::Matrix b, double pseudo_count)
    : b_(std::move(b)), pseudo_count_(pseudo_count) {
  DHMM_CHECK_MSG(b_.IsRowStochastic(1e-6), "emission rows must be stochastic");
  DHMM_CHECK(pseudo_count_ >= 0.0);
  b_.NormalizeRows();
  RebuildLogTable();
}

CategoricalEmission CategoricalEmission::RandomInit(size_t k, size_t vocab,
                                                    Rng& rng,
                                                    double concentration,
                                                    double pseudo_count) {
  return CategoricalEmission(
      rng.RandomStochasticMatrix(k, vocab, concentration), pseudo_count);
}

void CategoricalEmission::RebuildLogTable() {
  log_b_ = linalg::Matrix(b_.rows(), b_.cols());
  for (size_t i = 0; i < b_.rows(); ++i) {
    for (size_t v = 0; v < b_.cols(); ++v) {
      log_b_(i, v) = b_(i, v) > 0.0 ? std::log(b_(i, v)) : kNegInf;
    }
  }
}

double CategoricalEmission::LogProb(size_t state, const int& y) const {
  DHMM_DCHECK(state < b_.rows());
  DHMM_DCHECK(y >= 0 && static_cast<size_t>(y) < b_.cols());
  return log_b_(state, static_cast<size_t>(y));
}

int CategoricalEmission::Sample(size_t state, Rng& rng) const {
  DHMM_DCHECK(state < b_.rows());
  return static_cast<int>(rng.Categorical(b_.Row(state)));
}

void CategoricalEmission::BeginAccumulate() {
  acc_ = linalg::Matrix(b_.rows(), b_.cols(), pseudo_count_);
}

void CategoricalEmission::Accumulate(const int& y, const linalg::Vector& q) {
  DHMM_DCHECK(q.size() == b_.rows());
  DHMM_DCHECK(y >= 0 && static_cast<size_t>(y) < b_.cols());
  for (size_t i = 0; i < q.size(); ++i) {
    acc_(i, static_cast<size_t>(y)) += q[i];
  }
}

void CategoricalEmission::FinishAccumulate() {
  DHMM_CHECK_MSG(acc_.rows() == b_.rows(),
                 "FinishAccumulate without BeginAccumulate");
  acc_.NormalizeRows();
  b_ = acc_;
  RebuildLogTable();
}

std::unique_ptr<EmissionModel<int>> CategoricalEmission::Clone() const {
  return std::make_unique<CategoricalEmission>(*this);
}

Status CategoricalEmission::Save(std::ostream& os) const {
  os << b_.rows() << " " << b_.cols() << " " << pseudo_count_ << "\n";
  for (size_t i = 0; i < b_.rows(); ++i) {
    for (size_t v = 0; v < b_.cols(); ++v) {
      os << b_(i, v) << (v + 1 == b_.cols() ? "\n" : " ");
    }
  }
  if (!os) return Status::IOError("failed writing CategoricalEmission");
  return Status::OK();
}

Result<CategoricalEmission> CategoricalEmission::Load(std::istream& is) {
  size_t k = 0, vocab = 0;
  double pseudo = 0.0;
  if (!(is >> k >> vocab >> pseudo) || k == 0 || vocab == 0 || pseudo < 0.0) {
    return Status::IOError("bad CategoricalEmission header");
  }
  linalg::Matrix b(k, vocab);
  for (size_t i = 0; i < k; ++i) {
    for (size_t v = 0; v < vocab; ++v) {
      if (!(is >> b(i, v)) || b(i, v) < 0.0) {
        return Status::IOError("bad CategoricalEmission entry");
      }
    }
  }
  // Validate here so a truncated/corrupt stream fails with a Status instead
  // of tripping the constructor's DHMM_CHECK abort.
  if (!b.IsRowStochastic(1e-6)) {
    return Status::IOError("CategoricalEmission rows not stochastic");
  }
  return CategoricalEmission(std::move(b), pseudo);
}

}  // namespace dhmm::prob
