// Per-state Gaussian *mixture* emissions — the continuous-density HMM
// (CD-HMM) emission family the paper's related work builds on (Sha & Saul
// [43] model acoustic vectors with per-state GMMs). Each hidden state owns a
// mixture of M univariate Gaussians; the EM accumulation computes component
// responsibilities nested inside the state posteriors.
#ifndef DHMM_PROB_GMM_EMISSION_H_
#define DHMM_PROB_GMM_EMISSION_H_

#include <iosfwd>
#include <memory>

#include "prob/emission.h"

namespace dhmm::prob {

/// \brief Y | X=i ~ sum_m w_{i,m} Normal(mu_{i,m}, sigma_{i,m}^2).
class GmmEmission : public EmissionModel<double> {
 public:
  /// Constructs with explicit parameters: all matrices are k x M; rows of
  /// `weights` on the simplex, sigmas positive.
  GmmEmission(linalg::Matrix weights, linalg::Matrix mu, linalg::Matrix sigma,
              double sigma_floor = 1e-4);

  /// Random initialization: means spread over [mu_lo, mu_hi], uniform
  /// weights, moderate sigmas.
  static GmmEmission RandomInit(size_t k, size_t components, Rng& rng,
                                double mu_lo = 0.0, double mu_hi = 6.0);

  /// Loads from the text produced by Save().
  static Result<GmmEmission> Load(std::istream& is);

  size_t num_states() const override { return weights_.rows(); }
  size_t num_components() const { return weights_.cols(); }

  double LogProb(size_t state, const double& y) const override;
  double Sample(size_t state, Rng& rng) const override;

  void BeginAccumulate() override;
  void Accumulate(const double& y, const linalg::Vector& q) override;
  void FinishAccumulate() override;

  std::unique_ptr<EmissionModel<double>> Clone() const override;
  std::string TypeName() const override { return "gmm"; }
  Status Save(std::ostream& os) const override;

  const linalg::Matrix& weights() const { return weights_; }
  const linalg::Matrix& mu() const { return mu_; }
  const linalg::Matrix& sigma() const { return sigma_; }
  /// M-step variance floor (binary store round-trips it).
  double sigma_floor() const { return sigma_floor_; }

 private:
  /// Per-component log densities for state i at y (size M).
  void ComponentLogDensities(size_t state, double y,
                             linalg::Vector* out) const;

  linalg::Matrix weights_;  // k x M, row-stochastic
  linalg::Matrix mu_;       // k x M
  linalg::Matrix sigma_;    // k x M, positive
  double sigma_floor_;
  // Sufficient statistics per (state, component): weight, sum y, sum y^2.
  linalg::Matrix acc_w_, acc_y_, acc_yy_;
};

}  // namespace dhmm::prob

#endif  // DHMM_PROB_GMM_EMISSION_H_
