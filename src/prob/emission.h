// Emission-model interface shared by the HMM and dHMM trainers.
//
// Inference code (forward-backward, Viterbi) is observation-type-agnostic:
// it consumes only per-frame log-probability tables. EmissionModel<Obs>
// bridges typed observations to those tables and accumulates expected
// sufficient statistics for the EM M-step.
#ifndef DHMM_PROB_EMISSION_H_
#define DHMM_PROB_EMISSION_H_

#include <iosfwd>
#include <memory>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "prob/rng.h"
#include "util/status.h"

namespace dhmm::prob {

/// \brief Per-state emission distribution with EM sufficient statistics.
///
/// Lifecycle during one EM iteration:
///   BeginAccumulate();
///   for every frame y_t:  Accumulate(y_t, q(X_t = .));
///   FinishAccumulate();   // replaces parameters by the M-step update
template <typename Obs>
class EmissionModel {
 public:
  virtual ~EmissionModel() = default;

  /// Number of hidden states k.
  virtual size_t num_states() const = 0;

  /// log p(y | X = state).
  virtual double LogProb(size_t state, const Obs& y) const = 0;

  /// Draws an observation from state's emission distribution.
  virtual Obs Sample(size_t state, Rng& rng) const = 0;

  /// Resets the EM sufficient statistics.
  virtual void BeginAccumulate() = 0;

  /// Adds one frame with posterior state weights q (size k, entries >= 0).
  virtual void Accumulate(const Obs& y, const linalg::Vector& q) = 0;

  /// Replaces the parameters with the M-step update of the accumulated stats.
  virtual void FinishAccumulate() = 0;

  /// Deep copy.
  virtual std::unique_ptr<EmissionModel<Obs>> Clone() const = 0;

  /// Type tag used by model serialization.
  virtual std::string TypeName() const = 0;

  /// Writes parameters as text; paired with each concrete type's Load().
  virtual Status Save(std::ostream& os) const = 0;

  /// Fills a T x k table of log p(y_t | X_t = i) for a whole sequence.
  linalg::Matrix LogProbTable(const std::vector<Obs>& seq) const {
    linalg::Matrix table;
    LogProbTableInto(seq, &table);
    return table;
  }

  /// Allocation-free variant: resizes *table to T x k (reusing its storage
  /// when possible) and overwrites every entry. This is the hot-path entry
  /// point used by the batched EM engine's per-thread workspaces.
  void LogProbTableInto(const std::vector<Obs>& seq,
                        linalg::Matrix* table) const {
    const size_t k = num_states();
    table->Resize(seq.size(), k);
    for (size_t t = 0; t < seq.size(); ++t) {
      double* row = table->row_data(t);
      for (size_t i = 0; i < k; ++i) row[i] = LogProb(i, seq[t]);
    }
  }
};

}  // namespace dhmm::prob

#endif  // DHMM_PROB_EMISSION_H_
