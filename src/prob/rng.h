// Deterministic pseudo-random number generation and samplers.
//
// A self-contained xoshiro256++ generator plus the samplers the paper's
// experiments need (uniform, Gaussian, gamma, Dirichlet, categorical). Using
// our own generator keeps every experiment bit-reproducible across platforms
// and standard libraries.
#ifndef DHMM_PROB_RNG_H_
#define DHMM_PROB_RNG_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace dhmm::prob {

/// \brief xoshiro256++ PRNG with distribution samplers.
class Rng {
 public:
  /// Seeds via splitmix64 expansion of the given seed.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Precondition: n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal via Box–Muller (cached second value).
  double Gaussian();

  /// Normal with the given mean and standard deviation (sigma >= 0).
  double Gaussian(double mean, double sigma);

  /// Gamma(shape, scale=1) via Marsaglia–Tsang; shape > 0.
  double Gamma(double shape);

  /// Gamma with shape and scale.
  double Gamma(double shape, double scale);

  /// Dirichlet draw with per-component concentrations.
  linalg::Vector Dirichlet(const linalg::Vector& alpha);

  /// Symmetric Dirichlet Dir(concentration, ..., concentration) of size n.
  linalg::Vector DirichletSymmetric(size_t n, double concentration);

  /// Categorical draw from (possibly unnormalized, non-negative) weights.
  size_t Categorical(const linalg::Vector& weights);

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p);

  /// Fisher–Yates shuffle of indices [0, n).
  std::vector<size_t> Permutation(size_t n);

  /// Row-stochastic matrix with rows drawn Dir(concentration,...).
  linalg::Matrix RandomStochasticMatrix(size_t rows, size_t cols,
                                        double concentration);

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace dhmm::prob

#endif  // DHMM_PROB_RNG_H_
