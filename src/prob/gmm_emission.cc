#include "prob/gmm_emission.h"

#include <cmath>
#include <istream>
#include <ostream>

#include "prob/logsumexp.h"
#include "util/check.h"

namespace dhmm::prob {

namespace {
constexpr double kLogSqrt2Pi = 0.9189385332046727;

double GaussianLogDensity(double y, double mu, double sigma) {
  double z = (y - mu) / sigma;
  return -0.5 * z * z - std::log(sigma) - kLogSqrt2Pi;
}
}  // namespace

GmmEmission::GmmEmission(linalg::Matrix weights, linalg::Matrix mu,
                         linalg::Matrix sigma, double sigma_floor)
    : weights_(std::move(weights)), mu_(std::move(mu)),
      sigma_(std::move(sigma)), sigma_floor_(sigma_floor) {
  DHMM_CHECK(sigma_floor_ > 0.0);
  DHMM_CHECK(weights_.rows() == mu_.rows() && mu_.rows() == sigma_.rows());
  DHMM_CHECK(weights_.cols() == mu_.cols() && mu_.cols() == sigma_.cols());
  DHMM_CHECK_MSG(weights_.IsRowStochastic(1e-6),
                 "mixture weights must be row-stochastic");
  weights_.NormalizeRows();
  for (size_t i = 0; i < sigma_.rows(); ++i) {
    for (size_t m = 0; m < sigma_.cols(); ++m) {
      DHMM_CHECK_MSG(sigma_(i, m) > 0.0, "sigmas must be positive");
      if (sigma_(i, m) < sigma_floor_) sigma_(i, m) = sigma_floor_;
    }
  }
}

GmmEmission GmmEmission::RandomInit(size_t k, size_t components, Rng& rng,
                                    double mu_lo, double mu_hi) {
  DHMM_CHECK(k > 0 && components > 0);
  linalg::Matrix weights(k, components, 1.0 / static_cast<double>(components));
  linalg::Matrix mu(k, components), sigma(k, components);
  for (size_t i = 0; i < k; ++i) {
    for (size_t m = 0; m < components; ++m) {
      mu(i, m) = rng.Uniform(mu_lo, mu_hi);
      sigma(i, m) = rng.Gamma(2.0, 0.5);
    }
  }
  return GmmEmission(std::move(weights), std::move(mu), std::move(sigma));
}

void GmmEmission::ComponentLogDensities(size_t state, double y,
                                        linalg::Vector* out) const {
  const size_t m_count = num_components();
  DHMM_DCHECK(out->size() == m_count);
  for (size_t m = 0; m < m_count; ++m) {
    double w = weights_(state, m);
    (*out)[m] = w > 0.0
                    ? std::log(w) + GaussianLogDensity(y, mu_(state, m),
                                                       sigma_(state, m))
                    : kNegInf;
  }
}

double GmmEmission::LogProb(size_t state, const double& y) const {
  DHMM_DCHECK(state < num_states());
  linalg::Vector comp(num_components());
  ComponentLogDensities(state, y, &comp);
  return LogSumExp(comp);
}

double GmmEmission::Sample(size_t state, Rng& rng) const {
  DHMM_DCHECK(state < num_states());
  size_t m = rng.Categorical(weights_.Row(state));
  return rng.Gaussian(mu_(state, m), sigma_(state, m));
}

void GmmEmission::BeginAccumulate() {
  acc_w_ = linalg::Matrix(num_states(), num_components());
  acc_y_ = linalg::Matrix(num_states(), num_components());
  acc_yy_ = linalg::Matrix(num_states(), num_components());
}

void GmmEmission::Accumulate(const double& y, const linalg::Vector& q) {
  DHMM_DCHECK(q.size() == num_states());
  const size_t m_count = num_components();
  linalg::Vector comp(m_count);
  for (size_t i = 0; i < num_states(); ++i) {
    if (q[i] == 0.0) continue;
    // Component responsibilities within state i.
    ComponentLogDensities(i, y, &comp);
    double norm = LogSumExp(comp);
    if (norm == kNegInf) continue;
    for (size_t m = 0; m < m_count; ++m) {
      double r = q[i] * std::exp(comp[m] - norm);
      acc_w_(i, m) += r;
      acc_y_(i, m) += r * y;
      acc_yy_(i, m) += r * y * y;
    }
  }
}

void GmmEmission::FinishAccumulate() {
  DHMM_CHECK_MSG(acc_w_.rows() == num_states(),
                 "FinishAccumulate without BeginAccumulate");
  for (size_t i = 0; i < num_states(); ++i) {
    double state_weight = 0.0;
    for (size_t m = 0; m < num_components(); ++m) {
      state_weight += acc_w_(i, m);
    }
    if (state_weight <= 0.0) continue;  // unused state keeps its parameters
    for (size_t m = 0; m < num_components(); ++m) {
      double w = acc_w_(i, m);
      weights_(i, m) = w / state_weight;
      if (w <= 0.0) continue;  // dead component: keep location, zero weight
      double mean = acc_y_(i, m) / w;
      double var = acc_yy_(i, m) / w - mean * mean;
      mu_(i, m) = mean;
      sigma_(i, m) = std::sqrt(std::max(var, sigma_floor_ * sigma_floor_));
    }
  }
}

std::unique_ptr<EmissionModel<double>> GmmEmission::Clone() const {
  return std::make_unique<GmmEmission>(*this);
}

Status GmmEmission::Save(std::ostream& os) const {
  os << num_states() << " " << num_components() << " " << sigma_floor_
     << "\n";
  os.precision(17);
  for (size_t i = 0; i < num_states(); ++i) {
    for (size_t m = 0; m < num_components(); ++m) {
      os << weights_(i, m) << " " << mu_(i, m) << " " << sigma_(i, m)
         << (m + 1 == num_components() ? "\n" : "  ");
    }
  }
  if (!os) return Status::IOError("failed writing GmmEmission");
  return Status::OK();
}

Result<GmmEmission> GmmEmission::Load(std::istream& is) {
  size_t k = 0, m_count = 0;
  double floor = 0.0;
  if (!(is >> k >> m_count >> floor) || k == 0 || m_count == 0 ||
      floor <= 0.0) {
    return Status::IOError("bad GmmEmission header");
  }
  linalg::Matrix weights(k, m_count), mu(k, m_count), sigma(k, m_count);
  for (size_t i = 0; i < k; ++i) {
    for (size_t m = 0; m < m_count; ++m) {
      if (!(is >> weights(i, m) >> mu(i, m) >> sigma(i, m)) ||
          weights(i, m) < 0.0 || sigma(i, m) <= 0.0) {
        return Status::IOError("bad GmmEmission row");
      }
    }
  }
  if (!weights.IsRowStochastic(1e-6)) {
    return Status::IOError("GmmEmission weights not stochastic");
  }
  return GmmEmission(std::move(weights), std::move(mu), std::move(sigma),
                     floor);
}

}  // namespace dhmm::prob
