// Per-state categorical (multinomial) emissions over a discrete vocabulary
// (the PoS-tagging experiment, §4.2.1).
#ifndef DHMM_PROB_CATEGORICAL_EMISSION_H_
#define DHMM_PROB_CATEGORICAL_EMISSION_H_

#include <iosfwd>
#include <memory>

#include "prob/emission.h"

namespace dhmm::prob {

/// \brief Y | X=i ~ Categorical(b_i) over symbols {0, ..., V-1}.
///
/// Parameters are a k x V row-stochastic matrix B. The EM update is the
/// normalized expected symbol count (paper's multinomial M-step), with an
/// optional Laplace pseudo-count to keep unseen symbols finite-likelihood.
class CategoricalEmission : public EmissionModel<int> {
 public:
  /// Constructs from a row-stochastic k x V matrix.
  explicit CategoricalEmission(linalg::Matrix b, double pseudo_count = 0.0);

  /// Random initialization: rows drawn from a symmetric Dirichlet.
  static CategoricalEmission RandomInit(size_t k, size_t vocab, Rng& rng,
                                        double concentration = 1.0,
                                        double pseudo_count = 0.0);

  /// Loads from the text produced by Save().
  static Result<CategoricalEmission> Load(std::istream& is);

  size_t num_states() const override { return b_.rows(); }
  size_t vocab_size() const { return b_.cols(); }

  double LogProb(size_t state, const int& y) const override;
  int Sample(size_t state, Rng& rng) const override;

  void BeginAccumulate() override;
  void Accumulate(const int& y, const linalg::Vector& q) override;
  void FinishAccumulate() override;

  std::unique_ptr<EmissionModel<int>> Clone() const override;
  std::string TypeName() const override { return "categorical"; }
  Status Save(std::ostream& os) const override;

  /// The k x V probability table.
  const linalg::Matrix& b() const { return b_; }
  /// Additive smoothing used by the M-step (binary store round-trips it).
  double pseudo_count() const { return pseudo_count_; }

 private:
  void RebuildLogTable();

  linalg::Matrix b_;      // probabilities
  linalg::Matrix log_b_;  // cached logs
  double pseudo_count_;
  linalg::Matrix acc_;    // expected counts, k x V
};

}  // namespace dhmm::prob

#endif  // DHMM_PROB_CATEGORICAL_EMISSION_H_
