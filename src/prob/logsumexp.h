// Numerically stable log-domain reductions.
#ifndef DHMM_PROB_LOGSUMEXP_H_
#define DHMM_PROB_LOGSUMEXP_H_

#include <cmath>
#include <limits>

#include "linalg/vector.h"

namespace dhmm::prob {

/// Negative infinity, the log-domain zero.
inline constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// log(exp(a) + exp(b)) without overflow.
inline double LogAdd(double a, double b) {
  if (a == kNegInf) return b;
  if (b == kNegInf) return a;
  double m = a > b ? a : b;
  return m + std::log(std::exp(a - m) + std::exp(b - m));
}

/// log sum_i exp(v[i]); returns -inf for an empty or all -inf input.
inline double LogSumExp(const linalg::Vector& v) {
  double m = kNegInf;
  for (size_t i = 0; i < v.size(); ++i) m = v[i] > m ? v[i] : m;
  if (m == kNegInf) return kNegInf;
  double s = 0.0;
  for (size_t i = 0; i < v.size(); ++i) s += std::exp(v[i] - m);
  return m + std::log(s);
}

/// Pointer version over a contiguous range.
inline double LogSumExp(const double* v, size_t n) {
  double m = kNegInf;
  for (size_t i = 0; i < n; ++i) m = v[i] > m ? v[i] : m;
  if (m == kNegInf) return kNegInf;
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) s += std::exp(v[i] - m);
  return m + std::log(s);
}

}  // namespace dhmm::prob

#endif  // DHMM_PROB_LOGSUMEXP_H_
