// Numerically stable log-domain reductions.
#ifndef DHMM_PROB_LOGSUMEXP_H_
#define DHMM_PROB_LOGSUMEXP_H_

#include <cmath>
#include <limits>

#include "linalg/vector.h"

namespace dhmm::prob {

/// Negative infinity, the log-domain zero.
inline constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// NaN contract: every reduction below is NaN-preserving — if any input is
// NaN, the result is NaN (tests/prob_test.cc pins it). LogAdd satisfies this
// inherently: a NaN operand falls through every `== kNegInf` short-circuit
// and poisons the arithmetic. LogSumExp needs the explicit per-element check
// below: its `>`-based max scan (NaN compares false against everything)
// would otherwise skip a NaN entry, and with every other entry -inf would
// return -inf — silently laundering corrupted upstream math into a "valid"
// log-prob of zero.

/// log(exp(a) + exp(b)) without overflow.
///
/// Identities: LogAdd(-inf, x) == x, LogAdd(-inf, -inf) == -inf.
/// NaN in either operand yields NaN.
inline double LogAdd(double a, double b) {
  if (a == kNegInf) return b;
  if (b == kNegInf) return a;
  double m = a > b ? a : b;
  return m + std::log(std::exp(a - m) + std::exp(b - m));
}

/// log sum_i exp(v[i]) over a contiguous range.
///
/// Returns -inf for an empty or all--inf input; NaN if any input is NaN.
inline double LogSumExp(const double* v, size_t n) {
  double m = kNegInf;
  for (size_t i = 0; i < n; ++i) {
    if (std::isnan(v[i])) return std::numeric_limits<double>::quiet_NaN();
    m = v[i] > m ? v[i] : m;
  }
  if (m == kNegInf) return kNegInf;
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) s += std::exp(v[i] - m);
  return m + std::log(s);
}

/// log sum_i exp(v[i]); same contract as the pointer version.
inline double LogSumExp(const linalg::Vector& v) {
  return LogSumExp(v.data(), v.size());
}

}  // namespace dhmm::prob

#endif  // DHMM_PROB_LOGSUMEXP_H_
