// Status / Result<T> error propagation for fallible operations.
//
// Follows the RocksDB convention: functions that can fail at runtime for
// reasons other than programmer error (bad input files, dimension mismatches
// at the public API boundary, non-convergence budgets, ...) return a Status
// or a Result<T> instead of throwing. Programmer-error invariants use the
// DHMM_CHECK macros from util/check.h instead.
#ifndef DHMM_UTIL_STATUS_H_
#define DHMM_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace dhmm {

/// Error/result code carried by a Status. The set is canonical: every
/// layer (training, serving, the wire protocol) maps its failures onto
/// these codes instead of inventing per-layer error enums, so a code
/// means the same thing at the API boundary and on the wire.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kNotFound,          ///< missing file, unknown model id, absent flag
  kIOError,
  kNotConverged,
  kInternal,
  kDeadlineExceeded,  ///< request deadline expired before completion
  kUnavailable,       ///< transient overload — shed, retry later
};

/// \brief Lightweight success/error carrier (RocksDB-style).
///
/// A Status is cheap to copy on the success path (no allocation) and carries
/// a code plus human-readable message on the error path.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Named constructors.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotConverged(std::string msg) {
    return Status(StatusCode::kNotConverged, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  /// From a raw code + message — the wire decoder's entry point. An
  /// out-of-enum code (a frame from a newer peer) degrades to kInternal
  /// rather than aborting or forging kOk.
  static Status FromCode(StatusCode code, std::string msg) {
    if (code == StatusCode::kOk) return Status();
    if (code < StatusCode::kInvalidArgument ||
        code > StatusCode::kUnavailable) {
      return Status(StatusCode::kInternal, std::move(msg));
    }
    return Status(code, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// \brief Value-or-Status, for fallible functions that produce a value.
template <typename T>
class Result {
 public:
  /// Implicit from value (success).
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(T value) : v_(std::move(value)) {}
  /// Implicit from non-OK status (failure). An OK status is a logic error and
  /// is converted to an Internal error to keep the invariant
  /// "ok() == has value".
  Result(Status status) : v_(std::move(status)) {  // NOLINT
    if (std::get<Status>(v_).ok()) {
      v_ = Status::Internal("Result constructed from OK status without value");
    }
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  /// Status of the result: OK when holding a value.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(v_);
  }

  /// Code of the underlying status — kOk exactly when ok(). Mirrors
  /// Status::code() so call sites can switch on a Result directly.
  StatusCode code() const {
    return ok() ? StatusCode::kOk : std::get<Status>(v_).code();
  }

  /// Access the held value. Precondition: ok().
  const T& value() const& { return std::get<T>(v_); }
  T& value() & { return std::get<T>(v_); }
  T&& value() && { return std::get<T>(std::move(v_)); }

  /// The held value, or `fallback` on error — for callers with a safe
  /// default (mirrors std::optional::value_or).
  T value_or(T fallback) const& {
    return ok() ? std::get<T>(v_) : std::move(fallback);
  }
  T value_or(T fallback) && {
    return ok() ? std::get<T>(std::move(v_)) : std::move(fallback);
  }

 private:
  std::variant<T, Status> v_;
};

}  // namespace dhmm

/// Propagates a non-OK status to the caller.
#define DHMM_RETURN_NOT_OK(expr)                  \
  do {                                            \
    ::dhmm::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                    \
  } while (false)

#endif  // DHMM_UTIL_STATUS_H_
