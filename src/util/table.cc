#include "util/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/check.h"
#include "util/string_util.h"

namespace dhmm {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  DHMM_CHECK(!headers_.empty());
}

void TextTable::AddRow(std::vector<std::string> row) {
  DHMM_CHECK_MSG(row.size() == headers_.size(), "row arity mismatch");
  rows_.push_back(std::move(row));
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += "  ";
      line += PadRight(row[c], widths[c]);
    }
    // Trim trailing padding.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };
  std::string out = render_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c ? 2 : 0);
  out += std::string(total, '-') + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string TextTable::ToCsvLines() const {
  std::string out = "csv:" + StrJoin(headers_, ",") + "\n";
  for (const auto& row : rows_) out += "csv:" + StrJoin(row, ",") + "\n";
  return out;
}

void TextTable::Print() const {
  std::fputs(ToString().c_str(), stdout);
  std::fputs(ToCsvLines().c_str(), stdout);
  std::fputs("\n", stdout);
}

std::string AsciiBarChart(const std::vector<std::string>& labels,
                          const std::vector<double>& values, int max_width) {
  DHMM_CHECK(labels.size() == values.size());
  double vmax = 0.0;
  size_t lw = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    vmax = std::max(vmax, values[i]);
    lw = std::max(lw, labels[i].size());
  }
  std::string out;
  for (size_t i = 0; i < values.size(); ++i) {
    int bar = vmax > 0 ? static_cast<int>(std::lround(values[i] / vmax *
                                                      max_width))
                       : 0;
    out += PadLeft(labels[i], lw) + " |" + std::string(bar, '#') +
           StrFormat(" %.6g\n", values[i]);
  }
  return out;
}

std::string AsciiSeriesChart(const std::vector<double>& xs,
                             const std::vector<std::vector<double>>& series,
                             const std::vector<std::string>& names,
                             int height, int width) {
  DHMM_CHECK(series.size() == names.size());
  DHMM_CHECK(height >= 2 && width >= 2);
  double lo = 1e300, hi = -1e300;
  for (const auto& s : series) {
    DHMM_CHECK(s.size() == xs.size());
    for (double v : s) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  if (!(hi > lo)) {
    hi = lo + 1.0;
  }
  std::vector<std::string> grid(height, std::string(width, ' '));
  const char* marks = "*o+x#@";
  for (size_t si = 0; si < series.size(); ++si) {
    char m = marks[si % 6];
    for (size_t i = 0; i < xs.size(); ++i) {
      int col = xs.size() <= 1
                    ? 0
                    : static_cast<int>(
                          std::lround(static_cast<double>(i) /
                                      (xs.size() - 1) * (width - 1)));
      int row = static_cast<int>(
          std::lround((series[si][i] - lo) / (hi - lo) * (height - 1)));
      row = height - 1 - std::clamp(row, 0, height - 1);
      grid[row][col] = m;
    }
  }
  std::string out;
  out += StrFormat("%10.4g +", hi);
  out += std::string(width, '-') + "\n";
  for (int r = 0; r < height; ++r) {
    out += "           |" + grid[r] + "\n";
  }
  out += StrFormat("%10.4g +", lo);
  out += std::string(width, '-') + "\n";
  out += StrFormat("            x: [%.4g .. %.4g]   ",
                   xs.empty() ? 0.0 : xs.front(),
                   xs.empty() ? 0.0 : xs.back());
  for (size_t si = 0; si < series.size(); ++si) {
    out += StrFormat("%c=%s  ", marks[si % 6], names[si].c_str());
  }
  out += "\n";
  return out;
}

}  // namespace dhmm
