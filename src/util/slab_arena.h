// Grow-only fixed-block slab arena.
//
// A SlabArena hands out fixed-size 64-byte-aligned blocks carved from
// large grow-only slabs. Allocate() and Release() are O(1): a released
// block goes onto a free list and is reused by the next Allocate(), so a
// workload that cycles through a bounded number of live blocks touches
// the system allocator only while growing toward its high-water mark.
// Slabs are never freed before the arena itself is destroyed, so every
// pointer handed out stays valid (though recyclable) for the arena's
// lifetime — the property the session pool's generation-stamped handles
// rely on.
//
// Not thread-safe: callers (serve::SessionManager) serialize access.
#ifndef DHMM_UTIL_SLAB_ARENA_H_
#define DHMM_UTIL_SLAB_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/check.h"

namespace dhmm::util {

/// \brief Fixed-block grow-only arena with an O(1) free list.
class SlabArena {
 public:
  /// Blocks start on 64-byte boundaries so double buffers carved from a
  /// block line up with the linalg aligned-storage contract.
  static constexpr size_t kBlockAlignment = 64;

  /// \param block_bytes  size of every block (rounded up to the alignment;
  ///                     must be non-zero).
  /// \param blocks_per_slab  how many blocks each slab holds; larger slabs
  ///                     amortize system allocations, smaller ones waste
  ///                     less on the final partially-used slab.
  explicit SlabArena(size_t block_bytes, size_t blocks_per_slab = 64)
      : block_bytes_((block_bytes + kBlockAlignment - 1) /
                     kBlockAlignment * kBlockAlignment),
        blocks_per_slab_(blocks_per_slab) {
    DHMM_CHECK_MSG(block_bytes > 0, "SlabArena block size must be non-zero");
    DHMM_CHECK_MSG(blocks_per_slab > 0,
                   "SlabArena slabs must hold at least one block");
  }

  SlabArena(const SlabArena&) = delete;
  SlabArena& operator=(const SlabArena&) = delete;
  SlabArena(SlabArena&&) = default;
  SlabArena& operator=(SlabArena&&) = default;

  /// \brief Returns a block_bytes()-sized aligned block. Reuses the free
  /// list when possible; otherwise carves from the newest slab, growing by
  /// one slab only when every existing block is live.
  void* Allocate() {
    if (!free_.empty()) {
      void* p = free_.back();
      free_.pop_back();
      ++in_use_;
      return p;
    }
    if (carve_next_ == carve_end_) AddSlab();
    void* p = carve_next_;
    carve_next_ += block_bytes_;
    ++in_use_;
    return p;
  }

  /// \brief Returns a block obtained from Allocate() to the free list.
  /// The memory is not released to the system until the arena dies.
  void Release(void* block) {
    DHMM_DCHECK(block != nullptr);
    DHMM_DCHECK(in_use_ > 0);
    free_.push_back(block);
    --in_use_;
  }

  /// Effective (alignment-rounded) block size.
  size_t block_bytes() const { return block_bytes_; }
  size_t blocks_per_slab() const { return blocks_per_slab_; }
  /// Blocks currently handed out.
  size_t in_use() const { return in_use_; }
  /// Total blocks backed by slabs (high-water capacity).
  size_t capacity() const { return slabs_.size() * blocks_per_slab_; }
  size_t slab_count() const { return slabs_.size(); }

 private:
  void AddSlab() {
    // Over-allocate by the alignment so the first block can be aligned up:
    // operator new[] on char only guarantees max_align_t.
    const size_t bytes = block_bytes_ * blocks_per_slab_ + kBlockAlignment;
    slabs_.push_back(std::make_unique<unsigned char[]>(bytes));
    auto addr = reinterpret_cast<uintptr_t>(slabs_.back().get());
    addr = (addr + kBlockAlignment - 1) & ~uintptr_t{kBlockAlignment - 1};
    carve_next_ = reinterpret_cast<unsigned char*>(addr);
    carve_end_ = carve_next_ + block_bytes_ * blocks_per_slab_;
  }

  size_t block_bytes_;
  size_t blocks_per_slab_;
  std::vector<std::unique_ptr<unsigned char[]>> slabs_;
  std::vector<void*> free_;
  unsigned char* carve_next_ = nullptr;  // bump cursor in the newest slab
  unsigned char* carve_end_ = nullptr;
  size_t in_use_ = 0;
};

}  // namespace dhmm::util

#endif  // DHMM_UTIL_SLAB_ARENA_H_
