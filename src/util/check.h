// Invariant-checking macros for programmer errors.
//
// DHMM_CHECK fires in all build types (the math in this library is cheap
// relative to the cost of silently wrong numerics); DHMM_DCHECK compiles out
// in NDEBUG builds for hot inner loops.
#ifndef DHMM_UTIL_CHECK_H_
#define DHMM_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace dhmm::internal {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "DHMM_CHECK failed: %s at %s:%d%s%s\n", expr, file,
               line, msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace dhmm::internal

#define DHMM_CHECK(cond)                                                   \
  do {                                                                     \
    if (!(cond))                                                           \
      ::dhmm::internal::CheckFailed(#cond, __FILE__, __LINE__, "");        \
  } while (false)

#define DHMM_CHECK_MSG(cond, msg)                                          \
  do {                                                                     \
    if (!(cond))                                                           \
      ::dhmm::internal::CheckFailed(#cond, __FILE__, __LINE__, (msg));     \
  } while (false)

#ifdef NDEBUG
#define DHMM_DCHECK(cond) \
  do {                    \
  } while (false)
#else
#define DHMM_DCHECK(cond) DHMM_CHECK(cond)
#endif

#endif  // DHMM_UTIL_CHECK_H_
