// Lock-free bounded multi-producer ring buffer.
//
// The hand-off between the serve front-end's IO thread and its dispatcher:
// producers TryPush from any thread, one consumer TryPops in FIFO-per-
// producer order. The queue is a fixed slot array with monotonically
// increasing producer/consumer indices and a per-cell sequence number
// (Vyukov's bounded queue) — no locks, no node allocation, and after
// construction the queue never touches the heap, so it sits on the
// zero-allocation-per-request serving path.
//
// A full queue fails TryPush immediately instead of blocking: callers use
// that as the backpressure signal (the front-end sheds the request with an
// Unavailable response). Capacity is rounded up to a power of two.
#ifndef DHMM_UTIL_MPSC_RING_H_
#define DHMM_UTIL_MPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <memory>

#include "util/check.h"

namespace dhmm::util {

/// \brief Fixed-capacity lock-free MPSC (usable as MPMC) ring buffer.
///
/// T must be cheap to copy — the intended payload is a pointer to a pooled
/// request slot. Push/pop never allocate.
template <typename T>
class MpscRing {
 public:
  /// Capacity is rounded up to the next power of two (minimum 2).
  explicit MpscRing(size_t min_capacity) {
    size_t cap = 2;
    while (cap < min_capacity) cap *= 2;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  /// Slots in the ring (the rounded-up capacity).
  size_t capacity() const { return mask_ + 1; }

  /// \brief Enqueues `v`. Returns false when the ring is full — the
  /// caller's backpressure signal. Safe from any number of threads.
  bool TryPush(const T& v) {
    size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const size_t seq = cell.seq.load(std::memory_order_acquire);
      const intptr_t dif =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (dif == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          cell.value = v;
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS lost: pos was reloaded, retry on the new cell.
      } else if (dif < 0) {
        return false;  // the cell still holds an unconsumed value: full
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  /// \brief Dequeues into *out. Returns false when the ring is empty.
  /// Safe from multiple threads, though the front-end runs one consumer.
  bool TryPop(T* out) {
    DHMM_DCHECK(out != nullptr);
    size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const size_t seq = cell.seq.load(std::memory_order_acquire);
      const intptr_t dif =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          *out = cell.value;
          cell.seq.store(pos + mask_ + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // empty
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Approximate occupancy (exact when producers and the consumer are
  /// quiescent) — used by tests and stats, not for flow control.
  size_t size_approx() const {
    const size_t h = head_.load(std::memory_order_acquire);
    const size_t t = tail_.load(std::memory_order_acquire);
    return h >= t ? h - t : 0;
  }

 private:
  struct Cell {
    std::atomic<size_t> seq;
    T value;
  };

  std::unique_ptr<Cell[]> cells_;
  size_t mask_ = 0;
  // Producer and consumer cursors on separate cache lines so producers'
  // CAS traffic does not steal the consumer's line.
  alignas(64) std::atomic<size_t> head_{0};  // next slot to produce into
  alignas(64) std::atomic<size_t> tail_{0};  // next slot to consume from
};

}  // namespace dhmm::util

#endif  // DHMM_UTIL_MPSC_RING_H_
