// Wall-clock timing helper for benches and convergence reporting.
#ifndef DHMM_UTIL_TIMER_H_
#define DHMM_UTIL_TIMER_H_

#include <chrono>

namespace dhmm {

/// \brief Monotonic stopwatch; starts at construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dhmm

#endif  // DHMM_UTIL_TIMER_H_
