// Small string helpers: printf-style formatting, joining, padding.
//
// gcc 12 does not ship std::format, so benches and log lines use StrFormat.
#ifndef DHMM_UTIL_STRING_UTIL_H_
#define DHMM_UTIL_STRING_UTIL_H_

#include <cstdarg>
#include <string>
#include <vector>

namespace dhmm {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins the given parts with a separator.
std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep);

/// Left-pads (or truncates nothing) `s` with spaces up to `width`.
std::string PadLeft(const std::string& s, size_t width);

/// Right-pads `s` with spaces up to `width`.
std::string PadRight(const std::string& s, size_t width);

/// Splits on a single character, keeping empty fields.
std::vector<std::string> StrSplit(const std::string& s, char sep);

}  // namespace dhmm

#endif  // DHMM_UTIL_STRING_UTIL_H_
