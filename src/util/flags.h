// Minimal --key=value command-line flag parsing for examples and benches.
#ifndef DHMM_UTIL_FLAGS_H_
#define DHMM_UTIL_FLAGS_H_

#include <map>
#include <string>

#include "util/status.h"

namespace dhmm {

/// \brief Parses `--key=value` / `--switch` style arguments.
///
/// Unknown positional arguments are rejected so typos surface immediately.
class FlagParser {
 public:
  /// Parses argv; returns InvalidArgument on malformed tokens.
  Status Parse(int argc, const char* const* argv);

  /// Typed getters with defaults. Returns the default when the flag is absent;
  /// aborts via DHMM_CHECK if present but unparseable (programmer/user error
  /// is surfaced loudly in tools).
  std::string GetString(const std::string& key, const std::string& def) const;
  int GetInt(const std::string& key, int def) const;
  double GetDouble(const std::string& key, double def) const;
  bool GetBool(const std::string& key, bool def) const;

  /// True if the flag appeared on the command line.
  bool Has(const std::string& key) const { return values_.count(key) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace dhmm

#endif  // DHMM_UTIL_FLAGS_H_
