// Minimal --key=value command-line flag parsing for examples and benches.
#ifndef DHMM_UTIL_FLAGS_H_
#define DHMM_UTIL_FLAGS_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/status.h"

namespace dhmm {

/// \brief Parses `--key=value` / `--switch` style arguments.
///
/// Unknown positional arguments are rejected so typos surface immediately,
/// and flags that were parsed but never read by any getter can be reported
/// via UnreadFlags() / VerifyAllRead() so misspelled *names* surface too.
///
/// Thread-compatible, not thread-safe: the const getters record which
/// flags were read (for the typo guard), so a parser shared across threads
/// needs external synchronization. CLIs parse and read flags in main()
/// before spawning workers.
class FlagParser {
 public:
  /// Parses argv; returns InvalidArgument on malformed tokens.
  Status Parse(int argc, const char* const* argv);

  /// Typed getters with defaults. Returns the default when the flag is
  /// absent. A present-but-malformed value (not a number, empty `--x=`,
  /// overflow, unknown bool spelling) prints a clear error to stderr and
  /// falls back to the default — it never aborts the process and never
  /// silently parses as 0. Tools that want to fail instead should use the
  /// strict single-argument overloads below.
  std::string GetString(const std::string& key, const std::string& def) const;
  int GetInt(const std::string& key, int def) const;
  double GetDouble(const std::string& key, double def) const;
  bool GetBool(const std::string& key, bool def) const;

  /// Strict getters: NotFound when the flag is absent, InvalidArgument when
  /// the value is empty, unparseable, or out of range for the target type.
  Result<std::string> GetString(const std::string& key) const;
  Result<int> GetInt(const std::string& key) const;
  Result<double> GetDouble(const std::string& key) const;
  Result<bool> GetBool(const std::string& key) const;

  /// True if the flag appeared on the command line (marks it as read).
  bool Has(const std::string& key) const {
    if (values_.count(key) == 0) return false;
    read_.insert(key);
    return true;
  }

  /// Flags that were parsed but never touched by Has() or any getter —
  /// almost always a misspelled flag name. Sorted.
  std::vector<std::string> UnreadFlags() const;

  /// InvalidArgument naming every unread flag; OK when there are none.
  /// CLIs should call this after their last getter so typos fail loudly.
  Status VerifyAllRead() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::set<std::string> read_;  // keys consumed by Has()/getters
};

}  // namespace dhmm

#endif  // DHMM_UTIL_FLAGS_H_
