// Aligned text-table and ASCII-chart rendering for the bench harnesses.
//
// Every paper table/figure reproduction prints through these helpers so that
// bench output is uniform and machine-extractable (each table also emits
// `csv:`-prefixed lines).
#ifndef DHMM_UTIL_TABLE_H_
#define DHMM_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace dhmm {

/// \brief Column-aligned text table builder.
class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a row; must match the header arity.
  void AddRow(std::vector<std::string> row);

  /// Renders the table with a header separator line.
  std::string ToString() const;

  /// Renders `csv:`-prefixed comma-separated lines (header + rows).
  std::string ToCsvLines() const;

  /// Convenience: render both the aligned table and the csv lines to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// \brief Renders a horizontal ASCII bar chart (one bar per labeled value).
///
/// Used for the paper's histogram figures (Fig. 4, Fig. 9, Table 1 row 2).
std::string AsciiBarChart(const std::vector<std::string>& labels,
                          const std::vector<double>& values,
                          int max_width = 50);

/// \brief Renders an x/y series as an ASCII line chart (rows = value bins).
///
/// Used for the sweep figures (Fig. 3, 5, 7, 10).
std::string AsciiSeriesChart(const std::vector<double>& xs,
                             const std::vector<std::vector<double>>& series,
                             const std::vector<std::string>& names,
                             int height = 16, int width = 60);

}  // namespace dhmm

#endif  // DHMM_UTIL_TABLE_H_
