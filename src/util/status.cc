#include "util/status.h"

namespace dhmm {
namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kIOError: return "IOError";
    case StatusCode::kNotConverged: return "NotConverged";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
    case StatusCode::kUnavailable: return "Unavailable";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = CodeName(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace dhmm
