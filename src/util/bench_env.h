// Shared environment knobs for the reproduction bench harnesses.
#ifndef DHMM_UTIL_BENCH_ENV_H_
#define DHMM_UTIL_BENCH_ENV_H_

#include <cstdlib>
#include <string>

namespace dhmm {

/// True when DHMM_BENCH_FAST=1: benches shrink sweeps/datasets so the whole
/// suite runs in seconds (CI mode). Default is the full-fidelity run.
inline bool BenchFastMode() {
  const char* v = std::getenv("DHMM_BENCH_FAST");
  return v != nullptr && std::string(v) == "1";
}

/// Scales a workload size down in fast mode.
inline int BenchScaled(int full, int fast) {
  return BenchFastMode() ? fast : full;
}

}  // namespace dhmm

#endif  // DHMM_UTIL_BENCH_ENV_H_
