// Crash-consistent file IO helpers shared by every checkpoint writer.
//
// The text serializer (hmm/serialization.h) and the binary model store
// (store/model_store.h) make the same durability promise: after a save
// returns OK, a machine crash — not just a process crash — leaves either
// the previous complete file or the new one at the destination, never a
// torn or missing file. That takes three fsyncs (temp file contents, the
// atomic rename via the parent directory, and nothing else), and getting
// the directory fsync wrong is the classic silent bug, so the sequence
// lives here exactly once.
#ifndef DHMM_UTIL_FSIO_H_
#define DHMM_UTIL_FSIO_H_

#include <cstdio>
#include <fstream>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "util/status.h"

namespace dhmm::util {

/// \brief fsyncs a path (file or directory) where the platform supports
/// it; no-op elsewhere. Directory fsync makes a completed rename durable.
inline Status SyncPathToDisk(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError("cannot open for fsync: " + path);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::IOError("fsync failed: " + path);
#else
  (void)path;
#endif
  return Status::OK();
}

/// \brief Best-effort fsync of the directory containing `path`, making a
/// rename into that directory durable. Best effort because some
/// filesystems (FUSE/network mounts) reject directory fsync, and by the
/// time this runs the file itself is already complete at `path` — failing
/// the save would report a written checkpoint as missing.
inline void SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  SyncPathToDisk(slash == std::string::npos ? std::string(".")
                                            : path.substr(0, slash + 1));
}

/// \brief Atomically replaces `path` with `size` bytes from `data`:
/// write to `path + ".tmp"`, flush + fsync, rename over `path`, fsync the
/// parent directory. The temp path is deterministic, so concurrent
/// writers to the same path must be externally serialized (last rename
/// wins) — the same contract as hmm::SaveHmmToFile.
inline Status AtomicWriteFile(const std::string& path, const void* data,
                              size_t size) {
  const std::string tmp = path + ".tmp";
  Status st;
  {
    std::ofstream os(tmp, std::ios::out | std::ios::trunc |
                              std::ios::binary);
    if (!os) return Status::IOError("cannot open for write: " + tmp);
    os.write(static_cast<const char*>(data),
             static_cast<std::streamsize>(size));
    if (os) os.flush();
    if (!os) st = Status::IOError("write failed: " + tmp);
    os.close();
    if (st.ok() && os.fail()) st = Status::IOError("close failed: " + tmp);
  }
  if (st.ok()) st = SyncPathToDisk(tmp);
  if (!st.ok()) {
    std::remove(tmp.c_str());
    return st;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " over " + path);
  }
  SyncParentDir(path);
  return Status::OK();
}

}  // namespace dhmm::util

#endif  // DHMM_UTIL_FSIO_H_
