// A small persistent worker pool for data-parallel loops.
//
// Built for the batched EM engine: one pool lives for a whole training job,
// each ParallelFor fans a sequence batch out across the workers, and workers
// are identified by a stable id in [0, num_threads) so callers can give each
// one its own scratch workspace. Work items are handed out dynamically (an
// atomic cursor), so the item -> worker assignment is nondeterministic;
// callers that need deterministic results must write into per-item slots and
// reduce in item order afterwards, which is exactly what the engine does.
#ifndef DHMM_UTIL_THREAD_POOL_H_
#define DHMM_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dhmm::util {

/// \brief Fixed-size pool of persistent worker threads.
///
/// `num_threads == 1` degenerates to inline execution on the calling thread
/// with no worker threads, no locking, and no atomics on the hot path, so the
/// single-threaded configuration costs nothing over a plain loop.
class ThreadPool {
 public:
  /// \param num_threads total workers including the calling thread;
  ///        <= 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism (calling thread + background workers).
  int num_threads() const { return num_threads_; }

  /// \brief Calls fn(worker, item) for every item in [0, n) and blocks until
  /// all calls return. `worker` is in [0, num_threads). The calling thread
  /// participates as worker 0. `fn` must not throw and must not re-enter the
  /// pool.
  void ParallelFor(size_t n, const std::function<void(int, size_t)>& fn);

 private:
  void WorkerLoop(int worker);
  void DrainItems(int worker);

  const int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int, size_t)>* task_ = nullptr;  // guarded by mu_
  size_t task_size_ = 0;                                    // guarded by mu_
  size_t generation_ = 0;                                   // guarded by mu_
  int busy_workers_ = 0;                                    // guarded by mu_
  bool shutdown_ = false;                                   // guarded by mu_
  std::atomic<size_t> next_item_{0};
};

}  // namespace dhmm::util

#endif  // DHMM_UTIL_THREAD_POOL_H_
