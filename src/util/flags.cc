#include "util/flags.h"

#include <cctype>
#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/string_util.h"

namespace dhmm {

namespace {

std::string Lowered(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace

Status FlagParser::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      return Status::InvalidArgument("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg] = "true";
    } else {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
  return Status::OK();
}

std::string FlagParser::GetString(const std::string& key,
                                  const std::string& def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  read_.insert(key);
  return it->second;
}

Result<std::string> FlagParser::GetString(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return Status::NotFound("flag --" + key + " not set");
  }
  read_.insert(key);
  return it->second;
}

Result<int> FlagParser::GetInt(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return Status::NotFound("flag --" + key + " not set");
  }
  read_.insert(key);
  const std::string& value = it->second;
  if (value.empty()) {
    return Status::InvalidArgument("--" + key + "= has an empty value");
  }
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument("--" + key + "=" + value +
                                   " is not an integer");
  }
  if (errno == ERANGE || v < INT_MIN || v > INT_MAX) {
    return Status::InvalidArgument("--" + key + "=" + value +
                                   " overflows int");
  }
  return static_cast<int>(v);
}

int FlagParser::GetInt(const std::string& key, int def) const {
  if (!Has(key)) return def;
  Result<int> r = GetInt(key);
  if (r.ok()) return r.value();
  std::fprintf(stderr, "warning: %s; using default %d\n",
               r.status().message().c_str(), def);
  return def;
}

Result<double> FlagParser::GetDouble(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return Status::NotFound("flag --" + key + " not set");
  }
  read_.insert(key);
  const std::string& value = it->second;
  if (value.empty()) {
    return Status::InvalidArgument("--" + key + "= has an empty value");
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument("--" + key + "=" + value +
                                   " is not a number");
  }
  // Underflow to a (de)normal near zero is accepted; magnitude overflow is
  // a malformed flag, not a usable value.
  if (errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL)) {
    return Status::InvalidArgument("--" + key + "=" + value +
                                   " overflows double");
  }
  return v;
}

double FlagParser::GetDouble(const std::string& key, double def) const {
  if (!Has(key)) return def;
  Result<double> r = GetDouble(key);
  if (r.ok()) return r.value();
  std::fprintf(stderr, "warning: %s; using default %g\n",
               r.status().message().c_str(), def);
  return def;
}

Result<bool> FlagParser::GetBool(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return Status::NotFound("flag --" + key + " not set");
  }
  read_.insert(key);
  const std::string v = Lowered(it->second);
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  return Status::InvalidArgument("--" + key + "=" + it->second +
                                 " is not a boolean (use true/false, 1/0, "
                                 "yes/no, or on/off)");
}

bool FlagParser::GetBool(const std::string& key, bool def) const {
  if (!Has(key)) return def;
  Result<bool> r = GetBool(key);
  if (r.ok()) return r.value();
  std::fprintf(stderr, "warning: %s; using default %s\n",
               r.status().message().c_str(), def ? "true" : "false");
  return def;
}

std::vector<std::string> FlagParser::UnreadFlags() const {
  std::vector<std::string> unread;
  for (const auto& [key, value] : values_) {
    if (read_.count(key) == 0) unread.push_back(key);
  }
  return unread;
}

Status FlagParser::VerifyAllRead() const {
  std::vector<std::string> unread = UnreadFlags();
  if (unread.empty()) return Status::OK();
  return Status::InvalidArgument("unknown flag" +
                                 std::string(unread.size() > 1 ? "s" : "") +
                                 ": --" + StrJoin(unread, ", --"));
}

}  // namespace dhmm
