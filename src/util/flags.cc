#include "util/flags.h"

#include <cstdlib>

#include "util/check.h"
#include "util/string_util.h"

namespace dhmm {

Status FlagParser::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      return Status::InvalidArgument("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg] = "true";
    } else {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
  return Status::OK();
}

std::string FlagParser::GetString(const std::string& key,
                                  const std::string& def) const {
  auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

int FlagParser::GetInt(const std::string& key, int def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  char* end = nullptr;
  long v = std::strtol(it->second.c_str(), &end, 10);
  DHMM_CHECK_MSG(end != nullptr && *end == '\0', "flag is not an integer");
  return static_cast<int>(v);
}

double FlagParser::GetDouble(const std::string& key, double def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  DHMM_CHECK_MSG(end != nullptr && *end == '\0', "flag is not a number");
  return v;
}

bool FlagParser::GetBool(const std::string& key, bool def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  return it->second == "true" || it->second == "1";
}

}  // namespace dhmm
