#include "util/string_util.h"

#include <cstdio>

namespace dhmm {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    // vsnprintf writes the terminating NUL into [data, data+n], which is
    // legal to overwrite for std::string since C++11.
    std::vsnprintf(out.data(), static_cast<size_t>(n) + 1, fmt, args);
  }
  va_end(args);
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string PadLeft(const std::string& s, size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string PadRight(const std::string& s, size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

std::vector<std::string> StrSplit(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

}  // namespace dhmm
