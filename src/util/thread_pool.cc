#include "util/thread_pool.h"

#include <algorithm>

#include "util/check.h"

namespace dhmm::util {

namespace {

int ResolveThreadCount(int requested) {
  if (requested > 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(ResolveThreadCount(num_threads)) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int w = 1; w < num_threads_; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    // Destruction must not strand an in-flight ParallelFor from another
    // thread: a worker that observed shutdown_ would exit without draining
    // its items, leaving that caller waiting on done_cv_ forever. Let the
    // active round finish (task_ cleared, every worker idle) before the
    // workers are told to exit.
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock,
                  [&] { return task_ == nullptr && busy_workers_ == 0; });
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::DrainItems(int worker) {
  // Dynamic scheduling: each worker repeatedly claims the next unclaimed
  // item. Imbalanced item costs (sequences of wildly different lengths)
  // self-balance without any up-front partitioning.
  for (size_t i = next_item_.fetch_add(1, std::memory_order_relaxed);
       i < task_size_;
       i = next_item_.fetch_add(1, std::memory_order_relaxed)) {
    (*task_)(worker, i);
  }
}

void ThreadPool::WorkerLoop(int worker) {
  size_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
    }
    DrainItems(worker);
    {
      // notify_all: the owning ParallelFor and a destructor waiting for
      // quiescence may both be parked on done_cv_.
      std::lock_guard<std::mutex> lock(mu_);
      if (--busy_workers_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(int, size_t)>& fn) {
  if (n == 0) return;
  if (num_threads_ == 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(0, i);
    return;
  }
  bool run_inline = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    DHMM_CHECK_MSG(task_ == nullptr, "ThreadPool::ParallelFor re-entered");
    if (shutdown_) {
      // Destruction already began: the workers are exiting and will never
      // claim another item. Run inline rather than strand the caller.
      run_inline = true;
    } else {
      task_ = &fn;
      task_size_ = n;
      next_item_.store(0, std::memory_order_relaxed);
      busy_workers_ = num_threads_ - 1;
      ++generation_;
    }
  }
  if (run_inline) {
    for (size_t i = 0; i < n; ++i) fn(0, i);
    return;
  }
  start_cv_.notify_all();
  DrainItems(/*worker=*/0);
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return busy_workers_ == 0; });
    task_ = nullptr;
  }
  // Wake a destructor waiting for quiescence (it needs task_ == nullptr,
  // which only this thread publishes).
  done_cv_.notify_all();
}

}  // namespace dhmm::util
