// The one request/response pair of the serving API.
//
// A decode request is the same type everywhere: in-process callers hand a
// DecodeRequest to DecodeService::Submit, and the wire protocol
// (serve/wire.h) is nothing but a (de)serialization of this pair — the
// header fields of a wire frame are exactly the scalar members below, and
// the payload is the observation sequence / the response body. Adding a
// field here means adding it to the codec, and nowhere else.
#ifndef DHMM_SERVE_REQUEST_H_
#define DHMM_SERVE_REQUEST_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace dhmm::serve {

/// Registry key for a model. Fixed-width so it rides in the wire header.
using ModelId = uint64_t;

/// What a request asks of the model. Values are the wire encoding.
enum class DecodeKind : uint8_t {
  kViterbi = 0,        ///< most likely state path + its log joint
  kPosterior = 1,      ///< per-frame posterior argmax + data log-likelihood
  kLogLikelihood = 2,  ///< data log-likelihood only
  /// Streaming push: the observations extend this connection's resident
  /// fixed-lag session (serve::SessionManager) instead of being decoded as
  /// a standalone sequence. The response carries the smoothed labels that
  /// became available (path) and the running stream log-likelihood (value).
  /// Front-end only — DecodeService rejects it (a session is per-stream
  /// state, not a stateless batch decode).
  kSessionPush = 3,
  /// Stats query: the response's `text` carries the process's rendered
  /// obs::Registry snapshot (obs::RenderText). The observation payload is
  /// ignored (send an empty sequence) and the model id is not routed.
  /// Front-end only — DecodeService rejects it (stats are process state,
  /// not a batch decode).
  kStats = 4,
};

/// \brief One decode request — in-process and on the wire.
///
/// The observation sequence is *borrowed*: it must stay alive and
/// unmodified until the request completes. The wire path points this at a
/// pooled per-request buffer; in-process callers point it at their own
/// vector. Everything else is plain scalars, so a request is trivially
/// copyable and never owns heap state.
template <typename Obs>
struct DecodeRequest {
  uint64_t request_id = 0;   ///< caller-chosen correlation id, echoed back
  ModelId model = 0;         ///< registry key; single-model services ignore
  DecodeKind kind = DecodeKind::kViterbi;
  /// Relative deadline in microseconds from submission; 0 = none. The
  /// front-end sheds a request whose deadline expires while it is still
  /// queued (DeadlineExceeded) rather than decoding dead work.
  uint64_t deadline_micros = 0;
  const std::vector<Obs>* obs = nullptr;  ///< borrowed until completion
};

/// \brief Completed request payload — in-process and on the wire.
///
/// In-process it lives in a pooled slot (valid until the owning
/// DecodeFuture is released); on the wire it is the response frame body.
struct DecodeResponse {
  uint64_t request_id = 0;   ///< echoed from the request
  Status status;             ///< non-OK for rejected requests
  DecodeKind kind = DecodeKind::kViterbi;
  std::vector<int> path;     ///< kViterbi / kPosterior; empty otherwise
  double value = 0.0;        ///< log joint (Viterbi) or log-likelihood
  uint64_t model_version = 0;  ///< which model snapshot served the request
  /// kStats payload: the rendered metrics snapshot. On the wire it rides
  /// the message field (which error responses use for the status
  /// message), so the frame layout is unchanged: an OK response encodes
  /// `text`, a non-OK response encodes status.message().
  std::string text;
};

}  // namespace dhmm::serve

#endif  // DHMM_SERVE_REQUEST_H_
