// A minimal blocking client for the wire protocol (serve/wire.h).
//
// Used by the loopback tests, the front-end benchmark, and the gateway
// example. Split send/receive entry points let callers pipeline many
// requests per connection; Call() is the one-shot convenience. All
// buffers are members and grow-only, so a warm request/response round
// performs zero client-side heap allocations on the OK path.
#ifndef DHMM_SERVE_WIRE_CLIENT_H_
#define DHMM_SERVE_WIRE_CLIENT_H_

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "serve/request.h"
#include "serve/wire.h"
#include "util/check.h"
#include "util/status.h"

namespace dhmm::serve {

/// Options for the wire client. Designated-initializer-friendly POD with a
/// Validate() checked at construction — the shared shape of every serve
/// options struct (see the README options table).
struct WireClientOptions {
  /// Deadline in milliseconds for one whole Receive() (header + payload).
  /// 0 — the default — blocks indefinitely, the pre-option behavior. When
  /// set, a response that does not arrive in time returns
  /// kDeadlineExceeded; the connection is left as-is (a late frame is
  /// still readable by the next Receive), so callers decide whether to
  /// resynchronize or Close().
  int receive_timeout_ms = 0;
  /// Deadline in milliseconds for Connect() to establish the TCP
  /// connection. 0 — the default — blocks indefinitely, the pre-option
  /// behavior. When set, the connect runs non-blocking under poll(); a
  /// connection that is not established in time returns kDeadlineExceeded
  /// and leaves the client disconnected.
  int connect_timeout_ms = 0;

  Status Validate() const {
    if (receive_timeout_ms < 0) {
      return Status::InvalidArgument(
          "WireClientOptions::receive_timeout_ms must be >= 0");
    }
    if (connect_timeout_ms < 0) {
      return Status::InvalidArgument(
          "WireClientOptions::connect_timeout_ms must be >= 0");
    }
    return Status::OK();
  }
};

/// \brief Blocking loopback client speaking the binary wire protocol.
class WireClient {
 public:
  explicit WireClient(const WireClientOptions& options = {})
      : options_(options) {
    const Status opt_st = options.Validate();
    DHMM_CHECK_MSG(opt_st.ok(), opt_st.message().c_str());
  }
  ~WireClient() { Close(); }
  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  /// \brief Connects to 127.0.0.1:`port`, honoring connect_timeout_ms.
  Status Connect(uint16_t port) {
    Close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return Errno("socket");
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    const Status st =
        options_.connect_timeout_ms > 0
            ? ConnectWithDeadline(reinterpret_cast<const sockaddr*>(&addr),
                                  sizeof(addr))
            : (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                         sizeof(addr)) == 0
                   ? Status::OK()
                   : Errno("connect"));
    if (!st.ok()) Close();
    return st;
  }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  bool connected() const { return fd_ >= 0; }

  /// \brief Encodes and sends one request frame. Returns without waiting
  /// for the response, so callers can pipeline.
  template <typename Obs>
  Status Send(const DecodeRequest<Obs>& req) {
    if (fd_ < 0) return Status::FailedPrecondition("client not connected");
    send_buf_.clear();
    DHMM_RETURN_NOT_OK(wire::EncodeRequest(req, &send_buf_));
    return SendRaw(send_buf_.data(), send_buf_.size());
  }

  /// \brief Sends `size` raw bytes — tests use this to inject malformed
  /// frames the typed encoder refuses to produce.
  Status SendRaw(const uint8_t* data, size_t size) {
    if (fd_ < 0) return Status::FailedPrecondition("client not connected");
    size_t off = 0;
    while (off < size) {
      const ssize_t n = ::send(fd_, data + off, size - off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Errno("send");
      }
      off += static_cast<size_t>(n);
    }
    return Status::OK();
  }

  /// \brief Blocks for the next response frame. The returned
  /// `resp->status` is the server-side decode status; a non-OK return
  /// here means the transport itself failed (closed connection,
  /// undecodable frame).
  Status Receive(DecodeResponse* resp, wire::FrameHeader* header = nullptr) {
    if (fd_ < 0) return Status::FailedPrecondition("client not connected");
    // One deadline covers the whole frame: header and payload.
    if (options_.receive_timeout_ms > 0) {
      deadline_ = Clock::now() +
                  std::chrono::milliseconds(options_.receive_timeout_ms);
    }
    DHMM_RETURN_NOT_OK(ReceiveExact(wire::kHeaderSize));
    wire::FrameHeader h;
    DHMM_RETURN_NOT_OK(wire::DecodeHeader(recv_buf_.data(),
                                          wire::kHeaderSize, &h));
    DHMM_RETURN_NOT_OK(ReceiveExact(h.payload_len));
    if (header != nullptr) *header = h;
    return wire::DecodeResponsePayload(h, recv_buf_.data(), h.payload_len,
                                       resp);
  }

  /// \brief One-shot convenience: Send + Receive.
  template <typename Obs>
  Status Call(const DecodeRequest<Obs>& req, DecodeResponse* resp,
              wire::FrameHeader* header = nullptr) {
    DHMM_RETURN_NOT_OK(Send(req));
    return Receive(resp, header);
  }

 private:
  static Status Errno(const char* what) {
    return Status::Internal(std::string(what) + ": " +
                            std::strerror(errno));
  }

  // The classic bounded connect: flip the socket non-blocking, start the
  // connect, poll for writability within the deadline, then read SO_ERROR
  // for the real outcome and restore the original flags. A timeout is a
  // typed kDeadlineExceeded, never a hang.
  Status ConnectWithDeadline(const sockaddr* addr, socklen_t len) {
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    if (flags < 0) return Errno("fcntl");
    if (::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) != 0) {
      return Errno("fcntl");
    }
    Status st = Status::OK();
    if (::connect(fd_, addr, len) != 0) {
      if (errno != EINPROGRESS) {
        st = Errno("connect");
      } else {
        st = AwaitConnected();
      }
    }
    if (st.ok() && ::fcntl(fd_, F_SETFL, flags) != 0) st = Errno("fcntl");
    return st;
  }

  // Polls an in-progress non-blocking connect until it resolves or the
  // deadline passes. Writability alone is not success — SO_ERROR carries
  // the real result (e.g. ECONNREFUSED also wakes POLLOUT).
  Status AwaitConnected() {
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(options_.connect_timeout_ms);
    for (;;) {
      const auto remaining = std::chrono::duration_cast<
          std::chrono::milliseconds>(deadline - Clock::now());
      if (remaining.count() <= 0) {
        return Status::DeadlineExceeded("connection not established within "
                                        "the connect deadline");
      }
      pollfd p{fd_, POLLOUT, 0};
      const int r = ::poll(&p, 1, static_cast<int>(remaining.count()));
      if (r > 0) {
        int err = 0;
        socklen_t elen = sizeof(err);
        if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &elen) != 0) {
          return Errno("getsockopt");
        }
        if (err != 0) {
          errno = err;
          return Errno("connect");
        }
        return Status::OK();
      }
      if (r == 0) {
        return Status::DeadlineExceeded("connection not established within "
                                        "the connect deadline");
      }
      if (errno != EINTR) return Errno("poll");
    }
  }

  // Waits for readability within the Receive() deadline. No-op with the
  // deadline disabled.
  Status AwaitReadable() {
    if (options_.receive_timeout_ms <= 0) return Status::OK();
    for (;;) {
      const auto remaining = std::chrono::duration_cast<
          std::chrono::milliseconds>(deadline_ - Clock::now());
      if (remaining.count() <= 0) {
        return Status::DeadlineExceeded("no response within the receive "
                                        "deadline");
      }
      pollfd p{fd_, POLLIN, 0};
      const int r = ::poll(&p, 1, static_cast<int>(remaining.count()));
      if (r > 0) return Status::OK();
      if (r == 0) {
        return Status::DeadlineExceeded("no response within the receive "
                                        "deadline");
      }
      if (errno != EINTR) return Errno("poll");
    }
  }

  Status ReceiveExact(size_t size) {
    if (recv_buf_.size() < size) recv_buf_.resize(size);  // grow-only
    size_t off = 0;
    while (off < size) {
      DHMM_RETURN_NOT_OK(AwaitReadable());
      const ssize_t n = ::recv(fd_, recv_buf_.data() + off, size - off, 0);
      if (n == 0) {
        return Status::Unavailable("connection closed by server");
      }
      if (n < 0) {
        if (errno == EINTR) continue;
        return Errno("recv");
      }
      off += static_cast<size_t>(n);
    }
    return Status::OK();
  }

  using Clock = std::chrono::steady_clock;

  const WireClientOptions options_;
  Clock::time_point deadline_{};
  int fd_ = -1;
  std::vector<uint8_t> send_buf_;
  std::vector<uint8_t> recv_buf_;
};

}  // namespace dhmm::serve

#endif  // DHMM_SERVE_WIRE_CLIENT_H_
