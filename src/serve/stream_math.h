// The fixed-lag smoothing math shared by StreamingDecoder and
// SessionManager, over raw ring-buffer views.
//
// Both stream front-ends run the exact same kernel call sequence — the
// scaled forward step and the fused backward/gamma sweep of the offline
// inference path — so factoring the math over raw pointers is what makes
// the bitwise contracts composable: StreamingDecoder's labels and
// SessionManager's labels are bitwise-identical to offline
// hmm::PosteriorDecode at full lag *by construction*, because they are the
// same instructions over the same layout. The wrappers own layout, state
// machines, and error policy; this header owns only arithmetic.
//
// A stream's working set is a StreamRings view: two window x k row-major
// rings (shifted emissions, scaled forward messages), a window-length
// scale ring, and five k-length scratch rows. RingDoubles() gives the
// total footprint so callers can carve a whole stream out of one
// contiguous 64-byte-aligned block (util::SlabArena) or point the view at
// separately owned linalg buffers — the math cannot tell the difference.
#ifndef DHMM_SERVE_STREAM_MATH_H_
#define DHMM_SERVE_STREAM_MATH_H_

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "hmm/model.h"
#include "linalg/kernels.h"
#include "linalg/kernels_dispatch.h"
#include "linalg/matrix.h"
#include "prob/logsumexp.h"

namespace dhmm::serve {

/// Largest accepted smoothing lag (the ring holds lag + 1 frames). Bounds
/// both stream front-ends' options so a config error (e.g. a negative
/// flag cast to size_t) cannot overflow the window arithmetic or request
/// an absurd allocation.
inline constexpr size_t kMaxLag = size_t{1} << 24;

}  // namespace dhmm::serve

namespace dhmm::serve::stream {

/// Ring rows needed for a smoothing lag: lag + 1 frames, but at least two
/// rows even at lag = 0 — the forward step's input alpha_{t-1} and output
/// alpha_t must never alias (the kernels take restrict pointers).
inline size_t Window(size_t lag) { return std::max<size_t>(lag + 1, 2); }

/// \brief Raw views over one stream's ring buffers. Non-owning.
struct StreamRings {
  double* btilde = nullptr;     ///< window x k shifted emissions
  double* alpha = nullptr;      ///< window x k scaled forward messages
  double* scale = nullptr;      ///< window forward normalizers
  double* logb = nullptr;       ///< k scratch emission row
  double* frame_u = nullptr;    ///< k hoisted backward frame product
  double* beta_cur = nullptr;   ///< k backward message
  double* beta_next = nullptr;  ///< k backward message (swap partner)
  double* gamma = nullptr;      ///< k smoothed posterior at emitted frame
};

/// Doubles needed to back a whole StreamRings at (window, k).
inline size_t RingDoubles(size_t window, size_t k) {
  return 2 * window * k + window + 5 * k;
}

/// Carves a StreamRings view over `base[0 .. RingDoubles(window, k))`.
inline StreamRings CarveRings(double* base, size_t window, size_t k) {
  StreamRings r;
  r.btilde = base;
  r.alpha = r.btilde + window * k;
  r.scale = r.alpha + window * k;
  r.logb = r.scale + window;
  r.frame_u = r.logb + k;
  r.beta_cur = r.frame_u + k;
  r.beta_next = r.beta_cur + k;
  r.gamma = r.beta_next + k;
  return r;
}

/// Outcome of one forward step — the caller maps these onto its error
/// policy (poison the stream, typed Status) without the math layer ever
/// constructing a Status (Status carries a string; this layer must stay
/// allocation-free).
enum class StepOutcome {
  kOk = 0,
  kImpossibleObservation,  ///< zero probability in every state
  kForwardVanished,        ///< scaled forward message underflowed to 0
};

/// \brief Emission + scaled forward step for frame t, writing ring row
/// t % window. On kOk, *loglik_inc holds log(c_t) + m_t, the stream
/// log-likelihood increment. On failure nothing logical changed: the ring
/// rows written belong to the already-retired frame t - window, so a
/// rejected frame leaves the stream exactly as it was.
template <typename Obs>
StepOutcome ForwardStep(const hmm::HmmModel<Obs>& model,
                        const linalg::Matrix& a_t, size_t window, size_t t,
                        const StreamRings& r, const Obs& y,
                        double* loglik_inc) {
  namespace klib = linalg::kernels;
  const size_t k = model.num_states();
  // ForK(k) resolves to the same (ISA, k-class) table the offline path
  // fetched for this k — required for the bitwise stream-vs-offline
  // contract, and free after the first call (one bounds test + index).
  const klib::KernelTable& kt = klib::ForK(k);
  const size_t row = t % window;
  double* btilde_row = r.btilde + row * k;
  // Emission table row for this frame — the same per-frame shifted table
  // the offline workspace caches, maintained as a ring.
  for (size_t i = 0; i < k; ++i) {
    r.logb[i] = model.emission->LogProb(i, y);
  }
  const double m = kt.exp_shift_row(r.logb, k, btilde_row);
  if (m == prob::kNegInf) return StepOutcome::kImpossibleObservation;

  // Scaled forward step — identical kernel sequence to the offline
  // forward pass, so scales and messages match it bitwise.
  double* alpha = r.alpha + row * k;
  if (t == 0) {
    klib::MulRowInto(model.pi.data(), btilde_row, k, alpha);
  } else {
    kt.mat_vec_col_mul(a_t.data(), r.alpha + ((t - 1) % window) * k,
                       btilde_row, k, k, alpha);
  }
  const double c = kt.sum_row(alpha, k);
  if (!(c > 0.0)) return StepOutcome::kForwardVanished;
  klib::ScaleRow(alpha, k, 1.0 / c);
  r.scale[row] = c;
  *loglik_inc = std::log(c) + m;
  return StepOutcome::kOk;
}

/// \brief One backward step of the fixed-lag smoother: advances beta from
/// the frame whose ring row is `next_row` to its predecessor, via the
/// hoisted frame product — the exact kernel sequence of the offline fused
/// backward pass. Leaves the product for `next_row` in r.frame_u.
inline void BetaStep(const linalg::Matrix& a, size_t k, const StreamRings& r,
                     size_t next_row, const double* beta, double* beta_next) {
  namespace klib = linalg::kernels;
  const klib::KernelTable& kt = klib::ForK(k);
  kt.mul_row_scaled_into(r.btilde + next_row * k, beta,
                         1.0 / r.scale[next_row], k, r.frame_u);
  // One batched mat-vec, not k per-row dots: the offline backward sweep
  // computes beta the same way, and the stream-vs-offline bitwise contract
  // needs both sides to use the same kernel (mat_vec_col's per-row lane
  // order is documented independently of dot's).
  kt.mat_vec_col(a.data(), r.frame_u, k, k, beta_next);
}

/// \brief Gamma normalization and argmax at `frame` given its backward
/// message — the offline GammaRow + ArgMaxRow ops. Returns -1 when the
/// posterior mass vanished numerically (the caller poisons the stream).
/// The normalized posterior is left in r.gamma for consumers that feed
/// online E-step accumulators.
inline int GammaArgmax(size_t k, size_t window, const StreamRings& r,
                       size_t frame, const double* beta) {
  namespace klib = linalg::kernels;
  klib::MulRowInto(r.alpha + (frame % window) * k, beta, k, r.gamma);
  const double norm = klib::ForK(k).sum_row(r.gamma, k);
  if (!(norm > 0.0)) return -1;
  klib::ScaleRow(r.gamma, k, 1.0 / norm);
  return static_cast<int>(klib::ArgMaxRow(r.gamma, k));
}

/// \brief Backward pass from `newest` down to `frame` over the ring
/// (beta = 1 at the newest frame), then GammaArgmax at `frame`. After a
/// successful call with newest > frame, r.frame_u holds the hoisted
/// product for frame + 1 — exactly the term an online xi accumulator
/// needs (see hmm::EStepAccumulator::AddStreamTransition).
inline int SmoothedLabel(const linalg::Matrix& a, size_t k, size_t window,
                         const StreamRings& r, size_t frame, size_t newest) {
  double* beta = r.beta_cur;
  double* beta_next = r.beta_next;
  for (size_t i = 0; i < k; ++i) beta[i] = 1.0;
  for (size_t t = newest; t-- > frame;) {
    BetaStep(a, k, r, (t + 1) % window, beta, beta_next);
    std::swap(beta, beta_next);
  }
  return GammaArgmax(k, window, r, frame, beta);
}

/// \brief Finish-time flush: one backward sweep labeling every frame in
/// [first, newest], written to out[0 .. newest - first]. Returns -1 on
/// success, or the frame whose posterior vanished (nothing useful was
/// written; the caller poisons the stream and discards `out`).
inline ptrdiff_t FinishSweep(const linalg::Matrix& a, size_t k, size_t window,
                             const StreamRings& r, size_t first,
                             size_t newest, int* out) {
  double* beta = r.beta_cur;
  double* beta_next = r.beta_next;
  for (size_t i = 0; i < k; ++i) beta[i] = 1.0;
  for (size_t f = newest + 1; f-- > first;) {
    if (f != newest) {
      BetaStep(a, k, r, (f + 1) % window, beta, beta_next);
      std::swap(beta, beta_next);
    }
    const int label = GammaArgmax(k, window, r, f, beta);
    if (label < 0) return static_cast<ptrdiff_t>(f);
    out[f - first] = label;
  }
  return -1;
}

}  // namespace dhmm::serve::stream

#endif  // DHMM_SERVE_STREAM_MATH_H_
