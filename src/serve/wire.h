// The binary wire protocol of the serving front-end.
//
// A frame is a fixed 40-byte little-endian header followed by
// `payload_len` payload bytes. The header fields are exactly the scalar
// members of serve::DecodeRequest (serve/request.h) — the codec is nothing
// but (de)serialization of the one request/response pair the in-process
// API already uses.
//
//   offset  size  field
//        0     4  magic          0x4D4D4844 ("DHMM" as bytes 44 48 4D 4D)
//        4     2  version        1
//        6     1  kind           request: DecodeKind; response: kind | 0x80
//        7     1  flags          0 (reserved)
//        8     8  model id       registry key
//       16     8  request id     caller correlation id, echoed back
//       24     8  deadline       relative budget in microseconds, 0 = none
//       32     4  payload_len    bytes following the header
//       36     4  reserved       0
//
// Request payload:   u32 count, then `count` observations (f64 bits for
//                    scalar models, i32 for symbol models).
// Response payload:  u16 status code, u16 reserved, u64 model version,
//                    f64 value, u32 path length, i32 path entries,
//                    u32 message length, message bytes.
//
// Request kinds are pinned wire values (serve/request.h): kViterbi (0),
// kPosterior (1), kLogLikelihood (2), kSessionPush (3), and kStats (4).
// A kStats request carries an (ignored) empty observation payload; its
// response rides the message field with the rendered obs::Registry
// snapshot (an OK response's message bytes are DecodeResponse::text, a
// non-OK response's are status.message() — same layout either way). The
// first unknown kind byte is therefore 5.
//
// Every decode function returns a Status and never aborts: truncated
// frames, bad magic, unsupported versions, oversized payloads, and
// payload/header length mismatches are all InvalidArgument/OutOfRange —
// a malformed client frame must not take down the serving process.
// Integers are encoded byte-wise (shift/or), so the encoding is
// little-endian on every host and bitwise-stable across platforms
// (tests/wire_test.cc pins the exact header bytes).
//
// Allocation: encoders append into a caller-owned grow-only byte vector
// and decoders resize caller-owned grow-only output buffers, so a warm
// encode/decode round performs zero heap allocations on the OK path.
#ifndef DHMM_SERVE_WIRE_H_
#define DHMM_SERVE_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "serve/request.h"
#include "util/status.h"

namespace dhmm::serve::wire {

/// "DHMM" in little-endian byte order.
inline constexpr uint32_t kMagic = 0x4D4D4844u;
/// Protocol version this build speaks.
inline constexpr uint16_t kVersion = 1;
/// Fixed header size in bytes.
inline constexpr size_t kHeaderSize = 40;
/// Set on the header kind byte of response frames.
inline constexpr uint8_t kResponseBit = 0x80;
/// Largest accepted payload (16 MiB): a corrupt or hostile length field
/// is rejected before any buffer is sized from it.
inline constexpr size_t kMaxPayload = size_t{1} << 24;

/// \brief Decoded frame header — the wire image of DecodeRequest's
/// scalar fields plus the payload length.
struct FrameHeader {
  uint8_t kind = 0;             ///< DecodeKind value; | kResponseBit on rsp
  ModelId model = 0;
  uint64_t request_id = 0;
  uint64_t deadline_micros = 0;
  uint32_t payload_len = 0;

  bool is_response() const { return (kind & kResponseBit) != 0; }
  DecodeKind decode_kind() const {
    return static_cast<DecodeKind>(kind & ~kResponseBit);
  }
};

namespace internal {

// Byte-wise little-endian primitives: endian-independent by construction.
inline void PutU16(uint16_t v, uint8_t* p) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
}
inline void PutU32(uint32_t v, uint8_t* p) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}
inline void PutU64(uint64_t v, uint8_t* p) {
  PutU32(static_cast<uint32_t>(v), p);
  PutU32(static_cast<uint32_t>(v >> 32), p + 4);
}
inline void PutF64(double v, uint8_t* p) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits, p);
}
inline uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (uint16_t{p[1]} << 8));
}
inline uint32_t GetU32(const uint8_t* p) {
  return p[0] | (uint32_t{p[1]} << 8) | (uint32_t{p[2]} << 16) |
         (uint32_t{p[3]} << 24);
}
inline uint64_t GetU64(const uint8_t* p) {
  return GetU32(p) | (uint64_t{GetU32(p + 4)} << 32);
}
inline double GetF64(const uint8_t* p) {
  const uint64_t bits = GetU64(p);
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

/// Grows `*out` by `n` bytes and returns a pointer to the new region.
inline uint8_t* Extend(std::vector<uint8_t>* out, size_t n) {
  const size_t base = out->size();
  out->resize(base + n);
  return out->data() + base;
}

/// Per-element observation codec. Only the observation types the emission
/// families serve are wire-encodable; adding a type means one
/// specialization here.
template <typename Obs>
struct ObsCodec;

template <>
struct ObsCodec<double> {
  static constexpr size_t kSize = 8;
  static void Put(double v, uint8_t* p) { PutF64(v, p); }
  static double Get(const uint8_t* p) { return GetF64(p); }
};

template <>
struct ObsCodec<int> {
  static constexpr size_t kSize = 4;
  static void Put(int v, uint8_t* p) { PutU32(static_cast<uint32_t>(v), p); }
  static int Get(const uint8_t* p) { return static_cast<int>(GetU32(p)); }
};

}  // namespace internal

/// \brief Writes the 40-byte header for `h` into out[0..kHeaderSize).
void EncodeHeader(const FrameHeader& h, uint8_t* out);

/// \brief Parses a header from the first kHeaderSize bytes of
/// [data, data+size). Rejects truncation, bad magic, unsupported versions,
/// and payload lengths above kMaxPayload — before anything is sized from
/// the frame.
Status DecodeHeader(const uint8_t* data, size_t size, FrameHeader* out);

/// \brief Appends a complete request frame (header + payload) for `req`
/// to `*out`. Fails on a null observation borrow or a sequence whose
/// encoding would exceed kMaxPayload.
template <typename Obs>
Status EncodeRequest(const DecodeRequest<Obs>& req,
                     std::vector<uint8_t>* out) {
  using Codec = internal::ObsCodec<Obs>;
  if (req.obs == nullptr) {
    return Status::InvalidArgument("request borrows no observations");
  }
  const size_t count = req.obs->size();
  const size_t payload = 4 + count * Codec::kSize;
  if (payload > kMaxPayload) {
    return Status::OutOfRange("request payload exceeds kMaxPayload");
  }
  FrameHeader h;
  h.kind = static_cast<uint8_t>(req.kind);
  h.model = req.model;
  h.request_id = req.request_id;
  h.deadline_micros = req.deadline_micros;
  h.payload_len = static_cast<uint32_t>(payload);
  uint8_t* p = internal::Extend(out, kHeaderSize + payload);
  EncodeHeader(h, p);
  p += kHeaderSize;
  internal::PutU32(static_cast<uint32_t>(count), p);
  p += 4;
  for (size_t i = 0; i < count; ++i, p += Codec::kSize) {
    Codec::Put((*req.obs)[i], p);
  }
  return Status::OK();
}

/// \brief Decodes a request payload (the `h.payload_len` bytes after the
/// header) into `*obs`, which is resized in place (grow-only). The scalar
/// request fields live in the header; callers assemble the DecodeRequest
/// from `h` + `obs`. Rejects response-marked kinds, unknown kinds, and any
/// count/length mismatch.
template <typename Obs>
Status DecodeRequestPayload(const FrameHeader& h, const uint8_t* payload,
                            size_t size, std::vector<Obs>* obs) {
  using Codec = internal::ObsCodec<Obs>;
  if (h.is_response()) {
    return Status::InvalidArgument("response frame where a request was "
                                   "expected");
  }
  if (h.kind > static_cast<uint8_t>(DecodeKind::kStats)) {
    return Status::InvalidArgument("unknown request kind " +
                                   std::to_string(int{h.kind}));
  }
  if (size != h.payload_len) {
    return Status::InvalidArgument("truncated request payload");
  }
  if (size < 4) {
    return Status::InvalidArgument("request payload shorter than its "
                                   "observation count");
  }
  const uint32_t count = internal::GetU32(payload);
  if (size - 4 != size_t{count} * Codec::kSize) {
    return Status::InvalidArgument("request payload length does not match "
                                   "its observation count");
  }
  obs->resize(count);
  const uint8_t* p = payload + 4;
  for (uint32_t i = 0; i < count; ++i, p += Codec::kSize) {
    (*obs)[i] = Codec::Get(p);
  }
  return Status::OK();
}

/// \brief Appends a complete response frame for `resp` to `*out`.
/// `model` echoes the request's registry key into the header.
Status EncodeResponse(const DecodeResponse& resp, ModelId model,
                      std::vector<uint8_t>* out);

/// \brief Decodes a response payload (the bytes after the header) into
/// `*resp`; grow-only except for a non-empty error message. Rejects
/// request-marked kinds and any length mismatch.
Status DecodeResponsePayload(const FrameHeader& h, const uint8_t* payload,
                             size_t size, DecodeResponse* resp);

/// \brief Convenience for clients and tests: header + payload decode of a
/// whole response frame in one call. `size` must cover the whole frame.
Status DecodeResponseFrame(const uint8_t* data, size_t size,
                           FrameHeader* h, DecodeResponse* resp);

}  // namespace dhmm::serve::wire

#endif  // DHMM_SERVE_WIRE_H_
