#include "serve/wire.h"

#include <cstring>
#include <string>

namespace dhmm::serve::wire {

namespace {

using internal::GetU16;
using internal::GetU32;
using internal::GetU64;
using internal::GetF64;
using internal::PutU16;
using internal::PutU32;
using internal::PutU64;
using internal::PutF64;

// Response payload layout after the frame header (see wire.h).
constexpr size_t kResponseFixed = 2 + 2 + 8 + 8 + 4;  // up to path entries

}  // namespace

void EncodeHeader(const FrameHeader& h, uint8_t* out) {
  PutU32(kMagic, out + 0);
  PutU16(kVersion, out + 4);
  out[6] = h.kind;
  out[7] = 0;  // flags
  PutU64(h.model, out + 8);
  PutU64(h.request_id, out + 16);
  PutU64(h.deadline_micros, out + 24);
  PutU32(h.payload_len, out + 32);
  PutU32(0, out + 36);  // reserved
}

Status DecodeHeader(const uint8_t* data, size_t size, FrameHeader* out) {
  if (size < kHeaderSize) {
    return Status::InvalidArgument("truncated frame header");
  }
  if (GetU32(data + 0) != kMagic) {
    return Status::InvalidArgument("bad frame magic");
  }
  const uint16_t version = GetU16(data + 4);
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported wire version " +
                                   std::to_string(version));
  }
  out->kind = data[6];
  out->model = GetU64(data + 8);
  out->request_id = GetU64(data + 16);
  out->deadline_micros = GetU64(data + 24);
  out->payload_len = GetU32(data + 32);
  if (out->payload_len > kMaxPayload) {
    return Status::OutOfRange("oversized frame payload: " +
                              std::to_string(out->payload_len) + " bytes");
  }
  return Status::OK();
}

Status EncodeResponse(const DecodeResponse& resp, ModelId model,
                      std::vector<uint8_t>* out) {
  const size_t path_bytes = resp.path.size() * 4;
  // The message field is shared: OK responses carry resp.text (the kStats
  // snapshot; empty for decode responses), error responses carry the
  // status message. One layout, no new frame fields.
  const std::string& msg = resp.status.ok() ? resp.text
                                            : resp.status.message();
  const size_t msg_bytes = msg.size();
  const size_t payload = kResponseFixed + path_bytes + 4 + msg_bytes;
  if (payload > kMaxPayload) {
    return Status::OutOfRange("response payload exceeds kMaxPayload");
  }
  FrameHeader h;
  h.kind = static_cast<uint8_t>(resp.kind) | kResponseBit;
  h.model = model;
  h.request_id = resp.request_id;
  h.deadline_micros = 0;
  h.payload_len = static_cast<uint32_t>(payload);
  uint8_t* p = internal::Extend(out, kHeaderSize + payload);
  EncodeHeader(h, p);
  p += kHeaderSize;
  PutU16(static_cast<uint16_t>(resp.status.code()), p);
  PutU16(0, p + 2);  // reserved
  PutU64(resp.model_version, p + 4);
  PutF64(resp.value, p + 12);
  PutU32(static_cast<uint32_t>(resp.path.size()), p + 20);
  p += kResponseFixed;
  for (size_t i = 0; i < resp.path.size(); ++i, p += 4) {
    PutU32(static_cast<uint32_t>(resp.path[i]), p);
  }
  PutU32(static_cast<uint32_t>(msg_bytes), p);
  p += 4;
  if (msg_bytes != 0) std::memcpy(p, msg.data(), msg_bytes);
  return Status::OK();
}

Status DecodeResponsePayload(const FrameHeader& h, const uint8_t* payload,
                             size_t size, DecodeResponse* resp) {
  if (!h.is_response()) {
    return Status::InvalidArgument("request frame where a response was "
                                   "expected");
  }
  const uint8_t kind = h.kind & ~kResponseBit;
  if (kind > static_cast<uint8_t>(DecodeKind::kStats)) {
    return Status::InvalidArgument("unknown response kind " +
                                   std::to_string(int{kind}));
  }
  if (size != h.payload_len || size < kResponseFixed + 4) {
    return Status::InvalidArgument("truncated response payload");
  }
  const uint32_t path_len = GetU32(payload + 20);
  if (size_t{path_len} * 4 > size - kResponseFixed - 4) {
    return Status::InvalidArgument("response path exceeds its payload");
  }
  const uint8_t* p = payload + kResponseFixed;
  const size_t msg_off = kResponseFixed + size_t{path_len} * 4;
  const uint32_t msg_len = GetU32(payload + msg_off);
  if (msg_off + 4 + msg_len != size) {
    return Status::InvalidArgument("response payload length does not match "
                                   "its contents");
  }
  resp->request_id = h.request_id;
  resp->kind = static_cast<DecodeKind>(kind);
  resp->model_version = GetU64(payload + 4);
  resp->value = GetF64(payload + 12);
  resp->path.resize(path_len);
  for (uint32_t i = 0; i < path_len; ++i, p += 4) {
    resp->path[i] = static_cast<int>(GetU32(p));
  }
  const auto code = static_cast<StatusCode>(GetU16(payload));
  const char* msg_data =
      reinterpret_cast<const char*>(payload + msg_off + 4);
  if (code == StatusCode::kOk) {
    // OK responses carry DecodeResponse::text in the message field (empty
    // for decode responses — assign() of nothing stays allocation-free).
    resp->status = Status::OK();
    resp->text.assign(msg_data, msg_len);
  } else {
    resp->text.clear();
    resp->status = Status::FromCode(
        code,
        msg_len == 0 ? std::string() : std::string(msg_data, msg_len));
  }
  return Status::OK();
}

Status DecodeResponseFrame(const uint8_t* data, size_t size,
                           FrameHeader* h, DecodeResponse* resp) {
  DHMM_RETURN_NOT_OK(DecodeHeader(data, size, h));
  if (size - kHeaderSize < h->payload_len) {
    return Status::InvalidArgument("truncated response frame");
  }
  return DecodeResponsePayload(*h, data + kHeaderSize, h->payload_len, resp);
}

}  // namespace dhmm::serve::wire
