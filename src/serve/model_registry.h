// Multi-model serving: id-keyed registry of RCU-swappable model snapshots.
//
// A fleet-scale labeling service holds many resident HMMs (per-tenant,
// per-language, per-alphabet). ModelRegistry maps a ModelId to a
// DecodeService — the PR-5 batched decode engine, which already holds its
// model as an RCU shared_ptr snapshot — and adds the fleet concerns on
// top: per-id registration and hot-swap (UpdateModel / ReloadModel(path)),
// per-model version counters, and an LRU residency cap so cold models give
// up their worker threads and workspaces while hot (pinned) models never
// get evicted.
//
// Every registered model decodes bitwise-identically to an offline
// single-threaded decode — that is DecodeService's contract, and the
// registry never touches the numeric path (tests/frontend_test.cc pins it
// over the wire for multiple registered models).
//
// Hot-reload error contract: a failed load during ReloadModel leaves the
// previous snapshot serving and surfaces the Status to the caller.
// Checkpoint paths route through store::LoadAnyModel — a binary store file
// or dual-slot directory is CRC-verified and mmap-read with no text parse;
// anything else is the SaveHmmToFile text format. Combined with atomic
// tmp+fsync+rename saves and per-section checksums, a torn, half-written,
// or bit-flipped checkpoint can never replace a live model.
//
// Acquire() is the request path: a mutex-guarded map lookup, an LRU tick
// bump, and a shared_ptr copy — no allocation. Holders keep the service
// alive even if the entry is evicted concurrently (RCU-style: eviction
// only drops the registry's reference).
#ifndef DHMM_SERVE_MODEL_REGISTRY_H_
#define DHMM_SERVE_MODEL_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "hmm/model.h"
#include "hmm/serialization.h"
#include "obs/metrics.h"
#include "serve/decode_service.h"
#include "serve/request.h"
#include "store/dual_slot.h"
#include "util/check.h"
#include "util/status.h"

namespace dhmm::serve {

/// Options for the registry. Designated-initializer-friendly POD with a
/// Validate() checked at construction — the shared shape of every serve
/// options struct (see the README options table).
struct ModelRegistryOptions {
  /// Most models resident (worker threads + workspaces alive) at once.
  /// Registering or cold-loading past the cap evicts the least recently
  /// acquired unpinned model; pinned models never count as eviction
  /// candidates, so an all-pinned registry may exceed the cap.
  size_t max_resident = 8;
  /// Options for each per-model DecodeService.
  DecodeServiceOptions service;

  Status Validate() const {
    if (max_resident == 0) {
      return Status::InvalidArgument(
          "ModelRegistryOptions::max_resident must be >= 1");
    }
    return service.Validate();
  }
};

/// \brief Thread-safe model-id -> DecodeService registry with LRU
/// residency and per-model versions.
template <typename Obs>
class ModelRegistry {
 public:
  explicit ModelRegistry(const ModelRegistryOptions& options = {})
      : options_(options) {
    const Status opt_st = options.Validate();
    DHMM_CHECK_MSG(opt_st.ok(), opt_st.message().c_str());
    obs::Registry& reg = obs::Registry::Global();
    m_cold_loads_ = reg.GetCounter("registry.cold_loads");
    m_failed_reloads_ = reg.GetCounter("registry.failed_reloads");
    m_evictions_ = reg.GetCounter("registry.evictions");
    g_resident_ = reg.GetGauge("registry.resident");
  }

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// \brief Registers a new model under `id` (version 1). Fails with
  /// FailedPrecondition if the id is taken — hot-swapping an existing id
  /// is UpdateModel/ReloadModel, never an implicit re-Register.
  Status Register(ModelId id, std::shared_ptr<const hmm::HmmModel<Obs>> model,
                  bool pinned = false) {
    if (model == nullptr) {
      return Status::InvalidArgument("Register requires a model");
    }
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = entries_.try_emplace(id);
    if (!inserted) {
      return Status::FailedPrecondition(
          "model id already registered: " + std::to_string(id));
    }
    Entry& e = it->second;
    e.service =
        std::make_shared<DecodeService<Obs>>(std::move(model), options_.service);
    e.pinned = pinned;
    e.version = 1;
    e.tick = ++tick_;
    EnforceCapLocked();
    return Status::OK();
  }

  /// \brief Registers a model from a checkpoint — a binary store file,
  /// dual-slot directory, or text save (store::LoadAnyModel routing). The
  /// path is remembered: ReloadModel(id) re-reads it, and an LRU-evicted
  /// model is transparently cold-loaded from it on the next Acquire.
  Status RegisterFromFile(ModelId id, const std::string& path,
                          bool pinned = false) {
    Result<hmm::HmmModel<Obs>> loaded = store::LoadAnyModel<Obs>(path);
    if (!loaded.ok()) return loaded.status();
    DHMM_RETURN_NOT_OK(Register(
        id,
        std::make_shared<const hmm::HmmModel<Obs>>(std::move(loaded).value()),
        pinned));
    std::lock_guard<std::mutex> lock(mu_);
    entries_.at(id).path = path;
    return Status::OK();
  }

  /// \brief RCU-swaps a new snapshot under an existing id and bumps its
  /// version. In-flight batches finish on their snapshot (DecodeService's
  /// hot-swap contract); an evicted model becomes resident again.
  Status UpdateModel(ModelId id,
                     std::shared_ptr<const hmm::HmmModel<Obs>> model) {
    if (model == nullptr) {
      return Status::InvalidArgument("UpdateModel requires a model");
    }
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(id);
    if (it == entries_.end()) return UnknownModel(id);
    Entry& e = it->second;
    if (e.service != nullptr) {
      e.service->UpdateModel(std::move(model));
    } else {
      e.service = std::make_shared<DecodeService<Obs>>(std::move(model),
                                                       options_.service);
    }
    ++e.version;
    e.tick = ++tick_;
    EnforceCapLocked();
    return Status::OK();
  }

  /// \brief Hot-reloads `id` from a checkpoint and remembers the path.
  /// A failed load (missing, torn, or corrupt file) leaves the previous
  /// snapshot serving and returns the load error — the registry half of
  /// the atomic-save guarantee.
  Status ReloadModel(ModelId id, const std::string& path) {
    {
      // Fail on unknown ids before touching the filesystem.
      std::lock_guard<std::mutex> lock(mu_);
      if (entries_.find(id) == entries_.end()) return UnknownModel(id);
    }
    Result<hmm::HmmModel<Obs>> loaded = store::LoadAnyModel<Obs>(path);
    if (!loaded.ok()) {
      m_failed_reloads_->Add();
      return loaded.status();
    }
    DHMM_RETURN_NOT_OK(UpdateModel(
        id, std::make_shared<const hmm::HmmModel<Obs>>(
                std::move(loaded).value())));
    std::lock_guard<std::mutex> lock(mu_);
    entries_.at(id).path = path;
    return Status::OK();
  }

  /// \brief Reload from the path remembered by RegisterFromFile /
  /// ReloadModel(id, path). FailedPrecondition when none was recorded.
  Status ReloadModel(ModelId id) {
    std::string path;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = entries_.find(id);
      if (it == entries_.end()) return UnknownModel(id);
      if (it->second.path.empty()) {
        return Status::FailedPrecondition(
            "model has no checkpoint path: " + std::to_string(id));
      }
      path = it->second.path;
    }
    return ReloadModel(id, path);
  }

  /// \brief The request path: returns the model's DecodeService and marks
  /// it most-recently-used. NotFound for unknown ids; an evicted model
  /// with a remembered checkpoint path is cold-loaded transparently,
  /// one without is Unavailable. No allocation on the resident path.
  Result<std::shared_ptr<DecodeService<Obs>>> Acquire(ModelId id) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(id);
    if (it == entries_.end()) return UnknownModel(id);
    Entry& e = it->second;
    if (e.service == nullptr) {
      if (e.path.empty()) {
        return Status::Unavailable(
            "model evicted with no checkpoint path: " + std::to_string(id));
      }
      Result<hmm::HmmModel<Obs>> loaded = store::LoadAnyModel<Obs>(e.path);
      if (!loaded.ok()) {
        m_failed_reloads_->Add();
        return loaded.status();
      }
      e.service = std::make_shared<DecodeService<Obs>>(
          std::make_shared<const hmm::HmmModel<Obs>>(
              std::move(loaded).value()),
          options_.service);
      m_cold_loads_->Add();
      // The cold load made a new resident: someone else may have to go.
      e.tick = ++tick_;
      EnforceCapLocked();
    } else {
      e.tick = ++tick_;
    }
    return e.service;
  }

  /// \brief Marks `id` hot (never LRU-evicted) or unpins it.
  Status Pin(ModelId id, bool pinned) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(id);
    if (it == entries_.end()) return UnknownModel(id);
    it->second.pinned = pinned;
    if (!pinned) EnforceCapLocked();
    return Status::OK();
  }

  /// \brief Explicitly drops `id`'s resident service (the entry and its
  /// checkpoint path remain; the next Acquire cold-loads). Pinned models
  /// refuse with FailedPrecondition.
  Status Evict(ModelId id) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(id);
    if (it == entries_.end()) return UnknownModel(id);
    if (it->second.pinned) {
      return Status::FailedPrecondition(
          "cannot evict a pinned model: " + std::to_string(id));
    }
    it->second.service.reset();
    m_evictions_->Add();
    RefreshResidentLocked();
    return Status::OK();
  }

  /// \brief Evicts the least-recently-acquired unpinned resident model —
  /// the manual form of the residency-cap sweep. Typed failures, never an
  /// abort: FailedPrecondition both when nothing is resident and when
  /// every resident model is pinned (tests/frontend_test.cc pins the
  /// all-pinned case).
  Status EvictLru() {
    std::lock_guard<std::mutex> lock(mu_);
    size_t resident = 0;
    Entry* victim = nullptr;
    for (auto& [id, e] : entries_) {
      if (e.service == nullptr) continue;
      ++resident;
      if (e.pinned) continue;
      if (victim == nullptr || e.tick < victim->tick) victim = &e;
    }
    if (resident == 0) {
      return Status::FailedPrecondition("no resident models to evict");
    }
    if (victim == nullptr) {
      return Status::FailedPrecondition(
          "every resident model is pinned — nothing evictable");
    }
    victim->service.reset();  // drains in-flight work in the destructor
    m_evictions_->Add();
    RefreshResidentLocked();
    return Status::OK();
  }

  /// The "registry." slice of the process-wide metrics snapshot, rendered
  /// as text (obs/metrics.h). Allocates; for diagnostics, not the hot path.
  std::string StatsString() const {
    return obs::RenderText(
        obs::Registry::Global().TakeSnapshot("registry."));
  }

  /// Per-model version: 1 at Register, bumped by every UpdateModel /
  /// ReloadModel. Survives eviction.
  Result<uint64_t> ModelVersion(ModelId id) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(id);
    if (it == entries_.end()) return UnknownModel(id);
    return it->second.version;
  }

  /// Models currently resident (service alive).
  size_t resident_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    size_t n = 0;
    for (const auto& [id, e] : entries_) n += e.service != nullptr;
    return n;
  }

  /// All registered ids (resident or evicted), ascending.
  std::vector<ModelId> Ids() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<ModelId> ids;
    ids.reserve(entries_.size());
    for (const auto& [id, e] : entries_) ids.push_back(id);
    return ids;
  }

 private:
  struct Entry {
    std::shared_ptr<DecodeService<Obs>> service;  // null when evicted
    std::string path;   // checkpoint source; empty = in-memory only
    bool pinned = false;
    uint64_t version = 0;
    uint64_t tick = 0;  // last-acquired stamp for LRU
  };

  static Status UnknownModel(ModelId id) {
    return Status::NotFound("unknown model id: " + std::to_string(id));
  }

  // Evicts least-recently-acquired unpinned residents until the cap
  // holds. Caller holds mu_. Stops early when only pinned models remain —
  // pinned-hot capacity overrides the cap by design. Every path that
  // changes residency funnels through here (or the explicit Evict forms),
  // so the resident gauge is refreshed on the way out.
  void EnforceCapLocked() {
    for (;;) {
      size_t resident = 0;
      Entry* victim = nullptr;
      for (auto& [id, e] : entries_) {
        if (e.service == nullptr) continue;
        ++resident;
        if (e.pinned) continue;
        if (victim == nullptr || e.tick < victim->tick) victim = &e;
      }
      if (resident <= options_.max_resident || victim == nullptr) {
        g_resident_->Set(static_cast<double>(resident));
        return;
      }
      victim->service.reset();  // drains in-flight work in the destructor
      m_evictions_->Add();
    }
  }

  // Recounts residents into the gauge. Caller holds mu_.
  void RefreshResidentLocked() {
    size_t resident = 0;
    for (const auto& [id, e] : entries_) resident += e.service != nullptr;
    g_resident_->Set(static_cast<double>(resident));
  }

  const ModelRegistryOptions options_;
  mutable std::mutex mu_;
  std::map<ModelId, Entry> entries_;
  uint64_t tick_ = 0;

  // Process-wide metrics (obs/metrics.h): registered once at construction.
  obs::Counter* m_cold_loads_ = nullptr;
  obs::Counter* m_failed_reloads_ = nullptr;
  obs::Counter* m_evictions_ = nullptr;
  obs::Gauge* g_resident_ = nullptr;
};

}  // namespace dhmm::serve

#endif  // DHMM_SERVE_MODEL_REGISTRY_H_
