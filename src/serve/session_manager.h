// The many-stream refactor of serve::StreamingDecoder: a slab-allocated
// pool of fixed-lag smoothing sessions over one hot-swappable model.
//
// A SessionManager holds 1e5+ resident streams. Session bookkeeping lives
// in dense slabs of Slot records (grow-only, pointer-stable) addressed by
// generation-stamped handles — a handle packs {index, generation}, and a
// destroyed slot bumps its generation, so a stale handle resolves to
// NotFound instead of someone else's stream. Every session's numeric
// working set (the same ring-buffer layout StreamingDecoder uses, see
// serve/stream_math.h) is carved out of one 64-byte-aligned block from a
// grow-only per-shape util::SlabArena, so CreateSession / DestroySession
// are O(1) free-list operations and — once the pool has reached its
// high-water mark — allocation-free, as is every steady-state Push
// (tests/session_test.cc pins both with the instrumented allocator).
//
// The math is shared with StreamingDecoder (serve/stream_math.h), so the
// single-stream bitwise contracts carry over verbatim: per-session
// log-likelihood is bitwise equal to offline hmm::LogLikelihood on every
// prefix, and full-lag decodes are bitwise equal to offline
// hmm::PosteriorDecode.
//
// Concurrency: CreateSession / DestroySession / EvictIdle / UpdateModel /
// ResetSession serialize on one mutex; Push and Finish take the mutex only
// to resolve the handle and stamp activity, then run the numeric work
// outside it, so pushes on distinct sessions proceed in parallel. One
// session has one pusher (the StreamingDecoder thread-compatibility
// contract, per stream). An in-flight push holds a per-slot counter that
// eviction respects: EvictIdle never touches a session whose push is still
// running.
//
// Idle eviction is generation-stamped LRU: every push stamps its session
// with a fresh tick from a monotonic counter, and EvictIdle(idle_before)
// destroys every idle session last active before that tick — callers
// snapshot tick() and sweep on whatever cadence they like.
//
// The train→serve loop: attach a core::IncrementalEmTrainer and every
// emitted label also feeds its smoothed posterior (gamma, and the fixed-
// lag xi term) plus the raw observation into the trainer's stepwise
// E-step accumulator; periodic trainer Step()s hand back new snapshots to
// UpdateModel here and on DecodeService/ModelRegistry.
#ifndef DHMM_SERVE_SESSION_MANAGER_H_
#define DHMM_SERVE_SESSION_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/incremental_em.h"
#include "hmm/inference.h"
#include "hmm/model.h"
#include "linalg/matrix.h"
#include "obs/metrics.h"
#include "serve/stream_math.h"
#include "util/check.h"
#include "util/slab_arena.h"
#include "util/status.h"

namespace dhmm::serve {

/// Opaque session handle: {generation:32 | index:32}. Value 0 is never
/// issued (generations start at 1), so a zero handle is always invalid.
using SessionHandle = uint64_t;
inline constexpr SessionHandle kInvalidSessionHandle = 0;

/// Options for the session pool. Validate()-checked POD like every serve
/// options struct.
struct SessionManagerOptions {
  /// Smoothing lag shared by all sessions (see StreamingDecoderOptions::
  /// lag — same semantics, same kMaxLag bound).
  size_t lag = 8;
  /// Slot records per pool slab: larger slabs mean fewer pool growth
  /// events on the way to the high-water mark.
  size_t sessions_per_slab = 1024;
  /// Ring blocks per arena slab (util::SlabArena blocks_per_slab).
  size_t arena_blocks_per_slab = 1024;

  Status Validate() const {
    if (lag > kMaxLag) {
      return Status::InvalidArgument(
          "SessionManagerOptions::lag is absurdly large");
    }
    if (sessions_per_slab == 0 || arena_blocks_per_slab == 0) {
      return Status::InvalidArgument(
          "SessionManagerOptions slab sizes must be non-zero");
    }
    return Status::OK();
  }
};

/// \brief Slab-allocated pool of fixed-lag smoothing sessions.
template <typename Obs>
class SessionManager {
 public:
  explicit SessionManager(std::shared_ptr<const hmm::HmmModel<Obs>> model,
                          const SessionManagerOptions& options = {})
      : options_(options) {
    const Status opt_st = options.Validate();
    DHMM_CHECK_MSG(opt_st.ok(), opt_st.message().c_str());
    DHMM_CHECK_MSG(model != nullptr, "SessionManager requires a model");
    ctx_ = MakeContext(std::move(model), /*version=*/1);
    obs::Registry& reg = obs::Registry::Global();
    m_created_ = reg.GetCounter("sessions.created");
    m_destroyed_ = reg.GetCounter("sessions.destroyed");
    m_evicted_ = reg.GetCounter("sessions.evicted");
    m_pushes_ = reg.GetCounter("sessions.pushes");
    g_live_ = reg.GetGauge("sessions.live");
    g_inflight_ = reg.GetGauge("sessions.inflight");
    g_slab_bytes_ = reg.GetGauge("sessions.slab_bytes");
  }

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// \brief O(1): pops a recycled slot (or carves a new one) and binds it
  /// to the current model snapshot. Allocation-free once both the slot
  /// pool and the shape's arena have reached their high-water marks.
  Result<SessionHandle> CreateSession() {
    std::lock_guard<std::mutex> lock(mu_);
    uint32_t idx;
    if (!free_slots_.empty()) {
      idx = free_slots_.back();
      free_slots_.pop_back();
    } else {
      if (slot_count_ >= kMaxSessions) {
        return Status::Unavailable("session pool exhausted");
      }
      if (slot_count_ % options_.sessions_per_slab == 0) {
        slot_slabs_.push_back(
            std::make_unique<Slot[]>(options_.sessions_per_slab));
      }
      idx = static_cast<uint32_t>(slot_count_++);
    }
    Slot& s = SlotAt(idx);
    if (++s.generation == 0) ++s.generation;  // never issue generation 0
    s.live = true;
    s.ctx = ctx_;
    AttachBlockLocked(&s);
    s.obs_ring.resize(s.ctx->window);  // grow-only per slot
    ResetStreamState(&s);
    s.last_active = ++ticks_;
    ++live_;
    m_created_->Add();
    g_live_->Set(static_cast<double>(live_));
    return MakeHandle(idx, s.generation);
  }

  /// \brief O(1): recycles the slot and returns its ring block to the
  /// shape's arena. Refuses (FailedPrecondition) while a push on this
  /// session is still in flight.
  Status DestroySession(SessionHandle h) {
    std::lock_guard<std::mutex> lock(mu_);
    Slot* s = ResolveLocked(h);
    if (s == nullptr) return Status::NotFound(kUnknownSession);
    if (s->inflight.load(std::memory_order_acquire) != 0) {
      return Status::FailedPrecondition("session has an in-flight push");
    }
    DestroyLocked(s, static_cast<uint32_t>(h));
    return Status::OK();
  }

  /// \brief Consumes one observation on a session — StreamingDecoder::Push
  /// semantics, addressed by handle. On return *label_out is the smoothed
  /// label for frame t - lag, or -1 while the frame is still inside the
  /// lag window. A rejected frame is not consumed and poisons only this
  /// session (further pushes return its status until ResetSession).
  /// Steady-state OK-path pushes are allocation-free.
  Status Push(SessionHandle h, const Obs& y, int* label_out) {
    DHMM_CHECK(label_out != nullptr);
    *label_out = -1;
    Slot* s;
    core::IncrementalEmTrainer<Obs>* trainer;
    {
      std::lock_guard<std::mutex> lock(mu_);
      s = ResolveLocked(h);
      if (s == nullptr) return Status::NotFound(kUnknownSession);
      if (s->finished) {
        return Status::FailedPrecondition(
            "Push after Finish — ResetSession first");
      }
      if (!s->status.ok()) return s->status;
      s->last_active = ++ticks_;
      s->inflight.fetch_add(1, std::memory_order_relaxed);
      trainer = trainer_;  // snapshot under mu_; the body runs outside it
    }
    m_pushes_->Add();
    g_inflight_->Add(1.0);
    const Status st = PushHeld(s, y, label_out, trainer);
    g_inflight_->Add(-1.0);
    s->inflight.fetch_sub(1, std::memory_order_release);
    return st;
  }

  /// \brief StreamingDecoder::Finish for one session: flushes the lag
  /// window's remaining labels (appended to *tail in stream order) and
  /// marks the session finished until ResetSession. Returns the session's
  /// poisoned status when the flush fails or the stream was already bad.
  Status Finish(SessionHandle h, std::vector<int>* tail) {
    DHMM_CHECK(tail != nullptr);
    Slot* s;
    {
      std::lock_guard<std::mutex> lock(mu_);
      s = ResolveLocked(h);
      if (s == nullptr) return Status::NotFound(kUnknownSession);
      s->last_active = ++ticks_;
      s->inflight.fetch_add(1, std::memory_order_relaxed);
    }
    g_inflight_->Add(1.0);
    const Status st = FinishHeld(s, tail);
    g_inflight_->Add(-1.0);
    s->inflight.fetch_sub(1, std::memory_order_release);
    return st;
  }

  /// \brief Restarts a session's stream in place: keeps the slot and its
  /// warm ring block, clears frames/likelihood/error/finish state, and
  /// adopts the manager's current model snapshot (allocation-free when
  /// the shape is unchanged — the StreamingDecoder::Reset contract).
  Status ResetSession(SessionHandle h) {
    std::lock_guard<std::mutex> lock(mu_);
    Slot* s = ResolveLocked(h);
    if (s == nullptr) return Status::NotFound(kUnknownSession);
    if (s->inflight.load(std::memory_order_acquire) != 0) {
      return Status::FailedPrecondition("session has an in-flight push");
    }
    if (s->ctx != ctx_) {
      s->ctx = ctx_;
      AttachBlockLocked(s);
      s->obs_ring.resize(s->ctx->window);
    }
    ResetStreamState(s);
    s->last_active = ++ticks_;
    return Status::OK();
  }

  /// \brief Generation-stamped LRU sweep: destroys every idle session
  /// whose last activity tick is older than `idle_before`, skipping any
  /// session with an in-flight push. Returns the number evicted. O(pool)
  /// scan under the pool mutex — pushes on other threads only contend for
  /// their short handle-resolution window.
  size_t EvictIdle(uint64_t idle_before) {
    std::lock_guard<std::mutex> lock(mu_);
    size_t evicted = 0;
    for (size_t idx = 0; idx < slot_count_; ++idx) {
      Slot& s = SlotAt(idx);
      if (!s.live || s.last_active >= idle_before) continue;
      if (s.inflight.load(std::memory_order_acquire) != 0) continue;
      DestroyLocked(&s, static_cast<uint32_t>(idx));
      ++evicted;
    }
    if (evicted != 0) m_evicted_->Add(evicted);
    return evicted;
  }

  /// \brief RCU hot-swap: new sessions (and ResetSession) bind to this
  /// snapshot; existing sessions keep the snapshot they started on — a
  /// chain posterior is not well-defined across two models, so live
  /// streams finish on the model they started with.
  void UpdateModel(std::shared_ptr<const hmm::HmmModel<Obs>> model) {
    DHMM_CHECK_MSG(model != nullptr, "SessionManager requires a model");
    std::lock_guard<std::mutex> lock(mu_);
    ctx_ = MakeContext(std::move(model), model_version_ + 1);
    ++model_version_;
  }

  /// \brief Attaches the incremental-EM trainer: every label emitted by a
  /// Push also feeds its smoothed posterior (and, at lag >= 1, the fixed-
  /// lag transition posterior) into the trainer's accumulator. The
  /// trainer's state count must match the serving model's.
  void AttachTrainer(core::IncrementalEmTrainer<Obs>* trainer) {
    std::lock_guard<std::mutex> lock(mu_);
    trainer_ = trainer;
  }

  /// The current model snapshot (what new sessions bind to).
  std::shared_ptr<const hmm::HmmModel<Obs>> ModelSnapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ctx_->model;
  }

  /// Bumped by every UpdateModel; starts at 1.
  uint64_t model_version() const {
    std::lock_guard<std::mutex> lock(mu_);
    return model_version_;
  }

  /// True while `h` resolves to a live session.
  bool IsLive(SessionHandle h) const {
    std::lock_guard<std::mutex> lock(mu_);
    return const_cast<SessionManager*>(this)->ResolveLocked(h) != nullptr;
  }

  /// Running log P(y_0..y_{t-1}) of a session — bitwise equal to offline
  /// hmm::LogLikelihood on the same prefix.
  Result<double> LogLikelihood(SessionHandle h) const {
    std::lock_guard<std::mutex> lock(mu_);
    const Slot* s = const_cast<SessionManager*>(this)->ResolveLocked(h);
    if (s == nullptr) return Status::NotFound(kUnknownSession);
    return s->log_likelihood;
  }

  /// Frames consumed by a session so far.
  Result<uint64_t> FramesPushed(SessionHandle h) const {
    std::lock_guard<std::mutex> lock(mu_);
    const Slot* s = const_cast<SessionManager*>(this)->ResolveLocked(h);
    if (s == nullptr) return Status::NotFound(kUnknownSession);
    return static_cast<uint64_t>(s->frames_pushed);
  }

  /// A poisoned session's error: OK while healthy, NotFound for a stale
  /// handle, otherwise the error that poisoned the stream.
  Status SessionStatus(SessionHandle h) const {
    std::lock_guard<std::mutex> lock(mu_);
    const Slot* s = const_cast<SessionManager*>(this)->ResolveLocked(h);
    if (s == nullptr) return Status::NotFound(kUnknownSession);
    return s->status;
  }

  /// Live sessions resident right now.
  size_t live_sessions() const {
    std::lock_guard<std::mutex> lock(mu_);
    return live_;
  }

  /// Current activity tick (stamped into sessions by Push/Finish/Create).
  uint64_t tick() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ticks_;
  }

  /// High-water slot count (for pool growth diagnostics).
  size_t slot_capacity() const {
    std::lock_guard<std::mutex> lock(mu_);
    return slot_count_;
  }

  /// The "sessions." slice of the process-wide metrics snapshot, rendered
  /// as text (obs/metrics.h). Allocates; for diagnostics, not the hot path.
  std::string StatsString() const {
    return obs::RenderText(
        obs::Registry::Global().TakeSnapshot("sessions."));
  }

 private:
  static constexpr size_t kMaxSessions = size_t{1} << 31;
  static constexpr const char* kUnknownSession =
      "unknown or evicted session handle";

  // Immutable per-model-snapshot context shared by every session bound to
  // it: the model, its transition transpose (built once per swap, like
  // StreamingDecoder's Reset(model)), and the derived ring shape.
  struct ModelContext {
    std::shared_ptr<const hmm::HmmModel<Obs>> model;
    hmm::TransitionCache transition;
    const linalg::Matrix* a_t = nullptr;  // points into `transition`
    uint64_t version = 0;
    size_t k = 0;
    size_t window = 0;
    size_t ring_doubles = 0;
  };

  // One resident session. Slots live in grow-only slabs and are recycled
  // by index; `generation` stamps handles so stale ones cannot resolve.
  struct Slot {
    std::shared_ptr<const ModelContext> ctx;
    double* block = nullptr;           // arena-backed ring storage
    util::SlabArena* arena = nullptr;  // owner of `block`
    std::vector<Obs> obs_ring;         // window raw observations
    uint32_t generation = 0;
    bool live = false;
    bool finished = false;
    std::atomic<uint32_t> inflight{0};
    uint64_t last_active = 0;
    size_t frames_pushed = 0;
    size_t labels_emitted = 0;
    double log_likelihood = 0.0;
    Status status;
  };

  static SessionHandle MakeHandle(uint32_t idx, uint32_t gen) {
    return (uint64_t{gen} << 32) | idx;
  }

  std::shared_ptr<const ModelContext> MakeContext(
      std::shared_ptr<const hmm::HmmModel<Obs>> model, uint64_t version) {
    model->Validate();
    auto ctx = std::make_shared<ModelContext>();
    ctx->model = std::move(model);
    ctx->a_t = &ctx->transition.Transpose(ctx->model->a);
    ctx->version = version;
    ctx->k = ctx->model->num_states();
    ctx->window = stream::Window(options_.lag);
    ctx->ring_doubles = stream::RingDoubles(ctx->window, ctx->k);
    return ctx;
  }

  Slot& SlotAt(size_t idx) {
    return slot_slabs_[idx / options_.sessions_per_slab]
                      [idx % options_.sessions_per_slab];
  }

  Slot* ResolveLocked(SessionHandle h) {
    const uint32_t idx = static_cast<uint32_t>(h);
    const uint32_t gen = static_cast<uint32_t>(h >> 32);
    if (gen == 0 || idx >= slot_count_) return nullptr;
    Slot& s = SlotAt(idx);
    if (!s.live || s.generation != gen) return nullptr;
    return &s;
  }

  // Binds the slot's ring block to its context's shape, recycling through
  // the per-shape arena (O(1); allocates only on arena growth).
  void AttachBlockLocked(Slot* s) {
    const size_t bytes = s->ctx->ring_doubles * sizeof(double);
    util::SlabArena* arena = ArenaForLocked(bytes);
    if (s->arena == arena && s->block != nullptr) return;
    if (s->block != nullptr) s->arena->Release(s->block);
    s->arena = arena;
    s->block = static_cast<double*>(arena->Allocate());
    // Reserved ring bytes across every shape's arena. Recomputed only on
    // (re)binds — the Push hot path never reaches here, so the gauge costs
    // the steady state nothing.
    size_t total_bytes = 0;
    for (const auto& [block_bytes, a] : arenas_) {
      total_bytes += a->capacity() * block_bytes;
    }
    g_slab_bytes_->Set(static_cast<double>(total_bytes));
  }

  util::SlabArena* ArenaForLocked(size_t block_bytes) {
    auto it = arenas_.find(block_bytes);
    if (it == arenas_.end()) {
      it = arenas_
               .emplace(block_bytes,
                        std::make_unique<util::SlabArena>(
                            block_bytes, options_.arena_blocks_per_slab))
               .first;
    }
    return it->second.get();
  }

  static void ResetStreamState(Slot* s) {
    s->finished = false;
    s->frames_pushed = 0;
    s->labels_emitted = 0;
    s->log_likelihood = 0.0;
    s->status = Status::OK();
  }

  void DestroyLocked(Slot* s, uint32_t idx) {
    if (s->block != nullptr) {
      s->arena->Release(s->block);
      s->block = nullptr;
      s->arena = nullptr;
    }
    s->ctx.reset();
    s->live = false;
    free_slots_.push_back(idx);
    --live_;
    m_destroyed_->Add();
    g_live_->Set(static_cast<double>(live_));
  }

  // The numeric body of Push, run with the in-flight guard held but the
  // pool mutex released — the exact StreamingDecoder::Push sequence over
  // the shared math layer.
  Status PushHeld(Slot* s, const Obs& y, int* label_out,
                  core::IncrementalEmTrainer<Obs>* trainer) {
    const ModelContext& ctx = *s->ctx;
    const stream::StreamRings rings =
        stream::CarveRings(s->block, ctx.window, ctx.k);
    const size_t t = s->frames_pushed;
    double loglik_inc = 0.0;
    const stream::StepOutcome fwd = stream::ForwardStep(
        *ctx.model, *ctx.a_t, ctx.window, t, rings, y, &loglik_inc);
    if (fwd == stream::StepOutcome::kImpossibleObservation) {
      s->status = Status::InvalidArgument(
          "observation has zero probability in every state at frame " +
          std::to_string(t));
      return s->status;
    }
    if (fwd == stream::StepOutcome::kForwardVanished) {
      s->status = Status::InvalidArgument(
          hmm::internal::FrameError("forward message vanished", t));
      return s->status;
    }
    // The ring slot being overwritten held frame t - window, already
    // retired — same rejection-safety argument as the numeric rings.
    s->obs_ring[t % ctx.window] = y;
    if (t < options_.lag) {
      s->log_likelihood += loglik_inc;
      s->frames_pushed = t + 1;
      return Status::OK();
    }
    const size_t frame = t - options_.lag;
    const int label = stream::SmoothedLabel(ctx.model->a, ctx.k, ctx.window,
                                            rings, frame, /*newest=*/t);
    if (label < 0) {
      s->status = Status::InvalidArgument(
          hmm::internal::FrameError("posterior mass vanished", frame));
      return s->status;
    }
    s->log_likelihood += loglik_inc;
    s->frames_pushed = t + 1;
    ++s->labels_emitted;
    *label_out = label;
    if (trainer != nullptr) {
      // Close the loop: the smoothed posterior (left in rings.gamma by
      // the sweep) and the raw observation feed the stepwise E-step; at
      // lag >= 1 rings.frame_u still holds the hoisted product for
      // frame + 1, which is exactly the online xi term.
      trainer->AccumulateStreamFrame(s->obs_ring[frame % ctx.window],
                                     rings.gamma, ctx.k,
                                     /*first_frame=*/frame == 0);
      if (options_.lag >= 1) {
        trainer->AccumulateStreamTransition(
            rings.alpha + (frame % ctx.window) * ctx.k, ctx.model->a,
            rings.frame_u);
      }
    }
    return Status::OK();
  }

  Status FinishHeld(Slot* s, std::vector<int>* tail) {
    s->finished = true;  // further pushes would re-emit flushed frames
    if (!s->status.ok()) return s->status;
    if (s->frames_pushed == 0) return Status::OK();
    const size_t newest = s->frames_pushed - 1;
    const size_t first = s->labels_emitted;
    if (first > newest) return Status::OK();
    const ModelContext& ctx = *s->ctx;
    const stream::StreamRings rings =
        stream::CarveRings(s->block, ctx.window, ctx.k);
    const size_t base = tail->size();
    tail->resize(base + (newest - first + 1));
    const ptrdiff_t bad =
        stream::FinishSweep(ctx.model->a, ctx.k, ctx.window, rings, first,
                            newest, tail->data() + base);
    if (bad >= 0) {
      s->status = Status::InvalidArgument(hmm::internal::FrameError(
          "posterior mass vanished", static_cast<size_t>(bad)));
      tail->resize(base);
      return s->status;
    }
    s->labels_emitted = newest + 1;
    return Status::OK();
  }

  const SessionManagerOptions options_;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Slot[]>> slot_slabs_;  // grow-only pool
  std::vector<uint32_t> free_slots_;                 // recycled indices
  size_t slot_count_ = 0;  // slots carved so far (high-water)
  size_t live_ = 0;
  uint64_t ticks_ = 0;
  uint64_t model_version_ = 1;
  std::shared_ptr<const ModelContext> ctx_;
  // One grow-only arena per ring-block size: a model swap that changes k
  // opens a new shape without invalidating warm blocks of the old one.
  std::map<size_t, std::unique_ptr<util::SlabArena>> arenas_;
  core::IncrementalEmTrainer<Obs>* trainer_ = nullptr;

  // Process-wide metrics (obs/metrics.h): registered once at construction.
  obs::Counter* m_created_ = nullptr;
  obs::Counter* m_destroyed_ = nullptr;
  obs::Counter* m_evicted_ = nullptr;
  obs::Counter* m_pushes_ = nullptr;
  obs::Gauge* g_live_ = nullptr;
  obs::Gauge* g_inflight_ = nullptr;
  obs::Gauge* g_slab_bytes_ = nullptr;
};

}  // namespace dhmm::serve

#endif  // DHMM_SERVE_SESSION_MANAGER_H_
