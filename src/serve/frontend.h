// The socket front-end: binary wire protocol -> ModelRegistry -> DecodeService.
//
// One IO thread runs a poll() event loop over a loopback TCP listener and
// its connections: it accepts, reassembles length-prefixed frames
// (serve/wire.h), decodes request payloads into pooled request slots, and
// hands slot pointers to the dispatcher through a lock-free bounded MPSC
// ring (util/mpsc_ring.h). The dispatcher drains the ring in groups,
// enforces per-request deadlines, routes each request to its model's
// DecodeService via the registry, and returns completed slots through a
// second ring; the IO thread encodes the response frames and writes them
// back (partial writes finish under POLLOUT).
//
// Overload and error semantics — a hostile or unlucky client never crashes
// the process, it gets a typed response:
//   * request ring full          -> Unavailable        (shed-on-full)
//   * unknown model id           -> NotFound
//   * deadline already expired   -> DeadlineExceeded
//   * oversized payload          -> OutOfRange, then the connection closes
//   * malformed payload          -> InvalidArgument (framing intact, the
//                                   connection survives)
//   * garbage header (bad magic/version) -> connection closed; with no
//                                   trustworthy framing there is nothing
//                                   to address a response to.
//
// Allocation: connections, request slots, read/write buffers, the rings,
// and the dispatcher's future/service staging are all pooled and
// grow-only. After warm-up, a request/response round trip performs zero
// heap allocations on the IO-thread + dispatcher path
// (tests/frontend_test.cc pins this with the instrumented allocator).
//
// Determinism: the front-end only moves bytes; decoding happens in
// DecodeService, so wire results are bitwise-identical to offline
// single-threaded decodes for every registered model.
#ifndef DHMM_SERVE_FRONTEND_H_
#define DHMM_SERVE_FRONTEND_H_

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/startup.h"
#include "serve/decode_service.h"
#include "serve/model_registry.h"
#include "serve/request.h"
#include "serve/session_manager.h"
#include "serve/wire.h"
#include "util/check.h"
#include "util/mpsc_ring.h"
#include "util/status.h"

namespace dhmm::serve {

/// Options for the front-end. Designated-initializer-friendly POD with a
/// Validate() checked at Start() — the shared shape of every serve options
/// struct (see the README options table).
struct FrontEndOptions {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (read it
  /// back with port()).
  uint16_t port = 0;
  /// Most simultaneous connections; excess accepts are closed immediately.
  int max_connections = 64;
  /// Bounded request-queue depth between IO thread and dispatcher (rounded
  /// up to a power of two). A full queue sheds with Unavailable.
  size_t queue_capacity = 256;
  /// Largest accepted request payload; frames above it get OutOfRange.
  /// Must not exceed wire::kMaxPayload.
  size_t max_payload_bytes = size_t{1} << 20;
  /// poll() tick; the wake pipe makes the loop responsive regardless.
  int poll_timeout_ms = 100;
  /// Most requests the dispatcher submits to decode services before
  /// waiting — the group a DecodeService can coalesce into one batch.
  size_t max_inflight_batch = 64;

  Status Validate() const {
    if (max_connections < 1) {
      return Status::InvalidArgument(
          "FrontEndOptions::max_connections must be >= 1");
    }
    if (queue_capacity < 2) {
      return Status::InvalidArgument(
          "FrontEndOptions::queue_capacity must be >= 2");
    }
    if (max_payload_bytes == 0 || max_payload_bytes > wire::kMaxPayload) {
      return Status::InvalidArgument(
          "FrontEndOptions::max_payload_bytes must be in (0, kMaxPayload]");
    }
    if (poll_timeout_ms < 1) {
      return Status::InvalidArgument(
          "FrontEndOptions::poll_timeout_ms must be >= 1");
    }
    if (max_inflight_batch < 1) {
      return Status::InvalidArgument(
          "FrontEndOptions::max_inflight_batch must be >= 1");
    }
    return Status::OK();
  }
};

/// \brief Wire-protocol serving front-end over a ModelRegistry.
///
/// The registry is borrowed and must outlive the front-end. Start() binds
/// and spins up the IO and dispatcher threads; Stop() (or the destructor)
/// shuts them down. Counters are readable from any thread.
template <typename Obs>
class FrontEnd {
 public:
  explicit FrontEnd(ModelRegistry<Obs>* registry,
                    const FrontEndOptions& options = {})
      : options_(options), registry_(registry) {
    DHMM_CHECK_MSG(registry != nullptr, "FrontEnd requires a registry");
    // Metric registration is construction-time (allocates, takes the
    // registry lock); the serving paths only touch the resolved pointers
    // — one relaxed atomic op each, no allocation.
    obs::Registry& obs_reg = obs::Registry::Global();
    m_frames_accepted_ = obs_reg.GetCounter("frontend.frames_accepted");
    m_frames_malformed_ = obs_reg.GetCounter("frontend.frames_malformed");
    m_requests_shed_ = obs_reg.GetCounter("frontend.requests_shed");
    m_deadline_expired_ = obs_reg.GetCounter("frontend.deadline_expired");
    m_requests_served_ = obs_reg.GetCounter("frontend.requests_served");
    m_routing_errors_ = obs_reg.GetCounter("frontend.routing_errors");
    m_by_kind_[0] = obs_reg.GetCounter("frontend.requests.viterbi");
    m_by_kind_[1] = obs_reg.GetCounter("frontend.requests.posterior");
    m_by_kind_[2] = obs_reg.GetCounter("frontend.requests.loglik");
    m_by_kind_[3] = obs_reg.GetCounter("frontend.requests.session_push");
    m_by_kind_[4] = obs_reg.GetCounter("frontend.requests.stats");
    m_ring_occupancy_ = obs_reg.GetGauge("frontend.req_ring_occupancy");
    m_latency_us_ = obs_reg.GetHistogram("frontend.request_latency_us");
  }

  ~FrontEnd() { Stop(); }

  FrontEnd(const FrontEnd&) = delete;
  FrontEnd& operator=(const FrontEnd&) = delete;

  /// \brief Binds 127.0.0.1:port, spins up the IO and dispatcher threads.
  Status Start() {
    DHMM_RETURN_NOT_OK(options_.Validate());
    if (running_) return Status::FailedPrecondition("FrontEnd already started");
    // Make the resolved kernel ISA attributable in service logs and the
    // stats snapshot (the line prints once per process).
    obs::LogStartup();

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return Errno("socket");
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(options_.port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      return CloseAnd(Errno("bind"));
    }
    if (::listen(listen_fd_, 128) != 0) return CloseAnd(Errno("listen"));
    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
        0) {
      return CloseAnd(Errno("getsockname"));
    }
    port_ = ntohs(addr.sin_port);
    SetNonBlocking(listen_fd_);

    if (::pipe(wake_pipe_) != 0) return CloseAnd(Errno("pipe"));
    SetNonBlocking(wake_pipe_[0]);
    SetNonBlocking(wake_pipe_[1]);

    req_ring_ = std::make_unique<util::MpscRing<ReqSlot*>>(
        options_.queue_capacity);
    // Completed slots can exceed the request queue (synthesized deadline /
    // not-found responses join decode results), so give the return path
    // headroom; the dispatcher additionally spins on a full done ring
    // because responses must never be dropped.
    done_ring_ = std::make_unique<util::MpscRing<ReqSlot*>>(
        2 * options_.queue_capacity);

    stop_.store(false, std::memory_order_relaxed);
    running_ = true;
    io_thread_ = std::thread([this] { IoLoop(); });
    dispatcher_ = std::thread([this] { DispatchLoop(); });
    return Status::OK();
  }

  /// \brief Stops both threads and closes every socket. Idempotent.
  /// In-flight requests are abandoned (their connections are closing
  /// anyway); pooled memory is reclaimed by the destructor.
  void Stop() {
    if (!running_) return;
    stop_.store(true, std::memory_order_release);
    WakeIo();
    {
      std::lock_guard<std::mutex> lock(dispatch_mu_);
      dispatch_cv_.notify_all();
    }
    dispatcher_.join();
    io_thread_.join();
    for (Conn& c : conns_) {
      if (c.fd >= 0) ::close(c.fd);
      c.fd = -1;
      c.open = false;
    }
    ::close(wake_pipe_[0]);
    ::close(wake_pipe_[1]);
    ::close(listen_fd_);
    listen_fd_ = -1;
    running_ = false;
  }

  /// \brief Enables streaming sessions: kSessionPush frames addressed to
  /// `model` extend a resident fixed-lag session (one per connection) in
  /// `sessions` instead of running a stateless batch decode. The manager
  /// is borrowed and must outlive the front-end; call before Start().
  /// Pushes addressed to any other model id get NotFound, and a push on a
  /// front-end without sessions gets FailedPrecondition.
  void EnableSessions(SessionManager<Obs>* sessions, ModelId model) {
    DHMM_CHECK_MSG(sessions != nullptr, "EnableSessions requires a manager");
    DHMM_CHECK_MSG(!running_, "EnableSessions must be called before Start()");
    sessions_ = sessions;
    session_model_ = model;
  }

  /// The bound port (after Start()).
  uint16_t port() const { return port_; }

  /// \brief Test hook: holds the dispatcher so the request queue fills
  /// deterministically (shed-on-full, expired-deadline tests).
  void PauseDispatch() { paused_.store(true, std::memory_order_release); }
  void ResumeDispatch() {
    paused_.store(false, std::memory_order_release);
    std::lock_guard<std::mutex> lock(dispatch_mu_);
    dispatch_cv_.notify_all();
  }

  /// \brief Rendered text snapshot of the front-end metric family
  /// (obs::RenderText over the "frontend." prefix) — the in-process
  /// counterpart of the kStats wire opcode. Allocates; not a hot path.
  std::string StatsString() const {
    return obs::RenderText(
        obs::Registry::Global().TakeSnapshot("frontend."));
  }

  // Counters. Per-instance (tests assert absolute values on a fresh
  // front end); the obs registry accumulates the same events
  // process-wide under the "frontend." prefix.
  uint64_t requests_served() const { return Load(requests_served_); }
  uint64_t requests_shed() const { return Load(requests_shed_); }
  uint64_t deadline_expired() const { return Load(deadline_expired_); }
  uint64_t routing_errors() const { return Load(routing_errors_); }
  uint64_t protocol_errors() const { return Load(protocol_errors_); }
  uint64_t connections_accepted() const { return Load(connections_accepted_); }
  uint64_t connections_rejected() const { return Load(connections_rejected_); }

 private:
  using Clock = std::chrono::steady_clock;

  /// One pooled request in flight through the rings. The IO thread owns
  /// slot acquisition and release (single-threaded free list, no lock);
  /// the dispatcher only borrows slots while they sit between the rings.
  struct ReqSlot {
    uint64_t request_id = 0;
    ModelId model = 0;
    DecodeKind kind = DecodeKind::kViterbi;
    uint64_t deadline_micros = 0;
    Clock::time_point arrival{};
    std::vector<Obs> obs;  // grow-only decode target
    DecodeResponse resp;   // grow-only path
    size_t conn_index = 0;
    uint64_t conn_generation = 0;
  };

  /// One pooled connection. A closed connection's slot is not recycled
  /// until its in-flight requests drain; the generation counter makes any
  /// late response provably stale.
  struct Conn {
    int fd = -1;
    bool open = false;
    uint64_t generation = 0;
    uint32_t inflight = 0;
    std::vector<uint8_t> rbuf;
    size_t rlen = 0;  // valid bytes at the front of rbuf
    std::vector<uint8_t> wbuf;
    size_t woff = 0;  // first unsent byte in wbuf
  };

  static uint64_t Load(const std::atomic<uint64_t>& a) {
    return a.load(std::memory_order_relaxed);
  }
  static void Bump(std::atomic<uint64_t>& a) {
    a.fetch_add(1, std::memory_order_relaxed);
  }

  static Status Errno(const char* what) {
    return Status::Internal(std::string(what) + ": " +
                            std::strerror(errno));
  }
  Status CloseAnd(Status st) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  static void SetNonBlocking(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }

  void WakeIo() {
    const char b = 1;
    // A full pipe already guarantees a pending wake-up.
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &b, 1);
  }
  void WakeDispatcher() {
    if (dispatcher_sleeping_.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lock(dispatch_mu_);
      dispatch_cv_.notify_one();
    }
  }

  // ---------------------------------------------------------------- IO --

  void IoLoop() {
    while (!stop_.load(std::memory_order_acquire)) {
      pollfds_.clear();
      pollfds_.push_back({listen_fd_, POLLIN, 0});
      pollfds_.push_back({wake_pipe_[0], POLLIN, 0});
      poll_conn_.clear();
      for (size_t i = 0; i < conns_.size(); ++i) {
        Conn& c = conns_[i];
        if (c.fd < 0 || !c.open) continue;
        short events = POLLIN;
        if (c.woff < c.wbuf.size()) events |= POLLOUT;
        pollfds_.push_back({c.fd, events, 0});
        poll_conn_.push_back(i);
      }
      const int n =
          ::poll(pollfds_.data(), pollfds_.size(), options_.poll_timeout_ms);
      if (n < 0 && errno != EINTR) break;
      if (stop_.load(std::memory_order_acquire)) break;

      if (pollfds_[1].revents & POLLIN) {
        char buf[256];
        while (::read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
        }
      }
      DrainDoneRing();
      if (pollfds_[0].revents & POLLIN) AcceptAll();
      for (size_t p = 2; p < pollfds_.size(); ++p) {
        const size_t idx = poll_conn_[p - 2];
        Conn& c = conns_[idx];
        if (!c.open || c.fd != pollfds_[p].fd) continue;  // closed this tick
        if (pollfds_[p].revents & (POLLERR | POLLHUP)) {
          CloseConn(idx);
          continue;
        }
        if (pollfds_[p].revents & POLLOUT) FlushConn(idx);
        if (c.open && (pollfds_[p].revents & POLLIN)) ReadConn(idx);
      }
    }
  }

  void AcceptAll() {
    for (;;) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) return;  // EAGAIN or transient error: next poll retries
      int live = 0;
      for (const Conn& c : conns_) live += c.open;
      if (live >= options_.max_connections) {
        ::close(fd);
        Bump(connections_rejected_);
        continue;
      }
      SetNonBlocking(fd);
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      size_t idx;
      if (!free_conns_.empty()) {
        idx = free_conns_.back();
        free_conns_.pop_back();
      } else {
        idx = conns_.size();
        conns_.emplace_back();
      }
      Conn& c = conns_[idx];
      c.fd = fd;
      c.open = true;
      ++c.generation;
      c.rlen = 0;
      c.wbuf.clear();
      c.woff = 0;
      Bump(connections_accepted_);
    }
  }

  void CloseConn(size_t idx) {
    Conn& c = conns_[idx];
    if (c.fd < 0) return;  // idempotent: flush errors may race a close
    ::close(c.fd);
    c.fd = -1;
    c.open = false;
    ++c.generation;  // any response still in flight is now stale
    if (c.inflight == 0) free_conns_.push_back(idx);
  }

  void ReadConn(size_t idx) {
    Conn& c = conns_[idx];
    for (;;) {
      if (c.rbuf.size() < c.rlen + kReadChunk) {
        c.rbuf.resize(c.rlen + kReadChunk);  // grow-only
      }
      const ssize_t n = ::read(c.fd, c.rbuf.data() + c.rlen, kReadChunk);
      if (n == 0) {
        CloseConn(idx);
        return;
      }
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        CloseConn(idx);
        return;
      }
      c.rlen += static_cast<size_t>(n);
      if (static_cast<size_t>(n) < kReadChunk) break;
    }
    ParseFrames(idx);
  }

  void ParseFrames(size_t idx) {
    Conn& c = conns_[idx];
    size_t off = 0;
    while (c.open && c.rlen - off >= wire::kHeaderSize) {
      wire::FrameHeader h;
      const Status hs = wire::DecodeHeader(c.rbuf.data() + off,
                                           c.rlen - off, &h);
      if (!hs.ok()) {
        // Bad magic / version / absurd length: the stream has no
        // trustworthy framing left, so there is nothing to respond to.
        Bump(protocol_errors_);
        CloseConn(idx);
        break;
      }
      if (h.payload_len > options_.max_payload_bytes) {
        Bump(protocol_errors_);
        SynthesizeError(
            c, h,
            Status::OutOfRange("request payload exceeds the front-end "
                               "limit of " +
                               std::to_string(options_.max_payload_bytes) +
                               " bytes"));
        // The remaining payload bytes will never be read coherently;
        // flush the error and drop the connection.
        FlushConn(idx);
        CloseConn(idx);
        break;
      }
      if (c.rlen - off < wire::kHeaderSize + h.payload_len) break;
      HandleFrame(idx, h, c.rbuf.data() + off + wire::kHeaderSize);
      off += wire::kHeaderSize + h.payload_len;
    }
    if (!c.open) {
      c.rlen = 0;
      return;
    }
    if (off > 0) {
      std::memmove(c.rbuf.data(), c.rbuf.data() + off, c.rlen - off);
      c.rlen -= off;
    }
  }

  void HandleFrame(size_t idx, const wire::FrameHeader& h,
                   const uint8_t* payload) {
    Conn& c = conns_[idx];
    ReqSlot* slot = AcquireSlot();
    const Status ps =
        wire::DecodeRequestPayload<Obs>(h, payload, h.payload_len, &slot->obs);
    if (!ps.ok()) {
      // Framing is intact (the header parsed and the length matched), so
      // the connection survives a bad payload: respond and move on.
      Bump(protocol_errors_);
      m_frames_malformed_->Add();
      SynthesizeError(c, h, ps);
      FlushConn(idx);
      ReleaseSlot(slot);
      return;
    }
    // Accepted = a well-formed frame entering the system (it may still be
    // shed, expire, or fail routing). The per-kind counters partition
    // exactly these frames: sum over kinds == frames_accepted.
    m_frames_accepted_->Add();
    m_by_kind_[static_cast<size_t>(h.decode_kind())]->Add();
    slot->request_id = h.request_id;
    slot->model = h.model;
    slot->kind = h.decode_kind();
    slot->deadline_micros = h.deadline_micros;
    slot->arrival = Clock::now();
    slot->conn_index = idx;
    slot->conn_generation = c.generation;
    if (!req_ring_->TryPush(slot)) {
      Bump(requests_shed_);
      m_requests_shed_->Add();
      SynthesizeError(c, h,
                      Status::Unavailable("request queue full — shed"));
      FlushConn(idx);
      ReleaseSlot(slot);
      return;
    }
    ++c.inflight;
    WakeDispatcher();
  }

  /// Builds an error response straight on the IO thread (shed, malformed,
  /// oversized): no slot crosses the rings.
  void SynthesizeError(Conn& c, const wire::FrameHeader& h, Status st) {
    scratch_resp_.request_id = h.request_id;
    scratch_resp_.kind =
        h.kind <= static_cast<uint8_t>(DecodeKind::kStats)
            ? h.decode_kind()
            : DecodeKind::kViterbi;
    scratch_resp_.status = std::move(st);
    scratch_resp_.path.clear();
    scratch_resp_.value = 0.0;
    scratch_resp_.model_version = 0;
    scratch_resp_.text.clear();
    WriteResponse(c, scratch_resp_, h.model);
  }

  void WriteResponse(Conn& c, const DecodeResponse& resp, ModelId model) {
    if (c.woff == c.wbuf.size()) {
      c.wbuf.clear();
      c.woff = 0;
    }
    const Status es = wire::EncodeResponse(resp, model, &c.wbuf);
    DHMM_CHECK_MSG(es.ok(), "response encoding must not fail");
  }

  void FlushConn(size_t idx) {
    Conn& c = conns_[idx];
    while (c.woff < c.wbuf.size()) {
      const ssize_t n =
          ::write(c.fd, c.wbuf.data() + c.woff, c.wbuf.size() - c.woff);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // POLLOUT
        if (errno == EINTR) continue;
        CloseConn(idx);
        return;
      }
      c.woff += static_cast<size_t>(n);
    }
    c.wbuf.clear();
    c.woff = 0;
  }

  void DrainDoneRing() {
    ReqSlot* slot = nullptr;
    while (done_ring_->TryPop(&slot)) {
      // Per-request latency: frame fully parsed -> response ready to
      // write. One clock read + one relaxed striped increment per
      // response; no allocation.
      m_latency_us_->Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              Clock::now() - slot->arrival)
              .count()));
      Conn& c = conns_[slot->conn_index];
      if (c.generation == slot->conn_generation && c.open) {
        WriteResponse(c, slot->resp, slot->model);
        FlushConn(slot->conn_index);
      }
      DHMM_DCHECK(c.inflight > 0);
      --c.inflight;
      if (!c.open && c.inflight == 0) free_conns_.push_back(slot->conn_index);
      ReleaseSlot(slot);
    }
  }

  ReqSlot* AcquireSlot() {
    if (free_slots_.empty()) {
      all_slots_.push_back(std::make_unique<ReqSlot>());
      free_slots_.push_back(all_slots_.back().get());
    }
    ReqSlot* s = free_slots_.back();
    free_slots_.pop_back();
    return s;
  }
  void ReleaseSlot(ReqSlot* s) { free_slots_.push_back(s); }

  // -------------------------------------------------------- dispatcher --

  void DispatchLoop() {
    // Reserved once: group staging must not allocate at steady state.
    group_.reserve(options_.max_inflight_batch);
    futures_.reserve(options_.max_inflight_batch);
    services_.reserve(options_.max_inflight_batch);
    for (;;) {
      if (stop_.load(std::memory_order_acquire)) return;
      if (paused_.load(std::memory_order_acquire)) {
        std::unique_lock<std::mutex> lock(dispatch_mu_);
        dispatch_cv_.wait_for(lock, std::chrono::milliseconds(10));
        continue;
      }
      group_.clear();
      ReqSlot* slot = nullptr;
      while (group_.size() < options_.max_inflight_batch &&
             req_ring_->TryPop(&slot)) {
        group_.push_back(slot);
      }
      if (group_.empty()) {
        dispatcher_sleeping_.store(true, std::memory_order_release);
        std::unique_lock<std::mutex> lock(dispatch_mu_);
        if (req_ring_->size_approx() == 0 &&
            !stop_.load(std::memory_order_acquire)) {
          dispatch_cv_.wait_for(lock, std::chrono::milliseconds(50));
        }
        dispatcher_sleeping_.store(false, std::memory_order_release);
        continue;
      }
      // Ring depth after the group was cut: what is still waiting.
      m_ring_occupancy_->Set(
          static_cast<double>(req_ring_->size_approx()));
      DispatchGroup();
    }
  }

  void DispatchGroup() {
    // Submit everything first: requests for the same model coalesce into
    // one DecodeService batch while distinct models run independently.
    futures_.clear();
    services_.clear();
    const Clock::time_point now = Clock::now();
    for (ReqSlot* slot : group_) {
      DecodeResponse& r = slot->resp;
      r.request_id = slot->request_id;
      r.kind = slot->kind;
      r.path.clear();
      r.value = 0.0;
      r.model_version = 0;
      r.text.clear();
      if (slot->deadline_micros != 0 &&
          now - slot->arrival >=
              std::chrono::microseconds(slot->deadline_micros)) {
        Bump(deadline_expired_);
        m_deadline_expired_->Add();
        r.status = Status::DeadlineExceeded(
            "deadline expired before dispatch");
        futures_.emplace_back();  // invalid future = pre-resolved slot
        services_.emplace_back();
        continue;
      }
      if (slot->kind == DecodeKind::kStats) {
        // Stats queries are served inline by the front end itself: the
        // snapshot is process state, not a model decode. Allocates (the
        // rendered text) — an operator surface, not a steady-state path.
        r.text = obs::RenderText(obs::Registry::Global().TakeSnapshot());
        r.status = Status::OK();
        Bump(requests_served_);
        m_requests_served_->Add();
        futures_.emplace_back();
        services_.emplace_back();
        continue;
      }
      if (slot->kind == DecodeKind::kSessionPush) {
        // Session pushes run inline on the dispatcher (per-push work is
        // O(lag * k^2), far below a batch decode) instead of crossing a
        // DecodeService.
        HandleSessionPush(slot);
        futures_.emplace_back();
        services_.emplace_back();
        continue;
      }
      Result<std::shared_ptr<DecodeService<Obs>>> svc =
          registry_->Acquire(slot->model);
      if (!svc.ok()) {
        Bump(routing_errors_);
        m_routing_errors_->Add();
        r.status = svc.status();
        futures_.emplace_back();
        services_.emplace_back();
        continue;
      }
      services_.push_back(std::move(svc).value());
      DecodeRequest<Obs> req;
      req.request_id = slot->request_id;
      req.model = slot->model;
      req.kind = slot->kind;
      req.deadline_micros = slot->deadline_micros;
      req.obs = &slot->obs;
      futures_.push_back(services_.back()->Submit(req));
    }
    for (size_t i = 0; i < group_.size(); ++i) {
      ReqSlot* slot = group_[i];
      if (futures_[i].valid()) {
        const DecodeResult& result = futures_[i].Wait();
        slot->resp.status = result.status;
        slot->resp.value = result.value;
        slot->resp.model_version = result.model_version;
        slot->resp.path.assign(result.path.begin(), result.path.end());
        futures_[i].Release();
        Bump(requests_served_);
        m_requests_served_->Add();
      }
      // Responses must never be dropped: spin until the return ring has
      // room (the IO thread is draining it). On shutdown the IO thread is
      // gone and the connection with it — abandon the response.
      while (!done_ring_->TryPush(slot)) {
        if (stop_.load(std::memory_order_acquire)) break;
        WakeIo();
        std::this_thread::yield();
      }
    }
    services_.clear();
    futures_.clear();
    WakeIo();
  }

  /// Runs one kSessionPush request against the connection's resident
  /// session, creating it on first use. The response carries every label
  /// that left the lag window (resp.path, in stream order) and the running
  /// stream log-likelihood (resp.value). A poisoned stream reports its
  /// error once and is torn down, so the connection's next push starts a
  /// fresh stream; a session reaped by an idle sweep between requests is
  /// recreated transparently.
  void HandleSessionPush(ReqSlot* slot) {
    DecodeResponse& r = slot->resp;
    if (sessions_ == nullptr) {
      Bump(routing_errors_);
      m_routing_errors_->Add();
      r.status = Status::FailedPrecondition(
          "sessions are not enabled on this front-end");
      return;
    }
    if (slot->model != session_model_) {
      Bump(routing_errors_);
      m_routing_errors_->Add();
      r.status = Status::NotFound("session pushes serve model id " +
                                  std::to_string(session_model_) + " only");
      return;
    }
    // One resident session per connection slot. Connection slots are
    // pooled by index, so a reused slot (fresh generation) lazily tears
    // down its predecessor's session here, and the map stays bounded by
    // max_connections.
    auto [it, inserted] = wire_sessions_.try_emplace(
        slot->conn_index,
        std::make_pair(slot->conn_generation, kInvalidSessionHandle));
    if (!inserted && it->second.first != slot->conn_generation) {
      (void)sessions_->DestroySession(it->second.second);
      it->second = {slot->conn_generation, kInvalidSessionHandle};
    }
    SessionHandle h = it->second.second;
    Status st = Status::OK();
    for (const Obs& y : slot->obs) {
      if (h == kInvalidSessionHandle) {
        Result<SessionHandle> created = sessions_->CreateSession();
        if (!created.ok()) {
          st = created.status();
          break;
        }
        h = created.value();
        it->second.second = h;
      }
      int label = -1;
      st = sessions_->Push(h, y, &label);
      if (st.code() == StatusCode::kNotFound) {
        // Evicted by an idle sweep between requests: the stream state is
        // gone, so restart once and retry this frame on the new session.
        h = kInvalidSessionHandle;
        Result<SessionHandle> created = sessions_->CreateSession();
        if (!created.ok()) {
          st = created.status();
          break;
        }
        h = created.value();
        it->second.second = h;
        st = sessions_->Push(h, y, &label);
      }
      if (!st.ok()) break;
      if (label >= 0) r.path.push_back(label);
    }
    if (!st.ok()) {
      if (h != kInvalidSessionHandle) (void)sessions_->DestroySession(h);
      wire_sessions_.erase(it);
      Bump(routing_errors_);
      m_routing_errors_->Add();
      r.status = std::move(st);
      r.path.clear();
      return;
    }
    if (h != kInvalidSessionHandle) {
      const Result<double> ll = sessions_->LogLikelihood(h);
      if (ll.ok()) r.value = ll.value();
    }
    r.model_version = sessions_->model_version();
    r.status = Status::OK();
    Bump(requests_served_);
    m_requests_served_->Add();
  }

  const FrontEndOptions options_;
  ModelRegistry<Obs>* const registry_;

  static constexpr size_t kReadChunk = 64 * 1024;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  uint16_t port_ = 0;
  bool running_ = false;

  std::unique_ptr<util::MpscRing<ReqSlot*>> req_ring_;
  std::unique_ptr<util::MpscRing<ReqSlot*>> done_ring_;

  // IO-thread state (single-threaded: no locks).
  std::vector<Conn> conns_;
  std::vector<size_t> free_conns_;
  std::vector<std::unique_ptr<ReqSlot>> all_slots_;
  std::vector<ReqSlot*> free_slots_;
  std::vector<pollfd> pollfds_;
  std::vector<size_t> poll_conn_;  // conn index per pollfd entry past [1]
  DecodeResponse scratch_resp_;

  // Dispatcher state.
  std::vector<ReqSlot*> group_;
  std::vector<DecodeFuture<Obs>> futures_;
  std::vector<std::shared_ptr<DecodeService<Obs>>> services_;
  // Resident wire sessions, keyed by connection slot index; the stored
  // generation proves the entry belongs to the current tenant of the slot.
  // Dispatcher-only, like the rest of the session routing.
  std::map<size_t, std::pair<uint64_t, SessionHandle>> wire_sessions_;
  SessionManager<Obs>* sessions_ = nullptr;
  ModelId session_model_ = 0;
  std::mutex dispatch_mu_;
  std::condition_variable dispatch_cv_;
  std::atomic<bool> dispatcher_sleeping_{false};
  std::atomic<bool> paused_{false};

  std::atomic<bool> stop_{false};
  std::thread io_thread_;
  std::thread dispatcher_;

  // Obs metric pointers, resolved once at construction (see metrics.h).
  obs::Counter* m_frames_accepted_ = nullptr;
  obs::Counter* m_frames_malformed_ = nullptr;
  obs::Counter* m_requests_shed_ = nullptr;
  obs::Counter* m_deadline_expired_ = nullptr;
  obs::Counter* m_requests_served_ = nullptr;
  obs::Counter* m_routing_errors_ = nullptr;
  obs::Counter* m_by_kind_[5] = {};  // indexed by DecodeKind wire value
  obs::Gauge* m_ring_occupancy_ = nullptr;
  obs::Histogram* m_latency_us_ = nullptr;

  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> requests_shed_{0};
  std::atomic<uint64_t> deadline_expired_{0};
  std::atomic<uint64_t> routing_errors_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_rejected_{0};
};

}  // namespace dhmm::serve

#endif  // DHMM_SERVE_FRONTEND_H_
