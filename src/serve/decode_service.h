// The request-facing decode layer: a persistent, batched decoding service.
//
// DecodeService turns the offline inference stack (workspace-threaded
// kernels, cached transition transposes, the PR-2 thread pool) into a
// front end for decode-per-request traffic: callers Submit() Viterbi /
// posterior-decode / log-likelihood requests from any thread and get a
// future-style handle back; a dispatcher coalesces pending requests into
// batches and fans each batch across the pool's workers, one
// InferenceWorkspace per worker.
//
// Model hot-swap is RCU-style: the service holds the current model as a
// std::shared_ptr<const HmmModel<Obs>>, every batch snapshots that pointer
// when it is cut, and UpdateModel()/ReloadModel() only swap the pointer —
// in-flight batches finish on the snapshot they started with while new
// batches pick up the new model. Combined with SaveHmmToFile's atomic
// rename, a checkpoint reload can never observe a torn file or race a
// running decode.
//
// Determinism: every request is decoded by the deterministic kernel layer
// with a per-request emission table and a content-keyed transition cache,
// so results are bitwise-identical to the offline single-threaded
// hmm::Viterbi / hmm::PosteriorDecode / hmm::LogLikelihood for every
// worker count and batch size (tests/serve_test.cc pins this).
//
// Allocation: request slots, the pending ring, batch scratch, and all
// per-worker workspaces are pooled and grow-only. After warm-up at a fixed
// model size and sequence length, a Submit/Wait/Release round performs
// zero heap allocations (instrumented-new pinned).
#ifndef DHMM_SERVE_DECODE_SERVICE_H_
#define DHMM_SERVE_DECODE_SERVICE_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "hmm/emission_rows.h"
#include "hmm/inference.h"
#include "hmm/model.h"
#include "hmm/posterior_decoding.h"
#include "hmm/serialization.h"
#include "obs/metrics.h"
#include "obs/startup.h"
#include "serve/request.h"
#include "store/dual_slot.h"
#include "util/check.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace dhmm::serve {

/// The completed-request payload is the one response type of the serving
/// API (serve/request.h). Valid until the owning DecodeFuture is
/// released/destroyed; copy out anything needed longer.
using DecodeResult = DecodeResponse;

/// Options for the service. Designated-initializer-friendly POD with a
/// Validate() checked at construction — the shared shape of every serve
/// options struct (see the README options table).
struct DecodeServiceOptions {
  /// Worker parallelism for batch fan-out, including the dispatcher thread;
  /// <= 0 selects std::thread::hardware_concurrency(). Results are
  /// identical for every value.
  int num_threads = 1;
  /// Most requests coalesced into one batch; 0 = unbounded. Smaller batches
  /// lower tail latency under mixed traffic, larger batches amortize
  /// dispatch overhead.
  size_t max_batch = 64;
  /// Posterior-decode / log-likelihood requests of at least this many
  /// frames run the checkpointed sweep (O(sqrt(T) * k) workspace instead
  /// of the T x k emission table); 0 disables. Results are bitwise
  /// identical either way. Viterbi always uses the full table — its
  /// backtrack needs all T argmax rows regardless.
  size_t checkpoint_threshold_frames = hmm::kDefaultCheckpointThresholdFrames;

  /// A config error (absurd thread count) surfaces here, before the
  /// service spins up threads on it.
  Status Validate() const {
    if (num_threads > kMaxThreads) {
      return Status::InvalidArgument(
          "DecodeServiceOptions::num_threads is absurdly large");
    }
    return Status::OK();
  }

  static constexpr int kMaxThreads = 4096;
};

/// Pre-unification spelling, kept as an alias for existing callers.
using ServeOptions = DecodeServiceOptions;

template <typename Obs>
class DecodeService;

namespace internal {

/// One pooled request: inputs, result, and a tiny per-slot waiter. Slots
/// are recycled through the service free list, so their result buffers
/// (path) are grow-only across requests.
template <typename Obs>
struct RequestSlot {
  DecodeKind kind = DecodeKind::kViterbi;
  uint64_t request_id = 0;                // echoed into the response
  const std::vector<Obs>* obs = nullptr;  // borrowed until done
  DecodeResult result;

  std::mutex mu;
  std::condition_variable cv;
  bool done = false;  // guarded by mu
};

}  // namespace internal

/// \brief Future-style handle to one submitted request. Move-only; waits
/// for and releases its pooled slot. Must not outlive the service.
template <typename Obs>
class DecodeFuture {
 public:
  DecodeFuture() = default;
  DecodeFuture(DecodeFuture&& other) noexcept
      : service_(other.service_), slot_(other.slot_) {
    other.service_ = nullptr;
    other.slot_ = nullptr;
  }
  DecodeFuture& operator=(DecodeFuture&& other) noexcept {
    if (this != &other) {
      Release();
      service_ = other.service_;
      slot_ = other.slot_;
      other.service_ = nullptr;
      other.slot_ = nullptr;
    }
    return *this;
  }
  DecodeFuture(const DecodeFuture&) = delete;
  DecodeFuture& operator=(const DecodeFuture&) = delete;
  ~DecodeFuture() { Release(); }

  /// True until the slot has been released.
  bool valid() const { return slot_ != nullptr; }

  /// Blocks until the request completes; the reference stays valid until
  /// Release()/destruction. Safe to call repeatedly.
  const DecodeResult& Wait() {
    DHMM_CHECK_MSG(slot_ != nullptr, "Wait on a released DecodeFuture");
    std::unique_lock<std::mutex> lock(slot_->mu);
    slot_->cv.wait(lock, [&] { return slot_->done; });
    return slot_->result;
  }

  /// Returns the slot to the service pool (blocking until the request has
  /// completed if it is still in flight). Idempotent.
  void Release() {
    if (slot_ == nullptr) return;
    service_->ReleaseSlot(slot_);
    service_ = nullptr;
    slot_ = nullptr;
  }

 private:
  friend class DecodeService<Obs>;
  DecodeFuture(DecodeService<Obs>* service, internal::RequestSlot<Obs>* slot)
      : service_(service), slot_(slot) {}

  DecodeService<Obs>* service_ = nullptr;
  internal::RequestSlot<Obs>* slot_ = nullptr;
};

/// \brief Thread-safe batched decoding front end with RCU model hot-swap.
///
/// Submit() may be called concurrently from any number of threads; the
/// service's destructor drains every accepted request before returning.
/// Outstanding DecodeFutures must be released before the service dies.
template <typename Obs>
class DecodeService {
 public:
  explicit DecodeService(std::shared_ptr<const hmm::HmmModel<Obs>> model,
                         const DecodeServiceOptions& options = {})
      : options_(options),
        pool_(options.num_threads),
        workers_(static_cast<size_t>(pool_.num_threads())) {
    const Status opt_st = options.Validate();
    DHMM_CHECK_MSG(opt_st.ok(), opt_st.message().c_str());
    DHMM_CHECK_MSG(model != nullptr, "DecodeService requires a model");
    model->Validate();
    model_ = std::move(model);
    // Make the resolved kernel ISA attributable in service logs and in the
    // stats snapshot (line printed once per process, gauge refreshed).
    obs::LogStartup();
    obs::Registry& reg = obs::Registry::Global();
    m_requests_ = reg.GetCounter("decode.requests");
    m_batches_ = reg.GetCounter("decode.batches");
    m_hot_swaps_ = reg.GetCounter("decode.hot_swaps");
    m_by_kind_[0] = reg.GetCounter("decode.requests.viterbi");
    m_by_kind_[1] = reg.GetCounter("decode.requests.posterior");
    m_by_kind_[2] = reg.GetCounter("decode.requests.loglik");
    m_by_kind_[3] = reg.GetCounter("decode.requests.session_push");
    m_by_kind_[4] = reg.GetCounter("decode.requests.stats");
    m_batch_size_ = reg.GetHistogram("decode.batch_size");
    m_coalesce_depth_ = reg.GetGauge("decode.coalesce_depth");
    // One std::function for the lifetime of the service: the only capture
    // is `this`, so the callable stays in std::function's inline storage
    // and batch dispatch never touches the allocator.
    batch_fn_ = [this](int worker, size_t item) { ServeOne(worker, item); };
    dispatcher_ = std::thread([this] { DispatchLoop(); });
  }

  ~DecodeService() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    pending_cv_.notify_all();
    dispatcher_.join();
    // A future that outlives the service would call back into freed
    // memory on Release(); fail loudly here instead of corrupting later.
    // (Under mu_ so the diagnostic itself cannot race a late Release.)
    std::lock_guard<std::mutex> lock(mu_);
    DHMM_CHECK_MSG(free_.size() == slots_.size(),
                   "DecodeService destroyed with outstanding DecodeFutures");
  }

  DecodeService(const DecodeService&) = delete;
  DecodeService& operator=(const DecodeService&) = delete;

  /// \brief Enqueues one request — the canonical entry point; the wire
  /// front-end submits the exact same type. `req.obs` is borrowed: it must
  /// stay alive and unmodified until the returned future completes.
  /// `req.model` and `req.deadline_micros` are the caller's concern (the
  /// registry routes on the former, the front-end enforces the latter);
  /// the single-model service echoes them through untouched.
  DecodeFuture<Obs> Submit(const DecodeRequest<Obs>& req) {
    DHMM_CHECK_MSG(req.obs != nullptr, "DecodeRequest without observations");
    internal::RequestSlot<Obs>* slot = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      DHMM_CHECK_MSG(!shutdown_, "Submit on a shut-down DecodeService");
      if (free_.empty()) {
        slots_.push_back(std::make_unique<internal::RequestSlot<Obs>>());
        free_.push_back(slots_.back().get());
      }
      slot = free_.back();
      free_.pop_back();
      slot->kind = req.kind;
      slot->request_id = req.request_id;
      slot->obs = req.obs;
      slot->done = false;
      pending_.push_back(slot);
    }
    // Process-wide per-kind counts (obs/metrics.h): one relaxed add per
    // request, clamped so a kind byte beyond the enum can never index out
    // of the table (recording never aborts).
    const size_t kind_ix = std::min<size_t>(static_cast<size_t>(req.kind),
                                            kNumKindCounters - 1);
    m_by_kind_[kind_ix]->Add();
    m_requests_->Add();
    pending_cv_.notify_one();
    return DecodeFuture<Obs>(this, slot);
  }

  /// Convenience form for in-process callers that have no correlation id
  /// or deadline. Same borrow contract as the request form.
  DecodeFuture<Obs> Submit(DecodeKind kind, const std::vector<Obs>& obs) {
    DecodeRequest<Obs> req;
    req.kind = kind;
    req.obs = &obs;
    return Submit(req);
  }

  /// A temporary would be freed while the request is still queued; the
  /// borrow must outlive the future, so reject rvalues at compile time.
  DecodeFuture<Obs> Submit(DecodeKind kind, std::vector<Obs>&& obs) = delete;

  /// \brief RCU swap: batches already cut finish on their snapshot; later
  /// batches (hence all requests submitted after this returns) see the new
  /// model. Never blocks on in-flight work.
  void UpdateModel(std::shared_ptr<const hmm::HmmModel<Obs>> model) {
    DHMM_CHECK_MSG(model != nullptr, "UpdateModel requires a model");
    model->Validate();
    {
      std::lock_guard<std::mutex> lock(mu_);
      model_ = std::move(model);
      ++model_version_;
    }
    m_hot_swaps_->Add();
  }

  /// \brief Loads a checkpoint and hot-swaps it in: a binary store file or
  /// dual-slot directory (store/dual_slot.h) is CRC-verified and mmap-read
  /// with no text parse; anything else falls back to the SaveHmmToFile
  /// text format. On any failure — including a corrupt store slot — the
  /// current model keeps serving, bitwise unchanged.
  Status ReloadModel(const std::string& path) {
    Result<hmm::HmmModel<Obs>> loaded = store::LoadAnyModel<Obs>(path);
    if (!loaded.ok()) return loaded.status();
    UpdateModel(std::make_shared<const hmm::HmmModel<Obs>>(
        std::move(loaded).value()));
    return Status::OK();
  }

  /// Current model snapshot (what the next batch will use).
  std::shared_ptr<const hmm::HmmModel<Obs>> ModelSnapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return model_;
  }

  /// Bumped by every successful UpdateModel/ReloadModel; starts at 1.
  uint64_t model_version() const {
    std::lock_guard<std::mutex> lock(mu_);
    return model_version_;
  }

  /// Resolved worker parallelism.
  int num_threads() const { return pool_.num_threads(); }

  /// The "decode." slice of the process-wide metrics snapshot, rendered as
  /// text (obs/metrics.h). Allocates; for diagnostics, not the hot path.
  std::string StatsString() const {
    return obs::RenderText(obs::Registry::Global().TakeSnapshot("decode."));
  }

  // Counters (dispatcher-written, safe to read from any thread).
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }
  uint64_t batches_dispatched() const {
    return batches_dispatched_.load(std::memory_order_relaxed);
  }
  size_t largest_batch() const {
    return largest_batch_.load(std::memory_order_relaxed);
  }

 private:
  friend class DecodeFuture<Obs>;

  // Per-worker scratch: one inference workspace (with its transition
  // cache) plus result staging reused across requests.
  struct Worker {
    hmm::InferenceWorkspace ws;
    hmm::ForwardBackwardResult fb;
    hmm::ViterbiResult viterbi;
  };

  void ReleaseSlot(internal::RequestSlot<Obs>* slot) {
    {
      // A future may be released without ever Wait()ing; the slot cannot
      // be recycled while a batch worker still writes into it.
      std::unique_lock<std::mutex> lock(slot->mu);
      slot->cv.wait(lock, [&] { return slot->done; });
    }
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(slot);
  }

  // Moves up to max_batch pending requests into batch_ and snapshots the
  // model for them. Caller holds mu_.
  void CutBatchLocked() {
    const size_t n = options_.max_batch == 0
                         ? pending_.size()
                         : std::min(pending_.size(), options_.max_batch);
    batch_.clear();
    for (size_t i = 0; i < n; ++i) batch_.push_back(pending_[i]);
    // Erase the consumed prefix (a pointer memmove, no allocation), so
    // pending_ is bounded by the live backlog instead of growing with
    // every request ever submitted under sustained load.
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<ptrdiff_t>(n));
    batch_model_ = model_;  // refcount bump only — the RCU snapshot
    batch_version_ = model_version_;
  }

  void DispatchLoop() {
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mu_);
        pending_cv_.wait(lock,
                         [&] { return shutdown_ || !pending_.empty(); });
        if (pending_.empty()) return;  // shutdown, drained
        // Coalesce depth = backlog visible when the batch is cut; how much
        // of it one batch absorbs is bounded by max_batch.
        m_coalesce_depth_->Set(static_cast<double>(pending_.size()));
        CutBatchLocked();
      }
      m_batches_->Add();
      m_batch_size_->Record(batch_.size());
      // The dispatcher participates as worker 0, so num_threads == 1 runs
      // the whole batch inline with no cross-thread traffic.
      pool_.ParallelFor(batch_.size(), batch_fn_);
      // Counters first: a Wait() that returns must already see this batch
      // counted (done is published after, under each slot's mutex).
      requests_served_.fetch_add(batch_.size(), std::memory_order_relaxed);
      batches_dispatched_.fetch_add(1, std::memory_order_relaxed);
      if (batch_.size() > largest_batch_.load(std::memory_order_relaxed)) {
        largest_batch_.store(batch_.size(), std::memory_order_relaxed);
      }
      for (internal::RequestSlot<Obs>* slot : batch_) {
        {
          std::lock_guard<std::mutex> lock(slot->mu);
          slot->done = true;
        }
        slot->cv.notify_all();
      }
      batch_model_.reset();  // drop the snapshot promptly after the batch
    }
  }

  void ServeOne(int worker, size_t item) {
    internal::RequestSlot<Obs>* slot = batch_[item];
    Worker& w = workers_[static_cast<size_t>(worker)];
    const hmm::HmmModel<Obs>& m = *batch_model_;
    DecodeResult& r = slot->result;
    r.request_id = slot->request_id;
    r.kind = slot->kind;
    r.model_version = batch_version_;
    r.path.clear();
    r.text.clear();  // slots recycle; a stale snapshot must not leak out
    r.value = 0.0;
    if (slot->obs->empty()) {
      r.status = Status::InvalidArgument("empty observation sequence");
      return;
    }
    // Long posterior / log-likelihood requests take the checkpointed
    // sweep: emission log-probs are produced row-at-a-time on demand, so
    // the T x k table is never materialized (Viterbi's backtrack needs the
    // full table and is excluded). Paths and values stay bitwise identical
    // to the full path — tests/serve_test.cc pins the service against the
    // offline decoders either way.
    const size_t threshold = options_.checkpoint_threshold_frames;
    const bool checkpointed = threshold != 0 &&
                              slot->obs->size() >= threshold &&
                              slot->kind != DecodeKind::kViterbi;
    if (!checkpointed) {
      m.emission->LogProbTableInto(*slot->obs, &w.ws.log_b);
    }
    hmm::EmissionLogBRows<Obs> rows{m.emission.get(), slot->obs,
                                    &w.ws.log_b_row};
    // Everything below goes through the non-aborting Try* inference forms:
    // an impossible sequence (zero-probability frame, chain-unreachable
    // frame, scaled-emission underflow) is a per-request InvalidArgument,
    // never a DHMM_CHECK process abort — one bad client request must not
    // take down a multi-tenant service.
    switch (slot->kind) {
      case DecodeKind::kViterbi:
        r.status = hmm::TryViterbi(m.pi, m.a, w.ws.log_b, &w.ws, &w.viterbi);
        if (r.status.ok()) {
          r.path.assign(w.viterbi.path.begin(), w.viterbi.path.end());
          r.value = w.viterbi.log_joint;
        }
        break;
      case DecodeKind::kPosterior:
        if (checkpointed) {
          r.status = hmm::TryPosteriorDecodeRows(m.pi, m.a, rows.View(),
                                                 /*panel_frames=*/0, &w.ws,
                                                 &r.value, &r.path);
        } else {
          r.status = hmm::TryPosteriorDecode(m.pi, m.a, w.ws.log_b, &w.ws,
                                             &w.fb, &r.path);
          if (r.status.ok()) r.value = w.fb.log_likelihood;
        }
        break;
      case DecodeKind::kLogLikelihood:
        if (checkpointed) {
          r.status = hmm::TryLogLikelihoodRows(m.pi, m.a, rows.View(), &w.ws,
                                               &r.value);
        } else {
          r.status =
              hmm::TryLogLikelihood(m.pi, m.a, w.ws.log_b, &w.ws, &r.value);
        }
        break;
      case DecodeKind::kSessionPush:
        // Session pushes carry per-stream state; they route to
        // serve::SessionManager through the front-end, never to the
        // stateless batch service.
        r.status = Status::InvalidArgument(
            "kSessionPush is not a batch decode; enable sessions on the "
            "front-end");
        break;
      case DecodeKind::kStats:
        // Stats queries read process-wide state; the front-end serves them
        // inline without routing to any decode service.
        r.status = Status::InvalidArgument(
            "kStats is not a batch decode; the front-end serves it");
        break;
    }
    if (!r.status.ok()) r.path.clear();
  }

  const DecodeServiceOptions options_;
  util::ThreadPool pool_;
  std::vector<Worker> workers_;  // one per pool worker
  std::function<void(int, size_t)> batch_fn_;

  mutable std::mutex mu_;
  std::condition_variable pending_cv_;
  std::shared_ptr<const hmm::HmmModel<Obs>> model_;  // guarded by mu_
  uint64_t model_version_ = 1;                       // guarded by mu_
  bool shutdown_ = false;                            // guarded by mu_
  std::vector<std::unique_ptr<internal::RequestSlot<Obs>>> slots_;  // pool
  std::vector<internal::RequestSlot<Obs>*> free_;     // guarded by mu_
  std::vector<internal::RequestSlot<Obs>*> pending_;  // guarded by mu_

  // Dispatcher-only batch state (stable while a batch runs).
  std::vector<internal::RequestSlot<Obs>*> batch_;
  std::shared_ptr<const hmm::HmmModel<Obs>> batch_model_;
  uint64_t batch_version_ = 0;

  std::thread dispatcher_;
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> batches_dispatched_{0};
  std::atomic<size_t> largest_batch_{0};

  // Process-wide metrics (obs/metrics.h): registered once at construction,
  // bumped with relaxed atomics on the hot path. One per-kind slot per wire
  // kind; Submit clamps into the table so recording never aborts.
  static constexpr size_t kNumKindCounters = 5;
  obs::Counter* m_requests_ = nullptr;
  obs::Counter* m_batches_ = nullptr;
  obs::Counter* m_hot_swaps_ = nullptr;
  obs::Counter* m_by_kind_[kNumKindCounters] = {};
  obs::Histogram* m_batch_size_ = nullptr;
  obs::Gauge* m_coalesce_depth_ = nullptr;
};

}  // namespace dhmm::serve

#endif  // DHMM_SERVE_DECODE_SERVICE_H_
