// Online sequential labeling: incremental forward recursion with fixed-lag
// posterior smoothing.
//
// StreamingDecoder consumes one observation per Push() and emits the
// smoothed posterior-argmax label for the frame `lag` steps behind the
// stream head: label(t - lag) = argmax_i q(X_{t-lag} = i | y_0..y_t). The
// arithmetic lives in serve/stream_math.h and is shared with the
// multi-stream serve::SessionManager: the forward pass is the same scaled
// recursion the offline kernels run (identical kernel calls on the cached
// transition transpose), so the running log-likelihood is
// bitwise-identical to offline hmm::LogLikelihood on every prefix; the
// backward smoothing pass over the lag window replays the offline fused
// backward ops, so with a lag that covers the whole sequence the labels
// from Finish() are bitwise-identical to offline hmm::PosteriorDecode
// (tests/serve_test.cc pins both).
//
// All window buffers are rings sized by (lag, k) and grow-only: after the
// first Push at a given shape, pushes perform zero heap allocations, and
// both Reset() overloads reuse the warm buffers (instrumented-new-pinned),
// so a finished or errored stream is recycled without reconstruction.
#ifndef DHMM_SERVE_STREAMING_DECODER_H_
#define DHMM_SERVE_STREAMING_DECODER_H_

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "hmm/inference.h"
#include "hmm/model.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "serve/stream_math.h"
#include "util/check.h"
#include "util/status.h"

namespace dhmm::serve {

/// Options for the streaming decoder. Designated-initializer-friendly POD
/// with a Validate() checked at construction — the shared shape of every
/// serve options struct (see the README options table).
struct StreamingDecoderOptions {
  /// Smoothing lag L: the label for frame t is emitted after seeing frame
  /// t + L. 0 emits filtered (forward-only) labels immediately; larger lags
  /// trade latency — and compute: exact fixed-lag smoothing re-runs the
  /// backward sweep over the window, O(L * k^2) per pushed frame — for
  /// accuracy. A lag >= T - 1 reproduces offline posterior decoding
  /// exactly (labels then all come from Finish(), one O(T * k^2) sweep).
  size_t lag = 8;

  /// Ring storage is (lag + 1) x k doubles: bound the lag so a config
  /// error (e.g. a negative flag cast to size_t) cannot overflow the
  /// window arithmetic or request an absurd allocation.
  Status Validate() const {
    if (lag > kMaxLag) {
      return Status::InvalidArgument(
          "StreamingDecoderOptions::lag is absurdly large");
    }
    return Status::OK();
  }
};

/// Pre-unification spelling, kept as an alias for existing callers.
using StreamingOptions = StreamingDecoderOptions;

/// \brief Incremental fixed-lag posterior decoder over one live stream.
///
/// Thread-compatible: one decoder serves one stream. Reuse via Reset().
/// For many resident streams over one model, use serve::SessionManager,
/// which amortizes the per-stream footprint through a slab arena.
template <typename Obs>
class StreamingDecoder {
 public:
  explicit StreamingDecoder(std::shared_ptr<const hmm::HmmModel<Obs>> model,
                            const StreamingDecoderOptions& options = {})
      : options_(options) {
    const Status opt_st = options.Validate();
    DHMM_CHECK_MSG(opt_st.ok(), opt_st.message().c_str());
    DHMM_CHECK_MSG(model != nullptr, "StreamingDecoder requires a model");
    model->Validate();
    model_ = std::move(model);
    SizeBuffers();
    ResetStreamState();
  }

  // Non-copyable/movable: a_t_ points into this object's transition_
  // cache, so a relocated decoder would dangle.
  StreamingDecoder(const StreamingDecoder&) = delete;
  StreamingDecoder& operator=(const StreamingDecoder&) = delete;
  StreamingDecoder(StreamingDecoder&&) = delete;
  StreamingDecoder& operator=(StreamingDecoder&&) = delete;

  /// Clears stream state (frames, likelihood, labels, error/finish flags)
  /// but keeps the model and the warm buffers: a finished or poisoned
  /// stream is reusable with zero heap allocations
  /// (tests/serve_test.cc pins this with the instrumented allocator).
  void Reset() { ResetStreamState(); }

  /// Swaps in a new model snapshot and restarts the stream — the streaming
  /// analogue of the service's hot-swap (a chain posterior is not
  /// well-defined across two models, so the stream restarts). Allocation-
  /// free when the new model has the same state count: buffers and the
  /// transpose cache are grow-only and rebuilt in place.
  void Reset(std::shared_ptr<const hmm::HmmModel<Obs>> model) {
    DHMM_CHECK_MSG(model != nullptr, "StreamingDecoder requires a model");
    model->Validate();
    model_ = std::move(model);
    SizeBuffers();
    ResetStreamState();
  }

  /// \brief Consumes one observation. Returns true when a smoothed label
  /// became available (readable via last_label()).
  ///
  /// Returns false both while the label is still inside the lag window and
  /// when the frame was rejected — check ok()/status() to distinguish. A
  /// rejected frame (zero probability in every state, or a vanished
  /// forward message) is not consumed, poisons only this stream, and
  /// refuses further pushes until Reset(): one bad frame on a live stream
  /// must never abort the serving process (matching DecodeService's
  /// per-request error contract).
  bool Push(const Obs& y) {
    DHMM_CHECK_MSG(!finished_,
                   "Push after Finish — Reset() the decoder first");
    if (!status_.ok()) return false;
    const size_t t = frames_pushed_;
    double loglik_inc = 0.0;
    const stream::StepOutcome fwd = stream::ForwardStep(
        *model_, *a_t_, window_, t, Rings(), y, &loglik_inc);
    if (fwd == stream::StepOutcome::kImpossibleObservation) {
      status_ = Status::InvalidArgument(
          "observation has zero probability in every state at frame " +
          std::to_string(t));
      return false;
    }
    if (fwd == stream::StepOutcome::kForwardVanished) {
      status_ = Status::InvalidArgument(
          FrameError("forward message vanished", t));
      return false;
    }

    if (t < options_.lag) {
      log_likelihood_ += loglik_inc;
      frames_pushed_ = t + 1;
      return false;
    }
    // Smooth before committing the frame, so every rejection path leaves
    // the stream exactly as it was (the ring rows written above belong to
    // an already-retired frame).
    const int label =
        stream::SmoothedLabel(model_->a, model_->num_states(), window_,
                              Rings(), /*frame=*/t - options_.lag,
                              /*newest=*/t);
    if (label < 0) {
      status_ = Status::InvalidArgument(
          FrameError("posterior mass vanished", t - options_.lag));
      return false;
    }
    log_likelihood_ += loglik_inc;
    frames_pushed_ = t + 1;
    last_label_ = label;
    ++labels_emitted_;
    return true;
  }

  /// OK until a push was rejected; then the error until Reset().
  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// \brief Flushes the lag: labels for the frames still inside the window
  /// (smoothed against the final frame) are appended to *tail in stream
  /// order, via one backward sweep over the window (O(lag * k^2) total).
  /// No-op on a poisoned stream; if the posterior vanishes mid-flush the
  /// stream is poisoned and nothing is appended. The decoder must be
  /// Reset() before further pushes.
  void Finish(std::vector<int>* tail) {
    DHMM_CHECK(tail != nullptr);
    finished_ = true;  // further pushes would re-emit flushed frames
    if (!status_.ok()) return;
    if (frames_pushed_ == 0) return;
    const size_t newest = frames_pushed_ - 1;
    const size_t first = labels_emitted_;  // oldest frame not yet labeled
    if (first > newest) return;
    const size_t base = tail->size();
    tail->resize(base + (newest - first + 1));
    const ptrdiff_t bad =
        stream::FinishSweep(model_->a, model_->num_states(), window_,
                            Rings(), first, newest, tail->data() + base);
    if (bad >= 0) {
      status_ = Status::InvalidArgument(
          FrameError("posterior mass vanished", static_cast<size_t>(bad)));
      tail->resize(base);
      return;
    }
    labels_emitted_ = newest + 1;
  }

  /// Label emitted by the most recent Push that returned true.
  int last_label() const { return last_label_; }
  /// Frames consumed so far.
  size_t frames_pushed() const { return frames_pushed_; }
  /// Labels emitted so far (Push + Finish).
  size_t labels_emitted() const { return labels_emitted_; }
  /// log P(y_0..y_{t-1}) — bitwise equal to offline LogLikelihood on the
  /// same prefix.
  double log_likelihood() const { return log_likelihood_; }
  /// The model snapshot in use.
  const hmm::HmmModel<Obs>& model() const { return *model_; }

 private:
  static std::string FrameError(const char* what, size_t t) {
    return hmm::internal::FrameError(what, t);
  }

  // Non-owning view over the member buffers for the shared math layer.
  stream::StreamRings Rings() {
    stream::StreamRings r;
    r.btilde = btilde_.data();
    r.alpha = alpha_.data();
    r.scale = scale_.data();
    r.logb = logb_row_.data();
    r.frame_u = frame_u_.data();
    r.beta_cur = beta_cur_.data();
    r.beta_next = beta_next_.data();
    r.gamma = gamma_.data();
    return r;
  }

  void SizeBuffers() {
    const size_t k = model_->num_states();
    // The model is fixed until the next Reset(model): build the transpose
    // once here instead of revalidating the cache on every push.
    a_t_ = &transition_.Transpose(model_->a);
    window_ = stream::Window(options_.lag);
    btilde_.Resize(window_, k);
    alpha_.Resize(window_, k);
    scale_.Resize(window_);
    logb_row_.Resize(k);
    frame_u_.Resize(k);
    beta_cur_.Resize(k);
    beta_next_.Resize(k);
    gamma_.Resize(k);
  }

  void ResetStreamState() {
    frames_pushed_ = 0;
    labels_emitted_ = 0;
    last_label_ = -1;
    log_likelihood_ = 0.0;
    status_ = Status::OK();
    finished_ = false;
  }

  const StreamingDecoderOptions options_;
  std::shared_ptr<const hmm::HmmModel<Obs>> model_;
  hmm::TransitionCache transition_;  // shared machinery with the workspaces
  const linalg::Matrix* a_t_ = nullptr;  // A^T, rebuilt on Reset(model)

  size_t window_ = 1;        // lag + 1 ring rows
  linalg::Matrix btilde_;    // window x k shifted emissions
  linalg::Matrix alpha_;     // window x k scaled forward messages
  linalg::Vector scale_;     // window forward normalizers
  linalg::Vector logb_row_;  // k scratch emission row
  linalg::Vector frame_u_;   // k hoisted backward frame product
  linalg::Vector beta_cur_;  // k backward message
  linalg::Vector beta_next_;
  linalg::Vector gamma_;     // k smoothed posterior at the emitted frame

  size_t frames_pushed_ = 0;
  size_t labels_emitted_ = 0;
  int last_label_ = -1;
  double log_likelihood_ = 0.0;
  Status status_;
  bool finished_ = false;
};

}  // namespace dhmm::serve

#endif  // DHMM_SERVE_STREAMING_DECODER_H_
