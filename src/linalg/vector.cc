#include "linalg/vector.h"

#include <algorithm>
#include <cmath>

#include "linalg/kernels.h"
#include "linalg/kernels_dispatch.h"

namespace dhmm::linalg {

double Vector::sum() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

double Vector::norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double Vector::max() const {
  DHMM_CHECK(!data_.empty());
  return *std::max_element(data_.begin(), data_.end());
}

double Vector::min() const {
  DHMM_CHECK(!data_.empty());
  return *std::min_element(data_.begin(), data_.end());
}

size_t Vector::argmax() const {
  DHMM_CHECK(!data_.empty());
  return static_cast<size_t>(
      std::max_element(data_.begin(), data_.end()) - data_.begin());
}

double Vector::dot(const Vector& other) const {
  DHMM_CHECK(size() == other.size());
  return kernels::Active().dot(data_.data(), other.data_.data(), size());
}

Vector& Vector::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

Vector& Vector::operator+=(const Vector& other) {
  DHMM_CHECK(size() == other.size());
  for (size_t i = 0; i < size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& other) {
  DHMM_CHECK(size() == other.size());
  for (size_t i = 0; i < size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

void Vector::NormalizeToSimplex() {
  double s = sum();
  DHMM_CHECK_MSG(s > 0.0, "cannot normalize a non-positive-mass vector");
  for (double& v : data_) v /= s;
}

}  // namespace dhmm::linalg
