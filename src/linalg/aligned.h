// 64-byte-aligned storage for the dense containers.
//
// The micro-kernel layer (linalg/kernels.h) walks rows with restrict-
// qualified pointers and fixed 4-way accumulator streams; aligning every
// row-major buffer to a cache line lets the compiler emit aligned vector
// loads for those contiguous sweeps and keeps rows from straddling lines.
//
// The allocator deliberately routes through the plain global
// `operator new` / `operator delete` (over-allocating and aligning by hand)
// instead of the C++17 align_val_t overloads: the allocation-contract tests
// (tests/mstep_test.cc, tests/kernels_test.cc) instrument the plain global
// operator new to prove hot paths are allocation-free, and an aligned-new
// side channel would escape that accounting.
#ifndef DHMM_LINALG_ALIGNED_H_
#define DHMM_LINALG_ALIGNED_H_

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace dhmm::linalg {

/// \brief Cache-line alignment used by every linalg buffer.
inline constexpr std::size_t kBufferAlignment = 64;

/// \brief Minimal C++17 allocator returning kBufferAlignment-aligned blocks.
///
/// Layout: [raw block][pad][original pointer][aligned payload...]. The word
/// immediately before the payload stores the pointer returned by
/// `operator new`, so deallocate can recover it without any global state.
template <typename T>
class AlignedAllocator {
 public:
  using value_type = T;

  static_assert(kBufferAlignment % alignof(T) == 0,
                "payload type over-aligned for the buffer alignment");

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    const std::size_t bytes =
        n * sizeof(T) + kBufferAlignment + sizeof(void*);
    void* raw = ::operator new(bytes);
    std::uintptr_t addr =
        reinterpret_cast<std::uintptr_t>(raw) + sizeof(void*);
    addr = (addr + kBufferAlignment - 1) &
           ~static_cast<std::uintptr_t>(kBufferAlignment - 1);
    void** slot = reinterpret_cast<void**>(addr) - 1;
    *slot = raw;
    return reinterpret_cast<T*>(addr);
  }

  void deallocate(T* p, std::size_t) noexcept {
    if (p == nullptr) return;
    void** slot = reinterpret_cast<void**>(p) - 1;
    ::operator delete(*slot);
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U>;
  };

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return false;
  }
};

/// \brief Backing store of linalg::Vector / linalg::Matrix.
using AlignedBuffer = std::vector<double, AlignedAllocator<double>>;

}  // namespace dhmm::linalg

#endif  // DHMM_LINALG_ALIGNED_H_
