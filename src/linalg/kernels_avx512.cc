// AVX-512F kernel variants. Compiled with -mavx512f -mfma (per-file
// flags, see src/CMakeLists.txt); without those flags this TU is the
// nullptr stub at the bottom. Only AVX-512F instructions are used (the
// 2^n scaling widens through cvtpd_epi32 + cvtepi32_epi64 precisely to
// avoid an AVX-512DQ dependency).
//
// Documented lane-accumulation contract of the avx512 variants — the
// stride doubles but the shape mirrors the avx2 contract:
//
//  - Reductions (SumRow, Dot, MaxRow) stream two 8-lane accumulators over
//    stride-16 blocks: acc0 takes elements [16b, 16b+8), acc1 takes
//    [16b+8, 16b+16). A remaining >= 8 chunk folds into acc0. The
//    accumulators combine as acc0 (+) acc1 lanewise, then a butterfly:
//    the low and high 256-bit halves add lanewise, then (l0 + l2) +
//    (l1 + l3). The scalar tail (< 8 elements) folds into that total in
//    ascending order, one fused multiply-add per element for Dot (plain
//    add for SumRow, running strict-> max for MaxRow).
//  - Dot lanes accumulate with FMA — explicit in the source with the
//    order above, never compiler contraction (-ffp-contract=off stays).
//  - Elementwise kernels are per-element fixed sequences identical to the
//    avx2 contract: AxpyRow out[i] = fma(s, x[i], out[i]); AxpyMulRow
//    out[i] = fma(s * x[i], y[i], out[i]); MulRowScaledInto
//    out[i] = (x[i] * y[i]) * s (no FMA — bitwise equal to the scalar
//    oracle). Vector body and scalar tail apply the same per-element ops.
//  - MatVecRow iterates rows ascending over the AxpyRow contract.
//    MatVecCol / MatVecColMul / BackwardFused iterate rows ascending with
//    a *single* 8-lane accumulator per row over stride-8 blocks (one
//    chain per row; four interleaved rows hide FMA latency), the final
//    partial block loaded through a lane mask (a masked lane contributes
//    an exact 0 * 0 — no scalar tail chain), then one 8-lane butterfly
//    reduce. Rows are processed in groups of four sharing the loads of x;
//    grouping never changes a row's accumulation order. BackwardFused's
//    xi update applies the AxpyMulRow element expression under the same
//    mask, sharing each row's loads with the beta dot.
//  - ExpShiftRow is MaxRow followed by the shared PolyExp per element
//    (lanes and tail evaluate the identical operation sequence).
//
// NaN semantics of MaxRow match the scalar oracle (vmaxpd keeps the
// accumulator when the data operand is NaN). Loads/stores are
// unconditionally unaligned-tolerant; control flow depends only on
// lengths, never on buffer addresses.
#include "linalg/kernels_dispatch.h"

#if defined(__AVX512F__) && defined(__FMA__)

#include <immintrin.h>

#include <cmath>
#include <cstddef>
#include <limits>

#include "linalg/kernels_fixed_k.h"
#include "linalg/kernels_poly_exp.h"

namespace dhmm::linalg::kernels {
namespace {

inline double ReduceAdd512(__m512d v) {
  const __m256d lo = _mm512_castpd512_pd256(v);
  const __m256d hi = _mm512_extractf64x4_pd(v, 1);
  const __m256d quad = _mm256_add_pd(lo, hi);
  const __m128d pair = _mm_add_pd(_mm256_castpd256_pd128(quad),
                                  _mm256_extractf128_pd(quad, 1));
  return _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)));
}

inline double ReduceMax512(__m512d v) {
  const __m256d lo = _mm512_castpd512_pd256(v);
  const __m256d hi = _mm512_extractf64x4_pd(v, 1);
  const __m256d quad = _mm256_max_pd(lo, hi);
  const __m128d pair = _mm_max_pd(_mm256_castpd256_pd128(quad),
                                  _mm256_extractf128_pd(quad, 1));
  return _mm_cvtsd_f64(_mm_max_sd(pair, _mm_unpackhi_pd(pair, pair)));
}

double SumRowAvx512(const double* DHMM_RESTRICT x, std::size_t n) {
  __m512d acc0 = _mm512_setzero_pd();
  __m512d acc1 = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm512_add_pd(acc0, _mm512_loadu_pd(x + i));
    acc1 = _mm512_add_pd(acc1, _mm512_loadu_pd(x + i + 8));
  }
  if (i + 8 <= n) {
    acc0 = _mm512_add_pd(acc0, _mm512_loadu_pd(x + i));
    i += 8;
  }
  double s = ReduceAdd512(_mm512_add_pd(acc0, acc1));
  for (; i < n; ++i) s += x[i];
  return s;
}

double DotAvx512(const double* DHMM_RESTRICT x, const double* DHMM_RESTRICT y,
                 std::size_t n) {
  __m512d acc0 = _mm512_setzero_pd();
  __m512d acc1 = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm512_fmadd_pd(_mm512_loadu_pd(x + i), _mm512_loadu_pd(y + i),
                           acc0);
    acc1 = _mm512_fmadd_pd(_mm512_loadu_pd(x + i + 8),
                           _mm512_loadu_pd(y + i + 8), acc1);
  }
  if (i + 8 <= n) {
    acc0 = _mm512_fmadd_pd(_mm512_loadu_pd(x + i), _mm512_loadu_pd(y + i),
                           acc0);
    i += 8;
  }
  double s = ReduceAdd512(_mm512_add_pd(acc0, acc1));
  for (; i < n; ++i) s = std::fma(x[i], y[i], s);
  return s;
}

double MaxRowAvx512(const double* DHMM_RESTRICT x, std::size_t n) {
  const double kNegInf = -std::numeric_limits<double>::infinity();
  __m512d acc0 = _mm512_set1_pd(kNegInf);
  __m512d acc1 = acc0;
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    // Data operand first: a NaN element keeps the accumulator, matching
    // the scalar oracle's strict-> running max.
    acc0 = _mm512_max_pd(_mm512_loadu_pd(x + i), acc0);
    acc1 = _mm512_max_pd(_mm512_loadu_pd(x + i + 8), acc1);
  }
  if (i + 8 <= n) {
    acc0 = _mm512_max_pd(_mm512_loadu_pd(x + i), acc0);
    i += 8;
  }
  double m = ReduceMax512(_mm512_max_pd(acc0, acc1));
  for (; i < n; ++i) m = x[i] > m ? x[i] : m;
  return m;
}

void MulRowScaledIntoAvx512(const double* DHMM_RESTRICT x,
                            const double* DHMM_RESTRICT y, double s,
                            std::size_t n, double* DHMM_RESTRICT out) {
  const __m512d sv = _mm512_set1_pd(s);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d prod =
        _mm512_mul_pd(_mm512_loadu_pd(x + i), _mm512_loadu_pd(y + i));
    _mm512_storeu_pd(out + i, _mm512_mul_pd(prod, sv));
  }
  for (; i < n; ++i) out[i] = x[i] * y[i] * s;
}

void AxpyRowAvx512(double s, const double* DHMM_RESTRICT x, std::size_t n,
                   double* DHMM_RESTRICT out) {
  const __m512d sv = _mm512_set1_pd(s);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(
        out + i,
        _mm512_fmadd_pd(sv, _mm512_loadu_pd(x + i), _mm512_loadu_pd(out + i)));
  }
  for (; i < n; ++i) out[i] = std::fma(s, x[i], out[i]);
}

void AxpyMulRowAvx512(double s, const double* DHMM_RESTRICT x,
                      const double* DHMM_RESTRICT y, std::size_t n,
                      double* DHMM_RESTRICT out) {
  const __m512d sv = _mm512_set1_pd(s);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d sx = _mm512_mul_pd(sv, _mm512_loadu_pd(x + i));
    _mm512_storeu_pd(
        out + i,
        _mm512_fmadd_pd(sx, _mm512_loadu_pd(y + i), _mm512_loadu_pd(out + i)));
  }
  for (; i < n; ++i) out[i] = std::fma(s * x[i], y[i], out[i]);
}

// Rows ascending, each row the exact AxpyMulRowAvx512 body (direct call,
// so it inlines) — bitwise identical to the per-row loop the callers used
// to run, minus m indirect calls per frame. Rows with s[i] == 0 skipped.
void AxpyMulMatAvx512(const double* DHMM_RESTRICT s,
                      const double* DHMM_RESTRICT a,
                      const double* DHMM_RESTRICT y, std::size_t m,
                      std::size_t n, double* DHMM_RESTRICT out) {
  for (std::size_t i = 0; i < m; ++i) {
    if (s[i] != 0.0) AxpyMulRowAvx512(s[i], a + i * n, y, n, out + i * n);
  }
}

void MatVecRowAvx512(const double* DHMM_RESTRICT x,
                     const double* DHMM_RESTRICT a, std::size_t m,
                     std::size_t n, double* DHMM_RESTRICT out) {
  for (std::size_t j = 0; j < n; ++j) out[j] = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    AxpyRowAvx512(x[i], a + i * n, n, out);
  }
}

// Mask keeping the low n % 8 lanes (all-zero when 8 divides n). The
// mat-vec family loads its final partial block through this mask so the
// tail rides the vector accumulator (a masked lane contributes an exact
// 0 * 0) instead of a serial per-element fma chain after the reduction.
inline __mmask8 TailMask512(std::size_t n) {
  return static_cast<__mmask8>((1u << (n & 7)) - 1);
}

// Per-row dot with the MatVecCol row order: ONE 8-lane accumulator over
// stride-8 blocks, final partial block masked, one butterfly reduce
// (single chain per row so four interleaved rows hide the FMA latency).
// Identical whether the row is processed in a 4-row group or alone.
inline double MatRowDotAvx512(const double* DHMM_RESTRICT row,
                              const double* DHMM_RESTRICT x, std::size_t n) {
  __m512d acc = _mm512_setzero_pd();
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    acc = _mm512_fmadd_pd(_mm512_loadu_pd(row + j), _mm512_loadu_pd(x + j),
                          acc);
  }
  const __mmask8 tm = TailMask512(n);
  if (tm) {
    acc = _mm512_fmadd_pd(_mm512_maskz_loadu_pd(tm, row + j),
                          _mm512_maskz_loadu_pd(tm, x + j), acc);
  }
  return ReduceAdd512(acc);
}

// Shared MatVecCol/MatVecColMul body: rows ascending, in groups of four
// independent accumulator chains sharing the loads of x; grouping never
// changes a row's accumulation order, so results are independent of m.
template <bool kMulW>
inline void MatVecColBodyAvx512(const double* DHMM_RESTRICT a,
                                const double* DHMM_RESTRICT x,
                                const double* DHMM_RESTRICT w, std::size_t m,
                                std::size_t n, double* DHMM_RESTRICT out) {
  std::size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const double* DHMM_RESTRICT r0 = a + i * n;
    const double* DHMM_RESTRICT r1 = r0 + n;
    const double* DHMM_RESTRICT r2 = r1 + n;
    const double* DHMM_RESTRICT r3 = r2 + n;
    __m512d a0 = _mm512_setzero_pd();
    __m512d a1 = _mm512_setzero_pd();
    __m512d a2 = _mm512_setzero_pd();
    __m512d a3 = _mm512_setzero_pd();
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      const __m512d xv = _mm512_loadu_pd(x + j);
      a0 = _mm512_fmadd_pd(_mm512_loadu_pd(r0 + j), xv, a0);
      a1 = _mm512_fmadd_pd(_mm512_loadu_pd(r1 + j), xv, a1);
      a2 = _mm512_fmadd_pd(_mm512_loadu_pd(r2 + j), xv, a2);
      a3 = _mm512_fmadd_pd(_mm512_loadu_pd(r3 + j), xv, a3);
    }
    const __mmask8 tm = TailMask512(n);
    if (tm) {
      const __m512d xv = _mm512_maskz_loadu_pd(tm, x + j);
      a0 = _mm512_fmadd_pd(_mm512_maskz_loadu_pd(tm, r0 + j), xv, a0);
      a1 = _mm512_fmadd_pd(_mm512_maskz_loadu_pd(tm, r1 + j), xv, a1);
      a2 = _mm512_fmadd_pd(_mm512_maskz_loadu_pd(tm, r2 + j), xv, a2);
      a3 = _mm512_fmadd_pd(_mm512_maskz_loadu_pd(tm, r3 + j), xv, a3);
    }
    const double s0 = ReduceAdd512(a0);
    const double s1 = ReduceAdd512(a1);
    const double s2 = ReduceAdd512(a2);
    const double s3 = ReduceAdd512(a3);
    if (kMulW) {
      out[i] = s0 * w[i];
      out[i + 1] = s1 * w[i + 1];
      out[i + 2] = s2 * w[i + 2];
      out[i + 3] = s3 * w[i + 3];
    } else {
      out[i] = s0;
      out[i + 1] = s1;
      out[i + 2] = s2;
      out[i + 3] = s3;
    }
  }
  for (; i < m; ++i) {
    const double s = MatRowDotAvx512(a + i * n, x, n);
    out[i] = kMulW ? s * w[i] : s;
  }
}

void MatVecColAvx512(const double* DHMM_RESTRICT a,
                     const double* DHMM_RESTRICT x, std::size_t m,
                     std::size_t n, double* DHMM_RESTRICT out) {
  MatVecColBodyAvx512<false>(a, x, nullptr, m, n, out);
}

void MatVecColMulAvx512(const double* DHMM_RESTRICT a,
                        const double* DHMM_RESTRICT x,
                        const double* DHMM_RESTRICT w, std::size_t m,
                        std::size_t n, double* DHMM_RESTRICT out) {
  MatVecColBodyAvx512<true>(a, x, w, m, n, out);
}

// One pass over A for the backward frame pair (see kernels.h): each row's
// beta dot accumulates exactly as MatRowDotAvx512 (single accumulator,
// stride-8, masked final block) and each xi update applies the
// AxpyMulRowAvx512 element expression with the same masked final block,
// sharing the loads of a(i,.) between the two.
void BackwardFusedAvx512(const double* DHMM_RESTRICT a,
                         const double* DHMM_RESTRICT u,
                         const double* DHMM_RESTRICT s, std::size_t m,
                         std::size_t n, double* DHMM_RESTRICT beta_out,
                         double* DHMM_RESTRICT xi) {
  const __mmask8 tm = TailMask512(n);
  for (std::size_t i = 0; i < m; ++i) {
    const double* DHMM_RESTRICT row = a + i * n;
    const double si = s[i];
    if (si == 0.0) {
      beta_out[i] = MatRowDotAvx512(row, u, n);
      continue;
    }
    double* DHMM_RESTRICT xrow = xi + i * n;
    const __m512d sv = _mm512_set1_pd(si);
    __m512d acc = _mm512_setzero_pd();
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      const __m512d av = _mm512_loadu_pd(row + j);
      const __m512d uv = _mm512_loadu_pd(u + j);
      acc = _mm512_fmadd_pd(av, uv, acc);
      const __m512d sx = _mm512_mul_pd(sv, av);
      _mm512_storeu_pd(xrow + j,
                       _mm512_fmadd_pd(sx, uv, _mm512_loadu_pd(xrow + j)));
    }
    if (tm) {
      const __m512d av = _mm512_maskz_loadu_pd(tm, row + j);
      const __m512d uv = _mm512_maskz_loadu_pd(tm, u + j);
      acc = _mm512_fmadd_pd(av, uv, acc);
      const __m512d sx = _mm512_mul_pd(sv, av);
      _mm512_mask_storeu_pd(
          xrow + j, tm,
          _mm512_fmadd_pd(sx, uv, _mm512_maskz_loadu_pd(tm, xrow + j)));
    }
    beta_out[i] = ReduceAdd512(acc);
  }
}

// 8-lane PolyExp: vector evaluation of the exact operation sequence in
// kernels_poly_exp.h, so a lane is bitwise equal to PolyExp of the same
// input.
inline __m512d PolyExpVec(__m512d y) {
  const __m512d uflow = _mm512_set1_pd(kPolyExpUnderflow);
  const __mmask8 keep = _mm512_cmp_pd_mask(y, uflow, _CMP_NLT_UQ);
  const __mmask8 unord = _mm512_cmp_pd_mask(y, y, _CMP_UNORD_Q);
  const __m512d yc = _mm512_max_pd(y, uflow);
  const __m512d nf = _mm512_roundscale_pd(
      _mm512_add_pd(_mm512_mul_pd(yc, _mm512_set1_pd(kPolyExpLog2e)),
                    _mm512_set1_pd(0.5)),
      _MM_FROUND_TO_NEG_INF | _MM_FROUND_NO_EXC);
  __m512d r = _mm512_sub_pd(yc, _mm512_mul_pd(nf, _mm512_set1_pd(kPolyExpC1)));
  r = _mm512_sub_pd(r, _mm512_mul_pd(nf, _mm512_set1_pd(kPolyExpC2)));
  const __m512d r2 = _mm512_mul_pd(r, r);
  __m512d p = _mm512_add_pd(_mm512_mul_pd(_mm512_set1_pd(kPolyExpP0), r2),
                            _mm512_set1_pd(kPolyExpP1));
  p = _mm512_add_pd(_mm512_mul_pd(p, r2), _mm512_set1_pd(kPolyExpP2));
  p = _mm512_mul_pd(r, p);
  __m512d q = _mm512_add_pd(_mm512_mul_pd(_mm512_set1_pd(kPolyExpQ0), r2),
                            _mm512_set1_pd(kPolyExpQ1));
  q = _mm512_add_pd(_mm512_mul_pd(q, r2), _mm512_set1_pd(kPolyExpQ2));
  q = _mm512_add_pd(_mm512_mul_pd(q, r2), _mm512_set1_pd(kPolyExpQ3));
  const __m512d e = _mm512_add_pd(
      _mm512_set1_pd(1.0),
      _mm512_div_pd(_mm512_mul_pd(_mm512_set1_pd(2.0), p),
                    _mm512_sub_pd(q, p)));
  // 2^n through the exponent field: nf is integral in [-1021, 1], so the
  // int32 path is exact and needs only AVX-512F.
  const __m256i n32 = _mm512_cvtpd_epi32(nf);
  const __m512i n64 = _mm512_cvtepi32_epi64(n32);
  const __m512i bits =
      _mm512_slli_epi64(_mm512_add_epi64(n64, _mm512_set1_epi64(1023)), 52);
  const __m512d pow2 = _mm512_castsi512_pd(bits);
  // Underflowed lanes flush to exactly 0.0; NaN lanes propagate their
  // input NaN, exactly as scalar PolyExp.
  __m512d res = _mm512_maskz_mul_pd(keep, e, pow2);
  res = _mm512_mask_mov_pd(res, unord, y);
  return res;
}

double ExpShiftRowAvx512(const double* DHMM_RESTRICT x, std::size_t n,
                         double* DHMM_RESTRICT out) {
  const double m = MaxRowAvx512(x, n);
  if (m == -std::numeric_limits<double>::infinity()) return m;
  const __m512d mv = _mm512_set1_pd(m);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(out + i,
                     PolyExpVec(_mm512_sub_pd(_mm512_loadu_pd(x + i), mv)));
  }
  for (; i < n; ++i) out[i] = PolyExp(x[i] - m);
  return m;
}

// Constant-initialized (no dynamic initializers): dispatch resolution is
// safe even from another TU's static initializer.
constexpr KernelTable kAvx512Generic = {
    &SumRowAvx512,
    &DotAvx512,
    &MaxRowAvx512,
    &MulRowScaledIntoAvx512,
    &AxpyRowAvx512,
    &AxpyMulRowAvx512,
    &AxpyMulMatAvx512,
    &MatVecRowAvx512,
    &MatVecColAvx512,
    &MatVecColMulAvx512,
    &BackwardFusedAvx512,
    &ExpShiftRowAvx512,
    Isa::kAvx512,
    "avx512",
    0};

// Fixed-k tables start from the fully unrolled Tree instantiations, then —
// once K fills at least one 8-lane vector — take this TU's vector kernels
// for the row-sweep ops, where a whole emission/backward row is streamed
// (the horizontal reductions sum/dot/max stay Tree: at k <= 8 their
// log-depth unrolled form beats a vector loop plus lane reduction). The
// choice is constexpr per K, so each (ISA, k) cell is still one fixed
// variant resolved at startup.
template <std::size_t K>
constexpr KernelTable MakeFixed() {
  KernelTable t =
      fixed_k::MakeFixedTable<K>(Isa::kAvx512, fixed_k::kAvx512FixedNames[K]);
  if (K >= 8) {
    t.mul_row_scaled_into = &MulRowScaledIntoAvx512;
    t.axpy_mul_row = &AxpyMulRowAvx512;
    t.axpy_mul_mat = &AxpyMulMatAvx512;
    t.mat_vec_col = &MatVecColAvx512;
    t.mat_vec_col_mul = &MatVecColMulAvx512;
    t.backward_fused = &BackwardFusedAvx512;
    t.exp_shift_row = &ExpShiftRowAvx512;
  }
  return t;
}

template <std::size_t K>
constexpr KernelTable kFixed = MakeFixed<K>();

constexpr internal::IsaTables kTables = {
    &kAvx512Generic,
    {&kAvx512Generic, &kFixed<1>, &kFixed<2>, &kFixed<3>, &kFixed<4>,
     &kFixed<5>, &kFixed<6>, &kFixed<7>, &kFixed<8>}};

}  // namespace

namespace internal {
const IsaTables* Avx512Tables() { return &kTables; }
}  // namespace internal

}  // namespace dhmm::linalg::kernels

#else  // !(__AVX512F__ && __FMA__)

namespace dhmm::linalg::kernels::internal {
const IsaTables* Avx512Tables() { return nullptr; }
}  // namespace dhmm::linalg::kernels::internal

#endif
