// LU decomposition with partial pivoting: determinant, inverse, solve.
#ifndef DHMM_LINALG_LU_H_
#define DHMM_LINALG_LU_H_

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace dhmm::linalg {

/// \brief LU factorization PA = LU with partial (row) pivoting.
///
/// The diversity prior needs log|det K| and K^{-1} of small (k x k, k <= ~50)
/// kernel matrices every gradient step; this class provides both with
/// numerically stable pivoting. Hot paths that factorize every line-search
/// probe reuse one default-constructed instance via FactorizeInto and the
/// *Into solve overloads, which write into caller-owned storage and perform
/// no heap allocation once the grow-only factor buffers have reached their
/// high-water size.
class LuDecomposition {
 public:
  /// Empty decomposition; call FactorizeInto before any query.
  LuDecomposition() = default;

  /// Factorizes a square matrix. Singular inputs are accepted — det() will be
  /// zero / log_abs_det() will be -inf and IsSingular() true.
  explicit LuDecomposition(const Matrix& a) { FactorizeInto(a); }

  /// \brief Refactorizes this decomposition in place for a new matrix.
  ///
  /// The packed-factor matrix and pivot vector are Resize()d rather than
  /// reallocated, so repeated factorizations at a fixed (or shrinking) size
  /// are allocation-free.
  void FactorizeInto(const Matrix& a);

  /// True if a zero (or subnormal) pivot was encountered.
  bool IsSingular() const { return singular_; }

  /// Determinant (including pivot sign).
  double Determinant() const;

  /// log |det| ; -inf for singular input.
  double LogAbsDeterminant() const;

  /// Sign of the determinant: -1, 0, or +1.
  int DeterminantSign() const;

  /// Solves A x = b. Precondition: !IsSingular().
  Vector Solve(const Vector& b) const;

  /// Solves A X = B column-by-column. Precondition: !IsSingular().
  Matrix Solve(const Matrix& b) const;

  /// A^{-1}. Precondition: !IsSingular().
  Matrix Inverse() const;

  /// Solves A x = b into caller-owned x (Resize()d; b and x must be
  /// distinct). Precondition: !IsSingular().
  void SolveInto(const Vector& b, Vector* x) const;

  /// Solves A X = B into caller-owned x (Resize()d; b and x must be
  /// distinct). Precondition: !IsSingular().
  void SolveInto(const Matrix& b, Matrix* x) const;

  /// Writes A^{-1} into caller-owned out. Precondition: !IsSingular().
  void InverseInto(Matrix* out) const;

  size_t size() const { return lu_.rows(); }

 private:
  Matrix lu_;               // packed L (unit diag, below) and U (on/above diag)
  std::vector<size_t> piv_; // row permutation
  int pivot_sign_ = 1;
  bool singular_ = false;
};

/// Convenience: determinant of a square matrix.
double Determinant(const Matrix& a);

/// Convenience: log |det A| (−inf when singular).
double LogAbsDeterminant(const Matrix& a);

/// Convenience: inverse; DHMM_CHECK-fails on singular input.
Matrix Inverse(const Matrix& a);

}  // namespace dhmm::linalg

#endif  // DHMM_LINALG_LU_H_
