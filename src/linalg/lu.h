// LU decomposition with partial pivoting: determinant, inverse, solve.
#ifndef DHMM_LINALG_LU_H_
#define DHMM_LINALG_LU_H_

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace dhmm::linalg {

/// \brief LU factorization PA = LU with partial (row) pivoting.
///
/// The diversity prior needs log|det K| and K^{-1} of small (k x k, k <= ~50)
/// kernel matrices every gradient step; this class provides both with
/// numerically stable pivoting.
class LuDecomposition {
 public:
  /// Factorizes a square matrix. Singular inputs are accepted — det() will be
  /// zero / log_abs_det() will be -inf and IsSingular() true.
  explicit LuDecomposition(const Matrix& a);

  /// True if a zero (or subnormal) pivot was encountered.
  bool IsSingular() const { return singular_; }

  /// Determinant (including pivot sign).
  double Determinant() const;

  /// log |det| ; -inf for singular input.
  double LogAbsDeterminant() const;

  /// Sign of the determinant: -1, 0, or +1.
  int DeterminantSign() const;

  /// Solves A x = b. Precondition: !IsSingular().
  Vector Solve(const Vector& b) const;

  /// Solves A X = B column-by-column. Precondition: !IsSingular().
  Matrix Solve(const Matrix& b) const;

  /// A^{-1}. Precondition: !IsSingular().
  Matrix Inverse() const;

  size_t size() const { return lu_.rows(); }

 private:
  Matrix lu_;               // packed L (unit diag, below) and U (on/above diag)
  std::vector<size_t> piv_; // row permutation
  int pivot_sign_;
  bool singular_;
};

/// Convenience: determinant of a square matrix.
double Determinant(const Matrix& a);

/// Convenience: log |det A| (−inf when singular).
double LogAbsDeterminant(const Matrix& a);

/// Convenience: inverse; DHMM_CHECK-fails on singular input.
Matrix Inverse(const Matrix& a);

}  // namespace dhmm::linalg

#endif  // DHMM_LINALG_LU_H_
