#include "linalg/cholesky.h"

#include <cmath>

namespace dhmm::linalg {

CholeskyDecomposition::CholeskyDecomposition(const Matrix& a)
    : l_(a.rows(), a.cols()), ok_(true) {
  DHMM_CHECK_MSG(a.rows() == a.cols(), "Cholesky requires a square matrix");
  const size_t n = a.rows();
  for (size_t i = 0; i < n && ok_; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double s = a(i, j);
      for (size_t k = 0; k < j; ++k) s -= l_(i, k) * l_(j, k);
      if (i == j) {
        if (s <= 0.0 || !std::isfinite(s)) {
          ok_ = false;
          break;
        }
        l_(i, j) = std::sqrt(s);
      } else {
        l_(i, j) = s / l_(j, j);
      }
    }
  }
}

double CholeskyDecomposition::LogDeterminant() const {
  DHMM_CHECK(ok_);
  double s = 0.0;
  for (size_t i = 0; i < l_.rows(); ++i) s += std::log(l_(i, i));
  return 2.0 * s;
}

Vector CholeskyDecomposition::Solve(const Vector& b) const {
  DHMM_CHECK(ok_);
  DHMM_CHECK(b.size() == l_.rows());
  const size_t n = l_.rows();
  // Forward: L y = b.
  Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (size_t j = 0; j < i; ++j) s -= l_(i, j) * y[j];
    y[i] = s / l_(i, i);
  }
  // Backward: L^T x = y.
  Vector x(n);
  for (size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (size_t j = ii + 1; j < n; ++j) s -= l_(j, ii) * x[j];
    x[ii] = s / l_(ii, ii);
  }
  return x;
}

}  // namespace dhmm::linalg
