#include "linalg/cholesky.h"

#include <cmath>

namespace dhmm::linalg {

bool CholeskyDecomposition::FactorizeInto(const Matrix& a) {
  DHMM_CHECK_MSG(a.rows() == a.cols(), "Cholesky requires a square matrix");
  const size_t n = a.rows();
  l_.Resize(n, n);
  inv_diag_.Resize(n);
  ok_ = true;
  for (size_t i = 0; i < n && ok_; ++i) {
    double* li = l_.row_data(i);
    for (size_t j = 0; j <= i; ++j) {
      const double* lj = l_.row_data(j);
      // Dot product of finalized row prefixes in four fixed accumulator
      // streams (deterministic order, pipelines without reassociation) —
      // this inner loop is most of the factorization at the kernel sizes
      // the M-step factorizes per line-search probe.
      double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
      size_t k = 0;
      for (; k + 4 <= j; k += 4) {
        s0 += li[k] * lj[k];
        s1 += li[k + 1] * lj[k + 1];
        s2 += li[k + 2] * lj[k + 2];
        s3 += li[k + 3] * lj[k + 3];
      }
      double s = a(i, j) - ((s0 + s1) + (s2 + s3));
      for (; k < j; ++k) s -= li[k] * lj[k];
      if (i == j) {
        if (s <= 0.0 || !std::isfinite(s)) {
          ok_ = false;
          break;
        }
        li[j] = std::sqrt(s);
        inv_diag_[i] = 1.0 / li[j];
      } else {
        li[j] = s * inv_diag_[j];
      }
    }
    // Keep the upper triangle zero so L() is a well-formed lower factor even
    // though Resize() reuses dirty storage.
    for (size_t j = i + 1; j < n; ++j) li[j] = 0.0;
  }
  return ok_;
}

double CholeskyDecomposition::LogDeterminant() const {
  DHMM_CHECK(ok_);
  double s = 0.0;
  for (size_t i = 0; i < l_.rows(); ++i) s += std::log(l_(i, i));
  return 2.0 * s;
}

Vector CholeskyDecomposition::Solve(const Vector& b) const {
  DHMM_CHECK(ok_);
  DHMM_CHECK(b.size() == l_.rows());
  const size_t n = l_.rows();
  // Forward: L y = b.
  Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (size_t j = 0; j < i; ++j) s -= l_(i, j) * y[j];
    y[i] = s / l_(i, i);
  }
  // Backward: L^T x = y.
  Vector x(n);
  for (size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (size_t j = ii + 1; j < n; ++j) s -= l_(j, ii) * x[j];
    x[ii] = s / l_(ii, ii);
  }
  return x;
}

void CholeskyDecomposition::SolveInto(const Matrix& b, Matrix* x) const {
  DHMM_CHECK(ok_);
  DHMM_CHECK(x != nullptr && x != &b);
  DHMM_CHECK(b.rows() == l_.rows());
  const size_t n = l_.rows();
  const size_t m = b.cols();
  x->Resize(n, m);
  // Forward: L Y = B, all right-hand sides together, inner loops along
  // contiguous rows. Each row is scaled by a precomputed reciprocal pivot —
  // one divide per row instead of one per element (results differ from the
  // Vector overload by at most an ulp).
  for (size_t i = 0; i < n; ++i) {
    const double* src = b.row_data(i);
    double* xi = x->row_data(i);
    for (size_t c = 0; c < m; ++c) xi[c] = src[c];
    for (size_t j = 0; j < i; ++j) {
      const double f = l_(i, j);
      const double* xj = x->row_data(j);
      for (size_t c = 0; c < m; ++c) xi[c] -= f * xj[c];
    }
    const double inv_d = inv_diag_[i];
    for (size_t c = 0; c < m; ++c) xi[c] *= inv_d;
  }
  // Backward: L^T X = Y.
  for (size_t ii = n; ii-- > 0;) {
    double* xi = x->row_data(ii);
    for (size_t j = ii + 1; j < n; ++j) {
      const double f = l_(j, ii);
      const double* xj = x->row_data(j);
      for (size_t c = 0; c < m; ++c) xi[c] -= f * xj[c];
    }
    const double inv_d = inv_diag_[ii];
    for (size_t c = 0; c < m; ++c) xi[c] *= inv_d;
  }
}

}  // namespace dhmm::linalg
