// Startup resolution of the kernel dispatch tables (see the header for
// the contract). The scalar table defined here points at the verbatim
// kernels.cc oracle — under Isa::kScalar every k-class resolves to it.
#include "linalg/kernels_dispatch.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "util/check.h"

namespace dhmm::linalg::kernels {
namespace {

// The scalar "variant" is the oracle itself: same function pointers for
// every k-class, so forcing DHMM_KERNEL_ISA=scalar reproduces the
// pre-dispatch code paths exactly.
constexpr KernelTable kScalarTable = {&SumRow,
                                      &Dot,
                                      &MaxRow,
                                      &MulRowScaledInto,
                                      &AxpyRow,
                                      &AxpyMulRow,
                                      &AxpyMulMat,
                                      &MatVecRow,
                                      &MatVecCol,
                                      &MatVecColMul,
                                      &BackwardFused,
                                      &ExpShiftRow,
                                      Isa::kScalar,
                                      "scalar",
                                      0};

constexpr internal::IsaTables kScalarTables = {
    &kScalarTable,
    {&kScalarTable, &kScalarTable, &kScalarTable, &kScalarTable,
     &kScalarTable, &kScalarTable, &kScalarTable, &kScalarTable,
     &kScalarTable}};

bool CpuHasAvx2() {
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool CpuHasAvx512() {
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
  return __builtin_cpu_supports("avx512f");
#else
  return false;
#endif
}

const internal::IsaTables* TablesOrNull(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return &internal::ScalarTables();
    case Isa::kAvx2:
      return internal::Avx2Tables();
    case Isa::kAvx512:
      return internal::Avx512Tables();
  }
  return nullptr;
}

bool CpuSupports(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
      return CpuHasAvx2();
    case Isa::kAvx512:
      return CpuHasAvx512();
  }
  return false;
}

/// Parses a DHMM_KERNEL_ISA value; returns false on unrecognized input.
bool ParseIsaName(const char* s, Isa* out) {
  if (std::strcmp(s, "scalar") == 0) {
    *out = Isa::kScalar;
    return true;
  }
  if (std::strcmp(s, "avx2") == 0) {
    *out = Isa::kAvx2;
    return true;
  }
  if (std::strcmp(s, "avx512") == 0) {
    *out = Isa::kAvx512;
    return true;
  }
  return false;
}

/// StartupSummary override labels after a ForceIsaForTestOnly swap,
/// indexed by Isa. Static storage so the atomic const char* below never
/// points at transient memory.
constexpr const char* kForcedNames[] = {"forced:scalar", "forced:avx2",
                                        "forced:avx512"};

Isa DetectBest() {
  if (TablesOrNull(Isa::kAvx512) != nullptr && CpuHasAvx512()) {
    return Isa::kAvx512;
  }
  if (TablesOrNull(Isa::kAvx2) != nullptr && CpuHasAvx2()) {
    return Isa::kAvx2;
  }
  return Isa::kScalar;
}

// isa/tables/override_s are atomic only for ForceIsaForTestOnly: the
// test-only swap must not be a data race against concurrent Active()/ForK()
// readers. Production never writes after the constructor, so the loads cost
// nothing on x86. A reader racing a swap may see fields from both states;
// each field is individually valid, and bitwise contracts only ever compare
// runs with no swap in flight (the documented single-threaded-swap rule).
struct Resolution {
  std::atomic<const internal::IsaTables*> tables{nullptr};
  std::atomic<Isa> isa{Isa::kScalar};
  std::atomic<const char*> override_s{"none"};  ///< "none" | accepted env
                                                ///< value | "forced:<isa>"
  Isa detected = Isa::kScalar;  ///< best compiled-and-supported ISA

  Resolution() {
    detected = DetectBest();
    Isa chosen = detected;
    const char* ov = "none";
    if (const char* env = std::getenv("DHMM_KERNEL_ISA")) {
      Isa wanted;
      // An unrecognized value is always a bug in the caller's environment
      // (a typo would silently re-select the vector path while the caller
      // believes it pinned scalar), so it fails hard. A recognized but
      // unavailable ISA stays a warning fallback: the same script must run
      // on hosts and builds that lack the ISA.
      if (!ParseIsaName(env, &wanted)) {
        std::fprintf(stderr,
                     "[dhmm] fatal: DHMM_KERNEL_ISA=%s unrecognized "
                     "(scalar|avx2|avx512)\n",
                     env);
        std::abort();
      }
      if (!IsaAvailable(wanted)) {
        std::fprintf(stderr,
                     "[dhmm] DHMM_KERNEL_ISA=%s not available on this "
                     "host/build; using %s\n",
                     env, IsaName(detected));
      } else {
        chosen = wanted;
        ov = IsaName(wanted);
      }
    }
    const internal::IsaTables* t = TablesOrNull(chosen);
    DHMM_CHECK(t != nullptr);
    isa.store(chosen, std::memory_order_relaxed);
    override_s.store(ov, std::memory_order_relaxed);
    tables.store(t, std::memory_order_release);
  }
};

/// One-shot resolution state. Function-local static: thread-safe, runs on
/// first kernel use, and — because every table it selects from is
/// constant-initialized — safe even when that first use happens inside
/// another TU's static initializer.
Resolution& GetResolution() {
  static Resolution r;
  return r;
}

}  // namespace

const KernelTable& Active() {
  return *GetResolution().tables.load(std::memory_order_acquire)->generic;
}

const KernelTable& ForK(std::size_t k) {
  const internal::IsaTables* t =
      GetResolution().tables.load(std::memory_order_acquire);
  return k <= kMaxFixedK ? *t->by_k[k] : *t->generic;
}

Isa ActiveIsa() { return GetResolution().isa.load(std::memory_order_acquire); }

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
  }
  return "unknown";
}

const char* ActiveIsaName() { return IsaName(ActiveIsa()); }

std::vector<Isa> CompiledIsas() {
  std::vector<Isa> out = {Isa::kScalar};
  if (TablesOrNull(Isa::kAvx2) != nullptr) out.push_back(Isa::kAvx2);
  if (TablesOrNull(Isa::kAvx512) != nullptr) out.push_back(Isa::kAvx512);
  return out;
}

bool IsaAvailable(Isa isa) {
  return TablesOrNull(isa) != nullptr && CpuSupports(isa);
}

const KernelTable& TableFor(Isa isa) {
  const internal::IsaTables* t = TablesOrNull(isa);
  DHMM_CHECK_MSG(t != nullptr, "ISA variant not compiled into this binary");
  return *t->generic;
}

const KernelTable& TableFor(Isa isa, std::size_t k) {
  const internal::IsaTables* t = TablesOrNull(isa);
  DHMM_CHECK_MSG(t != nullptr, "ISA variant not compiled into this binary");
  return k <= kMaxFixedK ? *t->by_k[k] : *t->generic;
}

std::string StartupSummary() {
  const Resolution& r = GetResolution();
  std::string s = "isa=";
  s += IsaName(r.isa.load(std::memory_order_acquire));
  s += " detected=";
  s += IsaName(r.detected);
  s += " override=";
  s += r.override_s.load(std::memory_order_acquire);
  s += " fixed_k<=";
  s += std::to_string(kMaxFixedK);
  return s;
}

namespace internal {

const IsaTables& ScalarTables() { return kScalarTables; }

bool ForceIsaForTestOnly(Isa isa) {
  if (!IsaAvailable(isa)) return false;
  Resolution& r = GetResolution();
  // "forced:<isa>" (even when restoring the startup choice) keeps
  // StartupSummary() honest: a summary read after any swap is attributable
  // to the swap, never mistaken for the startup resolution.
  r.override_s.store(kForcedNames[static_cast<int>(isa)],
                     std::memory_order_relaxed);
  r.isa.store(isa, std::memory_order_relaxed);
  r.tables.store(TablesOrNull(isa), std::memory_order_release);
  return true;
}

}  // namespace internal

}  // namespace dhmm::linalg::kernels
