// Startup resolution of the kernel dispatch tables (see the header for
// the contract). The scalar table defined here points at the verbatim
// kernels.cc oracle — under Isa::kScalar every k-class resolves to it.
#include "linalg/kernels_dispatch.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "util/check.h"

namespace dhmm::linalg::kernels {
namespace {

// The scalar "variant" is the oracle itself: same function pointers for
// every k-class, so forcing DHMM_KERNEL_ISA=scalar reproduces the
// pre-dispatch code paths exactly.
constexpr KernelTable kScalarTable = {&SumRow,
                                      &Dot,
                                      &MaxRow,
                                      &MulRowScaledInto,
                                      &AxpyRow,
                                      &AxpyMulRow,
                                      &AxpyMulMat,
                                      &MatVecRow,
                                      &MatVecCol,
                                      &MatVecColMul,
                                      &BackwardFused,
                                      &ExpShiftRow,
                                      Isa::kScalar,
                                      "scalar",
                                      0};

constexpr internal::IsaTables kScalarTables = {
    &kScalarTable,
    {&kScalarTable, &kScalarTable, &kScalarTable, &kScalarTable,
     &kScalarTable, &kScalarTable, &kScalarTable, &kScalarTable,
     &kScalarTable}};

bool CpuHasAvx2() {
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool CpuHasAvx512() {
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
  return __builtin_cpu_supports("avx512f");
#else
  return false;
#endif
}

const internal::IsaTables* TablesOrNull(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return &internal::ScalarTables();
    case Isa::kAvx2:
      return internal::Avx2Tables();
    case Isa::kAvx512:
      return internal::Avx512Tables();
  }
  return nullptr;
}

bool CpuSupports(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
      return CpuHasAvx2();
    case Isa::kAvx512:
      return CpuHasAvx512();
  }
  return false;
}

/// Parses a DHMM_KERNEL_ISA value; returns false on unrecognized input.
bool ParseIsaName(const char* s, Isa* out) {
  if (std::strcmp(s, "scalar") == 0) {
    *out = Isa::kScalar;
    return true;
  }
  if (std::strcmp(s, "avx2") == 0) {
    *out = Isa::kAvx2;
    return true;
  }
  if (std::strcmp(s, "avx512") == 0) {
    *out = Isa::kAvx512;
    return true;
  }
  return false;
}

struct Resolution {
  const internal::IsaTables* tables;
  Isa isa;
  Isa detected;            ///< best compiled-and-supported ISA
  const char* override_s;  ///< "none" | the accepted env value
};

Isa DetectBest() {
  if (TablesOrNull(Isa::kAvx512) != nullptr && CpuHasAvx512()) {
    return Isa::kAvx512;
  }
  if (TablesOrNull(Isa::kAvx2) != nullptr && CpuHasAvx2()) {
    return Isa::kAvx2;
  }
  return Isa::kScalar;
}

Resolution Resolve() {
  Resolution r;
  r.detected = DetectBest();
  r.isa = r.detected;
  r.override_s = "none";
  if (const char* env = std::getenv("DHMM_KERNEL_ISA")) {
    Isa wanted;
    if (!ParseIsaName(env, &wanted)) {
      std::fprintf(stderr,
                   "[dhmm] DHMM_KERNEL_ISA=%s unrecognized "
                   "(scalar|avx2|avx512); using %s\n",
                   env, IsaName(r.detected));
    } else if (!IsaAvailable(wanted)) {
      std::fprintf(stderr,
                   "[dhmm] DHMM_KERNEL_ISA=%s not available on this "
                   "host/build; using %s\n",
                   env, IsaName(r.detected));
    } else {
      r.isa = wanted;
      r.override_s = IsaName(wanted);
    }
  }
  r.tables = TablesOrNull(r.isa);
  DHMM_CHECK(r.tables != nullptr);
  return r;
}

/// One-shot resolution state. Function-local static: thread-safe, runs on
/// first kernel use, and — because every table it selects from is
/// constant-initialized — safe even when that first use happens inside
/// another TU's static initializer.
Resolution& GetResolution() {
  static Resolution r = Resolve();
  return r;
}

}  // namespace

const KernelTable& Active() { return *GetResolution().tables->generic; }

const KernelTable& ForK(std::size_t k) {
  const internal::IsaTables* t = GetResolution().tables;
  return k <= kMaxFixedK ? *t->by_k[k] : *t->generic;
}

Isa ActiveIsa() { return GetResolution().isa; }

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
  }
  return "unknown";
}

const char* ActiveIsaName() { return IsaName(ActiveIsa()); }

std::vector<Isa> CompiledIsas() {
  std::vector<Isa> out = {Isa::kScalar};
  if (TablesOrNull(Isa::kAvx2) != nullptr) out.push_back(Isa::kAvx2);
  if (TablesOrNull(Isa::kAvx512) != nullptr) out.push_back(Isa::kAvx512);
  return out;
}

bool IsaAvailable(Isa isa) {
  return TablesOrNull(isa) != nullptr && CpuSupports(isa);
}

const KernelTable& TableFor(Isa isa) {
  const internal::IsaTables* t = TablesOrNull(isa);
  DHMM_CHECK_MSG(t != nullptr, "ISA variant not compiled into this binary");
  return *t->generic;
}

const KernelTable& TableFor(Isa isa, std::size_t k) {
  const internal::IsaTables* t = TablesOrNull(isa);
  DHMM_CHECK_MSG(t != nullptr, "ISA variant not compiled into this binary");
  return k <= kMaxFixedK ? *t->by_k[k] : *t->generic;
}

std::string StartupSummary() {
  const Resolution& r = GetResolution();
  std::string s = "isa=";
  s += IsaName(r.isa);
  s += " detected=";
  s += IsaName(r.detected);
  s += " override=";
  s += r.override_s;
  s += " fixed_k<=";
  s += std::to_string(kMaxFixedK);
  return s;
}

void LogStartupOnce() {
  static std::once_flag flag;
  std::call_once(flag, [] {
    std::fprintf(stderr, "[dhmm] kernel dispatch: %s\n",
                 StartupSummary().c_str());
  });
}

namespace internal {

const IsaTables& ScalarTables() { return kScalarTables; }

bool ForceIsaForTestOnly(Isa isa) {
  if (!IsaAvailable(isa)) return false;
  Resolution& r = GetResolution();
  r.isa = isa;
  r.tables = TablesOrNull(isa);
  return true;
}

}  // namespace internal

}  // namespace dhmm::linalg::kernels
