#include "linalg/lu.h"

#include <cmath>
#include <limits>

#include "util/check.h"

namespace dhmm::linalg {

void LuDecomposition::FactorizeInto(const Matrix& a) {
  DHMM_CHECK_MSG(a.rows() == a.cols(), "LU requires a square matrix");
  lu_ = a;  // copy-assign reuses the packed-factor storage when it fits
  piv_.resize(a.rows());
  pivot_sign_ = 1;
  singular_ = false;
  const size_t n = lu_.rows();
  for (size_t i = 0; i < n; ++i) piv_[i] = i;

  for (size_t col = 0; col < n; ++col) {
    // Find pivot.
    size_t pivot = col;
    double best = std::fabs(lu_(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      double v = std::fabs(lu_(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) std::swap(lu_(pivot, c), lu_(col, c));
      std::swap(piv_[pivot], piv_[col]);
      pivot_sign_ = -pivot_sign_;
    }
    double d = lu_(col, col);
    if (d == 0.0 || !std::isfinite(d)) {
      singular_ = true;
      continue;
    }
    for (size_t r = col + 1; r < n; ++r) {
      double f = lu_(r, col) / d;
      lu_(r, col) = f;
      if (f == 0.0) continue;
      for (size_t c = col + 1; c < n; ++c) lu_(r, c) -= f * lu_(col, c);
    }
  }
}

double LuDecomposition::Determinant() const {
  if (singular_) return 0.0;
  double det = pivot_sign_;
  for (size_t i = 0; i < size(); ++i) det *= lu_(i, i);
  return det;
}

double LuDecomposition::LogAbsDeterminant() const {
  if (singular_) return -std::numeric_limits<double>::infinity();
  double s = 0.0;
  for (size_t i = 0; i < size(); ++i) s += std::log(std::fabs(lu_(i, i)));
  return s;
}

int LuDecomposition::DeterminantSign() const {
  if (singular_) return 0;
  int sign = pivot_sign_;
  for (size_t i = 0; i < size(); ++i) {
    if (lu_(i, i) < 0.0) sign = -sign;
  }
  return sign;
}

Vector LuDecomposition::Solve(const Vector& b) const {
  DHMM_CHECK_MSG(!singular_, "cannot solve with a singular matrix");
  DHMM_CHECK(b.size() == size());
  const size_t n = size();
  Vector x(n);
  // Apply permutation: x = P b.
  for (size_t i = 0; i < n; ++i) x[i] = b[piv_[i]];
  // Forward substitution with unit-diagonal L.
  for (size_t i = 1; i < n; ++i) {
    double s = x[i];
    for (size_t j = 0; j < i; ++j) s -= lu_(i, j) * x[j];
    x[i] = s;
  }
  // Back substitution with U.
  for (size_t ii = n; ii-- > 0;) {
    double s = x[ii];
    for (size_t j = ii + 1; j < n; ++j) s -= lu_(ii, j) * x[j];
    x[ii] = s / lu_(ii, ii);
  }
  return x;
}

Matrix LuDecomposition::Solve(const Matrix& b) const {
  Matrix out;
  SolveInto(b, &out);
  return out;
}

Matrix LuDecomposition::Inverse() const {
  Matrix out;
  InverseInto(&out);
  return out;
}

void LuDecomposition::SolveInto(const Vector& b, Vector* x) const {
  DHMM_CHECK_MSG(!singular_, "cannot solve with a singular matrix");
  DHMM_CHECK(x != nullptr && x != &b);
  DHMM_CHECK(b.size() == size());
  const size_t n = size();
  x->Resize(n);
  for (size_t i = 0; i < n; ++i) (*x)[i] = b[piv_[i]];
  for (size_t i = 1; i < n; ++i) {
    double s = (*x)[i];
    for (size_t j = 0; j < i; ++j) s -= lu_(i, j) * (*x)[j];
    (*x)[i] = s;
  }
  for (size_t ii = n; ii-- > 0;) {
    double s = (*x)[ii];
    for (size_t j = ii + 1; j < n; ++j) s -= lu_(ii, j) * (*x)[j];
    (*x)[ii] = s / lu_(ii, ii);
  }
}

void LuDecomposition::SolveInto(const Matrix& b, Matrix* x) const {
  DHMM_CHECK_MSG(!singular_, "cannot solve with a singular matrix");
  DHMM_CHECK(x != nullptr && x != &b);
  DHMM_CHECK(b.rows() == size());
  const size_t n = size();
  const size_t m = b.cols();
  x->Resize(n, m);
  // All right-hand sides advance together with the innermost loop running
  // along contiguous rows (vectorizable, no strided column walks). Per
  // element the update order over j is unchanged, so results are bitwise
  // identical to solving each column separately.
  for (size_t i = 0; i < n; ++i) {
    const double* src = b.row_data(piv_[i]);
    double* dst = x->row_data(i);
    for (size_t c = 0; c < m; ++c) dst[c] = src[c];
  }
  for (size_t i = 1; i < n; ++i) {
    double* xi = x->row_data(i);
    for (size_t j = 0; j < i; ++j) {
      const double f = lu_(i, j);
      const double* xj = x->row_data(j);
      for (size_t c = 0; c < m; ++c) xi[c] -= f * xj[c];
    }
  }
  for (size_t ii = n; ii-- > 0;) {
    double* xi = x->row_data(ii);
    for (size_t j = ii + 1; j < n; ++j) {
      const double f = lu_(ii, j);
      const double* xj = x->row_data(j);
      for (size_t c = 0; c < m; ++c) xi[c] -= f * xj[c];
    }
    const double d = lu_(ii, ii);
    for (size_t c = 0; c < m; ++c) xi[c] /= d;
  }
}

void LuDecomposition::InverseInto(Matrix* out) const {
  DHMM_CHECK_MSG(!singular_, "cannot invert a singular matrix");
  DHMM_CHECK(out != nullptr);
  const size_t n = size();
  out->Resize(n, n);
  // Solve A X = I; the permuted identity columns are written directly.
  for (size_t c = 0; c < n; ++c) {
    for (size_t i = 0; i < n; ++i) {
      (*out)(i, c) = piv_[i] == c ? 1.0 : 0.0;
    }
    for (size_t i = 1; i < n; ++i) {
      double s = (*out)(i, c);
      for (size_t j = 0; j < i; ++j) s -= lu_(i, j) * (*out)(j, c);
      (*out)(i, c) = s;
    }
    for (size_t ii = n; ii-- > 0;) {
      double s = (*out)(ii, c);
      for (size_t j = ii + 1; j < n; ++j) s -= lu_(ii, j) * (*out)(j, c);
      (*out)(ii, c) = s / lu_(ii, ii);
    }
  }
}

double Determinant(const Matrix& a) {
  return LuDecomposition(a).Determinant();
}

double LogAbsDeterminant(const Matrix& a) {
  return LuDecomposition(a).LogAbsDeterminant();
}

Matrix Inverse(const Matrix& a) {
  LuDecomposition lu(a);
  DHMM_CHECK_MSG(!lu.IsSingular(), "Inverse of singular matrix");
  return lu.Inverse();
}

}  // namespace dhmm::linalg
