#include "linalg/kernels.h"

#include <cmath>
#include <limits>

namespace dhmm::linalg::kernels {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}  // namespace

double SumRow(const double* DHMM_RESTRICT x, std::size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += x[i];
    s1 += x[i + 1];
    s2 += x[i + 2];
    s3 += x[i + 3];
  }
  for (; i < n; ++i) s0 += x[i];
  return (s0 + s1) + (s2 + s3);
}

double Dot(const double* DHMM_RESTRICT x, const double* DHMM_RESTRICT y,
           std::size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += x[i] * y[i];
    s1 += x[i + 1] * y[i + 1];
    s2 += x[i + 2] * y[i + 2];
    s3 += x[i + 3] * y[i + 3];
  }
  for (; i < n; ++i) s0 += x[i] * y[i];
  return (s0 + s1) + (s2 + s3);
}

double MaxRow(const double* DHMM_RESTRICT x, std::size_t n) {
  double m = kNegInf;
  for (std::size_t i = 0; i < n; ++i) m = x[i] > m ? x[i] : m;
  return m;
}

void MulRowScaledInto(const double* DHMM_RESTRICT x,
                      const double* DHMM_RESTRICT y, double s, std::size_t n,
                      double* DHMM_RESTRICT out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = x[i] * y[i] * s;
}

void AxpyRow(double s, const double* DHMM_RESTRICT x, std::size_t n,
             double* DHMM_RESTRICT out) {
  for (std::size_t i = 0; i < n; ++i) out[i] += s * x[i];
}

void AxpyMulRow(double s, const double* DHMM_RESTRICT x,
                const double* DHMM_RESTRICT y, std::size_t n,
                double* DHMM_RESTRICT out) {
  for (std::size_t i = 0; i < n; ++i) out[i] += s * x[i] * y[i];
}

void AxpyMulMat(const double* DHMM_RESTRICT s, const double* DHMM_RESTRICT a,
                const double* DHMM_RESTRICT y, std::size_t m, std::size_t n,
                double* DHMM_RESTRICT out) {
  for (std::size_t i = 0; i < m; ++i) {
    if (s[i] != 0.0) AxpyMulRow(s[i], a + i * n, y, n, out + i * n);
  }
}

void MatVecRow(const double* DHMM_RESTRICT x, const double* DHMM_RESTRICT a,
               std::size_t m, std::size_t n, double* DHMM_RESTRICT out) {
  for (std::size_t j = 0; j < n; ++j) out[j] = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    AxpyRow(x[i], a + i * n, n, out);
  }
}

void MatVecCol(const double* DHMM_RESTRICT a, const double* DHMM_RESTRICT x,
               std::size_t m, std::size_t n, double* DHMM_RESTRICT out) {
  for (std::size_t i = 0; i < m; ++i) {
    out[i] = Dot(a + i * n, x, n);
  }
}

void MatVecColMul(const double* DHMM_RESTRICT a,
                  const double* DHMM_RESTRICT x,
                  const double* DHMM_RESTRICT w, std::size_t m, std::size_t n,
                  double* DHMM_RESTRICT out) {
  for (std::size_t i = 0; i < m; ++i) {
    out[i] = Dot(a + i * n, x, n) * w[i];
  }
}

void BackwardFused(const double* DHMM_RESTRICT a, const double* DHMM_RESTRICT u,
                   const double* DHMM_RESTRICT s, std::size_t m, std::size_t n,
                   double* DHMM_RESTRICT beta_out, double* DHMM_RESTRICT xi) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* DHMM_RESTRICT row = a + i * n;
    beta_out[i] = Dot(row, u, n);
    if (s[i] != 0.0) AxpyMulRow(s[i], row, u, n, xi + i * n);
  }
}

double ExpShiftRow(const double* DHMM_RESTRICT x, std::size_t n,
                   double* DHMM_RESTRICT out) {
  const double m = MaxRow(x, n);
  if (m == kNegInf) return m;
  for (std::size_t i = 0; i < n; ++i) out[i] = std::exp(x[i] - m);
  return m;
}

void TransposeInto(const double* DHMM_RESTRICT a, std::size_t m,
                   std::size_t n, double* DHMM_RESTRICT out) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* DHMM_RESTRICT row = a + i * n;
    for (std::size_t j = 0; j < n; ++j) out[j * m + i] = row[j];
  }
}

}  // namespace dhmm::linalg::kernels
