// Deterministic micro-kernels for the chain-algebra hot loops.
//
// Every primitive here works on restrict-qualified raw pointers over
// contiguous (64-byte-aligned, see linalg/aligned.h) storage and reduces
// through a fixed four-accumulator stream pattern: lanes 0..3 each sum every
// fourth element, the tail folds into lane 0, and the lanes combine as
// (s0 + s1) + (s2 + s3). That order is a compile-time property of the code —
// no runtime dispatch, no FMA contraction surprises under the default flags —
// so results are bitwise reproducible across calls, thread counts, and
// buffer reuse, which the inference and engine contracts rely on.
//
// The kernels are deliberately shape-agnostic: callers (hmm/inference.cc,
// linalg::Matrix) choose whether to feed a matrix or its cached transpose so
// that every inner loop reads memory contiguously.
//
// This header is the *scalar* layer — the parity oracle. SIMD variants of
// the out-of-line kernels live behind the one-shot dispatch tables in
// linalg/kernels_dispatch.h; hot callers fetch a table via ForK(k) and call
// through it, while anything calling these functions directly gets the
// oracle unconditionally (that is what DHMM_KERNEL_ISA=scalar pins the
// whole process to).
#ifndef DHMM_LINALG_KERNELS_H_
#define DHMM_LINALG_KERNELS_H_

#include <cstddef>

#if defined(_MSC_VER)
#define DHMM_RESTRICT __restrict
#else
#define DHMM_RESTRICT __restrict__
#endif

namespace dhmm::linalg::kernels {

// The branchy scan primitives (argmax) and cheap elementwise maps are
// defined inline: the chain recursions call them once per (frame, state)
// pair with rows as short as k = 2, where an out-of-line call costs more
// than the loop body. The reduction/axpy kernels stay out-of-line in
// kernels.cc, where their restrict qualifiers demonstrably survive to the
// optimizer and the 4-way streams vectorize. Inline-vs-not cannot change
// results — the accumulation order is fixed by the source and the build
// uses strict IEEE semantics (no fast-math, no reassociation).

/// \brief Sum of x[0..n) with the fixed 4-way accumulation order.
double SumRow(const double* DHMM_RESTRICT x, std::size_t n);

/// \brief Dot product of x and y with the fixed 4-way accumulation order.
double Dot(const double* DHMM_RESTRICT x, const double* DHMM_RESTRICT y,
           std::size_t n);

/// \brief Maximum of x[0..n); n must be positive.
double MaxRow(const double* DHMM_RESTRICT x, std::size_t n);

/// \brief Index of the maximum of x[0..n); lowest index wins ties. n > 0.
inline std::size_t ArgMaxRow(const double* DHMM_RESTRICT x, std::size_t n) {
  std::size_t arg = 0;
  double best = x[0];
  for (std::size_t i = 1; i < n; ++i) {
    if (x[i] > best) {
      best = x[i];
      arg = i;
    }
  }
  return arg;
}

/// \brief Index maximizing x[i] + y[i]; lowest index wins ties, the winning
/// value is written to *best. n > 0. This is one Viterbi transition step
/// against a row of the cached transposed log-transition matrix.
inline std::size_t ArgMaxSumRow(const double* DHMM_RESTRICT x,
                                const double* DHMM_RESTRICT y, std::size_t n,
                                double* DHMM_RESTRICT best) {
  std::size_t arg = 0;
  double b = x[0] + y[0];
  for (std::size_t i = 1; i < n; ++i) {
    const double v = x[i] + y[i];
    if (v > b) {
      b = v;
      arg = i;
    }
  }
  *best = b;
  return arg;
}

/// \brief In-place x *= s.
inline void ScaleRow(double* DHMM_RESTRICT x, std::size_t n, double s) {
  for (std::size_t i = 0; i < n; ++i) x[i] *= s;
}

/// \brief out = x * s (out must not alias x).
inline void ScaleRowInto(const double* DHMM_RESTRICT x, double s,
                         std::size_t n, double* DHMM_RESTRICT out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = x[i] * s;
}

/// \brief out = x .* y elementwise (out must not alias the inputs).
inline void MulRowInto(const double* DHMM_RESTRICT x,
                       const double* DHMM_RESTRICT y, std::size_t n,
                       double* DHMM_RESTRICT out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = x[i] * y[i];
}

/// \brief out = x .* y * s — the hoisted backward frame product
/// btilde(t+1,.) * beta_hat(t+1,.) / scale[t+1] computed once per frame
/// (out must not alias the inputs).
void MulRowScaledInto(const double* DHMM_RESTRICT x,
                      const double* DHMM_RESTRICT y, double s, std::size_t n,
                      double* DHMM_RESTRICT out);

/// \brief out += s * x (contiguous axpy; out must not alias x).
void AxpyRow(double s, const double* DHMM_RESTRICT x, std::size_t n,
             double* DHMM_RESTRICT out);

/// \brief out += s * x .* y — one xi-accumulation row:
/// xi(i,.) += alpha_hat(t,i) * a(i,.) .* u (out must not alias the inputs).
void AxpyMulRow(double s, const double* DHMM_RESTRICT x,
                const double* DHMM_RESTRICT y, std::size_t n,
                double* DHMM_RESTRICT out);

/// \brief Batched AxpyMulRow over the rows of row-major A (m x n):
/// out(i,.) += s[i] * a(i,.) .* y for every i with s[i] != 0, i ascending.
/// The whole frame's xi accumulation xi += diag(alpha_hat(t,.)) A diag(u)
/// in one call. Rows with s[i] == 0 are skipped entirely — same zero-skip
/// the callers used to do (computing them anyway could turn 0 * inf into
/// NaN). Bitwise identical to the equivalent per-row AxpyMulRow loop on
/// every ISA: the batched form changes the call structure, never the
/// per-element expression or row order.
void AxpyMulMat(const double* DHMM_RESTRICT s, const double* DHMM_RESTRICT a,
                const double* DHMM_RESTRICT y, std::size_t m, std::size_t n,
                double* DHMM_RESTRICT out);

/// \brief out = x^T A for row-major A (m x n): contiguous axpy over the rows
/// of A, never touching a column stride. out must not alias x or A.
///
/// This is the axpy-formulation counterpart of MatVecCol for callers that
/// need x^T A but cannot afford to build/cache a transpose (one-shot
/// products over large rectangular A). The in-tree chain recursions all go
/// through the cached transpose instead, so no inference loop calls this —
/// but it is a full member of the kernels_dispatch.h tables (every ISA
/// ships a variant, covered by the cross-variant parity grid) so a future
/// caller gets the vectorized form for free. Matrix::MatMul keeps its own
/// zero-skip loop because skipping changes 0 * inf semantics; its inner
/// axpy does route through the dispatch table.
void MatVecRow(const double* DHMM_RESTRICT x, const double* DHMM_RESTRICT a,
               std::size_t m, std::size_t n, double* DHMM_RESTRICT out);

/// \brief out = A x for row-major A (m x n): one 4-way dot per row. To
/// compute x^T A with dot-style accumulation instead of axpy, pass the
/// cached transpose of A (see hmm::TransitionCache). out must not alias.
void MatVecCol(const double* DHMM_RESTRICT a, const double* DHMM_RESTRICT x,
               std::size_t m, std::size_t n, double* DHMM_RESTRICT out);

/// \brief out = (A x) .* w — the fused forward step: one dot against a row
/// of the cached transposed transition matrix, multiplied by the frame's
/// shifted emission while the dot result is still in a register.
void MatVecColMul(const double* DHMM_RESTRICT a,
                  const double* DHMM_RESTRICT x,
                  const double* DHMM_RESTRICT w, std::size_t m, std::size_t n,
                  double* DHMM_RESTRICT out);

/// \brief The fused backward frame: out = A u (exactly MatVecCol) and
/// xi(i,.) += s[i] * a(i,.) .* u for every i with s[i] != 0 (exactly
/// AxpyMulMat), in one pass over A. The backward recursion's per-frame
/// pair beta(t) = A u, xi += diag(alpha_hat(t,.)) A diag(u) touches the
/// k x k transition matrix twice when issued as two kernels; at k where A
/// falls out of L1 that second read is pure memory traffic, so the vector
/// variants fuse the two while a(i,.) is in registers. Bitwise identical
/// to the MatVecCol-then-AxpyMulMat composition on every ISA — fusion
/// changes when values are computed, never the per-row accumulation order
/// or element expressions — which is why stream BetaStep can keep calling
/// plain MatVecCol (it needs no xi) and still match offline beta bitwise.
void BackwardFused(const double* DHMM_RESTRICT a, const double* DHMM_RESTRICT u,
                   const double* DHMM_RESTRICT s, std::size_t m, std::size_t n,
                   double* DHMM_RESTRICT beta_out, double* DHMM_RESTRICT xi);

/// \brief Shifted exponentiation of one emission row: returns
/// m = max_i x[i] and writes out[i] = exp(x[i] - m), so at least one output
/// is exactly 1. Returns -inf (and writes nothing useful) only when every
/// input is -inf; callers treat that as a zero-probability frame.
double ExpShiftRow(const double* DHMM_RESTRICT x, std::size_t n,
                   double* DHMM_RESTRICT out);

/// \brief out = A^T for row-major A (m x n); out is n x m row-major.
void TransposeInto(const double* DHMM_RESTRICT a, std::size_t m,
                   std::size_t n, double* DHMM_RESTRICT out);

}  // namespace dhmm::linalg::kernels

#endif  // DHMM_LINALG_KERNELS_H_
