// Dense row-major double matrix.
#ifndef DHMM_LINALG_MATRIX_H_
#define DHMM_LINALG_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <string>

#include "linalg/aligned.h"
#include "linalg/vector.h"
#include "util/check.h"

namespace dhmm::linalg {

/// \brief Dense row-major matrix of doubles.
///
/// This is the workhorse container for transition matrices, kernel matrices,
/// emission parameter tables and sufficient statistics. It favours clarity
/// over BLAS-level performance: the matrices in this system are k x k with
/// k <= a few dozen states, or k x V with V in the tens of thousands but only
/// touched with O(kV) passes. Storage is 64-byte aligned (linalg/aligned.h)
/// and the arithmetic hot paths route through the deterministic micro-kernels
/// in linalg/kernels.h.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  /// Zero matrix of the given shape.
  Matrix(size_t rows, size_t cols) : rows_(rows), cols_(cols),
                                     data_(rows * cols, 0.0) {}
  /// Constant-filled matrix.
  Matrix(size_t rows, size_t cols, double value)
      : rows_(rows), cols_(cols), data_(rows * cols, value) {}
  /// From nested initializer lists; all rows must have equal arity.
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  /// Identity matrix of size n.
  static Matrix Identity(size_t n);
  /// Matrix with the given vector on the diagonal.
  static Matrix Diagonal(const Vector& diag);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }

  double operator()(size_t r, size_t c) const {
    DHMM_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double& operator()(size_t r, size_t c) {
    DHMM_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  const double* data() const { return data_.data(); }
  double* data() { return data_.data(); }
  /// Pointer to the start of row r.
  const double* row_data(size_t r) const {
    DHMM_DCHECK(r < rows_);
    return data_.data() + r * cols_;
  }
  double* row_data(size_t r) {
    DHMM_DCHECK(r < rows_);
    return data_.data() + r * cols_;
  }

  /// Copies row r out as a Vector.
  Vector Row(size_t r) const;
  /// Copies column c out as a Vector.
  Vector Col(size_t c) const;
  /// Overwrites row r; v.size() must equal cols().
  void SetRow(size_t r, const Vector& v);
  /// Overwrites column c; v.size() must equal rows().
  void SetCol(size_t c, const Vector& v);

  /// Fills every entry with the given value.
  void Fill(double value);

  /// Reshapes to rows x cols. Entry values are unspecified afterwards (this
  /// is a buffer-reuse primitive, not a view change): callers must overwrite
  /// or Fill() before reading. The underlying storage is reused when capacity
  /// allows, so workspaces cycling through different sequence lengths stop
  /// allocating once the high-water mark is reached.
  void Resize(size_t rows, size_t cols);

  // --- arithmetic ----------------------------------------------------------

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double s);
  /// In-place `*this += other * scale` without a temporary — the hot-loop
  /// form of a gradient step (trial = iterate + grad * step).
  Matrix& AddScaled(const Matrix& other, double scale);
  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, double s) { return a *= s; }
  friend Matrix operator*(double s, Matrix a) { return a *= s; }

  /// Matrix product; inner dimensions must agree.
  Matrix MatMul(const Matrix& other) const;
  /// Matrix-vector product; v.size() must equal cols().
  Vector MatVec(const Vector& v) const;
  /// Transpose copy.
  Matrix Transposed() const;

  // --- reductions / predicates ---------------------------------------------

  /// Sum of all entries.
  double sum() const;
  /// Maximum absolute entry (infinity norm of vec(M)).
  double max_abs() const;
  /// Frobenius norm.
  double frobenius_norm() const;
  /// Squared Frobenius distance to another same-shape matrix.
  double squared_distance(const Matrix& other) const;

  /// True when every row is a probability distribution within tolerance.
  bool IsRowStochastic(double tol = 1e-9) const;
  /// True when symmetric within tolerance (square only).
  bool IsSymmetric(double tol = 1e-12) const;

  /// Normalizes every row to sum to one; rows with non-positive mass are set
  /// uniform (this matches EM practice for states with zero expected counts).
  void NormalizeRows();

  /// Multi-line debug rendering with the given precision.
  std::string ToString(int precision = 4) const;

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  size_t rows_;
  size_t cols_;
  AlignedBuffer data_;
};

}  // namespace dhmm::linalg

#endif  // DHMM_LINALG_MATRIX_H_
