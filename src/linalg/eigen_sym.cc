#include "linalg/eigen_sym.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace dhmm::linalg {

namespace {

// Sum of squares of strictly-upper-triangular entries.
double OffDiagonalNormSq(const Matrix& a) {
  double s = 0.0;
  for (size_t i = 0; i < a.rows(); ++i)
    for (size_t j = i + 1; j < a.cols(); ++j) s += a(i, j) * a(i, j);
  return s;
}

}  // namespace

SymmetricEigen::SymmetricEigen(const Matrix& a, int max_sweeps, double tol)
    : values_(a.rows()), vectors_(Matrix::Identity(a.rows())),
      converged_(false) {
  DHMM_CHECK_MSG(a.rows() == a.cols(), "eigendecomposition needs square input");
  const size_t n = a.rows();
  Matrix m = a;
  // Symmetrize defensively: kernel construction can leave ~1e-16 asymmetry.
  for (size_t i = 0; i < n; ++i)
    for (size_t j = i + 1; j < n; ++j) {
      double v = 0.5 * (m(i, j) + m(j, i));
      m(i, j) = v;
      m(j, i) = v;
    }

  const double thresh = tol * std::max(1.0, m.max_abs());
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (std::sqrt(OffDiagonalNormSq(m)) <= thresh * n) {
      converged_ = true;
      break;
    }
    for (size_t p = 0; p + 1 < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        double apq = m(p, q);
        if (std::fabs(apq) <= thresh * 1e-3) continue;
        double app = m(p, p), aqq = m(q, q);
        double theta = 0.5 * (aqq - app) / apq;
        // Stable tangent of the rotation angle.
        double t = (theta >= 0 ? 1.0 : -1.0) /
                   (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        double c = 1.0 / std::sqrt(t * t + 1.0);
        double s = t * c;
        // Apply the rotation G(p,q) on both sides: m <- G^T m G.
        for (size_t k = 0; k < n; ++k) {
          double mkp = m(k, p), mkq = m(k, q);
          m(k, p) = c * mkp - s * mkq;
          m(k, q) = s * mkp + c * mkq;
        }
        for (size_t k = 0; k < n; ++k) {
          double mpk = m(p, k), mqk = m(q, k);
          m(p, k) = c * mpk - s * mqk;
          m(q, k) = s * mpk + c * mqk;
        }
        for (size_t k = 0; k < n; ++k) {
          double vkp = vectors_(k, p), vkq = vectors_(k, q);
          vectors_(k, p) = c * vkp - s * vkq;
          vectors_(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  if (!converged_ &&
      std::sqrt(OffDiagonalNormSq(m)) <= 1e-8 * (1 + m.max_abs())) {
    converged_ = true;  // good enough for downstream use
  }

  // Extract and sort ascending, permuting eigenvector columns alongside.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::vector<double> diag(n);
  for (size_t i = 0; i < n; ++i) diag[i] = m(i, i);
  std::sort(order.begin(), order.end(),
            [&](size_t x, size_t y) { return diag[x] < diag[y]; });
  Matrix sorted_vecs(n, n);
  for (size_t i = 0; i < n; ++i) {
    values_[i] = diag[order[i]];
    sorted_vecs.SetCol(i, vectors_.Col(order[i]));
  }
  vectors_ = sorted_vecs;
}

}  // namespace dhmm::linalg
