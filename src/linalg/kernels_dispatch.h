// One-shot startup dispatch over the SIMD micro-kernel variants.
//
// The scalar layer in kernels.h stays the verbatim parity oracle; this
// header adds per-ISA vector variants of the reduction/axpy/fused kernels
// and exposes them through immutable function-pointer tables (the codegen
// -table idiom: pick the specialized routine from a table keyed on shape at
// dispatch time, never branch inside the loop):
//
//  - The active ISA is resolved exactly once per process, on first use,
//    from CPU feature detection — overridable with DHMM_KERNEL_ISA=
//    scalar|avx2|avx512. An unrecognized value aborts (a typo must never
//    silently re-select the vector path a caller believes it pinned off);
//    a recognized value the host/build lacks logs a warning to stderr and
//    falls back to the best detected ISA. After
//    resolution every call site reads function pointers out of a fixed
//    table: no per-call ISA branch reaches any inner loop.
//  - Tables are keyed on (ISA, k-class). ForK(k) returns the fully
//    unrolled fixed-k table for k <= kMaxFixedK under a vector ISA and the
//    ISA's variable-length table otherwise; under the scalar ISA every
//    k-class maps to the verbatim kernels.cc oracle. A given shape k
//    therefore always resolves to the same variant within a process, which
//    is what keeps the engine/serve bitwise contracts (thread-count
//    invariance, stream-vs-offline equality, checkpointed-vs-full replay)
//    intact: they only ever compare runs of the same process.
//  - Every variant has a fixed, documented lane-accumulation order (see
//    the variant TUs), so results are bitwise reproducible across calls,
//    thread counts, and buffer reuse within a selected ISA. Cross-ISA
//    parity versus the scalar oracle is <= 1e-12 (tests/kernels_test.cc
//    grid, plus the startup check in bench/perf_hmm_ops).
//
// On non-x86 hosts (or toolchains without the -m flags) the variant TUs
// compile to stubs and dispatch resolves to scalar — the portable build
// never references an instruction the target lacks.
#ifndef DHMM_LINALG_KERNELS_DISPATCH_H_
#define DHMM_LINALG_KERNELS_DISPATCH_H_

#include <cstddef>
#include <string>
#include <vector>

#include "linalg/kernels.h"

namespace dhmm::linalg::kernels {

/// Instruction-set variants a kernel table can be compiled for. Order is
/// preference order: dispatch picks the highest compiled-and-supported.
enum class Isa : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// Largest k with a fully unrolled fixed-k kernel instantiation.
inline constexpr std::size_t kMaxFixedK = 8;

/// \brief One resolved kernel variant: function pointers matching the
/// kernels.h signatures. Tables are immutable after startup resolution;
/// call sites fetch a table once per sequence/batch (outside all inner
/// loops) and call through it.
struct KernelTable {
  double (*sum_row)(const double* DHMM_RESTRICT x, std::size_t n);
  double (*dot)(const double* DHMM_RESTRICT x, const double* DHMM_RESTRICT y,
                std::size_t n);
  double (*max_row)(const double* DHMM_RESTRICT x, std::size_t n);
  void (*mul_row_scaled_into)(const double* DHMM_RESTRICT x,
                              const double* DHMM_RESTRICT y, double s,
                              std::size_t n, double* DHMM_RESTRICT out);
  void (*axpy_row)(double s, const double* DHMM_RESTRICT x, std::size_t n,
                   double* DHMM_RESTRICT out);
  void (*axpy_mul_row)(double s, const double* DHMM_RESTRICT x,
                       const double* DHMM_RESTRICT y, std::size_t n,
                       double* DHMM_RESTRICT out);
  void (*axpy_mul_mat)(const double* DHMM_RESTRICT s,
                       const double* DHMM_RESTRICT a,
                       const double* DHMM_RESTRICT y, std::size_t m,
                       std::size_t n, double* DHMM_RESTRICT out);
  void (*mat_vec_row)(const double* DHMM_RESTRICT x,
                      const double* DHMM_RESTRICT a, std::size_t m,
                      std::size_t n, double* DHMM_RESTRICT out);
  void (*mat_vec_col)(const double* DHMM_RESTRICT a,
                      const double* DHMM_RESTRICT x, std::size_t m,
                      std::size_t n, double* DHMM_RESTRICT out);
  void (*mat_vec_col_mul)(const double* DHMM_RESTRICT a,
                          const double* DHMM_RESTRICT x,
                          const double* DHMM_RESTRICT w, std::size_t m,
                          std::size_t n, double* DHMM_RESTRICT out);
  void (*backward_fused)(const double* DHMM_RESTRICT a,
                         const double* DHMM_RESTRICT u,
                         const double* DHMM_RESTRICT s, std::size_t m,
                         std::size_t n, double* DHMM_RESTRICT beta_out,
                         double* DHMM_RESTRICT xi);
  double (*exp_shift_row)(const double* DHMM_RESTRICT x, std::size_t n,
                          double* DHMM_RESTRICT out);

  Isa isa = Isa::kScalar;
  const char* name = "scalar";  ///< e.g. "avx2", "avx512/k4"
  std::size_t fixed_k = 0;      ///< 0 = variable-length kernels
};

/// The active variable-length table (resolved once, see header comment).
const KernelTable& Active();

/// The active table for rows/squares of length k: the fixed-k
/// instantiation for k <= kMaxFixedK under a vector ISA, Active()
/// otherwise. O(1): one bounds test and an array index, no re-dispatch.
const KernelTable& ForK(std::size_t k);

/// The ISA Active() resolved to.
Isa ActiveIsa();

/// Canonical lowercase name ("scalar", "avx2", "avx512").
const char* IsaName(Isa isa);

/// IsaName(ActiveIsa()) — the value benches record as `kernel_isa`.
const char* ActiveIsaName();

/// ISAs whose variant TUs were compiled into this binary (scalar always).
std::vector<Isa> CompiledIsas();

/// True when `isa` is both compiled in and supported by this CPU.
bool IsaAvailable(Isa isa);

/// Variant tables for a specific ISA regardless of what is active — the
/// parity tests and per-ISA benches call variants through these. `isa`
/// must be compiled in (CHECK-failure otherwise); running a table on a
/// CPU that lacks the ISA is the caller's responsibility (IsaAvailable).
const KernelTable& TableFor(Isa isa);
const KernelTable& TableFor(Isa isa, std::size_t k);

/// One-line resolution report, e.g.
/// "isa=avx512 detected=avx512 override=none fixed_k<=8". The unified
/// process startup line (obs/startup.h) embeds this verbatim — serving
/// front ends and benches log through obs::LogStartup(), which also
/// exports the resolved ISA as a gauge.
std::string StartupSummary();

namespace internal {

/// Per-ISA table set: the variable-length table plus the k-class row.
/// by_k[0] is unused and aliases generic so ForK can index unconditionally.
struct IsaTables {
  const KernelTable* generic = nullptr;
  const KernelTable* by_k[kMaxFixedK + 1] = {};
};

/// Defined in kernels_dispatch.cc (scalar) and the variant TUs; a variant
/// TU compiled without its ISA flags returns nullptr.
const IsaTables& ScalarTables();
const IsaTables* Avx2Tables();
const IsaTables* Avx512Tables();

/// Test/bench-only: re-points the process-wide active tables at `isa`
/// (which must be available) and re-labels StartupSummary()'s override
/// field "forced:<isa>". The swap is data-race-free (the resolution state
/// is atomic), but a reader overlapping a swap may observe a mix of old
/// and new fields — per-ISA benches and tests swap while single-threaded,
/// then restore. Returns false when the ISA is unavailable. Production
/// code must never call this; one-shot startup resolution is the contract.
bool ForceIsaForTestOnly(Isa isa);

}  // namespace internal

}  // namespace dhmm::linalg::kernels

#endif  // DHMM_LINALG_KERNELS_DISPATCH_H_
