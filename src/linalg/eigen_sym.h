// Symmetric eigendecomposition via the cyclic Jacobi method.
#ifndef DHMM_LINALG_EIGEN_SYM_H_
#define DHMM_LINALG_EIGEN_SYM_H_

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace dhmm::linalg {

/// \brief Eigendecomposition A = V diag(w) V^T of a symmetric matrix.
///
/// Uses cyclic Jacobi rotations — O(n^3) per sweep, a handful of sweeps for
/// the small kernel matrices this library manipulates. Needed for the k-DPP
/// normalizer (elementary symmetric polynomials of eigenvalues, Eq. 1) and
/// for exact DPP sampling.
class SymmetricEigen {
 public:
  /// Decomposes a symmetric matrix; DHMM_CHECK-fails on non-square input.
  /// Symmetry is assumed (only the upper triangle feeds the rotations).
  explicit SymmetricEigen(const Matrix& a, int max_sweeps = 64,
                          double tol = 1e-13);

  /// Eigenvalues in ascending order.
  const Vector& eigenvalues() const { return values_; }

  /// Column i of this matrix is the eigenvector for eigenvalues()[i].
  const Matrix& eigenvectors() const { return vectors_; }

  /// True when the off-diagonal norm dropped below tolerance.
  bool converged() const { return converged_; }

 private:
  Vector values_;
  Matrix vectors_;
  bool converged_;
};

}  // namespace dhmm::linalg

#endif  // DHMM_LINALG_EIGEN_SYM_H_
