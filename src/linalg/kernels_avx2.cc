// AVX2+FMA kernel variants. Compiled with -mavx2 -mfma (per-file flags,
// see src/CMakeLists.txt); without those flags this TU is the nullptr stub
// at the bottom, so the portable build never references an AVX
// instruction.
//
// Documented lane-accumulation contract of the avx2 variants (the fixed
// order that makes them bitwise reproducible across calls, thread counts,
// and buffer reuse):
//
//  - Reductions (SumRow, Dot, MaxRow) stream two 4-lane accumulators over
//    stride-8 blocks: acc0 takes elements [8b, 8b+4), acc1 takes
//    [8b+4, 8b+8). A remaining >= 4 chunk folds into acc0. The
//    accumulators combine as acc0 (+) acc1 lanewise, then a butterfly:
//    (l0 + l2) + (l1 + l3). The scalar tail (< 4 elements) then folds
//    into that total in ascending order, one fused multiply-add per
//    element for Dot (plain add for SumRow, running strict-> max for
//    MaxRow).
//  - Dot lanes accumulate with FMA (one rounding per element); this is the
//    FMA use the -ffp-contract=off build contract allows: explicit in the
//    source with the order documented here, never compiler contraction.
//  - Elementwise kernels are per-element fixed sequences: AxpyRow
//    out[i] = fma(s, x[i], out[i]); AxpyMulRow
//    out[i] = fma(s * x[i], y[i], out[i]); MulRowScaledInto
//    out[i] = (x[i] * y[i]) * s (no FMA — bitwise equal to the scalar
//    oracle). Vector body and scalar tail apply the same per-element ops.
//  - MatVecRow iterates rows ascending over the AxpyRow contract.
//    MatVecCol / MatVecColMul / BackwardFused iterate rows ascending with
//    a *single* 4-lane accumulator per row over stride-4 blocks (not
//    Dot's two-accumulator stream: one chain per row lets four
//    interleaved rows hide FMA latency), the final partial block loaded
//    through a vmaskmovpd lane mask (a masked lane contributes an exact
//    0 * 0 — no scalar tail chain), then one butterfly reduce
//    (l0 + l2) + (l1 + l3). Rows are processed in groups of four sharing
//    the loads of x; grouping never changes a row's accumulation order,
//    so results are independent of m. BackwardFused's xi update applies
//    the AxpyMulRow element expression under the same mask, sharing each
//    row's loads with the beta dot.
//  - ExpShiftRow is the MaxRow contract followed by the shared PolyExp
//    per element (vector lanes and scalar tail evaluate the identical
//    operation sequence; see kernels_poly_exp.h).
//
// NaN semantics of MaxRow match the scalar oracle: a NaN candidate never
// replaces the running max (vmaxpd(x, acc) keeps acc when x is NaN).
// Loads/stores are unconditionally unaligned-tolerant (vmovupd): kernel
// selection and control flow depend only on (pointer-free) lengths, never
// on buffer addresses.
#include "linalg/kernels_dispatch.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <cmath>
#include <cstddef>
#include <limits>

#include "linalg/kernels_fixed_k.h"
#include "linalg/kernels_poly_exp.h"

namespace dhmm::linalg::kernels {
namespace {

inline double ReduceAdd(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d pair = _mm_add_pd(lo, hi);  // (l0 + l2, l1 + l3)
  return _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)));
}

inline double ReduceMax(__m256d v) {
  // max is insensitive to grouping for non-NaN inputs; NaN lanes cannot
  // arise here because the accumulators already filtered them (see below).
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d pair = _mm_max_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_max_sd(pair, _mm_unpackhi_pd(pair, pair)));
}

double SumRowAvx2(const double* DHMM_RESTRICT x, std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_add_pd(acc0, _mm256_loadu_pd(x + i));
    acc1 = _mm256_add_pd(acc1, _mm256_loadu_pd(x + i + 4));
  }
  if (i + 4 <= n) {
    acc0 = _mm256_add_pd(acc0, _mm256_loadu_pd(x + i));
    i += 4;
  }
  double s = ReduceAdd(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) s += x[i];
  return s;
}

double DotAvx2(const double* DHMM_RESTRICT x, const double* DHMM_RESTRICT y,
               std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i),
                           acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i + 4),
                           _mm256_loadu_pd(y + i + 4), acc1);
  }
  if (i + 4 <= n) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i),
                           acc0);
    i += 4;
  }
  double s = ReduceAdd(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) s = std::fma(x[i], y[i], s);
  return s;
}

double MaxRowAvx2(const double* DHMM_RESTRICT x, std::size_t n) {
  const double kNegInf = -std::numeric_limits<double>::infinity();
  __m256d acc0 = _mm256_set1_pd(kNegInf);
  __m256d acc1 = acc0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // Operand order matters: vmaxpd(a, b) returns b when a is NaN, so
    // putting the data first makes a NaN element keep the accumulator —
    // the scalar oracle's strict-> semantics.
    acc0 = _mm256_max_pd(_mm256_loadu_pd(x + i), acc0);
    acc1 = _mm256_max_pd(_mm256_loadu_pd(x + i + 4), acc1);
  }
  if (i + 4 <= n) {
    acc0 = _mm256_max_pd(_mm256_loadu_pd(x + i), acc0);
    i += 4;
  }
  double m = ReduceMax(_mm256_max_pd(acc0, acc1));
  for (; i < n; ++i) m = x[i] > m ? x[i] : m;
  return m;
}

void MulRowScaledIntoAvx2(const double* DHMM_RESTRICT x,
                          const double* DHMM_RESTRICT y, double s,
                          std::size_t n, double* DHMM_RESTRICT out) {
  const __m256d sv = _mm256_set1_pd(s);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d prod =
        _mm256_mul_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i));
    _mm256_storeu_pd(out + i, _mm256_mul_pd(prod, sv));
  }
  for (; i < n; ++i) out[i] = x[i] * y[i] * s;
}

void AxpyRowAvx2(double s, const double* DHMM_RESTRICT x, std::size_t n,
                 double* DHMM_RESTRICT out) {
  const __m256d sv = _mm256_set1_pd(s);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        out + i,
        _mm256_fmadd_pd(sv, _mm256_loadu_pd(x + i), _mm256_loadu_pd(out + i)));
  }
  for (; i < n; ++i) out[i] = std::fma(s, x[i], out[i]);
}

void AxpyMulRowAvx2(double s, const double* DHMM_RESTRICT x,
                    const double* DHMM_RESTRICT y, std::size_t n,
                    double* DHMM_RESTRICT out) {
  const __m256d sv = _mm256_set1_pd(s);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d sx = _mm256_mul_pd(sv, _mm256_loadu_pd(x + i));
    _mm256_storeu_pd(
        out + i,
        _mm256_fmadd_pd(sx, _mm256_loadu_pd(y + i), _mm256_loadu_pd(out + i)));
  }
  for (; i < n; ++i) out[i] = std::fma(s * x[i], y[i], out[i]);
}

// Rows ascending, each row the exact AxpyMulRowAvx2 body (direct call, so
// it inlines) — bitwise identical to the per-row loop the callers used to
// run, minus m indirect calls per frame. Rows with s[i] == 0 skipped.
void AxpyMulMatAvx2(const double* DHMM_RESTRICT s,
                    const double* DHMM_RESTRICT a,
                    const double* DHMM_RESTRICT y, std::size_t m,
                    std::size_t n, double* DHMM_RESTRICT out) {
  for (std::size_t i = 0; i < m; ++i) {
    if (s[i] != 0.0) AxpyMulRowAvx2(s[i], a + i * n, y, n, out + i * n);
  }
}

void MatVecRowAvx2(const double* DHMM_RESTRICT x, const double* DHMM_RESTRICT a,
                   std::size_t m, std::size_t n, double* DHMM_RESTRICT out) {
  for (std::size_t j = 0; j < n; ++j) out[j] = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    AxpyRowAvx2(x[i], a + i * n, n, out);
  }
}

// Lane-mask table for the final partial block of the mat-vec family:
// kTailMask + (4 - rem) keeps the low rem lanes under vmaskmovpd, so the
// tail rides the vector accumulator (a masked lane contributes an exact
// 0 * 0) instead of a serial per-element fma chain after the reduction.
alignas(32) constexpr long long kTailMask[8] = {-1, -1, -1, -1, 0, 0, 0, 0};

inline __m256i TailMaskAvx2(std::size_t n) {
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kTailMask + (4 - (n & 3))));
}

// Per-row dot with the MatVecCol row order: ONE 4-lane accumulator over
// stride-4 blocks, final partial block through the lane mask, one
// butterfly reduce. A single chain per row (unlike Dot's two) so four
// interleaved rows supply the FMA pipeline; the row result is identical
// whether the row is processed in a 4-row group or alone.
inline double MatRowDotAvx2(const double* DHMM_RESTRICT row,
                            const double* DHMM_RESTRICT x, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    acc = _mm256_fmadd_pd(_mm256_loadu_pd(row + j), _mm256_loadu_pd(x + j),
                          acc);
  }
  if (j < n) {
    const __m256i tm = TailMaskAvx2(n);
    acc = _mm256_fmadd_pd(_mm256_maskload_pd(row + j, tm),
                          _mm256_maskload_pd(x + j, tm), acc);
  }
  return ReduceAdd(acc);
}

// Shared MatVecCol/MatVecColMul body: rows in ascending order, processed
// in groups of four so the four independent accumulator chains hide the
// FMA latency of one another (each row still accumulates exactly as
// MatRowDotAvx2 — the grouping shares only the loads of x).
template <bool kMulW>
inline void MatVecColBodyAvx2(const double* DHMM_RESTRICT a,
                              const double* DHMM_RESTRICT x,
                              const double* DHMM_RESTRICT w, std::size_t m,
                              std::size_t n, double* DHMM_RESTRICT out) {
  std::size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const double* DHMM_RESTRICT r0 = a + i * n;
    const double* DHMM_RESTRICT r1 = r0 + n;
    const double* DHMM_RESTRICT r2 = r1 + n;
    const double* DHMM_RESTRICT r3 = r2 + n;
    __m256d a0 = _mm256_setzero_pd();
    __m256d a1 = _mm256_setzero_pd();
    __m256d a2 = _mm256_setzero_pd();
    __m256d a3 = _mm256_setzero_pd();
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const __m256d xv = _mm256_loadu_pd(x + j);
      a0 = _mm256_fmadd_pd(_mm256_loadu_pd(r0 + j), xv, a0);
      a1 = _mm256_fmadd_pd(_mm256_loadu_pd(r1 + j), xv, a1);
      a2 = _mm256_fmadd_pd(_mm256_loadu_pd(r2 + j), xv, a2);
      a3 = _mm256_fmadd_pd(_mm256_loadu_pd(r3 + j), xv, a3);
    }
    if (j < n) {
      const __m256i tm = TailMaskAvx2(n);
      const __m256d xv = _mm256_maskload_pd(x + j, tm);
      a0 = _mm256_fmadd_pd(_mm256_maskload_pd(r0 + j, tm), xv, a0);
      a1 = _mm256_fmadd_pd(_mm256_maskload_pd(r1 + j, tm), xv, a1);
      a2 = _mm256_fmadd_pd(_mm256_maskload_pd(r2 + j, tm), xv, a2);
      a3 = _mm256_fmadd_pd(_mm256_maskload_pd(r3 + j, tm), xv, a3);
    }
    const double s0 = ReduceAdd(a0);
    const double s1 = ReduceAdd(a1);
    const double s2 = ReduceAdd(a2);
    const double s3 = ReduceAdd(a3);
    if (kMulW) {
      out[i] = s0 * w[i];
      out[i + 1] = s1 * w[i + 1];
      out[i + 2] = s2 * w[i + 2];
      out[i + 3] = s3 * w[i + 3];
    } else {
      out[i] = s0;
      out[i + 1] = s1;
      out[i + 2] = s2;
      out[i + 3] = s3;
    }
  }
  for (; i < m; ++i) {
    const double s = MatRowDotAvx2(a + i * n, x, n);
    out[i] = kMulW ? s * w[i] : s;
  }
}

void MatVecColAvx2(const double* DHMM_RESTRICT a, const double* DHMM_RESTRICT x,
                   std::size_t m, std::size_t n, double* DHMM_RESTRICT out) {
  MatVecColBodyAvx2<false>(a, x, nullptr, m, n, out);
}

void MatVecColMulAvx2(const double* DHMM_RESTRICT a,
                      const double* DHMM_RESTRICT x,
                      const double* DHMM_RESTRICT w, std::size_t m,
                      std::size_t n, double* DHMM_RESTRICT out) {
  MatVecColBodyAvx2<true>(a, x, w, m, n, out);
}

// One pass over A for the backward frame pair (see kernels.h): each row's
// beta dot accumulates exactly as MatRowDotAvx2 (single accumulator,
// stride-4, masked final block) and each xi update applies the
// AxpyMulRowAvx2 element expression with the same masked final block,
// sharing the loads of a(i,.) between the two.
void BackwardFusedAvx2(const double* DHMM_RESTRICT a,
                       const double* DHMM_RESTRICT u,
                       const double* DHMM_RESTRICT s, std::size_t m,
                       std::size_t n, double* DHMM_RESTRICT beta_out,
                       double* DHMM_RESTRICT xi) {
  const __m256i tm = TailMaskAvx2(n);
  const bool has_tail = (n & 3) != 0;
  for (std::size_t i = 0; i < m; ++i) {
    const double* DHMM_RESTRICT row = a + i * n;
    const double si = s[i];
    if (si == 0.0) {
      beta_out[i] = MatRowDotAvx2(row, u, n);
      continue;
    }
    double* DHMM_RESTRICT xrow = xi + i * n;
    const __m256d sv = _mm256_set1_pd(si);
    __m256d acc = _mm256_setzero_pd();
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const __m256d av = _mm256_loadu_pd(row + j);
      const __m256d uv = _mm256_loadu_pd(u + j);
      acc = _mm256_fmadd_pd(av, uv, acc);
      const __m256d sx = _mm256_mul_pd(sv, av);
      _mm256_storeu_pd(xrow + j,
                       _mm256_fmadd_pd(sx, uv, _mm256_loadu_pd(xrow + j)));
    }
    if (has_tail) {
      const __m256d av = _mm256_maskload_pd(row + j, tm);
      const __m256d uv = _mm256_maskload_pd(u + j, tm);
      acc = _mm256_fmadd_pd(av, uv, acc);
      const __m256d sx = _mm256_mul_pd(sv, av);
      _mm256_maskstore_pd(
          xrow + j, tm,
          _mm256_fmadd_pd(sx, uv, _mm256_maskload_pd(xrow + j, tm)));
    }
    beta_out[i] = ReduceAdd(acc);
  }
}

// 4-lane PolyExp: the vector evaluation of the exact operation sequence in
// kernels_poly_exp.h (every mul/add/div separately rounded, no FMA), so a
// lane result is bitwise equal to PolyExp of the same input.
inline __m256d PolyExpVec(__m256d y) {
  const __m256d keep =
      _mm256_cmp_pd(y, _mm256_set1_pd(kPolyExpUnderflow), _CMP_NLT_UQ);
  const __m256d yc = _mm256_max_pd(y, _mm256_set1_pd(kPolyExpUnderflow));
  const __m256d nf = _mm256_floor_pd(
      _mm256_add_pd(_mm256_mul_pd(yc, _mm256_set1_pd(kPolyExpLog2e)),
                    _mm256_set1_pd(0.5)));
  __m256d r = _mm256_sub_pd(yc, _mm256_mul_pd(nf, _mm256_set1_pd(kPolyExpC1)));
  r = _mm256_sub_pd(r, _mm256_mul_pd(nf, _mm256_set1_pd(kPolyExpC2)));
  const __m256d r2 = _mm256_mul_pd(r, r);
  __m256d p = _mm256_add_pd(_mm256_mul_pd(_mm256_set1_pd(kPolyExpP0), r2),
                            _mm256_set1_pd(kPolyExpP1));
  p = _mm256_add_pd(_mm256_mul_pd(p, r2), _mm256_set1_pd(kPolyExpP2));
  p = _mm256_mul_pd(r, p);
  __m256d q = _mm256_add_pd(_mm256_mul_pd(_mm256_set1_pd(kPolyExpQ0), r2),
                            _mm256_set1_pd(kPolyExpQ1));
  q = _mm256_add_pd(_mm256_mul_pd(q, r2), _mm256_set1_pd(kPolyExpQ2));
  q = _mm256_add_pd(_mm256_mul_pd(q, r2), _mm256_set1_pd(kPolyExpQ3));
  const __m256d e = _mm256_add_pd(
      _mm256_set1_pd(1.0),
      _mm256_div_pd(_mm256_mul_pd(_mm256_set1_pd(2.0), p),
                    _mm256_sub_pd(q, p)));
  // 2^n through the exponent field: nf is integral in [-1021, 1].
  const __m128i n32 = _mm256_cvtpd_epi32(nf);
  const __m256i n64 = _mm256_cvtepi32_epi64(n32);
  const __m256i bits = _mm256_slli_epi64(
      _mm256_add_epi64(n64, _mm256_set1_epi64x(1023)), 52);
  const __m256d pow2 = _mm256_castsi256_pd(bits);
  // Lanes below the underflow threshold flush to exactly 0.0 (the masked
  // lanes went through the clamped yc, so no garbage propagates); NaN
  // lanes propagate their input NaN, exactly as scalar PolyExp.
  const __m256d res = _mm256_and_pd(_mm256_mul_pd(e, pow2), keep);
  const __m256d unord = _mm256_cmp_pd(y, y, _CMP_UNORD_Q);
  return _mm256_blendv_pd(res, y, unord);
}

double ExpShiftRowAvx2(const double* DHMM_RESTRICT x, std::size_t n,
                       double* DHMM_RESTRICT out) {
  const double m = MaxRowAvx2(x, n);
  if (m == -std::numeric_limits<double>::infinity()) return m;
  const __m256d mv = _mm256_set1_pd(m);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i,
                     PolyExpVec(_mm256_sub_pd(_mm256_loadu_pd(x + i), mv)));
  }
  for (; i < n; ++i) out[i] = PolyExp(x[i] - m);
  return m;
}

// All tables below are constant-initialized (no dynamic initializers), so
// dispatch resolution is safe even from another TU's static initializer.
constexpr KernelTable kAvx2Generic = {
    &SumRowAvx2,
    &DotAvx2,
    &MaxRowAvx2,
    &MulRowScaledIntoAvx2,
    &AxpyRowAvx2,
    &AxpyMulRowAvx2,
    &AxpyMulMatAvx2,
    &MatVecRowAvx2,
    &MatVecColAvx2,
    &MatVecColMulAvx2,
    &BackwardFusedAvx2,
    &ExpShiftRowAvx2,
    Isa::kAvx2,
    "avx2",
    0};

// Fixed-k tables start from the fully unrolled Tree instantiations, then —
// once K fills at least one 4-lane vector — take this TU's vector kernels
// for the row-sweep ops, where a whole emission/backward row is streamed
// (the horizontal reductions sum/dot/max stay Tree: at k <= 8 their
// log-depth unrolled form beats a vector loop plus lane reduction). The
// choice is constexpr per K, so each (ISA, k) cell is still one fixed
// variant resolved at startup.
template <std::size_t K>
constexpr KernelTable MakeFixed() {
  KernelTable t =
      fixed_k::MakeFixedTable<K>(Isa::kAvx2, fixed_k::kAvx2FixedNames[K]);
  if (K >= 4) {
    t.mul_row_scaled_into = &MulRowScaledIntoAvx2;
    t.axpy_mul_row = &AxpyMulRowAvx2;
    t.axpy_mul_mat = &AxpyMulMatAvx2;
    t.mat_vec_col = &MatVecColAvx2;
    t.mat_vec_col_mul = &MatVecColMulAvx2;
    t.backward_fused = &BackwardFusedAvx2;
    t.exp_shift_row = &ExpShiftRowAvx2;
  }
  return t;
}

template <std::size_t K>
constexpr KernelTable kFixed = MakeFixed<K>();

constexpr internal::IsaTables kTables = {
    &kAvx2Generic,
    {&kAvx2Generic, &kFixed<1>, &kFixed<2>, &kFixed<3>, &kFixed<4>,
     &kFixed<5>, &kFixed<6>, &kFixed<7>, &kFixed<8>}};

}  // namespace

namespace internal {
const IsaTables* Avx2Tables() { return &kTables; }
}  // namespace internal

}  // namespace dhmm::linalg::kernels

#else  // !(__AVX2__ && __FMA__)

namespace dhmm::linalg::kernels::internal {
const IsaTables* Avx2Tables() { return nullptr; }
}  // namespace dhmm::linalg::kernels::internal

#endif
