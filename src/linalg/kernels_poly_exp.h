// Polynomial exp() shared by the vectorized ExpShiftRow variants.
//
// The SIMD kernel variants (kernels_avx2.cc, kernels_avx512.cc) cannot call
// libm's exp per lane without serializing the whole row, so they evaluate
// the classic Cephes rational approximation instead:
//
//   exp(y) = 2^n * (1 + 2 p / (q - p)),  n = floor(y * log2(e) + 0.5),
//   r = y - n (C1 + C2),  p = r P(r^2),  q = Q(r^2),
//
// accurate to ~1-2 ulp on the reduced range, far inside the <= 1e-12
// cross-variant parity budget. PolyExp below is the scalar evaluation of
// that exact operation sequence (every multiply/add/divide separately
// rounded, no FMA anywhere): a vector lane computing the same input through
// the vector ops produces bitwise the same result, so the SIMD variants use
// PolyExp for their remainder tails without breaking their fixed per-element
// semantics. Inputs are the shifted log emissions y = x - max(x) <= 0;
// anything below kPolyExpUnderflow flushes to exactly 0.0 (libm would give
// a denormal there, a <= 1e-308 absolute difference), NaN propagates.
//
// The scalar oracle in kernels.cc keeps calling std::exp — this header is
// deliberately used only by the non-scalar variants. Those TUs are compiled
// with different ISA flags, so PolyExpPow2/PolyExp live in an anonymous
// namespace: ordinary inline functions would get vague (COMDAT) linkage and
// the linker could keep an AVX-512-codegen copy for the AVX2 path (SIGILL
// on AVX2-only CPUs). Internal linkage keeps each TU's copy ISA-consistent;
// the fixed operation order makes every copy bitwise identical anyway.
#ifndef DHMM_LINALG_KERNELS_POLY_EXP_H_
#define DHMM_LINALG_KERNELS_POLY_EXP_H_

#include <cmath>
#include <cstdint>
#include <cstring>

namespace dhmm::linalg::kernels {

// Cephes exp() constants (Moshier, Netlib cephes/cmath/exp.c).
inline constexpr double kPolyExpLog2e = 1.4426950408889634073599;
inline constexpr double kPolyExpC1 = 6.93145751953125e-1;
inline constexpr double kPolyExpC2 = 1.42860682030941723212e-6;
inline constexpr double kPolyExpP0 = 1.26177193074810590878e-4;
inline constexpr double kPolyExpP1 = 3.02994407707441961300e-2;
inline constexpr double kPolyExpP2 = 9.99999999999999999910e-1;
inline constexpr double kPolyExpQ0 = 3.00198505138664455042e-6;
inline constexpr double kPolyExpQ1 = 2.52448340349684104192e-3;
inline constexpr double kPolyExpQ2 = 2.27265548208155028766e-1;
inline constexpr double kPolyExpQ3 = 2.00000000000000000005e0;

/// Flush-to-zero threshold: below this exp() is < 2^-1021 and the variants
/// return exactly 0.0 instead of entering the denormal range.
inline constexpr double kPolyExpUnderflow = -708.0;

namespace {

/// 2^n for integral n in [-1021, 1], via the IEEE-754 exponent field.
inline double PolyExpPow2(long long n) {
  const uint64_t bits = static_cast<uint64_t>(n + 1023) << 52;
  double out;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

/// exp(y) for y <= 0 with the fixed operation order documented above.
/// y < kPolyExpUnderflow returns exactly 0.0; NaN returns NaN.
inline double PolyExp(double y) {
  if (!(y >= kPolyExpUnderflow)) return y < 0.0 ? 0.0 : y;  // 0 or NaN
  const double nf = std::floor(kPolyExpLog2e * y + 0.5);
  double r = y - nf * kPolyExpC1;
  r -= nf * kPolyExpC2;
  const double r2 = r * r;
  const double p = r * ((kPolyExpP0 * r2 + kPolyExpP1) * r2 + kPolyExpP2);
  const double q = ((kPolyExpQ0 * r2 + kPolyExpQ1) * r2 + kPolyExpQ2) * r2 +
                   kPolyExpQ3;
  const double e = 1.0 + 2.0 * p / (q - p);
  return e * PolyExpPow2(static_cast<long long>(nf));
}

}  // namespace

}  // namespace dhmm::linalg::kernels

#endif  // DHMM_LINALG_KERNELS_POLY_EXP_H_
