// Fully unrolled fixed-k kernel instantiations (k <= kMaxFixedK).
//
// The paper's experiments live in the small-k regime (Tables 1-3 use
// k ~ 2..50, the per-domain shapes are k = 5/15/26), where the
// variable-length vector kernels spend most of their time in remainder
// handling: a k = 5 dot never fills even one AVX2 vector. The fixed-k
// variants are templates over K with every loop fully unrolled at compile
// time, reduced in a *balanced binary tree* order:
//
//   reduce(x[0..K)) = reduce(x[0..K/2)) + reduce(x[K/2..K))
//
// (tie-broken left at every split; K = 1 is the element itself). The tree
// order is the documented lane-accumulation contract of these variants:
// it is a compile-time property of the template, independent of the ISA
// flags of the including TU, so the avx2 and avx512 instantiations produce
// bitwise-identical results — the compiler is free to SLP-vectorize the
// unrolled tree precisely because the grouping is already explicit in the
// source (no reassociation needed, strict IEEE semantics preserved).
//
// Elementwise kernels (axpy, mul) keep the scalar per-element operation
// order; ExpShiftRow uses the shared PolyExp evaluation (every element
// independent, see kernels_poly_exp.h). This header is included only by
// the ISA variant TUs — the scalar oracle never routes through it.
//
// Everything below that generates code sits in an anonymous namespace ON
// PURPOSE: the including TUs are compiled with different ISA flags
// (-mavx2 vs -mavx512f), and ordinary template instantiations would get
// vague (COMDAT) linkage — the linker would keep ONE arbitrary copy per
// symbol, so an AVX-512-codegen copy could be linked into the AVX2
// dispatch tables and SIGILL on AVX2-only CPUs. Internal linkage gives
// each variant TU its own ISA-consistent instantiations (distinct
// symbols, never merged). The duplication is intended and the results
// are still bitwise identical across TUs: the tree grouping is explicit
// in the source, so strict IEEE semantics pin every rounding.
#ifndef DHMM_LINALG_KERNELS_FIXED_K_H_
#define DHMM_LINALG_KERNELS_FIXED_K_H_

#include <cstddef>
#include <limits>

#include "linalg/kernels_dispatch.h"
#include "linalg/kernels_poly_exp.h"

namespace dhmm::linalg::kernels::fixed_k {

// Pure constant data (no codegen) — safe to share across the variant TUs,
// so these two stay outside the anonymous namespace below.
/// Display names for the fixed-k tables, indexable by K ([0] = generic).
inline constexpr const char* kAvx2FixedNames[kMaxFixedK + 1] = {
    "avx2",    "avx2/k1", "avx2/k2", "avx2/k3", "avx2/k4",
    "avx2/k5", "avx2/k6", "avx2/k7", "avx2/k8"};
inline constexpr const char* kAvx512FixedNames[kMaxFixedK + 1] = {
    "avx512",    "avx512/k1", "avx512/k2", "avx512/k3", "avx512/k4",
    "avx512/k5", "avx512/k6", "avx512/k7", "avx512/k8"};

namespace {

namespace detail {

// Balanced-tree reductions; the recursion grouping is the documented
// accumulation order.
template <std::size_t K>
struct Tree {
  static constexpr std::size_t kLo = K / 2;
  static constexpr std::size_t kHi = K - kLo;

  static inline double Sum(const double* DHMM_RESTRICT x) {
    return Tree<kLo>::Sum(x) + Tree<kHi>::Sum(x + kLo);
  }
  static inline double Dot(const double* DHMM_RESTRICT x,
                           const double* DHMM_RESTRICT y) {
    return Tree<kLo>::Dot(x, y) + Tree<kHi>::Dot(x + kLo, y + kLo);
  }
  // Ties and NaN resolve like the scalar oracle's running max: a later
  // candidate replaces the current max only on a strict >.
  static inline double Max(const double* DHMM_RESTRICT x) {
    const double a = Tree<kLo>::Max(x);
    const double b = Tree<kHi>::Max(x + kLo);
    return b > a ? b : a;
  }
};

template <>
struct Tree<1> {
  static inline double Sum(const double* DHMM_RESTRICT x) { return x[0]; }
  static inline double Dot(const double* DHMM_RESTRICT x,
                           const double* DHMM_RESTRICT y) {
    return x[0] * y[0];
  }
  static inline double Max(const double* DHMM_RESTRICT x) { return x[0]; }
};

}  // namespace detail

// Function-pointer-compatible wrappers. The trailing size arguments are
// part of the KernelTable signature; ForK(k) only hands out the K table
// for rows of exactly length k, so they are intentionally unused.
template <std::size_t K>
struct FixedK {
  static double SumRow(const double* DHMM_RESTRICT x, std::size_t) {
    return detail::Tree<K>::Sum(x);
  }

  static double Dot(const double* DHMM_RESTRICT x,
                    const double* DHMM_RESTRICT y, std::size_t) {
    return detail::Tree<K>::Dot(x, y);
  }

  static double MaxRow(const double* DHMM_RESTRICT x, std::size_t) {
    return detail::Tree<K>::Max(x);
  }

  static void MulRowScaledInto(const double* DHMM_RESTRICT x,
                               const double* DHMM_RESTRICT y, double s,
                               std::size_t, double* DHMM_RESTRICT out) {
    for (std::size_t i = 0; i < K; ++i) out[i] = x[i] * y[i] * s;
  }

  static void AxpyRow(double s, const double* DHMM_RESTRICT x, std::size_t,
                      double* DHMM_RESTRICT out) {
    for (std::size_t i = 0; i < K; ++i) out[i] += s * x[i];
  }

  static void AxpyMulRow(double s, const double* DHMM_RESTRICT x,
                         const double* DHMM_RESTRICT y, std::size_t,
                         double* DHMM_RESTRICT out) {
    for (std::size_t i = 0; i < K; ++i) out[i] += s * x[i] * y[i];
  }

  // m = n = K; rows with s[i] == 0 are skipped (see kernels.h AxpyMulMat).
  static void AxpyMulMat(const double* DHMM_RESTRICT s,
                         const double* DHMM_RESTRICT a,
                         const double* DHMM_RESTRICT y, std::size_t,
                         std::size_t, double* DHMM_RESTRICT out) {
    for (std::size_t i = 0; i < K; ++i) {
      if (s[i] != 0.0) AxpyMulRow(s[i], a + i * K, y, K, out + i * K);
    }
  }

  // m = n = K: the inference call sites only use the square form.
  static void MatVecRow(const double* DHMM_RESTRICT x,
                        const double* DHMM_RESTRICT a, std::size_t,
                        std::size_t, double* DHMM_RESTRICT out) {
    for (std::size_t j = 0; j < K; ++j) out[j] = 0.0;
    for (std::size_t i = 0; i < K; ++i) {
      const double s = x[i];
      const double* DHMM_RESTRICT row = a + i * K;
      for (std::size_t j = 0; j < K; ++j) out[j] += s * row[j];
    }
  }

  static void MatVecCol(const double* DHMM_RESTRICT a,
                        const double* DHMM_RESTRICT x, std::size_t,
                        std::size_t, double* DHMM_RESTRICT out) {
    for (std::size_t i = 0; i < K; ++i) {
      out[i] = detail::Tree<K>::Dot(a + i * K, x);
    }
  }

  static void MatVecColMul(const double* DHMM_RESTRICT a,
                           const double* DHMM_RESTRICT x,
                           const double* DHMM_RESTRICT w, std::size_t,
                           std::size_t, double* DHMM_RESTRICT out) {
    for (std::size_t i = 0; i < K; ++i) {
      out[i] = detail::Tree<K>::Dot(a + i * K, x) * w[i];
    }
  }

  // m = n = K; bitwise = MatVecCol then AxpyMulMat (see kernels.h).
  static void BackwardFused(const double* DHMM_RESTRICT a,
                            const double* DHMM_RESTRICT u,
                            const double* DHMM_RESTRICT s, std::size_t,
                            std::size_t, double* DHMM_RESTRICT beta_out,
                            double* DHMM_RESTRICT xi) {
    for (std::size_t i = 0; i < K; ++i) {
      const double* DHMM_RESTRICT row = a + i * K;
      beta_out[i] = detail::Tree<K>::Dot(row, u);
      if (s[i] != 0.0) AxpyMulRow(s[i], row, u, K, xi + i * K);
    }
  }

  static double ExpShiftRow(const double* DHMM_RESTRICT x, std::size_t,
                            double* DHMM_RESTRICT out) {
    const double m = detail::Tree<K>::Max(x);
    if (m == -std::numeric_limits<double>::infinity()) return m;
    for (std::size_t i = 0; i < K; ++i) out[i] = PolyExp(x[i] - m);
    return m;
  }
};

/// Builds the (isa, K) table entry; `name` must outlive the table.
/// constexpr so the per-ISA tables are constant-initialized (no static
/// initialization order hazards when dispatch resolves during another
/// TU's static initializer).
template <std::size_t K>
constexpr KernelTable MakeFixedTable(Isa isa, const char* name) {
  KernelTable t{};
  t.sum_row = &FixedK<K>::SumRow;
  t.dot = &FixedK<K>::Dot;
  t.max_row = &FixedK<K>::MaxRow;
  t.mul_row_scaled_into = &FixedK<K>::MulRowScaledInto;
  t.axpy_row = &FixedK<K>::AxpyRow;
  t.axpy_mul_row = &FixedK<K>::AxpyMulRow;
  t.axpy_mul_mat = &FixedK<K>::AxpyMulMat;
  t.mat_vec_row = &FixedK<K>::MatVecRow;
  t.mat_vec_col = &FixedK<K>::MatVecCol;
  t.mat_vec_col_mul = &FixedK<K>::MatVecColMul;
  t.backward_fused = &FixedK<K>::BackwardFused;
  t.exp_shift_row = &FixedK<K>::ExpShiftRow;
  t.isa = isa;
  t.name = name;
  t.fixed_k = K;
  return t;
}

}  // namespace

}  // namespace dhmm::linalg::kernels::fixed_k

#endif  // DHMM_LINALG_KERNELS_FIXED_K_H_
