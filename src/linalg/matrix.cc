#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>

#include "linalg/kernels.h"
#include "linalg/kernels_dispatch.h"
#include "util/string_util.h"

namespace dhmm::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ == 0 ? 0 : init.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    DHMM_CHECK_MSG(row.size() == cols_, "ragged initializer list");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Diagonal(const Vector& diag) {
  Matrix m(diag.size(), diag.size());
  for (size_t i = 0; i < diag.size(); ++i) m(i, i) = diag[i];
  return m;
}

Vector Matrix::Row(size_t r) const {
  DHMM_CHECK(r < rows_);
  Vector v(cols_);
  for (size_t c = 0; c < cols_; ++c) v[c] = (*this)(r, c);
  return v;
}

Vector Matrix::Col(size_t c) const {
  DHMM_CHECK(c < cols_);
  Vector v(rows_);
  for (size_t r = 0; r < rows_; ++r) v[r] = (*this)(r, c);
  return v;
}

void Matrix::SetRow(size_t r, const Vector& v) {
  DHMM_CHECK(r < rows_ && v.size() == cols_);
  for (size_t c = 0; c < cols_; ++c) (*this)(r, c) = v[c];
}

void Matrix::SetCol(size_t c, const Vector& v) {
  DHMM_CHECK(c < cols_ && v.size() == rows_);
  for (size_t r = 0; r < rows_; ++r) (*this)(r, c) = v[r];
}

void Matrix::Fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::Resize(size_t rows, size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
}

Matrix& Matrix::operator+=(const Matrix& other) {
  DHMM_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  DHMM_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::AddScaled(const Matrix& other, double scale) {
  DHMM_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += other.data_[i] * scale;
  }
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

Matrix Matrix::MatMul(const Matrix& other) const {
  DHMM_CHECK(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  // Arbitrary-shape products outside the per-k inference hot path go
  // through the active variable-length table (never the fixed-k ones).
  const kernels::KernelTable& kt = kernels::Active();
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      double a = (*this)(i, k);
      if (a == 0.0) continue;
      kt.axpy_row(a, other.row_data(k), other.cols_, out.row_data(i));
    }
  }
  return out;
}

Vector Matrix::MatVec(const Vector& v) const {
  DHMM_CHECK(cols_ == v.size());
  Vector out(rows_);
  kernels::Active().mat_vec_col(data_.data(), v.data(), rows_, cols_,
                                out.data());
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  kernels::TransposeInto(data_.data(), rows_, cols_, out.data());
  return out;
}

double Matrix::sum() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

double Matrix::frobenius_norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double Matrix::squared_distance(const Matrix& other) const {
  DHMM_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  double s = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    double d = data_[i] - other.data_[i];
    s += d * d;
  }
  return s;
}

bool Matrix::IsRowStochastic(double tol) const {
  for (size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (size_t c = 0; c < cols_; ++c) {
      double v = (*this)(r, c);
      if (v < -tol) return false;
      s += v;
    }
    if (std::fabs(s - 1.0) > tol) return false;
  }
  return true;
}

bool Matrix::IsSymmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (size_t i = 0; i < rows_; ++i)
    for (size_t j = i + 1; j < cols_; ++j)
      if (std::fabs((*this)(i, j) - (*this)(j, i)) > tol) return false;
  return true;
}

void Matrix::NormalizeRows() {
  for (size_t r = 0; r < rows_; ++r) {
    double* row = row_data(r);
    double s = 0.0;
    for (size_t c = 0; c < cols_; ++c) s += row[c];
    if (s > 0.0) {
      for (size_t c = 0; c < cols_; ++c) row[c] /= s;
    } else {
      for (size_t c = 0; c < cols_; ++c) row[c] = 1.0 / cols_;
    }
  }
}

std::string Matrix::ToString(int precision) const {
  std::string out;
  for (size_t r = 0; r < rows_; ++r) {
    out += "[";
    for (size_t c = 0; c < cols_; ++c) {
      out += StrFormat(" %.*f", precision, (*this)(r, c));
    }
    out += " ]\n";
  }
  return out;
}

}  // namespace dhmm::linalg
