// Dense double-precision vector.
#ifndef DHMM_LINALG_VECTOR_H_
#define DHMM_LINALG_VECTOR_H_

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "linalg/aligned.h"
#include "util/check.h"

namespace dhmm::linalg {

/// \brief Dense vector of doubles with bounds-checked (debug) access.
///
/// Storage is 64-byte aligned (linalg/aligned.h) so the kernel layer's
/// contiguous sweeps start on a cache-line boundary.
class Vector {
 public:
  Vector() = default;
  /// Zero-initialized vector of length n.
  explicit Vector(size_t n) : data_(n, 0.0) {}
  /// Constant-filled vector of length n.
  Vector(size_t n, double value) : data_(n, value) {}
  /// From an initializer list, e.g. Vector{1.0, 2.0}.
  Vector(std::initializer_list<double> init) : data_(init) {}
  /// From a std::vector (copies into aligned storage).
  explicit Vector(const std::vector<double>& values)
      : data_(values.begin(), values.end()) {}

  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Changes the length to n. Existing entries are preserved up to min(size,
  /// n); entries beyond the old length are zero. The underlying storage is
  /// reused when capacity allows, so shrink/grow cycles (e.g. inference
  /// workspaces visiting sequences of varying length) do not reallocate once
  /// the high-water mark is reached.
  void Resize(size_t n) { data_.resize(n, 0.0); }

  double operator[](size_t i) const {
    DHMM_DCHECK(i < data_.size());
    return data_[i];
  }
  double& operator[](size_t i) {
    DHMM_DCHECK(i < data_.size());
    return data_[i];
  }

  const double* data() const { return data_.data(); }
  double* data() { return data_.data(); }

  /// Underlying aligned storage (for interop with std algorithms).
  const AlignedBuffer& values() const { return data_; }
  AlignedBuffer& values() { return data_; }

  // --- elementwise / reduction operations ---------------------------------

  /// Sum of entries.
  double sum() const;
  /// Euclidean (L2) norm.
  double norm() const;
  /// Maximum entry; precondition: non-empty.
  double max() const;
  /// Minimum entry; precondition: non-empty.
  double min() const;
  /// Index of the maximum entry; precondition: non-empty.
  size_t argmax() const;
  /// Dot product; sizes must match.
  double dot(const Vector& other) const;

  /// In-place scale.
  Vector& operator*=(double s);
  /// In-place add; sizes must match.
  Vector& operator+=(const Vector& other);
  /// In-place subtract; sizes must match.
  Vector& operator-=(const Vector& other);

  /// Normalizes entries to sum to 1; precondition: sum() > 0.
  void NormalizeToSimplex();

  friend Vector operator+(Vector a, const Vector& b) { return a += b; }
  friend Vector operator-(Vector a, const Vector& b) { return a -= b; }
  friend Vector operator*(Vector a, double s) { return a *= s; }
  friend Vector operator*(double s, Vector a) { return a *= s; }

 private:
  AlignedBuffer data_;
};

}  // namespace dhmm::linalg

#endif  // DHMM_LINALG_VECTOR_H_
