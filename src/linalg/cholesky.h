// Cholesky factorization for symmetric positive-definite matrices.
#ifndef DHMM_LINALG_CHOLESKY_H_
#define DHMM_LINALG_CHOLESKY_H_

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace dhmm::linalg {

/// \brief Cholesky factorization A = L L^T for SPD matrices.
///
/// DPP kernel matrices are PSD by construction; when strictly PD this gives a
/// cheaper and more stable log-determinant than LU, and doubles as a PD test.
class CholeskyDecomposition {
 public:
  /// Attempts the factorization; check ok() before using other accessors.
  explicit CholeskyDecomposition(const Matrix& a);

  /// True when the input was symmetric positive definite (within roundoff).
  bool ok() const { return ok_; }

  /// Lower-triangular factor L. Precondition: ok().
  const Matrix& L() const { return l_; }

  /// log det A = 2 * sum_i log L_ii. Precondition: ok().
  double LogDeterminant() const;

  /// Solves A x = b via two triangular solves. Precondition: ok().
  Vector Solve(const Vector& b) const;

 private:
  Matrix l_;
  bool ok_;
};

}  // namespace dhmm::linalg

#endif  // DHMM_LINALG_CHOLESKY_H_
