// Cholesky factorization for symmetric positive-definite matrices.
#ifndef DHMM_LINALG_CHOLESKY_H_
#define DHMM_LINALG_CHOLESKY_H_

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace dhmm::linalg {

/// \brief Cholesky factorization A = L L^T for SPD matrices.
///
/// DPP kernel matrices are PSD by construction; when strictly PD this gives a
/// cheaper and more stable log-determinant than LU (half the flops, no pivot
/// search), and doubles as a PD test. The M-step hot path factorizes a
/// kernel per line-search probe, so the factor storage is reusable: a
/// default-constructed instance plus FactorizeInto is allocation-free once
/// the grow-only buffer reaches its high-water size.
class CholeskyDecomposition {
 public:
  /// Empty decomposition; call FactorizeInto before any query.
  CholeskyDecomposition() = default;

  /// Attempts the factorization; check ok() before using other accessors.
  explicit CholeskyDecomposition(const Matrix& a) { FactorizeInto(a); }

  /// \brief Refactorizes in place, reusing the factor buffer. Returns ok().
  bool FactorizeInto(const Matrix& a);

  /// True when the input was symmetric positive definite (within roundoff).
  bool ok() const { return ok_; }

  /// Lower-triangular factor L (upper triangle zero). Precondition: ok().
  const Matrix& L() const { return l_; }

  /// log det A = 2 * sum_i log L_ii. Precondition: ok().
  double LogDeterminant() const;

  /// Solves A x = b via two triangular solves. Precondition: ok().
  Vector Solve(const Vector& b) const;

  /// Solves A X = B into caller-owned x (Resize()d; b and x must be
  /// distinct), all right-hand sides advancing together along contiguous
  /// rows. Precondition: ok().
  void SolveInto(const Matrix& b, Matrix* x) const;

 private:
  Matrix l_;
  Vector inv_diag_;  // reciprocal pivots: one divide per row, reused by solves
  bool ok_ = false;
};

}  // namespace dhmm::linalg

#endif  // DHMM_LINALG_CHOLESKY_H_
