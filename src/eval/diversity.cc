#include "eval/diversity.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace dhmm::eval {

double BhattacharyyaCoefficient(const linalg::Vector& p,
                                const linalg::Vector& q) {
  DHMM_CHECK(p.size() == q.size());
  double s = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    DHMM_DCHECK(p[i] >= 0.0 && q[i] >= 0.0);
    s += std::sqrt(p[i] * q[i]);
  }
  return s;
}

double BhattacharyyaDistance(const linalg::Vector& p,
                             const linalg::Vector& q) {
  double bc = BhattacharyyaCoefficient(p, q);
  // Clamp: identical distributions can give 1 + 1e-16 by roundoff.
  bc = std::clamp(bc, 1e-300, 1.0);
  return -std::log(bc);
}

double CosineDistance(const linalg::Vector& p, const linalg::Vector& q) {
  DHMM_CHECK(p.size() == q.size());
  double np = p.norm(), nq = q.norm();
  DHMM_CHECK_MSG(np > 0.0 && nq > 0.0, "cosine distance needs nonzero rows");
  double cos = p.dot(q) / (np * nq);
  return 1.0 - std::clamp(cos, -1.0, 1.0);
}

double RowDistance(const linalg::Matrix& a, size_t i, size_t j,
                   DiversityMeasure measure) {
  switch (measure) {
    case DiversityMeasure::kBhattacharyya:
      return BhattacharyyaDistance(a.Row(i), a.Row(j));
    case DiversityMeasure::kCosine:
      return CosineDistance(a.Row(i), a.Row(j));
  }
  DHMM_CHECK_MSG(false, "unknown diversity measure");
  return 0.0;
}

double AveragePairwiseDiversity(const linalg::Matrix& a,
                                DiversityMeasure measure) {
  const size_t k = a.rows();
  DHMM_CHECK(k >= 2);
  double total = 0.0;
  size_t pairs = 0;
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = i + 1; j < k; ++j) {
      total += RowDistance(a, i, j, measure);
      ++pairs;
    }
  }
  return total / static_cast<double>(pairs);
}

linalg::Vector RowDiversityProfile(const linalg::Matrix& a, size_t row,
                                   DiversityMeasure measure) {
  DHMM_CHECK(row < a.rows());
  linalg::Vector out(a.rows());
  for (size_t j = 0; j < a.rows(); ++j) {
    out[j] = j == row ? 0.0 : RowDistance(a, row, j, measure);
  }
  return out;
}

}  // namespace dhmm::eval
