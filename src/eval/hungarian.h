// Hungarian algorithm for optimal assignment — used to align inferred state
// ids with gold labels for the paper's 1-to-1 accuracy measure.
#ifndef DHMM_EVAL_HUNGARIAN_H_
#define DHMM_EVAL_HUNGARIAN_H_

#include <vector>

#include "linalg/matrix.h"

namespace dhmm::eval {

/// \brief Minimum-cost perfect assignment on an n x m cost matrix (n <= m).
///
/// Returns `assign` with assign[row] = chosen column (all distinct), using
/// the O(n^2 m) potentials/augmenting-path formulation.
std::vector<int> SolveAssignment(const linalg::Matrix& cost);

/// \brief Maximum-total-value assignment (negates and delegates).
std::vector<int> SolveMaxAssignment(const linalg::Matrix& value);

/// Total cost of an assignment under a cost matrix.
double AssignmentCost(const linalg::Matrix& cost,
                      const std::vector<int>& assign);

}  // namespace dhmm::eval

#endif  // DHMM_EVAL_HUNGARIAN_H_
