// Diversity measures over the rows of a stochastic matrix (Figs. 3, 8, 12).
#ifndef DHMM_EVAL_DIVERSITY_H_
#define DHMM_EVAL_DIVERSITY_H_

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace dhmm::eval {

/// Which pairwise distance quantifies "diversity" between two rows.
/// The paper's text uses the Bhattacharyya distance; Fig. 3's axis label says
/// cosine distance — both are provided and produce the same orderings.
enum class DiversityMeasure {
  kBhattacharyya,
  kCosine,
};

/// \brief Bhattacharyya coefficient BC(p, q) = sum_i sqrt(p_i q_i), in [0,1]
/// for distributions; 1 iff p == q.
double BhattacharyyaCoefficient(const linalg::Vector& p,
                                const linalg::Vector& q);

/// \brief Bhattacharyya distance -log BC(p, q) (0 when identical).
double BhattacharyyaDistance(const linalg::Vector& p, const linalg::Vector& q);

/// \brief Cosine distance 1 - <p, q> / (|p| |q|).
double CosineDistance(const linalg::Vector& p, const linalg::Vector& q);

/// Pairwise row distance under the chosen measure.
double RowDistance(const linalg::Matrix& a, size_t i, size_t j,
                   DiversityMeasure measure);

/// \brief Average pairwise distance over all row pairs (the Fig. 3 metric).
double AveragePairwiseDiversity(
    const linalg::Matrix& a,
    DiversityMeasure measure = DiversityMeasure::kBhattacharyya);

/// \brief Distances from one row to every other row (Figs. 8, 12): entry j is
/// the distance between rows `row` and j; entry `row` itself is 0.
linalg::Vector RowDiversityProfile(
    const linalg::Matrix& a, size_t row,
    DiversityMeasure measure = DiversityMeasure::kBhattacharyya);

}  // namespace dhmm::eval

#endif  // DHMM_EVAL_DIVERSITY_H_
