// K-fold cross-validation splitting (the OCR experiments use 10-fold CV)
// and a deterministic parallel fold evaluator.
#ifndef DHMM_EVAL_CROSSVAL_H_
#define DHMM_EVAL_CROSSVAL_H_

#include <functional>
#include <vector>

#include "core/batch_mstep.h"
#include "prob/rng.h"

namespace dhmm::eval {

/// One train/test split by example index.
struct Fold {
  std::vector<size_t> train;
  std::vector<size_t> test;
};

/// \brief Shuffled k-fold split of n examples. Every index appears in exactly
/// one test fold; folds differ in size by at most one.
std::vector<Fold> KFoldSplit(size_t n, size_t k, prob::Rng& rng);

/// Gathers the subset of a dataset selected by indices.
template <typename T>
std::vector<T> Subset(const std::vector<T>& data,
                      const std::vector<size_t>& indices) {
  std::vector<T> out;
  out.reserve(indices.size());
  for (size_t i : indices) out.push_back(data[i]);
  return out;
}

/// Trains and scores one fold; `ws` is the claiming worker's persistent
/// M-step workspace (pass it to FitSupervisedDiversified /
/// FitDiversifiedHmm). Must depend only on `fold` and must not mutate
/// shared state.
using FoldFn =
    std::function<double(size_t fold, core::TransitionUpdateWorkspace& ws)>;

/// \brief Evaluates `num_folds` independent folds across a
/// core::BatchMStepDriver and returns the per-fold scores in fold order.
///
/// Each fold's score lands in its own slot, so the returned vector is
/// bitwise identical for every driver thread count.
std::vector<double> EvaluateFolds(core::BatchMStepDriver* driver,
                                  size_t num_folds, const FoldFn& fold_fn);

}  // namespace dhmm::eval

#endif  // DHMM_EVAL_CROSSVAL_H_
