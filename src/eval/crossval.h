// K-fold cross-validation splitting (the OCR experiments use 10-fold CV).
#ifndef DHMM_EVAL_CROSSVAL_H_
#define DHMM_EVAL_CROSSVAL_H_

#include <vector>

#include "prob/rng.h"

namespace dhmm::eval {

/// One train/test split by example index.
struct Fold {
  std::vector<size_t> train;
  std::vector<size_t> test;
};

/// \brief Shuffled k-fold split of n examples. Every index appears in exactly
/// one test fold; folds differ in size by at most one.
std::vector<Fold> KFoldSplit(size_t n, size_t k, prob::Rng& rng);

/// Gathers the subset of a dataset selected by indices.
template <typename T>
std::vector<T> Subset(const std::vector<T>& data,
                      const std::vector<size_t>& indices) {
  std::vector<T> out;
  out.reserve(indices.size());
  for (size_t i : indices) out.push_back(data[i]);
  return out;
}

}  // namespace dhmm::eval

#endif  // DHMM_EVAL_CROSSVAL_H_
