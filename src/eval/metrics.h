// Sequential-labeling accuracy metrics and state statistics.
#ifndef DHMM_EVAL_METRICS_H_
#define DHMM_EVAL_METRICS_H_

#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace dhmm::eval {

/// Frame-aligned predicted and gold label sequences.
using LabelSequences = std::vector<std::vector<int>>;

/// \brief Confusion counts: confusion(p, g) = #frames predicted p, gold g.
linalg::Matrix BuildConfusion(const LabelSequences& predicted,
                              const LabelSequences& gold, size_t k);

/// Result of an aligned accuracy computation.
struct AlignedAccuracy {
  double accuracy = 0.0;       ///< fraction of frames correct after mapping
  std::vector<int> mapping;    ///< mapping[predicted_state] = gold_state
};

/// \brief 1-to-1 accuracy: the best bijective relabeling of predicted states,
/// found with the Hungarian algorithm on the confusion matrix (the paper's
/// measure for the toy and PoS experiments).
AlignedAccuracy OneToOneAccuracy(const LabelSequences& predicted,
                                 const LabelSequences& gold, size_t k);

/// \brief Many-to-1 accuracy: each predicted state maps to its most frequent
/// gold label (the laxer standard PoS measure, reported alongside).
AlignedAccuracy ManyToOneAccuracy(const LabelSequences& predicted,
                                  const LabelSequences& gold, size_t k);

/// \brief Plain per-frame accuracy without relabeling (supervised setting).
double FrameAccuracy(const LabelSequences& predicted,
                     const LabelSequences& gold);

/// \brief Frequency of each state in a set of label sequences (Fig. 4).
linalg::Vector StateHistogram(const LabelSequences& labels, size_t k);

/// \brief Number of states whose frequency reaches `threshold` (Fig. 5's
/// "#states identified with sigma_F").
int CountEffectiveStates(const linalg::Vector& histogram, double threshold);

/// Mean and standard deviation of a sample.
struct MeanStd {
  double mean = 0.0;
  double std = 0.0;
};
MeanStd ComputeMeanStd(const std::vector<double>& values);

}  // namespace dhmm::eval

#endif  // DHMM_EVAL_METRICS_H_
