#include "eval/metrics.h"

#include <cmath>

#include "eval/hungarian.h"
#include "util/check.h"

namespace dhmm::eval {

linalg::Matrix BuildConfusion(const LabelSequences& predicted,
                              const LabelSequences& gold, size_t k) {
  DHMM_CHECK(predicted.size() == gold.size());
  linalg::Matrix confusion(k, k);
  for (size_t s = 0; s < predicted.size(); ++s) {
    DHMM_CHECK(predicted[s].size() == gold[s].size());
    for (size_t t = 0; t < predicted[s].size(); ++t) {
      int p = predicted[s][t];
      int g = gold[s][t];
      DHMM_CHECK(p >= 0 && static_cast<size_t>(p) < k);
      DHMM_CHECK(g >= 0 && static_cast<size_t>(g) < k);
      confusion(static_cast<size_t>(p), static_cast<size_t>(g)) += 1.0;
    }
  }
  return confusion;
}

AlignedAccuracy OneToOneAccuracy(const LabelSequences& predicted,
                                 const LabelSequences& gold, size_t k) {
  linalg::Matrix confusion = BuildConfusion(predicted, gold, k);
  double total = confusion.sum();
  DHMM_CHECK_MSG(total > 0.0, "no frames to score");
  AlignedAccuracy out;
  out.mapping = SolveMaxAssignment(confusion);
  double correct = 0.0;
  for (size_t p = 0; p < k; ++p) {
    correct += confusion(p, static_cast<size_t>(out.mapping[p]));
  }
  out.accuracy = correct / total;
  return out;
}

AlignedAccuracy ManyToOneAccuracy(const LabelSequences& predicted,
                                  const LabelSequences& gold, size_t k) {
  linalg::Matrix confusion = BuildConfusion(predicted, gold, k);
  double total = confusion.sum();
  DHMM_CHECK_MSG(total > 0.0, "no frames to score");
  AlignedAccuracy out;
  out.mapping.resize(k);
  double correct = 0.0;
  for (size_t p = 0; p < k; ++p) {
    size_t best = p;
    double best_count = -1.0;
    for (size_t g = 0; g < k; ++g) {
      if (confusion(p, g) > best_count) {
        best_count = confusion(p, g);
        best = g;
      }
    }
    out.mapping[p] = static_cast<int>(best);
    correct += best_count;
  }
  out.accuracy = correct / total;
  return out;
}

double FrameAccuracy(const LabelSequences& predicted,
                     const LabelSequences& gold) {
  DHMM_CHECK(predicted.size() == gold.size());
  size_t total = 0, correct = 0;
  for (size_t s = 0; s < predicted.size(); ++s) {
    DHMM_CHECK(predicted[s].size() == gold[s].size());
    for (size_t t = 0; t < predicted[s].size(); ++t) {
      ++total;
      if (predicted[s][t] == gold[s][t]) ++correct;
    }
  }
  DHMM_CHECK(total > 0);
  return static_cast<double>(correct) / static_cast<double>(total);
}

linalg::Vector StateHistogram(const LabelSequences& labels, size_t k) {
  linalg::Vector hist(k);
  for (const auto& seq : labels) {
    for (int s : seq) {
      DHMM_CHECK(s >= 0 && static_cast<size_t>(s) < k);
      hist[static_cast<size_t>(s)] += 1.0;
    }
  }
  return hist;
}

int CountEffectiveStates(const linalg::Vector& histogram, double threshold) {
  int count = 0;
  for (size_t i = 0; i < histogram.size(); ++i) {
    if (histogram[i] >= threshold) ++count;
  }
  return count;
}

MeanStd ComputeMeanStd(const std::vector<double>& values) {
  DHMM_CHECK(!values.empty());
  MeanStd out;
  for (double v : values) out.mean += v;
  out.mean /= static_cast<double>(values.size());
  if (values.size() > 1) {
    double ss = 0.0;
    for (double v : values) ss += (v - out.mean) * (v - out.mean);
    out.std = std::sqrt(ss / static_cast<double>(values.size() - 1));
  }
  return out;
}

}  // namespace dhmm::eval
