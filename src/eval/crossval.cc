#include "eval/crossval.h"

#include "util/check.h"

namespace dhmm::eval {

std::vector<Fold> KFoldSplit(size_t n, size_t k, prob::Rng& rng) {
  DHMM_CHECK(k >= 2 && k <= n);
  std::vector<size_t> perm = rng.Permutation(n);
  std::vector<Fold> folds(k);
  // Test-fold membership for index perm[i] is i % k; others go to train.
  for (size_t f = 0; f < k; ++f) {
    for (size_t i = 0; i < n; ++i) {
      if (i % k == f) {
        folds[f].test.push_back(perm[i]);
      } else {
        folds[f].train.push_back(perm[i]);
      }
    }
  }
  return folds;
}

std::vector<double> EvaluateFolds(core::BatchMStepDriver* driver,
                                  size_t num_folds, const FoldFn& fold_fn) {
  DHMM_CHECK(driver != nullptr && fold_fn != nullptr);
  std::vector<double> scores(num_folds);
  driver->Run(num_folds,
              [&](core::TransitionUpdateWorkspace& ws, size_t fold) {
                scores[fold] = fold_fn(fold, ws);
              });
  return scores;
}

}  // namespace dhmm::eval
