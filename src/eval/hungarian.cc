#include "eval/hungarian.h"

#include <cmath>
#include <limits>

#include "util/check.h"

namespace dhmm::eval {

std::vector<int> SolveAssignment(const linalg::Matrix& cost) {
  const size_t n = cost.rows();
  const size_t m = cost.cols();
  DHMM_CHECK_MSG(n <= m, "assignment needs rows <= cols");
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // Potentials u (rows) and v (cols); p[col] = row matched to col; 1-based
  // internally with column 0 as the virtual source.
  std::vector<double> u(n + 1, 0.0), v(m + 1, 0.0);
  std::vector<size_t> p(m + 1, 0), way(m + 1, 0);
  for (size_t i = 1; i <= n; ++i) {
    p[0] = i;
    size_t j0 = 0;
    std::vector<double> minv(m + 1, kInf);
    std::vector<char> used(m + 1, 0);
    do {
      used[j0] = 1;
      size_t i0 = p[j0], j1 = 0;
      double delta = kInf;
      for (size_t j = 1; j <= m; ++j) {
        if (used[j]) continue;
        double cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (size_t j = 0; j <= m; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    // Augment along the path.
    do {
      size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<int> assign(n, -1);
  for (size_t j = 1; j <= m; ++j) {
    if (p[j] != 0) assign[p[j] - 1] = static_cast<int>(j - 1);
  }
  for (int a : assign) DHMM_CHECK(a >= 0);
  return assign;
}

std::vector<int> SolveMaxAssignment(const linalg::Matrix& value) {
  linalg::Matrix neg = value;
  neg *= -1.0;
  return SolveAssignment(neg);
}

double AssignmentCost(const linalg::Matrix& cost,
                      const std::vector<int>& assign) {
  DHMM_CHECK(assign.size() == cost.rows());
  double total = 0.0;
  for (size_t r = 0; r < assign.size(); ++r) {
    DHMM_CHECK(assign[r] >= 0 && static_cast<size_t>(assign[r]) < cost.cols());
    total += cost(r, static_cast<size_t>(assign[r]));
  }
  return total;
}

}  // namespace dhmm::eval
