// Synthetic handwritten-character dataset for the supervised OCR experiment
// (paper §4.2.2).
//
// Substitution note (see DESIGN.md §4): the Kassel/Taskar handwritten-letter
// corpus is not available offline. This generator preserves the properties
// the experiment depends on: 16x8 binary glyphs of the 26 lowercase letters
// (flattened to 128-dim binary vectors), per-sample pixel noise and spatial
// jitter standing in for handwriting variability, and words drawn from an
// English word list so the letter-transition matrix carries real bigram
// signal (the 'm'->'a'/'b' vs 'n'->'d'/'g' structure the paper highlights).
#ifndef DHMM_DATA_OCR_H_
#define DHMM_DATA_OCR_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "hmm/sequence.h"
#include "prob/bernoulli_emission.h"
#include "prob/rng.h"

namespace dhmm::data {

/// Glyph raster dimensions (paper: 16 x 8 binary images).
inline constexpr size_t kGlyphRows = 16;
inline constexpr size_t kGlyphCols = 8;
inline constexpr size_t kGlyphDims = kGlyphRows * kGlyphCols;  // 128
inline constexpr size_t kNumLetters = 26;

/// \brief Clean 16x8 template for letter index 0..25 ('a'..'z').
const prob::BinaryObs& GlyphTemplate(size_t letter);

/// \brief The built-in lowercase word list (lengths 1..14) used to sample
/// letter sequences with realistic English bigram structure.
const std::vector<std::string>& WordList();

/// Options for dataset generation.
struct OcrOptions {
  size_t num_words = 6877;   ///< paper's corpus size
  double pixel_flip = 0.08;  ///< Bernoulli pixel noise probability
  int max_jitter = 1;        ///< uniform +-pixels of translation per glyph
  uint64_t seed = 7;
};

/// A generated OCR dataset.
struct OcrDataset {
  /// One sequence per word; obs are 128-dim binary vectors, labels are letter
  /// indices 0..25.
  hmm::Dataset<prob::BinaryObs> words;
};

/// \brief Renders a word (letter indices) to noisy glyph observations.
hmm::Sequence<prob::BinaryObs> RenderWord(const std::string& word,
                                          const OcrOptions& options,
                                          prob::Rng& rng);

/// \brief Samples `num_words` words (with replacement, Zipf-weighted toward
/// common words) and renders each with independent noise.
OcrDataset GenerateOcrDataset(const OcrOptions& options);

/// \brief ASCII rendering of one 128-dim observation (16 lines of 8 chars).
std::string RenderGlyphAscii(const prob::BinaryObs& obs);

/// \brief Side-by-side ASCII rendering of a whole word (Table 3 style).
std::string RenderWordAscii(const std::vector<prob::BinaryObs>& glyphs);

/// Letter index -> char and back.
inline char LetterChar(int index) { return static_cast<char>('a' + index); }
inline int LetterIndex(char c) { return c - 'a'; }

/// Converts a label sequence to its word string.
std::string LabelsToWord(const std::vector<int>& labels);

}  // namespace dhmm::data

#endif  // DHMM_DATA_OCR_H_
