// Synthetic WSJ-like corpus for the unsupervised PoS tagging experiment
// (paper §4.2.1).
//
// Substitution note (see DESIGN.md §4): the Penn Treebank WSJ corpus is
// licensed and unavailable offline. This generator reproduces the statistical
// properties the experiment depends on: the paper's 15 merged tags with the
// exact Table-2 frequency profile, sparse linguistically-structured tag
// transitions, Zipf-distributed per-tag vocabularies with cross-tag lexical
// ambiguity, and sentence lengths in the paper's 2..250 range.
#ifndef DHMM_DATA_POS_CORPUS_H_
#define DHMM_DATA_POS_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "hmm/model.h"
#include "hmm/sequence.h"
#include "prob/categorical_emission.h"

namespace dhmm::data {

/// The paper's 15 merged tag classes (Table 2).
inline constexpr size_t kNumPosTags = 15;

/// One row of the paper's Table 2, after tag merging.
struct PosTagInfo {
  int index;               ///< 1-based tag index used in the paper
  const char* name;        ///< representative name of the merged class
  const char* members;     ///< original WSJ tags merged into this class
  int paper_frequency;     ///< summed WSJ frequency from Table 2
};

/// \brief The merged Table-2 inventory (15 rows, paper frequencies).
const std::vector<PosTagInfo>& PaperPosTagTable();

/// Options for corpus generation.
struct PosCorpusOptions {
  size_t num_sentences = 1000;  ///< paper uses 3828
  size_t vocab_size = 2000;     ///< paper's corpus has ~10K
  size_t min_length = 2;        ///< paper: lengths 2..250
  size_t max_length = 250;
  double mean_length = 24.0;    ///< matches WSJ's ~93.6K tokens / 3828 sents
  /// Fraction of each tag's emission mass spent on a shared ambiguous block
  /// of words (lexical ambiguity is what makes unsupervised tagging hard).
  double ambiguity = 0.25;
  /// Zipf exponent for within-tag word frequencies (long-tail emissions).
  double zipf_exponent = 1.1;
  uint64_t seed = 42;
};

/// A generated corpus plus its generating model.
struct PosCorpus {
  hmm::Dataset<int> sentences;          ///< labels = gold tag ids (0-based)
  size_t vocab_size = 0;
  std::vector<std::string> tag_names;   ///< 15 names, index-aligned
  hmm::HmmModel<int> ground_truth;      ///< the generating HMM
};

/// \brief Builds the ground-truth tagging HMM (without sampling sentences).
///
/// The transition matrix mixes hand-specified linguistic preferences
/// (DET->NOUN, MODAL->VERB, ADJ->NOUN, ...) with the Table-2 frequency
/// profile so that the stationary tag distribution tracks the paper's
/// skewed long-tail histogram (Fig. 9's "ground-truth" curve).
hmm::HmmModel<int> BuildPosGroundTruth(const PosCorpusOptions& options,
                                       prob::Rng& rng);

/// \brief Samples a corpus from the ground truth.
PosCorpus GeneratePosCorpus(const PosCorpusOptions& options);

}  // namespace dhmm::data

#endif  // DHMM_DATA_POS_CORPUS_H_
