// The simulated experiment of paper §4.1: a 5-state HMM with single-mode
// Gaussian emissions.
//
// pi and the emission parameters are the paper's exact values. The paper
// shows its ground-truth transition matrix only as bar charts (Fig. 2a); we
// use a cyclic-dominant diverse matrix calibrated so its average pairwise
// Bhattacharyya row distance matches the paper's reported ground-truth
// diversity of ~0.531 (the green line in Fig. 3).
#ifndef DHMM_DATA_TOY_H_
#define DHMM_DATA_TOY_H_

#include "hmm/model.h"
#include "hmm/sequence.h"
#include "prob/gaussian_emission.h"
#include "prob/rng.h"

namespace dhmm::data {

/// Ground-truth parameter set for the toy experiment.
struct ToyParams {
  linalg::Vector pi;     ///< (0.0101, 0.0912, 0.2421, 0.0652, 0.5914)
  linalg::Matrix a;      ///< 5 x 5 diverse transition matrix
  linalg::Vector mu;     ///< (1, 2, 3, 4, 5)
  linalg::Vector sigma;  ///< all `sigma` (paper default 0.025)
};

/// Number of hidden states in the toy problem.
inline constexpr size_t kToyStates = 5;

/// \brief The paper's §4.1 ground truth with emission std `sigma`.
/// Fig. 3/5 sweep sigma as 0.025 + 0.1 * (idx - 1), idx = 1..50.
ToyParams ToyGroundTruth(double sigma = 0.025);

/// \brief The ground truth packaged as a ready-to-sample model.
hmm::HmmModel<double> ToyGroundTruthModel(double sigma = 0.025);

/// \brief Samples the paper's dataset: `num_sequences` sequences of fixed
/// length `length` (paper: 300 sequences of length 6).
hmm::Dataset<double> GenerateToyDataset(double sigma, size_t num_sequences,
                                        size_t length, prob::Rng& rng);

/// \brief Random EM starting point matching the paper's initialization:
/// pi and rows of A from Dir(3,...,3); mu from a Gaussian; sigma from a
/// Gamma distribution.
hmm::HmmModel<double> ToyRandomInit(prob::Rng& rng,
                                    double dirichlet_concentration = 3.0);

}  // namespace dhmm::data

#endif  // DHMM_DATA_TOY_H_
