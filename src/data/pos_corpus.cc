#include "data/pos_corpus.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>

#include "hmm/sampler.h"
#include "util/check.h"

namespace dhmm::data {

namespace {

// Tag order used throughout (0-based); mirrors Table 2's merged classes.
enum Tag : size_t {
  kNoun = 0, kPunct, kNum, kAdj, kModal, kVerb, kDet, kPrep, kFw, kAdv,
  kIntj, kPron, kPos, kEx, kRp,
};

// Hand-specified next-tag preferences (sparse linguistic structure). Each
// inner list is {tag, weight}; weights within a row sum to 1.
const std::vector<std::vector<std::pair<size_t, double>>>& Preferences() {
  static const std::vector<std::vector<std::pair<size_t, double>>> prefs = {
      /*NOUN*/ {{kVerb, .25}, {kPunct, .22}, {kPrep, .22}, {kNoun, .18},
                {kPos, .07}, {kAdv, .06}},
      /*PUNCT*/ {{kNoun, .25}, {kDet, .20}, {kPrep, .15}, {kPron, .12},
                 {kVerb, .08}, {kAdj, .07}, {kAdv, .06}, {kNum, .07}},
      /*NUM*/ {{kNoun, .50}, {kPunct, .20}, {kPrep, .15}, {kNum, .15}},
      /*ADJ*/ {{kNoun, .60}, {kAdj, .12}, {kPunct, .10}, {kPrep, .10},
               {kVerb, .08}},
      /*MODAL*/ {{kVerb, .70}, {kAdv, .15}, {kPron, .05}, {kDet, .05},
                 {kNoun, .05}},
      /*VERB*/ {{kDet, .25}, {kPrep, .20}, {kNoun, .15}, {kVerb, .12},
                {kAdv, .10}, {kAdj, .08}, {kPunct, .10}},
      /*DET*/ {{kNoun, .62}, {kAdj, .25}, {kNum, .08}, {kAdv, .05}},
      /*PREP*/ {{kDet, .35}, {kNoun, .30}, {kNum, .10}, {kAdj, .10},
                {kPron, .08}, {kPunct, .07}},
      /*FW*/ {{kNoun, .40}, {kPunct, .30}, {kPrep, .30}},
      /*ADV*/ {{kVerb, .30}, {kAdj, .20}, {kPunct, .18}, {kPrep, .12},
               {kAdv, .10}, {kDet, .10}},
      /*INTJ*/ {{kPunct, .60}, {kNoun, .20}, {kPron, .20}},
      /*PRON*/ {{kVerb, .45}, {kModal, .12}, {kNoun, .25}, {kPunct, .10},
                {kAdv, .08}},
      /*POS*/ {{kNoun, .70}, {kAdj, .20}, {kNum, .10}},
      /*EX*/ {{kVerb, .80}, {kModal, .20}},
      /*RP*/ {{kDet, .30}, {kNoun, .25}, {kPrep, .25}, {kPunct, .20}},
  };
  return prefs;
}

// Sentence-initial preferences.
const std::vector<std::pair<size_t, double>>& InitialPreferences() {
  static const std::vector<std::pair<size_t, double>> prefs = {
      {kNoun, .28}, {kDet, .23}, {kPrep, .12}, {kPron, .10}, {kAdv, .08},
      {kAdj, .05},  {kVerb, .04}, {kNum, .04}, {kPunct, .03}, {kModal, .02},
      {kEx, .01},
  };
  return prefs;
}

linalg::Vector PaperFrequencyDistribution() {
  const auto& table = PaperPosTagTable();
  linalg::Vector freq(kNumPosTags);
  for (const auto& row : table) {
    freq[static_cast<size_t>(row.index - 1)] =
        static_cast<double>(row.paper_frequency);
  }
  freq.NormalizeToSimplex();
  return freq;
}

// Zipf weights over m ranks with the given exponent.
linalg::Vector ZipfWeights(size_t m, double exponent) {
  DHMM_CHECK(m > 0);
  linalg::Vector w(m);
  for (size_t r = 0; r < m; ++r) {
    w[r] = 1.0 / std::pow(static_cast<double>(r + 1), exponent);
  }
  w.NormalizeToSimplex();
  return w;
}

size_t SampleLength(const PosCorpusOptions& options, prob::Rng& rng) {
  // Geometric tail above the minimum length, clamped to the paper's range.
  double mean_extra = std::max(
      1.0, options.mean_length - static_cast<double>(options.min_length));
  double p = 1.0 / mean_extra;
  double u = rng.Uniform();
  size_t extra =
      static_cast<size_t>(std::floor(std::log1p(-u) / std::log1p(-p)));
  return std::min(options.max_length, options.min_length + extra);
}

}  // namespace

const std::vector<PosTagInfo>& PaperPosTagTable() {
  static const std::vector<PosTagInfo> table = {
      {1, "NOUN", "NNP NNPS NNS NN SYM", 28866},
      {2, "PUNCT", ", -- '' : . $ ( ) LS #", 11727},
      {3, "NUM", "CD", 3546},
      {4, "ADJ", "JJS JJ JJR", 6397},
      {5, "MODAL", "MD", 927},
      {6, "VERB", "VBZ VB VBG VBD VBN VBP VBG|NN", 12637},
      {7, "DET", "DT PDT", 8192},
      {8, "PREP", "IN CC TO", 14403},
      {9, "FW", "FW", 4},
      {10, "ADV", "WRB RB RBS RBR", 3178},
      {11, "INTJ", "UH", 3},
      {12, "PRON", "WP WP$ PRP PRP$", 2737},
      {13, "POS", "POS", 824},
      {14, "EX", "EX", 88},
      {15, "RP", "RP", 107},
  };
  return table;
}

hmm::HmmModel<int> BuildPosGroundTruth(const PosCorpusOptions& options,
                                       prob::Rng& rng) {
  (void)rng;  // reserved for future stochastic structure variation
  const size_t k = kNumPosTags;
  const linalg::Vector freq = PaperFrequencyDistribution();

  // Transition matrix: 0.55 linguistic preference + 0.45 frequency profile.
  // The frequency component keeps the chain ergodic and pins the stationary
  // distribution near the Table-2 histogram.
  constexpr double kStructWeight = 0.55;
  linalg::Matrix a(k, k);
  const auto& prefs = Preferences();
  DHMM_CHECK(prefs.size() == k);
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) {
      a(i, j) = (1.0 - kStructWeight) * freq[j];
    }
    for (const auto& [j, w] : prefs[i]) a(i, j) += kStructWeight * w;
  }
  a.NormalizeRows();

  // Initial distribution: 0.7 sentence-initial preference + 0.3 frequency.
  linalg::Vector pi(k);
  for (size_t j = 0; j < k; ++j) pi[j] = 0.3 * freq[j];
  for (const auto& [j, w] : InitialPreferences()) pi[j] += 0.7 * w;
  pi.NormalizeToSimplex();

  // Emissions: each tag owns a block of word ids sized by its frequency
  // share (minimum 2), except PUNCT which is capped at a handful of symbols;
  // a shared ambiguous block receives `ambiguity` of every tag's mass.
  const size_t v = options.vocab_size;
  DHMM_CHECK_MSG(v >= 20 * k, "vocab too small for 15 tag blocks");
  const size_t shared = std::max<size_t>(10, v / 10);
  size_t assignable = v - shared;
  std::vector<size_t> block_size(k);
  size_t used = 0;
  for (size_t i = 0; i < k; ++i) {
    block_size[i] = std::max<size_t>(
        2, static_cast<size_t>(std::floor(freq[i] * assignable)));
    if (i == kPunct) block_size[i] = std::min<size_t>(block_size[i], 15);
    used += block_size[i];
  }
  // Give leftover ids to NOUN (the heaviest, longest-tail class).
  DHMM_CHECK(used <= assignable);
  block_size[kNoun] += assignable - used;

  linalg::Matrix b(k, v);
  linalg::Vector shared_zipf = ZipfWeights(shared, options.zipf_exponent);
  size_t offset = shared;  // word ids [0, shared) are the ambiguous block
  for (size_t i = 0; i < k; ++i) {
    linalg::Vector own = ZipfWeights(block_size[i], options.zipf_exponent);
    for (size_t r = 0; r < block_size[i]; ++r) {
      b(i, offset + r) = (1.0 - options.ambiguity) * own[r];
    }
    for (size_t r = 0; r < shared; ++r) {
      b(i, r) += options.ambiguity * shared_zipf[r];
    }
    offset += block_size[i];
  }
  DHMM_CHECK(offset == v);
  b.NormalizeRows();

  return hmm::HmmModel<int>(
      std::move(pi), std::move(a),
      std::make_unique<prob::CategoricalEmission>(std::move(b)));
}

PosCorpus GeneratePosCorpus(const PosCorpusOptions& options) {
  prob::Rng rng(options.seed);
  PosCorpus corpus;
  corpus.vocab_size = options.vocab_size;
  corpus.ground_truth = BuildPosGroundTruth(options, rng);
  for (const auto& row : PaperPosTagTable()) {
    corpus.tag_names.emplace_back(row.name);
  }
  corpus.sentences.reserve(options.num_sentences);
  for (size_t n = 0; n < options.num_sentences; ++n) {
    size_t len = SampleLength(options, rng);
    corpus.sentences.push_back(
        hmm::SampleSequence(corpus.ground_truth, len, rng));
  }
  return corpus;
}

}  // namespace dhmm::data
