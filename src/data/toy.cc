#include "data/toy.h"

#include <memory>

#include "hmm/sampler.h"

namespace dhmm::data {

ToyParams ToyGroundTruth(double sigma) {
  DHMM_CHECK(sigma > 0.0);
  ToyParams p;
  p.pi = linalg::Vector{0.0101, 0.0912, 0.2421, 0.0652, 0.5914};
  // Cyclic-dominant rows: state i prefers state (i+1) mod 5. Average pairwise
  // Bhattacharyya distance ~0.53, matching the paper's ground-truth line.
  p.a = linalg::Matrix{
      {0.0250, 0.7500, 0.1100, 0.0700, 0.0450},
      {0.0450, 0.0250, 0.7500, 0.1100, 0.0700},
      {0.0700, 0.0450, 0.0250, 0.7500, 0.1100},
      {0.1100, 0.0700, 0.0450, 0.0250, 0.7500},
      {0.7500, 0.1100, 0.0700, 0.0450, 0.0250},
  };
  p.mu = linalg::Vector{1.0, 2.0, 3.0, 4.0, 5.0};
  p.sigma = linalg::Vector(kToyStates, sigma);
  return p;
}

hmm::HmmModel<double> ToyGroundTruthModel(double sigma) {
  ToyParams p = ToyGroundTruth(sigma);
  return hmm::HmmModel<double>(
      p.pi, p.a, std::make_unique<prob::GaussianEmission>(p.mu, p.sigma));
}

hmm::Dataset<double> GenerateToyDataset(double sigma, size_t num_sequences,
                                        size_t length, prob::Rng& rng) {
  hmm::HmmModel<double> model = ToyGroundTruthModel(sigma);
  return hmm::SampleDataset(model, num_sequences, length, rng);
}

hmm::HmmModel<double> ToyRandomInit(prob::Rng& rng,
                                    double dirichlet_concentration) {
  linalg::Vector pi = rng.DirichletSymmetric(kToyStates,
                                             dirichlet_concentration);
  linalg::Matrix a = rng.RandomStochasticMatrix(kToyStates, kToyStates,
                                                dirichlet_concentration);
  auto emission = std::make_unique<prob::GaussianEmission>(
      prob::GaussianEmission::RandomInit(kToyStates, rng));
  return hmm::HmmModel<double>(std::move(pi), std::move(a),
                               std::move(emission));
}

}  // namespace dhmm::data
