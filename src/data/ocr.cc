#include "data/ocr.h"

#include <cmath>

#include "util/check.h"

namespace dhmm::data {

namespace {

// Applies integer translation (dy, dx) to a glyph; pixels shifted in from
// outside the raster are 0.
prob::BinaryObs Translate(const prob::BinaryObs& glyph, int dy, int dx) {
  prob::BinaryObs out(kGlyphDims, 0);
  for (size_t r = 0; r < kGlyphRows; ++r) {
    for (size_t c = 0; c < kGlyphCols; ++c) {
      int sr = static_cast<int>(r) - dy;
      int sc = static_cast<int>(c) - dx;
      if (sr >= 0 && sr < static_cast<int>(kGlyphRows) && sc >= 0 &&
          sc < static_cast<int>(kGlyphCols)) {
        out[r * kGlyphCols + c] =
            glyph[static_cast<size_t>(sr) * kGlyphCols +
                  static_cast<size_t>(sc)];
      }
    }
  }
  return out;
}

}  // namespace

hmm::Sequence<prob::BinaryObs> RenderWord(const std::string& word,
                                          const OcrOptions& options,
                                          prob::Rng& rng) {
  DHMM_CHECK(!word.empty());
  DHMM_CHECK(options.pixel_flip >= 0.0 && options.pixel_flip < 0.5);
  hmm::Sequence<prob::BinaryObs> seq;
  seq.obs.reserve(word.size());
  seq.labels.reserve(word.size());
  for (char ch : word) {
    DHMM_CHECK_MSG(ch >= 'a' && ch <= 'z', "words must be lowercase a-z");
    int letter = LetterIndex(ch);
    prob::BinaryObs glyph = GlyphTemplate(static_cast<size_t>(letter));
    if (options.max_jitter > 0) {
      int span = 2 * options.max_jitter + 1;
      int dy = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(span))) -
               options.max_jitter;
      int dx = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(span))) -
               options.max_jitter;
      if (dy != 0 || dx != 0) glyph = Translate(glyph, dy, dx);
    }
    for (auto& px : glyph) {
      if (rng.Bernoulli(options.pixel_flip)) px ^= 1;
    }
    seq.obs.push_back(std::move(glyph));
    seq.labels.push_back(letter);
  }
  return seq;
}

OcrDataset GenerateOcrDataset(const OcrOptions& options) {
  prob::Rng rng(options.seed);
  const auto& words = WordList();
  // Zipf-weighted sampling with replacement: common (early) words appear more
  // often, mimicking natural word-frequency skew in the handwriting corpus.
  linalg::Vector weights(words.size());
  for (size_t i = 0; i < words.size(); ++i) {
    weights[i] = 1.0 / std::sqrt(static_cast<double>(i + 1));
  }
  OcrDataset out;
  out.words.reserve(options.num_words);
  for (size_t n = 0; n < options.num_words; ++n) {
    const std::string& w = words[rng.Categorical(weights)];
    out.words.push_back(RenderWord(w, options, rng));
  }
  return out;
}

std::string RenderGlyphAscii(const prob::BinaryObs& obs) {
  DHMM_CHECK(obs.size() == kGlyphDims);
  std::string out;
  out.reserve((kGlyphCols + 1) * kGlyphRows);
  for (size_t r = 0; r < kGlyphRows; ++r) {
    for (size_t c = 0; c < kGlyphCols; ++c) {
      out += obs[r * kGlyphCols + c] ? '#' : '.';
    }
    out += '\n';
  }
  return out;
}

std::string RenderWordAscii(const std::vector<prob::BinaryObs>& glyphs) {
  DHMM_CHECK(!glyphs.empty());
  std::string out;
  for (size_t r = 0; r < kGlyphRows; ++r) {
    for (size_t g = 0; g < glyphs.size(); ++g) {
      DHMM_CHECK(glyphs[g].size() == kGlyphDims);
      for (size_t c = 0; c < kGlyphCols; ++c) {
        out += glyphs[g][r * kGlyphCols + c] ? '#' : '.';
      }
      if (g + 1 < glyphs.size()) out += ' ';
    }
    out += '\n';
  }
  return out;
}

std::string LabelsToWord(const std::vector<int>& labels) {
  std::string out;
  out.reserve(labels.size());
  for (int l : labels) {
    DHMM_CHECK(l >= 0 && l < static_cast<int>(kNumLetters));
    out += LetterChar(l);
  }
  return out;
}

}  // namespace dhmm::data
