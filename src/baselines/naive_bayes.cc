#include "baselines/naive_bayes.h"

#include <cmath>

#include "util/check.h"

namespace dhmm::baselines {

NaiveBayesClassifier::NaiveBayesClassifier(size_t num_classes, size_t dims,
                                           double p_floor,
                                           double pseudo_count)
    : num_classes_(num_classes), pseudo_count_(pseudo_count),
      priors_(num_classes, 1.0 / static_cast<double>(num_classes)),
      log_priors_(num_classes,
                  -std::log(static_cast<double>(num_classes))),
      emission_(linalg::Matrix(num_classes, dims, 0.5), p_floor) {
  DHMM_CHECK(num_classes >= 2 && dims > 0);
  DHMM_CHECK(pseudo_count_ >= 0.0);
}

void NaiveBayesClassifier::Fit(const hmm::Dataset<prob::BinaryObs>& data) {
  const size_t k = num_classes_;
  const size_t d = emission_.dims();
  linalg::Vector class_counts(k, pseudo_count_);
  linalg::Matrix on_counts(k, d, pseudo_count_);
  for (const auto& seq : data) {
    DHMM_CHECK_MSG(seq.labeled(), "NaiveBayes needs labeled data");
    for (size_t t = 0; t < seq.length(); ++t) {
      int c = seq.labels[t];
      DHMM_CHECK(c >= 0 && static_cast<size_t>(c) < k);
      DHMM_CHECK(seq.obs[t].size() == d);
      class_counts[static_cast<size_t>(c)] += 1.0;
      double* row = on_counts.row_data(static_cast<size_t>(c));
      for (size_t j = 0; j < d; ++j) {
        if (seq.obs[t][j]) row[j] += 1.0;
      }
    }
  }
  linalg::Matrix p(k, d);
  for (size_t c = 0; c < k; ++c) {
    // Laplace: (on + pseudo) / (count + 2 * pseudo).
    double denom = class_counts[c] + pseudo_count_;
    for (size_t j = 0; j < d; ++j) {
      p(c, j) = on_counts(c, j) / denom;
      if (p(c, j) > 1.0) p(c, j) = 1.0;
    }
  }
  emission_ = prob::BernoulliEmission(std::move(p));
  priors_ = class_counts;
  priors_.NormalizeToSimplex();
  for (size_t c = 0; c < k; ++c) log_priors_[c] = std::log(priors_[c]);
}

int NaiveBayesClassifier::Predict(const prob::BinaryObs& obs) const {
  double best = -std::numeric_limits<double>::infinity();
  int arg = 0;
  for (size_t c = 0; c < num_classes_; ++c) {
    double score = log_priors_[c] + emission_.LogProb(c, obs);
    if (score > best) {
      best = score;
      arg = static_cast<int>(c);
    }
  }
  return arg;
}

std::vector<int> NaiveBayesClassifier::PredictSequence(
    const std::vector<prob::BinaryObs>& obs) const {
  std::vector<int> out;
  out.reserve(obs.size());
  for (const auto& frame : obs) out.push_back(Predict(frame));
  return out;
}

}  // namespace dhmm::baselines
