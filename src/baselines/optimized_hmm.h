// "Optimized HMM" baseline (Krevat & Cuzzillo, paper reference [26]):
// a supervised HMM dressed up with the standard decoding tricks — Laplace
// smoothing and a tuned emission/transition balance exponent — providing the
// "other tricks give limited improvement" bar in Fig. 11.
#ifndef DHMM_BASELINES_OPTIMIZED_HMM_H_
#define DHMM_BASELINES_OPTIMIZED_HMM_H_

#include <vector>

#include "hmm/model.h"
#include "hmm/sequence.h"
#include "prob/bernoulli_emission.h"
#include "prob/rng.h"

namespace dhmm::baselines {

/// Options for the optimized HMM.
struct OptimizedHmmOptions {
  /// Candidate emission-weight exponents tried on a held-out slice of the
  /// training data: the decoder scores  w * log B  +  log A.
  std::vector<double> emission_weights = {0.25, 0.5, 0.75, 1.0};
  /// Candidate transition pseudo-counts.
  std::vector<double> transition_pseudo_counts = {0.1, 1.0};
  /// Fraction of training sequences held out for the grid search.
  double validation_fraction = 0.15;
  uint64_t tuning_seed = 11;
};

/// \brief Supervised HMM with tuned smoothing and emission weighting.
class OptimizedHmm {
 public:
  explicit OptimizedHmm(size_t num_states, size_t dims,
                        OptimizedHmmOptions options = {});

  /// Counts parameters, then grid-searches the tricks on a validation split.
  void Fit(const hmm::Dataset<prob::BinaryObs>& data);

  /// Viterbi decoding with the tuned emission weight.
  std::vector<int> Decode(const std::vector<prob::BinaryObs>& obs) const;

  double tuned_emission_weight() const { return emission_weight_; }
  double tuned_pseudo_count() const { return pseudo_count_; }
  const hmm::HmmModel<prob::BinaryObs>& model() const { return model_; }

 private:
  hmm::HmmModel<prob::BinaryObs> FitCounts(
      const hmm::Dataset<prob::BinaryObs>& data, double pseudo) const;

  size_t num_states_;
  size_t dims_;
  OptimizedHmmOptions options_;
  hmm::HmmModel<prob::BinaryObs> model_;
  double emission_weight_ = 1.0;
  double pseudo_count_ = 1.0;
};

}  // namespace dhmm::baselines

#endif  // DHMM_BASELINES_OPTIMIZED_HMM_H_
