#include "baselines/optimized_hmm.h"

#include <memory>

#include "eval/metrics.h"
#include "hmm/inference.h"
#include "hmm/supervised.h"
#include "util/check.h"

namespace dhmm::baselines {

OptimizedHmm::OptimizedHmm(size_t num_states, size_t dims,
                           OptimizedHmmOptions options)
    : num_states_(num_states), dims_(dims), options_(std::move(options)) {
  DHMM_CHECK(num_states_ >= 2 && dims_ > 0);
  DHMM_CHECK(!options_.emission_weights.empty());
  DHMM_CHECK(!options_.transition_pseudo_counts.empty());
}

hmm::HmmModel<prob::BinaryObs> OptimizedHmm::FitCounts(
    const hmm::Dataset<prob::BinaryObs>& data, double pseudo) const {
  hmm::SupervisedOptions sup;
  sup.initial_pseudo_count = pseudo;
  sup.transition_pseudo_count = pseudo;
  std::unique_ptr<prob::EmissionModel<prob::BinaryObs>> emission =
      std::make_unique<prob::BernoulliEmission>(
          linalg::Matrix(num_states_, dims_, 0.5));
  return hmm::FitSupervised(data, num_states_, std::move(emission), sup);
}

void OptimizedHmm::Fit(const hmm::Dataset<prob::BinaryObs>& data) {
  DHMM_CHECK(data.size() >= 10);
  // Deterministic validation split.
  prob::Rng rng(options_.tuning_seed);
  std::vector<size_t> perm = rng.Permutation(data.size());
  size_t n_val = std::max<size_t>(
      1, static_cast<size_t>(options_.validation_fraction *
                             static_cast<double>(data.size())));
  hmm::Dataset<prob::BinaryObs> train, val;
  for (size_t i = 0; i < perm.size(); ++i) {
    (i < n_val ? val : train).push_back(data[perm[i]]);
  }

  double best_acc = -1.0;
  // One workspace for the whole grid search: the emission table and Viterbi
  // tables are recomputed per (pseudo, w, sequence) but never reallocated,
  // and the workspace's TransitionCache rebuilds log(A)^T once per candidate
  // (A is fixed across the w sweep and the validation set).
  hmm::InferenceWorkspace ws;
  hmm::ViterbiResult decoded;
  for (double pseudo : options_.transition_pseudo_counts) {
    hmm::HmmModel<prob::BinaryObs> candidate = FitCounts(train, pseudo);
    for (double w : options_.emission_weights) {
      // Decode validation with weight w.
      eval::LabelSequences pred, gold;
      for (const auto& seq : val) {
        candidate.emission->LogProbTableInto(seq.obs, &ws.log_b);
        ws.log_b *= w;
        hmm::Viterbi(candidate.pi, candidate.a, ws.log_b, &ws, &decoded);
        pred.push_back(decoded.path);
        gold.push_back(seq.labels);
      }
      double acc = eval::FrameAccuracy(pred, gold);
      if (acc > best_acc) {
        best_acc = acc;
        emission_weight_ = w;
        pseudo_count_ = pseudo;
      }
    }
  }
  // Refit on the full training data with the winning pseudo-count.
  model_ = FitCounts(data, pseudo_count_);
}

std::vector<int> OptimizedHmm::Decode(
    const std::vector<prob::BinaryObs>& obs) const {
  hmm::InferenceWorkspace ws;
  model_.emission->LogProbTableInto(obs, &ws.log_b);
  ws.log_b *= emission_weight_;
  hmm::ViterbiResult decoded;
  hmm::Viterbi(model_.pi, model_.a, ws.log_b, &ws, &decoded);
  return std::move(decoded.path);
}

}  // namespace dhmm::baselines
