// Per-frame Bernoulli naive-Bayes classifier — the chain-free OCR baseline
// in the paper's Fig. 11.
#ifndef DHMM_BASELINES_NAIVE_BAYES_H_
#define DHMM_BASELINES_NAIVE_BAYES_H_

#include <vector>

#include "hmm/sequence.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "prob/bernoulli_emission.h"

namespace dhmm::baselines {

/// \brief Classifies each binary-vector frame independently:
///   argmax_c  log prior(c) + sum_d log Bernoulli(y_d; p_{c,d}).
///
/// Deliberately ignores the letter chain — its gap to the HMM quantifies the
/// value of sequential structure in Fig. 11.
class NaiveBayesClassifier {
 public:
  /// \param num_classes  label arity.
  /// \param p_floor      probability clamp, as in BernoulliEmission.
  /// \param pseudo_count Laplace smoothing for both priors and pixels.
  NaiveBayesClassifier(size_t num_classes, size_t dims, double p_floor = 1e-3,
                       double pseudo_count = 1.0);

  /// Fits priors and per-class pixel probabilities from labeled sequences.
  void Fit(const hmm::Dataset<prob::BinaryObs>& data);

  /// Classifies one frame.
  int Predict(const prob::BinaryObs& obs) const;

  /// Classifies every frame of a sequence independently.
  std::vector<int> PredictSequence(
      const std::vector<prob::BinaryObs>& obs) const;

  const linalg::Vector& priors() const { return priors_; }
  const prob::BernoulliEmission& emission() const { return emission_; }

 private:
  size_t num_classes_;
  double pseudo_count_;
  linalg::Vector priors_;
  linalg::Vector log_priors_;
  prob::BernoulliEmission emission_;
};

}  // namespace dhmm::baselines

#endif  // DHMM_BASELINES_NAIVE_BAYES_H_
