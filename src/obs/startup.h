// The process's one startup log line.
//
// Before the obs layer, three call sites each printed their own startup
// resolution line (linalg::kernels::LogStartupOnce and its DecodeService/
// FrontEnd callers). They are folded here: every serving entry point
// calls obs::LogStartup(), which prints exactly one unified line per
// process and records the resolved kernel ISA as a registry gauge, so
// the resolution is attributable both in service logs and in any stats
// snapshot (the `kStats` wire opcode, StatsString(), BENCH_*.json).
#ifndef DHMM_OBS_STARTUP_H_
#define DHMM_OBS_STARTUP_H_

#include <string>

namespace dhmm::obs {

/// The unified startup report. Format (pinned by tests/obs_test.cc and
/// grepped by CI's release leg — change both together):
///   "[dhmm] startup: kernels isa=<isa> detected=<isa> override=<ov>
///    fixed_k<=<k>"
/// where the trailing fields are linalg::kernels::StartupSummary().
std::string StartupLine();

/// Prints StartupLine() to stderr once per process and records the
/// resolved kernel ISA as gauge `startup.kernel_isa` (0 = scalar,
/// 1 = avx2, 2 = avx512 — the linalg::kernels::Isa enum values). The
/// gauge is refreshed on every call; only the log line is once-only.
void LogStartup();

}  // namespace dhmm::obs

#endif  // DHMM_OBS_STARTUP_H_
