// Registry + renderers for the obs metric primitives (see metrics.h for
// the hot-path contract; everything in this file is the cold side).
#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/check.h"

namespace dhmm::obs {
namespace {

/// Shortest round-trippable formatting: integers ("42") stay integers,
/// gauges keep full double precision.
void AppendValue(double v, std::string* out) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

}  // namespace

Registry& Registry::Global() {
  // Intentionally leaked: services may record metrics during static
  // teardown, so the registry must outlive every other static.
  static Registry* r = new Registry;
  return *r;
}

Registry::Entry* Registry::FindLocked(const std::string& name) {
  for (Entry& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* e = FindLocked(name)) {
    DHMM_CHECK_MSG(e->kind == MetricKind::kCounter,
                   "obs metric re-registered as a different kind");
    return e->counter;
  }
  counters_.emplace_back();
  entries_.push_back(
      {name, MetricKind::kCounter, &counters_.back(), nullptr, nullptr});
  return &counters_.back();
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* e = FindLocked(name)) {
    DHMM_CHECK_MSG(e->kind == MetricKind::kGauge,
                   "obs metric re-registered as a different kind");
    return e->gauge;
  }
  gauges_.emplace_back();
  entries_.push_back(
      {name, MetricKind::kGauge, nullptr, &gauges_.back(), nullptr});
  return &gauges_.back();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* e = FindLocked(name)) {
    DHMM_CHECK_MSG(e->kind == MetricKind::kHistogram,
                   "obs metric re-registered as a different kind");
    return e->histogram;
  }
  histograms_.emplace_back();
  entries_.push_back(
      {name, MetricKind::kHistogram, nullptr, nullptr, &histograms_.back()});
  return &histograms_.back();
}

Snapshot Registry::TakeSnapshot(const std::string& prefix) const {
  Snapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const Entry& e : entries_) {
    if (!prefix.empty() && e.name.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    switch (e.kind) {
      case MetricKind::kCounter:
        snap.values.emplace_back(e.name,
                                 static_cast<double>(e.counter->Value()));
        break;
      case MetricKind::kGauge:
        snap.values.emplace_back(e.name, e.gauge->Value());
        break;
      case MetricKind::kHistogram: {
        uint64_t merged[Histogram::kBuckets];
        e.histogram->MergedCounts(merged);
        uint64_t count = 0;
        std::size_t top = 0;
        for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
          count += merged[b];
          if (merged[b] != 0) top = b;
        }
        snap.values.emplace_back(e.name + ".count",
                                 static_cast<double>(count));
        snap.values.emplace_back(
            e.name + ".p50",
            static_cast<double>(e.histogram->ValueAtQuantile(0.50)));
        snap.values.emplace_back(
            e.name + ".p90",
            static_cast<double>(e.histogram->ValueAtQuantile(0.90)));
        snap.values.emplace_back(
            e.name + ".p99",
            static_cast<double>(e.histogram->ValueAtQuantile(0.99)));
        snap.values.emplace_back(
            e.name + ".max",
            count == 0 ? 0.0
                       : static_cast<double>(
                             Histogram::BucketUpperBound(top)));
        break;
      }
    }
  }
  std::sort(snap.values.begin(), snap.values.end());
  return snap;
}

std::string RenderText(const Snapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.values) {
    out += name;
    out += ' ';
    if (std::isfinite(value)) {
      AppendValue(value, &out);
    } else {
      out += std::isnan(value) ? "nan" : (value > 0 ? "inf" : "-inf");
    }
    out += '\n';
  }
  return out;
}

std::string RenderJson(const Snapshot& snapshot) {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : snapshot.values) {
    if (!first) out += ", ";
    first = false;
    out += '"';
    out += name;  // metric names are code-chosen [a-z0-9._]: no escaping
    out += "\": ";
    if (std::isfinite(value)) {
      AppendValue(value, &out);
    } else {
      out += "null";
    }
  }
  out += "}";
  return out;
}

}  // namespace dhmm::obs
