#include "obs/startup.h"

#include <cstdio>
#include <mutex>

#include "linalg/kernels_dispatch.h"
#include "obs/metrics.h"

namespace dhmm::obs {

std::string StartupLine() {
  return "[dhmm] startup: kernels " + linalg::kernels::StartupSummary();
}

void LogStartup() {
  Registry::Global().GetGauge("startup.kernel_isa")
      ->Set(static_cast<double>(
          static_cast<int>(linalg::kernels::ActiveIsa())));
  static std::once_flag flag;
  std::call_once(flag, [] {
    std::fprintf(stderr, "%s\n", StartupLine().c_str());
  });
}

}  // namespace dhmm::obs
