// Lock-free, allocation-free-at-steady-state metric primitives.
//
// The serving stack needs to see itself run (shed counts, latency
// percentiles, store failovers) without giving up its standing contracts:
// steady-state request paths make zero heap allocations, recording never
// aborts, and nothing in the hot path takes a lock. The design mirrors
// the one-shot kernel-dispatch idiom from linalg/kernels_dispatch.h:
//
//  - Registration is grow-only and happens at construction/startup time
//    through the process-wide obs::Registry (mutex-guarded, allocates).
//    Registered metric objects are pointer-stable for the life of the
//    process, so call sites hold a raw pointer resolved once.
//  - Recording is the hot path: one thread-local stripe lookup plus one
//    relaxed atomic op on a cache-line-isolated slot. No locks, no
//    allocation, no ordering stronger than relaxed.
//  - Reading merges the stripes. Snapshots are approximate under
//    concurrent writers (each stripe is read atomically, the sum is not)
//    but exact once writers are quiescent — which is when tests
//    reconcile them.
//
// Three primitives cover the stack's needs: monotonic Counter, last-value
// Gauge, and a fixed-bucket log2-scale Histogram for latencies. Snapshots
// flatten everything to (name, double) pairs renderable as text or JSON;
// histogram H contributes H.count / H.p50 / H.p90 / H.p99 / H.max.
#ifndef DHMM_OBS_METRICS_H_
#define DHMM_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace dhmm::obs {

/// Cache-line-isolated slots per metric. Threads map onto stripes by a
/// stable per-thread index, so two recording threads rarely share a line.
/// Power of two: the stripe pick is a mask, not a modulo.
inline constexpr std::size_t kStripes = 16;

namespace internal {

/// Stable per-thread stripe index in [0, kStripes). Assigned once per
/// thread from a process-wide counter; after the first call from a thread
/// this is a thread_local read — no atomics, no allocation.
inline std::size_t ThreadStripe() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed) & (kStripes - 1);
  return stripe;
}

}  // namespace internal

/// \brief Monotonic striped counter. Add() is one relaxed fetch_add on
/// the caller's stripe; Value() sums the stripes.
class Counter {
 public:
  void Add(uint64_t n = 1) noexcept {
    cells_[internal::ThreadStripe()].v.fetch_add(n,
                                                 std::memory_order_relaxed);
  }

  uint64_t Value() const noexcept {
    uint64_t sum = 0;
    for (const Cell& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  Cell cells_[kStripes];
};

/// \brief Last-value gauge holding a double (stored as raw bits in one
/// atomic word). Set() is a relaxed store; Add() is a relaxed CAS loop —
/// both allocation-free. Concurrent Set()s race benignly (last writer
/// wins); concurrent Add()s never lose a delta.
class Gauge {
 public:
  void Set(double v) noexcept {
    bits_.store(Encode(v), std::memory_order_relaxed);
  }

  void Add(double delta) noexcept {
    uint64_t cur = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(cur, Encode(Decode(cur) + delta),
                                        std::memory_order_relaxed,
                                        std::memory_order_relaxed)) {
    }
  }

  double Value() const noexcept {
    return Decode(bits_.load(std::memory_order_relaxed));
  }

 private:
  static uint64_t Encode(double v) noexcept {
    uint64_t b;
    std::memcpy(&b, &v, sizeof(b));
    return b;
  }
  static double Decode(uint64_t b) noexcept {
    double v;
    std::memcpy(&v, &b, sizeof(v));
    return v;
  }

  std::atomic<uint64_t> bits_{0};  // the bit pattern of 0.0
};

/// \brief Fixed-bucket log2-scale histogram for non-negative integer
/// samples (latencies in microseconds, batch sizes). Bucket i >= 1 covers
/// [2^(i-1), 2^i - 1]; bucket 0 holds exact zeros; the last bucket
/// absorbs everything above — Record() clamps and never aborts, whatever
/// the value. Recording is one relaxed fetch_add on the caller's stripe.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 32;

  void Record(uint64_t value) noexcept {
    cells_[internal::ThreadStripe()].counts[BucketOf(value)].fetch_add(
        1, std::memory_order_relaxed);
  }

  /// Total samples across every stripe and bucket.
  uint64_t Count() const noexcept {
    uint64_t merged[kBuckets];
    MergedCounts(merged);
    uint64_t sum = 0;
    for (uint64_t c : merged) sum += c;
    return sum;
  }

  /// Stripe-merged per-bucket counts.
  void MergedCounts(uint64_t out[kBuckets]) const noexcept {
    for (std::size_t b = 0; b < kBuckets; ++b) out[b] = 0;
    for (const Cell& cell : cells_) {
      for (std::size_t b = 0; b < kBuckets; ++b) {
        out[b] += cell.counts[b].load(std::memory_order_relaxed);
      }
    }
  }

  /// Upper bound of the bucket containing quantile q in [0, 1]; 0 when
  /// the histogram is empty. An upper-bound estimate: the true sample is
  /// within 2x (one bucket) of the reported value.
  uint64_t ValueAtQuantile(double q) const noexcept {
    uint64_t merged[kBuckets];
    MergedCounts(merged);
    uint64_t total = 0;
    for (uint64_t c : merged) total += c;
    if (total == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    const uint64_t rank = static_cast<uint64_t>(q * (total - 1)) + 1;
    uint64_t seen = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      seen += merged[b];
      if (seen >= rank) return BucketUpperBound(b);
    }
    return BucketUpperBound(kBuckets - 1);
  }

  /// Bucket index for a sample (see class comment).
  static std::size_t BucketOf(uint64_t value) noexcept {
    if (value == 0) return 0;
    const std::size_t width =
        64 - static_cast<std::size_t>(__builtin_clzll(value));
    return width < kBuckets ? width : kBuckets - 1;
  }

  /// Inclusive upper bound of bucket idx (0 for bucket 0).
  static uint64_t BucketUpperBound(std::size_t idx) noexcept {
    if (idx == 0) return 0;
    if (idx >= kBuckets - 1) return ~uint64_t{0};
    return (uint64_t{1} << idx) - 1;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> counts[kBuckets] = {};
  };
  Cell cells_[kStripes] = {};
};

/// \brief Flattened point-in-time view of the registry: (name, value)
/// pairs sorted by name. Counters appear under their registered name,
/// gauges likewise; a histogram H expands to H.count/H.p50/H.p90/H.p99/
/// H.max.
struct Snapshot {
  std::vector<std::pair<std::string, double>> values;

  /// Value for an exact name; `fallback` when absent.
  double ValueOf(const std::string& name, double fallback = 0.0) const {
    for (const auto& [n, v] : values) {
      if (n == name) return v;
    }
    return fallback;
  }

  bool Has(const std::string& name) const {
    for (const auto& [n, v] : values) {
      if (n == name) return true;
    }
    return false;
  }
};

/// \brief Process-wide grow-only metric registry. Get*() registers on
/// first use and returns the same pointer-stable object for the same
/// name thereafter (deque-backed storage; entries are never removed).
/// Registering the same name as two different metric kinds is a
/// programming error and CHECK-fails at registration time — recording
/// through an already-resolved pointer can never abort.
class Registry {
 public:
  static Registry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Snapshot of every metric whose name starts with `prefix` (empty =
  /// everything). Allocates; not for hot paths.
  Snapshot TakeSnapshot(const std::string& prefix = std::string()) const;

 private:
  enum class MetricKind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    MetricKind kind;
    Counter* counter = nullptr;
    Gauge* gauge = nullptr;
    Histogram* histogram = nullptr;
  };

  Entry* FindLocked(const std::string& name);

  mutable std::mutex mu_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::vector<Entry> entries_;
};

/// One "name value" line per entry, sorted by name, '\n'-terminated.
std::string RenderText(const Snapshot& snapshot);

/// A flat JSON object {"name": value, ...}; non-finite values render as
/// null so the output always parses.
std::string RenderJson(const Snapshot& snapshot);

}  // namespace dhmm::obs

#endif  // DHMM_OBS_METRICS_H_
