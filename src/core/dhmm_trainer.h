// Unsupervised MAP-EM training of the diversified HMM (paper §3.5.1).
//
// The E-step is the ordinary forward-backward pass (the prior is independent
// of the hidden states); the M-step for the transition matrix maximizes the
// expected complete-data log-likelihood plus alpha * log det K~_A via
// projected gradient ascent (Algorithm 1). pi and B keep their closed-form
// updates.
#ifndef DHMM_CORE_DHMM_TRAINER_H_
#define DHMM_CORE_DHMM_TRAINER_H_

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "core/transition_update.h"
#include "dpp/logdet.h"
#include "hmm/trainer.h"
#include "util/check.h"

namespace dhmm::core {

/// Options for diversified MAP-EM.
struct DiversifiedEmOptions {
  /// Diversity weight (paper's alpha). 0 reduces exactly to Baum-Welch.
  double alpha = 1.0;
  /// Product-kernel exponent (paper fixes 0.5).
  double rho = 0.5;
  /// Outer EM iterations and MAP-objective convergence tolerance.
  int max_iters = 100;
  double tol = 1e-5;
  /// Inner Algorithm-1 controls for the transition update.
  optim::ProjectedGradientOptions ascent;
  /// Floor applied to transition rows after projection.
  double row_floor = 1e-10;
  bool update_pi = true;
  bool update_emission = true;
  /// E-step worker threads (see hmm::BatchOptions::num_threads). Any value
  /// produces bitwise-identical fits; this is purely a throughput knob.
  int num_threads = 1;
  /// Sequence length at which the E-step switches to the checkpointed
  /// forward-backward (see hmm::BatchOptions). 0 disables.
  size_t checkpoint_threshold_frames =
      hmm::kDefaultCheckpointThresholdFrames;
};

/// Fit diagnostics for the diversified trainer.
struct DiversifiedFitResult {
  /// MAP objective L(Y; lambda) + alpha log det K~_A after each EM iteration.
  std::vector<double> map_objective_history;
  /// Data log-likelihood after each EM iteration (without the prior).
  std::vector<double> loglik_history;
  int iterations = 0;
  bool converged = false;
  double final_log_det = 0.0;
  double final_map_objective = 0.0;
};

/// \brief The outer-loop convergence test: relative |gain| below tol.
///
/// The inner ascent is inexact, so at the fixed point the MAP objective can
/// land a hair *below* the previous value on every remaining iteration. The
/// earlier criterion additionally required gain >= 0, which such a negative
/// wobble never satisfies — convergence silently never fired and every fit
/// ran all max_iters. Exposed for direct testing.
inline bool MapObjectiveConverged(double prev, double current, double tol) {
  double denom = std::max(1.0, std::fabs(prev));
  return std::fabs(current - prev) / denom < tol;
}

/// \brief Fits a diversified HMM by MAP-EM.
///
/// Each outer iteration runs one exact E-step over the dataset and one M-step
/// in which A is updated by projected gradient ascent on
///   sum_ij xi_ij log A_ij + alpha log det K~_A   (Eq. 13).
/// The recorded objective is the true marginal MAP objective of Eq. 7,
/// re-evaluated with the *updated* parameters, so monotonicity is observable
/// (§3.5.3).
///
/// \param m_step_ws optional persistent M-step workspace (one per worker
///        thread when fits fan out across a core::BatchMStepDriver); nullptr
///        uses a fit-local workspace.
template <typename Obs>
DiversifiedFitResult FitDiversifiedHmm(
    hmm::HmmModel<Obs>* model, const hmm::Dataset<Obs>& data,
    const DiversifiedEmOptions& options,
    TransitionUpdateWorkspace* m_step_ws = nullptr) {
  DHMM_CHECK(model != nullptr);
  DHMM_CHECK(options.alpha >= 0.0);
  DHMM_CHECK(options.max_iters > 0);

  TransitionUpdateOptions update_opts;
  update_opts.alpha = options.alpha;
  update_opts.rho = options.rho;
  update_opts.ascent = options.ascent;
  update_opts.row_floor = options.row_floor;

  // One workspace and result slot for the whole outer loop (mirroring the
  // persistent E-step engine below): after the first outer iteration every
  // transition update runs allocation-free.
  TransitionUpdateWorkspace local_ws;
  TransitionUpdateWorkspace* ws = m_step_ws != nullptr ? m_step_ws : &local_ws;
  TransitionUpdateResult m_result;

  hmm::EmOptions em;
  em.max_iters = 1;
  em.update_pi = options.update_pi;
  em.update_emission = options.update_emission;
  em.num_threads = options.num_threads;
  em.checkpoint_threshold_frames = options.checkpoint_threshold_frames;
  em.transition_m_step = [&](const linalg::Matrix& counts,
                             linalg::Matrix* a) {
    UpdateTransitions(*a, counts, update_opts, ws, &m_result);
    std::swap(*a, m_result.a);
  };

  // One engine for the whole outer loop: its worker pool and per-thread
  // workspaces persist across the max_iters single-step FitEm calls, so the
  // E-step stays allocation-free after the first outer iteration.
  hmm::BatchEmEngine<Obs> engine(
      hmm::BatchOptions{em.num_threads, em.checkpoint_threshold_frames});

  DiversifiedFitResult result;
  double prev = -std::numeric_limits<double>::infinity();
  for (int iter = 0; iter < options.max_iters; ++iter) {
    hmm::EmResult one = hmm::FitEm(model, data, em, &engine);
    double log_det =
        dpp::LogDetNormalizedKernel(model->a, options.rho, &ws->kernel);
    double map_obj = one.final_loglik + options.alpha * log_det;
    result.loglik_history.push_back(one.final_loglik);
    result.map_objective_history.push_back(map_obj);
    ++result.iterations;

    if (iter > 0 && MapObjectiveConverged(prev, map_obj, options.tol)) {
      result.converged = true;
      prev = map_obj;
      break;
    }
    prev = map_obj;
  }
  result.final_log_det =
      dpp::LogDetNormalizedKernel(model->a, options.rho, &ws->kernel);
  result.final_map_objective = prev;
  return result;
}

}  // namespace dhmm::core

#endif  // DHMM_CORE_DHMM_TRAINER_H_
