#include "core/dirichlet_prior.h"

#include <algorithm>

#include "util/check.h"

namespace dhmm::core {

linalg::Matrix DirichletMapTransitions(const linalg::Matrix& expected_counts,
                                       double beta) {
  DHMM_CHECK(beta > 0.0);
  const size_t k = expected_counts.rows();
  const size_t n = expected_counts.cols();
  linalg::Matrix a(k, n);
  for (size_t i = 0; i < k; ++i) {
    double row_sum = 0.0;
    for (size_t j = 0; j < n; ++j) {
      a(i, j) = std::max(expected_counts(i, j) + beta - 1.0, 0.0);
      row_sum += a(i, j);
    }
    if (row_sum <= 0.0) {
      // All entries clipped (tiny counts under a sparse prior): fall back to
      // the ML row so the chain stays usable.
      double ml_sum = 0.0;
      for (size_t j = 0; j < n; ++j) ml_sum += expected_counts(i, j);
      for (size_t j = 0; j < n; ++j) {
        a(i, j) = ml_sum > 0.0 ? expected_counts(i, j) / ml_sum
                               : 1.0 / static_cast<double>(n);
      }
    } else {
      for (size_t j = 0; j < n; ++j) a(i, j) /= row_sum;
    }
  }
  return a;
}

hmm::TransitionMStep MakeDirichletMStep(double beta) {
  return [beta](const linalg::Matrix& counts, linalg::Matrix* a) {
    *a = DirichletMapTransitions(counts, beta);
  };
}

}  // namespace dhmm::core
