// Dirichlet-MAP transition updates: the *competing* priors from the paper's
// related work (§2.1) — smoothing (Wang & Schuurmans [50]) and sparseness
// (Bicego et al. [8]) — implemented as drop-in TransitionMStep callbacks so
// ablation benches can compare them against the DPP diversity prior.
#ifndef DHMM_CORE_DIRICHLET_PRIOR_H_
#define DHMM_CORE_DIRICHLET_PRIOR_H_

#include "hmm/trainer.h"
#include "linalg/matrix.h"

namespace dhmm::core {

/// \brief MAP update of a transition row under a symmetric Dirichlet prior
/// with concentration beta:
///   A_ij ∝ max(C_ij + beta - 1, 0).
///
/// beta > 1 smooths rows toward uniform; beta = 1 is maximum likelihood;
/// beta < 1 (the "negative Dirichlet" / entropic prior of [8]) drives small
/// expected counts to exactly zero, i.e. a sparse transition matrix. A row
/// whose entries are all clipped falls back to its ML estimate (the MAP
/// under beta < 1 is at a vertex; ML is the standard tie-break in practice).
linalg::Matrix DirichletMapTransitions(const linalg::Matrix& expected_counts,
                                       double beta);

/// \brief Wraps DirichletMapTransitions as an hmm::TransitionMStep callback.
hmm::TransitionMStep MakeDirichletMStep(double beta);

}  // namespace dhmm::core

#endif  // DHMM_CORE_DIRICHLET_PRIOR_H_
