#include "core/state_selection.h"

namespace dhmm::core {

double FreeParameterCount(size_t k, double emission_params_per_state) {
  double kd = static_cast<double>(k);
  return (kd - 1.0) + kd * (kd - 1.0) + kd * emission_params_per_state;
}

}  // namespace dhmm::core
