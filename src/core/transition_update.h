// The dHMM transition-matrix update (paper Algorithm 1, Eqs. 13-18).
//
// Maximizes over row-stochastic A:
//   F(A) = sum_ij C_ij log A_ij                 (expected/observed counts)
//        + alpha * log det K~_A                 (DPP diversity prior, Eq. 6)
//        - tether_weight * ||A - A0||_F^2      (supervised drift, Eq. 8)
// by projected gradient ascent with adaptive step size and per-row Euclidean
// simplex projection (Eq. 17).
#ifndef DHMM_CORE_TRANSITION_UPDATE_H_
#define DHMM_CORE_TRANSITION_UPDATE_H_

#include "linalg/matrix.h"
#include "optim/projected_gradient.h"

namespace dhmm::core {

/// Options for the penalized transition update.
struct TransitionUpdateOptions {
  /// Diversity weight alpha; 0 short-circuits to the ML update (normalized
  /// counts), exactly recovering Baum-Welch.
  double alpha = 1.0;
  /// Product-kernel exponent; the paper fixes 0.5.
  double rho = 0.5;
  /// Tether matrix A0 and weight alpha_A for the supervised objective
  /// (Eq. 8). tether must outlive the call; nullptr disables the term.
  const linalg::Matrix* tether = nullptr;
  double tether_weight = 0.0;
  /// Entries are kept >= row_floor (renormalized) after projection so that
  /// the count term stays finite and kernel gradients stay bounded.
  double row_floor = 1e-10;
  /// Inner projected-gradient-ascent controls (Algorithm 1's loop).
  optim::ProjectedGradientOptions ascent;
  /// When the starting A has (numerically) coincident rows the prior is -inf;
  /// the update mixes in this much uniform noise to restore feasibility.
  double feasibility_jitter = 1e-3;
};

/// Diagnostics from one update.
struct TransitionUpdateResult {
  linalg::Matrix a;          ///< the updated transition matrix
  double objective = 0.0;    ///< F(a)
  double log_det = 0.0;      ///< log det K~ at a
  int iterations = 0;        ///< accepted ascent steps
  bool converged = false;
};

/// \brief The penalized objective F(A) itself (for tests and diagnostics).
/// Returns -inf outside the feasible region (zero prob where C > 0, or a
/// singular kernel).
double TransitionObjective(const linalg::Matrix& a,
                           const linalg::Matrix& counts,
                           const TransitionUpdateOptions& options);

/// \brief Runs the update starting from `a_init` (rows on the simplex).
///
/// \param counts  k x k non-negative transition counts C (expected counts in
///                the unsupervised M-step; hard counts in the supervised
///                objective).
TransitionUpdateResult UpdateTransitions(
    const linalg::Matrix& a_init, const linalg::Matrix& counts,
    const TransitionUpdateOptions& options);

}  // namespace dhmm::core

#endif  // DHMM_CORE_TRANSITION_UPDATE_H_
