// The dHMM transition-matrix update (paper Algorithm 1, Eqs. 13-18).
//
// Maximizes over row-stochastic A:
//   F(A) = sum_ij C_ij log A_ij                 (expected/observed counts)
//        + alpha * log det K~_A                 (DPP diversity prior, Eq. 6)
//        - tether_weight * ||A - A0||_F^2      (supervised drift, Eq. 8)
// by projected gradient ascent with adaptive step size and per-row Euclidean
// simplex projection (Eq. 17).
#ifndef DHMM_CORE_TRANSITION_UPDATE_H_
#define DHMM_CORE_TRANSITION_UPDATE_H_

#include "dpp/kernel_workspace.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "optim/projected_gradient.h"

namespace dhmm::core {

/// Options for the penalized transition update.
struct TransitionUpdateOptions {
  /// Diversity weight alpha; 0 short-circuits to the ML update (normalized
  /// counts), exactly recovering Baum-Welch.
  double alpha = 1.0;
  /// Product-kernel exponent; the paper fixes 0.5.
  double rho = 0.5;
  /// Tether matrix A0 and weight alpha_A for the supervised objective
  /// (Eq. 8). tether must outlive the call; nullptr disables the term.
  const linalg::Matrix* tether = nullptr;
  double tether_weight = 0.0;
  /// Entries are kept >= row_floor (renormalized) after projection so that
  /// the count term stays finite and kernel gradients stay bounded.
  double row_floor = 1e-10;
  /// Inner projected-gradient-ascent controls (Algorithm 1's loop).
  optim::ProjectedGradientOptions ascent;
  /// When the starting A has (numerically) coincident rows the prior is -inf;
  /// the update mixes in this much uniform noise to restore feasibility.
  double feasibility_jitter = 1e-3;
};

/// Diagnostics from one update.
struct TransitionUpdateResult {
  linalg::Matrix a;          ///< the updated transition matrix
  double objective = 0.0;    ///< F(a)
  double log_det = 0.0;      ///< log det K~ at a
  int iterations = 0;        ///< accepted ascent steps
  bool converged = false;
};

/// \brief Grow-only scratch for the whole M-step stack: kernel/LU buffers
/// for the diversity prior, trial/gradient matrices for the inner ascent,
/// and staging matrices for the feasible start.
///
/// One workspace per worker thread (mirroring hmm::InferenceWorkspace in the
/// E-step engine): after the first UpdateTransitions call at a given k, the
/// update performs zero heap allocations. Thread-compatible, not
/// thread-safe; contents are fully overwritten per call, so a workspace can
/// move freely between state counts and training runs.
struct TransitionUpdateWorkspace {
  dpp::KernelWorkspace kernel;            ///< kernel/LU/K^{-1}P buffers
  optim::ProjectedGradientWorkspace ascent;  ///< trial/grad/candidate
  optim::ProjectedGradientResult pg;      ///< reused inner-ascent result slot
  linalg::Matrix raw_grad;   ///< Euclidean gradient g of Eq. 15 / Eq. 18
  linalg::Matrix ml;         ///< normalized-counts candidate start
  linalg::Matrix start;      ///< feasible starting point
  linalg::Vector row_scratch;  ///< simplex-projection / floor-flag scratch

  // Accepted-probe snapshot: whenever a line-search probe beats every value
  // seen this update (exactly the optimizer's acceptance rule), its kernel
  // state and objective are copied here. The fused oracle is then invoked
  // at that same point for the gradient, recognizes it by exact matrix
  // equality, and skips the kernel rebuild, refactorization, and count-term
  // logs — the precise redundancy where the old gradient callback rebuilt
  // the kernel the objective had just computed. A miss only costs the
  // equality test, so the cache is purely an optimization.
  dpp::KernelWorkspace accepted;      ///< kernel state at `accepted_a`
  linalg::Matrix accepted_a;          ///< the snapshotted point
  double accepted_objective = 0.0;    ///< full objective F at `accepted_a`
  bool accepted_valid = false;        ///< reset by every UpdateTransitions
};

/// \brief The penalized objective F(A) itself (for tests and diagnostics).
/// Returns -inf outside the feasible region (zero prob where C > 0, or a
/// singular kernel).
double TransitionObjective(const linalg::Matrix& a,
                           const linalg::Matrix& counts,
                           const TransitionUpdateOptions& options);

/// Workspace overload used by every line-search probe; allocation-free at
/// steady state and bitwise-identical to what UpdateTransitions maximizes.
double TransitionObjective(const linalg::Matrix& a,
                           const linalg::Matrix& counts,
                           const TransitionUpdateOptions& options,
                           dpp::KernelWorkspace* ws);

/// \brief Projects rows to the simplex, then enforces entries >= row_floor
/// while keeping each row summing to one.
///
/// Only the un-floored mass is rescaled (iterated to a fixed point), so the
/// post-condition `a(i, j) >= row_floor` genuinely holds — naively
/// renormalizing the whole row after flooring divides by a sum > 1 and can
/// push just-floored entries straight back under the floor.
/// Requires row_floor * cols < 1.
void ProjectFeasible(linalg::Matrix* a, double row_floor);

/// Allocation-free overload; `scratch` is grow-only sort/flag storage.
void ProjectFeasible(linalg::Matrix* a, double row_floor,
                     linalg::Vector* scratch);

/// \brief Runs the update starting from `a_init` (rows on the simplex).
///
/// \param counts  k x k non-negative transition counts C (expected counts in
///                the unsupervised M-step; hard counts in the supervised
///                objective).
TransitionUpdateResult UpdateTransitions(
    const linalg::Matrix& a_init, const linalg::Matrix& counts,
    const TransitionUpdateOptions& options);

/// \brief Workspace overload — the steady-state training hot path.
///
/// Objective and gradient are fused (one kernel build + one LU factorization
/// per evaluation via dpp::LogDetAndGrad), every intermediate lives in `ws`,
/// and `result` fields are overwritten in place. Calling this repeatedly
/// with the same workspace and result performs no heap allocation after the
/// first call at a given k.
void UpdateTransitions(const linalg::Matrix& a_init,
                       const linalg::Matrix& counts,
                       const TransitionUpdateOptions& options,
                       TransitionUpdateWorkspace* ws,
                       TransitionUpdateResult* result);

}  // namespace dhmm::core

#endif  // DHMM_CORE_TRANSITION_UPDATE_H_
