// Supervised diversified HMM training (paper §3.4.2 / §3.5.2, Eqs. 8 and 18).
//
// Counting gives lambda_0 = (pi_0, A_0, B_0); the transition matrix is then
// refined by projected gradient ascent on
//   sum_ij N_ij log A_ij + alpha log det K~_A - alpha_A ||A - A_0||^2,
// which generalizes the count estimate toward diverse rows while the tether
// keeps it near the data-fit optimum.
#ifndef DHMM_CORE_SUPERVISED_DIVERSIFIED_H_
#define DHMM_CORE_SUPERVISED_DIVERSIFIED_H_

#include <cmath>
#include <memory>

#include "core/transition_update.h"
#include "dpp/logdet.h"
#include "hmm/supervised.h"

namespace dhmm::core {

/// Options for supervised diversified training.
struct SupervisedDiversifiedOptions {
  /// Diversity weight alpha (0 keeps A = A_0 exactly).
  double alpha = 10.0;
  /// Tether weight alpha_A (the paper uses 1e5 for OCR).
  double tether_weight = 1e5;
  /// Product-kernel exponent.
  double rho = 0.5;
  /// Smoothing for the count stage.
  hmm::SupervisedOptions counting;
  /// Inner ascent controls.
  optim::ProjectedGradientOptions ascent;
  double row_floor = 1e-10;
};

/// Diagnostics of a supervised diversified fit.
struct SupervisedDiversifiedDiagnostics {
  linalg::Matrix a0;          ///< count-estimated transition matrix
  double log_det_a0 = 0.0;    ///< diversity of A_0
  double log_det_a = 0.0;     ///< diversity of the refined A
  double drift = 0.0;         ///< ||A - A_0||_F
  int ascent_iterations = 0;
};

/// \brief Counts lambda_0 from labeled data, then refines A per Eq. 8.
///
/// \param diagnostics optional out-param with before/after diversity numbers.
/// \param ws optional persistent M-step workspace (one per worker thread
///        when folds fan out across a core::BatchMStepDriver).
template <typename Obs>
hmm::HmmModel<Obs> FitSupervisedDiversified(
    const hmm::Dataset<Obs>& data, size_t k,
    std::unique_ptr<prob::EmissionModel<Obs>> emission,
    const SupervisedDiversifiedOptions& options,
    SupervisedDiversifiedDiagnostics* diagnostics = nullptr,
    TransitionUpdateWorkspace* ws = nullptr) {
  TransitionUpdateWorkspace local_ws;
  if (ws == nullptr) ws = &local_ws;
  hmm::HmmModel<Obs> model =
      hmm::FitSupervised(data, k, std::move(emission), options.counting);

  // Hard pairwise-state counts N_ij (Eq. 18 numerator).
  linalg::Matrix counts(k, k);
  for (const auto& seq : data) {
    for (size_t t = 1; t < seq.length(); ++t) {
      counts(static_cast<size_t>(seq.labels[t - 1]),
             static_cast<size_t>(seq.labels[t])) += 1.0;
    }
  }

  linalg::Matrix a0 = model.a;
  if (options.alpha > 0.0) {
    TransitionUpdateOptions update;
    update.alpha = options.alpha;
    update.rho = options.rho;
    update.tether = &a0;
    update.tether_weight = options.tether_weight;
    update.ascent = options.ascent;
    update.row_floor = options.row_floor;
    TransitionUpdateResult r;
    UpdateTransitions(a0, counts, update, ws, &r);
    if (diagnostics != nullptr) {
      diagnostics->ascent_iterations = r.iterations;
      diagnostics->log_det_a = r.log_det;
    }
    model.a = std::move(r.a);
  } else if (diagnostics != nullptr) {
    diagnostics->log_det_a =
        dpp::LogDetNormalizedKernel(model.a, options.rho, &ws->kernel);
  }

  if (diagnostics != nullptr) {
    diagnostics->a0 = a0;
    diagnostics->log_det_a0 =
        dpp::LogDetNormalizedKernel(a0, options.rho, &ws->kernel);
    diagnostics->drift = std::sqrt(model.a.squared_distance(a0));
  }
  return model;
}

}  // namespace dhmm::core

#endif  // DHMM_CORE_SUPERVISED_DIVERSIFIED_H_
