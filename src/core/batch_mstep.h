// Parallel candidate-sweep driver for independent M-step-heavy work units.
//
// SelectStateCount restarts x k-candidates and cross-validation folds are
// embarrassingly parallel: each unit runs its own full fit and touches no
// shared state. This driver fans such units across the same util::ThreadPool
// the E-step engine uses, hands every worker a persistent
// core::TransitionUpdateWorkspace (so the diversified M-step inside each
// unit stays allocation-free at steady state), and then reduces on the
// calling thread in ascending unit order. Units are claimed dynamically, so
// the unit -> worker assignment is nondeterministic — but because each
// unit's output depends only on its index and the reduction order is fixed,
// results are bitwise identical for every thread count, extending the PR 2
// engine contract to the M-step.
#ifndef DHMM_CORE_BATCH_MSTEP_H_
#define DHMM_CORE_BATCH_MSTEP_H_

#include <functional>
#include <vector>

#include "core/transition_update.h"
#include "util/thread_pool.h"

namespace dhmm::core {

/// Options for the batched M-step driver.
struct BatchMStepOptions {
  /// Worker threads including the calling thread; 1 runs inline, <= 0
  /// selects std::thread::hardware_concurrency(). Results are identical for
  /// every value.
  int num_threads = 1;
};

/// \brief Persistent pool + per-worker M-step workspaces for fanning out
/// independent training/evaluation units.
///
/// Thread-compatible, not thread-safe: one driver serves one sweep loop.
class BatchMStepDriver {
 public:
  /// Runs one work unit. `ws` is the claiming worker's persistent workspace
  /// (pass it to FitDiversifiedHmm / FitSupervisedDiversified /
  /// UpdateTransitions). The unit must derive all randomness from `unit`
  /// alone and must not touch state shared with other units.
  using UnitFn = std::function<void(TransitionUpdateWorkspace& ws,
                                    size_t unit)>;
  /// Sequential reduction step, called on the calling thread for
  /// unit = 0, 1, ..., n-1 after all units complete.
  using ReduceFn = std::function<void(size_t unit)>;

  explicit BatchMStepDriver(const BatchMStepOptions& options = {});

  /// Resolved thread count (after the <= 0 -> hardware mapping).
  int num_threads() const { return pool_.num_threads(); }

  /// \brief Fans units [0, n) across the pool, then reduces in ascending
  /// unit order. `reduce` may be null when units write into per-unit slots
  /// that need no ordered combination.
  void Run(size_t n, const UnitFn& unit_fn, const ReduceFn& reduce = nullptr);

 private:
  util::ThreadPool pool_;
  std::vector<TransitionUpdateWorkspace> workspaces_;  // one per worker
};

}  // namespace dhmm::core

#endif  // DHMM_CORE_BATCH_MSTEP_H_
