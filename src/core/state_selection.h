// Selecting the number of hidden states — the paper's stated future work
// ("a non-parametric extension to dHMM, which simultaneously learns the
// number of hidden states"). This module provides the standard penalized-
// likelihood route: fit candidates k in a range and score by BIC/AIC, with
// the dHMM diversity prior optionally active during each fit (diverse rows
// make redundant states visible as unused, sharpening the selection).
#ifndef DHMM_CORE_STATE_SELECTION_H_
#define DHMM_CORE_STATE_SELECTION_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "core/batch_mstep.h"
#include "core/dhmm_trainer.h"
#include "hmm/sequence.h"

namespace dhmm::core {

/// Model-complexity criterion.
enum class SelectionCriterion {
  kBic,  ///< -2 loglik + params * log(#frames)
  kAic,  ///< -2 loglik + 2 * params
};

/// Options for state-count selection.
struct StateSelectionOptions {
  size_t min_states = 2;
  size_t max_states = 8;
  /// Diversity weight used while fitting each candidate (0 = plain EM).
  double alpha = 0.0;
  int em_iters = 40;
  /// Independent restarts per candidate; best final objective wins.
  int restarts = 2;
  SelectionCriterion criterion = SelectionCriterion::kBic;
  uint64_t seed = 1;
  /// Worker threads for the (k, restart) candidate sweep (see
  /// core::BatchMStepOptions). Every candidate fit is seeded from its own
  /// (k, restart) pair and reduced in ascending unit order, so any value
  /// produces bitwise-identical results; this is purely a throughput knob.
  int num_threads = 1;
};

/// Score sheet for one candidate state count.
struct StateCandidate {
  size_t k = 0;
  double log_likelihood = 0.0;
  double num_parameters = 0.0;
  double score = 0.0;  ///< criterion value; lower is better
};

/// Result of a selection sweep.
struct StateSelectionResult {
  size_t best_k = 0;
  std::vector<StateCandidate> candidates;
};

/// Builds a fresh randomly-initialized model with `k` states for the sweep.
/// Supplied by the caller because the emission family is task-specific.
/// Candidate fits fan out across a worker pool, so the factory must be safe
/// to invoke concurrently (any randomness must come from the passed rng).
template <typename Obs>
using ModelFactory =
    std::function<hmm::HmmModel<Obs>(size_t k, prob::Rng& rng)>;

/// Number of free parameters of a k-state model whose emission has
/// `emission_params_per_state` free parameters per state:
///   (k-1) initial + k(k-1) transition + k * per-state emission.
double FreeParameterCount(size_t k, double emission_params_per_state);

/// \brief Sweeps k over [min_states, max_states], fitting each candidate
/// (with restarts) and scoring by the chosen criterion.
///
/// The (k, restart) fits are independent work units fanned across a
/// core::BatchMStepDriver: each unit seeds its own rng from its (k, restart)
/// pair, runs a single-threaded fit with the claiming worker's persistent
/// M-step workspace, and drops its final log-likelihood into a per-unit
/// slot. The max-over-restarts and score comparison then run sequentially
/// in ascending k and restart order, so the sweep is bitwise identical for
/// every options.num_threads.
template <typename Obs>
StateSelectionResult SelectStateCount(
    const hmm::Dataset<Obs>& data, const ModelFactory<Obs>& factory,
    double emission_params_per_state, const StateSelectionOptions& options) {
  DHMM_CHECK(options.min_states >= 2 &&
             options.min_states <= options.max_states);
  DHMM_CHECK(options.restarts > 0);
  const double n_frames = static_cast<double>(hmm::TotalFrames(data));
  const size_t num_k = options.max_states - options.min_states + 1;
  const size_t restarts = static_cast<size_t>(options.restarts);

  std::vector<double> unit_loglik(num_k * restarts);
  BatchMStepDriver driver(BatchMStepOptions{options.num_threads});
  driver.Run(unit_loglik.size(), [&](TransitionUpdateWorkspace& ws,
                                     size_t unit) {
    const size_t k = options.min_states + unit / restarts;
    const size_t r = unit % restarts;
    prob::Rng rng(options.seed + 1000 * k + static_cast<uint64_t>(r));
    hmm::HmmModel<Obs> model = factory(k, rng);
    if (options.alpha == 0.0) {
      hmm::EmOptions em;
      em.max_iters = options.em_iters;
      unit_loglik[unit] = hmm::FitEm(&model, data, em).final_loglik;
    } else {
      DiversifiedEmOptions opts;
      opts.alpha = options.alpha;
      opts.max_iters = options.em_iters;
      FitDiversifiedHmm(&model, data, opts, &ws);
      unit_loglik[unit] = hmm::DatasetLogLikelihood(model, data);
    }
  });

  StateSelectionResult result;
  double best_score = std::numeric_limits<double>::infinity();
  for (size_t ki = 0; ki < num_k; ++ki) {
    const size_t k = options.min_states + ki;
    double best_ll = -std::numeric_limits<double>::infinity();
    for (size_t r = 0; r < restarts; ++r) {
      best_ll = std::max(best_ll, unit_loglik[ki * restarts + r]);
    }
    StateCandidate cand;
    cand.k = k;
    cand.log_likelihood = best_ll;
    cand.num_parameters = FreeParameterCount(k, emission_params_per_state);
    double penalty = options.criterion == SelectionCriterion::kBic
                         ? cand.num_parameters * std::log(n_frames)
                         : 2.0 * cand.num_parameters;
    cand.score = -2.0 * best_ll + penalty;
    if (cand.score < best_score) {
      best_score = cand.score;
      result.best_k = k;
    }
    result.candidates.push_back(cand);
  }
  return result;
}

}  // namespace dhmm::core

#endif  // DHMM_CORE_STATE_SELECTION_H_
