// Incremental (stepwise / mini-batch) EM for the diversified HMM: the
// train side of the train→serve loop.
//
// An IncrementalEmTrainer owns a mutable working model plus one
// hmm::EStepAccumulator. Posteriors flow in from two directions —
// AccumulateBatch() runs exact mini-batch E-steps on the batched engine,
// and the AccumulateStream* entry points ingest live fixed-lag posteriors
// straight out of serve::SessionManager — and Step() turns whatever has
// accumulated into one M-step: the closed-form pi / emission updates plus
// the paper's DPP-diversified transition update through the persistent
// core::TransitionUpdateWorkspace (alpha = 0 degrades to the exact
// maximum-likelihood row normalization of hmm::FitEm). Each Step()
// publishes a fresh immutable snapshot for RCU hot-swap into
// serve::DecodeService / serve::ModelRegistry / serve::SessionManager —
// the paper's diversified training running continuously instead of
// offline.
//
// Contract (tests/session_test.cc): one AccumulateBatch over the full
// dataset followed by Step() reproduces one hmm::FitEm iteration
// **bitwise** — same accumulator type, same reduction order, same M-step
// expression — for both the ML and the DPP-diversified transition update,
// and for every engine thread count. N such rounds reproduce N FitEm
// iterations.
//
// Thread-safe: stream accumulation arrives from many pusher threads; all
// entry points serialize on one internal mutex. Steady-state stream
// accumulation is allocation-free (scratch is grow-only).
#ifndef DHMM_CORE_INCREMENTAL_EM_H_
#define DHMM_CORE_INCREMENTAL_EM_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>

#include "core/transition_update.h"
#include "hmm/engine.h"
#include "hmm/estep_accumulator.h"
#include "hmm/model.h"
#include "hmm/sequence.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/status.h"

namespace dhmm::core {

/// Options for the incremental trainer. Validate()-checked POD, like the
/// serve options structs.
struct IncrementalEmOptions {
  /// Diversity weight (paper's alpha). 0 selects the exact Baum-Welch
  /// maximum-likelihood transition update of hmm::FitEm; > 0 runs the
  /// Algorithm-1 projected-gradient MAP update each Step().
  double alpha = 0.0;
  /// Product-kernel exponent (paper fixes 0.5).
  double rho = 0.5;
  /// Inner Algorithm-1 controls for the diversified transition update.
  optim::ProjectedGradientOptions ascent;
  /// Floor applied to transition rows after projection.
  double row_floor = 1e-10;
  bool update_pi = true;
  bool update_transitions = true;
  bool update_emission = true;
  /// E-step worker threads for AccumulateBatch (any value produces
  /// bitwise-identical statistics; purely a throughput knob).
  int num_threads = 1;
  /// Sequence length at which AccumulateBatch switches to the checkpointed
  /// forward-backward (see hmm::BatchOptions). 0 disables.
  size_t checkpoint_threshold_frames =
      hmm::kDefaultCheckpointThresholdFrames;
  /// StepReady() gate: frames to accumulate before a Step is suggested.
  /// 0 means the caller paces Steps manually.
  uint64_t min_frames_per_step = 0;

  Status Validate() const {
    if (!(alpha >= 0.0)) {
      return Status::InvalidArgument(
          "IncrementalEmOptions::alpha must be >= 0");
    }
    if (!(rho > 0.0)) {
      return Status::InvalidArgument(
          "IncrementalEmOptions::rho must be > 0");
    }
    if (!(row_floor >= 0.0)) {
      return Status::InvalidArgument(
          "IncrementalEmOptions::row_floor must be >= 0");
    }
    return Status::OK();
  }
};

/// \brief Stepwise EM driver: accumulate posteriors, Step(), hot-swap.
template <typename Obs>
class IncrementalEmTrainer {
 public:
  explicit IncrementalEmTrainer(
      std::shared_ptr<const hmm::HmmModel<Obs>> init,
      const IncrementalEmOptions& options = {})
      : options_(options),
        engine_(hmm::BatchOptions{options.num_threads,
                                  options.checkpoint_threshold_frames}),
        snapshot_(std::move(init)),
        model_(*snapshot_) {
    const Status opt_st = options.Validate();
    DHMM_CHECK_MSG(opt_st.ok(), opt_st.message().c_str());
    model_.Validate();
    update_opts_.alpha = options_.alpha;
    update_opts_.rho = options_.rho;
    update_opts_.ascent = options_.ascent;
    update_opts_.row_floor = options_.row_floor;
    acc_.Reset(model_.num_states());
    qrow_.Resize(model_.num_states());
    obs::Registry& reg = obs::Registry::Global();
    m_steps_ = reg.GetCounter("trainer.steps");
    m_snapshots_ = reg.GetCounter("trainer.snapshots_published");
    g_last_loglik_ = reg.GetGauge("trainer.last_round_loglik");
  }

  IncrementalEmTrainer(const IncrementalEmTrainer&) = delete;
  IncrementalEmTrainer& operator=(const IncrementalEmTrainer&) = delete;

  /// \brief One exact E-step over `batch`, added into the open round.
  /// Feeding the full dataset as one batch makes the following Step() a
  /// bitwise hmm::FitEm iteration; tiling it across calls is mini-batch EM
  /// with identical statistics.
  void AccumulateBatch(const hmm::Dataset<Obs>& batch) {
    std::lock_guard<std::mutex> lock(mu_);
    OpenRoundLocked();
    engine_.AccumulateEStep(
        model_, batch, &acc_,
        options_.update_emission ? model_.emission.get() : nullptr);
  }

  /// \brief Ingests one live-stream frame: smoothed posterior `gamma`
  /// (length k, normalized — what serve/stream_math.h leaves in its gamma
  /// row) plus the raw observation for the emission statistics.
  /// Allocation-free at steady state.
  void AccumulateStreamFrame(const Obs& y, const double* gamma, size_t k,
                             bool first_frame) {
    std::lock_guard<std::mutex> lock(mu_);
    DHMM_DCHECK(k == model_.num_states());
    OpenRoundLocked();
    acc_.AddStreamFrame(gamma, first_frame);
    if (options_.update_emission) {
      double* q = qrow_.data();
      for (size_t i = 0; i < k; ++i) q[i] = gamma[i];
      model_.emission->Accumulate(y, qrow_);
    }
  }

  /// \brief Ingests one fixed-lag transition posterior: `alpha` is the
  /// scaled forward message at the emitted frame under the *serving*
  /// model whose transition matrix is `a`, and `frame_u` the hoisted
  /// backward product the smoothing sweep left behind (see
  /// hmm::EStepAccumulator::AddStreamTransition).
  void AccumulateStreamTransition(const double* alpha,
                                  const linalg::Matrix& a,
                                  const double* frame_u) {
    std::lock_guard<std::mutex> lock(mu_);
    DHMM_DCHECK(a.rows() == model_.num_states());
    OpenRoundLocked();
    acc_.AddStreamTransition(alpha, a, frame_u);
  }

  /// Frames accumulated in the open round.
  uint64_t frames_accumulated() const {
    std::lock_guard<std::mutex> lock(mu_);
    return acc_.frames;
  }

  /// True when at least min_frames_per_step frames have accumulated
  /// (always false at 0 frames, and when the gate is disabled).
  bool StepReady() const {
    std::lock_guard<std::mutex> lock(mu_);
    return options_.min_frames_per_step > 0 &&
           acc_.frames >= options_.min_frames_per_step;
  }

  /// M-steps performed so far.
  uint64_t steps() const {
    std::lock_guard<std::mutex> lock(mu_);
    return steps_;
  }

  /// Log-likelihood summed over the batch E-steps of the open round —
  /// the same quantity FitEm records per iteration (stream frames do not
  /// contribute; their likelihood lives on their sessions).
  double round_log_likelihood() const {
    std::lock_guard<std::mutex> lock(mu_);
    return acc_.log_likelihood;
  }

  /// \brief Runs one M-step over everything accumulated since the last
  /// Step and publishes the resulting immutable snapshot (RCU: hand it to
  /// DecodeService::UpdateModel / ModelRegistry::UpdateModel /
  /// SessionManager::UpdateModel). A Step with zero accumulated frames is
  /// a no-op returning the current snapshot.
  std::shared_ptr<const hmm::HmmModel<Obs>> Step() {
    std::lock_guard<std::mutex> lock(mu_);
    if (acc_.frames == 0) return snapshot_;
    // The exact FitEm M-step order: pi, transitions, emission. Statistics
    // a round never touched keep their previous parameters: a stream-only
    // round in which no new stream started has no initial-state evidence
    // (pi accumulates only from first frames), and a lag-0 round has no
    // transition posteriors — updating from an all-zero accumulator would
    // be a division by zero, not an estimate.
    if (options_.update_pi && acc_.sequences > 0) {
      acc_.pi_acc.NormalizeToSimplex();
      model_.pi = acc_.pi_acc;
    }
    if (options_.update_transitions && HasMass(acc_.trans_acc)) {
      if (options_.alpha > 0.0) {
        // The paper's DPP-diversified update (Algorithm 1) through the
        // persistent workspace — allocation-free after the first Step at
        // a given k, exactly like FitDiversifiedHmm's injected M-step.
        UpdateTransitions(model_.a, acc_.trans_acc, update_opts_, &ws_,
                          &m_result_);
        std::swap(model_.a, m_result_.a);
      } else {
        a_ml_ = acc_.trans_acc;
        a_ml_.NormalizeRows();
        model_.a = a_ml_;
      }
    }
    if (options_.update_emission && round_open_) {
      model_.emission->FinishAccumulate();
    }
    round_open_ = false;
    // The round's batch log-likelihood, exported before the accumulator
    // reset wipes it (stream frames do not contribute; see
    // round_log_likelihood()).
    g_last_loglik_->Set(acc_.log_likelihood);
    acc_.Reset(model_.num_states());
    ++steps_;
    m_steps_->Add();
    snapshot_ = std::make_shared<const hmm::HmmModel<Obs>>(model_);
    m_snapshots_->Add();
    return snapshot_;
  }

  /// The latest published snapshot (the initial model before any Step).
  std::shared_ptr<const hmm::HmmModel<Obs>> snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return snapshot_;
  }

 private:
  // True when any expected-count cell is positive — an all-zero matrix
  // means the round produced no posteriors of this kind.
  static bool HasMass(const linalg::Matrix& counts) {
    for (size_t i = 0; i < counts.rows(); ++i) {
      for (size_t j = 0; j < counts.cols(); ++j) {
        if (counts(i, j) > 0.0) return true;
      }
    }
    return false;
  }

  // Opens an EM round on first accumulation after a Step: emission
  // sufficient statistics live inside the emission model between
  // BeginAccumulate / FinishAccumulate, bracketed once per round so batch
  // and mini-batch rounds share one code path.
  void OpenRoundLocked() {
    if (round_open_) return;
    if (options_.update_emission) model_.emission->BeginAccumulate();
    round_open_ = true;
  }

  const IncrementalEmOptions options_;
  TransitionUpdateOptions update_opts_;

  mutable std::mutex mu_;
  hmm::BatchEmEngine<Obs> engine_;
  hmm::EStepAccumulator acc_;
  std::shared_ptr<const hmm::HmmModel<Obs>> snapshot_;
  hmm::HmmModel<Obs> model_;  // mutable working copy the M-step updates
  TransitionUpdateWorkspace ws_;
  TransitionUpdateResult m_result_;
  linalg::Matrix a_ml_;    // scratch for the ML row normalization
  linalg::Vector qrow_;    // scratch posterior row for stream frames
  bool round_open_ = false;
  uint64_t steps_ = 0;

  // Process-wide metrics (obs/metrics.h): registered once at construction.
  obs::Counter* m_steps_ = nullptr;
  obs::Counter* m_snapshots_ = nullptr;
  obs::Gauge* g_last_loglik_ = nullptr;
};

}  // namespace dhmm::core

#endif  // DHMM_CORE_INCREMENTAL_EM_H_
