#include "core/batch_mstep.h"

#include "util/check.h"

namespace dhmm::core {

BatchMStepDriver::BatchMStepDriver(const BatchMStepOptions& options)
    : pool_(options.num_threads),
      workspaces_(static_cast<size_t>(pool_.num_threads())) {}

void BatchMStepDriver::Run(size_t n, const UnitFn& unit_fn,
                           const ReduceFn& reduce) {
  DHMM_CHECK(unit_fn != nullptr);
  pool_.ParallelFor(n, [&](int worker, size_t unit) {
    unit_fn(workspaces_[static_cast<size_t>(worker)], unit);
  });
  if (reduce != nullptr) {
    for (size_t unit = 0; unit < n; ++unit) reduce(unit);
  }
}

}  // namespace dhmm::core
