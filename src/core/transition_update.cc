#include "core/transition_update.h"

#include <cmath>
#include <limits>
#include <utility>

#include "dpp/logdet.h"
#include "optim/simplex_projection.h"
#include "util/check.h"

namespace dhmm::core {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// Count term of Eq. 13: sum_ij C_ij log A_ij, with the raw count gradient
// C_ij / A_ij optionally written alongside (grad may be null). Returns -inf
// when A has a zero where C > 0.
double CountTerm(const linalg::Matrix& a, const linalg::Matrix& counts,
                 linalg::Matrix* grad) {
  double obj = 0.0;
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      double c = counts(i, j);
      double g = 0.0;
      if (c != 0.0) {
        DHMM_DCHECK(c > 0.0);
        if (a(i, j) <= 0.0) return kNegInf;
        obj += c * std::log(a(i, j));
        g = c / a(i, j);
      }
      if (grad != nullptr) (*grad)(i, j) = g;
    }
  }
  return obj;
}

// Line-search probe: the workspace objective plus the accepted-probe
// snapshot. A probe that beats every value seen this update is (by the
// optimizer's acceptance rule) the current candidate, and the ascent will
// come back to that exact point for its gradient — so its kernel state is
// copied aside for the oracle below to reuse.
double ProbeObjective(const linalg::Matrix& a, const linalg::Matrix& counts,
                      const TransitionUpdateOptions& options,
                      TransitionUpdateWorkspace* ws) {
  double obj = TransitionObjective(a, counts, options, &ws->kernel);
  if (options.alpha != 0.0 && std::isfinite(obj) &&
      (!ws->accepted_valid || obj > ws->accepted_objective)) {
    ws->accepted_valid = true;
    ws->accepted_objective = obj;
    ws->accepted_a = a;
    ws->accepted.powed = ws->kernel.powed;
    ws->accepted.kernel = ws->kernel.kernel;
    ws->accepted.chol = ws->kernel.chol;
  }
  return obj;
}

// Adds the tether gradient 2 alpha_A (A0 - A) (Eq. 18 last term) to g.
void AddTetherGradient(const linalg::Matrix& a,
                       const TransitionUpdateOptions& options,
                       linalg::Matrix* g) {
  if (options.tether == nullptr || options.tether_weight == 0.0) return;
  const double two_w = 2.0 * options.tether_weight;
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      (*g)(i, j) += ((*options.tether)(i, j) - a(i, j)) * two_w;
    }
  }
}

// Natural-gradient (replicator) direction on the simplex:
//   d_ij = A_ij * (g_ij - sum_m A_im g_im).
// Same fixed points as the Euclidean projected gradient (at a KKT point
// g is constant on each row's support, so d = 0), but globally bounded:
// the count term contributes A_ij * C_ij/A_ij = C_ij even when simplex
// projection has floored an entry, where the raw C/A gradient explodes
// and freezes a plain projected-gradient ascent.
void ReplicatorDirection(const linalg::Matrix& a, const linalg::Matrix& g,
                         linalg::Matrix* grad) {
  const size_t k = a.rows();
  grad->Resize(k, k);
  for (size_t i = 0; i < k; ++i) {
    double row_mean = 0.0;
    for (size_t j = 0; j < k; ++j) row_mean += a(i, j) * g(i, j);
    for (size_t j = 0; j < k; ++j) {
      (*grad)(i, j) = a(i, j) * (g(i, j) - row_mean);
    }
  }
}

// Fused F(A) and its natural gradient: one kernel build + one factorization
// cover both the alpha * log det K~ value and its gradient
// (dpp::LogDetAndGrad), where the pre-workspace code rebuilt and
// refactorized the same kernel in separate objective and gradient callbacks.
// When the point is the snapshotted accepted probe, even that single build
// is skipped. The value accumulation mirrors TransitionObjective term by
// term so probe values and oracle values are bitwise identical.
bool FusedObjectiveAndGradient(const linalg::Matrix& a,
                               const linalg::Matrix& counts,
                               const TransitionUpdateOptions& options,
                               TransitionUpdateWorkspace* ws, double* value,
                               linalg::Matrix* grad) {
  const size_t k = a.rows();
  *value = kNegInf;

  if (options.alpha != 0.0 && ws->accepted_valid && a == ws->accepted_a) {
    // Snapshot hit: the probe that produced this point already built and
    // factorized its kernel and evaluated the full objective, so only the
    // gradient remains — count term (no logs needed), dpp solve on the
    // snapshotted factors, tether, replicator.
    ws->raw_grad.Resize(k, k);
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = 0; j < k; ++j) {
        double c = counts(i, j);
        ws->raw_grad(i, j) = c != 0.0 ? c / a(i, j) : 0.0;
      }
    }
    dpp::GradLogDetFromFactoredWorkspace(a, options.rho, &ws->accepted,
                                         &ws->accepted.grad);
    ws->raw_grad.AddScaled(ws->accepted.grad, options.alpha);
    AddTetherGradient(a, options, &ws->raw_grad);
    ReplicatorDirection(a, ws->raw_grad, grad);
    *value = ws->accepted_objective;
    return true;
  }

  // Raw Euclidean gradient g of the objective (Eq. 15 / Eq. 18).
  ws->raw_grad.Resize(k, k);
  double obj = CountTerm(a, counts, &ws->raw_grad);
  if (obj == kNegInf) return false;

  // Diversity term: alpha * log det K~ and alpha * grad log det K~.
  if (options.alpha != 0.0) {
    double log_det = kNegInf;
    if (!dpp::LogDetAndGrad(a, options.rho, &ws->kernel, &log_det,
                            &ws->kernel.grad)) {
      return false;
    }
    obj += options.alpha * log_det;
    ws->raw_grad.AddScaled(ws->kernel.grad, options.alpha);
  }

  // Tether term: -alpha_A ||A - A0||^2 and its gradient (Eq. 18).
  if (options.tether != nullptr && options.tether_weight != 0.0) {
    obj -= options.tether_weight * a.squared_distance(*options.tether);
  }
  AddTetherGradient(a, options, &ws->raw_grad);
  ReplicatorDirection(a, ws->raw_grad, grad);
  *value = obj;
  return true;
}

// Single-pointer capture context so the std::function callbacks handed to
// the inner ascent fit its small-buffer storage — capturing the operands
// individually would spill to the heap on every update.
struct AscentContext {
  const linalg::Matrix* counts;
  const TransitionUpdateOptions* options;
  TransitionUpdateWorkspace* ws;
};

}  // namespace

void ProjectFeasible(linalg::Matrix* a, double row_floor) {
  linalg::Vector scratch;
  ProjectFeasible(a, row_floor, &scratch);
}

void ProjectFeasible(linalg::Matrix* a, double row_floor,
                     linalg::Vector* scratch) {
  optim::ProjectRowsToSimplex(a, scratch);
  if (row_floor <= 0.0) return;
  const size_t n = a->cols();
  DHMM_CHECK_MSG(row_floor * static_cast<double>(n) < 1.0,
                 "row_floor too large for the row width");
  scratch->Resize(n);
  double* floored = scratch->data();  // 0/1 membership flags
  for (size_t r = 0; r < a->rows(); ++r) {
    double* row = a->row_data(r);
    size_t num_floored = 0;
    for (size_t c = 0; c < n; ++c) {
      floored[c] = 0.0;
      if (row[c] < row_floor) {
        floored[c] = 1.0;
        ++num_floored;
      }
    }
    if (num_floored == 0) continue;
    // Pin floored entries at exactly row_floor and rescale only the
    // remaining (un-floored) mass. Rescaling can push further entries under
    // the floor, so iterate the floored set to a fixed point; it grows
    // strictly each pass, and because row_floor * n < 1 at least one entry
    // always survives, so this terminates within n passes.
    for (;;) {
      double free_sum = 0.0;
      for (size_t c = 0; c < n; ++c) {
        if (floored[c] == 0.0) free_sum += row[c];
      }
      DHMM_DCHECK(free_sum > 0.0);
      const double target =
          1.0 - row_floor * static_cast<double>(num_floored);
      const double scale = target / free_sum;
      bool grew = false;
      for (size_t c = 0; c < n; ++c) {
        if (floored[c] == 0.0 && row[c] * scale < row_floor) {
          floored[c] = 1.0;
          ++num_floored;
          grew = true;
        }
      }
      if (!grew) {
        for (size_t c = 0; c < n; ++c) {
          row[c] = floored[c] != 0.0 ? row_floor : row[c] * scale;
        }
        break;
      }
    }
  }
}

double TransitionObjective(const linalg::Matrix& a,
                           const linalg::Matrix& counts,
                           const TransitionUpdateOptions& options) {
  dpp::KernelWorkspace ws;
  return TransitionObjective(a, counts, options, &ws);
}

double TransitionObjective(const linalg::Matrix& a,
                           const linalg::Matrix& counts,
                           const TransitionUpdateOptions& options,
                           dpp::KernelWorkspace* ws) {
  DHMM_CHECK(a.rows() == counts.rows() && a.cols() == counts.cols());
  double obj = CountTerm(a, counts, /*grad=*/nullptr);
  if (obj == kNegInf) return kNegInf;
  if (options.alpha != 0.0) {
    double ld = dpp::LogDetNormalizedKernel(a, options.rho, ws);
    if (ld == kNegInf) return kNegInf;
    obj += options.alpha * ld;
  }
  if (options.tether != nullptr && options.tether_weight != 0.0) {
    obj -= options.tether_weight * a.squared_distance(*options.tether);
  }
  return obj;
}

TransitionUpdateResult UpdateTransitions(
    const linalg::Matrix& a_init, const linalg::Matrix& counts,
    const TransitionUpdateOptions& options) {
  TransitionUpdateWorkspace ws;
  TransitionUpdateResult result;
  UpdateTransitions(a_init, counts, options, &ws, &result);
  return result;
}

void UpdateTransitions(const linalg::Matrix& a_init,
                       const linalg::Matrix& counts,
                       const TransitionUpdateOptions& options,
                       TransitionUpdateWorkspace* ws,
                       TransitionUpdateResult* result) {
  const size_t k = a_init.rows();
  DHMM_CHECK(a_init.cols() == k);
  DHMM_CHECK(counts.rows() == k && counts.cols() == k);
  DHMM_CHECK(options.alpha >= 0.0);
  DHMM_CHECK(options.tether_weight >= 0.0);
  DHMM_CHECK(ws != nullptr && result != nullptr);

  result->objective = 0.0;
  result->log_det = 0.0;
  result->iterations = 0;
  result->converged = false;
  ws->accepted_valid = false;

  // alpha = 0 and no tether: closed-form ML update (paper's "same as
  // traditional HMM" case).
  if (options.alpha == 0.0 &&
      (options.tether == nullptr || options.tether_weight == 0.0)) {
    result->a = counts;
    result->a.NormalizeRows();
    ProjectFeasible(&result->a, options.row_floor, &ws->row_scratch);
    result->objective =
        TransitionObjective(result->a, counts, options, &ws->kernel);
    result->log_det =
        dpp::LogDetNormalizedKernel(result->a, options.rho, &ws->kernel);
    result->converged = true;
    return;
  }

  // Feasible start: prefer the better of {previous A, ML update}. Starting
  // from the normalized counts is crucial for conditioning: there the count
  // gradient C_ij/A_ij is constant within each row, so the simplex projection
  // cancels it exactly and the ascent only has to trade off the prior terms.
  ws->ml = counts;
  ws->ml.NormalizeRows();
  ProjectFeasible(&ws->ml, options.row_floor, &ws->row_scratch);
  ws->start = a_init;
  ProjectFeasible(&ws->start, options.row_floor, &ws->row_scratch);
  double obj_start;
  {
    double obj_ml = ProbeObjective(ws->ml, counts, options, ws);
    obj_start = ProbeObjective(ws->start, counts, options, ws);
    if (obj_ml > obj_start || obj_start == kNegInf) {
      ws->start = ws->ml;
      obj_start = obj_ml;
    }
  }
  double jitter = options.feasibility_jitter;
  for (int attempt = 0; attempt < 40 && obj_start == kNegInf; ++attempt) {
    const size_t n = ws->start.cols();
    for (size_t i = 0; i < ws->start.rows(); ++i) {
      for (size_t j = 0; j < n; ++j) {
        // Deterministic, row-dependent perturbation: tilt row i toward its
        // (i mod n)-th corner. Distinct tilts separate coincident rows.
        double bump = (j == i % n) ? jitter : 0.0;
        ws->start(i, j) = (ws->start(i, j) + bump) / (1.0 + jitter);
      }
    }
    jitter *= 2.0;
    obj_start = ProbeObjective(ws->start, counts, options, ws);
  }
  DHMM_CHECK_MSG(obj_start > kNegInf,
                 "could not find a feasible starting transition matrix");

  AscentContext ctx{&counts, &options, ws};
  optim::MatrixObjective objective = [&ctx](const linalg::Matrix& a) {
    return ProbeObjective(a, *ctx.counts, *ctx.options, ctx.ws);
  };
  optim::MatrixValueGradient value_and_grad =
      [&ctx](const linalg::Matrix& a, double* value, linalg::Matrix* grad) {
        return FusedObjectiveAndGradient(a, *ctx.counts, *ctx.options,
                                         ctx.ws, value, grad);
      };
  optim::MatrixProjection project = [&ctx](linalg::Matrix* a) {
    ProjectFeasible(a, ctx.options->row_floor, &ctx.ws->row_scratch);
  };

  optim::ProjectedGradientAscent(ws->start, objective, value_and_grad,
                                 project, options.ascent, &ws->ascent,
                                 &ws->pg);

  // Copy (not swap): swapping would leave pg.argmax holding result->a's
  // previous buffer — empty on the first call — and the next run would have
  // to reallocate it. The copy reuses both buffers' capacity.
  result->a = ws->pg.argmax;
  result->objective = ws->pg.objective;
  result->log_det =
      dpp::LogDetNormalizedKernel(result->a, options.rho, &ws->kernel);
  result->iterations = ws->pg.iterations;
  result->converged = ws->pg.converged;
}

}  // namespace dhmm::core
