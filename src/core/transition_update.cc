#include "core/transition_update.h"

#include <cmath>
#include <limits>

#include "dpp/logdet.h"
#include "optim/simplex_projection.h"
#include "util/check.h"

namespace dhmm::core {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// Projects rows to the simplex, then enforces a strictly positive floor so
// the count term (C_ij log A_ij with C_ij > 0) stays finite.
void ProjectFeasible(linalg::Matrix* a, double row_floor) {
  optim::ProjectRowsToSimplex(a);
  if (row_floor <= 0.0) return;
  for (size_t r = 0; r < a->rows(); ++r) {
    double* row = a->row_data(r);
    bool clipped = false;
    for (size_t c = 0; c < a->cols(); ++c) {
      if (row[c] < row_floor) {
        row[c] = row_floor;
        clipped = true;
      }
    }
    if (clipped) {
      double s = 0.0;
      for (size_t c = 0; c < a->cols(); ++c) s += row[c];
      for (size_t c = 0; c < a->cols(); ++c) row[c] /= s;
    }
  }
}

}  // namespace

double TransitionObjective(const linalg::Matrix& a,
                           const linalg::Matrix& counts,
                           const TransitionUpdateOptions& options) {
  DHMM_CHECK(a.rows() == counts.rows() && a.cols() == counts.cols());
  double obj = 0.0;
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      double c = counts(i, j);
      if (c == 0.0) continue;
      DHMM_DCHECK(c > 0.0);
      if (a(i, j) <= 0.0) return kNegInf;
      obj += c * std::log(a(i, j));
    }
  }
  if (options.alpha != 0.0) {
    double ld = dpp::LogDetNormalizedKernel(a, options.rho);
    if (ld == kNegInf) return kNegInf;
    obj += options.alpha * ld;
  }
  if (options.tether != nullptr && options.tether_weight != 0.0) {
    obj -= options.tether_weight * a.squared_distance(*options.tether);
  }
  return obj;
}

TransitionUpdateResult UpdateTransitions(
    const linalg::Matrix& a_init, const linalg::Matrix& counts,
    const TransitionUpdateOptions& options) {
  const size_t k = a_init.rows();
  DHMM_CHECK(a_init.cols() == k);
  DHMM_CHECK(counts.rows() == k && counts.cols() == k);
  DHMM_CHECK(options.alpha >= 0.0);
  DHMM_CHECK(options.tether_weight >= 0.0);

  TransitionUpdateResult result;

  // alpha = 0 and no tether: closed-form ML update (paper's "same as
  // traditional HMM" case).
  if (options.alpha == 0.0 &&
      (options.tether == nullptr || options.tether_weight == 0.0)) {
    result.a = counts;
    result.a.NormalizeRows();
    ProjectFeasible(&result.a, options.row_floor);
    result.objective = TransitionObjective(result.a, counts, options);
    result.log_det = dpp::LogDetNormalizedKernel(result.a, options.rho);
    result.converged = true;
    return result;
  }

  // Feasible start: prefer the better of {previous A, ML update}. Starting
  // from the normalized counts is crucial for conditioning: there the count
  // gradient C_ij/A_ij is constant within each row, so the simplex projection
  // cancels it exactly and the ascent only has to trade off the prior terms.
  linalg::Matrix ml = counts;
  ml.NormalizeRows();
  ProjectFeasible(&ml, options.row_floor);
  linalg::Matrix start = a_init;
  ProjectFeasible(&start, options.row_floor);
  {
    double obj_ml = TransitionObjective(ml, counts, options);
    double obj_start = TransitionObjective(start, counts, options);
    if (obj_ml > obj_start || obj_start == kNegInf) start = ml;
  }
  double jitter = options.feasibility_jitter;
  for (int attempt = 0;
       attempt < 40 && TransitionObjective(start, counts, options) == kNegInf;
       ++attempt) {
    const size_t n = start.cols();
    for (size_t i = 0; i < start.rows(); ++i) {
      for (size_t j = 0; j < n; ++j) {
        // Deterministic, row-dependent perturbation: tilt row i toward its
        // (i mod n)-th corner. Distinct tilts separate coincident rows.
        double bump = (j == i % n) ? jitter : 0.0;
        start(i, j) = (start(i, j) + bump) / (1.0 + jitter);
      }
    }
    jitter *= 2.0;
  }
  DHMM_CHECK_MSG(TransitionObjective(start, counts, options) > kNegInf,
                 "could not find a feasible starting transition matrix");

  auto objective = [&](const linalg::Matrix& a) {
    return TransitionObjective(a, counts, options);
  };
  auto gradient = [&](const linalg::Matrix& a, linalg::Matrix* grad) {
    // Raw Euclidean gradient g of the objective (Eq. 15 / Eq. 18).
    linalg::Matrix g(k, k);
    // Count term: C_ij / A_ij.
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = 0; j < k; ++j) {
        if (counts(i, j) > 0.0) {
          DHMM_DCHECK(a(i, j) > 0.0);
          g(i, j) = counts(i, j) / a(i, j);
        }
      }
    }
    // Diversity term: alpha * grad log det K~.
    if (options.alpha != 0.0) {
      linalg::Matrix dpp_grad;
      if (!dpp::GradLogDetNormalizedKernel(a, options.rho, &dpp_grad)) {
        return false;
      }
      g += dpp_grad * options.alpha;
    }
    // Tether term: -2 alpha_A (A - A0) (Eq. 18 last term).
    if (options.tether != nullptr && options.tether_weight != 0.0) {
      g += (*options.tether - a) * (2.0 * options.tether_weight);
    }
    // Natural-gradient (replicator) direction on the simplex:
    //   d_ij = A_ij * (g_ij - sum_m A_im g_im).
    // Same fixed points as the Euclidean projected gradient (at a KKT point
    // g is constant on each row's support, so d = 0), but globally bounded:
    // the count term contributes A_ij * C_ij/A_ij = C_ij even when simplex
    // projection has floored an entry, where the raw C/A gradient explodes
    // and freezes a plain projected-gradient ascent.
    *grad = linalg::Matrix(k, k);
    for (size_t i = 0; i < k; ++i) {
      double row_mean = 0.0;
      for (size_t j = 0; j < k; ++j) row_mean += a(i, j) * g(i, j);
      for (size_t j = 0; j < k; ++j) {
        (*grad)(i, j) = a(i, j) * (g(i, j) - row_mean);
      }
    }
    return true;
  };
  auto project = [&](linalg::Matrix* a) {
    ProjectFeasible(a, options.row_floor);
  };

  optim::ProjectedGradientResult pg = optim::ProjectedGradientAscent(
      start, objective, gradient, project, options.ascent);

  result.a = std::move(pg.argmax);
  result.objective = pg.objective;
  result.log_det = dpp::LogDetNormalizedKernel(result.a, options.rho);
  result.iterations = pg.iterations;
  result.converged = pg.converged;
  return result;
}

}  // namespace dhmm::core
