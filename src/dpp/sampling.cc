#include "dpp/sampling.h"

#include <algorithm>
#include <cmath>

#include "dpp/esp.h"
#include "linalg/eigen_sym.h"
#include "linalg/lu.h"
#include "util/check.h"

namespace dhmm::dpp {

namespace {

// Phase 2 of the standard DPP sampler: given selected eigenvectors (columns
// of `v`, orthonormal, n x m), draw m items one at a time.
std::vector<size_t> SampleFromEigenvectors(linalg::Matrix v, prob::Rng& rng) {
  const size_t n = v.rows();
  std::vector<size_t> out;
  size_t m = v.cols();
  while (m > 0) {
    // P(item i) = (1/m) * sum_c v(i, c)^2.
    linalg::Vector weights(n);
    for (size_t i = 0; i < n; ++i) {
      double s = 0.0;
      for (size_t c = 0; c < m; ++c) s += v(i, c) * v(i, c);
      weights[i] = s;
    }
    size_t item = rng.Categorical(weights);
    out.push_back(item);

    if (m == 1) break;
    // Project the basis onto the complement of e_item: pick the column with
    // the largest |v(item, c)|, use it to cancel the item-th coordinate of
    // the others, drop it, then re-orthonormalize (modified Gram-Schmidt).
    size_t pivot = 0;
    double best = 0.0;
    for (size_t c = 0; c < m; ++c) {
      if (std::fabs(v(item, c)) > best) {
        best = std::fabs(v(item, c));
        pivot = c;
      }
    }
    DHMM_CHECK_MSG(best > 0.0, "degenerate eigenbasis during DPP sampling");
    linalg::Matrix next(n, m - 1);
    size_t out_c = 0;
    for (size_t c = 0; c < m; ++c) {
      if (c == pivot) continue;
      double f = v(item, c) / v(item, pivot);
      for (size_t i = 0; i < n; ++i) {
        next(i, out_c) = v(i, c) - f * v(i, pivot);
      }
      ++out_c;
    }
    // Modified Gram-Schmidt on the m-1 remaining columns.
    for (size_t c = 0; c < next.cols(); ++c) {
      for (size_t prev = 0; prev < c; ++prev) {
        double dot = 0.0;
        for (size_t i = 0; i < n; ++i) dot += next(i, c) * next(i, prev);
        for (size_t i = 0; i < n; ++i) next(i, c) -= dot * next(i, prev);
      }
      double norm = 0.0;
      for (size_t i = 0; i < n; ++i) norm += next(i, c) * next(i, c);
      norm = std::sqrt(norm);
      DHMM_CHECK_MSG(norm > 1e-12, "rank collapse during DPP sampling");
      for (size_t i = 0; i < n; ++i) next(i, c) /= norm;
    }
    v = std::move(next);
    m = v.cols();
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::vector<size_t> SampleDpp(const linalg::Matrix& l_kernel, prob::Rng& rng) {
  DHMM_CHECK(l_kernel.rows() == l_kernel.cols());
  linalg::SymmetricEigen eig(l_kernel);
  const linalg::Vector& lambda = eig.eigenvalues();
  const size_t n = lambda.size();
  // Phase 1: include eigenvector c independently with prob lambda/(1+lambda).
  std::vector<size_t> chosen;
  for (size_t c = 0; c < n; ++c) {
    double l = std::max(lambda[c], 0.0);  // clamp tiny negative roundoff
    if (rng.Uniform() < l / (1.0 + l)) chosen.push_back(c);
  }
  if (chosen.empty()) return {};
  linalg::Matrix v(n, chosen.size());
  for (size_t c = 0; c < chosen.size(); ++c) {
    v.SetCol(c, eig.eigenvectors().Col(chosen[c]));
  }
  return SampleFromEigenvectors(std::move(v), rng);
}

std::vector<size_t> SampleKDpp(const linalg::Matrix& l_kernel, size_t k,
                               prob::Rng& rng) {
  DHMM_CHECK(l_kernel.rows() == l_kernel.cols());
  linalg::SymmetricEigen eig(l_kernel);
  linalg::Vector lambda = eig.eigenvalues();
  const size_t n = lambda.size();
  DHMM_CHECK(k <= n);
  for (size_t i = 0; i < n; ++i) lambda[i] = std::max(lambda[i], 0.0);

  // Phase 1 (Algorithm 8): walk eigenvalues from last to first, including
  // eigenvalue c with probability lambda_c * e_{j-1}^{c-1} / e_j^{c}.
  linalg::Matrix esp = ElementarySymmetricTable(lambda, k);
  DHMM_CHECK_MSG(esp(k, n) > 0.0, "k exceeds the numerical rank of L");
  std::vector<size_t> chosen;
  size_t remaining = k;
  for (size_t c = n; c-- > 0 && remaining > 0;) {
    if (c + 1 < remaining) break;  // cannot fill the budget anymore
    double denom = esp(remaining, c + 1);
    double p_include =
        denom > 0.0 ? lambda[c] * esp(remaining - 1, c) / denom : 1.0;
    if (rng.Uniform() < p_include) {
      chosen.push_back(c);
      --remaining;
    }
  }
  DHMM_CHECK_MSG(remaining == 0, "k-DPP eigenvector selection underfilled");
  linalg::Matrix v(n, chosen.size());
  for (size_t c = 0; c < chosen.size(); ++c) {
    v.SetCol(c, eig.eigenvectors().Col(chosen[c]));
  }
  return SampleFromEigenvectors(std::move(v), rng);
}

double KDppLogProb(const linalg::Matrix& l_kernel,
                   const std::vector<size_t>& subset) {
  DHMM_CHECK(l_kernel.rows() == l_kernel.cols());
  const size_t k = subset.size();
  linalg::Matrix sub(k, k);
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) {
      sub(i, j) = l_kernel(subset[i], subset[j]);
    }
  }
  linalg::SymmetricEigen eig(l_kernel);
  linalg::Vector lambda = eig.eigenvalues();
  for (size_t i = 0; i < lambda.size(); ++i) {
    lambda[i] = std::max(lambda[i], 0.0);
  }
  linalg::Vector esp = ElementarySymmetric(lambda, k);
  DHMM_CHECK(esp[k] > 0.0);
  return linalg::LogAbsDeterminant(sub) - std::log(esp[k]);
}

}  // namespace dhmm::dpp
