// Elementary symmetric polynomials e_k(lambda) — the k-DPP normalizer
// (Eq. 1).
#ifndef DHMM_DPP_ESP_H_
#define DHMM_DPP_ESP_H_

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace dhmm::dpp {

/// \brief All elementary symmetric polynomials e_0..e_max_k of the inputs.
///
/// e_0 = 1, e_k = sum over k-subsets of products. Standard O(n * max_k)
/// dynamic program (Kulesza & Taskar, Algorithm 7).
linalg::Vector ElementarySymmetric(const linalg::Vector& values,
                                   size_t max_k);

/// \brief The full table E where E(j, n) = e_j(values[0..n-1]).
///
/// Needed by the k-DPP eigenvector-selection sampler (Algorithm 8): the
/// inclusion probability of eigenvalue n at remaining budget j is
/// lambda_n * E(j-1, n-1) / E(j, n).
linalg::Matrix ElementarySymmetricTable(const linalg::Vector& values,
                                        size_t max_k);

}  // namespace dhmm::dpp

#endif  // DHMM_DPP_ESP_H_
