#include "dpp/product_kernel.h"

#include <cmath>

#include "util/check.h"

namespace dhmm::dpp {

linalg::Matrix ProductKernel(const linalg::Matrix& rows, double rho) {
  DHMM_CHECK(rho > 0.0);
  const size_t k = rows.rows();
  const size_t d = rows.cols();
  // Precompute rows raised to rho with flooring.
  linalg::Matrix powed(k, d);
  for (size_t i = 0; i < k; ++i) {
    for (size_t x = 0; x < d; ++x) {
      double v = rows(i, x);
      if (v < kProbFloor) v = kProbFloor;
      powed(i, x) = std::pow(v, rho);
    }
  }
  linalg::Matrix kernel(k, k);
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = i; j < k; ++j) {
      double s = 0.0;
      const double* pi = powed.row_data(i);
      const double* pj = powed.row_data(j);
      for (size_t x = 0; x < d; ++x) s += pi[x] * pj[x];
      kernel(i, j) = s;
      kernel(j, i) = s;
    }
  }
  return kernel;
}

void NormalizeKernel(linalg::Matrix* kernel) {
  DHMM_CHECK(kernel != nullptr && kernel->rows() == kernel->cols());
  const size_t k = kernel->rows();
  linalg::Vector inv_sqrt_diag(k);
  for (size_t i = 0; i < k; ++i) {
    double d = (*kernel)(i, i);
    DHMM_CHECK_MSG(d > 0.0, "kernel diagonal must be positive");
    inv_sqrt_diag[i] = 1.0 / std::sqrt(d);
  }
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) {
      (*kernel)(i, j) *= inv_sqrt_diag[i] * inv_sqrt_diag[j];
    }
  }
  // Pin the diagonal at exactly 1 against roundoff.
  for (size_t i = 0; i < k; ++i) (*kernel)(i, i) = 1.0;
}

linalg::Matrix NormalizedKernel(const linalg::Matrix& rows, double rho) {
  linalg::Matrix kernel = ProductKernel(rows, rho);
  NormalizeKernel(&kernel);
  return kernel;
}

}  // namespace dhmm::dpp
