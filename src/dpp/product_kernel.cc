#include "dpp/product_kernel.h"

#include <cmath>
#include <utility>

#include "util/check.h"

namespace dhmm::dpp {

linalg::Matrix ProductKernel(const linalg::Matrix& rows, double rho) {
  KernelWorkspace ws;
  ProductKernel(rows, rho, &ws);
  return std::move(ws.kernel);
}

void ProductKernel(const linalg::Matrix& rows, double rho,
                   KernelWorkspace* ws) {
  DHMM_CHECK(ws != nullptr);
  DHMM_CHECK(rho > 0.0);
  const size_t k = rows.rows();
  const size_t d = rows.cols();
  // Precompute rows raised to rho with flooring. rho = 0.5 (the paper's
  // fixed Bhattacharyya setting, and the training hot path) uses sqrt: glibc
  // pow and sqrt are both correctly rounded so pow(v, 0.5) == sqrt(v), and
  // sqrt is roughly an order of magnitude cheaper — at k = d = 20 the pow
  // calls would otherwise dominate the whole kernel build.
  ws->powed.Resize(k, d);
  if (rho == 0.5) {
    for (size_t i = 0; i < k; ++i) {
      for (size_t x = 0; x < d; ++x) {
        double v = rows(i, x);
        if (v < kProbFloor) v = kProbFloor;
        ws->powed(i, x) = std::sqrt(v);
      }
    }
  } else {
    for (size_t i = 0; i < k; ++i) {
      for (size_t x = 0; x < d; ++x) {
        double v = rows(i, x);
        if (v < kProbFloor) v = kProbFloor;
        ws->powed(i, x) = std::pow(v, rho);
      }
    }
  }
  ws->kernel.Resize(k, k);
  for (size_t i = 0; i < k; ++i) {
    const double* pi = ws->powed.row_data(i);
    for (size_t j = i; j < k; ++j) {
      const double* pj = ws->powed.row_data(j);
      // Four fixed accumulator streams: a deterministic summation order
      // that breaks the serial dependence of a single running sum, so the
      // dot product pipelines/vectorizes without -ffast-math reassociation.
      // This is the hottest loop of every Algorithm-1 line-search probe.
      double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
      size_t x = 0;
      for (; x + 4 <= d; x += 4) {
        s0 += pi[x] * pj[x];
        s1 += pi[x + 1] * pj[x + 1];
        s2 += pi[x + 2] * pj[x + 2];
        s3 += pi[x + 3] * pj[x + 3];
      }
      double s = (s0 + s1) + (s2 + s3);
      for (; x < d; ++x) s += pi[x] * pj[x];
      ws->kernel(i, j) = s;
      ws->kernel(j, i) = s;
    }
  }
}

void NormalizeKernel(linalg::Matrix* kernel) {
  DHMM_CHECK(kernel != nullptr && kernel->rows() == kernel->cols());
  const size_t k = kernel->rows();
  linalg::Vector inv_sqrt_diag(k);
  for (size_t i = 0; i < k; ++i) {
    double d = (*kernel)(i, i);
    DHMM_CHECK_MSG(d > 0.0, "kernel diagonal must be positive");
    inv_sqrt_diag[i] = 1.0 / std::sqrt(d);
  }
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) {
      (*kernel)(i, j) *= inv_sqrt_diag[i] * inv_sqrt_diag[j];
    }
  }
  // Pin the diagonal at exactly 1 against roundoff.
  for (size_t i = 0; i < k; ++i) (*kernel)(i, i) = 1.0;
}

linalg::Matrix NormalizedKernel(const linalg::Matrix& rows, double rho) {
  KernelWorkspace ws;
  NormalizedKernel(rows, rho, &ws);
  return std::move(ws.kernel);
}

void NormalizedKernel(const linalg::Matrix& rows, double rho,
                      KernelWorkspace* ws) {
  ProductKernel(rows, rho, ws);
  // Allocation-free normalization: the diagonal stays untouched until the
  // final pinning pass, so inverse square roots are recomputed from it
  // directly instead of being staged in a scratch vector.
  const size_t k = ws->kernel.rows();
  for (size_t i = 0; i < k; ++i) {
    double di = ws->kernel(i, i);
    DHMM_CHECK_MSG(di > 0.0, "kernel diagonal must be positive");
    double inv_i = 1.0 / std::sqrt(di);
    for (size_t j = 0; j < i; ++j) {
      double inv_j = 1.0 / std::sqrt(ws->kernel(j, j));
      double v = ws->kernel(i, j) * (inv_i * inv_j);
      ws->kernel(i, j) = v;
      ws->kernel(j, i) = v;
    }
  }
  for (size_t i = 0; i < k; ++i) ws->kernel(i, i) = 1.0;
}

}  // namespace dhmm::dpp
