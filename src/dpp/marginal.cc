#include "dpp/marginal.h"

#include <cmath>

#include "linalg/lu.h"
#include "util/check.h"

namespace dhmm::dpp {

linalg::Matrix MarginalKernel(const linalg::Matrix& l_kernel) {
  DHMM_CHECK(l_kernel.rows() == l_kernel.cols());
  const size_t n = l_kernel.rows();
  linalg::Matrix l_plus_i = l_kernel + linalg::Matrix::Identity(n);
  linalg::LuDecomposition lu(l_plus_i);
  DHMM_CHECK_MSG(!lu.IsSingular(), "L + I must be invertible (L PSD)");
  // K = L (L+I)^{-1} = I - (L+I)^{-1}.
  linalg::Matrix inv = lu.Inverse();
  linalg::Matrix k = linalg::Matrix::Identity(n) - inv;
  // Symmetrize against roundoff.
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double v = 0.5 * (k(i, j) + k(j, i));
      k(i, j) = v;
      k(j, i) = v;
    }
  }
  return k;
}

linalg::Vector InclusionProbabilities(const linalg::Matrix& l_kernel) {
  linalg::Matrix k = MarginalKernel(l_kernel);
  linalg::Vector p(k.rows());
  for (size_t i = 0; i < k.rows(); ++i) p[i] = k(i, i);
  return p;
}

double PairInclusionProbability(const linalg::Matrix& marginal_kernel,
                                size_t i, size_t j) {
  DHMM_CHECK(i < marginal_kernel.rows() && j < marginal_kernel.rows());
  DHMM_CHECK(i != j);
  return marginal_kernel(i, i) * marginal_kernel(j, j) -
         marginal_kernel(i, j) * marginal_kernel(i, j);
}

double ExpectedCardinality(const linalg::Matrix& l_kernel) {
  linalg::Matrix k = MarginalKernel(l_kernel);
  double trace = 0.0;
  for (size_t i = 0; i < k.rows(); ++i) trace += k(i, i);
  return trace;
}

double DppLogProb(const linalg::Matrix& l_kernel,
                  const std::vector<size_t>& subset) {
  DHMM_CHECK(l_kernel.rows() == l_kernel.cols());
  const size_t n = l_kernel.rows();
  const size_t m = subset.size();
  double log_z = linalg::LogAbsDeterminant(
      l_kernel + linalg::Matrix::Identity(n));
  if (m == 0) return -log_z;  // det of the empty minor is 1
  linalg::Matrix sub(m, m);
  for (size_t a = 0; a < m; ++a) {
    DHMM_CHECK(subset[a] < n);
    for (size_t b = 0; b < m; ++b) {
      sub(a, b) = l_kernel(subset[a], subset[b]);
    }
  }
  return linalg::LogAbsDeterminant(sub) - log_z;
}

}  // namespace dhmm::dpp
