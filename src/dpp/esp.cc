#include "dpp/esp.h"

#include "linalg/matrix.h"
#include "util/check.h"

namespace dhmm::dpp {

linalg::Vector ElementarySymmetric(const linalg::Vector& values,
                                   size_t max_k) {
  DHMM_CHECK(max_k <= values.size());
  linalg::Vector e(max_k + 1);
  e[0] = 1.0;
  for (size_t n = 0; n < values.size(); ++n) {
    // Descending j so each value is used at most once.
    size_t top = max_k < n + 1 ? max_k : n + 1;
    for (size_t j = top; j >= 1; --j) {
      e[j] += values[n] * e[j - 1];
    }
  }
  return e;
}

linalg::Matrix ElementarySymmetricTable(const linalg::Vector& values,
                                        size_t max_k) {
  DHMM_CHECK(max_k <= values.size());
  const size_t n = values.size();
  linalg::Matrix table(max_k + 1, n + 1);
  for (size_t c = 0; c <= n; ++c) table(0, c) = 1.0;
  for (size_t j = 1; j <= max_k; ++j) {
    table(j, 0) = 0.0;
    for (size_t c = 1; c <= n; ++c) {
      table(j, c) = table(j, c - 1) + values[c - 1] * table(j - 1, c - 1);
    }
  }
  return table;
}

}  // namespace dhmm::dpp
