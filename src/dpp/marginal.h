// Marginal-kernel utilities for L-ensemble DPPs (Kulesza & Taskar §2).
//
// The dHMM prior only needs det(L_Y); these utilities complete the DPP
// toolbox for analysis and the diversity-playground example: the marginal
// kernel K = L(L+I)^{-1}, per-item inclusion probabilities, pairwise
// marginals, and expected sample cardinality.
#ifndef DHMM_DPP_MARGINAL_H_
#define DHMM_DPP_MARGINAL_H_

#include <vector>

#include "linalg/matrix.h"

namespace dhmm::dpp {

/// \brief Marginal kernel K = L (L + I)^{-1} of the L-ensemble.
///
/// P(S ⊆ Y) = det(K_S) for every fixed subset S; in particular
/// P(i ∈ Y) = K_ii and P(i,j ∈ Y) = K_ii K_jj − K_ij².
linalg::Matrix MarginalKernel(const linalg::Matrix& l_kernel);

/// \brief Per-item inclusion probabilities (the diagonal of K).
linalg::Vector InclusionProbabilities(const linalg::Matrix& l_kernel);

/// \brief P(i ∈ Y and j ∈ Y) from the marginal kernel.
double PairInclusionProbability(const linalg::Matrix& marginal_kernel,
                                size_t i, size_t j);

/// \brief Expected sample size E|Y| = trace(K) = sum_n lambda_n/(1+lambda_n).
double ExpectedCardinality(const linalg::Matrix& l_kernel);

/// \brief log P(Y = subset) under the L-ensemble:
///   det(L_Y) / det(L + I).
double DppLogProb(const linalg::Matrix& l_kernel,
                  const std::vector<size_t>& subset);

}  // namespace dhmm::dpp

#endif  // DHMM_DPP_MARGINAL_H_
