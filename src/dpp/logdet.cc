#include "dpp/logdet.h"

#include <cmath>
#include <limits>

#include "linalg/lu.h"
#include "util/check.h"

namespace dhmm::dpp {

double LogDetNormalizedKernel(const linalg::Matrix& rows, double rho) {
  linalg::Matrix kernel = NormalizedKernel(rows, rho);
  linalg::LuDecomposition lu(kernel);
  if (lu.IsSingular() || lu.DeterminantSign() <= 0) {
    return -std::numeric_limits<double>::infinity();
  }
  return lu.LogAbsDeterminant();
}

bool GradLogDetNormalizedKernel(const linalg::Matrix& rows, double rho,
                                linalg::Matrix* grad) {
  DHMM_CHECK(grad != nullptr);
  DHMM_CHECK(rho > 0.0);
  const size_t k = rows.rows();
  const size_t d = rows.cols();
  *grad = linalg::Matrix(k, d);

  // P_ij = max(A_ij, floor)^rho ; K = P P^T (unnormalized kernel).
  linalg::Matrix powed(k, d);
  for (size_t i = 0; i < k; ++i) {
    for (size_t x = 0; x < d; ++x) {
      double v = rows(i, x);
      powed(i, x) = std::pow(v < kProbFloor ? kProbFloor : v, rho);
    }
  }
  linalg::Matrix kernel(k, k);
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = i; j < k; ++j) {
      double s = 0.0;
      for (size_t x = 0; x < d; ++x) s += powed(i, x) * powed(j, x);
      kernel(i, j) = s;
      kernel(j, i) = s;
    }
  }

  linalg::LuDecomposition lu(kernel);
  if (lu.IsSingular() || lu.DeterminantSign() <= 0) {
    return false;
  }
  linalg::Matrix kinv = lu.Inverse();
  // M = K^{-1} P  (K symmetric, so this equals the needed sum over n).
  linalg::Matrix m = kinv.MatMul(powed);

  for (size_t i = 0; i < k; ++i) {
    const double kii = kernel(i, i);
    for (size_t j = 0; j < d; ++j) {
      double a = rows(i, j);
      if (a < kProbFloor) {
        (*grad)(i, j) = 0.0;  // flat (floored) region of the kernel
        continue;
      }
      double p = powed(i, j);
      (*grad)(i, j) =
          2.0 * rho * std::pow(a, rho - 1.0) * (m(i, j) - p / kii);
    }
  }
  return true;
}

bool PaperGradLogDet(const linalg::Matrix& rows, linalg::Matrix* grad) {
  DHMM_CHECK(grad != nullptr);
  const size_t k = rows.rows();
  const size_t d = rows.cols();
  *grad = linalg::Matrix(k, d);

  linalg::Matrix kernel = NormalizedKernel(rows, /*rho=*/0.5);
  linalg::LuDecomposition lu(kernel);
  if (lu.IsSingular() || lu.DeterminantSign() <= 0) {
    return false;
  }
  linalg::Matrix kinv = lu.Inverse();

  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < d; ++j) {
      double aij = rows(i, j);
      if (aij < kProbFloor) {
        (*grad)(i, j) = 0.0;
        continue;
      }
      double s = 0.0;
      for (size_t mrow = 0; mrow < k; ++mrow) {
        double amj = rows(mrow, j);
        if (amj < kProbFloor) amj = kProbFloor;
        s += kinv(mrow, i) * std::sqrt(amj);
      }
      (*grad)(i, j) = 0.5 * s / std::sqrt(aij);
    }
  }
  return true;
}

}  // namespace dhmm::dpp
