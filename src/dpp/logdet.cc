#include "dpp/logdet.h"

#include <cmath>
#include <limits>

#include "linalg/lu.h"
#include "util/check.h"

namespace dhmm::dpp {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// Factorizes the unnormalized kernel held in ws->kernel and returns the
// normalized log-det via the diagonal correction; -inf when the kernel is
// not numerically positive definite (a Gram matrix, so that is exactly the
// singular case the prior penalizes). Both the probe-only overload and the
// fused entry point funnel through here so their values are bitwise
// identical.
double LogDetFromFactoredKernel(KernelWorkspace* ws) {
  if (!ws->chol.FactorizeInto(ws->kernel)) return kNegInf;
  double diag_correction = 0.0;
  const size_t k = ws->kernel.rows();
  for (size_t i = 0; i < k; ++i) {
    diag_correction += std::log(ws->kernel(i, i));
  }
  return ws->chol.LogDeterminant() - diag_correction;
}

}  // namespace

double LogDetNormalizedKernel(const linalg::Matrix& rows, double rho) {
  linalg::Matrix kernel = NormalizedKernel(rows, rho);
  linalg::LuDecomposition lu(kernel);
  if (lu.IsSingular() || lu.DeterminantSign() <= 0) {
    return kNegInf;
  }
  return lu.LogAbsDeterminant();
}

double LogDetNormalizedKernel(const linalg::Matrix& rows, double rho,
                              KernelWorkspace* ws) {
  DHMM_CHECK(ws != nullptr);
  ProductKernel(rows, rho, ws);
  return LogDetFromFactoredKernel(ws);
}

bool LogDetAndGrad(const linalg::Matrix& rows, double rho,
                   KernelWorkspace* ws, double* log_det,
                   linalg::Matrix* grad) {
  DHMM_CHECK(ws != nullptr && log_det != nullptr && grad != nullptr);
  DHMM_CHECK(rho > 0.0);
  ProductKernel(rows, rho, ws);
  *log_det = LogDetFromFactoredKernel(ws);
  if (*log_det == kNegInf) return false;
  GradLogDetFromFactoredWorkspace(rows, rho, ws, grad);
  return true;
}

void GradLogDetFromFactoredWorkspace(const linalg::Matrix& rows, double rho,
                                     KernelWorkspace* ws,
                                     linalg::Matrix* grad) {
  DHMM_CHECK(ws != nullptr && grad != nullptr);
  DHMM_CHECK(ws->chol.ok());
  const size_t k = rows.rows();
  const size_t d = rows.cols();

  // M = K^{-1} P by direct solves on the factorization already in hand (K
  // symmetric, so this equals the needed sum over n).
  ws->chol.SolveInto(ws->powed, &ws->kinv_p);

  grad->Resize(k, d);
  const bool bhattacharyya = rho == 0.5;
  for (size_t i = 0; i < k; ++i) {
    const double inv_kii = 1.0 / ws->kernel(i, i);  // hoisted row divide
    for (size_t j = 0; j < d; ++j) {
      double a = rows(i, j);
      if (a < kProbFloor) {
        (*grad)(i, j) = 0.0;  // flat (floored) region of the kernel
        continue;
      }
      double p = ws->powed(i, j);
      // rho = 0.5: a^{rho-1} = 1/sqrt(a), and sqrt(a) is already in powed.
      double a_pow = bhattacharyya ? 1.0 / p : std::pow(a, rho - 1.0);
      (*grad)(i, j) =
          2.0 * rho * a_pow * (ws->kinv_p(i, j) - p * inv_kii);
    }
  }
}

bool GradLogDetNormalizedKernel(const linalg::Matrix& rows, double rho,
                                linalg::Matrix* grad) {
  DHMM_CHECK(grad != nullptr);
  // One code path for the gradient: delegating to the fused entry point
  // keeps the separate and fused APIs bitwise identical by construction.
  KernelWorkspace ws;
  double log_det = 0.0;
  if (!LogDetAndGrad(rows, rho, &ws, &log_det, grad)) {
    grad->Resize(rows.rows(), rows.cols());
    grad->Fill(0.0);
    return false;
  }
  return true;
}

bool PaperGradLogDet(const linalg::Matrix& rows, linalg::Matrix* grad) {
  DHMM_CHECK(grad != nullptr);
  const size_t k = rows.rows();
  const size_t d = rows.cols();
  *grad = linalg::Matrix(k, d);

  linalg::Matrix kernel = NormalizedKernel(rows, /*rho=*/0.5);
  linalg::LuDecomposition lu(kernel);
  if (lu.IsSingular() || lu.DeterminantSign() <= 0) {
    return false;
  }
  linalg::Matrix kinv = lu.Inverse();

  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < d; ++j) {
      double aij = rows(i, j);
      if (aij < kProbFloor) {
        (*grad)(i, j) = 0.0;
        continue;
      }
      double s = 0.0;
      for (size_t mrow = 0; mrow < k; ++mrow) {
        double amj = rows(mrow, j);
        if (amj < kProbFloor) amj = kProbFloor;
        s += kinv(mrow, i) * std::sqrt(amj);
      }
      (*grad)(i, j) = 0.5 * s / std::sqrt(aij);
    }
  }
  return true;
}

}  // namespace dhmm::dpp
