// Reusable scratch for the product-kernel / log-det hot path.
//
// Every line-search probe of the paper's Algorithm 1 evaluates
// log det K~(A), and every accepted step also needs its gradient. Building
// the kernel, factorizing it, and forming K^{-1}P from freshly allocated
// matrices dominated the M-step before this workspace existed. One
// KernelWorkspace per worker thread makes the whole stack allocation-free
// after the first update at a given k: all buffers are grow-only (see
// linalg::Matrix::Resize), mirroring hmm::InferenceWorkspace from the
// batched E-step engine.
#ifndef DHMM_DPP_KERNEL_WORKSPACE_H_
#define DHMM_DPP_KERNEL_WORKSPACE_H_

#include "linalg/cholesky.h"
#include "linalg/matrix.h"

namespace dhmm::dpp {

/// \brief Grow-only scratch buffers for kernel construction, factorization,
/// and the fused log-det + gradient evaluation.
///
/// The kernel is a Gram matrix (P P^T), so the workspace factorizes it by
/// Cholesky — half the flops of the pivoted LU the allocating entry points
/// historically used, and failure of the factorization *is* the
/// numerically-singular test. Thread-compatible, not thread-safe: one
/// workspace serves one worker. Contents are fully overwritten by each
/// entry point that uses them, so a workspace can be shared freely across
/// probes, updates, and state counts.
struct KernelWorkspace {
  linalg::Matrix powed;   ///< k x d — floored rows raised to rho
  linalg::Matrix kernel;  ///< k x k — product kernel P P^T
  linalg::CholeskyDecomposition chol;  ///< factors of `kernel`
  linalg::Matrix kinv_p;  ///< k x d — K^{-1} P (gradient solve result)
  linalg::Matrix grad;    ///< k x d — gradient scratch
};

}  // namespace dhmm::dpp

#endif  // DHMM_DPP_KERNEL_WORKSPACE_H_
