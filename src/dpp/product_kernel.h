// Probability product kernel over discrete distributions (Jebara et al. 2004)
// and its normalized-correlation form (paper Eqs. 2 and 5).
#ifndef DHMM_DPP_PRODUCT_KERNEL_H_
#define DHMM_DPP_PRODUCT_KERNEL_H_

#include "dpp/kernel_workspace.h"
#include "linalg/matrix.h"

namespace dhmm::dpp {

/// Default kernel exponent; the paper fixes rho = 0.5 (Bhattacharyya kernel)
/// for all experiments.
inline constexpr double kDefaultRho = 0.5;

/// Entry floor used when raising probabilities to (possibly negative-exponent)
/// powers; keeps gradients finite when simplex projection zeroes an entry.
inline constexpr double kProbFloor = 1e-12;

/// \brief Unnormalized probability product kernel matrix.
///
/// K_ij = sum_x P(x|A_i)^rho * P(x|A_j)^rho where rows of `rows` parameterize
/// discrete distributions (they need not be exactly normalized; entries are
/// floored at kProbFloor).
linalg::Matrix ProductKernel(const linalg::Matrix& rows,
                             double rho = kDefaultRho);

/// \brief Normalized correlation kernel (Eq. 2):
///   K~_ij = K_ij / sqrt(K_ii * K_jj).
///
/// Scale-invariant in each row; diagonal is exactly 1. For rho = 0.5 and rows
/// on the simplex this is the Bhattacharyya coefficient matrix.
linalg::Matrix NormalizedKernel(const linalg::Matrix& rows,
                                double rho = kDefaultRho);

/// Normalizes an already-computed unnormalized kernel in place.
void NormalizeKernel(linalg::Matrix* kernel);

/// \brief Workspace overload: builds ws->powed (floored rows^rho) and the
/// unnormalized kernel ws->kernel = P P^T without allocating once the
/// workspace buffers have grown to the row shape.
void ProductKernel(const linalg::Matrix& rows, double rho,
                   KernelWorkspace* ws);

/// \brief Workspace overload of NormalizedKernel: ProductKernel into the
/// workspace, then NormalizeKernel on ws->kernel in place.
void NormalizedKernel(const linalg::Matrix& rows, double rho,
                      KernelWorkspace* ws);

}  // namespace dhmm::dpp

#endif  // DHMM_DPP_PRODUCT_KERNEL_H_
