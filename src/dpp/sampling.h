// Exact sampling from discrete DPPs and k-DPPs (Hough et al.; Kulesza &
// Taskar Algorithms 1 and 8). Background machinery from the paper's
// §2.2/§3.1;
// used by the diversity-playground example and by tests that validate the
// repulsion property of the kernels the dHMM prior is built on.
#ifndef DHMM_DPP_SAMPLING_H_
#define DHMM_DPP_SAMPLING_H_

#include <vector>

#include "linalg/matrix.h"
#include "prob/rng.h"

namespace dhmm::dpp {

/// \brief Draws a subset of {0..n-1} from the L-ensemble DPP with kernel L.
///
/// L must be symmetric positive semidefinite. P(Y) ∝ det(L_Y).
std::vector<size_t> SampleDpp(const linalg::Matrix& l_kernel, prob::Rng& rng);

/// \brief Draws an exactly-k-subset from the k-DPP with kernel L (Eq. 1).
///
/// Precondition: k <= rank(L) (checked against the eigenvalue spectrum).
std::vector<size_t> SampleKDpp(const linalg::Matrix& l_kernel, size_t k,
                               prob::Rng& rng);

/// \brief Probability density assigned by the k-DPP (Eq. 1):
///   P^k_L(Y) = det(L_Y) / e_k(lambda).
double KDppLogProb(const linalg::Matrix& l_kernel,
                   const std::vector<size_t>& subset);

}  // namespace dhmm::dpp

#endif  // DHMM_DPP_SAMPLING_H_
