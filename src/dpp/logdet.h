// The diversity objective log det K~(A) and its analytic gradient (Eq. 15).
#ifndef DHMM_DPP_LOGDET_H_
#define DHMM_DPP_LOGDET_H_

#include "dpp/kernel_workspace.h"
#include "dpp/product_kernel.h"
#include "linalg/matrix.h"

namespace dhmm::dpp {

/// \brief log det K~_A for the normalized product kernel over rows of A.
///
/// Returns -infinity when the kernel is numerically singular (e.g. two rows
/// identical), which is exactly the configuration the prior penalizes.
double LogDetNormalizedKernel(const linalg::Matrix& rows,
                              double rho = kDefaultRho);

/// \brief Gradient of log det K~_A with respect to every entry of A.
///
/// Uses the exact derivative of the *normalized* kernel:
///   d/dA_ij log det K~ = 2 rho A_ij^{rho-1} ( [K^{-1} P]_ij - P_ij / K_ii )
/// with P_ij = A_ij^rho and K the unnormalized product kernel. On the
/// probability simplex with rho = 0.5 this direction coincides with the
/// paper's Eq. 15 up to a positive scale and a per-row constant shift, both of
/// which are absorbed by the adaptive step size and the simplex projection
/// (Euclidean simplex projection is invariant to uniform shifts).
///
/// Entries below kProbFloor sit in the floored (flat) region of the kernel
/// and receive zero gradient. Returns false (and a zero matrix) when the
/// kernel is singular so callers can backtrack.
bool GradLogDetNormalizedKernel(const linalg::Matrix& rows, double rho,
                                linalg::Matrix* grad);

/// \brief Workspace overload of LogDetNormalizedKernel for line-search
/// probes: one kernel build plus one factorization, all into ws buffers, no
/// heap allocation at steady state.
///
/// Factorizes the *unnormalized* kernel K and uses
///   log det K~ = log det K - sum_i log K_ii,
/// which agrees with the allocating overload to roundoff (the two paths
/// differ in the last bits, not in value). Returns -infinity when the kernel
/// is numerically singular.
double LogDetNormalizedKernel(const linalg::Matrix& rows, double rho,
                              KernelWorkspace* ws);

/// \brief Fused objective + gradient (the Algorithm-1 hot path): computes
/// log det K~_A *and* its gradient from a single kernel build and LU
/// factorization, where the separate entry points above each rebuild and
/// refactorize the same kernel.
///
/// The log-det lands in *log_det (identical bits to the workspace overload
/// of LogDetNormalizedKernel); the gradient of GradLogDetNormalizedKernel is
/// reproduced with K^{-1}P obtained by direct LU solves instead of an
/// explicit inverse (equal to the separate path to roundoff). Returns false
/// with *log_det = -infinity when the kernel is singular; `grad` contents
/// are then unspecified.
bool LogDetAndGrad(const linalg::Matrix& rows, double rho,
                   KernelWorkspace* ws, double* log_det,
                   linalg::Matrix* grad);

/// \brief Gradient-only entry point for a workspace whose `powed`, `kernel`,
/// and `chol` members are already valid for `rows` (e.g. snapshotted from
/// the line-search probe that evaluated this point moments earlier): skips
/// the kernel rebuild and refactorization and goes straight to the solve.
/// Precondition: ws->chol.ok().
void GradLogDetFromFactoredWorkspace(const linalg::Matrix& rows, double rho,
                                     KernelWorkspace* ws,
                                     linalg::Matrix* grad);

/// \brief The paper's literal Eq. 15 prior-gradient formula (rho = 0.5):
///   d/dA_ij = (1/2) sum_m [K~^{-1}]_mi sqrt(A_mj) / sqrt(A_ij).
///
/// Kept alongside the exact gradient for the fidelity ablation bench; both
/// directions agree after simplex projection (see GradLogDetNormalizedKernel).
bool PaperGradLogDet(const linalg::Matrix& rows, linalg::Matrix* grad);

}  // namespace dhmm::dpp

#endif  // DHMM_DPP_LOGDET_H_
