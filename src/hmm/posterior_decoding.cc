#include "hmm/posterior_decoding.h"

#include "linalg/kernels.h"

namespace dhmm::hmm {

void PosteriorDecode(const linalg::Vector& pi, const linalg::Matrix& a,
                     const linalg::Matrix& log_b, InferenceWorkspace* ws,
                     ForwardBackwardResult* fb, std::vector<int>* path) {
  ForwardBackward(pi, a, log_b, ws, fb);
  const size_t big_t = log_b.rows();
  const size_t k = log_b.cols();
  path->resize(big_t);
  for (size_t t = 0; t < big_t; ++t) {
    // Lowest index wins ties, matching the Viterbi tie-break contract.
    (*path)[t] =
        static_cast<int>(linalg::kernels::ArgMaxRow(fb->gamma.row_data(t), k));
  }
}

std::vector<int> PosteriorDecode(const linalg::Vector& pi,
                                 const linalg::Matrix& a,
                                 const linalg::Matrix& log_b) {
  InferenceWorkspace ws;
  ForwardBackwardResult fb;
  std::vector<int> path;
  PosteriorDecode(pi, a, log_b, &ws, &fb, &path);
  return path;
}

}  // namespace dhmm::hmm
