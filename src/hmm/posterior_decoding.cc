#include "hmm/posterior_decoding.h"

namespace dhmm::hmm {

std::vector<int> PosteriorDecode(const linalg::Vector& pi,
                                 const linalg::Matrix& a,
                                 const linalg::Matrix& log_b) {
  ForwardBackwardResult fb = ForwardBackward(pi, a, log_b);
  std::vector<int> path(log_b.rows());
  for (size_t t = 0; t < log_b.rows(); ++t) {
    path[t] = static_cast<int>(fb.gamma.Row(t).argmax());
  }
  return path;
}

}  // namespace dhmm::hmm
