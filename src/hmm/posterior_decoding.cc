#include "hmm/posterior_decoding.h"

#include "linalg/kernels.h"
#include "util/check.h"

namespace dhmm::hmm {

Status TryPosteriorDecode(const linalg::Vector& pi, const linalg::Matrix& a,
                          const linalg::Matrix& log_b,
                          InferenceWorkspace* ws, ForwardBackwardResult* fb,
                          std::vector<int>* path) {
  DHMM_RETURN_NOT_OK(TryForwardBackward(pi, a, log_b, ws, fb));
  const size_t big_t = log_b.rows();
  const size_t k = log_b.cols();
  path->resize(big_t);
  for (size_t t = 0; t < big_t; ++t) {
    // Lowest index wins ties, matching the Viterbi tie-break contract.
    (*path)[t] =
        static_cast<int>(linalg::kernels::ArgMaxRow(fb->gamma.row_data(t), k));
  }
  return Status::OK();
}

Status TryPosteriorDecodeRows(const linalg::Vector& pi,
                              const linalg::Matrix& a, const LogBRows& log_b,
                              size_t panel_frames, InferenceWorkspace* ws,
                              double* log_lik, std::vector<int>* path) {
  DHMM_CHECK(path != nullptr && log_lik != nullptr);
  path->resize(log_b.frames);
  struct Ctx {
    std::vector<int>* path;
    size_t k;
  } ctx{path, log_b.states};
  CheckpointedGammaSinks sinks;
  // Argmax per gamma row as the backward sweep emits it (descending t; the
  // per-frame argmax is order-independent). Lowest index wins ties, same
  // as ArgMaxRow over the materialized gamma.
  sinks.on_gamma = [](void* c, size_t t, const double* gamma_row) {
    auto* s = static_cast<Ctx*>(c);
    (*s->path)[t] =
        static_cast<int>(linalg::kernels::ArgMaxRow(gamma_row, s->k));
  };
  sinks.gamma_ctx = &ctx;
  return TryForwardBackwardCheckpointed(pi, a, log_b, panel_frames, ws,
                                        sinks, &ws->cp_xi, log_lik);
}

Status TryPosteriorDecode(const linalg::Vector& pi, const linalg::Matrix& a,
                          const linalg::Matrix& log_b,
                          size_t checkpoint_threshold_frames,
                          InferenceWorkspace* ws, ForwardBackwardResult* fb,
                          std::vector<int>* path) {
  const size_t big_t = log_b.rows();
  if (checkpoint_threshold_frames == 0 ||
      big_t < checkpoint_threshold_frames) {
    return TryPosteriorDecode(pi, a, log_b, ws, fb, path);
  }
  double log_lik = 0.0;
  DHMM_RETURN_NOT_OK(TryPosteriorDecodeRows(pi, a, MatrixLogBRows(log_b),
                                            /*panel_frames=*/0, ws, &log_lik,
                                            path));
  fb->log_likelihood = log_lik;
  fb->xi_sum = ws->cp_xi;
  fb->gamma.Resize(0, 0);
  return Status::OK();
}

void PosteriorDecode(const linalg::Vector& pi, const linalg::Matrix& a,
                     const linalg::Matrix& log_b, InferenceWorkspace* ws,
                     ForwardBackwardResult* fb, std::vector<int>* path) {
  Status st = TryPosteriorDecode(pi, a, log_b, ws, fb, path);
  DHMM_CHECK_MSG(st.ok(), st.message().c_str());
}

std::vector<int> PosteriorDecode(const linalg::Vector& pi,
                                 const linalg::Matrix& a,
                                 const linalg::Matrix& log_b) {
  InferenceWorkspace ws;
  ForwardBackwardResult fb;
  std::vector<int> path;
  PosteriorDecode(pi, a, log_b, &ws, &fb, &path);
  return path;
}

}  // namespace dhmm::hmm
