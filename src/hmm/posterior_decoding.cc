#include "hmm/posterior_decoding.h"

#include "linalg/kernels.h"
#include "util/check.h"

namespace dhmm::hmm {

Status TryPosteriorDecode(const linalg::Vector& pi, const linalg::Matrix& a,
                          const linalg::Matrix& log_b,
                          InferenceWorkspace* ws, ForwardBackwardResult* fb,
                          std::vector<int>* path) {
  DHMM_RETURN_NOT_OK(TryForwardBackward(pi, a, log_b, ws, fb));
  const size_t big_t = log_b.rows();
  const size_t k = log_b.cols();
  path->resize(big_t);
  for (size_t t = 0; t < big_t; ++t) {
    // Lowest index wins ties, matching the Viterbi tie-break contract.
    (*path)[t] =
        static_cast<int>(linalg::kernels::ArgMaxRow(fb->gamma.row_data(t), k));
  }
  return Status::OK();
}

void PosteriorDecode(const linalg::Vector& pi, const linalg::Matrix& a,
                     const linalg::Matrix& log_b, InferenceWorkspace* ws,
                     ForwardBackwardResult* fb, std::vector<int>* path) {
  Status st = TryPosteriorDecode(pi, a, log_b, ws, fb, path);
  DHMM_CHECK_MSG(st.ok(), st.message().c_str());
}

std::vector<int> PosteriorDecode(const linalg::Vector& pi,
                                 const linalg::Matrix& a,
                                 const linalg::Matrix& log_b) {
  InferenceWorkspace ws;
  ForwardBackwardResult fb;
  std::vector<int> path;
  PosteriorDecode(pi, a, log_b, &ws, &fb, &path);
  return path;
}

}  // namespace dhmm::hmm
