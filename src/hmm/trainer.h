// Baum-Welch EM with a pluggable transition M-step.
//
// The dHMM trainer (src/core) reuses this exact EM loop: the only difference
// between maximum-likelihood HMM training and the paper's MAP training is the
// M-step update for the transition matrix (paper §3.5.1), which is injected
// here as a callback.
//
// The E-step runs on the batched inference engine (hmm/engine.h): sequences
// fan out across a worker pool sized by EmOptions::num_threads, per-thread
// workspaces keep the hot path allocation-free, and the deterministic
// reduction order makes the fit bitwise-identical for every thread count.
#ifndef DHMM_HMM_TRAINER_H_
#define DHMM_HMM_TRAINER_H_

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <utility>
#include <vector>

#include "hmm/engine.h"
#include "hmm/inference.h"
#include "hmm/model.h"
#include "hmm/sequence.h"
#include "util/check.h"

namespace dhmm::hmm {

/// In-place transition M-step: `a` holds the previous A on entry and must
/// hold the updated A on exit. The in-place form lets penalized updates
/// (src/core) write through persistent workspaces without a per-iteration
/// return-value matrix. The default (nullptr) is the maximum-likelihood
/// update: normalize rows of the expected counts.
using TransitionMStep = std::function<void(
    const linalg::Matrix& expected_counts, linalg::Matrix* a)>;

/// Options controlling the EM loop.
struct EmOptions {
  int max_iters = 100;      ///< maximum EM iterations
  double tol = 1e-5;        ///< stop when relative loglik gain < tol
  bool update_pi = true;
  bool update_transitions = true;
  bool update_emission = true;
  TransitionMStep transition_m_step = nullptr;  ///< ML row normalization
  /// E-step worker threads (see BatchOptions::num_threads). Any value
  /// produces bitwise-identical fits; this is purely a throughput knob.
  int num_threads = 1;
  /// Sequence length at which the E-step switches to the checkpointed
  /// forward-backward (see BatchOptions::checkpoint_threshold_frames).
  /// Bitwise-identical fits either way; 0 disables.
  size_t checkpoint_threshold_frames = kDefaultCheckpointThresholdFrames;
};

/// Outcome of an EM fit.
struct EmResult {
  std::vector<double> loglik_history;  ///< data loglik before each update
  int iterations = 0;
  bool converged = false;
  double final_loglik = 0.0;  ///< loglik of the final parameters
};

/// \brief Fits `model` to `data` by EM on a caller-provided engine.
///
/// The E-step computes exact posteriors with scaled forward-backward; the
/// M-step re-estimates pi (expected initial-state counts), A (via the
/// callback), and the emission model (via its sufficient statistics).
/// Callers running many fits (e.g. the outer MAP-EM loop) pass a persistent
/// engine so workspaces survive across calls.
template <typename Obs>
EmResult FitEm(HmmModel<Obs>* model, const Dataset<Obs>& data,
               const EmOptions& options, BatchEmEngine<Obs>* engine) {
  DHMM_CHECK(model != nullptr && engine != nullptr);
  model->Validate();
  DHMM_CHECK_MSG(!data.empty(), "cannot fit to an empty dataset");

  EmResult result;
  double prev_loglik = -std::numeric_limits<double>::infinity();
  for (int iter = 0; iter < options.max_iters; ++iter) {
    EStepStats stats = engine->EStep(
        *model, data,
        options.update_emission ? model->emission.get() : nullptr);
    const double loglik = stats.log_likelihood;
    result.loglik_history.push_back(loglik);

    // M-step.
    if (options.update_pi) {
      stats.pi_acc.NormalizeToSimplex();
      model->pi = stats.pi_acc;
    }
    if (options.update_transitions) {
      if (options.transition_m_step) {
        options.transition_m_step(stats.trans_acc, &model->a);
      } else {
        linalg::Matrix a = std::move(stats.trans_acc);
        a.NormalizeRows();
        model->a = std::move(a);
      }
    }
    if (options.update_emission) model->emission->FinishAccumulate();
    ++result.iterations;

    if (iter > 0) {
      double gain = loglik - prev_loglik;
      double denom = std::max(1.0, std::fabs(prev_loglik));
      // EM guarantees gain >= 0 up to roundoff; take |gain| so that
      // floating-point jitter at the fixed point still registers as
      // convergence.
      if (std::fabs(gain) / denom < options.tol) {
        prev_loglik = loglik;
        result.converged = true;
        break;
      }
    }
    prev_loglik = loglik;
  }

  // Final loglik for the *updated* parameters.
  result.final_loglik = engine->LogLikelihood(*model, data);
  return result;
}

/// \brief Fits with a throwaway engine sized by options.num_threads.
template <typename Obs>
EmResult FitEm(HmmModel<Obs>* model, const Dataset<Obs>& data,
               const EmOptions& options = {}) {
  BatchEmEngine<Obs> engine(
      BatchOptions{options.num_threads, options.checkpoint_threshold_frames});
  return FitEm(model, data, options, &engine);
}

/// \brief Total data log-likelihood under a model.
template <typename Obs>
double DatasetLogLikelihood(const HmmModel<Obs>& model,
                            const Dataset<Obs>& data) {
  InferenceWorkspace ws;
  double ll = 0.0;
  for (const auto& seq : data) {
    model.emission->LogProbTableInto(seq.obs, &ws.log_b);
    ll += LogLikelihood(model.pi, model.a, ws.log_b, &ws);
  }
  return ll;
}

/// \brief Viterbi-decodes every sequence in a dataset.
template <typename Obs>
std::vector<std::vector<int>> DecodeDataset(const HmmModel<Obs>& model,
                                            const Dataset<Obs>& data) {
  InferenceWorkspace ws;
  std::vector<std::vector<int>> paths;
  paths.reserve(data.size());
  ViterbiResult res;
  for (const auto& seq : data) {
    model.emission->LogProbTableInto(seq.obs, &ws.log_b);
    Viterbi(model.pi, model.a, ws.log_b, &ws, &res);
    paths.push_back(std::move(res.path));
  }
  return paths;
}

}  // namespace dhmm::hmm

#endif  // DHMM_HMM_TRAINER_H_
