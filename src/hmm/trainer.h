// Baum-Welch EM with a pluggable transition M-step.
//
// The dHMM trainer (src/core) reuses this exact EM loop: the only difference
// between maximum-likelihood HMM training and the paper's MAP training is the
// M-step update for the transition matrix (paper §3.5.1), which is injected
// here as a callback.
#ifndef DHMM_HMM_TRAINER_H_
#define DHMM_HMM_TRAINER_H_

#include <cmath>
#include <functional>
#include <utility>
#include <vector>

#include "hmm/inference.h"
#include "hmm/model.h"
#include "hmm/sequence.h"
#include "util/check.h"

namespace dhmm::hmm {

/// Maps (expected transition counts, previous A) to the updated A.
/// The default (nullptr) is the maximum-likelihood update: normalize rows of
/// the expected counts.
using TransitionMStep = std::function<linalg::Matrix(
    const linalg::Matrix& expected_counts, const linalg::Matrix& a_old)>;

/// Options controlling the EM loop.
struct EmOptions {
  int max_iters = 100;      ///< maximum EM iterations
  double tol = 1e-5;        ///< stop when relative loglik gain < tol
  bool update_pi = true;
  bool update_transitions = true;
  bool update_emission = true;
  TransitionMStep transition_m_step;  ///< nullptr = ML row normalization
};

/// Outcome of an EM fit.
struct EmResult {
  std::vector<double> loglik_history;  ///< data loglik before each update
  int iterations = 0;
  bool converged = false;
  double final_loglik = 0.0;  ///< loglik of the final parameters
};

/// \brief Fits `model` to `data` by EM (Baum-Welch when no custom M-step).
///
/// The E-step computes exact posteriors with scaled forward-backward; the
/// M-step re-estimates pi (expected initial-state counts), A (via the
/// callback), and the emission model (via its sufficient statistics).
template <typename Obs>
EmResult FitEm(HmmModel<Obs>* model, const Dataset<Obs>& data,
               const EmOptions& options = {}) {
  DHMM_CHECK(model != nullptr);
  model->Validate();
  DHMM_CHECK_MSG(!data.empty(), "cannot fit to an empty dataset");
  const size_t k = model->num_states();

  EmResult result;
  double prev_loglik = -std::numeric_limits<double>::infinity();
  for (int iter = 0; iter < options.max_iters; ++iter) {
    linalg::Vector pi_acc(k);
    linalg::Matrix trans_acc(k, k);
    if (options.update_emission) model->emission->BeginAccumulate();

    double loglik = 0.0;
    for (const auto& seq : data) {
      DHMM_CHECK_MSG(seq.length() > 0, "dataset contains an empty sequence");
      linalg::Matrix log_b = model->emission->LogProbTable(seq.obs);
      ForwardBackwardResult fb = ForwardBackward(model->pi, model->a, log_b);
      loglik += fb.log_likelihood;
      for (size_t i = 0; i < k; ++i) pi_acc[i] += fb.gamma(0, i);
      trans_acc += fb.xi_sum;
      if (options.update_emission) {
        for (size_t t = 0; t < seq.length(); ++t) {
          model->emission->Accumulate(seq.obs[t], fb.gamma.Row(t));
        }
      }
    }
    result.loglik_history.push_back(loglik);

    // M-step.
    if (options.update_pi) {
      pi_acc.NormalizeToSimplex();
      model->pi = pi_acc;
    }
    if (options.update_transitions) {
      if (options.transition_m_step) {
        model->a = options.transition_m_step(trans_acc, model->a);
      } else {
        linalg::Matrix a = trans_acc;
        a.NormalizeRows();
        model->a = a;
      }
    }
    if (options.update_emission) model->emission->FinishAccumulate();
    ++result.iterations;

    if (iter > 0) {
      double gain = loglik - prev_loglik;
      double denom = std::max(1.0, std::fabs(prev_loglik));
      // EM guarantees gain >= 0 up to roundoff; take |gain| so that
      // floating-point jitter at the fixed point still registers as
      // convergence.
      if (std::fabs(gain) / denom < options.tol) {
        prev_loglik = loglik;
        result.converged = true;
        break;
      }
    }
    prev_loglik = loglik;
  }

  // Final loglik for the *updated* parameters.
  double final_ll = 0.0;
  for (const auto& seq : data) {
    final_ll += LogLikelihood(model->pi, model->a,
                              model->emission->LogProbTable(seq.obs));
  }
  result.final_loglik = final_ll;
  return result;
}

/// \brief Total data log-likelihood under a model.
template <typename Obs>
double DatasetLogLikelihood(const HmmModel<Obs>& model,
                            const Dataset<Obs>& data) {
  double ll = 0.0;
  for (const auto& seq : data) {
    ll += LogLikelihood(model.pi, model.a,
                        model.emission->LogProbTable(seq.obs));
  }
  return ll;
}

/// \brief Viterbi-decodes every sequence in a dataset.
template <typename Obs>
std::vector<std::vector<int>> DecodeDataset(const HmmModel<Obs>& model,
                                            const Dataset<Obs>& data) {
  std::vector<std::vector<int>> paths;
  paths.reserve(data.size());
  for (const auto& seq : data) {
    paths.push_back(
        Viterbi(model.pi, model.a, model.emission->LogProbTable(seq.obs))
            .path);
  }
  return paths;
}

}  // namespace dhmm::hmm

#endif  // DHMM_HMM_TRAINER_H_
