// The one E-step sufficient-statistics accumulator shared by batch and
// online (stepwise / mini-batch) EM.
//
// Factored out of BatchEmEngine so that every way of gathering posteriors
// — a full-dataset batch E-step, a sequence of mini-batches, or live
// fixed-lag posteriors streaming out of serve::SessionManager — lands in
// the same accumulator type and drives the same M-step. An accumulator is
// a plain bag of grow-only buffers: Reset(k) re-zeros it in place, every
// Add* entry point is allocation-free after the first Reset at a given k,
// and addition order is the caller's responsibility (the batch engine adds
// sequences in ascending index order, which is what makes its fits
// bitwise thread-count-invariant).
//
// Emission sufficient statistics deliberately do NOT live here: the
// emission families accumulate internally between BeginAccumulate() /
// FinishAccumulate() (prob/emission.h). The caller brackets one EM round
// with that pair and passes the emission model into AddSequence /
// AddStreamFrame, so batch EM (one bracket per iteration) and mini-batch
// EM (one bracket spanning many Accumulate calls) share the code path.
#ifndef DHMM_HMM_ESTEP_ACCUMULATOR_H_
#define DHMM_HMM_ESTEP_ACCUMULATOR_H_

#include <cstdint>
#include <cstring>

#include "hmm/inference.h"
#include "hmm/sequence.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "prob/emission.h"

namespace dhmm::hmm {

/// \brief Sufficient statistics of an E-step in progress (or completed).
///
/// Also the return type of BatchEmEngine::EStep under its historical name
/// EStepStats — one full-data batch is just an accumulator that saw every
/// sequence exactly once.
struct EStepAccumulator {
  linalg::Vector pi_acc;     ///< k — summed gamma(0, .) over sequences
  linalg::Matrix trans_acc;  ///< k x k — summed xi over sequences
  double log_likelihood = 0.0;  ///< total log-likelihood of batch adds
  uint64_t frames = 0;          ///< frames accumulated since Reset
  uint64_t sequences = 0;       ///< sequences (or streams) started

  /// Re-zeros in place for state count k. Grow-only: no heap allocation
  /// once the high-water k has been reached.
  void Reset(size_t k) {
    pi_acc.Resize(k);
    double* pi = pi_acc.data();
    for (size_t i = 0; i < k; ++i) pi[i] = 0.0;
    trans_acc.Resize(k, k);
    trans_acc.Fill(0.0);
    log_likelihood = 0.0;
    frames = 0;
    sequences = 0;
  }

  /// \brief Adds one sequence's exact forward-backward statistics — the
  /// reduction step of the batch engine, verbatim: log-likelihood, then
  /// gamma(0, .), then xi_sum, then per-frame emission posteriors in frame
  /// order. `qrow` is caller-owned scratch (the engine shares one across
  /// sequences) so this stays allocation-free.
  template <typename Obs>
  void AddSequence(const ForwardBackwardResult& fb, const Sequence<Obs>& seq,
                   prob::EmissionModel<Obs>* emission_acc,
                   linalg::Vector* qrow) {
    const size_t k = pi_acc.size();
    log_likelihood += fb.log_likelihood;
    for (size_t i = 0; i < k; ++i) pi_acc[i] += fb.gamma(0, i);
    trans_acc += fb.xi_sum;
    if (emission_acc != nullptr) {
      for (size_t t = 0; t < seq.length(); ++t) {
        std::memcpy(qrow->data(), fb.gamma.row_data(t), k * sizeof(double));
        emission_acc->Accumulate(seq.obs[t], *qrow);
      }
    }
    frames += seq.length();
    ++sequences;
  }

  /// \brief Checkpointed-sweep counterpart of AddSequence: the chain
  /// statistics arrive as scalars and rows (the T x k gamma never exists)
  /// but land in the same per-sequence order — log-likelihood, then
  /// gamma(0, .), then xi_sum — so batches mixing checkpointed and full
  /// sequences keep the bitwise-stable reduction. The per-frame emission
  /// feed happens inside the sweep's ascending replay
  /// (BatchEmEngine::AddCheckpointed); emission statistics live in a
  /// separate accumulator, so that interleaving is bitwise-neutral.
  void AddSequenceStats(double seq_log_likelihood, const double* gamma0,
                        const linalg::Matrix& xi_sum, uint64_t seq_frames) {
    const size_t k = pi_acc.size();
    log_likelihood += seq_log_likelihood;
    for (size_t i = 0; i < k; ++i) pi_acc[i] += gamma0[i];
    trans_acc += xi_sum;
    frames += seq_frames;
    ++sequences;
  }

  /// \brief Adds one live-stream frame's smoothed posterior gamma (length
  /// k, normalized — serve/stream_math.h leaves exactly this in its gamma
  /// scratch row). Pi statistics accumulate only from each stream's first
  /// frame, mirroring gamma(0, .) in the batch path. The caller feeds the
  /// same gamma to the emission model itself (it needs the raw
  /// observation, which this layer never sees).
  void AddStreamFrame(const double* gamma, bool first_frame) {
    const size_t k = pi_acc.size();
    if (first_frame) {
      for (size_t i = 0; i < k; ++i) pi_acc[i] += gamma[i];
      ++sequences;
    }
    ++frames;
  }

  /// \brief Adds one fixed-lag transition posterior. `alpha` is the scaled
  /// forward message at the emitted frame f, `frame_u` the hoisted
  /// backward product btilde(f+1) * beta_hat(f+1) / c(f+1) left behind by
  /// the smoothing sweep (serve/stream_math.h): the unnormalized xi is
  /// w(i, j) = alpha(i) a(i, j) frame_u(j), normalized here to sum to one
  /// like every offline xi_t slice. A vanished mass is skipped — the
  /// stream layer already poisons such frames.
  void AddStreamTransition(const double* alpha, const linalg::Matrix& a,
                           const double* frame_u) {
    const size_t k = pi_acc.size();
    double total = 0.0;
    for (size_t i = 0; i < k; ++i) {
      const double* a_row = a.row_data(i);
      double row_sum = 0.0;
      for (size_t j = 0; j < k; ++j) row_sum += a_row[j] * frame_u[j];
      total += alpha[i] * row_sum;
    }
    if (!(total > 0.0)) return;
    const double inv = 1.0 / total;
    for (size_t i = 0; i < k; ++i) {
      const double* a_row = a.row_data(i);
      double* acc_row = trans_acc.row_data(i);
      const double w = alpha[i] * inv;
      for (size_t j = 0; j < k; ++j) acc_row[j] += w * a_row[j] * frame_u[j];
    }
  }
};

/// Historical name for one completed full-data E-step.
using EStepStats = EStepAccumulator;

}  // namespace dhmm::hmm

#endif  // DHMM_HMM_ESTEP_ACCUMULATOR_H_
