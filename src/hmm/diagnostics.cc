#include "hmm/diagnostics.h"

#include <cmath>

#include "util/check.h"

namespace dhmm::hmm {

Result<linalg::Vector> StationaryDistribution(const linalg::Matrix& a,
                                              int max_iters, double tol,
                                              double damping) {
  DHMM_CHECK(a.rows() == a.cols());
  DHMM_CHECK_MSG(a.IsRowStochastic(1e-6), "A must be row-stochastic");
  const size_t k = a.rows();
  linalg::Vector pi(k, 1.0 / static_cast<double>(k));
  linalg::Vector next(k);
  for (int iter = 0; iter < max_iters; ++iter) {
    // next = pi (A + I)/2, damped toward uniform. The lazy step keeps the
    // fixed point of A while shifting every other eigenvalue inside the
    // unit circle, so periodic chains converge instead of oscillating.
    for (size_t j = 0; j < k; ++j) {
      double s = 0.0;
      for (size_t i = 0; i < k; ++i) s += pi[i] * a(i, j);
      next[j] = (1.0 - damping) * 0.5 * (s + pi[j]) +
                damping / static_cast<double>(k);
    }
    double delta = 0.0;
    for (size_t j = 0; j < k; ++j) delta += std::fabs(next[j] - pi[j]);
    pi = next;
    if (delta < tol) {
      pi.NormalizeToSimplex();
      return pi;
    }
  }
  return Status::NotConverged(
      "stationary distribution power iteration did not converge");
}

double Entropy(const linalg::Vector& p) {
  double h = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    DHMM_DCHECK(p[i] >= -1e-12);
    if (p[i] > 0.0) h -= p[i] * std::log(p[i]);
  }
  return h;
}

Result<double> EntropyRate(const linalg::Matrix& a) {
  Result<linalg::Vector> pi = StationaryDistribution(a);
  if (!pi.ok()) return pi.status();
  double h = 0.0;
  for (size_t i = 0; i < a.rows(); ++i) {
    h += pi.value()[i] * Entropy(a.Row(i));
  }
  return h;
}

Result<double> MixtureCollapseGap(const linalg::Matrix& a) {
  Result<linalg::Vector> pi = StationaryDistribution(a);
  if (!pi.ok()) return pi.status();
  double total = 0.0;
  for (size_t i = 0; i < a.rows(); ++i) {
    double tv = 0.0;
    for (size_t j = 0; j < a.cols(); ++j) {
      tv += std::fabs(a(i, j) - pi.value()[j]);
    }
    total += 0.5 * tv;
  }
  return total / static_cast<double>(a.rows());
}

}  // namespace dhmm::hmm
