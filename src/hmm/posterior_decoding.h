// Posterior (max-marginal) decoding — the standard alternative to Viterbi.
//
// Viterbi maximizes the joint path probability; posterior decoding picks
// argmax_i q(X_t = i | Y) per frame, which maximizes the expected number of
// correct frames. The paper reports Viterbi decodes; the decoder-ablation
// bench compares both.
#ifndef DHMM_HMM_POSTERIOR_DECODING_H_
#define DHMM_HMM_POSTERIOR_DECODING_H_

#include <vector>

#include "hmm/inference.h"
#include "hmm/model.h"
#include "hmm/sequence.h"

namespace dhmm::hmm {

/// \brief Per-frame argmax of the posterior marginals gamma — canonical
/// non-aborting form. Runs forward-backward through `ws`, leaves the
/// marginals in `*fb`, and writes the per-frame argmax into `*path` (lowest
/// state index on ties, matching Vector::argmax). An impossible sequence
/// returns InvalidArgument (see TryForwardBackward), never a process abort.
Status TryPosteriorDecode(const linalg::Vector& pi, const linalg::Matrix& a,
                          const linalg::Matrix& log_b,
                          InferenceWorkspace* ws, ForwardBackwardResult* fb,
                          std::vector<int>* path);

/// \brief Aborting wrapper over TryPosteriorDecode for trusted inputs.
/// Internal/test convenience — request-facing code uses the Try form.
void PosteriorDecode(const linalg::Vector& pi, const linalg::Matrix& a,
                     const linalg::Matrix& log_b, InferenceWorkspace* ws,
                     ForwardBackwardResult* fb, std::vector<int>* path);

/// \brief Aborting convenience with its own scratch — one-off calls only.
std::vector<int> PosteriorDecode(const linalg::Vector& pi,
                                 const linalg::Matrix& a,
                                 const linalg::Matrix& log_b);

/// \brief Posterior-decodes every sequence in a dataset.
template <typename Obs>
std::vector<std::vector<int>> PosteriorDecodeDataset(
    const HmmModel<Obs>& model, const Dataset<Obs>& data) {
  InferenceWorkspace ws;
  ForwardBackwardResult fb;
  std::vector<std::vector<int>> paths(data.size());
  for (size_t s = 0; s < data.size(); ++s) {
    model.emission->LogProbTableInto(data[s].obs, &ws.log_b);
    PosteriorDecode(model.pi, model.a, ws.log_b, &ws, &fb, &paths[s]);
  }
  return paths;
}

}  // namespace dhmm::hmm

#endif  // DHMM_HMM_POSTERIOR_DECODING_H_
