// Posterior (max-marginal) decoding — the standard alternative to Viterbi.
//
// Viterbi maximizes the joint path probability; posterior decoding picks
// argmax_i q(X_t = i | Y) per frame, which maximizes the expected number of
// correct frames. The paper reports Viterbi decodes; the decoder-ablation
// bench compares both.
#ifndef DHMM_HMM_POSTERIOR_DECODING_H_
#define DHMM_HMM_POSTERIOR_DECODING_H_

#include <vector>

#include "hmm/inference.h"
#include "hmm/model.h"
#include "hmm/sequence.h"

namespace dhmm::hmm {

/// \brief Per-frame argmax of the posterior marginals gamma — canonical
/// non-aborting form. Runs forward-backward through `ws`, leaves the
/// marginals in `*fb`, and writes the per-frame argmax into `*path` (lowest
/// state index on ties, matching Vector::argmax). An impossible sequence
/// returns InvalidArgument (see TryForwardBackward), never a process abort.
Status TryPosteriorDecode(const linalg::Vector& pi, const linalg::Matrix& a,
                          const linalg::Matrix& log_b,
                          InferenceWorkspace* ws, ForwardBackwardResult* fb,
                          std::vector<int>* path);

/// \brief Checkpointed posterior decode over a LogBRows provider: bitwise
/// identical paths to TryPosteriorDecode with O(sqrt(T) * k) workspace.
/// Each gamma row is argmaxed the moment the backward sweep produces it
/// (ties to the lowest state index, same contract as the full path), so no
/// T x k gamma matrix ever exists; the log-likelihood lands in *log_lik.
/// xi lands in ws->cp_xi (computed anyway by the fused sweep, same as the
/// full path's ForwardBackwardResult).
Status TryPosteriorDecodeRows(const linalg::Vector& pi,
                              const linalg::Matrix& a, const LogBRows& log_b,
                              size_t panel_frames, InferenceWorkspace* ws,
                              double* log_lik, std::vector<int>* path);

/// \brief Threshold-aware TryPosteriorDecode: sequences of at least
/// `checkpoint_threshold_frames` frames (0 = never) run the checkpointed
/// sweep — fb->log_likelihood and fb->xi_sum are filled but fb->gamma is
/// left 0 x 0 (materializing it would defeat the memory bound); shorter
/// sequences take the full path and fill fb completely. Paths and
/// log-likelihoods are bitwise identical either way.
Status TryPosteriorDecode(const linalg::Vector& pi, const linalg::Matrix& a,
                          const linalg::Matrix& log_b,
                          size_t checkpoint_threshold_frames,
                          InferenceWorkspace* ws, ForwardBackwardResult* fb,
                          std::vector<int>* path);

/// \brief Aborting wrapper over TryPosteriorDecode for trusted inputs.
/// Internal/test convenience — request-facing code uses the Try form.
void PosteriorDecode(const linalg::Vector& pi, const linalg::Matrix& a,
                     const linalg::Matrix& log_b, InferenceWorkspace* ws,
                     ForwardBackwardResult* fb, std::vector<int>* path);

/// \brief Aborting convenience with its own scratch — one-off calls only.
std::vector<int> PosteriorDecode(const linalg::Vector& pi,
                                 const linalg::Matrix& a,
                                 const linalg::Matrix& log_b);

/// \brief Posterior-decodes every sequence in a dataset.
template <typename Obs>
std::vector<std::vector<int>> PosteriorDecodeDataset(
    const HmmModel<Obs>& model, const Dataset<Obs>& data) {
  InferenceWorkspace ws;
  ForwardBackwardResult fb;
  std::vector<std::vector<int>> paths(data.size());
  for (size_t s = 0; s < data.size(); ++s) {
    model.emission->LogProbTableInto(data[s].obs, &ws.log_b);
    PosteriorDecode(model.pi, model.a, ws.log_b, &ws, &fb, &paths[s]);
  }
  return paths;
}

}  // namespace dhmm::hmm

#endif  // DHMM_HMM_POSTERIOR_DECODING_H_
