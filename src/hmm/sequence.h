// Sequence and dataset containers shared by trainers, evaluators, generators.
#ifndef DHMM_HMM_SEQUENCE_H_
#define DHMM_HMM_SEQUENCE_H_

#include <cstddef>
#include <vector>

namespace dhmm::hmm {

/// \brief One observation sequence, optionally with gold-standard labels.
///
/// `labels` is either empty (unsupervised data) or the same length as `obs`
/// with values in [0, k).
template <typename Obs>
struct Sequence {
  std::vector<Obs> obs;
  std::vector<int> labels;

  size_t length() const { return obs.size(); }
  bool labeled() const { return !labels.empty(); }
};

/// A collection of sequences.
template <typename Obs>
using Dataset = std::vector<Sequence<Obs>>;

/// Total number of frames across a dataset.
template <typename Obs>
size_t TotalFrames(const Dataset<Obs>& data) {
  size_t n = 0;
  for (const auto& seq : data) n += seq.length();
  return n;
}

}  // namespace dhmm::hmm

#endif  // DHMM_HMM_SEQUENCE_H_
