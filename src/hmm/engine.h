// The batched inference engine: data-parallel, allocation-free E-steps.
//
// One BatchEmEngine owns a persistent worker pool plus one InferenceWorkspace
// per worker and a per-sequence result slot per dataset entry. Sequences fan
// out across the pool dynamically (long sequences self-balance), every
// per-sequence statistic lands in its own slot, and all reductions —
// pi_acc, trans_acc, and emission sufficient statistics — run on the calling
// thread in ascending sequence order. That fixed reduction order makes the
// engine's output bitwise-identical for every thread count, including the
// inline single-threaded path, which tests/engine_test.cc pins.
//
// After the first pass over a dataset the engine performs no heap
// allocations: workspaces and result slots are Resize()d in place and only
// grow (see linalg::Matrix::Resize).
#ifndef DHMM_HMM_ENGINE_H_
#define DHMM_HMM_ENGINE_H_

#include <cstring>
#include <utility>
#include <vector>

#include "hmm/emission_rows.h"
#include "hmm/estep_accumulator.h"
#include "hmm/inference.h"
#include "hmm/model.h"
#include "hmm/sequence.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace dhmm::hmm {

/// Options for the batched engine.
struct BatchOptions {
  /// Worker threads for the E-step / decode fan-out, including the calling
  /// thread. 1 runs inline; <= 0 selects std::thread::hardware_concurrency().
  /// Results are identical for every value.
  int num_threads = 1;

  /// Sequences at least this many frames long run the checkpointed
  /// forward-backward (hmm/inference.h): O(sqrt(T) * k) workspace instead
  /// of O(T * k), bitwise-identical statistics, ~2.5x the frame work.
  /// 0 disables checkpointing (every sequence takes the full path).
  size_t checkpoint_threshold_frames = kDefaultCheckpointThresholdFrames;
};

/// \brief Reusable batched driver for E-steps, likelihoods, and decodes.
///
/// Thread-compatible, not thread-safe: one engine serves one training loop.
template <typename Obs>
class BatchEmEngine {
 public:
  explicit BatchEmEngine(const BatchOptions& options = {})
      : pool_(options.num_threads),
        workspaces_(static_cast<size_t>(pool_.num_threads())),
        checkpoint_threshold_frames_(options.checkpoint_threshold_frames) {}

  /// Resolved thread count (after the <= 0 -> hardware mapping).
  int num_threads() const { return pool_.num_threads(); }

  /// Sequence length at which the checkpointed sweep engages (0 = never).
  size_t checkpoint_threshold_frames() const {
    return checkpoint_threshold_frames_;
  }

  /// \brief Runs one exact E-step (scaled forward-backward per sequence).
  ///
  /// When `emission_acc` is non-null the engine calls BeginAccumulate() and
  /// feeds every frame's posterior into it in (sequence, frame) order; the
  /// caller runs FinishAccumulate() as part of its M-step. The accumulator's
  /// LogProb/LogProbTableInto must be const-thread-safe (all in-tree emission
  /// families are: their tables are read-only between M-steps).
  EStepStats EStep(const HmmModel<Obs>& model, const Dataset<Obs>& data,
                   prob::EmissionModel<Obs>* emission_acc = nullptr) {
    EStepStats stats;
    stats.Reset(model.num_states());
    if (emission_acc != nullptr) emission_acc->BeginAccumulate();
    AccumulateEStep(model, data, &stats, emission_acc);
    return stats;
  }

  /// \brief The stepwise / mini-batch entry point: one exact E-step over
  /// `data` *added into* an existing accumulator. Does not Reset the
  /// accumulator and does not bracket the emission model — the caller owns
  /// the EM round (Reset + BeginAccumulate once, then any number of
  /// mini-batches, then the M-step + FinishAccumulate). EStep above is
  /// exactly one such round over one batch, so mini-batch EM whose batches
  /// tile the dataset in order reproduces batch EM bitwise
  /// (tests/session_test.cc pins this through core::IncrementalEmTrainer).
  void AccumulateEStep(const HmmModel<Obs>& model, const Dataset<Obs>& data,
                       EStepAccumulator* acc,
                       prob::EmissionModel<Obs>* emission_acc = nullptr) {
    per_seq_.resize(data.size());
    // Each worker's workspace carries a TransitionCache: the first sequence a
    // worker sees after an M-step rebuilds A^T once, every later sequence
    // revalidates with a k*k memcmp and reuses it. Sequences long enough
    // for the checkpointed sweep are skipped here and handled inline by
    // the reduction below: their gamma rows stream straight into the
    // accumulators, so there is no per-sequence result slot to fan out.
    pool_.ParallelFor(data.size(), [&](int worker, size_t s) {
      InferenceWorkspace& ws = workspaces_[static_cast<size_t>(worker)];
      const Sequence<Obs>& seq = data[s];
      DHMM_CHECK_MSG(seq.length() > 0, "dataset contains an empty sequence");
      if (Checkpointed(seq.length())) return;
      model.emission->LogProbTableInto(seq.obs, &ws.log_b);
      ForwardBackward(model.pi, model.a, ws.log_b, &ws, &per_seq_[s]);
    });

    qrow_.Resize(model.num_states());
    for (size_t s = 0; s < data.size(); ++s) {
      if (Checkpointed(data[s].length())) {
        AddCheckpointed(model, data[s], acc, emission_acc);
      } else {
        acc->AddSequence(per_seq_[s], data[s], emission_acc, &qrow_);
      }
    }
  }

  /// \brief Total dataset log-likelihood (forward passes fan out; the sum
  /// runs in sequence order, so it too is thread-count-invariant).
  double LogLikelihood(const HmmModel<Obs>& model, const Dataset<Obs>& data) {
    seq_loglik_.resize(data.size());
    pool_.ParallelFor(data.size(), [&](int worker, size_t s) {
      InferenceWorkspace& ws = workspaces_[static_cast<size_t>(worker)];
      if (Checkpointed(data[s].length())) {
        // Same kernel sequence as the materialized path, one emission row
        // at a time: bitwise-equal log-likelihood, O(k) workspace.
        EmissionLogBRows<Obs> rows{model.emission.get(), &data[s].obs,
                                   &ws.log_b_row};
        double ll = 0.0;
        Status st =
            TryLogLikelihoodRows(model.pi, model.a, rows.View(), &ws, &ll);
        DHMM_CHECK_MSG(st.ok(), st.message().c_str());
        seq_loglik_[s] = ll;
      } else {
        model.emission->LogProbTableInto(data[s].obs, &ws.log_b);
        seq_loglik_[s] = hmm::LogLikelihood(model.pi, model.a, ws.log_b, &ws);
      }
    });
    double total = 0.0;
    for (double ll : seq_loglik_) total += ll;
    return total;
  }

  /// \brief Viterbi-decodes every sequence across the pool.
  std::vector<std::vector<int>> Decode(const HmmModel<Obs>& model,
                                       const Dataset<Obs>& data) {
    std::vector<std::vector<int>> paths(data.size());
    pool_.ParallelFor(data.size(), [&](int worker, size_t s) {
      InferenceWorkspace& ws = workspaces_[static_cast<size_t>(worker)];
      model.emission->LogProbTableInto(data[s].obs, &ws.log_b);
      ViterbiResult res;
      Viterbi(model.pi, model.a, ws.log_b, &ws, &res);
      paths[s] = std::move(res.path);
    });
    return paths;
  }

 private:
  bool Checkpointed(size_t frames) const {
    return checkpoint_threshold_frames_ != 0 &&
           frames >= checkpoint_threshold_frames_;
  }

  // One long sequence's E-step via the checkpointed sweep, inline on the
  // reduction thread. The sweep's descending pass captures gamma(0, .) and
  // xi; its ascending replay feeds the emission accumulator in frame order
  // — the exact order AddSequence uses — so checkpointed fits are bitwise
  // equal to full-path fits and trivially thread-count-invariant.
  void AddCheckpointed(const HmmModel<Obs>& model, const Sequence<Obs>& seq,
                       EStepAccumulator* acc,
                       prob::EmissionModel<Obs>* emission_acc) {
    const size_t k = model.num_states();
    InferenceWorkspace& ws = workspaces_[0];
    EmissionLogBRows<Obs> rows{model.emission.get(), &seq.obs,
                               &ws.log_b_row};
    cp_gamma0_.Resize(k);
    struct DescCtx {
      double* gamma0;
      size_t k;
    } desc{cp_gamma0_.data(), k};
    CheckpointedGammaSinks sinks;
    sinks.on_gamma = [](void* c, size_t t, const double* gamma_row) {
      auto* d = static_cast<DescCtx*>(c);
      if (t == 0) std::memcpy(d->gamma0, gamma_row, d->k * sizeof(double));
    };
    sinks.gamma_ctx = &desc;
    struct AscCtx {
      prob::EmissionModel<Obs>* em;
      const std::vector<Obs>* obs;
      linalg::Vector* qrow;
      size_t k;
    } asc{emission_acc, &seq.obs, &qrow_, k};
    if (emission_acc != nullptr) {
      sinks.on_gamma_ascending = [](void* c, size_t t,
                                    const double* gamma_row) {
        auto* a = static_cast<AscCtx*>(c);
        std::memcpy(a->qrow->data(), gamma_row, a->k * sizeof(double));
        a->em->Accumulate((*a->obs)[t], *a->qrow);
      };
      sinks.ascending_ctx = &asc;
    }
    double loglik = 0.0;
    Status st = TryForwardBackwardCheckpointed(model.pi, model.a,
                                               rows.View(),
                                               /*panel_frames=*/0, &ws,
                                               sinks, &cp_xi_, &loglik);
    DHMM_CHECK_MSG(st.ok(), st.message().c_str());
    acc->AddSequenceStats(loglik, cp_gamma0_.data(), cp_xi_, seq.length());
  }

  util::ThreadPool pool_;
  std::vector<InferenceWorkspace> workspaces_;      // one per worker
  std::vector<ForwardBackwardResult> per_seq_;      // one slot per sequence
  std::vector<double> seq_loglik_;
  linalg::Vector qrow_;  // scratch posterior row for emission accumulation
  linalg::Vector cp_gamma0_;  // gamma(0, .) capture for checkpointed seqs
  linalg::Matrix cp_xi_;      // xi capture for checkpointed sequences
  size_t checkpoint_threshold_frames_ = kDefaultCheckpointThresholdFrames;
};

/// \brief One-shot convenience wrapper when no engine is being reused.
template <typename Obs>
EStepStats BatchEStep(const HmmModel<Obs>& model, const Dataset<Obs>& data,
                      const BatchOptions& options = {},
                      prob::EmissionModel<Obs>* emission_acc = nullptr) {
  BatchEmEngine<Obs> engine(options);
  return engine.EStep(model, data, emission_acc);
}

}  // namespace dhmm::hmm

#endif  // DHMM_HMM_ENGINE_H_
