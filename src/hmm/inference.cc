#include "hmm/inference.h"

#include <cmath>

#include "prob/logsumexp.h"
#include "util/check.h"

namespace dhmm::hmm {

namespace {

// Fills ws->btilde / ws->shift with the shifted emissions for every frame:
// btilde(t, i) = exp(log_b(t, i) - m_t) with m_t = max_i log_b(t, i), so at
// least one entry per row is exactly 1. Computed once per sequence and shared
// by the forward, backward, and xi loops (the seed code recomputed the same
// row up to three times per frame).
void PrecomputeShiftedEmissions(const linalg::Matrix& log_b,
                                InferenceWorkspace* ws) {
  const size_t big_t = log_b.rows();
  const size_t k = log_b.cols();
  ws->btilde.Resize(big_t, k);
  ws->shift.Resize(big_t);
  for (size_t t = 0; t < big_t; ++t) {
    const double* row = log_b.row_data(t);
    double m = prob::kNegInf;
    for (size_t i = 0; i < k; ++i) m = std::max(m, row[i]);
    DHMM_CHECK_MSG(m != prob::kNegInf,
                   "frame has zero emission probability in every state");
    double* out = ws->btilde.row_data(t);
    for (size_t i = 0; i < k; ++i) out[i] = std::exp(row[i] - m);
    ws->shift[t] = m;
  }
}

}  // namespace

void ForwardBackward(const linalg::Vector& pi, const linalg::Matrix& a,
                     const linalg::Matrix& log_b, InferenceWorkspace* ws,
                     ForwardBackwardResult* out) {
  const size_t k = pi.size();
  const size_t big_t = log_b.rows();
  DHMM_CHECK(ws != nullptr && out != nullptr);
  DHMM_CHECK(a.rows() == k && a.cols() == k);
  DHMM_CHECK(log_b.cols() == k);
  DHMM_CHECK_MSG(big_t > 0, "empty sequence");

  out->gamma.Resize(big_t, k);
  out->xi_sum.Resize(k, k);
  out->xi_sum.Fill(0.0);

  PrecomputeShiftedEmissions(log_b, ws);
  ws->alpha_hat.Resize(big_t, k);
  ws->beta_hat.Resize(big_t, k);
  ws->scale.Resize(big_t);
  linalg::Matrix& alpha_hat = ws->alpha_hat;
  linalg::Matrix& beta_hat = ws->beta_hat;
  const linalg::Matrix& btilde = ws->btilde;
  linalg::Vector& scale = ws->scale;

  // Forward pass with per-step normalization (scale c_t) and per-frame
  // emission shifts m_t: log P(Y) = sum_t (log c_t + m_t).
  double loglik = 0.0;
  double c = 0.0;
  for (size_t i = 0; i < k; ++i) {
    alpha_hat(0, i) = pi[i] * btilde(0, i);
    c += alpha_hat(0, i);
  }
  DHMM_CHECK_MSG(c > 0.0, "initial frame has zero probability under pi");
  for (size_t i = 0; i < k; ++i) alpha_hat(0, i) /= c;
  scale[0] = c;
  loglik += std::log(c) + ws->shift[0];

  for (size_t t = 1; t < big_t; ++t) {
    c = 0.0;
    for (size_t j = 0; j < k; ++j) {
      double s = 0.0;
      for (size_t i = 0; i < k; ++i) s += alpha_hat(t - 1, i) * a(i, j);
      alpha_hat(t, j) = s * btilde(t, j);
      c += alpha_hat(t, j);
    }
    DHMM_CHECK_MSG(c > 0.0, "forward message vanished (unreachable frame)");
    for (size_t j = 0; j < k; ++j) alpha_hat(t, j) /= c;
    scale[t] = c;
    loglik += std::log(c) + ws->shift[t];
  }
  out->log_likelihood = loglik;

  // Backward pass using the same scales.
  for (size_t i = 0; i < k; ++i) beta_hat(big_t - 1, i) = 1.0;
  for (size_t t = big_t - 1; t-- > 0;) {
    for (size_t i = 0; i < k; ++i) {
      double s = 0.0;
      for (size_t j = 0; j < k; ++j) {
        s += a(i, j) * btilde(t + 1, j) * beta_hat(t + 1, j);
      }
      beta_hat(t, i) = s / scale[t + 1];
    }
  }

  // Unary posteriors gamma and summed pairwise posteriors xi.
  for (size_t t = 0; t < big_t; ++t) {
    double norm = 0.0;
    for (size_t i = 0; i < k; ++i) {
      out->gamma(t, i) = alpha_hat(t, i) * beta_hat(t, i);
      norm += out->gamma(t, i);
    }
    DHMM_CHECK(norm > 0.0);
    for (size_t i = 0; i < k; ++i) out->gamma(t, i) /= norm;
  }
  for (size_t t = 1; t < big_t; ++t) {
    for (size_t i = 0; i < k; ++i) {
      double ai = alpha_hat(t - 1, i);
      if (ai == 0.0) continue;
      for (size_t j = 0; j < k; ++j) {
        out->xi_sum(i, j) +=
            ai * a(i, j) * btilde(t, j) * beta_hat(t, j) / scale[t];
      }
    }
  }
}

ForwardBackwardResult ForwardBackward(const linalg::Vector& pi,
                                      const linalg::Matrix& a,
                                      const linalg::Matrix& log_b) {
  InferenceWorkspace ws;
  ForwardBackwardResult out;
  ForwardBackward(pi, a, log_b, &ws, &out);
  return out;
}

double LogLikelihood(const linalg::Vector& pi, const linalg::Matrix& a,
                     const linalg::Matrix& log_b, InferenceWorkspace* ws) {
  const size_t k = pi.size();
  const size_t big_t = log_b.rows();
  DHMM_CHECK(ws != nullptr);
  DHMM_CHECK(a.rows() == k && a.cols() == k && log_b.cols() == k);
  DHMM_CHECK(big_t > 0);
  ws->alpha.Resize(k);
  ws->alpha_next.Resize(k);
  ws->frame.Resize(k);
  linalg::Vector& alpha = ws->alpha;
  linalg::Vector& next = ws->alpha_next;
  linalg::Vector& btilde = ws->frame;

  // One frame of shifted emissions at a time: the forward-only pass never
  // revisits a frame, so a full T x k cache would be wasted work.
  auto shifted = [&](size_t t) {
    const double* row = log_b.row_data(t);
    double m = prob::kNegInf;
    for (size_t i = 0; i < k; ++i) m = std::max(m, row[i]);
    DHMM_CHECK_MSG(m != prob::kNegInf,
                   "frame has zero emission probability in every state");
    for (size_t i = 0; i < k; ++i) btilde[i] = std::exp(row[i] - m);
    return m;
  };

  double loglik = 0.0;
  double m = shifted(0);
  double c = 0.0;
  for (size_t i = 0; i < k; ++i) {
    alpha[i] = pi[i] * btilde[i];
    c += alpha[i];
  }
  DHMM_CHECK(c > 0.0);
  for (size_t i = 0; i < k; ++i) alpha[i] /= c;
  loglik += std::log(c) + m;
  for (size_t t = 1; t < big_t; ++t) {
    m = shifted(t);
    c = 0.0;
    for (size_t j = 0; j < k; ++j) {
      double s = 0.0;
      for (size_t i = 0; i < k; ++i) s += alpha[i] * a(i, j);
      next[j] = s * btilde[j];
      c += next[j];
    }
    DHMM_CHECK(c > 0.0);
    for (size_t j = 0; j < k; ++j) alpha[j] = next[j] / c;
    loglik += std::log(c) + m;
  }
  return loglik;
}

double LogLikelihood(const linalg::Vector& pi, const linalg::Matrix& a,
                     const linalg::Matrix& log_b) {
  InferenceWorkspace ws;
  return LogLikelihood(pi, a, log_b, &ws);
}

void Viterbi(const linalg::Vector& pi, const linalg::Matrix& a,
             const linalg::Matrix& log_b, InferenceWorkspace* ws,
             ViterbiResult* out) {
  const size_t k = pi.size();
  const size_t big_t = log_b.rows();
  DHMM_CHECK(ws != nullptr && out != nullptr);
  DHMM_CHECK(a.rows() == k && a.cols() == k && log_b.cols() == k);
  DHMM_CHECK(big_t > 0);

  // Log-domain tables.
  ws->log_pi.Resize(k);
  ws->log_a.Resize(k, k);
  for (size_t i = 0; i < k; ++i) {
    ws->log_pi[i] = pi[i] > 0.0 ? std::log(pi[i]) : prob::kNegInf;
  }
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) {
      ws->log_a(i, j) = a(i, j) > 0.0 ? std::log(a(i, j)) : prob::kNegInf;
    }
  }

  ws->delta.Resize(big_t, k);
  // Backpointers as one flat row-major T*k buffer: psi[t * k + j] is the
  // best predecessor of state j at frame t. The seed code used a
  // vector<vector<int>> (T separate heap allocations per decode).
  ws->psi.resize(big_t * k);
  linalg::Matrix& delta = ws->delta;
  std::vector<int>& psi = ws->psi;

  for (size_t i = 0; i < k; ++i) delta(0, i) = ws->log_pi[i] + log_b(0, i);
  for (size_t t = 1; t < big_t; ++t) {
    int* psi_row = psi.data() + t * k;
    for (size_t j = 0; j < k; ++j) {
      // Strict > keeps the lowest-index predecessor on ties (pinned by
      // tests/engine_test.cc).
      double best = prob::kNegInf;
      int arg = 0;
      for (size_t i = 0; i < k; ++i) {
        double v = delta(t - 1, i) + ws->log_a(i, j);
        if (v > best) {
          best = v;
          arg = static_cast<int>(i);
        }
      }
      delta(t, j) = best + log_b(t, j);
      psi_row[j] = arg;
    }
  }

  out->path.resize(big_t);
  double best = prob::kNegInf;
  int arg = 0;
  for (size_t i = 0; i < k; ++i) {
    if (delta(big_t - 1, i) > best) {
      best = delta(big_t - 1, i);
      arg = static_cast<int>(i);
    }
  }
  DHMM_CHECK_MSG(best != prob::kNegInf,
                 "no state path has positive probability");
  out->log_joint = best;
  out->path[big_t - 1] = arg;
  for (size_t t = big_t - 1; t-- > 0;) {
    out->path[t] = psi[(t + 1) * k + out->path[t + 1]];
  }
}

ViterbiResult Viterbi(const linalg::Vector& pi, const linalg::Matrix& a,
                      const linalg::Matrix& log_b) {
  InferenceWorkspace ws;
  ViterbiResult out;
  Viterbi(pi, a, log_b, &ws, &out);
  return out;
}

}  // namespace dhmm::hmm
