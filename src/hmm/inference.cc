#include "hmm/inference.h"

#include <cmath>
#include <cstring>
#include <string>

#include "linalg/kernels.h"
#include "linalg/kernels_dispatch.h"
#include "prob/logsumexp.h"
#include "util/check.h"

namespace dhmm::hmm {

namespace klib = linalg::kernels;

// Every Try* entry point fetches its kernel table once via klib::ForK(k)
// — outside all per-frame loops — and calls the reduction/axpy/fused
// kernels through it. The cheap inline scans (ArgMax*, ScaleRow,
// MulRowInto) stay direct calls: they are branchy or trivially cheap and
// identical across variants.

bool TransitionCache::Sync(const linalg::Matrix& a) {
  const size_t k = a.rows();
  DHMM_CHECK(a.cols() == k);
  if (a_copy_.rows() == k && a_copy_.cols() == k &&
      std::memcmp(a_copy_.data(), a.data(), k * k * sizeof(double)) == 0) {
    return false;
  }
  a_copy_.Resize(k, k);
  std::memcpy(a_copy_.data(), a.data(), k * k * sizeof(double));
  a_t_.Resize(k, k);
  klib::TransposeInto(a.data(), k, k, a_t_.data());
  log_valid_ = false;
  ++version_;
  return true;
}

const linalg::Matrix& TransitionCache::Transpose(const linalg::Matrix& a) {
  Sync(a);
  return a_t_;
}

const linalg::Matrix& TransitionCache::LogTranspose(const linalg::Matrix& a) {
  Sync(a);
  if (!log_valid_) {
    const size_t k = a_t_.rows();
    log_a_t_.Resize(k, k);
    const double* src = a_t_.data();
    double* dst = log_a_t_.data();
    for (size_t i = 0; i < k * k; ++i) {
      dst[i] = src[i] > 0.0 ? std::log(src[i]) : prob::kNegInf;
    }
    log_valid_ = true;
  }
  return log_a_t_;
}

namespace internal {

std::string FrameError(const char* what, size_t t) {
  return std::string(what) + " at frame " + std::to_string(t);
}

}  // namespace internal

using internal::FrameError;

namespace {

// Fills ws->btilde / ws->shift with the shifted emissions for every frame:
// btilde(t, i) = exp(log_b(t, i) - m_t) with m_t = max_i log_b(t, i), so at
// least one entry per row is exactly 1. Computed once per sequence and shared
// by the forward and the fused backward/xi loops (the seed code recomputed
// the same row up to three times per frame). Fails on a frame with zero
// emission probability in every state.
Status PrecomputeShiftedEmissions(const linalg::Matrix& log_b,
                                  const klib::KernelTable& kt,
                                  InferenceWorkspace* ws) {
  const size_t big_t = log_b.rows();
  const size_t k = log_b.cols();
  ws->btilde.Resize(big_t, k);
  ws->shift.Resize(big_t);
  for (size_t t = 0; t < big_t; ++t) {
    const double m =
        kt.exp_shift_row(log_b.row_data(t), k, ws->btilde.row_data(t));
    if (m == prob::kNegInf) {
      return Status::InvalidArgument(
          FrameError("zero emission probability in every state", t));
    }
    ws->shift[t] = m;
  }
  return Status::OK();
}

// gamma(t, .) = normalized alpha_hat(t, .) * beta_hat(t, .), with the
// division replaced by one hoisted reciprocal multiply. False when the
// posterior mass vanished (numerically impossible frame).
bool GammaRow(const klib::KernelTable& kt, const double* alpha_row,
              const double* beta_row, size_t k, double* gamma_row) {
  klib::MulRowInto(alpha_row, beta_row, k, gamma_row);
  const double norm = kt.sum_row(gamma_row, k);
  if (!(norm > 0.0)) return false;
  klib::ScaleRow(gamma_row, k, 1.0 / norm);
  return true;
}

// Smallest s with s * s >= n (panel width for the checkpointed sweep).
size_t CeilSqrt(size_t n) {
  size_t s = static_cast<size_t>(std::sqrt(static_cast<double>(n)));
  while (s * s < n) ++s;
  while (s > 1 && (s - 1) * (s - 1) >= n) --s;
  return s;
}

}  // namespace

Status TryForwardBackward(const linalg::Vector& pi, const linalg::Matrix& a,
                          const linalg::Matrix& log_b,
                          InferenceWorkspace* ws,
                          ForwardBackwardResult* out) {
  const size_t k = pi.size();
  const size_t big_t = log_b.rows();
  DHMM_CHECK(ws != nullptr && out != nullptr);
  DHMM_CHECK(a.rows() == k && a.cols() == k);
  DHMM_CHECK(log_b.cols() == k);
  DHMM_CHECK_MSG(big_t > 0, "empty sequence");

  out->gamma.Resize(big_t, k);
  out->xi_sum.Resize(k, k);
  out->xi_sum.Fill(0.0);

  const klib::KernelTable& kt = klib::ForK(k);
  DHMM_RETURN_NOT_OK(PrecomputeShiftedEmissions(log_b, kt, ws));
  ws->alpha_hat.Resize(big_t, k);
  ws->beta_hat.Resize(big_t, k);
  ws->scale.Resize(big_t);
  ws->frame_u.Resize(k);
  linalg::Matrix& alpha_hat = ws->alpha_hat;
  linalg::Matrix& beta_hat = ws->beta_hat;
  const linalg::Matrix& btilde = ws->btilde;
  linalg::Vector& scale = ws->scale;
  // Forward recursion reads A column-wise; dot against rows of the cached
  // transpose instead (rebuilt only when A changes, once per EM iteration).
  const linalg::Matrix& a_t = ws->transition.Transpose(a);

  // Forward pass with per-step normalization (scale c_t) and per-frame
  // emission shifts m_t: log P(Y) = sum_t (log c_t + m_t).
  double loglik = 0.0;
  double* alpha0 = alpha_hat.row_data(0);
  klib::MulRowInto(pi.data(), btilde.row_data(0), k, alpha0);
  double c = kt.sum_row(alpha0, k);
  if (!(c > 0.0)) {
    return Status::InvalidArgument(
        FrameError("forward message vanished", 0));
  }
  klib::ScaleRow(alpha0, k, 1.0 / c);
  scale[0] = c;
  loglik += std::log(c) + ws->shift[0];

  for (size_t t = 1; t < big_t; ++t) {
    double* cur = alpha_hat.row_data(t);
    // Fused step: cur[j] = dot(a_t row j, alpha_{t-1}) * btilde(t, j).
    kt.mat_vec_col_mul(a_t.data(), alpha_hat.row_data(t - 1),
                       btilde.row_data(t), k, k, cur);
    c = kt.sum_row(cur, k);
    if (!(c > 0.0)) {
      return Status::InvalidArgument(
          FrameError("forward message vanished", t));
    }
    klib::ScaleRow(cur, k, 1.0 / c);
    scale[t] = c;
    loglik += std::log(c) + ws->shift[t];
  }
  out->log_likelihood = loglik;

  // Fused backward / gamma / xi sweep. At step t the frame product
  // u = btilde(t+1,.) * beta_hat(t+1,.) / c_{t+1} is computed once (the seed
  // recomputed it k times and divided inside the innermost loop) and reused
  // by both the backward row-dots and the xi row-axpys while it is hot.
  double* beta_last = beta_hat.row_data(big_t - 1);
  for (size_t i = 0; i < k; ++i) beta_last[i] = 1.0;
  if (!GammaRow(kt, alpha_hat.row_data(big_t - 1), beta_last, k,
                out->gamma.row_data(big_t - 1))) {
    return Status::InvalidArgument(
        FrameError("posterior mass vanished", big_t - 1));
  }
  double* u = ws->frame_u.data();
  for (size_t t = big_t - 1; t-- > 0;) {
    kt.mul_row_scaled_into(btilde.row_data(t + 1), beta_hat.row_data(t + 1),
                           1.0 / scale[t + 1], k, u);
    const double* alpha_row = alpha_hat.row_data(t);
    double* beta_row = beta_hat.row_data(t);
    // beta(t) = A u and the frame's xi accumulation in one pass over A
    // (bitwise = mat_vec_col then axpy_mul_mat; A is read once, not
    // twice — the win that matters once k x k falls out of L1).
    kt.backward_fused(a.data(), u, alpha_row, k, k, beta_row,
                      out->xi_sum.data());
    if (!GammaRow(kt, alpha_row, beta_row, k, out->gamma.row_data(t))) {
      return Status::InvalidArgument(
          FrameError("posterior mass vanished", t));
    }
  }
  return Status::OK();
}

void ForwardBackward(const linalg::Vector& pi, const linalg::Matrix& a,
                     const linalg::Matrix& log_b, InferenceWorkspace* ws,
                     ForwardBackwardResult* out) {
  Status st = TryForwardBackward(pi, a, log_b, ws, out);
  DHMM_CHECK_MSG(st.ok(), st.message().c_str());
}

ForwardBackwardResult ForwardBackward(const linalg::Vector& pi,
                                      const linalg::Matrix& a,
                                      const linalg::Matrix& log_b) {
  InferenceWorkspace ws;
  ForwardBackwardResult out;
  ForwardBackward(pi, a, log_b, &ws, &out);
  return out;
}

LogBRows MatrixLogBRows(const linalg::Matrix& log_b) {
  LogBRows rows;
  rows.row = [](void* ctx, size_t t) -> const double* {
    return static_cast<const linalg::Matrix*>(ctx)->row_data(t);
  };
  rows.ctx = const_cast<linalg::Matrix*>(&log_b);
  rows.frames = log_b.rows();
  rows.states = log_b.cols();
  return rows;
}

Status TryForwardBackwardCheckpointed(const linalg::Vector& pi,
                                      const linalg::Matrix& a,
                                      const LogBRows& log_b,
                                      size_t panel_frames,
                                      InferenceWorkspace* ws,
                                      const CheckpointedGammaSinks& sinks,
                                      linalg::Matrix* xi_sum,
                                      double* log_likelihood) {
  const size_t k = pi.size();
  const size_t big_t = log_b.frames;
  DHMM_CHECK(ws != nullptr && xi_sum != nullptr && log_likelihood != nullptr);
  DHMM_CHECK(log_b.row != nullptr && sinks.on_gamma != nullptr);
  DHMM_CHECK(a.rows() == k && a.cols() == k && log_b.states == k);
  DHMM_CHECK_MSG(big_t > 0, "empty sequence");

  size_t panel = panel_frames == 0 ? CeilSqrt(big_t) : panel_frames;
  if (panel > big_t) panel = big_t;
  const size_t num_panels = (big_t + panel - 1) / panel;

  xi_sum->Resize(k, k);
  xi_sum->Fill(0.0);
  ws->cp_alpha.Resize(num_panels, k);
  ws->panel_alpha.Resize(panel, k);
  ws->panel_btilde.Resize(panel + 1, k);
  ws->cp_scale.Resize(big_t);
  ws->frame_u.Resize(k);
  ws->cp_beta_next.Resize(k);
  ws->cp_beta_cur.Resize(k);
  ws->cp_gamma.Resize(k);
  ws->alpha.Resize(k);
  ws->alpha_next.Resize(k);
  ws->frame.Resize(k);
  linalg::Vector& scale = ws->cp_scale;
  const linalg::Matrix& a_t = ws->transition.Transpose(a);
  const klib::KernelTable& kt = klib::ForK(k);

  // ---- Pass 1: forward, keeping one scaled alpha row per panel plus all T
  // scale factors. The kernel-call sequence per frame is exactly the full
  // path's forward loop; only the destinations differ (ping-pong k-vectors
  // instead of a T x k table), so every retained row is bitwise equal to
  // the full path's corresponding alpha_hat row.
  {
    double loglik = 0.0;
    double* prev = ws->alpha.data();
    double* cur = ws->alpha_next.data();
    double* bt = ws->frame.data();
    for (size_t t = 0; t < big_t; ++t) {
      const double m = kt.exp_shift_row(log_b.row(log_b.ctx, t), k, bt);
      if (m == prob::kNegInf) {
        return Status::InvalidArgument(
            FrameError("zero emission probability in every state", t));
      }
      if (t == 0) {
        klib::MulRowInto(pi.data(), bt, k, cur);
      } else {
        kt.mat_vec_col_mul(a_t.data(), prev, bt, k, k, cur);
      }
      const double c = kt.sum_row(cur, k);
      if (!(c > 0.0)) {
        return Status::InvalidArgument(
            FrameError("forward message vanished", t));
      }
      klib::ScaleRow(cur, k, 1.0 / c);
      scale[t] = c;
      loglik += std::log(c) + m;
      if (t % panel == 0) {
        std::memcpy(ws->cp_alpha.row_data(t / panel), cur,
                    k * sizeof(double));
      }
      std::swap(prev, cur);
    }
    *log_likelihood = loglik;
  }

  // Refills panel_btilde for frames [t0, hi] (inclusive — a panel's backward
  // step also reads btilde(t1)) and replays the panel's alpha rows [t0, t1)
  // from the stored checkpoint. Recomputation feeds the identical input bits
  // through the identical deterministic kernels, so the replayed rows equal
  // the full path's bit for bit. Pass 1 already vetted every frame, but the
  // emissions come back through the provider, so the checks stay.
  auto replay_panel = [&](size_t p, size_t t0, size_t t1,
                          size_t hi) -> Status {
    for (size_t t = t0; t <= hi; ++t) {
      const double m = kt.exp_shift_row(log_b.row(log_b.ctx, t), k,
                                        ws->panel_btilde.row_data(t - t0));
      if (m == prob::kNegInf) {
        return Status::InvalidArgument(
            FrameError("zero emission probability in every state", t));
      }
    }
    std::memcpy(ws->panel_alpha.row_data(0), ws->cp_alpha.row_data(p),
                k * sizeof(double));
    for (size_t t = t0 + 1; t < t1; ++t) {
      double* row = ws->panel_alpha.row_data(t - t0);
      kt.mat_vec_col_mul(a_t.data(), ws->panel_alpha.row_data(t - 1 - t0),
                         ws->panel_btilde.row_data(t - t0), k, k, row);
      const double c = kt.sum_row(row, k);
      if (!(c > 0.0)) {
        return Status::InvalidArgument(
            FrameError("forward message vanished", t));
      }
      klib::ScaleRow(row, k, 1.0 / c);
    }
    return Status::OK();
  };

  // ---- Pass 2: fused backward / gamma / xi sweep over panels in
  // descending order. Per frame this runs the exact kernel calls of the
  // full path's fused sweep — u = btilde(t+1) * beta(t+1) / c_{t+1}, then
  // the row-dots and xi row-axpys — and xi accumulates in the same globally
  // descending t order, so xi_sum matches the full path bitwise.
  const bool want_ascending = sinks.on_gamma_ascending != nullptr;
  if (want_ascending) ws->cp_beta.Resize(num_panels, k);
  double* beta_next = ws->cp_beta_next.data();  // beta_hat(f + 1) carry
  double* beta_cur = ws->cp_beta_cur.data();
  double* gamma_row = ws->cp_gamma.data();
  double* u = ws->frame_u.data();
  for (size_t p = num_panels; p-- > 0;) {
    const size_t t0 = p * panel;
    const size_t t1 = std::min(big_t, t0 + panel);
    const size_t hi = std::min(t1, big_t - 1);
    DHMM_RETURN_NOT_OK(replay_panel(p, t0, t1, hi));
    size_t f = t1;  // next frame processed by the descent is f - 1
    if (p + 1 == num_panels) {
      // Backward base case, exactly as the full path: beta(T-1) = 1.
      for (size_t i = 0; i < k; ++i) beta_next[i] = 1.0;
      if (!GammaRow(kt, ws->panel_alpha.row_data(big_t - 1 - t0), beta_next,
                    k, gamma_row)) {
        return Status::InvalidArgument(
            FrameError("posterior mass vanished", big_t - 1));
      }
      sinks.on_gamma(sinks.gamma_ctx, big_t - 1, gamma_row);
      f = big_t - 1;
    }
    while (f-- > t0) {
      kt.mul_row_scaled_into(ws->panel_btilde.row_data(f + 1 - t0),
                             beta_next, 1.0 / scale[f + 1], k, u);
      const double* alpha_row = ws->panel_alpha.row_data(f - t0);
      // Same fused backward frame as the full path's sweep — bitwise
      // equality frame by frame depends on it.
      kt.backward_fused(a.data(), u, alpha_row, k, k, beta_cur,
                        xi_sum->data());
      if (!GammaRow(kt, alpha_row, beta_cur, k, gamma_row)) {
        return Status::InvalidArgument(
            FrameError("posterior mass vanished", f));
      }
      sinks.on_gamma(sinks.gamma_ctx, f, gamma_row);
      std::swap(beta_cur, beta_next);  // beta_next now holds beta_hat(f)
    }
    // beta_next left holding beta_hat(t0): the seed row the ascending
    // replay needs to rebuild this panel's betas without a second sweep.
    if (want_ascending) {
      std::memcpy(ws->cp_beta.row_data(p), beta_next, k * sizeof(double));
    }
  }

  // ---- Pass 3 (optional): ascending gamma replay for consumers whose
  // accumulation order matters bitwise (the E-step feeds emission
  // sufficient statistics in ascending frame order). Both message panels
  // replay from their stored seed rows through the pass-2 kernel calls, so
  // the gamma rows equal the descending pass bit for bit.
  if (want_ascending) {
    ws->panel_beta.Resize(panel, k);
    for (size_t p = 0; p < num_panels; ++p) {
      const size_t t0 = p * panel;
      const size_t t1 = std::min(big_t, t0 + panel);
      const size_t hi = std::min(t1, big_t - 1);
      DHMM_RETURN_NOT_OK(replay_panel(p, t0, t1, hi));
      size_t f = t1;
      const double* seed = nullptr;  // beta_hat(t1) for non-final panels
      if (p + 1 == num_panels) {
        double* last = ws->panel_beta.row_data(t1 - 1 - t0);
        for (size_t i = 0; i < k; ++i) last[i] = 1.0;
        f = t1 - 1;
      } else {
        seed = ws->cp_beta.row_data(p + 1);
      }
      while (f-- > t0) {
        const double* beta_up =
            (f + 1 == t1) ? seed : ws->panel_beta.row_data(f + 1 - t0);
        kt.mul_row_scaled_into(ws->panel_btilde.row_data(f + 1 - t0),
                               beta_up, 1.0 / scale[f + 1], k, u);
        kt.mat_vec_col(a.data(), u, k, k, ws->panel_beta.row_data(f - t0));
      }
      for (size_t t = t0; t < t1; ++t) {
        if (!GammaRow(kt, ws->panel_alpha.row_data(t - t0),
                      ws->panel_beta.row_data(t - t0), k, gamma_row)) {
          return Status::InvalidArgument(
              FrameError("posterior mass vanished", t));
        }
        sinks.on_gamma_ascending(sinks.ascending_ctx, t, gamma_row);
      }
    }
  }
  return Status::OK();
}

Status TryForwardBackwardCheckpointed(const linalg::Vector& pi,
                                      const linalg::Matrix& a,
                                      const linalg::Matrix& log_b,
                                      size_t panel_frames,
                                      InferenceWorkspace* ws,
                                      ForwardBackwardResult* out) {
  DHMM_CHECK(out != nullptr);
  out->gamma.Resize(log_b.rows(), log_b.cols());
  CheckpointedGammaSinks sinks;
  sinks.on_gamma = [](void* ctx, size_t t, const double* row) {
    auto* gamma = static_cast<linalg::Matrix*>(ctx);
    std::memcpy(gamma->row_data(t), row, gamma->cols() * sizeof(double));
  };
  sinks.gamma_ctx = &out->gamma;
  return TryForwardBackwardCheckpointed(pi, a, MatrixLogBRows(log_b),
                                        panel_frames, ws, sinks,
                                        &out->xi_sum, &out->log_likelihood);
}

Status TryLogLikelihood(const linalg::Vector& pi, const linalg::Matrix& a,
                        const linalg::Matrix& log_b, InferenceWorkspace* ws,
                        double* out) {
  // Same per-frame kernel-call sequence either way, so delegating to the
  // rows form is bitwise-neutral.
  return TryLogLikelihoodRows(pi, a, MatrixLogBRows(log_b), ws, out);
}

Status TryLogLikelihoodRows(const linalg::Vector& pi, const linalg::Matrix& a,
                            const LogBRows& log_b, InferenceWorkspace* ws,
                            double* out) {
  const size_t k = pi.size();
  const size_t big_t = log_b.frames;
  DHMM_CHECK(ws != nullptr && out != nullptr && log_b.row != nullptr);
  DHMM_CHECK(a.rows() == k && a.cols() == k && log_b.states == k);
  DHMM_CHECK(big_t > 0);
  ws->alpha.Resize(k);
  ws->alpha_next.Resize(k);
  ws->frame.Resize(k);
  double* alpha = ws->alpha.data();
  double* next = ws->alpha_next.data();
  double* btilde = ws->frame.data();
  const linalg::Matrix& a_t = ws->transition.Transpose(a);
  const klib::KernelTable& kt = klib::ForK(k);

  // One frame of shifted emissions at a time: the forward-only pass never
  // revisits a frame, so a full T x k cache would be wasted work.
  auto shifted = [&](size_t t) {
    return kt.exp_shift_row(log_b.row(log_b.ctx, t), k, btilde);
  };

  double loglik = 0.0;
  double m = shifted(0);
  if (m == prob::kNegInf) {
    return Status::InvalidArgument(
        FrameError("zero emission probability in every state", 0));
  }
  klib::MulRowInto(pi.data(), btilde, k, alpha);
  double c = kt.sum_row(alpha, k);
  if (!(c > 0.0)) {
    return Status::InvalidArgument(
        FrameError("forward message vanished", 0));
  }
  klib::ScaleRow(alpha, k, 1.0 / c);
  loglik += std::log(c) + m;
  for (size_t t = 1; t < big_t; ++t) {
    m = shifted(t);
    if (m == prob::kNegInf) {
      return Status::InvalidArgument(
          FrameError("zero emission probability in every state", t));
    }
    kt.mat_vec_col_mul(a_t.data(), alpha, btilde, k, k, next);
    c = kt.sum_row(next, k);
    if (!(c > 0.0)) {
      return Status::InvalidArgument(
          FrameError("forward message vanished", t));
    }
    klib::ScaleRowInto(next, 1.0 / c, k, alpha);
    loglik += std::log(c) + m;
  }
  *out = loglik;
  return Status::OK();
}

double LogLikelihood(const linalg::Vector& pi, const linalg::Matrix& a,
                     const linalg::Matrix& log_b, InferenceWorkspace* ws) {
  double out = 0.0;
  Status st = TryLogLikelihood(pi, a, log_b, ws, &out);
  DHMM_CHECK_MSG(st.ok(), st.message().c_str());
  return out;
}

double LogLikelihood(const linalg::Vector& pi, const linalg::Matrix& a,
                     const linalg::Matrix& log_b) {
  InferenceWorkspace ws;
  return LogLikelihood(pi, a, log_b, &ws);
}

Status TryViterbi(const linalg::Vector& pi, const linalg::Matrix& a,
                  const linalg::Matrix& log_b, InferenceWorkspace* ws,
                  ViterbiResult* out) {
  const size_t k = pi.size();
  const size_t big_t = log_b.rows();
  DHMM_CHECK(ws != nullptr && out != nullptr);
  DHMM_CHECK(a.rows() == k && a.cols() == k && log_b.cols() == k);
  DHMM_CHECK(big_t > 0);

  ws->log_pi.Resize(k);
  for (size_t i = 0; i < k; ++i) {
    ws->log_pi[i] = pi[i] > 0.0 ? std::log(pi[i]) : prob::kNegInf;
  }
  // The recursion maxes over predecessors i of log_a(i, j) for fixed j — a
  // column of log A. Dot against rows of the cached log-transpose instead;
  // like the forward transpose it is rebuilt only when A changes.
  const linalg::Matrix& log_a_t = ws->transition.LogTranspose(a);

  ws->delta.Resize(big_t, k);
  // Backpointers as one flat row-major T*k buffer: psi[t * k + j] is the
  // best predecessor of state j at frame t. The seed code used a
  // vector<vector<int>> (T separate heap allocations per decode).
  ws->psi.resize(big_t * k);
  linalg::Matrix& delta = ws->delta;
  std::vector<int>& psi = ws->psi;

  for (size_t i = 0; i < k; ++i) delta(0, i) = ws->log_pi[i] + log_b(0, i);
  for (size_t t = 1; t < big_t; ++t) {
    int* psi_row = psi.data() + t * k;
    const double* prev = delta.row_data(t - 1);
    const double* lb_row = log_b.row_data(t);
    double* delta_row = delta.row_data(t);
    for (size_t j = 0; j < k; ++j) {
      // ArgMaxSumRow uses strict >, keeping the lowest-index predecessor on
      // ties (pinned by tests/engine_test.cc).
      double best = prob::kNegInf;
      psi_row[j] = static_cast<int>(
          klib::ArgMaxSumRow(prev, log_a_t.row_data(j), k, &best));
      delta_row[j] = best + lb_row[j];
    }
  }

  out->path.resize(big_t);
  const double* last = delta.row_data(big_t - 1);
  const size_t arg = klib::ArgMaxRow(last, k);
  if (last[arg] == prob::kNegInf) {
    return Status::InvalidArgument(
        "no state path has positive probability for the sequence");
  }
  out->log_joint = last[arg];
  out->path[big_t - 1] = static_cast<int>(arg);
  for (size_t t = big_t - 1; t-- > 0;) {
    out->path[t] = psi[(t + 1) * k + out->path[t + 1]];
  }
  return Status::OK();
}

void Viterbi(const linalg::Vector& pi, const linalg::Matrix& a,
             const linalg::Matrix& log_b, InferenceWorkspace* ws,
             ViterbiResult* out) {
  Status st = TryViterbi(pi, a, log_b, ws, out);
  DHMM_CHECK_MSG(st.ok(), st.message().c_str());
}

ViterbiResult Viterbi(const linalg::Vector& pi, const linalg::Matrix& a,
                      const linalg::Matrix& log_b) {
  InferenceWorkspace ws;
  ViterbiResult out;
  Viterbi(pi, a, log_b, &ws, &out);
  return out;
}

}  // namespace dhmm::hmm
