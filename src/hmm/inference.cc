#include "hmm/inference.h"

#include <cmath>
#include <cstring>
#include <string>

#include "linalg/kernels.h"
#include "prob/logsumexp.h"
#include "util/check.h"

namespace dhmm::hmm {

namespace klib = linalg::kernels;

bool TransitionCache::Sync(const linalg::Matrix& a) {
  const size_t k = a.rows();
  DHMM_CHECK(a.cols() == k);
  if (a_copy_.rows() == k && a_copy_.cols() == k &&
      std::memcmp(a_copy_.data(), a.data(), k * k * sizeof(double)) == 0) {
    return false;
  }
  a_copy_.Resize(k, k);
  std::memcpy(a_copy_.data(), a.data(), k * k * sizeof(double));
  a_t_.Resize(k, k);
  klib::TransposeInto(a.data(), k, k, a_t_.data());
  log_valid_ = false;
  ++version_;
  return true;
}

const linalg::Matrix& TransitionCache::Transpose(const linalg::Matrix& a) {
  Sync(a);
  return a_t_;
}

const linalg::Matrix& TransitionCache::LogTranspose(const linalg::Matrix& a) {
  Sync(a);
  if (!log_valid_) {
    const size_t k = a_t_.rows();
    log_a_t_.Resize(k, k);
    const double* src = a_t_.data();
    double* dst = log_a_t_.data();
    for (size_t i = 0; i < k * k; ++i) {
      dst[i] = src[i] > 0.0 ? std::log(src[i]) : prob::kNegInf;
    }
    log_valid_ = true;
  }
  return log_a_t_;
}

namespace internal {

std::string FrameError(const char* what, size_t t) {
  return std::string(what) + " at frame " + std::to_string(t);
}

}  // namespace internal

using internal::FrameError;

namespace {

// Fills ws->btilde / ws->shift with the shifted emissions for every frame:
// btilde(t, i) = exp(log_b(t, i) - m_t) with m_t = max_i log_b(t, i), so at
// least one entry per row is exactly 1. Computed once per sequence and shared
// by the forward and the fused backward/xi loops (the seed code recomputed
// the same row up to three times per frame). Fails on a frame with zero
// emission probability in every state.
Status PrecomputeShiftedEmissions(const linalg::Matrix& log_b,
                                  InferenceWorkspace* ws) {
  const size_t big_t = log_b.rows();
  const size_t k = log_b.cols();
  ws->btilde.Resize(big_t, k);
  ws->shift.Resize(big_t);
  for (size_t t = 0; t < big_t; ++t) {
    const double m =
        klib::ExpShiftRow(log_b.row_data(t), k, ws->btilde.row_data(t));
    if (m == prob::kNegInf) {
      return Status::InvalidArgument(
          FrameError("zero emission probability in every state", t));
    }
    ws->shift[t] = m;
  }
  return Status::OK();
}

// gamma(t, .) = normalized alpha_hat(t, .) * beta_hat(t, .), with the
// division replaced by one hoisted reciprocal multiply. False when the
// posterior mass vanished (numerically impossible frame).
bool GammaRow(const double* alpha_row, const double* beta_row, size_t k,
              double* gamma_row) {
  klib::MulRowInto(alpha_row, beta_row, k, gamma_row);
  const double norm = klib::SumRow(gamma_row, k);
  if (!(norm > 0.0)) return false;
  klib::ScaleRow(gamma_row, k, 1.0 / norm);
  return true;
}

}  // namespace

Status TryForwardBackward(const linalg::Vector& pi, const linalg::Matrix& a,
                          const linalg::Matrix& log_b,
                          InferenceWorkspace* ws,
                          ForwardBackwardResult* out) {
  const size_t k = pi.size();
  const size_t big_t = log_b.rows();
  DHMM_CHECK(ws != nullptr && out != nullptr);
  DHMM_CHECK(a.rows() == k && a.cols() == k);
  DHMM_CHECK(log_b.cols() == k);
  DHMM_CHECK_MSG(big_t > 0, "empty sequence");

  out->gamma.Resize(big_t, k);
  out->xi_sum.Resize(k, k);
  out->xi_sum.Fill(0.0);

  DHMM_RETURN_NOT_OK(PrecomputeShiftedEmissions(log_b, ws));
  ws->alpha_hat.Resize(big_t, k);
  ws->beta_hat.Resize(big_t, k);
  ws->scale.Resize(big_t);
  ws->frame_u.Resize(k);
  linalg::Matrix& alpha_hat = ws->alpha_hat;
  linalg::Matrix& beta_hat = ws->beta_hat;
  const linalg::Matrix& btilde = ws->btilde;
  linalg::Vector& scale = ws->scale;
  // Forward recursion reads A column-wise; dot against rows of the cached
  // transpose instead (rebuilt only when A changes, once per EM iteration).
  const linalg::Matrix& a_t = ws->transition.Transpose(a);

  // Forward pass with per-step normalization (scale c_t) and per-frame
  // emission shifts m_t: log P(Y) = sum_t (log c_t + m_t).
  double loglik = 0.0;
  double* alpha0 = alpha_hat.row_data(0);
  klib::MulRowInto(pi.data(), btilde.row_data(0), k, alpha0);
  double c = klib::SumRow(alpha0, k);
  if (!(c > 0.0)) {
    return Status::InvalidArgument(
        FrameError("forward message vanished", 0));
  }
  klib::ScaleRow(alpha0, k, 1.0 / c);
  scale[0] = c;
  loglik += std::log(c) + ws->shift[0];

  for (size_t t = 1; t < big_t; ++t) {
    double* cur = alpha_hat.row_data(t);
    // Fused step: cur[j] = dot(a_t row j, alpha_{t-1}) * btilde(t, j).
    klib::MatVecColMul(a_t.data(), alpha_hat.row_data(t - 1),
                       btilde.row_data(t), k, k, cur);
    c = klib::SumRow(cur, k);
    if (!(c > 0.0)) {
      return Status::InvalidArgument(
          FrameError("forward message vanished", t));
    }
    klib::ScaleRow(cur, k, 1.0 / c);
    scale[t] = c;
    loglik += std::log(c) + ws->shift[t];
  }
  out->log_likelihood = loglik;

  // Fused backward / gamma / xi sweep. At step t the frame product
  // u = btilde(t+1,.) * beta_hat(t+1,.) / c_{t+1} is computed once (the seed
  // recomputed it k times and divided inside the innermost loop) and reused
  // by both the backward row-dots and the xi row-axpys while it is hot.
  double* beta_last = beta_hat.row_data(big_t - 1);
  for (size_t i = 0; i < k; ++i) beta_last[i] = 1.0;
  if (!GammaRow(alpha_hat.row_data(big_t - 1), beta_last, k,
                out->gamma.row_data(big_t - 1))) {
    return Status::InvalidArgument(
        FrameError("posterior mass vanished", big_t - 1));
  }
  double* u = ws->frame_u.data();
  for (size_t t = big_t - 1; t-- > 0;) {
    klib::MulRowScaledInto(btilde.row_data(t + 1), beta_hat.row_data(t + 1),
                           1.0 / scale[t + 1], k, u);
    const double* alpha_row = alpha_hat.row_data(t);
    double* beta_row = beta_hat.row_data(t);
    for (size_t i = 0; i < k; ++i) {
      const double* a_row = a.row_data(i);
      beta_row[i] = klib::Dot(a_row, u, k);
      const double ai = alpha_row[i];
      if (ai != 0.0) {
        klib::AxpyMulRow(ai, a_row, u, k, out->xi_sum.row_data(i));
      }
    }
    if (!GammaRow(alpha_row, beta_row, k, out->gamma.row_data(t))) {
      return Status::InvalidArgument(
          FrameError("posterior mass vanished", t));
    }
  }
  return Status::OK();
}

void ForwardBackward(const linalg::Vector& pi, const linalg::Matrix& a,
                     const linalg::Matrix& log_b, InferenceWorkspace* ws,
                     ForwardBackwardResult* out) {
  Status st = TryForwardBackward(pi, a, log_b, ws, out);
  DHMM_CHECK_MSG(st.ok(), st.message().c_str());
}

ForwardBackwardResult ForwardBackward(const linalg::Vector& pi,
                                      const linalg::Matrix& a,
                                      const linalg::Matrix& log_b) {
  InferenceWorkspace ws;
  ForwardBackwardResult out;
  ForwardBackward(pi, a, log_b, &ws, &out);
  return out;
}

Status TryLogLikelihood(const linalg::Vector& pi, const linalg::Matrix& a,
                        const linalg::Matrix& log_b, InferenceWorkspace* ws,
                        double* out) {
  const size_t k = pi.size();
  const size_t big_t = log_b.rows();
  DHMM_CHECK(ws != nullptr && out != nullptr);
  DHMM_CHECK(a.rows() == k && a.cols() == k && log_b.cols() == k);
  DHMM_CHECK(big_t > 0);
  ws->alpha.Resize(k);
  ws->alpha_next.Resize(k);
  ws->frame.Resize(k);
  double* alpha = ws->alpha.data();
  double* next = ws->alpha_next.data();
  double* btilde = ws->frame.data();
  const linalg::Matrix& a_t = ws->transition.Transpose(a);

  // One frame of shifted emissions at a time: the forward-only pass never
  // revisits a frame, so a full T x k cache would be wasted work.
  auto shifted = [&](size_t t) {
    return klib::ExpShiftRow(log_b.row_data(t), k, btilde);
  };

  double loglik = 0.0;
  double m = shifted(0);
  if (m == prob::kNegInf) {
    return Status::InvalidArgument(
        FrameError("zero emission probability in every state", 0));
  }
  klib::MulRowInto(pi.data(), btilde, k, alpha);
  double c = klib::SumRow(alpha, k);
  if (!(c > 0.0)) {
    return Status::InvalidArgument(
        FrameError("forward message vanished", 0));
  }
  klib::ScaleRow(alpha, k, 1.0 / c);
  loglik += std::log(c) + m;
  for (size_t t = 1; t < big_t; ++t) {
    m = shifted(t);
    if (m == prob::kNegInf) {
      return Status::InvalidArgument(
          FrameError("zero emission probability in every state", t));
    }
    klib::MatVecColMul(a_t.data(), alpha, btilde, k, k, next);
    c = klib::SumRow(next, k);
    if (!(c > 0.0)) {
      return Status::InvalidArgument(
          FrameError("forward message vanished", t));
    }
    klib::ScaleRowInto(next, 1.0 / c, k, alpha);
    loglik += std::log(c) + m;
  }
  *out = loglik;
  return Status::OK();
}

double LogLikelihood(const linalg::Vector& pi, const linalg::Matrix& a,
                     const linalg::Matrix& log_b, InferenceWorkspace* ws) {
  double out = 0.0;
  Status st = TryLogLikelihood(pi, a, log_b, ws, &out);
  DHMM_CHECK_MSG(st.ok(), st.message().c_str());
  return out;
}

double LogLikelihood(const linalg::Vector& pi, const linalg::Matrix& a,
                     const linalg::Matrix& log_b) {
  InferenceWorkspace ws;
  return LogLikelihood(pi, a, log_b, &ws);
}

Status TryViterbi(const linalg::Vector& pi, const linalg::Matrix& a,
                  const linalg::Matrix& log_b, InferenceWorkspace* ws,
                  ViterbiResult* out) {
  const size_t k = pi.size();
  const size_t big_t = log_b.rows();
  DHMM_CHECK(ws != nullptr && out != nullptr);
  DHMM_CHECK(a.rows() == k && a.cols() == k && log_b.cols() == k);
  DHMM_CHECK(big_t > 0);

  ws->log_pi.Resize(k);
  for (size_t i = 0; i < k; ++i) {
    ws->log_pi[i] = pi[i] > 0.0 ? std::log(pi[i]) : prob::kNegInf;
  }
  // The recursion maxes over predecessors i of log_a(i, j) for fixed j — a
  // column of log A. Dot against rows of the cached log-transpose instead;
  // like the forward transpose it is rebuilt only when A changes.
  const linalg::Matrix& log_a_t = ws->transition.LogTranspose(a);

  ws->delta.Resize(big_t, k);
  // Backpointers as one flat row-major T*k buffer: psi[t * k + j] is the
  // best predecessor of state j at frame t. The seed code used a
  // vector<vector<int>> (T separate heap allocations per decode).
  ws->psi.resize(big_t * k);
  linalg::Matrix& delta = ws->delta;
  std::vector<int>& psi = ws->psi;

  for (size_t i = 0; i < k; ++i) delta(0, i) = ws->log_pi[i] + log_b(0, i);
  for (size_t t = 1; t < big_t; ++t) {
    int* psi_row = psi.data() + t * k;
    const double* prev = delta.row_data(t - 1);
    const double* lb_row = log_b.row_data(t);
    double* delta_row = delta.row_data(t);
    for (size_t j = 0; j < k; ++j) {
      // ArgMaxSumRow uses strict >, keeping the lowest-index predecessor on
      // ties (pinned by tests/engine_test.cc).
      double best = prob::kNegInf;
      psi_row[j] = static_cast<int>(
          klib::ArgMaxSumRow(prev, log_a_t.row_data(j), k, &best));
      delta_row[j] = best + lb_row[j];
    }
  }

  out->path.resize(big_t);
  const double* last = delta.row_data(big_t - 1);
  const size_t arg = klib::ArgMaxRow(last, k);
  if (last[arg] == prob::kNegInf) {
    return Status::InvalidArgument(
        "no state path has positive probability for the sequence");
  }
  out->log_joint = last[arg];
  out->path[big_t - 1] = static_cast<int>(arg);
  for (size_t t = big_t - 1; t-- > 0;) {
    out->path[t] = psi[(t + 1) * k + out->path[t + 1]];
  }
  return Status::OK();
}

void Viterbi(const linalg::Vector& pi, const linalg::Matrix& a,
             const linalg::Matrix& log_b, InferenceWorkspace* ws,
             ViterbiResult* out) {
  Status st = TryViterbi(pi, a, log_b, ws, out);
  DHMM_CHECK_MSG(st.ok(), st.message().c_str());
}

ViterbiResult Viterbi(const linalg::Vector& pi, const linalg::Matrix& a,
                      const linalg::Matrix& log_b) {
  InferenceWorkspace ws;
  ViterbiResult out;
  Viterbi(pi, a, log_b, &ws, &out);
  return out;
}

}  // namespace dhmm::hmm
