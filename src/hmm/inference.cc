#include "hmm/inference.h"

#include <cmath>

#include "prob/logsumexp.h"
#include "util/check.h"

namespace dhmm::hmm {

namespace {

// Shifted emission probabilities for frame t: btilde(i) = exp(logb_i - m_t).
// Returns the shift m_t. At least one entry of btilde is exactly 1.
double ShiftedEmissions(const linalg::Matrix& log_b, size_t t,
                        linalg::Vector* btilde) {
  const size_t k = log_b.cols();
  double m = prob::kNegInf;
  for (size_t i = 0; i < k; ++i) m = std::max(m, log_b(t, i));
  DHMM_CHECK_MSG(m != prob::kNegInf,
                 "frame has zero emission probability in every state");
  for (size_t i = 0; i < k; ++i) {
    (*btilde)[i] = std::exp(log_b(t, i) - m);
  }
  return m;
}

}  // namespace

ForwardBackwardResult ForwardBackward(const linalg::Vector& pi,
                                      const linalg::Matrix& a,
                                      const linalg::Matrix& log_b) {
  const size_t k = pi.size();
  const size_t big_t = log_b.rows();
  DHMM_CHECK(a.rows() == k && a.cols() == k);
  DHMM_CHECK(log_b.cols() == k);
  DHMM_CHECK_MSG(big_t > 0, "empty sequence");

  ForwardBackwardResult out;
  out.gamma = linalg::Matrix(big_t, k);
  out.xi_sum = linalg::Matrix(k, k);

  // Forward pass with per-step normalization (scale c_t) and per-frame
  // emission shifts m_t: log P(Y) = sum_t (log c_t + m_t).
  linalg::Matrix alpha_hat(big_t, k);
  linalg::Vector scale(big_t);
  linalg::Vector btilde(k);
  double loglik = 0.0;

  double m = ShiftedEmissions(log_b, 0, &btilde);
  double c = 0.0;
  for (size_t i = 0; i < k; ++i) {
    alpha_hat(0, i) = pi[i] * btilde[i];
    c += alpha_hat(0, i);
  }
  DHMM_CHECK_MSG(c > 0.0, "initial frame has zero probability under pi");
  for (size_t i = 0; i < k; ++i) alpha_hat(0, i) /= c;
  scale[0] = c;
  loglik += std::log(c) + m;

  for (size_t t = 1; t < big_t; ++t) {
    m = ShiftedEmissions(log_b, t, &btilde);
    c = 0.0;
    for (size_t j = 0; j < k; ++j) {
      double s = 0.0;
      for (size_t i = 0; i < k; ++i) s += alpha_hat(t - 1, i) * a(i, j);
      alpha_hat(t, j) = s * btilde[j];
      c += alpha_hat(t, j);
    }
    DHMM_CHECK_MSG(c > 0.0, "forward message vanished (unreachable frame)");
    for (size_t j = 0; j < k; ++j) alpha_hat(t, j) /= c;
    scale[t] = c;
    loglik += std::log(c) + m;
  }
  out.log_likelihood = loglik;

  // Backward pass using the same scales.
  linalg::Matrix beta_hat(big_t, k);
  for (size_t i = 0; i < k; ++i) beta_hat(big_t - 1, i) = 1.0;
  for (size_t t = big_t - 1; t-- > 0;) {
    ShiftedEmissions(log_b, t + 1, &btilde);
    for (size_t i = 0; i < k; ++i) {
      double s = 0.0;
      for (size_t j = 0; j < k; ++j) {
        s += a(i, j) * btilde[j] * beta_hat(t + 1, j);
      }
      beta_hat(t, i) = s / scale[t + 1];
    }
  }

  // Unary posteriors gamma and summed pairwise posteriors xi.
  for (size_t t = 0; t < big_t; ++t) {
    double norm = 0.0;
    for (size_t i = 0; i < k; ++i) {
      out.gamma(t, i) = alpha_hat(t, i) * beta_hat(t, i);
      norm += out.gamma(t, i);
    }
    DHMM_CHECK(norm > 0.0);
    for (size_t i = 0; i < k; ++i) out.gamma(t, i) /= norm;
  }
  for (size_t t = 1; t < big_t; ++t) {
    ShiftedEmissions(log_b, t, &btilde);
    for (size_t i = 0; i < k; ++i) {
      double ai = alpha_hat(t - 1, i);
      if (ai == 0.0) continue;
      for (size_t j = 0; j < k; ++j) {
        out.xi_sum(i, j) +=
            ai * a(i, j) * btilde[j] * beta_hat(t, j) / scale[t];
      }
    }
  }
  return out;
}

double LogLikelihood(const linalg::Vector& pi, const linalg::Matrix& a,
                     const linalg::Matrix& log_b) {
  const size_t k = pi.size();
  const size_t big_t = log_b.rows();
  DHMM_CHECK(a.rows() == k && a.cols() == k && log_b.cols() == k);
  DHMM_CHECK(big_t > 0);
  linalg::Vector alpha(k), next(k), btilde(k);
  double loglik = 0.0;
  double m = ShiftedEmissions(log_b, 0, &btilde);
  double c = 0.0;
  for (size_t i = 0; i < k; ++i) {
    alpha[i] = pi[i] * btilde[i];
    c += alpha[i];
  }
  DHMM_CHECK(c > 0.0);
  for (size_t i = 0; i < k; ++i) alpha[i] /= c;
  loglik += std::log(c) + m;
  for (size_t t = 1; t < big_t; ++t) {
    m = ShiftedEmissions(log_b, t, &btilde);
    c = 0.0;
    for (size_t j = 0; j < k; ++j) {
      double s = 0.0;
      for (size_t i = 0; i < k; ++i) s += alpha[i] * a(i, j);
      next[j] = s * btilde[j];
      c += next[j];
    }
    DHMM_CHECK(c > 0.0);
    for (size_t j = 0; j < k; ++j) alpha[j] = next[j] / c;
    loglik += std::log(c) + m;
  }
  return loglik;
}

ViterbiResult Viterbi(const linalg::Vector& pi, const linalg::Matrix& a,
                      const linalg::Matrix& log_b) {
  const size_t k = pi.size();
  const size_t big_t = log_b.rows();
  DHMM_CHECK(a.rows() == k && a.cols() == k && log_b.cols() == k);
  DHMM_CHECK(big_t > 0);

  // Log-domain tables.
  linalg::Vector log_pi(k);
  for (size_t i = 0; i < k; ++i) {
    log_pi[i] = pi[i] > 0.0 ? std::log(pi[i]) : prob::kNegInf;
  }
  linalg::Matrix log_a(k, k);
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) {
      log_a(i, j) = a(i, j) > 0.0 ? std::log(a(i, j)) : prob::kNegInf;
    }
  }

  linalg::Matrix delta(big_t, k);
  std::vector<std::vector<int>> psi(big_t, std::vector<int>(k, -1));
  for (size_t i = 0; i < k; ++i) delta(0, i) = log_pi[i] + log_b(0, i);
  for (size_t t = 1; t < big_t; ++t) {
    for (size_t j = 0; j < k; ++j) {
      double best = prob::kNegInf;
      int arg = 0;
      for (size_t i = 0; i < k; ++i) {
        double v = delta(t - 1, i) + log_a(i, j);
        if (v > best) {
          best = v;
          arg = static_cast<int>(i);
        }
      }
      delta(t, j) = best + log_b(t, j);
      psi[t][j] = arg;
    }
  }

  ViterbiResult out;
  out.path.resize(big_t);
  double best = prob::kNegInf;
  int arg = 0;
  for (size_t i = 0; i < k; ++i) {
    if (delta(big_t - 1, i) > best) {
      best = delta(big_t - 1, i);
      arg = static_cast<int>(i);
    }
  }
  DHMM_CHECK_MSG(best != prob::kNegInf, "no state path has positive probability");
  out.log_joint = best;
  out.path[big_t - 1] = arg;
  for (size_t t = big_t - 1; t-- > 0;) {
    out.path[t] = psi[t + 1][out.path[t + 1]];
  }
  return out;
}

}  // namespace dhmm::hmm
