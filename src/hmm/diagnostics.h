// Chain diagnostics: stationary distribution, entropy rate, mixing measures.
//
// The related work the paper builds on constrains transition estimates via
// their stationary distribution (Wang & Schuurmans [50]); these utilities
// expose that quantity (and standard information measures) for any trained
// model, and power the analysis examples.
#ifndef DHMM_HMM_DIAGNOSTICS_H_
#define DHMM_HMM_DIAGNOSTICS_H_

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace dhmm::hmm {

/// \brief Stationary distribution of a row-stochastic matrix by power
/// iteration: the left eigenvector pi A = pi with pi on the simplex.
///
/// Requires an ergodic chain to be unique; for reducible/periodic chains the
/// iteration is damped (pi <- (1-eps) pi A + eps uniform) so it always
/// converges to the damped chain's unique stationary point.
linalg::Vector StationaryDistribution(const linalg::Matrix& a,
                                      int max_iters = 10000,
                                      double tol = 1e-12,
                                      double damping = 1e-8);

/// \brief Entropy rate of the chain: H = -sum_i pi_i sum_j A_ij log A_ij
/// (nats/step). A "static mixture" collapse shows up as the entropy rate
/// approaching the entropy of the stationary distribution itself.
double EntropyRate(const linalg::Matrix& a);

/// \brief Entropy of a distribution (nats). 0 log 0 = 0.
double Entropy(const linalg::Vector& p);

/// \brief Row-averaged total-variation distance between the rows of A and
/// the chain's stationary distribution — 0 exactly when the HMM has
/// degenerated into a static mixture (every row equals pi), large when the
/// current state strongly conditions the next state.
double MixtureCollapseGap(const linalg::Matrix& a);

}  // namespace dhmm::hmm

#endif  // DHMM_HMM_DIAGNOSTICS_H_
