// Chain diagnostics: stationary distribution, entropy rate, mixing measures.
//
// The related work the paper builds on constrains transition estimates via
// their stationary distribution (Wang & Schuurmans [50]); these utilities
// expose that quantity (and standard information measures) for any trained
// model, and power the analysis examples.
#ifndef DHMM_HMM_DIAGNOSTICS_H_
#define DHMM_HMM_DIAGNOSTICS_H_

#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "util/status.h"

namespace dhmm::hmm {

/// \brief Stationary distribution of a row-stochastic matrix: the left
/// eigenvector pi A = pi with pi on the simplex.
///
/// Computed by power iteration on the *lazy* chain (A + I) / 2, which has
/// the same stationary distribution as A but no periodic behaviour, so a
/// permutation-style chain (period > 1) converges instead of oscillating
/// forever even with damping = 0. Damping (pi <- (1-eps) pi' + eps uniform)
/// additionally makes reducible chains contract to a unique fixed point.
///
/// Exhausting `max_iters` without the L1 step delta dropping below `tol`
/// now surfaces as Status::NotConverged instead of silently returning the
/// last (wrong) iterate — slow-mixing chains under a tight budget are the
/// remaining non-convergent case. The default budget is twice the
/// pre-lazy-iteration 10000: the lazy step halves the spectral gap
/// (lambda -> (1 + lambda) / 2), so 20000 iterations cover every chain
/// the old default handled.
Result<linalg::Vector> StationaryDistribution(const linalg::Matrix& a,
                                              int max_iters = 20000,
                                              double tol = 1e-12,
                                              double damping = 1e-8);

/// \brief Entropy rate of the chain: H = -sum_i pi_i sum_j A_ij log A_ij
/// (nats/step). A "static mixture" collapse shows up as the entropy rate
/// approaching the entropy of the stationary distribution itself.
/// Propagates StationaryDistribution's non-convergence.
Result<double> EntropyRate(const linalg::Matrix& a);

/// \brief Entropy of a distribution (nats). 0 log 0 = 0.
double Entropy(const linalg::Vector& p);

/// \brief Row-averaged total-variation distance between the rows of A and
/// the chain's stationary distribution — 0 exactly when the HMM has
/// degenerated into a static mixture (every row equals pi), large when the
/// current state strongly conditions the next state.
/// Propagates StationaryDistribution's non-convergence.
Result<double> MixtureCollapseGap(const linalg::Matrix& a);

}  // namespace dhmm::hmm

#endif  // DHMM_HMM_DIAGNOSTICS_H_
