// Text serialization of HMM / dHMM models.
//
// Format (whitespace separated):
//   dhmm-model 1
//   <k>
//   <pi: k doubles>
//   <A: k*k doubles, row major>
//   <emission type tag>
//   <emission payload (type-specific)>
#ifndef DHMM_HMM_SERIALIZATION_H_
#define DHMM_HMM_SERIALIZATION_H_

#include <cmath>
#include <cstddef>
#include <cstdio>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif
#include <istream>
#include <memory>
#include <ostream>
#include <string>

#include "hmm/model.h"
#include "prob/bernoulli_emission.h"
#include "prob/categorical_emission.h"
#include "prob/gaussian_emission.h"
#include "prob/gmm_emission.h"
#include "util/fsio.h"
#include "util/status.h"

namespace dhmm::hmm {

namespace internal {

/// Per-observation-type emission factory used by LoadHmm.
template <typename Obs>
struct EmissionLoader;

template <>
struct EmissionLoader<double> {
  static Result<std::unique_ptr<prob::EmissionModel<double>>> Load(
      const std::string& type, std::istream& is) {
    if (type == "gaussian") {
      auto r = prob::GaussianEmission::Load(is);
      if (!r.ok()) return r.status();
      return std::unique_ptr<prob::EmissionModel<double>>(
          std::make_unique<prob::GaussianEmission>(std::move(r.value())));
    }
    if (type == "gmm") {
      auto r = prob::GmmEmission::Load(is);
      if (!r.ok()) return r.status();
      return std::unique_ptr<prob::EmissionModel<double>>(
          std::make_unique<prob::GmmEmission>(std::move(r.value())));
    }
    return Status::InvalidArgument("unknown scalar emission type: " + type);
  }
};

template <>
struct EmissionLoader<int> {
  static Result<std::unique_ptr<prob::EmissionModel<int>>> Load(
      const std::string& type, std::istream& is) {
    if (type == "categorical") {
      auto r = prob::CategoricalEmission::Load(is);
      if (!r.ok()) return r.status();
      return std::unique_ptr<prob::EmissionModel<int>>(
          std::make_unique<prob::CategoricalEmission>(std::move(r.value())));
    }
    return Status::InvalidArgument("unknown symbol emission type: " + type);
  }
};

template <>
struct EmissionLoader<prob::BinaryObs> {
  static Result<std::unique_ptr<prob::EmissionModel<prob::BinaryObs>>> Load(
      const std::string& type, std::istream& is) {
    if (type == "bernoulli") {
      auto r = prob::BernoulliEmission::Load(is);
      if (!r.ok()) return r.status();
      return std::unique_ptr<prob::EmissionModel<prob::BinaryObs>>(
          std::make_unique<prob::BernoulliEmission>(std::move(r.value())));
    }
    return Status::InvalidArgument("unknown binary emission type: " + type);
  }
};

}  // namespace internal

/// \brief Writes a model as text.
template <typename Obs>
Status SaveHmm(const HmmModel<Obs>& model, std::ostream& os) {
  model.Validate();
  const size_t k = model.num_states();
  os << "dhmm-model 1\n" << k << "\n";
  os.precision(17);
  for (size_t i = 0; i < k; ++i) os << model.pi[i] << (i + 1 == k ? "\n" : " ");
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) {
      os << model.a(i, j) << (j + 1 == k ? "\n" : " ");
    }
  }
  os << model.emission->TypeName() << "\n";
  DHMM_RETURN_NOT_OK(model.emission->Save(os));
  if (!os) return Status::IOError("stream failure while saving model");
  return Status::OK();
}

/// Largest state count LoadHmm will accept. Real models in this system are
/// tens of states; the bound exists so a corrupt header cannot request an
/// absurd k and drive an unbounded allocation before any payload is read.
inline constexpr size_t kMaxSerializedStates = 4096;

/// Row-normalization slack accepted on load; matches HmmModel::Validate so
/// everything SaveHmm writes round-trips.
inline constexpr double kSerializationStochasticTol = 1e-6;

/// \brief Reads a model written by SaveHmm.
///
/// Malformed streams fail with a Status instead of deferring the damage:
/// an absurd state count is an IOError before anything is allocated, and
/// non-stochastic pi / transition rows are an InvalidArgument here rather
/// than a mid-training abort later (HmmModel's constructor CHECK-fails on
/// them).
template <typename Obs>
Result<HmmModel<Obs>> LoadHmm(std::istream& is) {
  std::string magic;
  int version = 0;
  if (!(is >> magic >> version) || magic != "dhmm-model" || version != 1) {
    return Status::IOError("not a dhmm-model v1 stream");
  }
  size_t k = 0;
  if (!(is >> k) || k == 0) return Status::IOError("bad state count");
  if (k > kMaxSerializedStates) {
    return Status::IOError("unreasonable state count: " + std::to_string(k));
  }
  linalg::Vector pi(k);
  double pi_sum = 0.0;
  for (size_t i = 0; i < k; ++i) {
    if (!(is >> pi[i])) return Status::IOError("bad pi");
    if (!(pi[i] >= -1e-12)) {  // negated >= also rejects NaN
      return Status::InvalidArgument("pi has a negative entry");
    }
    pi_sum += pi[i];
  }
  if (!(std::fabs(pi_sum - 1.0) < kSerializationStochasticTol)) {
    return Status::InvalidArgument("pi does not sum to 1");
  }
  linalg::Matrix a(k, k);
  for (size_t i = 0; i < k; ++i) {
    double row_sum = 0.0;
    for (size_t j = 0; j < k; ++j) {
      if (!(is >> a(i, j))) return Status::IOError("bad transition matrix");
      if (!(a(i, j) >= -1e-12)) {
        return Status::InvalidArgument("transition matrix has a negative "
                                       "entry in row " + std::to_string(i));
      }
      row_sum += a(i, j);
    }
    if (!(std::fabs(row_sum - 1.0) < kSerializationStochasticTol)) {
      return Status::InvalidArgument("transition row " + std::to_string(i) +
                                     " does not sum to 1");
    }
  }
  std::string type;
  if (!(is >> type)) return Status::IOError("missing emission type");
  auto emission = internal::EmissionLoader<Obs>::Load(type, is);
  if (!emission.ok()) return emission.status();
  if (emission.value()->num_states() != k) {
    return Status::IOError("emission state count mismatch");
  }
  return HmmModel<Obs>(std::move(pi), std::move(a),
                       std::move(emission).value());
}

namespace internal {

/// fsyncs a path (file or directory) so the rename-based save below is
/// durable across power loss, not just process crashes. Thin alias for
/// util::SyncPathToDisk (util/fsio.h), the helper shared with the binary
/// model store's writer; kept for source compatibility.
inline Status SyncPathToDisk(const std::string& path) {
  return util::SyncPathToDisk(path);
}

}  // namespace internal

/// \brief Crash-consistent file save: writes to `path + ".tmp"`, flushes
/// and fsyncs it, and atomically renames over `path` (fsyncing the parent
/// directory afterwards).
///
/// A process crash, power loss, full disk, or write error therefore never
/// leaves a truncated checkpoint at `path` — a concurrent reader (e.g. the
/// serve layer's hot-reload) sees either the previous complete model or
/// the new one, never a torn file. The temp path is deterministic, so
/// concurrent writers to the *same* path must be externally serialized
/// (last rename wins).
template <typename Obs>
Status SaveHmmToFile(const HmmModel<Obs>& model, const std::string& path) {
  const std::string tmp = path + ".tmp";
  Status st;
  {
    std::ofstream os(tmp, std::ios::out | std::ios::trunc);
    if (!os) return Status::IOError("cannot open for write: " + tmp);
    st = SaveHmm(model, os);
    if (st.ok()) {
      os.flush();
      if (!os) st = Status::IOError("flush failed: " + tmp);
    }
    os.close();
    if (st.ok() && os.fail()) st = Status::IOError("close failed: " + tmp);
  }
  if (st.ok()) st = internal::SyncPathToDisk(tmp);
  if (!st.ok()) {
    std::remove(tmp.c_str());
    return st;
  }
  // POSIX rename semantics (atomic replace of an existing destination) are
  // assumed, matching the Linux targets this system builds for.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " over " + path);
  }
  // Make the rename itself durable: sync the containing directory. Best
  // effort only — the checkpoint is already complete at `path`, and some
  // filesystems (FUSE/network mounts) reject directory fsync; failing the
  // whole save here would report a written checkpoint as missing.
  util::SyncParentDir(path);
  return Status::OK();
}

template <typename Obs>
Result<HmmModel<Obs>> LoadHmmFromFile(const std::string& path) {
  std::ifstream is(path);
  if (!is) return Status::IOError("cannot open for read: " + path);
  return LoadHmm<Obs>(is);
}

}  // namespace dhmm::hmm

#endif  // DHMM_HMM_SERIALIZATION_H_
