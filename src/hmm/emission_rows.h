// Emission-model-backed LogBRows provider for the checkpointed inference
// routines.
//
// LogProbTableInto materializes a T x k table; for T ~ 1e6 that table alone
// defeats the checkpointed sweep's O(sqrt(T) * k) memory bound. This adapter
// computes one frame's log-emission row on demand into a caller-owned k
// scratch vector, using the exact per-entry loop of LogProbTableInto, so the
// rows (and therefore everything downstream) are bitwise identical to the
// materialized path.
#ifndef DHMM_HMM_EMISSION_ROWS_H_
#define DHMM_HMM_EMISSION_ROWS_H_

#include <cstddef>
#include <vector>

#include "hmm/inference.h"
#include "linalg/vector.h"
#include "prob/emission.h"
#include "util/check.h"

namespace dhmm::hmm {

/// \brief Streams log p(y_t | X_t = i) rows straight out of an emission
/// model. The provider (and its View) borrow `emission`, `obs` and `row`;
/// all three must outlive any use of the returned LogBRows. `row` is
/// typically a workspace vector (InferenceWorkspace::log_b_row) so repeated
/// sequences stay allocation-free.
template <typename Obs>
struct EmissionLogBRows {
  const prob::EmissionModel<Obs>* emission = nullptr;
  const std::vector<Obs>* obs = nullptr;
  linalg::Vector* row = nullptr;  ///< k scratch, caller-owned

  /// Sizes the scratch row and returns the provider view.
  LogBRows View() {
    DHMM_CHECK(emission != nullptr && obs != nullptr && row != nullptr);
    row->Resize(emission->num_states());
    LogBRows rows;
    rows.row = &EmissionLogBRows::Row;
    rows.ctx = this;
    rows.frames = obs->size();
    rows.states = emission->num_states();
    return rows;
  }

 private:
  // Same entry order as LogProbTableInto's inner loop: identical bits.
  static const double* Row(void* ctx, size_t t) {
    auto* self = static_cast<EmissionLogBRows*>(ctx);
    const size_t k = self->row->size();
    double* out = self->row->data();
    const Obs& y = (*self->obs)[t];
    for (size_t i = 0; i < k; ++i) out[i] = self->emission->LogProb(i, y);
    return out;
  }
};

}  // namespace dhmm::hmm

#endif  // DHMM_HMM_EMISSION_ROWS_H_
