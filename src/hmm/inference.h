// Observation-type-agnostic HMM inference: scaled forward-backward (E-step,
// paper Eqs. 9-10) and Viterbi decoding.
//
// All routines operate on a per-sequence table of emission log-probabilities
// (T x k), which decouples the chain algebra from the emission family and
// makes the recursions testable against brute-force enumeration.
//
// The canonical entry points are the Status-returning Try* forms
// (TryForwardBackward / TryLogLikelihood / TryViterbi): they take an
// InferenceWorkspace whose buffers are reused across calls (zero heap
// traffic after warm-up) and report an impossible sequence as an
// InvalidArgument instead of killing the process — the contract every
// request-facing layer builds on. The aborting conveniences (ForwardBackward
// et al.) are thin wrappers over Try* that DHMM_CHECK the status; they exist
// for training loops and tests whose inputs are trusted by construction, and
// new request-facing code must not use them. The batched EM engine
// (hmm/engine.h) keeps one workspace per worker thread and runs entire
// training jobs without touching the allocator after warm-up.
//
// The inner loops run on the deterministic micro-kernels in linalg/kernels.h
// (restrict pointers, fixed 4-way accumulation order, 64-byte-aligned
// storage): results are bitwise reproducible for a given input regardless of
// workspace reuse or thread count. Transition-matrix derivatives (the
// transpose used by the forward pass and the log-transpose used by Viterbi)
// are cached in the workspace keyed by the matrix contents, so they are
// rebuilt once per EM iteration instead of re-read column-wise T times per
// sequence.
#ifndef DHMM_HMM_INFERENCE_H_
#define DHMM_HMM_INFERENCE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "util/status.h"

namespace dhmm::hmm {

namespace internal {
/// Formats "<what> at frame <t>" — the shared shape of per-frame Status
/// messages from the Try* inference forms and the streaming decoder
/// (serve tests grep for the "frame <t>" suffix).
std::string FrameError(const char* what, size_t t);
}  // namespace internal

/// \brief Content-keyed cache of derived views of a transition matrix.
///
/// The forward recursion consumes A column-wise (alpha_t = A^T alpha_{t-1})
/// and Viterbi consumes log A column-wise; both want a contiguous row to dot
/// against. The cache stores A^T (and lazily log A^T) and revalidates by
/// bitwise comparison against a snapshot of A, so the rebuild happens once
/// per EM iteration (when the M-step writes a new A) rather than per
/// sequence. Rebuilds are in-place for a fixed k: no steady-state heap
/// allocations.
class TransitionCache {
 public:
  /// Returns A^T, rebuilding iff `a` differs bitwise from the snapshot.
  const linalg::Matrix& Transpose(const linalg::Matrix& a);

  /// Returns elementwise log(A)^T with log(0) = -inf, rebuilding on the
  /// same staleness condition (and lazily on first use).
  const linalg::Matrix& LogTranspose(const linalg::Matrix& a);

  /// Bumped every time the snapshot is refreshed; tests use this to assert
  /// the cache rebuilds exactly when A changes.
  uint64_t version() const { return version_; }

 private:
  /// Snapshots `a` if it changed; returns true when a rebuild happened.
  bool Sync(const linalg::Matrix& a);

  linalg::Matrix a_copy_;    // bitwise snapshot of A for staleness detection
  linalg::Matrix a_t_;       // A^T
  linalg::Matrix log_a_t_;   // log(A)^T, built lazily for Viterbi
  bool log_valid_ = false;
  uint64_t version_ = 0;
};

/// \brief Reusable scratch buffers for the inference kernels.
///
/// A workspace is sized lazily by the routine that uses it and only grows:
/// once it has seen the longest sequence in a dataset it never allocates
/// again. Workspaces are cheap to default-construct and must not be shared
/// across threads concurrently (the batched engine keeps one per worker).
struct InferenceWorkspace {
  // Forward-backward scratch.
  linalg::Matrix alpha_hat;  ///< T x k scaled forward messages
  linalg::Matrix beta_hat;   ///< T x k scaled backward messages
  linalg::Matrix btilde;     ///< T x k cached shifted emissions exp(logb - m_t)
  linalg::Vector shift;      ///< T per-frame emission shifts m_t
  linalg::Vector scale;      ///< T forward normalizers c_t
  linalg::Vector frame_u;    ///< k hoisted backward frame product
                             ///< btilde(t+1,.) * beta_hat(t+1,.) / c_{t+1}

  // Cached transition-matrix derivatives (transpose / log-transpose).
  TransitionCache transition;

  // Viterbi scratch.
  linalg::Matrix delta;      ///< T x k best log-joint per state
  std::vector<int> psi;      ///< flat row-major T*k backpointers
  linalg::Vector log_pi;     ///< k log initial distribution

  // Forward-only scratch (LogLikelihood).
  linalg::Vector alpha;      ///< k current forward message
  linalg::Vector alpha_next; ///< k next forward message
  linalg::Vector frame;      ///< k one frame of shifted emissions

  // Cached per-sequence emission table, filled by callers that own the
  // emission model (e.g. the batched EM engine via LogProbTableInto).
  linalg::Matrix log_b;      ///< T x k

  // Checkpointed forward-backward scratch (TryForwardBackwardCheckpointed):
  // everything here is O(sqrt(T) * k) or O(T) scalars, never O(T * k).
  linalg::Matrix cp_alpha;      ///< ceil(T/S) x k alpha checkpoints
  linalg::Matrix cp_beta;       ///< ceil(T/S) x k beta rows at panel starts
  linalg::Matrix panel_alpha;   ///< S x k replayed alpha panel
  linalg::Matrix panel_beta;    ///< S x k replayed beta panel
  linalg::Matrix panel_btilde;  ///< (S+1) x k shifted-emission panel
  linalg::Vector cp_scale;      ///< T forward normalizers c_t
  linalg::Vector cp_beta_next;  ///< k carried beta row across panels
  linalg::Vector cp_beta_cur;   ///< k beta row under construction
  linalg::Vector cp_gamma;      ///< k gamma staging row for the sinks
  linalg::Matrix cp_xi;         ///< k x k xi staging (rows-based decode)
  linalg::Vector log_b_row;     ///< k emission-row staging for LogBRows
};

/// \brief Sequence length at which callers that auto-select (the EM engine,
/// the decode service, FitEm) switch from the full-matrix forward-backward
/// to the checkpointed one. Below this a full T x k workspace is at most a
/// few MB and the full path's single sweep is cheaper; above it the
/// checkpointed path caps workspace memory at O(sqrt(T) * k) for ~2x the
/// frame work. 0 disables checkpointing entirely.
inline constexpr size_t kDefaultCheckpointThresholdFrames = 65536;

/// \brief Row provider for emission log-probabilities: the checkpointed
/// routines pull one frame at a time through `row(ctx, t)` instead of
/// requiring a materialized T x k matrix, so a caller that owns an emission
/// model can run inference on a million-frame sequence without ever building
/// the table. The returned pointer must stay valid until the next `row`
/// call on the same provider. Plain function pointer + context (capture-less
/// lambdas convert) so providers are POD and copyable.
struct LogBRows {
  const double* (*row)(void* ctx, size_t t) = nullptr;
  void* ctx = nullptr;
  size_t frames = 0;  ///< T
  size_t states = 0;  ///< k
};

/// \brief Adapts a materialized T x k log-emission matrix to the LogBRows
/// interface (zero-copy: rows come straight out of the matrix).
LogBRows MatrixLogBRows(const linalg::Matrix& log_b);

/// \brief Gamma-row consumers for the checkpointed sweep. The checkpointed
/// pass cannot hand back a T x k gamma matrix without defeating its own
/// memory bound, so posteriors stream out row by row instead.
///
/// `on_gamma` is required and fires once per frame in DESCENDING t order —
/// the natural order of the backward sweep (this matches the full path's
/// fill order of out->gamma, so any per-frame consumer sees identical bits).
/// `on_gamma_ascending`, when set, triggers a third pass that replays both
/// message panels and fires once per frame in ASCENDING t order — for
/// consumers whose accumulation order matters bitwise (the E-step's
/// emission sufficient statistics accumulate ascending). Rows passed to the
/// callbacks are valid only for the duration of the call.
struct CheckpointedGammaSinks {
  void (*on_gamma)(void* ctx, size_t t, const double* gamma_row) = nullptr;
  void* gamma_ctx = nullptr;
  void (*on_gamma_ascending)(void* ctx, size_t t,
                             const double* gamma_row) = nullptr;
  void* ascending_ctx = nullptr;
};

/// \brief Posterior marginals produced by one forward-backward pass.
struct ForwardBackwardResult {
  /// gamma(t, i) = q(X_t = i | Y)  — unary posteriors, T x k.
  linalg::Matrix gamma;
  /// xi_sum(i, j) = sum_{t=2..T} q(X_{t-1}=i, X_t=j | Y)  — expected
  /// transition counts for the M-step, k x k.
  linalg::Matrix xi_sum;
  /// log P(Y | lambda).
  double log_likelihood = 0.0;
};

/// \brief Runs the scaled forward-backward recursions — the canonical,
/// non-aborting form.
///
/// \param pi     initial state distribution (k).
/// \param a      row-stochastic transition matrix (k x k).
/// \param log_b  emission log-probabilities, log_b(t, i) = log P(y_t | X_t=i).
///
/// A sequence with zero probability under the model — an all-impossible
/// frame, a chain-unreachable frame, or scaled-emission underflow that
/// vanishes the forward mass — returns InvalidArgument naming the frame
/// ("... at frame <t>"), never a process abort; `*out` is unspecified on
/// error. Reuses `ws` buffers (allocation-free after warm-up) and resizes
/// out->gamma / out->xi_sum in place.
///
/// Scaling: each frame's emissions are shifted by their max before
/// exponentiation and the forward messages renormalized per step, so the pass
/// is stable for arbitrarily peaked emissions (e.g. 128-pixel Bernoulli
/// products at log-prob ~ -90). The shifted emissions are computed exactly
/// once per frame into the workspace's cached table and shared by the
/// forward and the fused backward/xi loops; the backward pass and the
/// xi-accumulation run as a single sweep over t that reuses the per-frame
/// product btilde(t+1,.) * beta_hat(t+1,.) / c_{t+1} while it is hot.
Status TryForwardBackward(const linalg::Vector& pi, const linalg::Matrix& a,
                          const linalg::Matrix& log_b,
                          InferenceWorkspace* ws,
                          ForwardBackwardResult* out);

/// \brief Aborting wrapper over TryForwardBackward for trusted inputs
/// (training loops, tests): DHMM_CHECKs the status. Bitwise-identical
/// results on the OK path. Internal/test convenience — request-facing code
/// uses TryForwardBackward.
void ForwardBackward(const linalg::Vector& pi, const linalg::Matrix& a,
                     const linalg::Matrix& log_b, InferenceWorkspace* ws,
                     ForwardBackwardResult* out);

/// \brief Aborting convenience that also allocates its own scratch — for
/// one-off calls in tests and offline analysis only.
ForwardBackwardResult ForwardBackward(const linalg::Vector& pi,
                                      const linalg::Matrix& a,
                                      const linalg::Matrix& log_b);

/// \brief Checkpointed forward-backward: identical math and **bitwise
/// identical results** to TryForwardBackward, with workspace memory
/// O(sqrt(T) * k + T) instead of O(T * k).
///
/// The forward pass stores only every S-th scaled alpha row (S =
/// `panel_frames`, defaulting to ceil(sqrt(T)) when 0) plus the T scale
/// factors; the backward/gamma/xi sweep then walks panels in descending
/// order, replaying each panel's alpha rows from its checkpoint through the
/// exact kernel-call sequence of the full path — recomputation from
/// identical input bits through identical deterministic kernels yields
/// identical output bits, so gamma, xi_sum and the log-likelihood match the
/// full path exactly. xi accumulates in descending t order, same as the
/// full path's fused sweep. Error contract of TryForwardBackward
/// (InvalidArgument naming the frame).
///
/// Costs ~2x the frame work of the full path (forward runs twice), plus
/// another ~1.5x when `sinks.on_gamma_ascending` is set (betas replay too).
Status TryForwardBackwardCheckpointed(const linalg::Vector& pi,
                                      const linalg::Matrix& a,
                                      const LogBRows& log_b,
                                      size_t panel_frames,
                                      InferenceWorkspace* ws,
                                      const CheckpointedGammaSinks& sinks,
                                      linalg::Matrix* xi_sum,
                                      double* log_likelihood);

/// \brief Materializing convenience over the checkpointed core: fills a
/// full ForwardBackwardResult (gamma included) from a T x k matrix. Only
/// sensible for tests and small T — it reintroduces the O(T * k) gamma —
/// but it is the workhorse of the bitwise-equality grid.
Status TryForwardBackwardCheckpointed(const linalg::Vector& pi,
                                      const linalg::Matrix& a,
                                      const linalg::Matrix& log_b,
                                      size_t panel_frames,
                                      InferenceWorkspace* ws,
                                      ForwardBackwardResult* out);

/// \brief Forward-only log-likelihood over a LogBRows provider — bitwise
/// identical to TryLogLikelihood on a materialized table, O(k) workspace.
Status TryLogLikelihoodRows(const linalg::Vector& pi, const linalg::Matrix& a,
                            const LogBRows& log_b, InferenceWorkspace* ws,
                            double* out);

/// \brief log P(Y | lambda) only (forward pass) — canonical non-aborting
/// form; error contract of TryForwardBackward.
Status TryLogLikelihood(const linalg::Vector& pi, const linalg::Matrix& a,
                        const linalg::Matrix& log_b, InferenceWorkspace* ws,
                        double* out);

/// \brief Aborting wrapper over TryLogLikelihood for trusted inputs
/// (allocation-free after warm-up). Internal/test convenience.
double LogLikelihood(const linalg::Vector& pi, const linalg::Matrix& a,
                     const linalg::Matrix& log_b, InferenceWorkspace* ws);

/// \brief Aborting convenience with its own scratch — one-off calls only.
double LogLikelihood(const linalg::Vector& pi, const linalg::Matrix& a,
                     const linalg::Matrix& log_b);

/// \brief Result of Viterbi decoding.
struct ViterbiResult {
  std::vector<int> path;    ///< argmax_X P(X, Y), length T
  double log_joint = 0.0;   ///< log P(X*, Y)
};

/// \brief Most-likely state sequence via the Viterbi recursion (log
/// domain) — canonical non-aborting form. A sequence with no finite-score
/// state path returns InvalidArgument (see TryForwardBackward).
///
/// Tie-breaking contract: when several predecessors (or final states) attain
/// the same score, the lowest state index wins. Tests pin this so storage
/// rewrites cannot silently change decoded paths. Backpointers live in the
/// workspace's flat row-major `psi` buffer (one allocation for the whole
/// table, reused across calls) and the log-transition matrix comes from the
/// workspace's TransitionCache (rebuilt only when A changes).
Status TryViterbi(const linalg::Vector& pi, const linalg::Matrix& a,
                  const linalg::Matrix& log_b, InferenceWorkspace* ws,
                  ViterbiResult* out);

/// \brief Aborting wrapper over TryViterbi for trusted inputs.
/// Internal/test convenience — request-facing code uses TryViterbi.
void Viterbi(const linalg::Vector& pi, const linalg::Matrix& a,
             const linalg::Matrix& log_b, InferenceWorkspace* ws,
             ViterbiResult* out);

/// \brief Aborting convenience with its own scratch — one-off calls only.
ViterbiResult Viterbi(const linalg::Vector& pi, const linalg::Matrix& a,
                      const linalg::Matrix& log_b);

}  // namespace dhmm::hmm

#endif  // DHMM_HMM_INFERENCE_H_
