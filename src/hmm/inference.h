// Observation-type-agnostic HMM inference: scaled forward-backward (E-step,
// paper Eqs. 9-10) and Viterbi decoding.
//
// All routines operate on a per-sequence table of emission log-probabilities
// (T x k), which decouples the chain algebra from the emission family and
// makes the recursions testable against brute-force enumeration.
#ifndef DHMM_HMM_INFERENCE_H_
#define DHMM_HMM_INFERENCE_H_

#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace dhmm::hmm {

/// \brief Posterior marginals produced by one forward-backward pass.
struct ForwardBackwardResult {
  /// gamma(t, i) = q(X_t = i | Y)  — unary posteriors, T x k.
  linalg::Matrix gamma;
  /// xi_sum(i, j) = sum_{t=2..T} q(X_{t-1}=i, X_t=j | Y)  — expected
  /// transition counts for the M-step, k x k.
  linalg::Matrix xi_sum;
  /// log P(Y | lambda).
  double log_likelihood = 0.0;
};

/// \brief Runs the scaled forward-backward recursions.
///
/// \param pi     initial state distribution (k).
/// \param a      row-stochastic transition matrix (k x k).
/// \param log_b  emission log-probabilities, log_b(t, i) = log P(y_t | X_t=i).
///
/// Scaling: each frame's emissions are shifted by their max before
/// exponentiation and the forward messages renormalized per step, so the pass
/// is stable for arbitrarily peaked emissions (e.g. 128-pixel Bernoulli
/// products at log-prob ~ -90).
ForwardBackwardResult ForwardBackward(const linalg::Vector& pi,
                                      const linalg::Matrix& a,
                                      const linalg::Matrix& log_b);

/// \brief log P(Y | lambda) only (forward pass).
double LogLikelihood(const linalg::Vector& pi, const linalg::Matrix& a,
                     const linalg::Matrix& log_b);

/// \brief Result of Viterbi decoding.
struct ViterbiResult {
  std::vector<int> path;    ///< argmax_X P(X, Y), length T
  double log_joint = 0.0;   ///< log P(X*, Y)
};

/// \brief Most-likely state sequence via the Viterbi recursion (log domain).
ViterbiResult Viterbi(const linalg::Vector& pi, const linalg::Matrix& a,
                      const linalg::Matrix& log_b);

}  // namespace dhmm::hmm

#endif  // DHMM_HMM_INFERENCE_H_
