// Supervised (count-based) HMM estimation from labeled sequences (§3.4.2).
#ifndef DHMM_HMM_SUPERVISED_H_
#define DHMM_HMM_SUPERVISED_H_

#include <memory>

#include "hmm/model.h"
#include "hmm/sequence.h"
#include "util/check.h"

namespace dhmm::hmm {

/// Smoothing pseudo-counts for supervised estimation. Zero reproduces the
/// paper's plain frequency counts; positive values Laplace-smooth unseen
/// events (needed when decoding test data containing unseen transitions).
struct SupervisedOptions {
  double initial_pseudo_count = 0.0;
  double transition_pseudo_count = 0.0;
};

/// \brief Estimates lambda = (pi, A, B) by counting, as in the paper:
/// pi from initial-state frequencies, A from pairwise-state frequencies, and
/// B from the emission model's own sufficient statistics with hard (one-hot)
/// assignments.
///
/// \param k         number of states (labels must lie in [0, k)).
/// \param emission  emission model to fit; it is updated in place and then
///                  moved into the returned model.
template <typename Obs>
HmmModel<Obs> FitSupervised(const Dataset<Obs>& data, size_t k,
                            std::unique_ptr<prob::EmissionModel<Obs>> emission,
                            const SupervisedOptions& options = {}) {
  DHMM_CHECK(emission != nullptr && emission->num_states() == k);
  DHMM_CHECK_MSG(!data.empty(), "supervised fit needs data");

  linalg::Vector pi(k, options.initial_pseudo_count);
  linalg::Matrix a(k, k, options.transition_pseudo_count);
  emission->BeginAccumulate();
  linalg::Vector one_hot(k);

  for (const auto& seq : data) {
    DHMM_CHECK_MSG(seq.labeled(), "supervised fit requires labels");
    DHMM_CHECK(seq.labels.size() == seq.obs.size());
    for (size_t t = 0; t < seq.length(); ++t) {
      int s = seq.labels[t];
      DHMM_CHECK(s >= 0 && static_cast<size_t>(s) < k);
      if (t == 0) pi[static_cast<size_t>(s)] += 1.0;
      if (t > 0) {
        int prev = seq.labels[t - 1];
        a(static_cast<size_t>(prev), static_cast<size_t>(s)) += 1.0;
      }
      for (size_t i = 0; i < k; ++i) one_hot[i] = 0.0;
      one_hot[static_cast<size_t>(s)] = 1.0;
      emission->Accumulate(seq.obs[t], one_hot);
    }
  }

  pi.NormalizeToSimplex();
  a.NormalizeRows();
  emission->FinishAccumulate();
  return HmmModel<Obs>(std::move(pi), std::move(a), std::move(emission));
}

}  // namespace dhmm::hmm

#endif  // DHMM_HMM_SUPERVISED_H_
