// Ancestral sampling from an HMM — used by every synthetic data generator.
#ifndef DHMM_HMM_SAMPLER_H_
#define DHMM_HMM_SAMPLER_H_

#include "hmm/model.h"
#include "hmm/sequence.h"
#include "prob/rng.h"
#include "util/check.h"

namespace dhmm::hmm {

/// \brief Samples one length-T sequence (with its true labels retained).
template <typename Obs>
Sequence<Obs> SampleSequence(const HmmModel<Obs>& model, size_t length,
                             prob::Rng& rng) {
  DHMM_CHECK(length > 0);
  Sequence<Obs> seq;
  seq.obs.reserve(length);
  seq.labels.reserve(length);
  size_t state = rng.Categorical(model.pi);
  for (size_t t = 0; t < length; ++t) {
    if (t > 0) state = rng.Categorical(model.a.Row(state));
    seq.labels.push_back(static_cast<int>(state));
    seq.obs.push_back(model.emission->Sample(state, rng));
  }
  return seq;
}

/// \brief Samples a dataset of `count` sequences, each of length `length`.
template <typename Obs>
Dataset<Obs> SampleDataset(const HmmModel<Obs>& model, size_t count,
                           size_t length, prob::Rng& rng) {
  Dataset<Obs> data;
  data.reserve(count);
  for (size_t n = 0; n < count; ++n) {
    data.push_back(SampleSequence(model, length, rng));
  }
  return data;
}

}  // namespace dhmm::hmm

#endif  // DHMM_HMM_SAMPLER_H_
