// The HMM parameter container lambda = (pi, A, B).
#ifndef DHMM_HMM_MODEL_H_
#define DHMM_HMM_MODEL_H_

#include <cmath>
#include <memory>
#include <utility>

#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "prob/emission.h"
#include "util/check.h"

namespace dhmm::hmm {

/// \brief A first-order hidden Markov model: initial distribution pi,
/// transition matrix A, and a pluggable emission model B.
template <typename Obs>
struct HmmModel {
  linalg::Vector pi;                                   ///< k
  linalg::Matrix a;                                    ///< k x k, row-stoch.
  std::unique_ptr<prob::EmissionModel<Obs>> emission;  ///< B

  HmmModel() = default;
  HmmModel(linalg::Vector initial, linalg::Matrix transitions,
           std::unique_ptr<prob::EmissionModel<Obs>> emission_model)
      : pi(std::move(initial)), a(std::move(transitions)),
        emission(std::move(emission_model)) {
    Validate();
  }

  HmmModel(const HmmModel& other)
      : pi(other.pi), a(other.a),
        emission(other.emission ? other.emission->Clone() : nullptr) {}
  HmmModel& operator=(const HmmModel& other) {
    if (this != &other) {
      pi = other.pi;
      a = other.a;
      emission = other.emission ? other.emission->Clone() : nullptr;
    }
    return *this;
  }
  HmmModel(HmmModel&&) noexcept = default;
  HmmModel& operator=(HmmModel&&) noexcept = default;

  /// Number of hidden states.
  size_t num_states() const { return pi.size(); }

  /// Aborts on inconsistent shapes or non-stochastic parameters.
  void Validate() const {
    DHMM_CHECK_MSG(emission != nullptr, "model requires an emission model");
    DHMM_CHECK(pi.size() == a.rows() && a.rows() == a.cols());
    DHMM_CHECK(emission->num_states() == pi.size());
    DHMM_CHECK_MSG(a.IsRowStochastic(1e-6), "A must be row-stochastic");
    double s = 0.0;
    for (size_t i = 0; i < pi.size(); ++i) {
      DHMM_CHECK(pi[i] >= -1e-12);
      s += pi[i];
    }
    DHMM_CHECK_MSG(std::fabs(s - 1.0) < 1e-6, "pi must sum to 1");
  }
};

}  // namespace dhmm::hmm

#endif  // DHMM_HMM_MODEL_H_
