#include "optim/projected_gradient.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "util/check.h"

namespace dhmm::optim {

ProjectedGradientResult ProjectedGradientAscent(
    const linalg::Matrix& init, const MatrixObjective& objective,
    const MatrixGradient& gradient, const MatrixProjection& project,
    const ProjectedGradientOptions& options) {
  DHMM_CHECK(options.max_iters > 0);
  DHMM_CHECK(options.initial_step > 0.0);
  DHMM_CHECK(options.backtrack_factor > 0.0 && options.backtrack_factor < 1.0);

  ProjectedGradientResult result;
  result.argmax = init;
  result.objective = objective(init);
  DHMM_CHECK_MSG(std::isfinite(result.objective),
                 "projected gradient needs a feasible finite starting point");

  double step = options.initial_step;
  int small_gain_streak = 0;
  linalg::Matrix grad;
  for (int iter = 0; iter < options.max_iters; ++iter) {
    if (!gradient(result.argmax, &grad)) break;

    // Backtracking line search on the projected step. Once an improving
    // candidate is found, probe a few more step sizes and keep the best —
    // the first improving step after a long shrink is often a microscopic
    // gain just inside the feasible region, while a nearby step does far
    // better.
    bool accepted = false;
    linalg::Matrix candidate;
    double cand_obj = 0.0;
    double search_start = step;
    double accepted_step = step;
    int extra_probes = 3;
    for (int bt = 0; bt < options.max_backtracks && step >= options.min_step;
         ++bt) {
      linalg::Matrix trial = result.argmax + grad * step;
      project(&trial);
      double trial_obj = objective(trial);
      if (std::isfinite(trial_obj) && trial_obj > result.objective &&
          (!accepted || trial_obj > cand_obj)) {
        accepted = true;
        candidate = std::move(trial);
        cand_obj = trial_obj;
        accepted_step = step;
      }
      if (accepted && --extra_probes < 0) break;
      step *= options.backtrack_factor;
    }
    if (!accepted) {
      // A grown step can exceed what the backtrack budget reaches back down
      // from; retry once from the configured initial step before concluding
      // that this is a local maximum.
      if (search_start > options.initial_step) {
        step = options.initial_step;
        continue;
      }
      result.converged = true;  // no improving step exists: local maximum
      break;
    }
    step = accepted_step;

    double gain = cand_obj - result.objective;
    result.argmax = std::move(candidate);
    result.objective = cand_obj;
    ++result.iterations;
    // Adaptive step recovery, capped so the next backtracking search can
    // always reach small steps within its budget.
    step = std::min(step * options.grow_factor, options.initial_step * 1e8);

    // A single small gain can be an artifact of a line search that just
    // shrank the step; reset the step and require a streak of small gains at
    // full step size before declaring convergence.
    if (gain < options.tol) {
      step = std::max(step, options.initial_step);
      if (++small_gain_streak >= 3) {
        result.converged = true;
        break;
      }
    } else {
      small_gain_streak = 0;
    }
  }
  return result;
}

void ProjectedGradientAscent(const linalg::Matrix& init,
                             const MatrixObjective& objective,
                             const MatrixValueGradient& value_and_grad,
                             const MatrixProjection& project,
                             const ProjectedGradientOptions& options,
                             ProjectedGradientWorkspace* ws,
                             ProjectedGradientResult* result) {
  DHMM_CHECK(options.max_iters > 0);
  DHMM_CHECK(options.initial_step > 0.0);
  DHMM_CHECK(options.backtrack_factor > 0.0 && options.backtrack_factor < 1.0);
  DHMM_CHECK(ws != nullptr && result != nullptr);

  // Same ascent/line-search structure as the callback overload above; kept
  // in sync by tests (the two must find the same local maxima). Differences:
  // the fused oracle supplies objective and gradient together, and every
  // matrix is a reused workspace/result buffer swapped through the loop.
  result->argmax = init;
  result->iterations = 0;
  result->converged = false;
  double value = -std::numeric_limits<double>::infinity();
  bool has_grad = value_and_grad(result->argmax, &value, &ws->grad);
  DHMM_CHECK_MSG(std::isfinite(value),
                 "projected gradient needs a feasible finite starting point");
  result->objective = value;

  double step = options.initial_step;
  int small_gain_streak = 0;
  for (int iter = 0; iter < options.max_iters; ++iter) {
    if (!has_grad) break;

    bool accepted = false;
    double cand_obj = 0.0;
    double search_start = step;
    double accepted_step = step;
    int extra_probes = 3;
    for (int bt = 0; bt < options.max_backtracks && step >= options.min_step;
         ++bt) {
      ws->trial = result->argmax;
      ws->trial.AddScaled(ws->grad, step);
      project(&ws->trial);
      double trial_obj = objective(ws->trial);
      if (std::isfinite(trial_obj) && trial_obj > result->objective &&
          (!accepted || trial_obj > cand_obj)) {
        accepted = true;
        std::swap(ws->candidate, ws->trial);
        cand_obj = trial_obj;
        accepted_step = step;
      }
      if (accepted && --extra_probes < 0) break;
      step *= options.backtrack_factor;
    }
    if (!accepted) {
      if (search_start > options.initial_step) {
        step = options.initial_step;
        continue;
      }
      result->converged = true;  // no improving step exists: local maximum
      break;
    }
    step = accepted_step;

    double gain = cand_obj - result->objective;
    std::swap(result->argmax, ws->candidate);
    result->objective = cand_obj;
    ++result->iterations;
    step = std::min(step * options.grow_factor, options.initial_step * 1e8);

    if (gain < options.tol) {
      step = std::max(step, options.initial_step);
      if (++small_gain_streak >= 3) {
        result->converged = true;
        break;
      }
    } else {
      small_gain_streak = 0;
    }
    // Fused re-evaluation at the new iterate; the value matches cand_obj (it
    // is recomputed by the same code path), so only the gradient is kept.
    has_grad = value_and_grad(result->argmax, &value, &ws->grad);
  }
}

}  // namespace dhmm::optim
