#include "optim/simplex_projection.h"

#include <algorithm>
#include <vector>

#include "util/check.h"

namespace dhmm::optim {

linalg::Vector ProjectToSimplex(const linalg::Vector& v) {
  const size_t n = v.size();
  DHMM_CHECK(n > 0);
  std::vector<double> u(v.values());
  std::sort(u.begin(), u.end(), std::greater<double>());
  double cumsum = 0.0;
  double tau = 0.0;
  size_t rho = 0;
  for (size_t i = 0; i < n; ++i) {
    cumsum += u[i];
    double t = (cumsum - 1.0) / static_cast<double>(i + 1);
    if (u[i] - t > 0.0) {
      rho = i + 1;
      tau = t;
    }
  }
  DHMM_CHECK(rho > 0);
  linalg::Vector out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = std::max(v[i] - tau, 0.0);
  }
  return out;
}

void ProjectRowsToSimplex(linalg::Matrix* m) {
  DHMM_CHECK(m != nullptr);
  for (size_t r = 0; r < m->rows(); ++r) {
    m->SetRow(r, ProjectToSimplex(m->Row(r)));
  }
}

}  // namespace dhmm::optim
