#include "optim/simplex_projection.h"

#include <algorithm>
#include <vector>

#include "util/check.h"

namespace dhmm::optim {

linalg::Vector ProjectToSimplex(const linalg::Vector& v) {
  const size_t n = v.size();
  DHMM_CHECK(n > 0);
  std::vector<double> u(v.values().begin(), v.values().end());
  std::sort(u.begin(), u.end(), std::greater<double>());
  double cumsum = 0.0;
  double tau = 0.0;
  size_t rho = 0;
  for (size_t i = 0; i < n; ++i) {
    cumsum += u[i];
    double t = (cumsum - 1.0) / static_cast<double>(i + 1);
    if (u[i] - t > 0.0) {
      rho = i + 1;
      tau = t;
    }
  }
  DHMM_CHECK(rho > 0);
  linalg::Vector out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = std::max(v[i] - tau, 0.0);
  }
  return out;
}

void ProjectRowsToSimplex(linalg::Matrix* m) {
  linalg::Vector scratch;
  ProjectRowsToSimplex(m, &scratch);
}

namespace {

// Descending insertion sort: identical output to std::sort with
// std::greater, but without the introsort bookkeeping that dominates at the
// tiny row widths (k <= ~50) this hot path sees.
void SortDescending(double* u, size_t n) {
  for (size_t i = 1; i < n; ++i) {
    double v = u[i];
    size_t j = i;
    for (; j > 0 && u[j - 1] < v; --j) u[j] = u[j - 1];
    u[j] = v;
  }
}

}  // namespace

void ProjectRowsToSimplex(linalg::Matrix* m, linalg::Vector* scratch) {
  DHMM_CHECK(m != nullptr && scratch != nullptr);
  const size_t n = m->cols();
  DHMM_CHECK(n > 0);
  scratch->Resize(n);
  for (size_t r = 0; r < m->rows(); ++r) {
    double* row = m->row_data(r);
    double* u = scratch->data();
    for (size_t i = 0; i < n; ++i) u[i] = row[i];
    SortDescending(u, n);
    double cumsum = 0.0;
    double tau = 0.0;
    size_t rho = 0;
    for (size_t i = 0; i < n; ++i) {
      cumsum += u[i];
      double t = (cumsum - 1.0) / static_cast<double>(i + 1);
      if (u[i] - t > 0.0) {
        rho = i + 1;
        tau = t;
      }
    }
    DHMM_CHECK(rho > 0);
    for (size_t i = 0; i < n; ++i) row[i] = std::max(row[i] - tau, 0.0);
  }
}

}  // namespace dhmm::optim
