// Euclidean projection onto the probability simplex (paper's Eq. 17 via
// Wang & Carreira-Perpinan 2013, Algorithm 1 — reference [51]).
#ifndef DHMM_OPTIM_SIMPLEX_PROJECTION_H_
#define DHMM_OPTIM_SIMPLEX_PROJECTION_H_

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace dhmm::optim {

/// \brief Projects v onto {a : a >= 0, sum a = 1} in Euclidean norm.
///
/// Sort-based O(n log n) algorithm: with u = sort(v, desc), find the largest
/// rho with u_rho + (1 - sum_{i<=rho} u_i)/rho > 0 and clip at that threshold.
linalg::Vector ProjectToSimplex(const linalg::Vector& v);

/// Projects every row of m onto the simplex in place.
void ProjectRowsToSimplex(linalg::Matrix* m);

/// \brief Allocation-free overload for hot loops: `scratch` holds the sorted
/// row copy and is grow-only, so repeated projections at a fixed width stop
/// allocating after the first call. Results are bitwise identical to the
/// plain overload.
void ProjectRowsToSimplex(linalg::Matrix* m, linalg::Vector* scratch);

}  // namespace dhmm::optim

#endif  // DHMM_OPTIM_SIMPLEX_PROJECTION_H_
