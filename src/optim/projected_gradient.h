// Projected gradient ascent with adaptive (backtracking) step size — the
// optimization engine behind the paper's Algorithm 1.
#ifndef DHMM_OPTIM_PROJECTED_GRADIENT_H_
#define DHMM_OPTIM_PROJECTED_GRADIENT_H_

#include <functional>

#include "linalg/matrix.h"

namespace dhmm::optim {

/// Objective value at a candidate point; may be -inf for infeasible points
/// (e.g. a singular DPP kernel), which the line search treats as a rejected
/// step.
using MatrixObjective = std::function<double(const linalg::Matrix&)>;

/// Gradient at a point. Returns false when the gradient is undefined there
/// (the caller's current iterate is then returned unchanged).
using MatrixGradient =
    std::function<bool(const linalg::Matrix&, linalg::Matrix*)>;

/// In-place feasibility projection.
using MatrixProjection = std::function<void(linalg::Matrix*)>;

/// Fused objective-and-gradient oracle: writes F(a) to *value and the
/// gradient to *grad (Resize()d in place). Returns false when the gradient
/// is undefined at `a` (e.g. a singular DPP kernel); *value is then -inf.
/// The point of fusing: the dHMM objective and its gradient share one kernel
/// build and one LU factorization (dpp::LogDetAndGrad), where separate
/// callbacks each redo both.
using MatrixValueGradient =
    std::function<bool(const linalg::Matrix&, double*, linalg::Matrix*)>;

/// Options for ProjectedGradientAscent.
struct ProjectedGradientOptions {
  int max_iters = 200;           ///< outer ascent iterations
  double initial_step = 1.0;     ///< first trial step size gamma
  double backtrack_factor = 0.5; ///< gamma shrink factor on rejection
  /// Gamma growth after an accepted step. Must exceed 1/backtrack_factor so
  /// that the step size can recover even when every iteration needs one
  /// backtrack (otherwise the net step change per iteration shrinks and the
  /// ascent creeps).
  double grow_factor = 2.5;
  int max_backtracks = 40;       ///< line-search budget per iteration
  double tol = 1e-7;       ///< stop when objective gain < tol (Alg. 1 l. 9)
  double min_step = 1e-14;       ///< give up backtracking below this gamma
};

/// Result of a projected gradient run.
struct ProjectedGradientResult {
  linalg::Matrix argmax;   ///< best feasible iterate found
  double objective = 0.0;  ///< objective at argmax
  int iterations = 0;      ///< accepted ascent steps
  bool converged = false;  ///< true when the tol criterion triggered
};

/// Reusable scratch for the workspace overload below. All buffers are
/// grow-only: after the first run at a given shape, every backtracking probe
/// reuses `trial`, `grad`, and `candidate` instead of allocating fresh
/// matrices per probe.
struct ProjectedGradientWorkspace {
  linalg::Matrix grad;       ///< gradient at the current iterate
  linalg::Matrix trial;      ///< projected trial point of the line search
  linalg::Matrix candidate;  ///< best improving trial found this iteration
};

/// \brief Maximizes `objective` over matrices with feasible set given by
/// `project`, starting from `init` (which must be feasible).
///
/// Implements the paper's Algorithm 1 loop: compute gradient, find a step
/// size by backtracking until the projected step improves the objective,
/// stop when the improvement falls below tolerance.
ProjectedGradientResult ProjectedGradientAscent(
    const linalg::Matrix& init, const MatrixObjective& objective,
    const MatrixGradient& gradient, const MatrixProjection& project,
    const ProjectedGradientOptions& options = {});

/// \brief Value-and-gradient variant for hot loops (the dHMM M-step).
///
/// Same ascent loop as above with two changes: the objective and gradient at
/// each accepted iterate come from one fused `value_and_grad` call (one
/// kernel factorization instead of two), and all intermediate matrices live
/// in `ws` / `result`, which only grow — after the first call at a given
/// shape the whole ascent performs zero heap allocations. `objective` is
/// still used for the (value-only) line-search probes. `result` fields are
/// fully overwritten; passing the same workspace and result across calls is
/// the intended steady-state usage.
void ProjectedGradientAscent(const linalg::Matrix& init,
                             const MatrixObjective& objective,
                             const MatrixValueGradient& value_and_grad,
                             const MatrixProjection& project,
                             const ProjectedGradientOptions& options,
                             ProjectedGradientWorkspace* ws,
                             ProjectedGradientResult* result);

}  // namespace dhmm::optim

#endif  // DHMM_OPTIM_PROJECTED_GRADIENT_H_
