// CRC-32C (Castagnoli) — the per-section integrity checksum of the binary
// model store.
//
// Castagnoli rather than the zlib polynomial because it is the checksum of
// choice for storage formats (iSCSI, ext4 metadata, LevelDB tables): better
// burst-error detection at these block sizes, and hardware-accelerated on
// most targets should a SIMD PR want to swap the implementation (the
// polynomial, not the implementation, is the format contract).
#ifndef DHMM_STORE_CRC32C_H_
#define DHMM_STORE_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace dhmm::store {

/// \brief CRC-32C of `size` bytes at `data`, continuing from `seed` (pass 0
/// or a previous return value to chain blocks). Deterministic, byte-order
/// independent, no allocation.
uint32_t Crc32c(const void* data, size_t size, uint32_t seed = 0);

}  // namespace dhmm::store

#endif  // DHMM_STORE_CRC32C_H_
