// The versioned binary model store: an mmap-able, checksummed container
// for HMM parameters.
//
// Why not the text checkpoints of hmm/serialization.h? Two reasons the
// ROADMAP calls out. (1) Reload cost: text parse is O(model) through
// istream extraction — for a large-vocabulary emission that is tens of
// millions of strtod calls on the serving thread's reload path. The store
// is O(header) validation plus an mmap; parameter bytes are copied (not
// parsed) only when the model object is materialized. (2) Integrity: a
// torn or bit-flipped checkpoint must be *detected*, not served. Every
// section carries a CRC-32C, the manifest and header carry their own, and
// the dual-slot layer (store/dual_slot.h) turns detection into fallback.
//
// Layout (all integers little-endian; version 1):
//
//   offset size
//   0      8   magic "DHMMSTR1"
//   8      4   format version (1)
//   12     4   flags (bit 0: payload is little-endian IEEE-754)
//   16     8   sequence number (monotonic publish counter)
//   24     4   emission type tag (codec-defined)
//   28     4   num_states k
//   32     4   section count n
//   36     4   manifest CRC-32C (over the n*40 manifest bytes)
//   40     8   total file size in bytes
//   48     12  reserved (zero)
//   60     4   header CRC-32C (over bytes 0..59)
//   64     n * 40   manifest: per section
//                     u32 id, u32 payload crc, u64 offset, u64 bytes,
//                     u64 rows, u64 cols
//   ...    sections: raw double payloads, each offset 64-byte aligned
//                    (matching linalg's buffer alignment, so an mmap'd
//                    section is kernel-ready without repacking)
//
// The store is a dumb typed container: it knows section ids and shapes,
// not what pi or a GMM is. The model <-> section mapping lives in
// store/model_codec.h.
#ifndef DHMM_STORE_MODEL_STORE_H_
#define DHMM_STORE_MODEL_STORE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace dhmm::store {

inline constexpr char kStoreMagic[8] = {'D', 'H', 'M', 'M',
                                        'S', 'T', 'R', '1'};
inline constexpr uint32_t kStoreFormatVersion = 1;
inline constexpr uint32_t kStoreFlagLittleEndian = 1u << 0;
inline constexpr size_t kStoreHeaderBytes = 64;
inline constexpr size_t kStoreManifestEntryBytes = 40;
inline constexpr size_t kStoreSectionAlignment = 64;
/// Mirrors hmm::kMaxSerializedStates: a corrupt header cannot request an
/// absurd allocation before any checksum is verified.
inline constexpr uint32_t kStoreMaxStates = 4096;
inline constexpr uint32_t kStoreMaxSections = 64;

/// Section ids (format contract — append, never renumber).
enum class SectionId : uint32_t {
  kPi = 1,          ///< 1 x k initial distribution
  kTransition = 2,  ///< k x k row-stochastic transition matrix
  kScalars = 3,     ///< 1 x n emission scalars (floors / pseudo-counts)
  kEmission0 = 4,   ///< first emission parameter block
  kEmission1 = 5,   ///< second emission parameter block
  kEmission2 = 6,   ///< third emission parameter block
};

/// \brief One section to write: a borrowed row-major double block.
struct SectionSpec {
  SectionId id;
  const double* data;
  size_t rows;
  size_t cols;
};

/// \brief One section as read: a borrowed view into the mapped file
/// (valid while the owning ModelStoreReader lives).
struct SectionView {
  const double* data = nullptr;
  size_t rows = 0;
  size_t cols = 0;
  size_t size() const { return rows * cols; }
};

/// \brief Read-only byte view of a file: POSIX mmap where available
/// (zero-copy, pages fault in on first touch), a heap read elsewhere.
/// Move-only; unmaps/frees on destruction.
class MappedFile {
 public:
  MappedFile() = default;
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  static Result<MappedFile> Open(const std::string& path);

  const unsigned char* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  unsigned char* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;  // true: munmap; false: delete[]
};

/// \brief Writes one store file atomically (util::AtomicWriteFile: tmp +
/// fsync + rename + parent-directory fsync — the SaveHmmToFile contract).
/// The full image is assembled in memory first; models here are at most a
/// few hundred MB and the assembly is one pass of memcpy + CRC.
class ModelStoreWriter {
 public:
  static Status Write(const std::string& path, uint64_t sequence_number,
                      uint32_t emission_type, uint32_t num_states,
                      const std::vector<SectionSpec>& sections);

  /// Assembles the file image without touching the filesystem (the
  /// dual-slot tests corrupt images in memory; benches reuse buffers).
  static Status BuildImage(uint64_t sequence_number, uint32_t emission_type,
                           uint32_t num_states,
                           const std::vector<SectionSpec>& sections,
                           std::vector<unsigned char>* image);
};

/// \brief Zero-copy reader over one store file.
///
/// Open() is O(header): it maps the file and validates magic, version,
/// endianness, bounds, and the header + manifest CRCs — it does NOT touch
/// section payloads, so opening a multi-GB store faults in one page.
/// Section() returns a view after verifying that section's CRC exactly
/// once (memoized per reader; a reader is single-threaded like every
/// workspace in this codebase). Every corruption path is a typed IOError
/// naming what failed; nothing in this class aborts.
class ModelStoreReader {
 public:
  ModelStoreReader() = default;
  ModelStoreReader(ModelStoreReader&&) noexcept = default;
  ModelStoreReader& operator=(ModelStoreReader&&) noexcept = default;

  static Result<ModelStoreReader> Open(const std::string& path);

  uint64_t sequence_number() const { return sequence_number_; }
  uint32_t emission_type() const { return emission_type_; }
  uint32_t num_states() const { return num_states_; }
  size_t section_count() const { return entries_.size(); }

  /// True when the section exists in the manifest.
  bool HasSection(SectionId id) const;

  /// View of one section; verifies its payload CRC on first access.
  Result<SectionView> Section(SectionId id) const;

  /// Verifies every section's payload CRC (reload paths call this once so
  /// a corrupt slot is rejected before any parameter is copied out).
  Status VerifyAllSections() const;

 private:
  struct Entry {
    uint32_t id;
    uint32_t crc;
    uint64_t offset;
    uint64_t bytes;
    uint64_t rows;
    uint64_t cols;
  };

  MappedFile file_;
  std::vector<Entry> entries_;
  mutable std::vector<bool> verified_;
  uint64_t sequence_number_ = 0;
  uint32_t emission_type_ = 0;
  uint32_t num_states_ = 0;
};

}  // namespace dhmm::store

#endif  // DHMM_STORE_MODEL_STORE_H_
