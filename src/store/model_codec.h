// HmmModel <-> binary store mapping for every in-tree emission family.
//
// The store container (store/model_store.h) moves checksummed double
// blocks; this header knows that a Gaussian emission is mu + sigma + a
// variance floor. Section/tag assignments are format contract:
//
//   tag 1 categorical (Obs=int):       scalars=[pseudo_count], E0=b (k x V)
//   tag 2 bernoulli  (Obs=BinaryObs):  scalars=[p_floor],      E0=p (k x D)
//   tag 3 gaussian   (Obs=double):     scalars=[sigma_floor],  E0=mu (1 x k),
//                                      E1=sigma (1 x k)
//   tag 4 gmm        (Obs=double):     scalars=[sigma_floor],  E0=weights,
//                                      E1=mu, E2=sigma (all k x M)
//
// ReadModel re-applies the text loader's validation (stochastic rows,
// positive variances, sane floors) before any constructor can CHECK-abort:
// a store file that passes every CRC can still be a hand-built hostile
// file, so checksums gate corruption and validation gates semantics.
#ifndef DHMM_STORE_MODEL_CODEC_H_
#define DHMM_STORE_MODEL_CODEC_H_

#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "hmm/model.h"
#include "prob/bernoulli_emission.h"
#include "prob/categorical_emission.h"
#include "prob/gaussian_emission.h"
#include "prob/gmm_emission.h"
#include "store/model_store.h"
#include "util/status.h"

namespace dhmm::store {

/// Emission type tags (format contract — append, never renumber).
enum class EmissionTag : uint32_t {
  kCategorical = 1,
  kBernoulli = 2,
  kGaussian = 3,
  kGmm = 4,
};

namespace internal {

/// Row-stochastic check matching hmm::kSerializationStochasticTol.
inline bool RowsStochastic(const double* data, size_t rows, size_t cols) {
  for (size_t i = 0; i < rows; ++i) {
    double sum = 0.0;
    for (size_t j = 0; j < cols; ++j) {
      const double v = data[i * cols + j];
      if (!(v >= -1e-12)) return false;  // negated >= also rejects NaN
      sum += v;
    }
    if (!(std::fabs(sum - 1.0) < 1e-6)) return false;
  }
  return true;
}

inline linalg::Matrix CopyMatrix(const SectionView& view) {
  linalg::Matrix m(view.rows, view.cols);
  std::memcpy(m.data(), view.data, view.size() * sizeof(double));
  return m;
}

inline linalg::Vector CopyRowVector(const SectionView& view) {
  linalg::Vector v(view.size());
  std::memcpy(v.data(), view.data, view.size() * sizeof(double));
  return v;
}

/// Per-observation-type emission codec, mirroring the text loader's
/// internal::EmissionLoader dispatch.
template <typename Obs>
struct EmissionCodec;

template <>
struct EmissionCodec<int> {
  static Status Append(const prob::EmissionModel<int>& emission,
                       uint32_t* tag, double* scalars, size_t* num_scalars,
                       std::vector<SectionSpec>* sections) {
    const auto* cat =
        dynamic_cast<const prob::CategoricalEmission*>(&emission);
    if (cat == nullptr) {
      return Status::InvalidArgument("store: unsupported symbol emission: " +
                                     emission.TypeName());
    }
    *tag = static_cast<uint32_t>(EmissionTag::kCategorical);
    scalars[0] = cat->pseudo_count();
    *num_scalars = 1;
    sections->push_back({SectionId::kEmission0, cat->b().data(),
                         cat->b().rows(), cat->b().cols()});
    return Status::OK();
  }

  static Result<std::unique_ptr<prob::EmissionModel<int>>> Make(
      uint32_t tag, const double* scalars, size_t num_scalars,
      const std::vector<SectionView>& blocks, size_t k) {
    if (tag != static_cast<uint32_t>(EmissionTag::kCategorical)) {
      return Status::IOError("store: unexpected symbol emission tag " +
                             std::to_string(tag));
    }
    if (num_scalars != 1 || !(scalars[0] >= 0.0) || blocks.size() != 1 ||
        blocks[0].rows != k || blocks[0].cols == 0 ||
        !RowsStochastic(blocks[0].data, blocks[0].rows, blocks[0].cols)) {
      return Status::IOError("store: bad categorical emission payload");
    }
    return std::unique_ptr<prob::EmissionModel<int>>(
        std::make_unique<prob::CategoricalEmission>(CopyMatrix(blocks[0]),
                                                    scalars[0]));
  }
};

template <>
struct EmissionCodec<prob::BinaryObs> {
  static Status Append(const prob::EmissionModel<prob::BinaryObs>& emission,
                       uint32_t* tag, double* scalars, size_t* num_scalars,
                       std::vector<SectionSpec>* sections) {
    const auto* ber =
        dynamic_cast<const prob::BernoulliEmission*>(&emission);
    if (ber == nullptr) {
      return Status::InvalidArgument("store: unsupported binary emission: " +
                                     emission.TypeName());
    }
    *tag = static_cast<uint32_t>(EmissionTag::kBernoulli);
    scalars[0] = ber->p_floor();
    *num_scalars = 1;
    sections->push_back({SectionId::kEmission0, ber->p().data(),
                         ber->p().rows(), ber->p().cols()});
    return Status::OK();
  }

  static Result<std::unique_ptr<prob::EmissionModel<prob::BinaryObs>>> Make(
      uint32_t tag, const double* scalars, size_t num_scalars,
      const std::vector<SectionView>& blocks, size_t k) {
    if (tag != static_cast<uint32_t>(EmissionTag::kBernoulli)) {
      return Status::IOError("store: unexpected binary emission tag " +
                             std::to_string(tag));
    }
    if (num_scalars != 1 || !(scalars[0] > 0.0) || !(scalars[0] < 0.5) ||
        blocks.size() != 1 || blocks[0].rows != k || blocks[0].cols == 0) {
      return Status::IOError("store: bad bernoulli emission payload");
    }
    for (size_t i = 0; i < blocks[0].size(); ++i) {
      const double p = blocks[0].data[i];
      if (!(p >= 0.0) || !(p <= 1.0)) {
        return Status::IOError("store: bad bernoulli emission payload");
      }
    }
    return std::unique_ptr<prob::EmissionModel<prob::BinaryObs>>(
        std::make_unique<prob::BernoulliEmission>(CopyMatrix(blocks[0]),
                                                  scalars[0]));
  }
};

template <>
struct EmissionCodec<double> {
  static Status Append(const prob::EmissionModel<double>& emission,
                       uint32_t* tag, double* scalars, size_t* num_scalars,
                       std::vector<SectionSpec>* sections) {
    if (const auto* g =
            dynamic_cast<const prob::GaussianEmission*>(&emission)) {
      *tag = static_cast<uint32_t>(EmissionTag::kGaussian);
      scalars[0] = g->sigma_floor();
      *num_scalars = 1;
      sections->push_back(
          {SectionId::kEmission0, g->mu().data(), 1, g->mu().size()});
      sections->push_back(
          {SectionId::kEmission1, g->sigma().data(), 1, g->sigma().size()});
      return Status::OK();
    }
    if (const auto* g = dynamic_cast<const prob::GmmEmission*>(&emission)) {
      *tag = static_cast<uint32_t>(EmissionTag::kGmm);
      scalars[0] = g->sigma_floor();
      *num_scalars = 1;
      sections->push_back({SectionId::kEmission0, g->weights().data(),
                           g->weights().rows(), g->weights().cols()});
      sections->push_back({SectionId::kEmission1, g->mu().data(),
                           g->mu().rows(), g->mu().cols()});
      sections->push_back({SectionId::kEmission2, g->sigma().data(),
                           g->sigma().rows(), g->sigma().cols()});
      return Status::OK();
    }
    return Status::InvalidArgument("store: unsupported scalar emission: " +
                                   emission.TypeName());
  }

  static Result<std::unique_ptr<prob::EmissionModel<double>>> Make(
      uint32_t tag, const double* scalars, size_t num_scalars,
      const std::vector<SectionView>& blocks, size_t k) {
    if (tag == static_cast<uint32_t>(EmissionTag::kGaussian)) {
      if (num_scalars != 1 || !(scalars[0] > 0.0) || blocks.size() != 2 ||
          blocks[0].size() != k || blocks[1].size() != k) {
        return Status::IOError("store: bad gaussian emission payload");
      }
      for (size_t i = 0; i < k; ++i) {
        if (!(blocks[1].data[i] > 0.0)) {
          return Status::IOError("store: bad gaussian emission payload");
        }
      }
      return std::unique_ptr<prob::EmissionModel<double>>(
          std::make_unique<prob::GaussianEmission>(CopyRowVector(blocks[0]),
                                                   CopyRowVector(blocks[1]),
                                                   scalars[0]));
    }
    if (tag == static_cast<uint32_t>(EmissionTag::kGmm)) {
      if (num_scalars != 1 || !(scalars[0] > 0.0) || blocks.size() != 3 ||
          blocks[0].rows != k || blocks[0].cols == 0 ||
          blocks[1].rows != blocks[0].rows ||
          blocks[1].cols != blocks[0].cols ||
          blocks[2].rows != blocks[0].rows ||
          blocks[2].cols != blocks[0].cols ||
          !RowsStochastic(blocks[0].data, blocks[0].rows, blocks[0].cols)) {
        return Status::IOError("store: bad gmm emission payload");
      }
      for (size_t i = 0; i < blocks[2].size(); ++i) {
        if (!(blocks[2].data[i] > 0.0)) {
          return Status::IOError("store: bad gmm emission payload");
        }
      }
      return std::unique_ptr<prob::EmissionModel<double>>(
          std::make_unique<prob::GmmEmission>(
              CopyMatrix(blocks[0]), CopyMatrix(blocks[1]),
              CopyMatrix(blocks[2]), scalars[0]));
    }
    return Status::IOError("store: unexpected scalar emission tag " +
                           std::to_string(tag));
  }
};

}  // namespace internal

/// \brief Writes `model` as one binary store file at `path`, atomically
/// (temp + fsync + rename + parent-directory fsync). `sequence_number` is
/// the caller's publish counter — the dual-slot layer supplies a monotonic
/// one; standalone files can pass anything.
template <typename Obs>
Status WriteModel(const hmm::HmmModel<Obs>& model, uint64_t sequence_number,
                  const std::string& path) {
  model.Validate();
  const size_t k = model.num_states();
  double scalars[4] = {0, 0, 0, 0};
  size_t num_scalars = 0;
  uint32_t tag = 0;
  std::vector<SectionSpec> sections;
  sections.reserve(6);
  sections.push_back({SectionId::kPi, model.pi.data(), 1, k});
  sections.push_back({SectionId::kTransition, model.a.data(), k, k});
  DHMM_RETURN_NOT_OK(internal::EmissionCodec<Obs>::Append(
      *model.emission, &tag, scalars, &num_scalars, &sections));
  if (num_scalars > 0) {
    sections.push_back({SectionId::kScalars, scalars, 1, num_scalars});
  }
  return ModelStoreWriter::Write(path, sequence_number, tag,
                                 static_cast<uint32_t>(k), sections);
}

/// \brief Materializes a model from an opened reader. Copies parameter
/// bytes into aligned linalg buffers (emission families also rebuild their
/// cached log tables); the expensive part of a reload — the O(model) text
/// parse — is what the store eliminates, and callers that only need
/// validation stop at Open + VerifyAllSections without paying this copy.
template <typename Obs>
Result<hmm::HmmModel<Obs>> ReadModel(const ModelStoreReader& reader) {
  const size_t k = reader.num_states();

  auto pi_view = reader.Section(SectionId::kPi);
  if (!pi_view.ok()) return pi_view.status();
  if (pi_view.value().size() != k ||
      !internal::RowsStochastic(pi_view.value().data, 1, k)) {
    return Status::IOError("store: bad pi section");
  }

  auto a_view = reader.Section(SectionId::kTransition);
  if (!a_view.ok()) return a_view.status();
  if (a_view.value().rows != k || a_view.value().cols != k ||
      !internal::RowsStochastic(a_view.value().data, k, k)) {
    return Status::IOError("store: bad transition section");
  }

  double scalars[4] = {0, 0, 0, 0};
  size_t num_scalars = 0;
  if (reader.HasSection(SectionId::kScalars)) {
    auto view = reader.Section(SectionId::kScalars);
    if (!view.ok()) return view.status();
    num_scalars = view.value().size();
    if (num_scalars > 4) return Status::IOError("store: bad scalar section");
    std::memcpy(scalars, view.value().data, num_scalars * sizeof(double));
  }

  std::vector<SectionView> blocks;
  for (SectionId id :
       {SectionId::kEmission0, SectionId::kEmission1, SectionId::kEmission2}) {
    if (!reader.HasSection(id)) break;
    auto view = reader.Section(id);
    if (!view.ok()) return view.status();
    blocks.push_back(view.value());
  }

  auto emission = internal::EmissionCodec<Obs>::Make(
      reader.emission_type(), scalars, num_scalars, blocks, k);
  if (!emission.ok()) return emission.status();
  if (emission.value()->num_states() != k) {
    return Status::IOError("store: emission state count mismatch");
  }

  linalg::Vector pi = internal::CopyRowVector(pi_view.value());
  linalg::Matrix a = internal::CopyMatrix(a_view.value());
  return hmm::HmmModel<Obs>(std::move(pi), std::move(a),
                            std::move(emission).value());
}

/// \brief Open + full integrity verification + materialization, in one
/// call — the reload path's workhorse. Any corruption anywhere in the
/// file is a typed IOError before a single parameter is copied out.
template <typename Obs>
Result<hmm::HmmModel<Obs>> ReadModelFromFile(const std::string& path) {
  auto reader = ModelStoreReader::Open(path);
  if (!reader.ok()) return reader.status();
  DHMM_RETURN_NOT_OK(reader.value().VerifyAllSections());
  return ReadModel<Obs>(reader.value());
}

/// \brief True when the file at `path` starts with the store magic — the
/// cheap sniff the serve layer uses to route one `path` string to either
/// the binary store or the text loader.
bool IsStoreFile(const std::string& path);

}  // namespace dhmm::store

#endif  // DHMM_STORE_MODEL_CODEC_H_
