#include "store/model_store.h"

#include <cstring>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#include <cstdio>
#endif

#include "store/crc32c.h"
#include "util/fsio.h"

namespace dhmm::store {

namespace {

// Byte-wise little-endian codec, the same idiom as serve/wire.cc: the file
// format is defined in bytes, not in host integers, so a big-endian host
// reads and writes the identical file (payload doubles are a separate
// story — the header flag records their endianness and the codec layer
// rejects a mismatch rather than byte-swapping numerics).
void StoreU32(unsigned char* p, uint32_t v) {
  p[0] = static_cast<unsigned char>(v);
  p[1] = static_cast<unsigned char>(v >> 8);
  p[2] = static_cast<unsigned char>(v >> 16);
  p[3] = static_cast<unsigned char>(v >> 24);
}

void StoreU64(unsigned char* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<unsigned char>(v >> (8 * i));
  }
}

uint32_t LoadU32(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t LoadU64(const unsigned char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

bool HostIsLittleEndian() {
  const uint32_t probe = 1;
  unsigned char byte0;
  std::memcpy(&byte0, &probe, 1);
  return byte0 == 1;
}

size_t AlignUp(size_t n, size_t a) { return (n + a - 1) / a * a; }

}  // namespace

// ---------------------------------------------------------------------------
// MappedFile

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_), size_(other.size_), mapped_(other.mapped_) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    this->~MappedFile();
    data_ = other.data_;
    size_ = other.size_;
    mapped_ = other.mapped_;
    other.data_ = nullptr;
    other.size_ = 0;
    other.mapped_ = false;
  }
  return *this;
}

MappedFile::~MappedFile() {
#if defined(__unix__) || defined(__APPLE__)
  if (mapped_ && data_ != nullptr) {
    ::munmap(data_, size_);
    return;
  }
#endif
  delete[] data_;
}

Result<MappedFile> MappedFile::Open(const std::string& path) {
  MappedFile out;
#if defined(__unix__) || defined(__APPLE__)
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError("cannot open: " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status::IOError("cannot stat: " + path);
  }
  out.size_ = static_cast<size_t>(st.st_size);
  if (out.size_ == 0) {
    ::close(fd);
    return Status::IOError("empty file: " + path);
  }
  void* base = ::mmap(nullptr, out.size_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) return Status::IOError("mmap failed: " + path);
  out.data_ = static_cast<unsigned char*>(base);
  out.mapped_ = true;
#else
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open: " + path);
  std::fseek(f, 0, SEEK_END);
  const long end = std::ftell(f);
  if (end <= 0) {
    std::fclose(f);
    return Status::IOError("empty file: " + path);
  }
  std::fseek(f, 0, SEEK_SET);
  out.size_ = static_cast<size_t>(end);
  out.data_ = new unsigned char[out.size_];
  const size_t got = std::fread(out.data_, 1, out.size_, f);
  std::fclose(f);
  if (got != out.size_) return Status::IOError("short read: " + path);
#endif
  return out;
}

// ---------------------------------------------------------------------------
// ModelStoreWriter

Status ModelStoreWriter::BuildImage(uint64_t sequence_number,
                                    uint32_t emission_type,
                                    uint32_t num_states,
                                    const std::vector<SectionSpec>& sections,
                                    std::vector<unsigned char>* image) {
  if (image == nullptr) {
    return Status::InvalidArgument("store: null image buffer");
  }
  if (!HostIsLittleEndian()) {
    // Payload doubles are memcpy'd; the format pins them little-endian.
    // No big-endian target exists for this system today, so refusing is
    // honest where silent byte-swapped numerics would not be.
    return Status::FailedPrecondition(
        "store: writing requires a little-endian host");
  }
  if (num_states == 0 || num_states > kStoreMaxStates) {
    return Status::InvalidArgument("store: bad state count");
  }
  if (sections.empty() || sections.size() > kStoreMaxSections) {
    return Status::InvalidArgument("store: bad section count");
  }

  const size_t n = sections.size();
  const size_t manifest_bytes = n * kStoreManifestEntryBytes;
  size_t offset = AlignUp(kStoreHeaderBytes + manifest_bytes,
                          kStoreSectionAlignment);
  std::vector<size_t> offsets(n);
  size_t end = offset;
  for (size_t i = 0; i < n; ++i) {
    const SectionSpec& s = sections[i];
    if (s.data == nullptr || s.rows == 0 || s.cols == 0) {
      return Status::InvalidArgument("store: empty section");
    }
    offsets[i] = offset;
    end = offset + s.rows * s.cols * sizeof(double);
    offset = AlignUp(end, kStoreSectionAlignment);
  }
  // The file ends exactly where the last payload does — no tail padding,
  // so every byte past the manifest is covered by some section CRC except
  // inter-section alignment gaps.
  const size_t file_size = end;

  image->assign(file_size, 0);
  unsigned char* base = image->data();

  // Sections first (their CRCs feed the manifest).
  unsigned char* manifest = base + kStoreHeaderBytes;
  for (size_t i = 0; i < n; ++i) {
    const SectionSpec& s = sections[i];
    const size_t bytes = s.rows * s.cols * sizeof(double);
    std::memcpy(base + offsets[i], s.data, bytes);
    unsigned char* e = manifest + i * kStoreManifestEntryBytes;
    StoreU32(e, static_cast<uint32_t>(s.id));
    StoreU32(e + 4, Crc32c(base + offsets[i], bytes));
    StoreU64(e + 8, offsets[i]);
    StoreU64(e + 16, bytes);
    StoreU64(e + 24, s.rows);
    StoreU64(e + 32, s.cols);
  }

  std::memcpy(base, kStoreMagic, sizeof(kStoreMagic));
  StoreU32(base + 8, kStoreFormatVersion);
  StoreU32(base + 12, kStoreFlagLittleEndian);
  StoreU64(base + 16, sequence_number);
  StoreU32(base + 24, emission_type);
  StoreU32(base + 28, num_states);
  StoreU32(base + 32, static_cast<uint32_t>(n));
  StoreU32(base + 36, Crc32c(manifest, manifest_bytes));
  StoreU64(base + 40, file_size);
  // Bytes 48..59 reserved, already zero.
  StoreU32(base + 60, Crc32c(base, 60));
  return Status::OK();
}

Status ModelStoreWriter::Write(const std::string& path,
                               uint64_t sequence_number,
                               uint32_t emission_type, uint32_t num_states,
                               const std::vector<SectionSpec>& sections) {
  std::vector<unsigned char> image;
  DHMM_RETURN_NOT_OK(BuildImage(sequence_number, emission_type, num_states,
                                sections, &image));
  return util::AtomicWriteFile(path, image.data(), image.size());
}

// ---------------------------------------------------------------------------
// ModelStoreReader

Result<ModelStoreReader> ModelStoreReader::Open(const std::string& path) {
  auto mapped = MappedFile::Open(path);
  if (!mapped.ok()) return mapped.status();
  ModelStoreReader reader;
  reader.file_ = std::move(mapped).value();
  const unsigned char* base = reader.file_.data();
  const size_t size = reader.file_.size();

  if (size < kStoreHeaderBytes) {
    return Status::IOError("store: file shorter than header: " + path);
  }
  if (std::memcmp(base, kStoreMagic, sizeof(kStoreMagic)) != 0) {
    return Status::IOError("store: bad magic: " + path);
  }
  if (LoadU32(base + 60) != Crc32c(base, 60)) {
    return Status::IOError("store: header checksum mismatch: " + path);
  }
  // Past the header CRC every field is trustworthy-as-written; the checks
  // below catch version/host mismatches and truncation after the header.
  if (LoadU32(base + 8) != kStoreFormatVersion) {
    return Status::IOError("store: unsupported format version: " + path);
  }
  if ((LoadU32(base + 12) & kStoreFlagLittleEndian) == 0 ||
      !HostIsLittleEndian()) {
    return Status::IOError("store: payload endianness mismatch: " + path);
  }
  reader.sequence_number_ = LoadU64(base + 16);
  reader.emission_type_ = LoadU32(base + 24);
  reader.num_states_ = LoadU32(base + 28);
  if (reader.num_states_ == 0 || reader.num_states_ > kStoreMaxStates) {
    return Status::IOError("store: bad state count: " + path);
  }
  const uint32_t n = LoadU32(base + 32);
  if (n == 0 || n > kStoreMaxSections) {
    return Status::IOError("store: bad section count: " + path);
  }
  if (LoadU64(base + 40) != size) {
    return Status::IOError("store: truncated file: " + path);
  }
  const size_t manifest_bytes = n * kStoreManifestEntryBytes;
  if (kStoreHeaderBytes + manifest_bytes > size) {
    return Status::IOError("store: truncated manifest: " + path);
  }
  const unsigned char* manifest = base + kStoreHeaderBytes;
  if (LoadU32(base + 36) != Crc32c(manifest, manifest_bytes)) {
    return Status::IOError("store: manifest checksum mismatch: " + path);
  }
  reader.entries_.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    const unsigned char* e = manifest + i * kStoreManifestEntryBytes;
    Entry& entry = reader.entries_[i];
    entry.id = LoadU32(e);
    entry.crc = LoadU32(e + 4);
    entry.offset = LoadU64(e + 8);
    entry.bytes = LoadU64(e + 16);
    entry.rows = LoadU64(e + 24);
    entry.cols = LoadU64(e + 32);
    // Division-form shape check so hostile rows/cols cannot overflow the
    // u64 product into a "consistent" value.
    const uint64_t elems = entry.bytes / sizeof(double);
    if (entry.offset % kStoreSectionAlignment != 0 ||
        entry.offset > size || entry.bytes > size - entry.offset ||
        entry.bytes == 0 || entry.bytes % sizeof(double) != 0 ||
        entry.rows == 0 ||
        elems % entry.rows != 0 || elems / entry.rows != entry.cols) {
      return Status::IOError("store: section " + std::to_string(entry.id) +
                             " out of bounds: " + path);
    }
  }
  reader.verified_.assign(n, false);
  return reader;
}

bool ModelStoreReader::HasSection(SectionId id) const {
  for (const Entry& e : entries_) {
    if (e.id == static_cast<uint32_t>(id)) return true;
  }
  return false;
}

Result<SectionView> ModelStoreReader::Section(SectionId id) const {
  for (size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    if (e.id != static_cast<uint32_t>(id)) continue;
    if (!verified_[i]) {
      if (Crc32c(file_.data() + e.offset, e.bytes) != e.crc) {
        return Status::IOError("store: section " + std::to_string(e.id) +
                               " checksum mismatch");
      }
      verified_[i] = true;
    }
    SectionView view;
    view.data = reinterpret_cast<const double*>(file_.data() + e.offset);
    view.rows = e.rows;
    view.cols = e.cols;
    return view;
  }
  return Status::NotFound("store: no section with id " +
                          std::to_string(static_cast<uint32_t>(id)));
}

Status ModelStoreReader::VerifyAllSections() const {
  for (const Entry& e : entries_) {
    auto view = Section(static_cast<SectionId>(e.id));
    if (!view.ok()) return view.status();
  }
  return Status::OK();
}

}  // namespace dhmm::store
