#include "store/crc32c.h"

namespace dhmm::store {

namespace {

// Slice-by-4 tables for the reflected Castagnoli polynomial 0x82F63B78.
// Built once at first use; ~4 bytes per cycle without any hardware CRC
// instruction, which keeps even a hundred-MB emission section in the
// low-millisecond range.
struct Crc32cTables {
  uint32_t t[4][256];
  Crc32cTables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int j = 0; j < 8; ++j) {
        c = (c & 1u) ? (0x82F63B78u ^ (c >> 1)) : (c >> 1);
      }
      t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFFu];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFFu];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFFu];
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables;
  return tables;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t size, uint32_t seed) {
  const Crc32cTables& tb = Tables();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  while (size >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) |
           (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = tb.t[3][crc & 0xFFu] ^ tb.t[2][(crc >> 8) & 0xFFu] ^
          tb.t[1][(crc >> 16) & 0xFFu] ^ tb.t[0][crc >> 24];
    p += 4;
    size -= 4;
  }
  while (size-- > 0) {
    crc = tb.t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace dhmm::store
