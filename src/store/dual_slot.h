// Dual-slot (A/B) model publication with failsafe open.
//
// The serve layer's reload contract is "a bad checkpoint never takes down
// serving". The store's CRCs give *detection*; this layer gives *fallback*:
// a publish always writes the slot that is NOT currently active, so the
// previous model survives on disk untouched no matter where the writer is
// killed. Directory layout:
//
//   <dir>/slot_a.dhmms   binary store file (store/model_store.h)
//   <dir>/slot_b.dhmms   binary store file
//   <dir>/MANIFEST       28-byte pointer: magic "DHMMSLTM", u32 version,
//                        u32 active slot (0=A, 1=B), u64 sequence,
//                        u32 CRC-32C over the first 24 bytes
//
// The manifest is a hint, not a single point of failure: Open() probes BOTH
// slots with full integrity verification and serves the highest valid
// sequence number. A torn manifest, a manifest pointing at a corrupt slot,
// or a stale manifest left by a crashed publisher all degrade to "use the
// best slot that actually checks out".
#ifndef DHMM_STORE_DUAL_SLOT_H_
#define DHMM_STORE_DUAL_SLOT_H_

#include <cstdint>
#include <string>

#include "hmm/model.h"
#include "hmm/serialization.h"
#include "obs/metrics.h"
#include "store/model_codec.h"
#include "store/model_store.h"
#include "util/status.h"

namespace dhmm::store {

inline constexpr char kSlotManifestMagic[8] = {'D', 'H', 'M', 'M',
                                               'S', 'L', 'T', 'M'};
inline constexpr uint32_t kSlotManifestVersion = 1;
inline constexpr size_t kSlotManifestBytes = 28;

/// \brief One A/B store directory. Open() is read-only and never fails on
/// corruption — a directory with zero valid slots opens with
/// has_model() == false so the caller can decide whether that is fatal
/// (cold load) or ignorable (reload keeps the in-memory snapshot).
class DualSlotStore {
 public:
  static Result<DualSlotStore> Open(const std::string& dir);

  /// True when at least one slot passed full integrity verification.
  bool has_model() const { return active_ >= 0; }

  /// Sequence number of the best valid slot (0 when has_model() is false).
  uint64_t sequence_number() const {
    return active_ >= 0 ? slot_seq_[active_] : 0;
  }

  /// Path of the best valid slot's store file ("" when none).
  const std::string& active_path() const {
    static const std::string kEmpty;
    return active_ >= 0 ? slot_path_[active_] : kEmpty;
  }

  /// Index (0=A, 1=B) the next Publish() will overwrite.
  int publish_slot() const { return active_ == 0 ? 1 : 0; }

  /// \brief Materializes the model from the best valid slot.
  template <typename Obs>
  Result<hmm::HmmModel<Obs>> Load() const {
    if (active_ < 0) {
      return Status::NotFound("dual-slot store has no valid slot: " + dir_);
    }
    return ReadModelFromFile<Obs>(slot_path_[active_]);
  }

  /// \brief Publishes `model` as the next version: writes the inactive
  /// slot (atomic store write), then flips the manifest (atomic 28-byte
  /// write). A crash between the two leaves the manifest stale — the new
  /// slot still wins on the next Open() because it carries the higher
  /// sequence number and probing out-ranks the hint.
  template <typename Obs>
  Status Publish(const hmm::HmmModel<Obs>& model) {
    const int target = publish_slot();
    const uint64_t seq = sequence_number() + 1;
    DHMM_RETURN_NOT_OK(WriteModel(model, seq, slot_path_[target]));
    DHMM_RETURN_NOT_OK(CommitManifest(target, seq));
    slot_valid_[target] = true;
    slot_seq_[target] = seq;
    active_ = target;
    obs::Registry::Global().GetCounter("store.publishes")->Add();
    return Status::OK();
  }

 private:
  Status CommitManifest(int slot, uint64_t sequence);

  std::string dir_;
  std::string slot_path_[2];
  bool slot_valid_[2] = {false, false};
  uint64_t slot_seq_[2] = {0, 0};
  int active_ = -1;  // -1: no valid slot
};

/// True when `path` names an existing directory.
bool IsDirectory(const std::string& path);

/// \brief The serve layer's one-string loader. Routes `path` by what is on
/// disk: a directory opens as a dual-slot store, a file starting with the
/// store magic reads as a binary store (full integrity verification, no
/// text parse), anything else falls through to the text-format
/// hmm::LoadHmmFromFile — so existing registry configs keep working
/// unchanged next to binary deployments.
template <typename Obs>
Result<hmm::HmmModel<Obs>> LoadAnyModel(const std::string& path) {
  if (IsDirectory(path)) {
    auto slots = DualSlotStore::Open(path);
    if (!slots.ok()) return slots.status();
    return slots.value().template Load<Obs>();
  }
  if (IsStoreFile(path)) {
    return ReadModelFromFile<Obs>(path);
  }
  return hmm::LoadHmmFromFile<Obs>(path);
}

}  // namespace dhmm::store

#endif  // DHMM_STORE_DUAL_SLOT_H_
