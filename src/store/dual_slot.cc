#include "store/dual_slot.h"

#include <cstring>
#include <fstream>
#include <vector>

#include "obs/metrics.h"
#include "store/crc32c.h"
#include "util/fsio.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/stat.h>
#include <sys/types.h>
#endif

namespace dhmm::store {

namespace {

constexpr const char* kSlotFileName[2] = {"slot_a.dhmms", "slot_b.dhmms"};
constexpr const char* kManifestFileName = "MANIFEST";

void StoreU32(unsigned char* p, uint32_t v) {
  p[0] = static_cast<unsigned char>(v);
  p[1] = static_cast<unsigned char>(v >> 8);
  p[2] = static_cast<unsigned char>(v >> 16);
  p[3] = static_cast<unsigned char>(v >> 24);
}

void StoreU64(unsigned char* p, uint64_t v) {
  StoreU32(p, static_cast<uint32_t>(v));
  StoreU32(p + 4, static_cast<uint32_t>(v >> 32));
}

uint32_t LoadU32(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t LoadU64(const unsigned char* p) {
  return static_cast<uint64_t>(LoadU32(p)) |
         (static_cast<uint64_t>(LoadU32(p + 4)) << 32);
}

/// Best-effort manifest read. Any defect — missing file, short read, bad
/// magic/version/CRC, out-of-range slot — returns false: the manifest is
/// only a tie-breaking hint and Open() re-derives truth from the slots.
bool ReadManifestHint(const std::string& path, int* active, uint64_t* seq) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  unsigned char buf[kSlotManifestBytes];
  is.read(reinterpret_cast<char*>(buf), sizeof(buf));
  if (static_cast<size_t>(is.gcount()) != sizeof(buf)) return false;
  if (std::memcmp(buf, kSlotManifestMagic, sizeof(kSlotManifestMagic)) != 0) {
    return false;
  }
  if (LoadU32(buf + 8) != kSlotManifestVersion) return false;
  if (LoadU32(buf + 24) != Crc32c(buf, 24)) return false;
  const uint32_t slot = LoadU32(buf + 12);
  if (slot > 1) return false;
  *active = static_cast<int>(slot);
  *seq = LoadU64(buf + 16);
  return true;
}

}  // namespace

bool IsDirectory(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
#else
  (void)path;
  return false;
#endif
}

bool IsStoreFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  char magic[sizeof(kStoreMagic)];
  is.read(magic, sizeof(magic));
  return static_cast<size_t>(is.gcount()) == sizeof(magic) &&
         std::memcmp(magic, kStoreMagic, sizeof(magic)) == 0;
}

Result<DualSlotStore> DualSlotStore::Open(const std::string& dir) {
  if (!IsDirectory(dir)) {
#if defined(__unix__) || defined(__APPLE__)
    if (::mkdir(dir.c_str(), 0755) != 0 && !IsDirectory(dir)) {
      return Status::IOError("cannot open or create slot directory: " + dir);
    }
#else
    return Status::IOError("dual-slot store requires POSIX: " + dir);
#endif
  }

  DualSlotStore store;
  store.dir_ = dir;
  uint64_t corrupt_slots = 0;
  for (int s = 0; s < 2; ++s) {
    store.slot_path_[s] = dir + "/" + kSlotFileName[s];
    // A slot file that exists but fails the probe below is a detected
    // corruption (torn write, bit flip) — distinct from a slot that was
    // simply never written.
    const bool exists = std::ifstream(store.slot_path_[s]).good();
    // Full probe: header + manifest + every section CRC. Opening a slot
    // directory is a reload-frequency operation, not a decode-frequency
    // one, so paying the checksum pass here is what buys "a corrupt slot
    // is never selected".
    auto reader = ModelStoreReader::Open(store.slot_path_[s]);
    if (!reader.ok() || !reader.value().VerifyAllSections().ok()) {
      if (exists) ++corrupt_slots;
      continue;
    }
    store.slot_valid_[s] = true;
    store.slot_seq_[s] = reader.value().sequence_number();
  }

  int hint_active = -1;
  uint64_t hint_seq = 0;
  ReadManifestHint(dir + "/" + kManifestFileName, &hint_active, &hint_seq);

  if (store.slot_valid_[0] && store.slot_valid_[1]) {
    if (store.slot_seq_[0] != store.slot_seq_[1]) {
      store.active_ = store.slot_seq_[0] > store.slot_seq_[1] ? 0 : 1;
    } else {
      // Equal sequences should not happen under the publish protocol;
      // honor the hint if it points at a valid slot, else prefer A.
      store.active_ = hint_active >= 0 ? hint_active : 0;
    }
  } else if (store.slot_valid_[0] || store.slot_valid_[1]) {
    store.active_ = store.slot_valid_[0] ? 0 : 1;
  }

  // Observability (obs/metrics.h): failures the failsafe absorbed. A
  // corrupt slot counts as "survived" only when a model is still served;
  // a fallback open is one where the probe overruled the manifest — the
  // manifest exists but is torn/unreadable, or it points away from the
  // slot that actually wins.
  if (store.has_model()) {
    obs::Registry& reg = obs::Registry::Global();
    if (corrupt_slots != 0) {
      reg.GetCounter("store.crc_failures_survived")->Add(corrupt_slots);
    }
    const bool manifest_exists =
        std::ifstream(dir + "/" + kManifestFileName).good();
    if ((manifest_exists && hint_active < 0) ||
        (hint_active >= 0 && store.active_ != hint_active)) {
      reg.GetCounter("store.fallback_opens")->Add();
    }
  }
  return store;
}

Status DualSlotStore::CommitManifest(int slot, uint64_t sequence) {
  unsigned char buf[kSlotManifestBytes];
  std::memcpy(buf, kSlotManifestMagic, sizeof(kSlotManifestMagic));
  StoreU32(buf + 8, kSlotManifestVersion);
  StoreU32(buf + 12, static_cast<uint32_t>(slot));
  StoreU64(buf + 16, sequence);
  StoreU32(buf + 24, Crc32c(buf, 24));
  return util::AtomicWriteFile(dir_ + "/" + kManifestFileName, buf,
                               sizeof(buf));
}

}  // namespace dhmm::store
