// Tests for the second extension wave: DPP marginal kernels, chain
// diagnostics, and the Gaussian-mixture emission family.
#include <cmath>
#include <memory>
#include <sstream>

#include <gtest/gtest.h>

#include "dpp/marginal.h"
#include "linalg/eigen_sym.h"
#include "dpp/sampling.h"
#include "hmm/diagnostics.h"
#include "hmm/model.h"
#include "hmm/sampler.h"
#include "hmm/serialization.h"
#include "hmm/trainer.h"
#include "prob/gmm_emission.h"
#include "prob/rng.h"

namespace dhmm {
namespace {

linalg::Matrix RandomPsd(size_t n, uint64_t seed, double ridge = 0.2) {
  prob::Rng rng(seed);
  linalg::Matrix g(n, n);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < n; ++j) g(i, j) = rng.Gaussian();
  linalg::Matrix l = g.MatMul(g.Transposed());
  for (size_t i = 0; i < n; ++i) l(i, i) += ridge;
  return l;
}

// ---------------------------------------------------------- DPP marginal ---

TEST(DppMarginalTest, IdentityLGivesHalfInclusion) {
  // L = I: K = I (I + I)^{-1} = I/2; every item included with prob 1/2.
  linalg::Matrix l = linalg::Matrix::Identity(4);
  linalg::Vector p = dpp::InclusionProbabilities(l);
  for (size_t i = 0; i < 4; ++i) EXPECT_NEAR(p[i], 0.5, 1e-12);
  EXPECT_NEAR(dpp::ExpectedCardinality(l), 2.0, 1e-12);
}

TEST(DppMarginalTest, MarginalKernelEigenvalueMap) {
  // K and L share eigenvectors with eigenvalue map lambda -> lambda/(1+lambda).
  linalg::Matrix l = RandomPsd(5, 1);
  linalg::Matrix k = dpp::MarginalKernel(l);
  linalg::SymmetricEigen le(l), ke(k);
  for (size_t i = 0; i < 5; ++i) {
    double lam = std::max(le.eigenvalues()[i], 0.0);
    EXPECT_NEAR(ke.eigenvalues()[i], lam / (1.0 + lam), 1e-8);
  }
}

TEST(DppMarginalTest, InclusionMatchesSampling) {
  linalg::Matrix l = RandomPsd(4, 2, 0.5);
  linalg::Vector p = dpp::InclusionProbabilities(l);
  prob::Rng rng(3);
  linalg::Vector counts(4);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    for (size_t item : dpp::SampleDpp(l, rng)) counts[item] += 1.0;
  }
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(counts[i] / trials, p[i], 0.02) << "item " << i;
  }
}

TEST(DppMarginalTest, PairInclusionShowsRepulsion) {
  // P(i, j both in Y) <= P(i) P(j): negative association.
  linalg::Matrix l = RandomPsd(5, 4, 0.5);
  linalg::Matrix k = dpp::MarginalKernel(l);
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = i + 1; j < 5; ++j) {
      double pij = dpp::PairInclusionProbability(k, i, j);
      EXPECT_LE(pij, k(i, i) * k(j, j) + 1e-12);
      EXPECT_GE(pij, -1e-12);
    }
  }
}

TEST(DppMarginalTest, DppLogProbNormalizes) {
  // Sum of P(Y) over all subsets of a 4-item ground set is 1.
  linalg::Matrix l = RandomPsd(4, 5, 0.3);
  double total = 0.0;
  for (int mask = 0; mask < 16; ++mask) {
    std::vector<size_t> subset;
    for (size_t i = 0; i < 4; ++i) {
      if (mask & (1 << i)) subset.push_back(i);
    }
    total += std::exp(dpp::DppLogProb(l, subset));
  }
  EXPECT_NEAR(total, 1.0, 1e-8);
}

TEST(DppMarginalTest, ExpectedCardinalityMatchesSampling) {
  linalg::Matrix l = RandomPsd(6, 6, 0.4);
  double expected = dpp::ExpectedCardinality(l);
  prob::Rng rng(7);
  double total = 0.0;
  const int trials = 10000;
  for (int t = 0; t < trials; ++t) {
    total += static_cast<double>(dpp::SampleDpp(l, rng).size());
  }
  EXPECT_NEAR(total / trials, expected, 0.08);
}

// ------------------------------------------------------------ Diagnostics ---

TEST(DiagnosticsTest, StationaryOfSymmetricChainIsUniform) {
  linalg::Matrix a{{0.5, 0.3, 0.2}, {0.2, 0.5, 0.3}, {0.3, 0.2, 0.5}};
  // Doubly stochastic: stationary distribution is uniform.
  auto r = hmm::StationaryDistribution(a);
  ASSERT_TRUE(r.ok());
  const linalg::Vector& pi = r.value();
  for (size_t i = 0; i < 3; ++i) EXPECT_NEAR(pi[i], 1.0 / 3.0, 1e-8);
}

TEST(DiagnosticsTest, StationarySatisfiesFixedPoint) {
  prob::Rng rng(8);
  linalg::Matrix a = rng.RandomStochasticMatrix(6, 6, 1.2);
  auto r = hmm::StationaryDistribution(a);
  ASSERT_TRUE(r.ok());
  const linalg::Vector& pi = r.value();
  // pi A = pi.
  for (size_t j = 0; j < 6; ++j) {
    double s = 0.0;
    for (size_t i = 0; i < 6; ++i) s += pi[i] * a(i, j);
    EXPECT_NEAR(s, pi[j], 1e-6);
  }
}

TEST(DiagnosticsTest, StationaryMatchesEmpiricalVisitFrequencies) {
  prob::Rng rng(9);
  linalg::Matrix a{{0.9, 0.1}, {0.3, 0.7}};
  auto r = hmm::StationaryDistribution(a);
  ASSERT_TRUE(r.ok());
  const linalg::Vector& pi = r.value();
  // Analytic: pi = (0.75, 0.25); the damping term biases by O(damping).
  EXPECT_NEAR(pi[0], 0.75, 1e-7);
  EXPECT_NEAR(pi[1], 0.25, 1e-7);
}

TEST(DiagnosticsTest, EntropyBasics) {
  EXPECT_NEAR(hmm::Entropy(linalg::Vector{1.0, 0.0}), 0.0, 1e-12);
  EXPECT_NEAR(hmm::Entropy(linalg::Vector{0.5, 0.5}), std::log(2.0), 1e-12);
}

TEST(DiagnosticsTest, EntropyRateBounds) {
  prob::Rng rng(10);
  linalg::Matrix a = rng.RandomStochasticMatrix(4, 4, 1.0);
  auto h = hmm::EntropyRate(a);
  ASSERT_TRUE(h.ok());
  EXPECT_GE(h.value(), 0.0);
  EXPECT_LE(h.value(), std::log(4.0) + 1e-12);
  // Deterministic cycle has zero entropy rate.
  linalg::Matrix cycle{{0.0, 1.0}, {1.0, 0.0}};
  auto hc = hmm::EntropyRate(cycle);
  ASSERT_TRUE(hc.ok());
  EXPECT_NEAR(hc.value(), 0.0, 1e-6);
}

TEST(DiagnosticsTest, CollapseGapZeroForStaticMixture) {
  // All rows identical -> gap 0 (the paper's degenerate case).
  linalg::Matrix collapsed(3, 3);
  for (size_t i = 0; i < 3; ++i) {
    collapsed(i, 0) = 0.2;
    collapsed(i, 1) = 0.5;
    collapsed(i, 2) = 0.3;
  }
  auto gap = hmm::MixtureCollapseGap(collapsed);
  ASSERT_TRUE(gap.ok());
  EXPECT_NEAR(gap.value(), 0.0, 1e-6);
  // A strongly state-dependent chain has a large gap.
  linalg::Matrix peaked{{0.98, 0.01, 0.01},
                        {0.01, 0.98, 0.01},
                        {0.01, 0.01, 0.98}};
  auto peaked_gap = hmm::MixtureCollapseGap(peaked);
  ASSERT_TRUE(peaked_gap.ok());
  EXPECT_GT(peaked_gap.value(), 0.5);
}

// ------------------------------------------------------------ GmmEmission ---

TEST(GmmEmissionTest, SingleComponentMatchesGaussian) {
  prob::GmmEmission gmm(linalg::Matrix(1, 1, 1.0), linalg::Matrix{{2.0}},
                        linalg::Matrix{{0.5}});
  // Compare against the closed-form normal density.
  double z = (3.0 - 2.0) / 0.5;
  double expected = -0.5 * z * z - std::log(0.5) -
                    0.5 * std::log(2.0 * M_PI);
  EXPECT_NEAR(gmm.LogProb(0, 3.0), expected, 1e-12);
}

TEST(GmmEmissionTest, MixtureDensityIsWeightedSum) {
  prob::GmmEmission gmm(linalg::Matrix{{0.3, 0.7}},
                        linalg::Matrix{{0.0, 4.0}},
                        linalg::Matrix{{1.0, 1.0}});
  double d0 = std::exp(-0.5 * 1.0) / std::sqrt(2.0 * M_PI);   // N(1;0,1)
  double d1 = std::exp(-0.5 * 9.0) / std::sqrt(2.0 * M_PI);   // N(1;4,1)
  EXPECT_NEAR(std::exp(gmm.LogProb(0, 1.0)), 0.3 * d0 + 0.7 * d1, 1e-12);
}

TEST(GmmEmissionTest, EmSeparatesBimodalData) {
  // One state, two components; data from a clear 0/10 bimodal mixture.
  prob::GmmEmission gmm(linalg::Matrix(1, 2, 0.5),
                        linalg::Matrix{{2.0, 7.0}},
                        linalg::Matrix{{2.0, 2.0}});
  prob::Rng rng(11);
  for (int iter = 0; iter < 30; ++iter) {
    prob::Rng data_rng(100);  // same data each sweep
    gmm.BeginAccumulate();
    for (int n = 0; n < 2000; ++n) {
      double y = data_rng.Bernoulli(0.4) ? data_rng.Gaussian(0.0, 0.5)
                                         : data_rng.Gaussian(10.0, 0.5);
      gmm.Accumulate(y, linalg::Vector{1.0});
    }
    gmm.FinishAccumulate();
  }
  (void)rng;
  double lo = std::min(gmm.mu()(0, 0), gmm.mu()(0, 1));
  double hi = std::max(gmm.mu()(0, 0), gmm.mu()(0, 1));
  EXPECT_NEAR(lo, 0.0, 0.2);
  EXPECT_NEAR(hi, 10.0, 0.2);
  // Weight of the low component ~0.4.
  double w_lo = gmm.mu()(0, 0) < gmm.mu()(0, 1) ? gmm.weights()(0, 0)
                                                : gmm.weights()(0, 1);
  EXPECT_NEAR(w_lo, 0.4, 0.05);
}

TEST(GmmEmissionTest, SampleMomentsMatch) {
  prob::GmmEmission gmm(linalg::Matrix{{0.5, 0.5}},
                        linalg::Matrix{{-2.0, 2.0}},
                        linalg::Matrix{{0.5, 0.5}});
  prob::Rng rng(12);
  double sum = 0.0, sumsq = 0.0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    double y = gmm.Sample(0, rng);
    sum += y;
    sumsq += y * y;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  // Var = E[y^2] = 0.25 + 4 = 4.25.
  EXPECT_NEAR(sumsq / n, 4.25, 0.1);
}

TEST(GmmEmissionTest, SaveLoadRoundTrip) {
  prob::GmmEmission gmm(linalg::Matrix{{0.25, 0.75}},
                        linalg::Matrix{{1.0, 5.0}},
                        linalg::Matrix{{0.3, 0.6}});
  std::stringstream ss;
  ASSERT_TRUE(gmm.Save(ss).ok());
  auto r = prob::GmmEmission::Load(ss);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value().weights()(0, 1), 0.75, 1e-15);
  EXPECT_NEAR(r.value().mu()(0, 1), 5.0, 1e-15);
  EXPECT_NEAR(r.value().sigma()(0, 0), 0.3, 1e-15);
}

TEST(GmmEmissionTest, WorksInsideHmmEm) {
  // Full-stack: HMM whose states have bimodal emissions; EM with the GMM
  // family must improve the likelihood and run to convergence.
  prob::Rng rng(13);
  hmm::HmmModel<double> truth(
      linalg::Vector{0.5, 0.5}, linalg::Matrix{{0.85, 0.15}, {0.2, 0.8}},
      std::make_unique<prob::GmmEmission>(
          linalg::Matrix{{0.5, 0.5}, {0.5, 0.5}},
          linalg::Matrix{{0.0, 3.0}, {8.0, 11.0}},
          linalg::Matrix{{0.4, 0.4}, {0.4, 0.4}}));
  hmm::Dataset<double> data = hmm::SampleDataset(truth, 120, 15, rng);

  // GMM-inside-HMM EM is init-sensitive; use a few restarts and keep the
  // best, as any practical pipeline would.
  double best_ll = -std::numeric_limits<double>::infinity();
  double best_gain = -std::numeric_limits<double>::infinity();
  for (uint64_t seed = 14; seed < 18; ++seed) {
    prob::Rng init_rng(seed);
    hmm::HmmModel<double> model(
        init_rng.DirichletSymmetric(2, 3.0),
        init_rng.RandomStochasticMatrix(2, 2, 3.0),
        std::make_unique<prob::GmmEmission>(
            prob::GmmEmission::RandomInit(2, 2, init_rng, 0.0, 11.0)));
    double before = hmm::DatasetLogLikelihood(model, data);
    hmm::EmOptions em;
    em.max_iters = 40;
    hmm::EmResult r = hmm::FitEm(&model, data, em);
    best_ll = std::max(best_ll, r.final_loglik);
    best_gain = std::max(best_gain, r.final_loglik - before);
  }
  EXPECT_GT(best_gain, 0.0);
  // The best restart's likelihood should approach the truth's.
  double truth_ll = hmm::DatasetLogLikelihood(truth, data);
  EXPECT_GT(best_ll, truth_ll - 0.05 * std::fabs(truth_ll));
}

TEST(GmmEmissionTest, GmmModelSerializationRoundTrip) {
  prob::Rng rng(15);
  hmm::HmmModel<double> m(
      rng.DirichletSymmetric(2, 2.0), rng.RandomStochasticMatrix(2, 2, 2.0),
      std::make_unique<prob::GmmEmission>(
          prob::GmmEmission::RandomInit(2, 3, rng)));
  std::stringstream ss;
  ASSERT_TRUE(hmm::SaveHmm(m, ss).ok());
  auto r = hmm::LoadHmm<double>(ss);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().emission->TypeName(), "gmm");
  hmm::Dataset<double> data = hmm::SampleDataset(m, 4, 5, rng);
  EXPECT_NEAR(hmm::DatasetLogLikelihood(r.value(), data),
              hmm::DatasetLogLikelihood(m, data), 1e-9);
}

}  // namespace
}  // namespace dhmm
