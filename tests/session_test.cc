// The train→serve-loop contract (the PR-7 counterpart of the serve-layer
// tests):
//  - incremental EM: one AccumulateBatch over the full dataset followed by
//    Step() reproduces one hmm::FitEm iteration bitwise — and tiling the
//    dataset into ordered mini-batches changes nothing — for the ML and
//    the DPP-diversified transition update, for every thread count,
//  - SessionManager full-lag decodes and running log-likelihoods are
//    bitwise equal to offline PosteriorDecode / LogLikelihood for every
//    pusher-thread count,
//  - steady-state Push and a warm CreateSession / DestroySession cycle
//    make zero heap allocations (instrumented operator new),
//  - generation-stamped handles: a destroyed session's handle resolves
//    NotFound everywhere, and EvictIdle never touches a session whose
//    push is still in flight,
//  - the closed loop: live session posteriors feed the trainer, Step()
//    improves the dataset log-likelihood, and the snapshot hot-swaps into
//    the manager.
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <new>
#include <ostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/incremental_em.h"
#include "core/transition_update.h"
#include "hmm/inference.h"
#include "hmm/model.h"
#include "hmm/posterior_decoding.h"
#include "hmm/sampler.h"
#include "hmm/sequence.h"
#include "hmm/trainer.h"
#include "prob/gaussian_emission.h"
#include "prob/rng.h"
#include "serve/session_manager.h"

// ----------------------------------------------------- allocation counter ---

// Global operator new instrumentation: every heap allocation made anywhere
// in this binary bumps the counter, so a zero delta across a call proves
// the call is allocation-free (see serve_test.cc for the same pattern).
namespace {
std::atomic<long> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dhmm {
namespace {

std::shared_ptr<const hmm::HmmModel<double>> MakeModel(size_t k,
                                                       uint64_t seed) {
  prob::Rng rng(seed);
  linalg::Vector mu(k);
  linalg::Vector sigma(k, 0.8);
  for (size_t i = 0; i < k; ++i) mu[i] = static_cast<double>(i);
  return std::make_shared<const hmm::HmmModel<double>>(
      rng.DirichletSymmetric(k, 2.0), rng.RandomStochasticMatrix(k, k, 2.0),
      std::make_unique<prob::GaussianEmission>(mu, sigma));
}

hmm::Dataset<double> MakeData(const hmm::HmmModel<double>& model,
                              size_t count, size_t length, uint64_t seed) {
  prob::Rng rng(seed);
  return hmm::SampleDataset(model, count, length, rng);
}

void ExpectModelsBitwiseEqual(const hmm::HmmModel<double>& x,
                              const hmm::HmmModel<double>& y,
                              const std::vector<double>& probe) {
  ASSERT_EQ(x.num_states(), y.num_states());
  const size_t k = x.num_states();
  for (size_t i = 0; i < k; ++i) EXPECT_EQ(x.pi[i], y.pi[i]);
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) EXPECT_EQ(x.a(i, j), y.a(i, j));
  }
  // Family-agnostic bitwise emission comparison: identical parameters
  // produce identical log-probability tables on any probe sequence.
  const linalg::Matrix bx = x.emission->LogProbTable(probe);
  const linalg::Matrix by = y.emission->LogProbTable(probe);
  for (size_t t = 0; t < probe.size(); ++t) {
    for (size_t i = 0; i < k; ++i) EXPECT_EQ(bx(t, i), by(t, i));
  }
}

// ---------------------------------------------------- incremental EM (ML) ---

TEST(IncrementalEmTest, MiniBatchRoundsReproduceFitEmBitwise) {
  auto init = MakeModel(4, 71);
  hmm::Dataset<double> data = MakeData(*init, 8, 19, 72);
  const std::vector<double>& probe = data[0].obs;
  constexpr int kRounds = 3;

  for (int threads : {1, 3}) {
    for (double alpha : {0.0, 0.5}) {
      // Reference: hmm::FitEm, with the paper's DPP transition update
      // injected through the persistent workspace when alpha > 0 (the
      // FitDiversifiedHmm wiring). tol = 0 disables early convergence so
      // exactly kRounds iterations run.
      core::IncrementalEmOptions io;
      io.alpha = alpha;
      io.num_threads = threads;
      core::TransitionUpdateOptions uo;
      uo.alpha = io.alpha;
      uo.rho = io.rho;
      uo.ascent = io.ascent;
      uo.row_floor = io.row_floor;
      core::TransitionUpdateWorkspace ws;
      core::TransitionUpdateResult res;
      hmm::EmOptions em;
      em.max_iters = kRounds;
      em.tol = 0.0;
      em.num_threads = threads;
      if (alpha > 0.0) {
        em.transition_m_step = [&](const linalg::Matrix& counts,
                                   linalg::Matrix* a) {
          core::UpdateTransitions(*a, counts, uo, &ws, &res);
          std::swap(*a, res.a);
        };
      }
      hmm::HmmModel<double> ref(*init);
      const hmm::EmResult ref_result = hmm::FitEm(&ref, data, em);
      ASSERT_EQ(ref_result.iterations, kRounds);

      // Trainer: the same rounds as ordered mini-batches. Tiling the
      // dataset across AccumulateBatch calls must leave the statistics —
      // and therefore the fit — bitwise unchanged.
      core::IncrementalEmTrainer<double> trainer(init, io);
      for (int round = 0; round < kRounds; ++round) {
        hmm::Dataset<double> tile_a(data.begin(), data.begin() + 3);
        hmm::Dataset<double> tile_b(data.begin() + 3, data.begin() + 5);
        hmm::Dataset<double> tile_c(data.begin() + 5, data.end());
        trainer.AccumulateBatch(tile_a);
        trainer.AccumulateBatch(tile_b);
        trainer.AccumulateBatch(tile_c);
        EXPECT_EQ(trainer.round_log_likelihood(),
                  ref_result.loglik_history[static_cast<size_t>(round)]);
        EXPECT_EQ(trainer.frames_accumulated(), 8u * 19u);
        trainer.Step();
      }
      EXPECT_EQ(trainer.steps(), static_cast<uint64_t>(kRounds));
      ExpectModelsBitwiseEqual(*trainer.snapshot(), ref, probe);
    }
  }
}

TEST(IncrementalEmTest, StepWithNothingAccumulatedIsANoOp) {
  auto init = MakeModel(3, 81);
  core::IncrementalEmTrainer<double> trainer(init);
  auto before = trainer.snapshot();
  EXPECT_EQ(trainer.Step().get(), before.get());  // same snapshot pointer
  EXPECT_EQ(trainer.steps(), 0u);
}

TEST(IncrementalEmTest, StepReadyGatesOnAccumulatedFrames) {
  auto init = MakeModel(3, 82);
  hmm::Dataset<double> data = MakeData(*init, 2, 10, 83);
  core::IncrementalEmOptions io;
  io.min_frames_per_step = 15;
  core::IncrementalEmTrainer<double> trainer(init, io);
  EXPECT_FALSE(trainer.StepReady());
  trainer.AccumulateBatch({data[0]});
  EXPECT_FALSE(trainer.StepReady());  // 10 < 15
  trainer.AccumulateBatch({data[1]});
  EXPECT_TRUE(trainer.StepReady());  // 20 >= 15
  trainer.Step();
  EXPECT_FALSE(trainer.StepReady());
}

// ----------------------------------------------------- session decodes ------

TEST(SessionManagerTest, FullLagDecodesMatchOfflineBitwiseForEveryPusherCount) {
  auto model = MakeModel(4, 91);
  const size_t kLen = 14;
  hmm::Dataset<double> data = MakeData(*model, 8, kLen, 92);

  std::vector<std::vector<int>> want_paths;
  std::vector<double> want_loglik;
  for (const auto& seq : data) {
    const linalg::Matrix log_b = model->emission->LogProbTable(seq.obs);
    want_paths.push_back(hmm::PosteriorDecode(model->pi, model->a, log_b));
    want_loglik.push_back(hmm::LogLikelihood(model->pi, model->a, log_b));
  }

  for (int pushers : {1, 4}) {
    serve::SessionManagerOptions opts;
    opts.lag = kLen;  // full lag: everything flushes at Finish
    serve::SessionManager<double> mgr(model, opts);

    std::vector<serve::SessionHandle> handles(data.size());
    for (size_t s = 0; s < data.size(); ++s) {
      auto created = mgr.CreateSession();
      ASSERT_TRUE(created.ok());
      handles[s] = created.value();
    }
    EXPECT_EQ(mgr.live_sessions(), data.size());

    // One pusher owns each session end-to-end (the per-stream single-pusher
    // contract); distinct sessions push concurrently.
    std::vector<std::vector<int>> got_paths(data.size());
    std::vector<int> push_failures{0};
    std::mutex fail_mu;
    std::vector<std::thread> threads;
    for (int tid = 0; tid < pushers; ++tid) {
      threads.emplace_back([&, tid] {
        for (size_t s = static_cast<size_t>(tid); s < data.size();
             s += static_cast<size_t>(pushers)) {
          for (const double y : data[s].obs) {
            int label = -2;
            const Status st = mgr.Push(handles[s], y, &label);
            if (!st.ok() || label != -1) {  // full lag: no label until Finish
              std::lock_guard<std::mutex> lock(fail_mu);
              ++push_failures[0];
            }
          }
          const Status st = mgr.Finish(handles[s], &got_paths[s]);
          if (!st.ok()) {
            std::lock_guard<std::mutex> lock(fail_mu);
            ++push_failures[0];
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(push_failures[0], 0);

    for (size_t s = 0; s < data.size(); ++s) {
      EXPECT_EQ(got_paths[s], want_paths[s]) << "sequence " << s;
      auto ll = mgr.LogLikelihood(handles[s]);
      ASSERT_TRUE(ll.ok());
      EXPECT_EQ(ll.value(), want_loglik[s]);  // bitwise
      auto frames = mgr.FramesPushed(handles[s]);
      ASSERT_TRUE(frames.ok());
      EXPECT_EQ(frames.value(), kLen);
    }
  }
}

TEST(SessionManagerTest, ResetSessionRestartsAStreamInPlace) {
  auto model = MakeModel(3, 95);
  hmm::Dataset<double> data = MakeData(*model, 1, 9, 96);
  serve::SessionManagerOptions opts;
  opts.lag = data[0].obs.size();
  serve::SessionManager<double> mgr(model, opts);
  auto created = mgr.CreateSession();
  ASSERT_TRUE(created.ok());
  const serve::SessionHandle h = created.value();

  const linalg::Matrix log_b = model->emission->LogProbTable(data[0].obs);
  const std::vector<int> want =
      hmm::PosteriorDecode(model->pi, model->a, log_b);

  for (int run = 0; run < 2; ++run) {
    int label;
    for (const double y : data[0].obs) ASSERT_TRUE(mgr.Push(h, y, &label).ok());
    std::vector<int> got;
    ASSERT_TRUE(mgr.Finish(h, &got).ok());
    EXPECT_EQ(got, want);
    // A finished stream rejects further pushes until the reset.
    EXPECT_EQ(mgr.Push(h, 0.0, &label).code(),
              StatusCode::kFailedPrecondition);
    ASSERT_TRUE(mgr.ResetSession(h).ok());
    auto frames = mgr.FramesPushed(h);
    ASSERT_TRUE(frames.ok());
    EXPECT_EQ(frames.value(), 0u);
  }
}

// ------------------------------------------------------- allocation-free ----

TEST(SessionManagerTest, SteadyStatePushAndCreateDestroyAreAllocationFree) {
  auto model = MakeModel(4, 101);
  hmm::Dataset<double> data = MakeData(*model, 1, 64, 102);
  serve::SessionManagerOptions opts;
  opts.lag = 4;
  opts.sessions_per_slab = 8;
  opts.arena_blocks_per_slab = 8;
  serve::SessionManager<double> mgr(model, opts);

  // Warm-up: reach the pool's and the arena's high-water marks, including
  // the recycled-slot free list, and run a few pushes so every grow-only
  // buffer has seen its working size.
  auto a = mgr.CreateSession();
  auto b = mgr.CreateSession();
  ASSERT_TRUE(a.ok() && b.ok());
  int label;
  for (size_t t = 0; t < 8; ++t) {
    ASSERT_TRUE(mgr.Push(a.value(), data[0].obs[t], &label).ok());
    ASSERT_TRUE(mgr.Push(b.value(), data[0].obs[t], &label).ok());
  }
  ASSERT_TRUE(mgr.DestroySession(b.value()).ok());  // seeds the free list

  const long before = g_alloc_count.load(std::memory_order_relaxed);

  // Steady-state pushes on a warm session.
  Status push_st = Status::OK();
  for (size_t t = 8; t < 40; ++t) {
    const Status st = mgr.Push(a.value(), data[0].obs[t], &label);
    if (!st.ok()) push_st = st;
  }
  // A full create / push / destroy cycle through the recycled slot.
  auto c = mgr.CreateSession();
  Status cycle_st = c.status();
  if (c.ok()) {
    for (size_t t = 0; t < 8; ++t) {
      const Status st = mgr.Push(c.value(), data[0].obs[t], &label);
      if (!st.ok()) cycle_st = st;
    }
    const Status st = mgr.DestroySession(c.value());
    if (!st.ok()) cycle_st = st;
  }

  const long after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_TRUE(push_st.ok()) << push_st.message();
  EXPECT_TRUE(cycle_st.ok()) << cycle_st.message();
  EXPECT_EQ(after - before, 0) << "steady-state session traffic allocated";
}

// ----------------------------------------------- handles, eviction, races ---

TEST(SessionManagerTest, StaleHandleResolvesNotFoundEverywhere) {
  auto model = MakeModel(3, 111);
  serve::SessionManager<double> mgr(model);
  auto created = mgr.CreateSession();
  ASSERT_TRUE(created.ok());
  const serve::SessionHandle h = created.value();
  ASSERT_TRUE(mgr.DestroySession(h).ok());

  int label;
  std::vector<int> tail;
  EXPECT_EQ(mgr.Push(h, 0.5, &label).code(), StatusCode::kNotFound);
  EXPECT_EQ(mgr.Finish(h, &tail).code(), StatusCode::kNotFound);
  EXPECT_EQ(mgr.ResetSession(h).code(), StatusCode::kNotFound);
  EXPECT_EQ(mgr.DestroySession(h).code(), StatusCode::kNotFound);
  EXPECT_EQ(mgr.LogLikelihood(h).code(), StatusCode::kNotFound);
  EXPECT_EQ(mgr.FramesPushed(h).code(), StatusCode::kNotFound);
  EXPECT_EQ(mgr.SessionStatus(h).code(), StatusCode::kNotFound);
  EXPECT_FALSE(mgr.IsLive(h));
  EXPECT_FALSE(mgr.IsLive(serve::kInvalidSessionHandle));

  // The recycled slot's new handle carries a fresh generation, so the old
  // handle stays dead even while the slot is live again.
  auto recreated = mgr.CreateSession();
  ASSERT_TRUE(recreated.ok());
  EXPECT_NE(recreated.value(), h);
  EXPECT_FALSE(mgr.IsLive(h));
  EXPECT_TRUE(mgr.IsLive(recreated.value()));
}

// Emission wrapper whose state-0 LogProb can be made to block: armed, the
// next evaluation parks on a condition variable until the test releases
// it, which pins a Push in its in-flight window for as long as the test
// needs.
struct Gate {
  std::mutex m;
  std::condition_variable cv;
  bool armed = false;
  bool blocked = false;
  bool release = false;
};

class GateEmission : public prob::EmissionModel<double> {
 public:
  GateEmission(std::unique_ptr<prob::EmissionModel<double>> inner, Gate* gate)
      : inner_(std::move(inner)), gate_(gate) {}

  size_t num_states() const override { return inner_->num_states(); }

  double LogProb(size_t state, const double& y) const override {
    if (state == 0) MaybeBlock();
    return inner_->LogProb(state, y);
  }

  double Sample(size_t state, prob::Rng& rng) const override {
    return inner_->Sample(state, rng);
  }

  void BeginAccumulate() override { inner_->BeginAccumulate(); }
  void Accumulate(const double& y, const linalg::Vector& q) override {
    inner_->Accumulate(y, q);
  }
  void FinishAccumulate() override { inner_->FinishAccumulate(); }

  std::unique_ptr<prob::EmissionModel<double>> Clone() const override {
    return std::make_unique<GateEmission>(inner_->Clone(), gate_);
  }

  std::string TypeName() const override { return inner_->TypeName(); }
  Status Save(std::ostream& os) const override { return inner_->Save(os); }

 private:
  void MaybeBlock() const {
    std::unique_lock<std::mutex> lock(gate_->m);
    if (!gate_->armed) return;
    gate_->armed = false;  // block exactly one evaluation
    gate_->blocked = true;
    gate_->cv.notify_all();
    gate_->cv.wait(lock, [&] { return gate_->release; });
  }

  std::unique_ptr<prob::EmissionModel<double>> inner_;
  Gate* gate_;
};

TEST(SessionManagerTest, EvictIdleSkipsSessionsWithAnInFlightPush) {
  const size_t k = 3;
  prob::Rng rng(121);
  linalg::Vector mu(k);
  linalg::Vector sigma(k, 0.8);
  for (size_t i = 0; i < k; ++i) mu[i] = static_cast<double>(i);
  Gate gate;
  auto model = std::make_shared<const hmm::HmmModel<double>>(
      rng.DirichletSymmetric(k, 2.0), rng.RandomStochasticMatrix(k, k, 2.0),
      std::make_unique<GateEmission>(
          std::make_unique<prob::GaussianEmission>(mu, sigma), &gate));

  serve::SessionManagerOptions opts;
  opts.lag = 2;
  serve::SessionManager<double> mgr(model, opts);
  auto a = mgr.CreateSession();
  auto b = mgr.CreateSession();
  ASSERT_TRUE(a.ok() && b.ok());

  int label;
  ASSERT_TRUE(mgr.Push(a.value(), 0.4, &label).ok());  // gate unarmed: passes

  // Arm the gate, then park a push on B inside its numeric body.
  {
    std::lock_guard<std::mutex> lock(gate.m);
    gate.armed = true;
  }
  Status b_push = Status::Internal("push never ran");
  std::thread pusher([&] {
    int blocked_label;
    b_push = mgr.Push(b.value(), 0.7, &blocked_label);
  });
  {
    std::unique_lock<std::mutex> lock(gate.m);
    gate.cv.wait(lock, [&] { return gate.blocked; });
  }

  // Both sessions are older than the cutoff, but B's push is in flight:
  // the sweep must evict A and leave B untouched.
  EXPECT_EQ(mgr.EvictIdle(mgr.tick() + 1), 1u);
  EXPECT_FALSE(mgr.IsLive(a.value()));
  EXPECT_TRUE(mgr.IsLive(b.value()));

  // And a destroy racing the in-flight push is refused with a typed error.
  EXPECT_EQ(mgr.DestroySession(b.value()).code(),
            StatusCode::kFailedPrecondition);

  {
    std::lock_guard<std::mutex> lock(gate.m);
    gate.release = true;
  }
  gate.cv.notify_all();
  pusher.join();
  EXPECT_TRUE(b_push.ok()) << b_push.message();

  // With the push drained, the same sweep reaps B.
  EXPECT_EQ(mgr.EvictIdle(mgr.tick() + 1), 1u);
  EXPECT_EQ(mgr.live_sessions(), 0u);
}

// -------------------------------------------------------- the closed loop ---

TEST(SessionManagerTest, LiveSessionPosteriorsDriveAnImprovingHotSwap) {
  // Ground truth with well-separated states; serving starts from a
  // perturbed initializer.
  const size_t k = 3;
  auto make = [&](std::vector<double> mus, double sig,
                  uint64_t seed) -> std::shared_ptr<const hmm::HmmModel<double>> {
    prob::Rng rng(seed);
    linalg::Vector mu(k);
    linalg::Vector sigma(k, sig);
    for (size_t i = 0; i < k; ++i) mu[i] = mus[i];
    return std::make_shared<const hmm::HmmModel<double>>(
        rng.DirichletSymmetric(k, 2.0),
        rng.RandomStochasticMatrix(k, k, 2.0),
        std::make_unique<prob::GaussianEmission>(mu, sigma));
  };
  auto truth = make({0.0, 4.0, 8.0}, 0.7, 131);
  auto init = make({0.5, 3.0, 9.0}, 1.2, 132);
  hmm::Dataset<double> data = MakeData(*truth, 6, 40, 133);

  core::IncrementalEmTrainer<double> trainer(init);
  serve::SessionManagerOptions opts;
  opts.lag = 6;  // labels (and posteriors) flow during Push
  serve::SessionManager<double> mgr(init, opts);
  mgr.AttachTrainer(&trainer);
  EXPECT_EQ(mgr.model_version(), 1u);

  for (const auto& seq : data) {
    auto created = mgr.CreateSession();
    ASSERT_TRUE(created.ok());
    int label;
    for (const double y : seq.obs) {
      ASSERT_TRUE(mgr.Push(created.value(), y, &label).ok());
    }
  }
  EXPECT_GT(trainer.frames_accumulated(), 0u);

  auto stepped = trainer.Step();
  ASSERT_NE(stepped, nullptr);
  EXPECT_GT(hmm::DatasetLogLikelihood(*stepped, data),
            hmm::DatasetLogLikelihood(*init, data));

  // RCU hot-swap: new sessions bind to the stepped snapshot.
  mgr.UpdateModel(stepped);
  EXPECT_EQ(mgr.model_version(), 2u);
  EXPECT_EQ(mgr.ModelSnapshot().get(), stepped.get());
  auto fresh = mgr.CreateSession();
  ASSERT_TRUE(fresh.ok());
  int label;
  EXPECT_TRUE(mgr.Push(fresh.value(), 4.0, &label).ok());
}

}  // namespace
}  // namespace dhmm
