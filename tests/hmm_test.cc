#include <cmath>
#include <memory>
#include <sstream>

#include <gtest/gtest.h>

#include "hmm/diagnostics.h"
#include "hmm/inference.h"
#include "hmm/model.h"
#include "hmm/sampler.h"
#include "hmm/sequence.h"
#include "hmm/serialization.h"
#include "hmm/supervised.h"
#include "hmm/trainer.h"
#include "prob/categorical_emission.h"
#include "prob/gaussian_emission.h"
#include "prob/logsumexp.h"

namespace dhmm::hmm {
namespace {

// Brute-force reference: enumerate all k^T state paths.
struct BruteForce {
  double log_likelihood;
  linalg::Matrix gamma;    // T x k
  linalg::Matrix xi_sum;   // k x k
  std::vector<int> viterbi_path;
  double viterbi_log_joint;
};

BruteForce Enumerate(const linalg::Vector& pi, const linalg::Matrix& a,
                     const linalg::Matrix& log_b) {
  const size_t k = pi.size();
  const size_t big_t = log_b.rows();
  size_t total = 1;
  for (size_t t = 0; t < big_t; ++t) total *= k;

  BruteForce out;
  out.gamma = linalg::Matrix(big_t, k);
  out.xi_sum = linalg::Matrix(k, k);
  out.viterbi_log_joint = prob::kNegInf;
  double z = 0.0;  // sum over paths of exp(logp - shift); two-pass for shift
  std::vector<double> logps(total);
  std::vector<std::vector<int>> paths(total);
  for (size_t code = 0; code < total; ++code) {
    std::vector<int> path(big_t);
    size_t c = code;
    for (size_t t = 0; t < big_t; ++t) {
      path[t] = static_cast<int>(c % k);
      c /= k;
    }
    double lp = std::log(pi[static_cast<size_t>(path[0])]) + log_b(0, path[0]);
    for (size_t t = 1; t < big_t; ++t) {
      lp += std::log(a(static_cast<size_t>(path[t - 1]),
                       static_cast<size_t>(path[t]))) +
            log_b(t, path[t]);
    }
    logps[code] = lp;
    paths[code] = path;
    if (lp > out.viterbi_log_joint) {
      out.viterbi_log_joint = lp;
      out.viterbi_path = path;
    }
  }
  double shift = out.viterbi_log_joint;
  for (size_t code = 0; code < total; ++code) {
    z += std::exp(logps[code] - shift);
  }
  out.log_likelihood = shift + std::log(z);
  for (size_t code = 0; code < total; ++code) {
    double w = std::exp(logps[code] - out.log_likelihood);
    const auto& path = paths[code];
    for (size_t t = 0; t < big_t; ++t) {
      out.gamma(t, static_cast<size_t>(path[t])) += w;
    }
    for (size_t t = 1; t < big_t; ++t) {
      out.xi_sum(static_cast<size_t>(path[t - 1]),
                 static_cast<size_t>(path[t])) += w;
    }
  }
  return out;
}

// Random test fixture pieces.
struct RandomCase {
  linalg::Vector pi;
  linalg::Matrix a;
  linalg::Matrix log_b;
};

RandomCase MakeRandomCase(size_t k, size_t big_t, uint64_t seed,
                          double emission_scale = 2.0) {
  prob::Rng rng(seed);
  RandomCase c;
  c.pi = rng.DirichletSymmetric(k, 1.5);
  c.a = rng.RandomStochasticMatrix(k, k, 1.5);
  c.log_b = linalg::Matrix(big_t, k);
  for (size_t t = 0; t < big_t; ++t) {
    for (size_t i = 0; i < k; ++i) {
      c.log_b(t, i) = -emission_scale * rng.Uniform();
    }
  }
  return c;
}

// ----------------------------------------------------- ForwardBackward ---

class ForwardBackwardBruteForceTest : public ::testing::TestWithParam<int> {};

TEST_P(ForwardBackwardBruteForceTest, MatchesEnumeration) {
  const int param = GetParam();
  size_t k = 2 + static_cast<size_t>(param) % 3;       // 2..4 states
  size_t big_t = 2 + static_cast<size_t>(param) % 5;   // 2..6 frames
  RandomCase c = MakeRandomCase(k, big_t, static_cast<uint64_t>(param) + 1);
  ForwardBackwardResult fb = ForwardBackward(c.pi, c.a, c.log_b);
  BruteForce ref = Enumerate(c.pi, c.a, c.log_b);

  EXPECT_NEAR(fb.log_likelihood, ref.log_likelihood, 1e-9);
  for (size_t t = 0; t < big_t; ++t) {
    for (size_t i = 0; i < k; ++i) {
      EXPECT_NEAR(fb.gamma(t, i), ref.gamma(t, i), 1e-9)
          << "gamma(" << t << "," << i << ")";
    }
  }
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) {
      EXPECT_NEAR(fb.xi_sum(i, j), ref.xi_sum(i, j), 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SmallChains, ForwardBackwardBruteForceTest,
                         ::testing::Range(0, 20));

TEST(ForwardBackwardTest, GammaRowsSumToOne) {
  RandomCase c = MakeRandomCase(5, 30, 99);
  ForwardBackwardResult fb = ForwardBackward(c.pi, c.a, c.log_b);
  for (size_t t = 0; t < 30; ++t) {
    double s = 0.0;
    for (size_t i = 0; i < 5; ++i) s += fb.gamma(t, i);
    EXPECT_NEAR(s, 1.0, 1e-10);
  }
}

TEST(ForwardBackwardTest, XiSumTotalIsTMinusOne) {
  RandomCase c = MakeRandomCase(4, 25, 100);
  ForwardBackwardResult fb = ForwardBackward(c.pi, c.a, c.log_b);
  EXPECT_NEAR(fb.xi_sum.sum(), 24.0, 1e-9);
}

TEST(ForwardBackwardTest, XiMarginalsMatchGamma) {
  // sum_j xi_t(i, j) aggregated over t equals sum_{t<T} gamma_t(i).
  RandomCase c = MakeRandomCase(3, 12, 101);
  ForwardBackwardResult fb = ForwardBackward(c.pi, c.a, c.log_b);
  for (size_t i = 0; i < 3; ++i) {
    double xi_row = 0.0;
    for (size_t j = 0; j < 3; ++j) xi_row += fb.xi_sum(i, j);
    double gamma_sum = 0.0;
    for (size_t t = 0; t + 1 < 12; ++t) gamma_sum += fb.gamma(t, i);
    EXPECT_NEAR(xi_row, gamma_sum, 1e-9);
  }
}

TEST(ForwardBackwardTest, StableUnderExtremeLogProbs) {
  // 128-pixel-Bernoulli-scale log-probs (~ -90) must not underflow.
  RandomCase c = MakeRandomCase(4, 50, 102, /*emission_scale=*/0.0);
  for (size_t t = 0; t < 50; ++t) {
    for (size_t i = 0; i < 4; ++i) {
      c.log_b(t, i) = -90.0 - 10.0 * static_cast<double>(i);
    }
  }
  ForwardBackwardResult fb = ForwardBackward(c.pi, c.a, c.log_b);
  EXPECT_TRUE(std::isfinite(fb.log_likelihood));
  EXPECT_LT(fb.log_likelihood, -4000.0);
}

TEST(ForwardBackwardTest, SingleFrameSequence) {
  RandomCase c = MakeRandomCase(3, 1, 103);
  ForwardBackwardResult fb = ForwardBackward(c.pi, c.a, c.log_b);
  // gamma_0 proportional to pi * b.
  linalg::Vector expected(3);
  double z = 0.0;
  for (size_t i = 0; i < 3; ++i) {
    expected[i] = c.pi[i] * std::exp(c.log_b(0, i));
    z += expected[i];
  }
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(fb.gamma(0, i), expected[i] / z, 1e-12);
  }
  EXPECT_NEAR(fb.log_likelihood, std::log(z), 1e-12);
  EXPECT_NEAR(fb.xi_sum.sum(), 0.0, 1e-15);
}

TEST(ForwardBackwardTest, SingleStateDegenerateChain) {
  // k=1 exercises the kernel layer's shortest rows: gamma must be
  // identically 1 and the likelihood the plain sum of emission rows.
  linalg::Vector pi{1.0};
  linalg::Matrix a{{1.0}};
  linalg::Matrix log_b(5, 1);
  double expected = 0.0;
  for (size_t t = 0; t < 5; ++t) {
    log_b(t, 0) = -0.3 * static_cast<double>(t + 1);
    expected += log_b(t, 0);
  }
  ForwardBackwardResult fb = ForwardBackward(pi, a, log_b);
  EXPECT_NEAR(fb.log_likelihood, expected, 1e-12);
  for (size_t t = 0; t < 5; ++t) EXPECT_DOUBLE_EQ(fb.gamma(t, 0), 1.0);
  EXPECT_DOUBLE_EQ(fb.xi_sum(0, 0), 4.0);
}

TEST(ViterbiTest, SingleFrameDecodesArgmaxOfPiTimesB) {
  RandomCase c = MakeRandomCase(4, 1, 105);
  ViterbiResult v = Viterbi(c.pi, c.a, c.log_b);
  size_t best = 0;
  double best_v = prob::kNegInf;
  for (size_t i = 0; i < 4; ++i) {
    double s = std::log(c.pi[i]) + c.log_b(0, i);
    if (s > best_v) {
      best_v = s;
      best = i;
    }
  }
  ASSERT_EQ(v.path.size(), 1u);
  EXPECT_EQ(v.path[0], static_cast<int>(best));
  EXPECT_NEAR(v.log_joint, best_v, 1e-12);
}

TEST(LogLikelihoodTest, AgreesWithForwardBackward) {
  RandomCase c = MakeRandomCase(4, 17, 104);
  ForwardBackwardResult fb = ForwardBackward(c.pi, c.a, c.log_b);
  EXPECT_NEAR(LogLikelihood(c.pi, c.a, c.log_b), fb.log_likelihood, 1e-10);
}

// ----------------------------------------------------------------- Viterbi ---

class ViterbiBruteForceTest : public ::testing::TestWithParam<int> {};

TEST_P(ViterbiBruteForceTest, MatchesEnumeration) {
  const int param = GetParam();
  size_t k = 2 + static_cast<size_t>(param) % 3;
  size_t big_t = 2 + static_cast<size_t>(param) % 5;
  RandomCase c = MakeRandomCase(k, big_t, static_cast<uint64_t>(param) + 500);
  ViterbiResult v = Viterbi(c.pi, c.a, c.log_b);
  BruteForce ref = Enumerate(c.pi, c.a, c.log_b);
  EXPECT_NEAR(v.log_joint, ref.viterbi_log_joint, 1e-10);
  // Paths can tie; verify our path achieves the optimal score.
  double lp = std::log(c.pi[static_cast<size_t>(v.path[0])]) +
              c.log_b(0, v.path[0]);
  for (size_t t = 1; t < big_t; ++t) {
    lp += std::log(c.a(static_cast<size_t>(v.path[t - 1]),
                       static_cast<size_t>(v.path[t]))) +
          c.log_b(t, v.path[t]);
  }
  EXPECT_NEAR(lp, ref.viterbi_log_joint, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(SmallChains, ViterbiBruteForceTest,
                         ::testing::Range(0, 20));

TEST(ViterbiTest, RespectsZeroTransitions) {
  // A forbids 0 -> 0; with emissions favoring state 0 everywhere, the path
  // must alternate.
  linalg::Vector pi{1.0, 0.0};
  linalg::Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  linalg::Matrix log_b(4, 2);
  for (size_t t = 0; t < 4; ++t) {
    log_b(t, 0) = 0.0;
    log_b(t, 1) = -1.0;
  }
  ViterbiResult v = Viterbi(pi, a, log_b);
  EXPECT_EQ(v.path, (std::vector<int>{0, 1, 0, 1}));
}

TEST(ViterbiTest, LogJointNeverExceedsLogLikelihood) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    RandomCase c = MakeRandomCase(3, 8, seed + 700);
    ViterbiResult v = Viterbi(c.pi, c.a, c.log_b);
    double ll = LogLikelihood(c.pi, c.a, c.log_b);
    EXPECT_LE(v.log_joint, ll + 1e-10);
  }
}

// ------------------------------------------------------------------- Model ---

hmm::HmmModel<int> MakeCategoricalModel(uint64_t seed, size_t k = 3,
                                        size_t v = 6) {
  prob::Rng rng(seed);
  return hmm::HmmModel<int>(
      rng.DirichletSymmetric(k, 2.0), rng.RandomStochasticMatrix(k, k, 2.0),
      std::make_unique<prob::CategoricalEmission>(
          prob::CategoricalEmission::RandomInit(k, v, rng)));
}

TEST(ModelTest, CopyIsDeep) {
  HmmModel<int> m = MakeCategoricalModel(1);
  HmmModel<int> copy = m;
  copy.a(0, 0) += 0.1;
  EXPECT_NE(m.a(0, 0), copy.a(0, 0));
  EXPECT_NE(m.emission.get(), copy.emission.get());
}

TEST(ModelTest, ValidateAcceptsWellFormed) {
  HmmModel<int> m = MakeCategoricalModel(2);
  m.Validate();  // must not abort
  EXPECT_EQ(m.num_states(), 3u);
}

// ----------------------------------------------------------------- Sampler ---

TEST(SamplerTest, SequenceShapesAndLabelRanges) {
  HmmModel<int> m = MakeCategoricalModel(3);
  prob::Rng rng(9);
  Sequence<int> seq = SampleSequence(m, 25, rng);
  EXPECT_EQ(seq.length(), 25u);
  ASSERT_TRUE(seq.labeled());
  for (int l : seq.labels) EXPECT_TRUE(l >= 0 && l < 3);
  for (int o : seq.obs) EXPECT_TRUE(o >= 0 && o < 6);
}

TEST(SamplerTest, LabelTransitionFrequenciesTrackA) {
  // Deterministic-ish A: strong self-transitions.
  linalg::Matrix a{{0.9, 0.1}, {0.2, 0.8}};
  prob::Rng init_rng(4);
  HmmModel<int> m(linalg::Vector{0.5, 0.5}, a,
                  std::make_unique<prob::CategoricalEmission>(
                      prob::CategoricalEmission::RandomInit(2, 4, init_rng)));
  prob::Rng rng(10);
  linalg::Matrix counts(2, 2);
  for (int n = 0; n < 200; ++n) {
    Sequence<int> seq = SampleSequence(m, 50, rng);
    for (size_t t = 1; t < seq.length(); ++t) {
      counts(static_cast<size_t>(seq.labels[t - 1]),
             static_cast<size_t>(seq.labels[t])) += 1.0;
    }
  }
  counts.NormalizeRows();
  EXPECT_NEAR(counts(0, 0), 0.9, 0.03);
  EXPECT_NEAR(counts(1, 1), 0.8, 0.03);
}

TEST(SamplerTest, DatasetHasRequestedShape) {
  HmmModel<int> m = MakeCategoricalModel(5);
  prob::Rng rng(11);
  Dataset<int> data = SampleDataset(m, 7, 4, rng);
  EXPECT_EQ(data.size(), 7u);
  EXPECT_EQ(TotalFrames(data), 28u);
}

// --------------------------------------------------------------------- EM ---

TEST(EmTest, LogLikelihoodMonotone) {
  HmmModel<int> truth = MakeCategoricalModel(20, 3, 8);
  prob::Rng rng(21);
  Dataset<int> data = SampleDataset(truth, 60, 12, rng);
  HmmModel<int> model = MakeCategoricalModel(22, 3, 8);
  EmOptions opts;
  opts.max_iters = 25;
  opts.tol = 0.0;  // run all iterations
  EmResult r = FitEm(&model, data, opts);
  ASSERT_GE(r.loglik_history.size(), 2u);
  for (size_t i = 1; i < r.loglik_history.size(); ++i) {
    EXPECT_GE(r.loglik_history[i], r.loglik_history[i - 1] - 1e-7)
        << "EM iteration " << i << " decreased the likelihood";
  }
}

TEST(EmTest, ImprovesOverInitialModel) {
  HmmModel<int> truth = MakeCategoricalModel(23, 3, 8);
  prob::Rng rng(24);
  Dataset<int> data = SampleDataset(truth, 40, 10, rng);
  HmmModel<int> model = MakeCategoricalModel(25, 3, 8);
  double before = DatasetLogLikelihood(model, data);
  FitEm(&model, data, {.max_iters = 15});
  double after = DatasetLogLikelihood(model, data);
  EXPECT_GT(after, before);
}

TEST(EmTest, ConvergenceFlagSetOnEasyProblem) {
  HmmModel<int> truth = MakeCategoricalModel(26, 2, 4);
  prob::Rng rng(27);
  Dataset<int> data = SampleDataset(truth, 30, 8, rng);
  HmmModel<int> model = truth;  // start at the truth: fast convergence
  EmOptions opts;
  opts.max_iters = 200;
  opts.tol = 1e-5;
  EmResult r = FitEm(&model, data, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.iterations, 200);
}

TEST(EmTest, FrozenPartsStayFrozen) {
  HmmModel<int> model = MakeCategoricalModel(28, 3, 6);
  linalg::Vector pi0 = model.pi;
  linalg::Matrix a0 = model.a;
  prob::Rng rng(29);
  Dataset<int> data = SampleDataset(model, 20, 6, rng);
  EmOptions opts;
  opts.max_iters = 3;
  opts.update_pi = false;
  opts.update_transitions = false;
  FitEm(&model, data, opts);
  for (size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(model.pi[i], pi0[i]);
  EXPECT_TRUE(model.a == a0);
}

TEST(EmTest, CustomTransitionMStepIsUsed) {
  HmmModel<int> model = MakeCategoricalModel(30, 3, 6);
  prob::Rng rng(31);
  Dataset<int> data = SampleDataset(model, 20, 6, rng);
  int calls = 0;
  EmOptions opts;
  opts.max_iters = 4;
  opts.tol = 0.0;
  opts.transition_m_step = [&](const linalg::Matrix& counts,
                               linalg::Matrix* a) {
    ++calls;
    *a = counts;
    a->NormalizeRows();
  };
  FitEm(&model, data, opts);
  EXPECT_EQ(calls, 4);
}

TEST(EmTest, RecoversParametersFromAbundantData) {
  // Well-separated Gaussian emissions: EM should find parameters whose
  // likelihood matches the generating model's.
  linalg::Vector pi{0.6, 0.4};
  linalg::Matrix a{{0.8, 0.2}, {0.3, 0.7}};
  HmmModel<double> truth(pi, a,
                         std::make_unique<prob::GaussianEmission>(
                             linalg::Vector{0.0, 5.0},
                             linalg::Vector{0.5, 0.5}));
  prob::Rng rng(32);
  Dataset<double> data = SampleDataset(truth, 150, 20, rng);

  prob::Rng init_rng(33);
  HmmModel<double> model(
      init_rng.DirichletSymmetric(2, 3.0),
      init_rng.RandomStochasticMatrix(2, 2, 3.0),
      std::make_unique<prob::GaussianEmission>(
          prob::GaussianEmission::RandomInit(2, init_rng, 2.5, 2.0)));
  FitEm(&model, data, {.max_iters = 60});

  double ll_truth = DatasetLogLikelihood(truth, data);
  double ll_model = DatasetLogLikelihood(model, data);
  EXPECT_GT(ll_model, ll_truth - 0.01 * std::fabs(ll_truth));

  // Emission means recovered up to state permutation.
  auto* em = dynamic_cast<prob::GaussianEmission*>(model.emission.get());
  ASSERT_NE(em, nullptr);
  double lo = std::min(em->mu()[0], em->mu()[1]);
  double hi = std::max(em->mu()[0], em->mu()[1]);
  EXPECT_NEAR(lo, 0.0, 0.15);
  EXPECT_NEAR(hi, 5.0, 0.15);
}

// -------------------------------------------------------------- Supervised ---

TEST(SupervisedTest, CountsMatchHandComputation) {
  Dataset<int> data;
  // Two labeled sequences over 2 states, 3 symbols.
  Sequence<int> s1;
  s1.obs = {0, 1, 2};
  s1.labels = {0, 0, 1};
  Sequence<int> s2;
  s2.obs = {2, 1};
  s2.labels = {1, 0};
  data = {s1, s2};

  std::unique_ptr<prob::EmissionModel<int>> emission =
      std::make_unique<prob::CategoricalEmission>(linalg::Matrix(
          {{1.0 / 3, 1.0 / 3, 1.0 / 3}, {1.0 / 3, 1.0 / 3, 1.0 / 3}}));
  HmmModel<int> m = FitSupervised(data, 2, std::move(emission));

  // pi: starts = {0, 1} -> (0.5, 0.5).
  EXPECT_NEAR(m.pi[0], 0.5, 1e-12);
  EXPECT_NEAR(m.pi[1], 0.5, 1e-12);
  // Transitions: 0->0 once, 0->1 once, 1->0 once.
  EXPECT_NEAR(m.a(0, 0), 0.5, 1e-12);
  EXPECT_NEAR(m.a(0, 1), 0.5, 1e-12);
  EXPECT_NEAR(m.a(1, 0), 1.0, 1e-12);
  // Emissions: state 0 saw {0, 1, 1}; state 1 saw {2, 2}.
  auto* em = dynamic_cast<prob::CategoricalEmission*>(m.emission.get());
  ASSERT_NE(em, nullptr);
  EXPECT_NEAR(em->b()(0, 1), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(em->b()(1, 2), 1.0, 1e-12);
}

TEST(SupervisedTest, PseudoCountsSmoothUnseenTransitions) {
  Dataset<int> data;
  Sequence<int> s;
  s.obs = {0, 0};
  s.labels = {0, 0};
  data = {s};
  std::unique_ptr<prob::EmissionModel<int>> emission =
      std::make_unique<prob::CategoricalEmission>(
          linalg::Matrix({{0.5, 0.5}, {0.5, 0.5}}), 0.5);
  SupervisedOptions opts;
  opts.transition_pseudo_count = 1.0;
  opts.initial_pseudo_count = 1.0;
  HmmModel<int> m = FitSupervised(data, 2, std::move(emission), opts);
  EXPECT_GT(m.a(1, 0), 0.0);  // unseen state still has a smoothed row
  EXPECT_GT(m.pi[1], 0.0);
}

TEST(SupervisedTest, RecoversGeneratingParameters) {
  HmmModel<int> truth = MakeCategoricalModel(40, 3, 5);
  prob::Rng rng(41);
  Dataset<int> data = SampleDataset(truth, 400, 30, rng);
  std::unique_ptr<prob::EmissionModel<int>> emission =
      std::make_unique<prob::CategoricalEmission>(
          linalg::Matrix(3, 5, 0.2));
  HmmModel<int> m = FitSupervised(data, 3, std::move(emission));
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(m.a(i, j), truth.a(i, j), 0.02);
    }
  }
}

// --------------------------------------------------------- Serialization ---

TEST(SerializationTest, CategoricalRoundTrip) {
  HmmModel<int> m = MakeCategoricalModel(50);
  std::stringstream ss;
  ASSERT_TRUE(SaveHmm(m, ss).ok());
  auto r = LoadHmm<int>(ss);
  ASSERT_TRUE(r.ok());
  const HmmModel<int>& loaded = r.value();
  EXPECT_EQ(loaded.num_states(), m.num_states());
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(loaded.pi[i], m.pi[i], 1e-14);
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(loaded.a(i, j), m.a(i, j), 1e-14);
    }
  }
}

TEST(SerializationTest, GaussianRoundTripPreservesLikelihood) {
  prob::Rng rng(51);
  HmmModel<double> m(
      rng.DirichletSymmetric(2, 2.0), rng.RandomStochasticMatrix(2, 2, 2.0),
      std::make_unique<prob::GaussianEmission>(linalg::Vector{0.0, 3.0},
                                               linalg::Vector{1.0, 0.5}));
  Dataset<double> data = SampleDataset(m, 5, 6, rng);
  std::stringstream ss;
  ASSERT_TRUE(SaveHmm(m, ss).ok());
  auto r = LoadHmm<double>(ss);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(DatasetLogLikelihood(r.value(), data),
              DatasetLogLikelihood(m, data), 1e-9);
}

TEST(SerializationTest, BernoulliRoundTrip) {
  prob::Rng rng(52);
  HmmModel<prob::BinaryObs> m(
      rng.DirichletSymmetric(2, 2.0), rng.RandomStochasticMatrix(2, 2, 2.0),
      std::make_unique<prob::BernoulliEmission>(
          prob::BernoulliEmission::RandomInit(2, 10, rng)));
  std::stringstream ss;
  ASSERT_TRUE(SaveHmm(m, ss).ok());
  auto r = LoadHmm<prob::BinaryObs>(ss);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().num_states(), 2u);
}

TEST(SerializationTest, RejectsCorruptHeader) {
  std::stringstream ss("garbage 1");
  EXPECT_FALSE(LoadHmm<int>(ss).ok());
}

TEST(SerializationTest, RejectsWrongEmissionKind) {
  // A categorical model loaded as a scalar-observation model must fail.
  HmmModel<int> m = MakeCategoricalModel(53);
  std::stringstream ss;
  ASSERT_TRUE(SaveHmm(m, ss).ok());
  EXPECT_FALSE(LoadHmm<double>(ss).ok());
}

// --------------------------------------------------------- DecodeDataset ---

TEST(DecodeDatasetTest, PathsHaveMatchingLengths) {
  HmmModel<int> m = MakeCategoricalModel(60);
  prob::Rng rng(61);
  Dataset<int> data = SampleDataset(m, 6, 9, rng);
  auto paths = DecodeDataset(m, data);
  ASSERT_EQ(paths.size(), 6u);
  for (const auto& p : paths) EXPECT_EQ(p.size(), 9u);
}

TEST(DecodeDatasetTest, EasyEmissionsDecodePerfectly) {
  // Nearly deterministic emissions: symbol == state.
  linalg::Matrix b{{0.98, 0.01, 0.01}, {0.01, 0.98, 0.01},
                   {0.01, 0.01, 0.98}};
  prob::Rng rng(62);
  HmmModel<int> m(linalg::Vector(3, 1.0 / 3),
                  rng.RandomStochasticMatrix(3, 3, 5.0),
                  std::make_unique<prob::CategoricalEmission>(b));
  Dataset<int> data = SampleDataset(m, 30, 15, rng);
  auto paths = DecodeDataset(m, data);
  size_t correct = 0, total = 0;
  for (size_t s = 0; s < data.size(); ++s) {
    for (size_t t = 0; t < data[s].length(); ++t) {
      correct += paths[s][t] == data[s].labels[t];
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(correct) / total, 0.95);
}

// --------------------------------------- Diagnostics on periodic chains ---

TEST(DiagnosticsPeriodicTest, PermutationChainConvergesWithoutDamping) {
  // A 3-cycle is periodic; the naive pi <- pi A iteration oscillates at
  // damping = 0, but the lazy-chain iteration converges to the true
  // (uniform) stationary distribution.
  linalg::Matrix cycle{{0.0, 1.0, 0.0}, {0.0, 0.0, 1.0}, {1.0, 0.0, 0.0}};
  auto r = StationaryDistribution(cycle, /*max_iters=*/10000, /*tol=*/1e-12,
                                  /*damping=*/0.0);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  for (size_t i = 0; i < 3; ++i) EXPECT_NEAR(r.value()[i], 1.0 / 3.0, 1e-9);
}

TEST(DiagnosticsPeriodicTest, BipartiteChainExactStationaryWithoutDamping) {
  // Period-2 chain over classes {0} and {1, 2}; stationary distribution is
  // (1/2, 1/4, 1/4). The pre-fix iteration bounced between (2/3, 1/6, 1/6)
  // and uniform forever and silently returned whichever came last.
  linalg::Matrix a{{0.0, 0.5, 0.5}, {1.0, 0.0, 0.0}, {1.0, 0.0, 0.0}};
  auto r = StationaryDistribution(a, /*max_iters=*/10000, /*tol=*/1e-12,
                                  /*damping=*/0.0);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NEAR(r.value()[0], 0.5, 1e-9);
  EXPECT_NEAR(r.value()[1], 0.25, 1e-9);
  EXPECT_NEAR(r.value()[2], 0.25, 1e-9);
}

TEST(DiagnosticsPeriodicTest, NonConvergenceIsSurfacedNotSilent) {
  // A slow-mixing chain under a tiny iteration budget: the iterate is far
  // from stationary, and the old code would have returned it anyway.
  linalg::Matrix slow{{1.0 - 1e-9, 1e-9}, {2e-9, 1.0 - 2e-9}};
  auto r = StationaryDistribution(slow, /*max_iters=*/50);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotConverged);
}

TEST(DiagnosticsPeriodicTest, EntropyRateOnPeriodicChain) {
  // pi = (1/2, 1/4, 1/4); only state 0's row has entropy (log 2).
  linalg::Matrix a{{0.0, 0.5, 0.5}, {1.0, 0.0, 0.0}, {1.0, 0.0, 0.0}};
  auto h = EntropyRate(a);
  ASSERT_TRUE(h.ok()) << h.status().ToString();
  EXPECT_NEAR(h.value(), 0.5 * std::log(2.0), 1e-8);
}

TEST(DiagnosticsPeriodicTest, MixtureCollapseGapOnPeriodicChain) {
  // 2-cycle: pi = (1/2, 1/2); each row is TV distance 1/2 from pi.
  linalg::Matrix cycle{{0.0, 1.0}, {1.0, 0.0}};
  auto gap = MixtureCollapseGap(cycle);
  ASSERT_TRUE(gap.ok()) << gap.status().ToString();
  EXPECT_NEAR(gap.value(), 0.5, 1e-8);
}

TEST(DiagnosticsPeriodicTest, DerivedDiagnosticsPropagateNonConvergence) {
  // This chain mixes far too slowly for the default iteration budget, so
  // the derived diagnostics must report the failure instead of computing
  // off a wrong iterate.
  linalg::Matrix slow{{1.0 - 1e-9, 1e-9}, {2e-9, 1.0 - 2e-9}};
  EXPECT_EQ(EntropyRate(slow).status().code(), StatusCode::kNotConverged);
  EXPECT_EQ(MixtureCollapseGap(slow).status().code(),
            StatusCode::kNotConverged);
}

}  // namespace
}  // namespace dhmm::hmm
