#include <cmath>

#include <gtest/gtest.h>

#include "optim/projected_gradient.h"
#include "optim/simplex_projection.h"
#include "prob/rng.h"

namespace dhmm::optim {
namespace {

// ----------------------------------------------------- SimplexProjection ---

TEST(SimplexProjectionTest, PointOnSimplexIsFixed) {
  linalg::Vector v{0.2, 0.3, 0.5};
  linalg::Vector p = ProjectToSimplex(v);
  for (size_t i = 0; i < 3; ++i) EXPECT_NEAR(p[i], v[i], 1e-12);
}

TEST(SimplexProjectionTest, KnownSolutions) {
  // Projecting (2, 0) -> (1, 0).
  linalg::Vector p1 = ProjectToSimplex(linalg::Vector{2.0, 0.0});
  EXPECT_NEAR(p1[0], 1.0, 1e-12);
  EXPECT_NEAR(p1[1], 0.0, 1e-12);
  // Projecting (0.5, 0.5, 5) -> (0, 0, 1).
  linalg::Vector p2 = ProjectToSimplex(linalg::Vector{0.5, 0.5, 5.0});
  EXPECT_NEAR(p2[2], 1.0, 1e-12);
  // Symmetric input -> uniform output.
  linalg::Vector p3 = ProjectToSimplex(linalg::Vector{7.0, 7.0, 7.0, 7.0});
  for (size_t i = 0; i < 4; ++i) EXPECT_NEAR(p3[i], 0.25, 1e-12);
}

TEST(SimplexProjectionTest, UniformShiftInvariance) {
  // proj(x + c*1) == proj(x) — the property that makes the paper's Eq. 15
  // direction equivalent to the exact gradient after projection.
  prob::Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    linalg::Vector x(6);
    for (size_t i = 0; i < 6; ++i) x[i] = rng.Gaussian(0.0, 2.0);
    linalg::Vector shifted = x;
    double c = rng.Gaussian(0.0, 5.0);
    for (size_t i = 0; i < 6; ++i) shifted[i] += c;
    linalg::Vector p1 = ProjectToSimplex(x);
    linalg::Vector p2 = ProjectToSimplex(shifted);
    for (size_t i = 0; i < 6; ++i) EXPECT_NEAR(p1[i], p2[i], 1e-9);
  }
}

class SimplexProjectionPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SimplexProjectionPropertyTest, OutputOnSimplex) {
  prob::Rng rng(static_cast<uint64_t>(GetParam()));
  size_t n = 2 + static_cast<size_t>(GetParam()) % 9;
  linalg::Vector x(n);
  for (size_t i = 0; i < n; ++i) x[i] = rng.Gaussian(0.0, 3.0);
  linalg::Vector p = ProjectToSimplex(x);
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    EXPECT_GE(p[i], 0.0);
    sum += p[i];
  }
  EXPECT_NEAR(sum, 1.0, 1e-10);
}

TEST_P(SimplexProjectionPropertyTest, IsNearestPoint) {
  // The projection must beat random simplex points in Euclidean distance.
  prob::Rng rng(static_cast<uint64_t>(GetParam()) + 50);
  size_t n = 3 + static_cast<size_t>(GetParam()) % 5;
  linalg::Vector x(n);
  for (size_t i = 0; i < n; ++i) x[i] = rng.Gaussian(0.0, 2.0);
  linalg::Vector p = ProjectToSimplex(x);
  double best = (p - x).norm();
  for (int trial = 0; trial < 200; ++trial) {
    linalg::Vector q = rng.DirichletSymmetric(n, 1.0);
    EXPECT_GE((q - x).norm() + 1e-12, best);
  }
}

TEST_P(SimplexProjectionPropertyTest, Idempotent) {
  prob::Rng rng(static_cast<uint64_t>(GetParam()) + 99);
  size_t n = 2 + static_cast<size_t>(GetParam()) % 7;
  linalg::Vector x(n);
  for (size_t i = 0; i < n; ++i) x[i] = rng.Gaussian();
  linalg::Vector p = ProjectToSimplex(x);
  linalg::Vector pp = ProjectToSimplex(p);
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(p[i], pp[i], 1e-12);
}

TEST_P(SimplexProjectionPropertyTest, PreservesOrdering) {
  // x_i >= x_j implies proj(x)_i >= proj(x)_j.
  prob::Rng rng(static_cast<uint64_t>(GetParam()) + 200);
  size_t n = 4;
  linalg::Vector x(n);
  for (size_t i = 0; i < n; ++i) x[i] = rng.Gaussian();
  linalg::Vector p = ProjectToSimplex(x);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (x[i] >= x[j]) {
        EXPECT_GE(p[i] + 1e-12, p[j]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInputs, SimplexProjectionPropertyTest,
                         ::testing::Range(0, 15));

TEST(SimplexProjectionTest, MatrixRowsProjected) {
  linalg::Matrix m{{2.0, -1.0, 0.0}, {0.1, 0.1, 0.1}};
  ProjectRowsToSimplex(&m);
  EXPECT_TRUE(m.IsRowStochastic(1e-9));
  EXPECT_NEAR(m(0, 0), 1.0, 1e-12);  // dominated row snaps to corner
  EXPECT_NEAR(m(1, 0), 1.0 / 3.0, 1e-12);
}

// ------------------------------------------------- ProjectedGradientAscent ---

TEST(ProjectedGradientTest, ConcaveQuadraticOnSimplexRow) {
  // maximize -||a - t||^2 over the simplex (1x3 matrix); optimum = proj(t).
  linalg::Vector target{0.6, 0.9, -0.5};
  auto objective = [&](const linalg::Matrix& a) {
    double s = 0.0;
    for (size_t j = 0; j < 3; ++j) {
      s -= (a(0, j) - target[j]) * (a(0, j) - target[j]);
    }
    return s;
  };
  auto gradient = [&](const linalg::Matrix& a, linalg::Matrix* g) {
    *g = linalg::Matrix(1, 3);
    for (size_t j = 0; j < 3; ++j) (*g)(0, j) = -2.0 * (a(0, j) - target[j]);
    return true;
  };
  auto project = [](linalg::Matrix* a) { ProjectRowsToSimplex(a); };

  linalg::Matrix init(1, 3, 1.0 / 3.0);
  ProjectedGradientOptions opts;
  opts.tol = 1e-12;
  opts.max_iters = 500;
  auto result = ProjectedGradientAscent(init, objective, gradient, project,
                                        opts);
  linalg::Vector expected = ProjectToSimplex(target);
  for (size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(result.argmax(0, j), expected[j], 1e-5);
  }
  EXPECT_TRUE(result.converged);
}

TEST(ProjectedGradientTest, ObjectiveNeverDecreases) {
  // Track the objective through a run on a concave entropy-like function.
  linalg::Matrix counts{{3.0, 1.0, 6.0}};
  auto objective = [&](const linalg::Matrix& a) {
    double s = 0.0;
    for (size_t j = 0; j < 3; ++j) {
      if (a(0, j) <= 0.0) return -std::numeric_limits<double>::infinity();
      s += counts(0, j) * std::log(a(0, j));
    }
    return s;
  };
  auto gradient = [&](const linalg::Matrix& a, linalg::Matrix* g) {
    *g = linalg::Matrix(1, 3);
    for (size_t j = 0; j < 3; ++j) (*g)(0, j) = counts(0, j) / a(0, j);
    return true;
  };
  auto project = [](linalg::Matrix* a) {
    ProjectRowsToSimplex(a);
    for (size_t j = 0; j < a->cols(); ++j) {
      (*a)(0, j) = std::max((*a)(0, j), 1e-12);
    }
  };
  linalg::Matrix init(1, 3, 1.0 / 3.0);
  auto result = ProjectedGradientAscent(init, objective, gradient, project);
  // The analytic optimum is counts normalized: (0.3, 0.1, 0.6).
  EXPECT_NEAR(result.argmax(0, 0), 0.3, 1e-3);
  EXPECT_NEAR(result.argmax(0, 1), 0.1, 1e-3);
  EXPECT_NEAR(result.argmax(0, 2), 0.6, 1e-3);
  EXPECT_GE(result.objective, objective(init));
}

TEST(ProjectedGradientTest, InfeasibleCandidatesAreRejected) {
  // Objective is -inf off a shrunk region; ascent must still improve within.
  auto objective = [](const linalg::Matrix& a) {
    if (a(0, 0) > 0.8) return -std::numeric_limits<double>::infinity();
    return a(0, 0);
  };
  auto gradient = [](const linalg::Matrix&, linalg::Matrix* g) {
    *g = linalg::Matrix(1, 2);
    (*g)(0, 0) = 1.0;
    return true;
  };
  auto project = [](linalg::Matrix* a) { ProjectRowsToSimplex(a); };
  linalg::Matrix init(1, 2, 0.5);
  auto result = ProjectedGradientAscent(init, objective, gradient, project);
  EXPECT_GT(result.argmax(0, 0), 0.5);
  EXPECT_LE(result.argmax(0, 0), 0.8);
}

TEST(ProjectedGradientTest, ZeroGradientStopsImmediately) {
  auto objective = [](const linalg::Matrix&) { return 1.0; };
  auto gradient = [](const linalg::Matrix&, linalg::Matrix* g) {
    *g = linalg::Matrix(1, 2);
    return true;
  };
  auto project = [](linalg::Matrix* a) { ProjectRowsToSimplex(a); };
  linalg::Matrix init(1, 2, 0.5);
  auto result = ProjectedGradientAscent(init, objective, gradient, project);
  EXPECT_EQ(result.iterations, 0);
  EXPECT_DOUBLE_EQ(result.objective, 1.0);
}

TEST(ProjectedGradientTest, GradientFailureReturnsStart) {
  auto objective = [](const linalg::Matrix&) { return 0.0; };
  auto gradient = [](const linalg::Matrix&, linalg::Matrix*) { return false; };
  auto project = [](linalg::Matrix*) {};
  linalg::Matrix init(1, 2, 0.5);
  auto result = ProjectedGradientAscent(init, objective, gradient, project);
  EXPECT_EQ(result.iterations, 0);
  EXPECT_DOUBLE_EQ(result.argmax(0, 0), 0.5);
}

}  // namespace
}  // namespace dhmm::optim
