#include <gtest/gtest.h>

#include "baselines/naive_bayes.h"
#include "baselines/optimized_hmm.h"
#include "data/ocr.h"
#include "eval/metrics.h"

namespace dhmm::baselines {
namespace {

data::OcrOptions SmallOcr(uint64_t seed, size_t n = 400,
                          double noise = 0.08) {
  data::OcrOptions opts;
  opts.num_words = n;
  opts.pixel_flip = noise;
  opts.seed = seed;
  return opts;
}

struct Split {
  hmm::Dataset<prob::BinaryObs> train;
  hmm::Dataset<prob::BinaryObs> test;
};

Split TrainTest(const data::OcrDataset& ds, double test_fraction = 0.2) {
  Split split;
  size_t n_test = static_cast<size_t>(ds.words.size() * test_fraction);
  for (size_t i = 0; i < ds.words.size(); ++i) {
    (i < n_test ? split.test : split.train).push_back(ds.words[i]);
  }
  return split;
}

double Accuracy(const std::vector<std::vector<int>>& pred,
                const hmm::Dataset<prob::BinaryObs>& data) {
  eval::LabelSequences gold;
  for (const auto& seq : data) gold.push_back(seq.labels);
  return eval::FrameAccuracy(pred, gold);
}

// -------------------------------------------------------------- NaiveBayes ---

TEST(NaiveBayesTest, LearnsSeparableClasses) {
  // Without spatial jitter the glyphs are near-perfectly separable per frame;
  // jitter is what drags NaiveBayes into the paper's ~63% band (Fig. 11).
  data::OcrOptions opts = SmallOcr(1, 300, 0.02);
  opts.max_jitter = 0;
  data::OcrDataset ds = data::GenerateOcrDataset(opts);
  Split split = TrainTest(ds);
  NaiveBayesClassifier nb(data::kNumLetters, data::kGlyphDims);
  nb.Fit(split.train);
  std::vector<std::vector<int>> pred;
  for (const auto& seq : split.test) {
    pred.push_back(nb.PredictSequence(seq.obs));
  }
  EXPECT_GT(Accuracy(pred, split.test), 0.9);
}

TEST(NaiveBayesTest, PriorsReflectLetterFrequencies) {
  data::OcrDataset ds = data::GenerateOcrDataset(SmallOcr(2, 500));
  NaiveBayesClassifier nb(data::kNumLetters, data::kGlyphDims);
  nb.Fit(ds.words);
  // 'e' is the most common English letter; its prior must beat 'z'.
  EXPECT_GT(nb.priors()[data::LetterIndex('e')],
            nb.priors()[data::LetterIndex('z')]);
  EXPECT_NEAR(nb.priors().sum(), 1.0, 1e-9);
}

TEST(NaiveBayesTest, DegradesWithNoiseButNotBelowChance) {
  data::OcrDataset clean = data::GenerateOcrDataset(SmallOcr(3, 300, 0.02));
  data::OcrDataset noisy = data::GenerateOcrDataset(SmallOcr(3, 300, 0.25));
  Split cs = TrainTest(clean);
  Split ns = TrainTest(noisy);

  NaiveBayesClassifier nb_clean(data::kNumLetters, data::kGlyphDims);
  nb_clean.Fit(cs.train);
  NaiveBayesClassifier nb_noisy(data::kNumLetters, data::kGlyphDims);
  nb_noisy.Fit(ns.train);

  std::vector<std::vector<int>> pred_clean, pred_noisy;
  for (const auto& s : cs.test) {
    pred_clean.push_back(nb_clean.PredictSequence(s.obs));
  }
  for (const auto& s : ns.test) {
    pred_noisy.push_back(nb_noisy.PredictSequence(s.obs));
  }
  double acc_clean = Accuracy(pred_clean, cs.test);
  double acc_noisy = Accuracy(pred_noisy, ns.test);
  EXPECT_GT(acc_clean, acc_noisy);
  EXPECT_GT(acc_noisy, 1.5 / 26.0);  // well above chance
}

// ------------------------------------------------------------ OptimizedHmm ---

TEST(OptimizedHmmTest, FitsAndDecodes) {
  data::OcrDataset ds = data::GenerateOcrDataset(SmallOcr(4, 400, 0.15));
  Split split = TrainTest(ds);
  OptimizedHmm ohmm(data::kNumLetters, data::kGlyphDims);
  ohmm.Fit(split.train);
  std::vector<std::vector<int>> pred;
  for (const auto& seq : split.test) pred.push_back(ohmm.Decode(seq.obs));
  EXPECT_GT(Accuracy(pred, split.test), 0.5);
}

TEST(OptimizedHmmTest, TunedParametersComeFromGrid) {
  data::OcrDataset ds = data::GenerateOcrDataset(SmallOcr(5, 300, 0.15));
  OptimizedHmmOptions opts;
  opts.emission_weights = {0.5, 1.0};
  opts.transition_pseudo_counts = {0.5};
  OptimizedHmm ohmm(data::kNumLetters, data::kGlyphDims, opts);
  ohmm.Fit(ds.words);
  EXPECT_TRUE(ohmm.tuned_emission_weight() == 0.5 ||
              ohmm.tuned_emission_weight() == 1.0);
  EXPECT_DOUBLE_EQ(ohmm.tuned_pseudo_count(), 0.5);
}

TEST(OptimizedHmmTest, BeatsNaiveBayesAtHighNoise) {
  // With very noisy pixels, the chain structure must help. This is the
  // Fig. 11 ordering: NaiveBayes < (Optimized)HMM.
  data::OcrDataset ds = data::GenerateOcrDataset(SmallOcr(6, 700, 0.28));
  Split split = TrainTest(ds);

  NaiveBayesClassifier nb(data::kNumLetters, data::kGlyphDims);
  nb.Fit(split.train);
  OptimizedHmm ohmm(data::kNumLetters, data::kGlyphDims);
  ohmm.Fit(split.train);

  std::vector<std::vector<int>> pred_nb, pred_hmm;
  for (const auto& s : split.test) {
    pred_nb.push_back(nb.PredictSequence(s.obs));
    pred_hmm.push_back(ohmm.Decode(s.obs));
  }
  EXPECT_GT(Accuracy(pred_hmm, split.test), Accuracy(pred_nb, split.test));
}

}  // namespace
}  // namespace dhmm::baselines
