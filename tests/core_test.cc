#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "core/dhmm_trainer.h"
#include "core/supervised_diversified.h"
#include "core/transition_update.h"
#include "dpp/logdet.h"
#include "eval/diversity.h"
#include "hmm/sampler.h"
#include "prob/categorical_emission.h"
#include "prob/rng.h"

namespace dhmm::core {
namespace {

// ------------------------------------------------------- TransitionUpdate ---

TEST(TransitionUpdateTest, AlphaZeroMatchesNormalizedCounts) {
  linalg::Matrix counts{{6.0, 2.0}, {1.0, 3.0}};
  linalg::Matrix init(2, 2, 0.5);
  TransitionUpdateOptions opts;
  opts.alpha = 0.0;
  TransitionUpdateResult r = UpdateTransitions(init, counts, opts);
  EXPECT_NEAR(r.a(0, 0), 0.75, 1e-9);
  EXPECT_NEAR(r.a(0, 1), 0.25, 1e-9);
  EXPECT_NEAR(r.a(1, 0), 0.25, 1e-9);
  EXPECT_NEAR(r.a(1, 1), 0.75, 1e-9);
  EXPECT_TRUE(r.converged);
}

TEST(TransitionUpdateTest, ResultIsRowStochastic) {
  prob::Rng rng(1);
  linalg::Matrix counts(4, 4);
  for (size_t i = 0; i < 4; ++i)
    for (size_t j = 0; j < 4; ++j) counts(i, j) = 1.0 + 10.0 * rng.Uniform();
  linalg::Matrix init = rng.RandomStochasticMatrix(4, 4, 2.0);
  TransitionUpdateOptions opts;
  opts.alpha = 2.0;
  TransitionUpdateResult r = UpdateTransitions(init, counts, opts);
  EXPECT_TRUE(r.a.IsRowStochastic(1e-8));
}

TEST(TransitionUpdateTest, ObjectiveImprovesOverStart) {
  prob::Rng rng(2);
  linalg::Matrix counts(3, 3);
  for (size_t i = 0; i < 3; ++i)
    for (size_t j = 0; j < 3; ++j) counts(i, j) = 1.0 + 5.0 * rng.Uniform();
  linalg::Matrix init = rng.RandomStochasticMatrix(3, 3, 2.0);
  TransitionUpdateOptions opts;
  opts.alpha = 1.0;
  double before = TransitionObjective(init, counts, opts);
  TransitionUpdateResult r = UpdateTransitions(init, counts, opts);
  EXPECT_GE(r.objective, before);
}

TEST(TransitionUpdateTest, DiversityIncreasesWithAlpha) {
  // Counts that favor near-identical rows; larger alpha must yield more
  // diverse transition rows (the paper's central mechanism).
  linalg::Matrix counts{{5.0, 5.0, 5.0}, {5.2, 4.9, 4.9}, {4.9, 5.2, 4.9}};
  prob::Rng rng(3);
  linalg::Matrix init = rng.RandomStochasticMatrix(3, 3, 5.0);
  double prev_div = -1.0;
  for (double alpha : {0.0, 2.0, 20.0}) {
    TransitionUpdateOptions opts;
    opts.alpha = alpha;
    TransitionUpdateResult r = UpdateTransitions(init, counts, opts);
    double div = eval::AveragePairwiseDiversity(r.a);
    EXPECT_GE(div, prev_div - 1e-9) << "alpha " << alpha;
    prev_div = div;
  }
}

TEST(TransitionUpdateTest, LogDetReportedMatchesMatrix) {
  prob::Rng rng(4);
  linalg::Matrix counts(3, 3, 2.0);
  linalg::Matrix init = rng.RandomStochasticMatrix(3, 3, 2.0);
  TransitionUpdateOptions opts;
  opts.alpha = 1.0;
  TransitionUpdateResult r = UpdateTransitions(init, counts, opts);
  EXPECT_NEAR(r.log_det, dpp::LogDetNormalizedKernel(r.a, opts.rho), 1e-10);
}

TEST(TransitionUpdateTest, InfeasibleStartIsJittered) {
  // Identical rows: prior is -inf at the start; the update must still run.
  linalg::Matrix init(3, 3, 1.0 / 3.0);
  linalg::Matrix counts(3, 3, 1.0);
  TransitionUpdateOptions opts;
  opts.alpha = 1.0;
  TransitionUpdateResult r = UpdateTransitions(init, counts, opts);
  EXPECT_TRUE(std::isfinite(r.objective));
  EXPECT_TRUE(r.a.IsRowStochastic(1e-8));
}

TEST(TransitionUpdateTest, TetherPullsTowardA0) {
  prob::Rng rng(5);
  linalg::Matrix counts(3, 3, 1.0);
  linalg::Matrix a0 = rng.RandomStochasticMatrix(3, 3, 2.0);
  linalg::Matrix init = a0;

  TransitionUpdateOptions weak;
  weak.alpha = 5.0;
  weak.tether = &a0;
  weak.tether_weight = 0.1;
  TransitionUpdateResult r_weak = UpdateTransitions(init, counts, weak);

  TransitionUpdateOptions strong = weak;
  strong.tether_weight = 1e6;
  TransitionUpdateResult r_strong = UpdateTransitions(init, counts, strong);

  double drift_weak = std::sqrt(r_weak.a.squared_distance(a0));
  double drift_strong = std::sqrt(r_strong.a.squared_distance(a0));
  EXPECT_LE(drift_strong, drift_weak + 1e-9);
  EXPECT_LT(drift_strong, 0.05);
}

TEST(TransitionUpdateTest, ObjectiveFunctionValues) {
  linalg::Matrix a{{0.5, 0.5}, {0.2, 0.8}};
  linalg::Matrix counts{{2.0, 1.0}, {0.0, 4.0}};
  TransitionUpdateOptions opts;
  opts.alpha = 0.0;
  double expected = 2.0 * std::log(0.5) + std::log(0.5) + 4.0 * std::log(0.8);
  EXPECT_NEAR(TransitionObjective(a, counts, opts), expected, 1e-12);
  // Zero probability where counts are positive -> -inf.
  linalg::Matrix zero_a{{1.0, 0.0}, {0.2, 0.8}};
  EXPECT_TRUE(std::isinf(TransitionObjective(zero_a, counts, opts)));
}

TEST(TransitionUpdateTest, ProjectFeasibleKeepsFlooredEntriesAboveFloor) {
  // One dominant entry: flooring the two zeros and then renormalizing the
  // whole row (the old behaviour) divides by 1.4 and drops the just-floored
  // entries to ~0.143 < 0.2. Only the un-floored mass may be rescaled.
  linalg::Matrix a{{1.0, 0.0, 0.0}};
  const double floor = 0.2;
  ProjectFeasible(&a, floor);
  EXPECT_NEAR(a(0, 0), 0.6, 1e-12);
  EXPECT_GE(a(0, 1), floor);
  EXPECT_GE(a(0, 2), floor);
  double sum = a(0, 0) + a(0, 1) + a(0, 2);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(TransitionUpdateTest, ProjectFeasibleIteratesCascadingFloors) {
  // Rescaling after the first floor pushes the middle entry below the floor
  // too; the fixed-point iteration must catch the cascade.
  linalg::Matrix a{{0.36, 0.33, 0.31}};
  const double floor = 0.325;
  ProjectFeasible(&a, floor);
  for (size_t c = 0; c < 3; ++c) EXPECT_GE(a(0, c), floor) << "col " << c;
  EXPECT_NEAR(a(0, 0) + a(0, 1) + a(0, 2), 1.0, 1e-12);
  EXPECT_NEAR(a(0, 0), 0.35, 1e-12);
}

TEST(TransitionUpdateTest, LargeAlphaYieldsNearOrthogonalRows) {
  linalg::Matrix counts(3, 3, 1.0);
  prob::Rng rng(6);
  linalg::Matrix init = rng.RandomStochasticMatrix(3, 3, 2.0);
  TransitionUpdateOptions opts;
  opts.alpha = 500.0;
  opts.ascent.max_iters = 600;
  TransitionUpdateResult r = UpdateTransitions(init, counts, opts);
  // With diversity dominating, log det K~ should approach 0 (identity
  // kernel).
  EXPECT_GT(r.log_det, -0.3);
}

// ----------------------------------------------------------- dHMM trainer ---

hmm::HmmModel<int> RandomModel(uint64_t seed, size_t k, size_t v) {
  prob::Rng rng(seed);
  return hmm::HmmModel<int>(
      rng.DirichletSymmetric(k, 3.0), rng.RandomStochasticMatrix(k, k, 3.0),
      std::make_unique<prob::CategoricalEmission>(
          prob::CategoricalEmission::RandomInit(k, v, rng)));
}

TEST(DiversifiedTrainerTest, MapObjectiveMonotone) {
  hmm::HmmModel<int> truth = RandomModel(10, 3, 8);
  prob::Rng rng(11);
  hmm::Dataset<int> data = hmm::SampleDataset(truth, 50, 10, rng);
  hmm::HmmModel<int> model = RandomModel(12, 3, 8);
  DiversifiedEmOptions opts;
  opts.alpha = 1.0;
  opts.max_iters = 15;
  opts.tol = 0.0;
  DiversifiedFitResult r = FitDiversifiedHmm(&model, data, opts);
  ASSERT_GE(r.map_objective_history.size(), 2u);
  for (size_t i = 1; i < r.map_objective_history.size(); ++i) {
    EXPECT_GE(r.map_objective_history[i],
              r.map_objective_history[i - 1] - 1e-6)
        << "MAP objective decreased at iteration " << i;
  }
}

TEST(DiversifiedTrainerTest, AlphaZeroTracksBaumWelch) {
  hmm::HmmModel<int> truth = RandomModel(13, 3, 8);
  prob::Rng rng(14);
  hmm::Dataset<int> data = hmm::SampleDataset(truth, 40, 8, rng);

  hmm::HmmModel<int> dhmm_model = RandomModel(15, 3, 8);
  hmm::HmmModel<int> bw_model = dhmm_model;  // identical start

  DiversifiedEmOptions opts;
  opts.alpha = 0.0;
  opts.max_iters = 8;
  opts.tol = 0.0;
  FitDiversifiedHmm(&dhmm_model, data, opts);

  hmm::EmOptions em;
  em.max_iters = 8;
  em.tol = 0.0;
  hmm::FitEm(&bw_model, data, em);

  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(dhmm_model.pi[i], bw_model.pi[i], 1e-9);
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(dhmm_model.a(i, j), bw_model.a(i, j), 1e-9);
    }
  }
}

TEST(DiversifiedTrainerTest, DiversityExceedsBaumWelchOnAmbiguousData) {
  // Ambiguous emissions (every state can emit every symbol with similar
  // probability) collapse plain EM's transition rows; the prior must keep
  // them apart.
  prob::Rng rng(16);
  linalg::Matrix flat_b(3, 6);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t v = 0; v < 6; ++v) {
      flat_b(i, v) = 1.0 + 0.2 * rng.Uniform();
    }
  }
  flat_b.NormalizeRows();
  hmm::HmmModel<int> truth(
      rng.DirichletSymmetric(3, 3.0), rng.RandomStochasticMatrix(3, 3, 0.4),
      std::make_unique<prob::CategoricalEmission>(flat_b));
  hmm::Dataset<int> data = hmm::SampleDataset(truth, 60, 10, rng);

  hmm::HmmModel<int> base = RandomModel(17, 3, 6);
  hmm::HmmModel<int> diver = base;

  hmm::EmOptions em;
  em.max_iters = 30;
  hmm::FitEm(&base, data, em);

  DiversifiedEmOptions opts;
  opts.alpha = 5.0;
  opts.max_iters = 30;
  FitDiversifiedHmm(&diver, data, opts);

  EXPECT_GT(eval::AveragePairwiseDiversity(diver.a),
            eval::AveragePairwiseDiversity(base.a));
}

TEST(DiversifiedTrainerTest, ConvergenceCriterionAcceptsNegativeWobble) {
  // Regression for the convergence lockout: the inner ascent is inexact, so
  // at the plateau the MAP objective can land a hair *below* the previous
  // value (observed: alternating gains of +-1e-13 around -775). The old
  // criterion required gain >= 0 and never fired on the negative side.
  EXPECT_TRUE(MapObjectiveConverged(-775.0, -775.0 - 1e-12, 1e-6));
  EXPECT_TRUE(MapObjectiveConverged(-775.0, -775.0 + 1e-12, 1e-6));
  // Real movement in either direction is still not convergence.
  EXPECT_FALSE(MapObjectiveConverged(-775.0, -774.0, 1e-6));
  EXPECT_FALSE(MapObjectiveConverged(-775.0, -776.0, 1e-6));
  // Relative scaling: a 1e-4 step is convergence only against a large
  // objective magnitude.
  EXPECT_TRUE(MapObjectiveConverged(-1e4, -1e4 - 1e-4, 1e-6));
  EXPECT_FALSE(MapObjectiveConverged(-1.0, -1.0 - 1e-4, 1e-6));
}

TEST(DiversifiedTrainerTest, RefitFromConvergedModelStopsImmediately) {
  // End-to-end: a model already at its MAP fixed point must converge in the
  // first couple of outer iterations instead of burning the whole budget.
  hmm::HmmModel<int> truth = RandomModel(50, 3, 8);
  prob::Rng rng(51);
  hmm::Dataset<int> data = hmm::SampleDataset(truth, 40, 10, rng);
  hmm::HmmModel<int> model = RandomModel(52, 3, 8);
  DiversifiedEmOptions opts;
  opts.alpha = 1.0;
  opts.max_iters = 250;
  opts.tol = 0.0;
  FitDiversifiedHmm(&model, data, opts);

  opts.max_iters = 20;
  opts.tol = 1e-6;
  DiversifiedFitResult r = FitDiversifiedHmm(&model, data, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 3);
}

TEST(DiversifiedTrainerTest, ReportsFinalDiagnostics) {
  hmm::HmmModel<int> truth = RandomModel(18, 2, 5);
  prob::Rng rng(19);
  hmm::Dataset<int> data = hmm::SampleDataset(truth, 20, 6, rng);
  hmm::HmmModel<int> model = RandomModel(20, 2, 5);
  DiversifiedEmOptions opts;
  opts.alpha = 0.5;
  opts.max_iters = 5;
  DiversifiedFitResult r = FitDiversifiedHmm(&model, data, opts);
  EXPECT_EQ(static_cast<size_t>(r.iterations),
            r.map_objective_history.size());
  EXPECT_NEAR(r.final_log_det,
              dpp::LogDetNormalizedKernel(model.a, opts.rho), 1e-12);
  EXPECT_TRUE(std::isfinite(r.final_map_objective));
}

// ------------------------------------------------- SupervisedDiversified ---

hmm::Dataset<int> LabeledData(uint64_t seed, size_t k, size_t v, size_t n,
                              size_t len) {
  hmm::HmmModel<int> truth = RandomModel(seed, k, v);
  prob::Rng rng(seed + 1);
  return hmm::SampleDataset(truth, n, len, rng);
}

std::unique_ptr<prob::EmissionModel<int>> UniformCategorical(size_t k,
                                                             size_t v) {
  return std::make_unique<prob::CategoricalEmission>(
      linalg::Matrix(k, v, 1.0 / static_cast<double>(v)), 0.1);
}

TEST(SupervisedDiversifiedTest, AlphaZeroKeepsCountEstimate) {
  hmm::Dataset<int> data = LabeledData(30, 3, 6, 50, 12);
  SupervisedDiversifiedOptions opts;
  opts.alpha = 0.0;
  SupervisedDiversifiedDiagnostics diag;
  hmm::HmmModel<int> m =
      FitSupervisedDiversified(data, 3, UniformCategorical(3, 6), opts, &diag);
  EXPECT_NEAR(std::sqrt(m.a.squared_distance(diag.a0)), 0.0, 1e-12);
}

TEST(SupervisedDiversifiedTest, DiversityImprovesOverCounts) {
  hmm::Dataset<int> data = LabeledData(31, 4, 6, 60, 12);
  SupervisedDiversifiedOptions opts;
  opts.alpha = 5.0;
  opts.tether_weight = 10.0;
  SupervisedDiversifiedDiagnostics diag;
  hmm::HmmModel<int> m =
      FitSupervisedDiversified(data, 4, UniformCategorical(4, 6), opts, &diag);
  EXPECT_GE(diag.log_det_a, diag.log_det_a0 - 1e-9);
  EXPECT_TRUE(m.a.IsRowStochastic(1e-8));
}

TEST(SupervisedDiversifiedTest, StrongTetherBoundsDrift) {
  hmm::Dataset<int> data = LabeledData(32, 3, 6, 50, 10);
  SupervisedDiversifiedOptions opts;
  opts.alpha = 10.0;
  opts.tether_weight = 1e5;  // the paper's OCR setting
  SupervisedDiversifiedDiagnostics diag;
  FitSupervisedDiversified(data, 3, UniformCategorical(3, 6), opts, &diag);
  EXPECT_LT(diag.drift, 0.05);
}

TEST(SupervisedDiversifiedTest, PreservesPiAndEmissionFromCounting) {
  hmm::Dataset<int> data = LabeledData(33, 3, 6, 40, 8);
  SupervisedDiversifiedOptions with_prior;
  with_prior.alpha = 5.0;
  with_prior.tether_weight = 100.0;
  hmm::HmmModel<int> m1 = FitSupervisedDiversified(
      data, 3, UniformCategorical(3, 6), with_prior);

  SupervisedDiversifiedOptions no_prior;
  no_prior.alpha = 0.0;
  hmm::HmmModel<int> m0 = FitSupervisedDiversified(
      data, 3, UniformCategorical(3, 6), no_prior);

  // Only the transition matrix is refined; pi must match.
  for (size_t i = 0; i < 3; ++i) EXPECT_NEAR(m1.pi[i], m0.pi[i], 1e-12);
}

}  // namespace
}  // namespace dhmm::core
