#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "eval/crossval.h"
#include "eval/diversity.h"
#include "eval/hungarian.h"
#include "eval/metrics.h"
#include "prob/rng.h"

namespace dhmm::eval {
namespace {

// --------------------------------------------------------------- Hungarian ---

TEST(HungarianTest, TrivialDiagonal) {
  linalg::Matrix cost{{1.0, 10.0}, {10.0, 1.0}};
  auto assign = SolveAssignment(cost);
  EXPECT_EQ(assign[0], 0);
  EXPECT_EQ(assign[1], 1);
  EXPECT_DOUBLE_EQ(AssignmentCost(cost, assign), 2.0);
}

TEST(HungarianTest, CrossAssignment) {
  linalg::Matrix cost{{10.0, 1.0}, {1.0, 10.0}};
  auto assign = SolveAssignment(cost);
  EXPECT_EQ(assign[0], 1);
  EXPECT_EQ(assign[1], 0);
}

TEST(HungarianTest, KnownThreeByThree) {
  // Enumerating all six permutations of this cost matrix gives minimum 12.
  linalg::Matrix cost{{4.0, 2.0, 8.0}, {4.0, 3.0, 7.0}, {3.0, 1.0, 6.0}};
  auto assign = SolveAssignment(cost);
  EXPECT_DOUBLE_EQ(AssignmentCost(cost, assign), 12.0);
}

double BruteForceMin(const linalg::Matrix& cost) {
  std::vector<int> perm(cost.rows());
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = static_cast<int>(i);
  double best = 1e300;
  do {
    double s = 0.0;
    for (size_t i = 0; i < perm.size(); ++i) {
      s += cost(i, static_cast<size_t>(perm[i]));
    }
    best = std::min(best, s);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

class HungarianPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(HungarianPropertyTest, MatchesBruteForce) {
  prob::Rng rng(static_cast<uint64_t>(GetParam()));
  size_t n = 2 + static_cast<size_t>(GetParam()) % 6;  // up to 7!
  linalg::Matrix cost(n, n);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < n; ++j) cost(i, j) = rng.Uniform(0.0, 10.0);
  auto assign = SolveAssignment(cost);
  // Valid permutation.
  std::vector<bool> used(n, false);
  for (int a : assign) {
    ASSERT_FALSE(used[static_cast<size_t>(a)]);
    used[static_cast<size_t>(a)] = true;
  }
  EXPECT_NEAR(AssignmentCost(cost, assign), BruteForceMin(cost), 1e-9);
}

TEST_P(HungarianPropertyTest, MaxAssignmentIsMinOfNegated) {
  prob::Rng rng(static_cast<uint64_t>(GetParam()) + 77);
  size_t n = 2 + static_cast<size_t>(GetParam()) % 5;
  linalg::Matrix value(n, n);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < n; ++j) value(i, j) = rng.Uniform(0.0, 5.0);
  auto assign = SolveMaxAssignment(value);
  linalg::Matrix neg = value;
  neg *= -1.0;
  EXPECT_NEAR(AssignmentCost(value, assign), -BruteForceMin(neg), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomCosts, HungarianPropertyTest,
                         ::testing::Range(0, 15));

TEST(HungarianTest, RectangularRowsLessThanCols) {
  linalg::Matrix cost{{5.0, 1.0, 9.0}, {1.0, 5.0, 9.0}};
  auto assign = SolveAssignment(cost);
  EXPECT_EQ(assign[0], 1);
  EXPECT_EQ(assign[1], 0);
}

// ----------------------------------------------------------------- Metrics ---

TEST(MetricsTest, ConfusionCounts) {
  LabelSequences pred = {{0, 0, 1}, {1}};
  LabelSequences gold = {{0, 1, 1}, {0}};
  linalg::Matrix c = BuildConfusion(pred, gold, 2);
  EXPECT_DOUBLE_EQ(c(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 1.0);
}

TEST(MetricsTest, OneToOneFindsBestPermutation) {
  // Predictions are gold with labels swapped: accuracy must be 1 after
  // alignment.
  LabelSequences gold = {{0, 1, 0, 1, 2, 2}};
  LabelSequences pred = {{1, 0, 1, 0, 2, 2}};
  AlignedAccuracy acc = OneToOneAccuracy(pred, gold, 3);
  EXPECT_DOUBLE_EQ(acc.accuracy, 1.0);
  EXPECT_EQ(acc.mapping[0], 1);
  EXPECT_EQ(acc.mapping[1], 0);
  EXPECT_EQ(acc.mapping[2], 2);
}

TEST(MetricsTest, OneToOneIsBijective) {
  // Two predicted states both matching gold 0: 1-to-1 must sacrifice one.
  LabelSequences gold = {{0, 0, 0, 0}};
  LabelSequences pred = {{0, 1, 0, 1}};
  AlignedAccuracy acc = OneToOneAccuracy(pred, gold, 2);
  EXPECT_DOUBLE_EQ(acc.accuracy, 0.5);
}

TEST(MetricsTest, ManyToOneAtLeastOneToOne) {
  prob::Rng rng(5);
  LabelSequences gold(10), pred(10);
  for (int s = 0; s < 10; ++s) {
    for (int t = 0; t < 20; ++t) {
      gold[s].push_back(static_cast<int>(rng.UniformInt(4)));
      pred[s].push_back(static_cast<int>(rng.UniformInt(4)));
    }
  }
  double one = OneToOneAccuracy(pred, gold, 4).accuracy;
  double many = ManyToOneAccuracy(pred, gold, 4).accuracy;
  EXPECT_GE(many, one - 1e-12);
}

TEST(MetricsTest, FrameAccuracy) {
  LabelSequences pred = {{0, 1, 2}, {2, 2}};
  LabelSequences gold = {{0, 1, 1}, {2, 0}};
  EXPECT_DOUBLE_EQ(FrameAccuracy(pred, gold), 3.0 / 5.0);
}

TEST(MetricsTest, StateHistogramAndEffectiveStates) {
  LabelSequences labels = {{0, 0, 0, 1}, {1, 2}};
  linalg::Vector hist = StateHistogram(labels, 4);
  EXPECT_DOUBLE_EQ(hist[0], 3.0);
  EXPECT_DOUBLE_EQ(hist[1], 2.0);
  EXPECT_DOUBLE_EQ(hist[2], 1.0);
  EXPECT_DOUBLE_EQ(hist[3], 0.0);
  EXPECT_EQ(CountEffectiveStates(hist, 2.0), 2);
  EXPECT_EQ(CountEffectiveStates(hist, 1.0), 3);
  EXPECT_EQ(CountEffectiveStates(hist, 0.5), 3);
}

TEST(MetricsTest, MeanStd) {
  MeanStd ms = ComputeMeanStd({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_NEAR(ms.mean, 5.0, 1e-12);
  EXPECT_NEAR(ms.std, std::sqrt(32.0 / 7.0), 1e-12);
  MeanStd single = ComputeMeanStd({3.0});
  EXPECT_DOUBLE_EQ(single.mean, 3.0);
  EXPECT_DOUBLE_EQ(single.std, 0.0);
}

// --------------------------------------------------------------- Diversity ---

TEST(DiversityTest, BhattacharyyaIdentities) {
  linalg::Vector p{0.5, 0.5};
  EXPECT_NEAR(BhattacharyyaCoefficient(p, p), 1.0, 1e-12);
  EXPECT_NEAR(BhattacharyyaDistance(p, p), 0.0, 1e-12);
  linalg::Vector q{1.0, 0.0};
  EXPECT_NEAR(BhattacharyyaCoefficient(p, q), std::sqrt(0.5), 1e-12);
  EXPECT_NEAR(BhattacharyyaDistance(p, q), -std::log(std::sqrt(0.5)), 1e-12);
}

TEST(DiversityTest, DisjointSupportsAreMaximallyDistant) {
  linalg::Vector p{1.0, 0.0};
  linalg::Vector q{0.0, 1.0};
  EXPECT_NEAR(BhattacharyyaCoefficient(p, q), 0.0, 1e-12);
  EXPECT_GT(BhattacharyyaDistance(p, q), 100.0);  // effectively infinite
  EXPECT_NEAR(CosineDistance(p, q), 1.0, 1e-12);
}

TEST(DiversityTest, SymmetricInArguments) {
  prob::Rng rng(6);
  linalg::Vector p = rng.DirichletSymmetric(5, 1.0);
  linalg::Vector q = rng.DirichletSymmetric(5, 1.0);
  EXPECT_NEAR(BhattacharyyaDistance(p, q), BhattacharyyaDistance(q, p),
              1e-12);
  EXPECT_NEAR(CosineDistance(p, q), CosineDistance(q, p), 1e-12);
}

TEST(DiversityTest, AveragePairwiseKnownValue) {
  linalg::Matrix a{{1.0, 0.0}, {0.0, 1.0}};
  // Only one pair with (clamped) BC of ~0 -> distance -log(1e-300) huge; use
  // cosine for the exact value.
  EXPECT_NEAR(AveragePairwiseDiversity(a, DiversityMeasure::kCosine), 1.0,
              1e-12);
}

TEST(DiversityTest, MorePeakedRowsAreMoreDiverse) {
  linalg::Matrix peaked{{0.9, 0.05, 0.05}, {0.05, 0.9, 0.05},
                        {0.05, 0.05, 0.9}};
  linalg::Matrix flat{{0.4, 0.3, 0.3}, {0.3, 0.4, 0.3}, {0.3, 0.3, 0.4}};
  EXPECT_GT(AveragePairwiseDiversity(peaked), AveragePairwiseDiversity(flat));
  EXPECT_GT(AveragePairwiseDiversity(peaked, DiversityMeasure::kCosine),
            AveragePairwiseDiversity(flat, DiversityMeasure::kCosine));
}

TEST(DiversityTest, RowProfileShape) {
  linalg::Matrix a{{0.8, 0.1, 0.1}, {0.1, 0.8, 0.1}, {0.34, 0.33, 0.33}};
  linalg::Vector profile = RowDiversityProfile(a, 0);
  EXPECT_DOUBLE_EQ(profile[0], 0.0);
  EXPECT_GT(profile[1], profile[2]);  // row 1 is farther from row 0 than row 2
}

// ---------------------------------------------------------------- KFold ---

TEST(KFoldTest, PartitionsAllIndicesExactlyOnce) {
  prob::Rng rng(7);
  auto folds = KFoldSplit(103, 10, rng);
  ASSERT_EQ(folds.size(), 10u);
  std::vector<int> seen(103, 0);
  for (const auto& fold : folds) {
    for (size_t i : fold.test) ++seen[i];
    EXPECT_EQ(fold.train.size() + fold.test.size(), 103u);
  }
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(KFoldTest, FoldSizesBalanced) {
  prob::Rng rng(8);
  auto folds = KFoldSplit(25, 4, rng);
  for (const auto& fold : folds) {
    EXPECT_GE(fold.test.size(), 6u);
    EXPECT_LE(fold.test.size(), 7u);
  }
}

TEST(KFoldTest, TrainAndTestDisjoint) {
  prob::Rng rng(9);
  auto folds = KFoldSplit(30, 5, rng);
  for (const auto& fold : folds) {
    std::vector<bool> in_test(30, false);
    for (size_t i : fold.test) in_test[i] = true;
    for (size_t i : fold.train) EXPECT_FALSE(in_test[i]);
  }
}

TEST(KFoldTest, SubsetGathers) {
  std::vector<int> data = {10, 20, 30, 40};
  auto sub = Subset(data, {3, 0});
  ASSERT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub[0], 40);
  EXPECT_EQ(sub[1], 10);
}

}  // namespace
}  // namespace dhmm::eval
