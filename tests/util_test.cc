#include <gtest/gtest.h>

#include "util/flags.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/table.h"

namespace dhmm {
namespace {

// ---------------------------------------------------------------- Status ---

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::NotConverged("x").code(), StatusCode::kNotConverged);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, OkStatusWithoutValueBecomesInternalError) {
  Result<int> r(Status::OK());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

// ----------------------------------------------------------- string_util ---

TEST(StringUtilTest, StrFormatBasic) {
  EXPECT_EQ(StrFormat("x=%d y=%.2f", 3, 1.5), "x=3 y=1.50");
  EXPECT_EQ(StrFormat("%s", "abc"), "abc");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringUtilTest, StrFormatLongOutput) {
  std::string s = StrFormat("%0512d", 7);
  EXPECT_EQ(s.size(), 512u);
  EXPECT_EQ(s.back(), '7');
}

TEST(StringUtilTest, StrJoin) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ","), "a,b,c");
  EXPECT_EQ(StrJoin({"solo"}, ","), "solo");
  EXPECT_EQ(StrJoin({}, ","), "");
}

TEST(StringUtilTest, Padding) {
  EXPECT_EQ(PadLeft("ab", 4), "  ab");
  EXPECT_EQ(PadRight("ab", 4), "ab  ");
  EXPECT_EQ(PadLeft("abcde", 3), "abcde");  // no truncation
}

TEST(StringUtilTest, StrSplit) {
  auto parts = StrSplit("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(StrSplit("", ',').size(), 1u);
}

// ----------------------------------------------------------------- Table ---

TEST(TableTest, AlignedRendering) {
  TextTable t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22.5"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TableTest, CsvLines) {
  TextTable t({"a", "b"});
  t.AddRow({"1", "2"});
  std::string csv = t.ToCsvLines();
  EXPECT_NE(csv.find("csv:a,b"), std::string::npos);
  EXPECT_NE(csv.find("csv:1,2"), std::string::npos);
}

TEST(TableTest, BarChartScalesToMax) {
  std::string chart = AsciiBarChart({"x", "y"}, {1.0, 2.0}, 10);
  // The larger value gets the full width of '#'s.
  EXPECT_NE(chart.find("##########"), std::string::npos);
}

TEST(TableTest, SeriesChartRenders) {
  std::vector<double> xs = {1, 2, 3, 4};
  std::string chart =
      AsciiSeriesChart(xs, {{0.1, 0.2, 0.3, 0.4}, {0.4, 0.3, 0.2, 0.1}},
                       {"up", "down"}, 8, 30);
  EXPECT_NE(chart.find("up"), std::string::npos);
  EXPECT_NE(chart.find("down"), std::string::npos);
  EXPECT_NE(chart.find('*'), std::string::npos);
  EXPECT_NE(chart.find('o'), std::string::npos);
}

// ----------------------------------------------------------------- Flags ---

TEST(FlagsTest, ParsesKeyValueAndSwitches) {
  const char* argv[] = {"prog", "--alpha=2.5", "--n=10", "--verbose",
                        "--name=test"};
  FlagParser p;
  ASSERT_TRUE(p.Parse(5, argv).ok());
  EXPECT_DOUBLE_EQ(p.GetDouble("alpha", 0.0), 2.5);
  EXPECT_EQ(p.GetInt("n", 0), 10);
  EXPECT_TRUE(p.GetBool("verbose", false));
  EXPECT_EQ(p.GetString("name", ""), "test");
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  FlagParser p;
  ASSERT_TRUE(p.Parse(1, argv).ok());
  EXPECT_EQ(p.GetInt("missing", 7), 7);
  EXPECT_DOUBLE_EQ(p.GetDouble("missing", 1.5), 1.5);
  EXPECT_FALSE(p.GetBool("missing", false));
  EXPECT_FALSE(p.Has("missing"));
}

TEST(FlagsTest, RejectsPositional) {
  const char* argv[] = {"prog", "positional"};
  FlagParser p;
  EXPECT_FALSE(p.Parse(2, argv).ok());
}

TEST(FlagsTest, EmptyArgvIsOk) {
  // Bench entrypoints may be exec'd with no argv at all; Parse must not read
  // past the (empty) array.
  FlagParser p;
  ASSERT_TRUE(p.Parse(0, nullptr).ok());
  EXPECT_EQ(p.GetInt("anything", 3), 3);
}

TEST(FlagsTest, DuplicateFlagLastWins) {
  const char* argv[] = {"prog", "--n=1", "--n=2", "--n=3"};
  FlagParser p;
  ASSERT_TRUE(p.Parse(4, argv).ok());
  EXPECT_EQ(p.GetInt("n", 0), 3);
}

TEST(FlagsTest, EmptyValueIsPresentButEmpty) {
  const char* argv[] = {"prog", "--name="};
  FlagParser p;
  ASSERT_TRUE(p.Parse(2, argv).ok());
  EXPECT_TRUE(p.Has("name"));
  EXPECT_EQ(p.GetString("name", "default"), "");
}

TEST(FlagsTest, BoolValueVariants) {
  const char* argv[] = {"prog", "--a=true", "--b=1", "--c=0", "--d=yes"};
  FlagParser p;
  ASSERT_TRUE(p.Parse(5, argv).ok());
  EXPECT_TRUE(p.GetBool("a", false));
  EXPECT_TRUE(p.GetBool("b", false));
  EXPECT_FALSE(p.GetBool("c", true));
  EXPECT_FALSE(p.GetBool("d", true));  // only "true"/"1" are truthy
}

TEST(FlagsTest, PositionalErrorNamesOffendingToken) {
  const char* argv[] = {"prog", "--ok=1", "oops"};
  FlagParser p;
  Status st = p.Parse(3, argv);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("oops"), std::string::npos);
}

TEST(FlagsDeathTest, UnparseableNumberAborts) {
  const char* argv[] = {"prog", "--n=abc", "--x=1.5zzz"};
  FlagParser p;
  ASSERT_TRUE(p.Parse(3, argv).ok());
  EXPECT_DEATH(p.GetInt("n", 0), "not an integer");
  EXPECT_DEATH(p.GetDouble("x", 0.0), "not a number");
}

// ------------------------------------------------ Status propagation ---

Status FailWhenNegative(int v) {
  if (v < 0) return Status::OutOfRange("negative input");
  return Status::OK();
}

Status PropagatesViaMacro(int v) {
  DHMM_RETURN_NOT_OK(FailWhenNegative(v));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(PropagatesViaMacro(1).ok());
  Status st = PropagatesViaMacro(-1);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(st.message(), "negative input");
}

TEST(StatusTest, ToStringRendersCodeAndMessage) {
  EXPECT_EQ(Status::OK().ToString(), "OK");
  std::string rendered = Status::IOError("missing file").ToString();
  EXPECT_NE(rendered.find("missing file"), std::string::npos);
  EXPECT_NE(rendered, "missing file");  // the code name is included too
}

}  // namespace
}  // namespace dhmm
