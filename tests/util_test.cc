#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/flags.h"
#include "util/mpsc_ring.h"
#include "util/slab_arena.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace dhmm {
namespace {

// ---------------------------------------------------------------- Status ---

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::NotConverged("x").code(), StatusCode::kNotConverged);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
}

TEST(StatusTest, ServingCodesRenderNames) {
  EXPECT_EQ(Status::DeadlineExceeded("late").ToString(),
            "DeadlineExceeded: late");
  EXPECT_EQ(Status::Unavailable("shed").ToString(), "Unavailable: shed");
}

TEST(StatusTest, FromCodeRoundTripsAndRejectsOutOfEnum) {
  // Every named constructor's code survives a FromCode round trip — the
  // wire decoder relies on this.
  for (StatusCode code :
       {StatusCode::kInvalidArgument, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kNotFound,
        StatusCode::kIOError, StatusCode::kNotConverged, StatusCode::kInternal,
        StatusCode::kDeadlineExceeded, StatusCode::kUnavailable}) {
    const Status s = Status::FromCode(code, "m");
    EXPECT_EQ(s.code(), code);
    EXPECT_EQ(s.message(), "m");
  }
  EXPECT_TRUE(Status::FromCode(StatusCode::kOk, "ignored").ok());
  // An out-of-enum code (a newer peer) degrades to Internal, never aborts
  // and never forges OK.
  const Status weird = Status::FromCode(static_cast<StatusCode>(99), "m");
  EXPECT_EQ(weird.code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, OkStatusWithoutValueBecomesInternalError) {
  Result<int> r(Status::OK());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, ValueOrFallsBackOnError) {
  Result<int> ok(7);
  EXPECT_EQ(ok.value_or(-1), 7);
  Result<int> err(Status::NotFound("nope"));
  EXPECT_EQ(err.value_or(-1), -1);
  Result<std::string> moved(std::string("payload"));
  EXPECT_EQ(std::move(moved).value_or("fallback"), "payload");
}

TEST(ResultTest, CodeMirrorsStatus) {
  EXPECT_EQ(Result<int>(3).code(), StatusCode::kOk);
  EXPECT_EQ(Result<int>(Status::Unavailable("x")).code(),
            StatusCode::kUnavailable);
}

// -------------------------------------------------------------- MpscRing ---

TEST(MpscRingTest, PushPopIsFifo) {
  util::MpscRing<int> ring(8);
  EXPECT_EQ(ring.capacity(), 8u);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ring.TryPush(i));
  EXPECT_EQ(ring.size_approx(), 5u);
  int v = -1;
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(ring.TryPop(&v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(ring.TryPop(&v));
}

TEST(MpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(util::MpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(util::MpscRing<int>(5).capacity(), 8u);
  EXPECT_EQ(util::MpscRing<int>(64).capacity(), 64u);
}

TEST(MpscRingTest, FullRingRefusesPushUntilPop) {
  util::MpscRing<int> ring(2);
  EXPECT_TRUE(ring.TryPush(1));
  EXPECT_TRUE(ring.TryPush(2));
  EXPECT_FALSE(ring.TryPush(3));  // backpressure: shed, don't block
  int v = 0;
  EXPECT_TRUE(ring.TryPop(&v));
  EXPECT_TRUE(ring.TryPush(3));
  EXPECT_TRUE(ring.TryPop(&v));
  EXPECT_EQ(v, 2);
  EXPECT_TRUE(ring.TryPop(&v));
  EXPECT_EQ(v, 3);
}

TEST(MpscRingTest, FullWraparoundReuseStaysFifo) {
  // Every cell is reused many times, driving the Vyukov sequence numbers
  // far past the capacity: a bug in the pos + mask_ + 1 reset would
  // surface as a stuck push/pop or an out-of-order item within a few laps.
  util::MpscRing<int> ring(4);
  int next_push = 0;
  int next_pop = 0;
  int v = -1;
  for (int lap = 0; lap < 1000; ++lap) {
    while (ring.TryPush(next_push)) ++next_push;  // fill to capacity
    EXPECT_EQ(ring.size_approx(), ring.capacity());
    while (ring.TryPop(&v)) {
      ASSERT_EQ(v, next_pop);
      ++next_pop;
    }
  }
  EXPECT_EQ(next_push, next_pop);
  EXPECT_EQ(next_push, 1000 * static_cast<int>(ring.capacity()));
}

TEST(MpscRingTest, MisalignedWraparoundReuseStaysFifo) {
  // Push 3 / pop 2 per step so the cursors cross the capacity boundary at
  // every possible offset, not just multiples of the ring size.
  util::MpscRing<int> ring(4);
  int push = 0;
  int pop = 0;
  int v = -1;
  for (int step = 0; step < 5000; ++step) {
    for (int i = 0; i < 3 && ring.TryPush(push); ++i) ++push;
    for (int i = 0; i < 2 && ring.TryPop(&v); ++i) {
      ASSERT_EQ(v, pop);
      ++pop;
    }
  }
  while (ring.TryPop(&v)) {
    ASSERT_EQ(v, pop);
    ++pop;
  }
  EXPECT_EQ(push, pop);
  EXPECT_GT(push, 10000);
}

TEST(MpscRingTest, ConcurrentProducersDeliverEveryItemExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  util::MpscRing<int> ring(128);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int item = p * kPerProducer + i;
        while (!ring.TryPush(item)) std::this_thread::yield();
      }
    });
  }
  constexpr size_t kTotal = size_t{kProducers} * kPerProducer;
  std::vector<int> seen;
  seen.reserve(kTotal);
  int v = 0;
  while (seen.size() < kTotal) {
    if (ring.TryPop(&v)) {
      seen.push_back(v);
    } else {
      std::this_thread::yield();
    }
  }
  for (auto& t : producers) t.join();
  EXPECT_FALSE(ring.TryPop(&v));
  std::sort(seen.begin(), seen.end());
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    ASSERT_EQ(seen[static_cast<size_t>(i)], i);
  }
}

// ------------------------------------------------------------ ThreadPool ---

TEST(ThreadPoolTest, DestructionWaitsForInFlightParallelFor) {
  // A destructor racing an in-flight ParallelFor must let the round finish
  // — every queued item executed exactly once, no stranded waiter — before
  // telling the workers to exit.
  constexpr size_t kItems = 64;
  auto pool = std::make_unique<util::ThreadPool>(4);
  std::atomic<size_t> executed{0};
  std::atomic<bool> started{false};
  std::thread runner([&] {
    pool->ParallelFor(kItems, [&](int, size_t) {
      started.store(true, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      executed.fetch_add(1, std::memory_order_relaxed);
    });
  });
  while (!started.load(std::memory_order_relaxed)) {
    std::this_thread::yield();
  }
  // Items are still queued (64 ms of work vs the first item barely done).
  pool.reset();
  EXPECT_EQ(executed.load(std::memory_order_relaxed), kItems);
  runner.join();
}

TEST(ThreadPoolTest, RepeatedConstructDestroyWithWork) {
  // Teardown immediately after a round: the quiescence wait in the
  // destructor must see the cleared task and not hang or drop items.
  for (int iter = 0; iter < 20; ++iter) {
    util::ThreadPool pool(3);
    std::atomic<size_t> executed{0};
    pool.ParallelFor(16, [&](int, size_t) {
      executed.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(executed.load(std::memory_order_relaxed), 16u);
  }
}

// ----------------------------------------------------------- string_util ---

TEST(StringUtilTest, StrFormatBasic) {
  EXPECT_EQ(StrFormat("x=%d y=%.2f", 3, 1.5), "x=3 y=1.50");
  EXPECT_EQ(StrFormat("%s", "abc"), "abc");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringUtilTest, StrFormatLongOutput) {
  std::string s = StrFormat("%0512d", 7);
  EXPECT_EQ(s.size(), 512u);
  EXPECT_EQ(s.back(), '7');
}

TEST(StringUtilTest, StrJoin) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ","), "a,b,c");
  EXPECT_EQ(StrJoin({"solo"}, ","), "solo");
  EXPECT_EQ(StrJoin({}, ","), "");
}

TEST(StringUtilTest, Padding) {
  EXPECT_EQ(PadLeft("ab", 4), "  ab");
  EXPECT_EQ(PadRight("ab", 4), "ab  ");
  EXPECT_EQ(PadLeft("abcde", 3), "abcde");  // no truncation
}

TEST(StringUtilTest, StrSplit) {
  auto parts = StrSplit("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(StrSplit("", ',').size(), 1u);
}

// ----------------------------------------------------------------- Table ---

TEST(TableTest, AlignedRendering) {
  TextTable t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22.5"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TableTest, CsvLines) {
  TextTable t({"a", "b"});
  t.AddRow({"1", "2"});
  std::string csv = t.ToCsvLines();
  EXPECT_NE(csv.find("csv:a,b"), std::string::npos);
  EXPECT_NE(csv.find("csv:1,2"), std::string::npos);
}

TEST(TableTest, BarChartScalesToMax) {
  std::string chart = AsciiBarChart({"x", "y"}, {1.0, 2.0}, 10);
  // The larger value gets the full width of '#'s.
  EXPECT_NE(chart.find("##########"), std::string::npos);
}

TEST(TableTest, SeriesChartRenders) {
  std::vector<double> xs = {1, 2, 3, 4};
  std::string chart =
      AsciiSeriesChart(xs, {{0.1, 0.2, 0.3, 0.4}, {0.4, 0.3, 0.2, 0.1}},
                       {"up", "down"}, 8, 30);
  EXPECT_NE(chart.find("up"), std::string::npos);
  EXPECT_NE(chart.find("down"), std::string::npos);
  EXPECT_NE(chart.find('*'), std::string::npos);
  EXPECT_NE(chart.find('o'), std::string::npos);
}

// ----------------------------------------------------------------- Flags ---

TEST(FlagsTest, ParsesKeyValueAndSwitches) {
  const char* argv[] = {"prog", "--alpha=2.5", "--n=10", "--verbose",
                        "--name=test"};
  FlagParser p;
  ASSERT_TRUE(p.Parse(5, argv).ok());
  EXPECT_DOUBLE_EQ(p.GetDouble("alpha", 0.0), 2.5);
  EXPECT_EQ(p.GetInt("n", 0), 10);
  EXPECT_TRUE(p.GetBool("verbose", false));
  EXPECT_EQ(p.GetString("name", ""), "test");
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  FlagParser p;
  ASSERT_TRUE(p.Parse(1, argv).ok());
  EXPECT_EQ(p.GetInt("missing", 7), 7);
  EXPECT_DOUBLE_EQ(p.GetDouble("missing", 1.5), 1.5);
  EXPECT_FALSE(p.GetBool("missing", false));
  EXPECT_FALSE(p.Has("missing"));
}

TEST(FlagsTest, RejectsPositional) {
  const char* argv[] = {"prog", "positional"};
  FlagParser p;
  EXPECT_FALSE(p.Parse(2, argv).ok());
}

TEST(FlagsTest, EmptyArgvIsOk) {
  // Bench entrypoints may be exec'd with no argv at all; Parse must not read
  // past the (empty) array.
  FlagParser p;
  ASSERT_TRUE(p.Parse(0, nullptr).ok());
  EXPECT_EQ(p.GetInt("anything", 3), 3);
}

TEST(FlagsTest, DuplicateFlagLastWins) {
  const char* argv[] = {"prog", "--n=1", "--n=2", "--n=3"};
  FlagParser p;
  ASSERT_TRUE(p.Parse(4, argv).ok());
  EXPECT_EQ(p.GetInt("n", 0), 3);
}

TEST(FlagsTest, EmptyValueIsPresentButEmpty) {
  const char* argv[] = {"prog", "--name="};
  FlagParser p;
  ASSERT_TRUE(p.Parse(2, argv).ok());
  EXPECT_TRUE(p.Has("name"));
  EXPECT_EQ(p.GetString("name", "default"), "");
}

TEST(FlagsTest, BoolValueVariants) {
  // Case-insensitive true/false, 1/0, yes/no, on/off all parse strictly;
  // `--d=yes` and `--e=TRUE` used to silently map to false.
  const char* argv[] = {"prog",   "--a=true", "--b=1",  "--c=0",
                        "--d=yes", "--e=TRUE", "--f=No", "--g=off"};
  FlagParser p;
  ASSERT_TRUE(p.Parse(8, argv).ok());
  EXPECT_TRUE(p.GetBool("a", false));
  EXPECT_TRUE(p.GetBool("b", false));
  EXPECT_FALSE(p.GetBool("c", true));
  EXPECT_TRUE(p.GetBool("d", false));
  EXPECT_TRUE(p.GetBool("e", false));
  EXPECT_FALSE(p.GetBool("f", true));
  EXPECT_FALSE(p.GetBool("g", true));
}

TEST(FlagsTest, UnknownBoolSpellingIsErrorNotFalse) {
  const char* argv[] = {"prog", "--flag=maybe"};
  FlagParser p;
  ASSERT_TRUE(p.Parse(2, argv).ok());
  Result<bool> r = p.GetBool("flag");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  // Defaulted getter falls back instead of aborting or guessing.
  EXPECT_TRUE(p.GetBool("flag", true));
  EXPECT_FALSE(p.GetBool("flag", false));
}

TEST(FlagsTest, PositionalErrorNamesOffendingToken) {
  const char* argv[] = {"prog", "--ok=1", "oops"};
  FlagParser p;
  Status st = p.Parse(3, argv);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("oops"), std::string::npos);
}

TEST(FlagsTest, MalformedNumberFallsBackToDefault) {
  // These used to DHMM_CHECK-abort the whole process.
  const char* argv[] = {"prog", "--n=abc", "--x=1.5zzz"};
  FlagParser p;
  ASSERT_TRUE(p.Parse(3, argv).ok());
  EXPECT_EQ(p.GetInt("n", 7), 7);
  EXPECT_DOUBLE_EQ(p.GetDouble("x", 2.5), 2.5);
}

TEST(FlagsTest, StrictGettersSurfaceMalformedValues) {
  const char* argv[] = {"prog", "--n=abc", "--x=1.5zzz", "--ok=42"};
  FlagParser p;
  ASSERT_TRUE(p.Parse(4, argv).ok());
  EXPECT_EQ(p.GetInt("n").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(p.GetDouble("x").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(p.GetInt("absent").status().code(), StatusCode::kNotFound);
  Result<int> ok = p.GetInt("ok");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
}

TEST(FlagsTest, EmptyNumericValueIsErrorNotZero) {
  // `--n=` used to land strtol's end pointer on the terminating NUL and
  // silently parse as 0 / 0.0.
  const char* argv[] = {"prog", "--n=", "--x="};
  FlagParser p;
  ASSERT_TRUE(p.Parse(3, argv).ok());
  EXPECT_EQ(p.GetInt("n").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(p.GetDouble("x").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(p.GetInt("n", 9), 9);
  EXPECT_DOUBLE_EQ(p.GetDouble("x", 1.25), 1.25);
}

TEST(FlagsTest, NumericOverflowRejected) {
  const char* argv[] = {"prog", "--n=99999999999999999999", "--m=-5000000000",
                        "--x=1e400", "--tiny=1e-320"};
  FlagParser p;
  ASSERT_TRUE(p.Parse(5, argv).ok());
  EXPECT_EQ(p.GetInt("n").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(p.GetInt("m").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(p.GetDouble("x").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(p.GetInt("n", 3), 3);
  // Gradual underflow still yields a usable (denormal) value.
  Result<double> tiny = p.GetDouble("tiny");
  ASSERT_TRUE(tiny.ok());
  EXPECT_GT(tiny.value(), 0.0);
}

TEST(FlagsTest, UnreadFlagsReported) {
  const char* argv[] = {"prog", "--alpha=1.5", "--alpah=2.0", "--verbose"};
  FlagParser p;
  ASSERT_TRUE(p.Parse(4, argv).ok());
  EXPECT_DOUBLE_EQ(p.GetDouble("alpha", 0.0), 1.5);
  EXPECT_TRUE(p.GetBool("verbose", false));
  std::vector<std::string> unread = p.UnreadFlags();
  ASSERT_EQ(unread.size(), 1u);
  EXPECT_EQ(unread[0], "alpah");  // the typo surfaces
  Status st = p.VerifyAllRead();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("alpah"), std::string::npos);
  // Reading it (even via Has) clears the complaint.
  EXPECT_TRUE(p.Has("alpah"));
  EXPECT_TRUE(p.VerifyAllRead().ok());
}

// ------------------------------------------------ Status propagation ---

Status FailWhenNegative(int v) {
  if (v < 0) return Status::OutOfRange("negative input");
  return Status::OK();
}

Status PropagatesViaMacro(int v) {
  DHMM_RETURN_NOT_OK(FailWhenNegative(v));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(PropagatesViaMacro(1).ok());
  Status st = PropagatesViaMacro(-1);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(st.message(), "negative input");
}

TEST(StatusTest, ToStringRendersCodeAndMessage) {
  EXPECT_EQ(Status::OK().ToString(), "OK");
  std::string rendered = Status::IOError("missing file").ToString();
  EXPECT_NE(rendered.find("missing file"), std::string::npos);
  EXPECT_NE(rendered, "missing file");  // the code name is included too
}

// --------------------------------------------------------- SlabArena ---

TEST(SlabArenaTest, BlocksAreAlignedAndSizeRoundsUp) {
  // 100 bytes rounds up to the 64-byte alignment grain (128).
  util::SlabArena arena(100, 4);
  EXPECT_EQ(arena.block_bytes(), 128u);
  EXPECT_EQ(arena.blocks_per_slab(), 4u);
  for (int i = 0; i < 9; ++i) {
    void* p = arena.Allocate();
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % util::SlabArena::kBlockAlignment,
              0u);
  }
}

TEST(SlabArenaTest, GrowsBySlabsAndBlocksAreDistinct) {
  util::SlabArena arena(sizeof(double) * 3, 4);
  std::vector<void*> blocks;
  for (int i = 0; i < 9; ++i) blocks.push_back(arena.Allocate());
  // 9 blocks at 4 per slab => 3 slabs, capacity 12.
  EXPECT_EQ(arena.slab_count(), 3u);
  EXPECT_EQ(arena.capacity(), 12u);
  EXPECT_EQ(arena.in_use(), 9u);
  std::sort(blocks.begin(), blocks.end());
  EXPECT_EQ(std::adjacent_find(blocks.begin(), blocks.end()), blocks.end());
  // Every block is fully writable without trampling its neighbors.
  for (size_t b = 0; b < blocks.size(); ++b) {
    auto* d = static_cast<unsigned char*>(blocks[b]);
    for (size_t i = 0; i < arena.block_bytes(); ++i) {
      d[i] = static_cast<unsigned char>(b);
    }
  }
  for (size_t b = 0; b < blocks.size(); ++b) {
    auto* d = static_cast<unsigned char*>(blocks[b]);
    for (size_t i = 0; i < arena.block_bytes(); ++i) {
      ASSERT_EQ(d[i], static_cast<unsigned char>(b));
    }
  }
}

TEST(SlabArenaTest, ReleaseRecyclesLifoWithoutGrowing) {
  util::SlabArena arena(64, 2);
  void* a = arena.Allocate();
  void* b = arena.Allocate();
  EXPECT_EQ(arena.in_use(), 2u);
  arena.Release(b);
  arena.Release(a);
  EXPECT_EQ(arena.in_use(), 0u);
  // LIFO: the most recently released block comes back first.
  EXPECT_EQ(arena.Allocate(), a);
  EXPECT_EQ(arena.Allocate(), b);
  EXPECT_EQ(arena.slab_count(), 1u);  // no growth through the cycle
}

TEST(SlabArenaTest, GrowOnlyHighWaterMark) {
  util::SlabArena arena(32, 4);
  std::vector<void*> blocks;
  for (int i = 0; i < 8; ++i) blocks.push_back(arena.Allocate());
  const size_t slabs_at_peak = arena.slab_count();
  for (void* p : blocks) arena.Release(p);
  EXPECT_EQ(arena.in_use(), 0u);
  // Re-reaching the high-water mark touches no new slabs.
  for (int i = 0; i < 8; ++i) arena.Allocate();
  EXPECT_EQ(arena.slab_count(), slabs_at_peak);
  EXPECT_EQ(arena.in_use(), 8u);
}

}  // namespace
}  // namespace dhmm
