#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "prob/bernoulli_emission.h"
#include "prob/categorical_emission.h"
#include "prob/gaussian_emission.h"
#include "prob/logsumexp.h"
#include "prob/rng.h"

namespace dhmm::prob {
namespace {

// ------------------------------------------------------------------- Rng ---

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.NextU64() == b.NextU64();
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(5);
  double mean = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    mean += u;
  }
  mean /= 10000.0;
  EXPECT_NEAR(mean, 0.5, 0.02);
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(6);
  std::vector<int> hist(7, 0);
  for (int i = 0; i < 7000; ++i) {
    uint64_t v = rng.UniformInt(7);
    ASSERT_LT(v, 7u);
    ++hist[v];
  }
  for (int h : hist) EXPECT_GT(h, 700);  // ~1000 each
}

TEST(RngTest, GaussianMoments) {
  Rng rng(7);
  double sum = 0.0, sumsq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sumsq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.03);
}

TEST(RngTest, GaussianScaled) {
  Rng rng(8);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, GammaMeanMatchesShape) {
  Rng rng(9);
  for (double shape : {0.5, 1.0, 2.0, 5.0}) {
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
      double g = rng.Gamma(shape);
      ASSERT_GT(g, 0.0);
      sum += g;
    }
    EXPECT_NEAR(sum / n, shape, 0.1 * shape + 0.02);
  }
}

TEST(RngTest, DirichletOnSimplex) {
  Rng rng(10);
  for (int trial = 0; trial < 20; ++trial) {
    linalg::Vector d = rng.DirichletSymmetric(5, 0.7);
    double s = 0.0;
    for (size_t i = 0; i < d.size(); ++i) {
      ASSERT_GE(d[i], 0.0);
      s += d[i];
    }
    EXPECT_NEAR(s, 1.0, 1e-12);
  }
}

TEST(RngTest, DirichletConcentrationControlsSpread) {
  Rng rng(11);
  // Very high concentration -> near uniform; very low -> near corner.
  linalg::Vector flat = rng.Dirichlet(linalg::Vector(4, 500.0));
  for (size_t i = 0; i < 4; ++i) EXPECT_NEAR(flat[i], 0.25, 0.1);
  double max_sharp = 0.0;
  for (int t = 0; t < 10; ++t) {
    linalg::Vector sharp = rng.Dirichlet(linalg::Vector(4, 0.05));
    max_sharp = std::max(max_sharp, sharp.max());
  }
  EXPECT_GT(max_sharp, 0.9);
}

TEST(RngTest, CategoricalFrequenciesMatchWeights) {
  Rng rng(12);
  linalg::Vector w{1.0, 2.0, 7.0};
  std::vector<int> hist(3, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++hist[rng.Categorical(w)];
  EXPECT_NEAR(hist[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(hist[1] / static_cast<double>(n), 0.2, 0.02);
  EXPECT_NEAR(hist[2] / static_cast<double>(n), 0.7, 0.02);
}

TEST(RngTest, CategoricalIgnoresZeroWeights) {
  Rng rng(13);
  linalg::Vector w{0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Categorical(w), 1u);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(14);
  auto p = rng.Permutation(50);
  std::vector<bool> seen(50, false);
  for (size_t v : p) {
    ASSERT_LT(v, 50u);
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(RngTest, RandomStochasticMatrixRowsOnSimplex) {
  Rng rng(15);
  linalg::Matrix m = rng.RandomStochasticMatrix(6, 9, 2.0);
  EXPECT_TRUE(m.IsRowStochastic(1e-9));
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(16);
  int on = 0;
  for (int i = 0; i < 10000; ++i) on += rng.Bernoulli(0.3);
  EXPECT_NEAR(on / 10000.0, 0.3, 0.02);
}

// ------------------------------------------------------------- LogSumExp ---

TEST(LogSumExpTest, MatchesDirectComputation) {
  linalg::Vector v{0.0, 1.0, 2.0};
  double direct = std::log(std::exp(0.0) + std::exp(1.0) + std::exp(2.0));
  EXPECT_NEAR(LogSumExp(v), direct, 1e-12);
}

TEST(LogSumExpTest, StableForLargeMagnitudes) {
  linalg::Vector v{-1000.0, -1000.0};
  EXPECT_NEAR(LogSumExp(v), -1000.0 + std::log(2.0), 1e-9);
  linalg::Vector w{1000.0, 999.0};
  EXPECT_NEAR(LogSumExp(w), 1000.0 + std::log1p(std::exp(-1.0)), 1e-9);
}

TEST(LogSumExpTest, HandlesNegInf) {
  EXPECT_EQ(LogAdd(kNegInf, kNegInf), kNegInf);
  EXPECT_DOUBLE_EQ(LogAdd(kNegInf, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(LogAdd(3.0, kNegInf), 3.0);
  linalg::Vector v{kNegInf, kNegInf};
  EXPECT_EQ(LogSumExp(v), kNegInf);
}

TEST(LogSumExpTest, EmptyInputIsLogZero) {
  EXPECT_EQ(LogSumExp(linalg::Vector()), kNegInf);
  EXPECT_EQ(LogSumExp(nullptr, 0), kNegInf);
}

// Contract: NaN in -> NaN out. The -inf short-circuits and the max scans
// must not swallow a NaN operand (NaN compares false against everything,
// so an unguarded max would treat it as "smaller than -inf").
TEST(LogSumExpTest, NanPropagatesThroughLogAdd) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(std::isnan(LogAdd(nan, 1.0)));
  EXPECT_TRUE(std::isnan(LogAdd(1.0, nan)));
  EXPECT_TRUE(std::isnan(LogAdd(nan, kNegInf)));
  EXPECT_TRUE(std::isnan(LogAdd(kNegInf, nan)));
  EXPECT_TRUE(std::isnan(LogAdd(nan, nan)));
}

TEST(LogSumExpTest, NanPropagatesThroughLogSumExp) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // The all--inf-plus-NaN case is the one the seed implementation got
  // wrong: the max scan skipped the NaN and returned -inf.
  EXPECT_TRUE(std::isnan(LogSumExp(linalg::Vector{kNegInf, nan, kNegInf})));
  EXPECT_TRUE(std::isnan(LogSumExp(linalg::Vector{nan})));
  EXPECT_TRUE(std::isnan(LogSumExp(linalg::Vector{0.0, nan, 2.0})));
  linalg::Vector v{1.0, nan};
  EXPECT_TRUE(std::isnan(LogSumExp(v.data(), v.size())));
}

// ------------------------------------------------------ GaussianEmission ---

TEST(GaussianEmissionTest, LogProbMatchesDensity) {
  GaussianEmission e(linalg::Vector{0.0, 2.0}, linalg::Vector{1.0, 0.5});
  double lp = e.LogProb(0, 0.0);
  EXPECT_NEAR(lp, -0.5 * std::log(2.0 * M_PI), 1e-12);
  double lp2 = e.LogProb(1, 2.5);
  double z = 0.5 / 0.5;
  EXPECT_NEAR(lp2, -0.5 * z * z - std::log(0.5) - 0.5 * std::log(2.0 * M_PI),
              1e-12);
}

TEST(GaussianEmissionTest, EmFitRecoversWeightedStats) {
  GaussianEmission e(linalg::Vector{0.0, 0.0}, linalg::Vector{1.0, 1.0});
  e.BeginAccumulate();
  // State 0 sees {1, 3} with unit weight; state 1 sees {10} only.
  e.Accumulate(1.0, linalg::Vector{1.0, 0.0});
  e.Accumulate(3.0, linalg::Vector{1.0, 0.0});
  e.Accumulate(10.0, linalg::Vector{0.0, 1.0});
  e.FinishAccumulate();
  EXPECT_NEAR(e.mu()[0], 2.0, 1e-12);
  EXPECT_NEAR(e.mu()[1], 10.0, 1e-12);
  // Variance of {1,3} is 1 -> sigma 1.
  EXPECT_NEAR(e.sigma()[0], 1.0, 1e-12);
}

TEST(GaussianEmissionTest, SigmaFloorPreventsSingularity) {
  GaussianEmission e(linalg::Vector{0.0}, linalg::Vector{1.0},
                     /*sigma_floor=*/0.01);
  e.BeginAccumulate();
  e.Accumulate(5.0, linalg::Vector{1.0});  // single point -> zero variance
  e.FinishAccumulate();
  EXPECT_GE(e.sigma()[0], 0.01);
  EXPECT_TRUE(std::isfinite(e.LogProb(0, 5.0)));
}

TEST(GaussianEmissionTest, UnusedStateKeepsParameters) {
  GaussianEmission e(linalg::Vector{1.0, -7.0}, linalg::Vector{0.5, 0.25});
  e.BeginAccumulate();
  e.Accumulate(1.5, linalg::Vector{1.0, 0.0});
  e.FinishAccumulate();
  EXPECT_NEAR(e.mu()[1], -7.0, 1e-12);
  EXPECT_NEAR(e.sigma()[1], 0.25, 1e-12);
}

TEST(GaussianEmissionTest, SampleMomentsMatchParameters) {
  GaussianEmission e(linalg::Vector{4.0}, linalg::Vector{0.5});
  Rng rng(20);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += e.Sample(0, rng);
  EXPECT_NEAR(sum / n, 4.0, 0.02);
}

TEST(GaussianEmissionTest, SaveLoadRoundTrip) {
  GaussianEmission e(linalg::Vector{1.0, 2.0}, linalg::Vector{0.3, 0.7});
  std::stringstream ss;
  ASSERT_TRUE(e.Save(ss).ok());
  auto r = GaussianEmission::Load(ss);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value().mu()[1], 2.0, 1e-15);
  EXPECT_NEAR(r.value().sigma()[0], 0.3, 1e-15);
}

TEST(GaussianEmissionTest, LoadRejectsGarbage) {
  std::stringstream ss("not a header");
  EXPECT_FALSE(GaussianEmission::Load(ss).ok());
}

// --------------------------------------------------- CategoricalEmission ---

TEST(CategoricalEmissionTest, LogProbMatchesTable) {
  CategoricalEmission e(linalg::Matrix{{0.5, 0.5, 0.0}, {0.1, 0.2, 0.7}});
  EXPECT_NEAR(e.LogProb(0, 0), std::log(0.5), 1e-12);
  EXPECT_NEAR(e.LogProb(1, 2), std::log(0.7), 1e-12);
  EXPECT_EQ(e.LogProb(0, 2), kNegInf);
  EXPECT_EQ(e.vocab_size(), 3u);
}

TEST(CategoricalEmissionTest, EmFitNormalizesCounts) {
  CategoricalEmission e(linalg::Matrix{{0.5, 0.5}, {0.5, 0.5}});
  e.BeginAccumulate();
  e.Accumulate(0, linalg::Vector{1.0, 0.0});
  e.Accumulate(0, linalg::Vector{1.0, 0.0});
  e.Accumulate(1, linalg::Vector{1.0, 0.0});
  e.Accumulate(1, linalg::Vector{0.0, 1.0});
  e.FinishAccumulate();
  EXPECT_NEAR(e.b()(0, 0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(e.b()(0, 1), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(e.b()(1, 1), 1.0, 1e-12);
}

TEST(CategoricalEmissionTest, PseudoCountSmoothsUnseenSymbols) {
  CategoricalEmission e(linalg::Matrix{{0.5, 0.5}}, /*pseudo_count=*/0.5);
  e.BeginAccumulate();
  e.Accumulate(0, linalg::Vector{1.0});
  e.FinishAccumulate();
  EXPECT_GT(e.b()(0, 1), 0.0);
  EXPECT_TRUE(std::isfinite(e.LogProb(0, 1)));
}

TEST(CategoricalEmissionTest, SampleFrequencies) {
  CategoricalEmission e(linalg::Matrix{{0.8, 0.2}});
  Rng rng(21);
  int zeros = 0;
  for (int i = 0; i < 10000; ++i) zeros += e.Sample(0, rng) == 0;
  EXPECT_NEAR(zeros / 10000.0, 0.8, 0.02);
}

TEST(CategoricalEmissionTest, SaveLoadRoundTrip) {
  CategoricalEmission e(linalg::Matrix{{0.25, 0.75}, {0.9, 0.1}}, 0.1);
  std::stringstream ss;
  ASSERT_TRUE(e.Save(ss).ok());
  auto r = CategoricalEmission::Load(ss);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value().b()(0, 1), 0.75, 1e-15);
  EXPECT_NEAR(r.value().b()(1, 0), 0.9, 1e-15);
}

TEST(CategoricalEmissionTest, RandomInitIsStochastic) {
  Rng rng(22);
  CategoricalEmission e = CategoricalEmission::RandomInit(4, 30, rng);
  EXPECT_TRUE(e.b().IsRowStochastic(1e-9));
}

// ----------------------------------------------------- BernoulliEmission ---

TEST(BernoulliEmissionTest, LogProbMatchesProduct) {
  BernoulliEmission e(linalg::Matrix{{0.9, 0.1}});
  BinaryObs obs{1, 0};
  EXPECT_NEAR(e.LogProb(0, obs), std::log(0.9) + std::log(0.9), 1e-12);
  BinaryObs obs2{0, 1};
  EXPECT_NEAR(e.LogProb(0, obs2), std::log(0.1) + std::log(0.1), 1e-12);
}

TEST(BernoulliEmissionTest, ClampKeepsLogProbFinite) {
  BernoulliEmission e(linalg::Matrix{{1.0, 0.0}}, /*p_floor=*/1e-3);
  BinaryObs contradicting{0, 1};
  EXPECT_TRUE(std::isfinite(e.LogProb(0, contradicting)));
}

TEST(BernoulliEmissionTest, EmFitMatchesWeightedFrequencies) {
  BernoulliEmission e(linalg::Matrix(1, 2, 0.5));
  e.BeginAccumulate();
  e.Accumulate(BinaryObs{1, 0}, linalg::Vector{1.0});
  e.Accumulate(BinaryObs{1, 1}, linalg::Vector{1.0});
  e.Accumulate(BinaryObs{0, 0}, linalg::Vector{2.0});  // weighted frame
  e.FinishAccumulate();
  EXPECT_NEAR(e.p()(0, 0), 0.5, 1e-12);   // 2 on / 4 weight
  EXPECT_NEAR(e.p()(0, 1), 0.25, 1e-12);  // 1 on / 4 weight
}

TEST(BernoulliEmissionTest, SampleMatchesProbabilities) {
  BernoulliEmission e(linalg::Matrix{{0.8, 0.2}});
  Rng rng(23);
  int on0 = 0, on1 = 0;
  for (int i = 0; i < 10000; ++i) {
    BinaryObs o = e.Sample(0, rng);
    on0 += o[0];
    on1 += o[1];
  }
  EXPECT_NEAR(on0 / 10000.0, 0.8, 0.02);
  EXPECT_NEAR(on1 / 10000.0, 0.2, 0.02);
}

TEST(BernoulliEmissionTest, SaveLoadRoundTrip) {
  BernoulliEmission e(linalg::Matrix{{0.7, 0.3, 0.5}});
  std::stringstream ss;
  ASSERT_TRUE(e.Save(ss).ok());
  auto r = BernoulliEmission::Load(ss);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value().p()(0, 0), 0.7, 1e-15);
  EXPECT_EQ(r.value().dims(), 3u);
}

TEST(BernoulliEmissionTest, CloneIsDeep) {
  BernoulliEmission e(linalg::Matrix{{0.7, 0.3}});
  auto clone = e.Clone();
  e.BeginAccumulate();
  e.Accumulate(BinaryObs{0, 1}, linalg::Vector{1.0});
  e.FinishAccumulate();
  // The clone still has the original parameters.
  BinaryObs obs{1, 0};
  EXPECT_NEAR(clone->LogProb(0, obs), std::log(0.7) + std::log(0.7), 1e-12);
}

// Parameterized: LogProbTable consistency across emission families.
TEST(EmissionTableTest, LogProbTableMatchesPointwise) {
  Rng rng(24);
  CategoricalEmission e = CategoricalEmission::RandomInit(3, 5, rng);
  std::vector<int> seq = {0, 4, 2, 2, 1};
  linalg::Matrix table = e.LogProbTable(seq);
  ASSERT_EQ(table.rows(), 5u);
  ASSERT_EQ(table.cols(), 3u);
  for (size_t t = 0; t < seq.size(); ++t) {
    for (size_t i = 0; i < 3; ++i) {
      EXPECT_DOUBLE_EQ(table(t, i), e.LogProb(i, seq[t]));
    }
  }
}

}  // namespace
}  // namespace dhmm::prob
