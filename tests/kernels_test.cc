// The inference-kernel contract (the PR-4 counterpart of mstep_test.cc):
//  - every linalg micro-kernel matches a naive scalar reference across
//    lengths that exercise all four accumulator lanes and the tail,
//  - linalg buffers are 64-byte aligned,
//  - ForwardBackward through the kernel path matches brute-force
//    enumeration on a random (k, T) grid including k=1 and T=1,
//  - the workspace's cached transition transpose is rebuilt exactly when A
//    changes (stale-transpose detection) and never otherwise,
//  - steady-state inference (ForwardBackward / LogLikelihood / Viterbi at a
//    fixed shape, including an in-place transpose rebuild after an M-step
//    mutates A) performs zero heap allocations (instrumented operator new),
//  - the PR-9 SIMD dispatch contract: one-shot startup resolution honoring
//    DHMM_KERNEL_ISA (the *_scalar_isa ctest registrations rerun this
//    binary under the override), a cross-variant parity grid of every
//    KernelTable member against the scalar oracle at <= 1e-12, bitwise
//    self-reproducibility of every variant across repeated calls and
//    thread counts, and engine-level scalar-vs-vector agreement.
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "hmm/inference.h"
#include "linalg/aligned.h"
#include "linalg/kernels.h"
#include "linalg/kernels_dispatch.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "prob/logsumexp.h"
#include "prob/rng.h"

// ----------------------------------------------------- allocation counter ---

// Global operator new instrumentation: every heap allocation made anywhere
// in this binary bumps the counter, so a zero delta across a call proves the
// call is allocation-free. linalg::AlignedAllocator routes through this
// plain operator new on purpose (see linalg/aligned.h), so aligned buffers
// are counted too.
namespace {
std::atomic<long> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dhmm {
namespace {

namespace klib = linalg::kernels;

// Lengths covering the empty tail, partial tails of 1..3, and multi-block
// runs of the 4-way accumulator streams.
const size_t kLengths[] = {1, 2, 3, 4, 5, 7, 8, 13, 16, 31, 64, 67};

std::vector<double> RandomRow(size_t n, uint64_t seed, double lo = -2.0,
                              double hi = 2.0) {
  prob::Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = lo + (hi - lo) * rng.Uniform();
  return v;
}

// --------------------------------------------------------------- kernels ---

TEST(KernelsTest, SumAndDotMatchNaiveReference) {
  for (size_t n : kLengths) {
    std::vector<double> x = RandomRow(n, 100 + n);
    std::vector<double> y = RandomRow(n, 200 + n);
    double sum_ref = 0.0, dot_ref = 0.0;
    for (size_t i = 0; i < n; ++i) {
      sum_ref += x[i];
      dot_ref += x[i] * y[i];
    }
    EXPECT_NEAR(klib::SumRow(x.data(), n), sum_ref, 1e-13 * (1.0 + n))
        << "n=" << n;
    EXPECT_NEAR(klib::Dot(x.data(), y.data(), n), dot_ref, 1e-13 * (1.0 + n))
        << "n=" << n;
  }
}

TEST(KernelsTest, DotIsDeterministicAcrossRepeats) {
  std::vector<double> x = RandomRow(67, 1);
  std::vector<double> y = RandomRow(67, 2);
  const double first = klib::Dot(x.data(), y.data(), 67);
  for (int rep = 0; rep < 8; ++rep) {
    EXPECT_EQ(klib::Dot(x.data(), y.data(), 67), first);
  }
}

TEST(KernelsTest, MatVecRowAndColAgreeWithEachOtherAndNaive) {
  for (size_t m : {1u, 3u, 5u, 20u}) {
    for (size_t n : {1u, 4u, 7u, 50u}) {
      std::vector<double> a = RandomRow(m * n, m * 100 + n);
      std::vector<double> x = RandomRow(m, m + n);
      std::vector<double> xt_a(n), naive(n, 0.0);
      klib::MatVecRow(x.data(), a.data(), m, n, xt_a.data());
      for (size_t i = 0; i < m; ++i) {
        for (size_t j = 0; j < n; ++j) naive[j] += x[i] * a[i * n + j];
      }
      for (size_t j = 0; j < n; ++j) {
        EXPECT_NEAR(xt_a[j], naive[j], 1e-12) << m << "x" << n << " j=" << j;
      }
      // x^T A computed against the transpose via MatVecCol must agree.
      std::vector<double> a_t(n * m), via_t(n);
      klib::TransposeInto(a.data(), m, n, a_t.data());
      klib::MatVecCol(a_t.data(), x.data(), n, m, via_t.data());
      for (size_t j = 0; j < n; ++j) {
        EXPECT_NEAR(via_t[j], naive[j], 1e-12) << m << "x" << n << " j=" << j;
      }
    }
  }
}

TEST(KernelsTest, FusedRowOpsMatchComposition) {
  for (size_t n : kLengths) {
    std::vector<double> x = RandomRow(n, 300 + n);
    std::vector<double> y = RandomRow(n, 400 + n);
    std::vector<double> acc = RandomRow(n, 500 + n);
    const double s = 1.7;

    std::vector<double> out(n);
    klib::MulRowScaledInto(x.data(), y.data(), s, n, out.data());
    for (size_t i = 0; i < n; ++i) {
      EXPECT_DOUBLE_EQ(out[i], x[i] * y[i] * s) << "n=" << n;
    }

    std::vector<double> acc2 = acc;
    klib::AxpyMulRow(s, x.data(), y.data(), n, acc2.data());
    for (size_t i = 0; i < n; ++i) {
      EXPECT_DOUBLE_EQ(acc2[i], acc[i] + s * x[i] * y[i]) << "n=" << n;
    }

    klib::ScaleRowInto(x.data(), s, n, out.data());
    for (size_t i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(out[i], x[i] * s);
  }
}

TEST(KernelsTest, ExpShiftRowLeavesAUnitEntry) {
  for (size_t n : kLengths) {
    std::vector<double> row = RandomRow(n, 600 + n, -90.0, -1.0);
    std::vector<double> out(n);
    const double m = klib::ExpShiftRow(row.data(), n, out.data());
    double max_ref = row[0], max_out = 0.0;
    for (size_t i = 0; i < n; ++i) {
      max_ref = std::max(max_ref, row[i]);
      max_out = std::max(max_out, out[i]);
      EXPECT_NEAR(out[i], std::exp(row[i] - m), 1e-15);
    }
    EXPECT_DOUBLE_EQ(m, max_ref);
    EXPECT_DOUBLE_EQ(max_out, 1.0);
  }
  // All -inf signals a zero-probability frame.
  std::vector<double> dead(3, prob::kNegInf), out(3);
  EXPECT_EQ(klib::ExpShiftRow(dead.data(), 3, out.data()), prob::kNegInf);
}

TEST(KernelsTest, ArgMaxBreaksTiesToLowestIndex) {
  const double row[] = {1.0, 3.0, 3.0, 0.5};
  EXPECT_EQ(klib::ArgMaxRow(row, 4), 1u);
  const double x[] = {1.0, 2.0, 0.0};
  const double y[] = {2.0, 1.0, 3.0};  // sums: 3, 3, 3 — all tie
  double best = 0.0;
  EXPECT_EQ(klib::ArgMaxSumRow(x, y, 3, &best), 0u);
  EXPECT_DOUBLE_EQ(best, 3.0);
}

TEST(AlignedStorageTest, BuffersStartOnCacheLines) {
  for (size_t n : {1u, 5u, 64u, 1000u}) {
    linalg::Vector v(n);
    linalg::Matrix m(n, 3);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) %
                  linalg::kBufferAlignment,
              0u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(m.data()) %
                  linalg::kBufferAlignment,
              0u);
  }
}

// ----------------------------------------------- brute-force cross-check ---

struct Chain {
  linalg::Vector pi;
  linalg::Matrix a;
  linalg::Matrix log_b;
};

Chain MakeChain(size_t k, size_t big_t, uint64_t seed) {
  prob::Rng rng(seed);
  Chain c;
  c.pi = rng.DirichletSymmetric(k, 1.5);
  c.a = rng.RandomStochasticMatrix(k, k, 1.5);
  c.log_b = linalg::Matrix(big_t, k);
  for (size_t t = 0; t < big_t; ++t) {
    for (size_t i = 0; i < k; ++i) c.log_b(t, i) = -6.0 * rng.Uniform();
  }
  return c;
}

// Enumerates all k^T paths; tractable for the grid below.
void EnumerateReference(const Chain& c, double* loglik, linalg::Matrix* gamma,
                        linalg::Matrix* xi_sum) {
  const size_t k = c.pi.size();
  const size_t big_t = c.log_b.rows();
  size_t total = 1;
  for (size_t t = 0; t < big_t; ++t) total *= k;
  std::vector<double> logps(total);
  double best = prob::kNegInf;
  std::vector<int> path(big_t);
  for (size_t code = 0; code < total; ++code) {
    size_t rem = code;
    for (size_t t = 0; t < big_t; ++t) {
      path[t] = static_cast<int>(rem % k);
      rem /= k;
    }
    double lp =
        std::log(c.pi[static_cast<size_t>(path[0])]) + c.log_b(0, path[0]);
    for (size_t t = 1; t < big_t; ++t) {
      lp += std::log(c.a(static_cast<size_t>(path[t - 1]),
                         static_cast<size_t>(path[t]))) +
            c.log_b(t, path[t]);
    }
    logps[code] = lp;
    best = std::max(best, lp);
  }
  double z = 0.0;
  for (double lp : logps) z += std::exp(lp - best);
  *loglik = best + std::log(z);
  *gamma = linalg::Matrix(big_t, k);
  *xi_sum = linalg::Matrix(k, k);
  for (size_t code = 0; code < total; ++code) {
    size_t rem = code;
    for (size_t t = 0; t < big_t; ++t) {
      path[t] = static_cast<int>(rem % k);
      rem /= k;
    }
    const double w = std::exp(logps[code] - *loglik);
    for (size_t t = 0; t < big_t; ++t) {
      (*gamma)(t, static_cast<size_t>(path[t])) += w;
    }
    for (size_t t = 1; t < big_t; ++t) {
      (*xi_sum)(static_cast<size_t>(path[t - 1]),
                static_cast<size_t>(path[t])) += w;
    }
  }
}

TEST(KernelPathBruteForceTest, ForwardBackwardMatchesEnumerationOnGrid) {
  // Dirty workspace reused across every shape, exactly as the engine does.
  hmm::InferenceWorkspace ws;
  hmm::ForwardBackwardResult fb;
  for (size_t k : {1u, 2u, 3u, 5u}) {
    for (size_t big_t : {1u, 2u, 4u, 6u}) {
      Chain c = MakeChain(k, big_t, 7000 + 10 * k + big_t);
      hmm::ForwardBackward(c.pi, c.a, c.log_b, &ws, &fb);
      double ll_ref;
      linalg::Matrix gamma_ref, xi_ref;
      EnumerateReference(c, &ll_ref, &gamma_ref, &xi_ref);
      EXPECT_NEAR(fb.log_likelihood, ll_ref, 1e-9) << "k=" << k
                                                   << " T=" << big_t;
      for (size_t t = 0; t < big_t; ++t) {
        for (size_t i = 0; i < k; ++i) {
          EXPECT_NEAR(fb.gamma(t, i), gamma_ref(t, i), 1e-9)
              << "k=" << k << " T=" << big_t << " gamma(" << t << "," << i
              << ")";
        }
      }
      for (size_t i = 0; i < k; ++i) {
        for (size_t j = 0; j < k; ++j) {
          EXPECT_NEAR(fb.xi_sum(i, j), xi_ref(i, j), 1e-9)
              << "k=" << k << " T=" << big_t;
        }
      }
      EXPECT_NEAR(hmm::LogLikelihood(c.pi, c.a, c.log_b, &ws), ll_ref, 1e-9);
    }
  }
}

TEST(KernelPathBruteForceTest, SingleStateChainIsExact) {
  // k=1: gamma is identically 1, xi_sum counts T-1 transitions, and the
  // log-likelihood is exactly the sum of the emission rows.
  const size_t big_t = 9;
  Chain c;
  c.pi = linalg::Vector{1.0};
  c.a = linalg::Matrix{{1.0}};
  c.log_b = linalg::Matrix(big_t, 1);
  double expected = 0.0;
  for (size_t t = 0; t < big_t; ++t) {
    c.log_b(t, 0) = -1.5 - static_cast<double>(t);
    expected += c.log_b(t, 0);
  }
  hmm::ForwardBackwardResult fb = hmm::ForwardBackward(c.pi, c.a, c.log_b);
  EXPECT_NEAR(fb.log_likelihood, expected, 1e-12);
  for (size_t t = 0; t < big_t; ++t) EXPECT_DOUBLE_EQ(fb.gamma(t, 0), 1.0);
  EXPECT_DOUBLE_EQ(fb.xi_sum(0, 0), static_cast<double>(big_t - 1));

  hmm::ViterbiResult vit = hmm::Viterbi(c.pi, c.a, c.log_b);
  EXPECT_NEAR(vit.log_joint, expected, 1e-12);
  for (int s : vit.path) EXPECT_EQ(s, 0);
}

// -------------------------------------------------------- stale transpose ---

TEST(TransitionCacheTest, RebuildsExactlyWhenAChanges) {
  const size_t k = 4;
  prob::Rng rng(11);
  linalg::Matrix a = rng.RandomStochasticMatrix(k, k, 1.5);
  hmm::TransitionCache cache;

  const linalg::Matrix& at = cache.Transpose(a);
  const uint64_t v1 = cache.version();
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) EXPECT_EQ(at(j, i), a(i, j));
  }

  // Same contents: revalidation must not rebuild.
  cache.Transpose(a);
  linalg::Matrix same = a;
  cache.Transpose(same);
  EXPECT_EQ(cache.version(), v1);

  // Mutated contents: the cached transpose must be rebuilt.
  a(1, 2) += 0.125;
  a(1, 3) -= 0.125;
  const linalg::Matrix& at2 = cache.Transpose(a);
  EXPECT_EQ(cache.version(), v1 + 1);
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) EXPECT_EQ(at2(j, i), a(i, j));
  }
  // Log view follows the same staleness key.
  const linalg::Matrix& lat = cache.LogTranspose(a);
  EXPECT_DOUBLE_EQ(lat(2, 1), std::log(a(1, 2)));
  EXPECT_EQ(cache.version(), v1 + 1);
}

TEST(TransitionCacheTest, InferenceSeesMutatedAThroughAReusedWorkspace) {
  const size_t k = 3, big_t = 12;
  Chain c = MakeChain(k, big_t, 21);
  hmm::InferenceWorkspace ws;
  hmm::ForwardBackwardResult fb;
  hmm::ViterbiResult vit;
  hmm::ForwardBackward(c.pi, c.a, c.log_b, &ws, &fb);
  hmm::Viterbi(c.pi, c.a, c.log_b, &ws, &vit);

  // Mutate A between calls (the M-step shape) and require the reused
  // workspace to match a fresh one bitwise — a stale transpose would not.
  prob::Rng rng(22);
  c.a = rng.RandomStochasticMatrix(k, k, 0.7);
  hmm::ForwardBackward(c.pi, c.a, c.log_b, &ws, &fb);
  hmm::ForwardBackwardResult fresh = hmm::ForwardBackward(c.pi, c.a, c.log_b);
  EXPECT_EQ(fb.log_likelihood, fresh.log_likelihood);
  for (size_t t = 0; t < big_t; ++t) {
    for (size_t i = 0; i < k; ++i) {
      ASSERT_EQ(fb.gamma(t, i), fresh.gamma(t, i));
    }
  }
  hmm::Viterbi(c.pi, c.a, c.log_b, &ws, &vit);
  hmm::ViterbiResult vit_fresh = hmm::Viterbi(c.pi, c.a, c.log_b);
  EXPECT_EQ(vit.log_joint, vit_fresh.log_joint);
  EXPECT_EQ(vit.path, vit_fresh.path);
  EXPECT_EQ(hmm::LogLikelihood(c.pi, c.a, c.log_b, &ws),
            hmm::LogLikelihood(c.pi, c.a, c.log_b));
}

// -------------------------------------------------------- allocation-free ---

TEST(InferenceAllocationTest, SteadyStateInferenceAllocatesNothing) {
  const size_t k = 20, big_t = 60;
  Chain c = MakeChain(k, big_t, 31);
  hmm::InferenceWorkspace ws;
  hmm::ForwardBackwardResult fb;
  hmm::ViterbiResult vit;
  // Warm-up sizes every buffer, including the cached transpose and the
  // Viterbi log-transpose and backpointer table.
  hmm::ForwardBackward(c.pi, c.a, c.log_b, &ws, &fb);
  hmm::LogLikelihood(c.pi, c.a, c.log_b, &ws);
  hmm::Viterbi(c.pi, c.a, c.log_b, &ws, &vit);

  long before = g_alloc_count.load(std::memory_order_relaxed);
  hmm::ForwardBackward(c.pi, c.a, c.log_b, &ws, &fb);
  hmm::LogLikelihood(c.pi, c.a, c.log_b, &ws);
  hmm::Viterbi(c.pi, c.a, c.log_b, &ws, &vit);
  long after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0)
      << "steady-state inference made " << (after - before)
      << " heap allocations";
}

TEST(InferenceAllocationTest, TransposeRebuildAtFixedKIsInPlace) {
  const size_t k = 12, big_t = 30;
  Chain c = MakeChain(k, big_t, 41);
  hmm::InferenceWorkspace ws;
  hmm::ForwardBackwardResult fb;
  hmm::ViterbiResult vit;
  hmm::ForwardBackward(c.pi, c.a, c.log_b, &ws, &fb);
  hmm::Viterbi(c.pi, c.a, c.log_b, &ws, &vit);

  // An M-step rewrites A; the cache must refresh without allocating.
  prob::Rng rng(42);
  linalg::Matrix a2 = rng.RandomStochasticMatrix(k, k, 2.0);
  long before = g_alloc_count.load(std::memory_order_relaxed);
  for (size_t i = 0; i < k * k; ++i) c.a.data()[i] = a2.data()[i];
  hmm::ForwardBackward(c.pi, c.a, c.log_b, &ws, &fb);
  hmm::Viterbi(c.pi, c.a, c.log_b, &ws, &vit);
  long after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0)
      << "in-place transpose rebuild made " << (after - before)
      << " heap allocations";
}

// ------------------------------------------------------- startup dispatch ---

// Applies every KernelTable member to inputs derived from `seed`, flattening
// all outputs (including the full xi accumulators) into one vector so whole
// variants can be compared wholesale — with EXPECT_NEAR for cross-ISA parity
// or memcmp for bitwise self-reproducibility.
std::vector<double> ApplyAllKernels(const klib::KernelTable& kt, size_t n,
                                    uint64_t seed) {
  std::vector<double> x = RandomRow(n, seed);
  std::vector<double> y = RandomRow(n, seed + 1);
  std::vector<double> w = RandomRow(n, seed + 2, 0.0, 1.0);
  std::vector<double> logrow = RandomRow(n, seed + 3, -30.0, 0.0);
  std::vector<double> a = RandomRow(n * n, seed + 4, 0.0, 1.0);
  if (n > 1) w[0] = 0.0;  // exercise the xi zero-skip rows
  std::vector<double> out;
  std::vector<double> v(n), xi(n * n);
  auto push = [&](const std::vector<double>& r) {
    out.insert(out.end(), r.begin(), r.end());
  };
  out.push_back(kt.sum_row(x.data(), n));
  out.push_back(kt.dot(x.data(), y.data(), n));
  out.push_back(kt.max_row(x.data(), n));
  kt.mul_row_scaled_into(x.data(), y.data(), 1.7, n, v.data());
  push(v);
  v.assign(n, 0.25);
  kt.axpy_row(0.6, x.data(), n, v.data());
  push(v);
  v.assign(n, 0.25);
  kt.axpy_mul_row(0.6, x.data(), y.data(), n, v.data());
  push(v);
  xi.assign(n * n, 0.5);
  kt.axpy_mul_mat(w.data(), a.data(), y.data(), n, n, xi.data());
  push(xi);
  kt.mat_vec_row(x.data(), a.data(), n, n, v.data());
  push(v);
  kt.mat_vec_col(a.data(), x.data(), n, n, v.data());
  push(v);
  kt.mat_vec_col_mul(a.data(), x.data(), w.data(), n, n, v.data());
  push(v);
  xi.assign(n * n, 0.125);
  kt.backward_fused(a.data(), y.data(), w.data(), n, n, v.data(), xi.data());
  push(v);
  push(xi);
  out.push_back(kt.exp_shift_row(logrow.data(), n, v.data()));
  push(v);
  return out;
}

TEST(DispatchTest, ResolutionIsOneShotAndHonorsEnvOverride) {
  const klib::KernelTable& t1 = klib::Active();
  const klib::KernelTable& t2 = klib::Active();
  EXPECT_EQ(&t1, &t2);
  EXPECT_EQ(t1.isa, klib::ActiveIsa());
  // ForK pins each k-class to one table object for the process lifetime —
  // the property the engine/serve bitwise contracts stand on.
  for (size_t k = 1; k <= klib::kMaxFixedK + 4; ++k) {
    const klib::KernelTable& a = klib::ForK(k);
    const klib::KernelTable& b = klib::ForK(k);
    EXPECT_EQ(&a, &b) << "k=" << k;
    EXPECT_EQ(a.isa, klib::ActiveIsa()) << "k=" << k;
    if (k <= klib::kMaxFixedK && klib::ActiveIsa() != klib::Isa::kScalar) {
      EXPECT_EQ(a.fixed_k, k);
    } else {
      EXPECT_EQ(a.fixed_k, 0u) << "k=" << k;
      EXPECT_EQ(&a, &klib::Active()) << "k=" << k;
    }
  }
  // When DHMM_KERNEL_ISA names a compiled-and-supported ISA, the one-shot
  // resolution must have honored it. The *_scalar_isa ctest registrations
  // run this whole binary under DHMM_KERNEL_ISA=scalar, so this branch is
  // exercised in every CI run, not just when a developer exports the var.
  if (const char* env = std::getenv("DHMM_KERNEL_ISA")) {
    const std::string want(env);
    for (klib::Isa isa : klib::CompiledIsas()) {
      if (want == klib::IsaName(isa) && klib::IsaAvailable(isa)) {
        EXPECT_EQ(klib::ActiveIsa(), isa) << "override " << want;
      }
    }
  }
}

TEST(DispatchTest, StartupSummaryReportsActiveResolution) {
  const std::string s = klib::StartupSummary();
  // Printed to stdout so wrappers can assert the *observed* resolution
  // instead of trusting their own env plumbing: CI's scalar-pinned rerun
  // greps this line for "isa=scalar" — a mistyped env *name* there would
  // otherwise silently re-test the vector path (a mistyped env *value*
  // already aborts at resolution).
  std::printf("kernel dispatch: %s\n", s.c_str());
  std::fflush(stdout);
  EXPECT_EQ(s.rfind("isa=" + std::string(klib::ActiveIsaName()) + " ", 0), 0u)
      << s;
  EXPECT_NE(s.find(" detected="), std::string::npos) << s;
  EXPECT_NE(s.find(" override="), std::string::npos) << s;
}

TEST(DispatchTest, CrossVariantParityGridVsScalarOracle) {
  // Every compiled vector ISA, both its generic and (n <= kMaxFixedK)
  // fixed-k tables, against the verbatim scalar oracle. Lengths cover every
  // fixed-k instantiation plus generic shapes with empty and partial tails.
  for (size_t n : {size_t{1}, size_t{2}, size_t{3}, size_t{4}, size_t{5},
                   size_t{6}, size_t{7}, size_t{8}, size_t{12}, size_t{16},
                   size_t{20}, size_t{50}}) {
    const std::vector<double> ref =
        ApplyAllKernels(klib::TableFor(klib::Isa::kScalar, n), n, 900 + n);
    for (klib::Isa isa : klib::CompiledIsas()) {
      if (isa == klib::Isa::kScalar || !klib::IsaAvailable(isa)) continue;
      for (const klib::KernelTable* kt :
           {&klib::TableFor(isa, n), &klib::TableFor(isa)}) {
        const std::vector<double> got = ApplyAllKernels(*kt, n, 900 + n);
        ASSERT_EQ(got.size(), ref.size());
        for (size_t i = 0; i < got.size(); ++i) {
          EXPECT_NEAR(got[i], ref[i], 1e-12)
              << kt->name << " n=" << n << " flat index " << i;
        }
      }
    }
  }
}

TEST(DispatchTest, VariantsAreBitwiseReproducibleAcrossCallsAndThreads) {
  for (klib::Isa isa : klib::CompiledIsas()) {
    if (!klib::IsaAvailable(isa)) continue;
    for (size_t n : {size_t{5}, size_t{8}, size_t{50}}) {
      const klib::KernelTable& kt = klib::TableFor(isa, n);
      const std::vector<double> first = ApplyAllKernels(kt, n, 1300 + n);
      for (int rep = 0; rep < 3; ++rep) {
        const std::vector<double> again = ApplyAllKernels(kt, n, 1300 + n);
        ASSERT_EQ(again.size(), first.size());
        EXPECT_EQ(0, std::memcmp(again.data(), first.data(),
                                 first.size() * sizeof(double)))
            << kt.name << " n=" << n << " rep " << rep;
      }
      std::vector<std::vector<double>> per_thread(4);
      std::vector<std::thread> threads;
      for (size_t t = 0; t < per_thread.size(); ++t) {
        threads.emplace_back(
            [&, t] { per_thread[t] = ApplyAllKernels(kt, n, 1300 + n); });
      }
      for (std::thread& t : threads) t.join();
      for (size_t t = 0; t < per_thread.size(); ++t) {
        ASSERT_EQ(per_thread[t].size(), first.size());
        EXPECT_EQ(0, std::memcmp(per_thread[t].data(), first.data(),
                                 first.size() * sizeof(double)))
            << kt.name << " n=" << n << " thread " << t;
      }
    }
  }
}

TEST(DispatchTest, EngineAgreesAcrossIsasEndToEnd) {
  // Full ForwardBackward under the active tables vs forced-scalar tables,
  // at a fixed-k shape and a generic shape. This is the in-process
  // counterpart of the *_scalar_isa ctest registrations (which check the
  // same property through the environment override).
  const klib::Isa active = klib::ActiveIsa();
  for (size_t k : {size_t{6}, size_t{13}}) {
    const size_t big_t = 40;
    Chain c = MakeChain(k, big_t, 424200 + k);
    hmm::ForwardBackwardResult fb_active =
        hmm::ForwardBackward(c.pi, c.a, c.log_b);
    ASSERT_TRUE(klib::internal::ForceIsaForTestOnly(klib::Isa::kScalar));
    hmm::ForwardBackwardResult fb_scalar =
        hmm::ForwardBackward(c.pi, c.a, c.log_b);
    ASSERT_TRUE(klib::internal::ForceIsaForTestOnly(active));
    EXPECT_NEAR(fb_active.log_likelihood, fb_scalar.log_likelihood, 1e-9);
    for (size_t t = 0; t < big_t; ++t) {
      for (size_t i = 0; i < k; ++i) {
        EXPECT_NEAR(fb_active.gamma(t, i), fb_scalar.gamma(t, i), 1e-9);
      }
    }
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = 0; j < k; ++j) {
        EXPECT_NEAR(fb_active.xi_sum(i, j), fb_scalar.xi_sum(i, j), 1e-9);
      }
    }
  }
}

}  // namespace
}  // namespace dhmm
