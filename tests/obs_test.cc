// The observability-spine contract (obs/metrics.h, obs/startup.h):
//  - Counter/Gauge/Histogram record correctly from one thread and under
//    concurrent writers (counters never lose an increment, gauge Add()s
//    never lose a delta),
//  - recording never aborts, whatever the value (histogram clamps into
//    its last bucket; quantiles stay ordered),
//  - recording through resolved metric pointers is allocation-free
//    (instrumented operator new),
//  - the Registry is grow-only and pointer-stable: the same name returns
//    the same object, registration threads race safely,
//  - snapshots flatten to sorted (name, value) pairs, honor prefixes, and
//    expand histograms to .count/.p50/.p90/.p99/.max,
//  - RenderText/RenderJson emit the pinned formats (CI greps the text
//    form; the JSON form must always parse, non-finite values included),
//  - the unified startup line has the pinned "[dhmm] startup: kernels "
//    prefix and LogStartup() exports the resolved ISA gauge.
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "linalg/kernels_dispatch.h"
#include "obs/metrics.h"
#include "obs/startup.h"

// ----------------------------------------------------- allocation counter ---

// Global operator new instrumentation, the serve_test/frontend_test
// pattern: a zero delta across a call proves the call is allocation-free.
namespace {
std::atomic<long> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dhmm {
namespace {

// ---------------------------------------------------------------- Counter ---

TEST(CounterTest, AddAndValue) {
  obs::Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(CounterTest, ConcurrentAddsNeverLoseAnIncrement) {
  obs::Counter c;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

// ------------------------------------------------------------------ Gauge ---

TEST(GaugeTest, SetAndAddRoundTripDoubles) {
  obs::Gauge g;
  EXPECT_EQ(g.Value(), 0.0);
  g.Set(-12.75);
  EXPECT_EQ(g.Value(), -12.75);
  g.Add(2.25);
  EXPECT_EQ(g.Value(), -10.5);
  g.Set(1e308);
  EXPECT_EQ(g.Value(), 1e308);
}

TEST(GaugeTest, ConcurrentAddsNeverLoseADelta) {
  obs::Gauge g;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < kPerThread; ++i) {
        g.Add(1.0);
        g.Add(-1.0);
      }
      g.Add(1.0);
    });
  }
  for (auto& t : threads) t.join();
  // Every +1/-1 pair cancels (integer-valued doubles add exactly), so
  // only the one trailing +1 per thread survives.
  EXPECT_EQ(g.Value(), static_cast<double>(kThreads));
}

// -------------------------------------------------------------- Histogram ---

TEST(HistogramTest, BucketOfIsLogScaleAndNeverOutOfRange) {
  EXPECT_EQ(obs::Histogram::BucketOf(0), 0u);
  EXPECT_EQ(obs::Histogram::BucketOf(1), 1u);
  EXPECT_EQ(obs::Histogram::BucketOf(2), 2u);
  EXPECT_EQ(obs::Histogram::BucketOf(3), 2u);
  EXPECT_EQ(obs::Histogram::BucketOf(4), 3u);
  EXPECT_EQ(obs::Histogram::BucketOf(1023), 10u);
  EXPECT_EQ(obs::Histogram::BucketOf(1024), 11u);
  // Everything huge clamps into the last bucket: recording never aborts.
  EXPECT_EQ(obs::Histogram::BucketOf(~uint64_t{0}),
            obs::Histogram::kBuckets - 1);
  EXPECT_EQ(obs::Histogram::BucketOf(uint64_t{1} << 63),
            obs::Histogram::kBuckets - 1);
}

TEST(HistogramTest, CountAndQuantilesAreOrdered) {
  obs::Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.ValueAtQuantile(0.5), 0u);  // empty: 0, not an abort
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  h.Record(~uint64_t{0});  // the clamped monster sample
  EXPECT_EQ(h.Count(), 1001u);
  const uint64_t p50 = h.ValueAtQuantile(0.5);
  const uint64_t p90 = h.ValueAtQuantile(0.9);
  const uint64_t p99 = h.ValueAtQuantile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  // The log2 buckets report an upper bound within 2x of the true sample.
  EXPECT_GE(p50, 500u);
  EXPECT_LE(p50, 1023u);
}

TEST(HistogramTest, ConcurrentRecordsNeverLoseASample) {
  obs::Histogram h;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(t) * 1000 + (i & 1023));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.Count(), kThreads * kPerThread);
}

// ------------------------------------------------------------- allocation ---

TEST(ObsAllocationTest, RecordingIsAllocationFree) {
  obs::Registry& reg = obs::Registry::Global();
  obs::Counter* c = reg.GetCounter("obs_test.alloc.counter");
  obs::Gauge* g = reg.GetGauge("obs_test.alloc.gauge");
  obs::Histogram* h = reg.GetHistogram("obs_test.alloc.hist");
  // Warm the thread-local stripe index before measuring.
  c->Add();
  g->Set(1.0);
  h->Record(1);
  const long before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) {
    c->Add(2);
    g->Set(static_cast<double>(i));
    g->Add(0.5);
    h->Record(static_cast<uint64_t>(i));
  }
  (void)c->Value();
  (void)g->Value();
  (void)h->Count();
  const long after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0) << "metric recording touched the allocator";
}

// --------------------------------------------------------------- Registry ---

TEST(RegistryTest, SameNameReturnsSameStableObject) {
  obs::Registry& reg = obs::Registry::Global();
  obs::Counter* a = reg.GetCounter("obs_test.registry.stable");
  a->Add(7);
  obs::Counter* b = reg.GetCounter("obs_test.registry.stable");
  EXPECT_EQ(a, b);
  EXPECT_EQ(b->Value(), 7u);
}

TEST(RegistryTest, ConcurrentRegistrationIsRaceFree) {
  obs::Registry& reg = obs::Registry::Global();
  constexpr int kThreads = 8;
  std::vector<obs::Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, &seen, t] {
      obs::Counter* c = reg.GetCounter("obs_test.registry.race");
      c->Add();
      seen[static_cast<size_t>(t)] = c;
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[0], seen[t]);
  EXPECT_EQ(seen[0]->Value(), static_cast<uint64_t>(kThreads));
}

TEST(RegistryTest, SnapshotHonorsPrefixAndExpandsHistograms) {
  obs::Registry& reg = obs::Registry::Global();
  reg.GetCounter("obs_test.snap.requests")->Add(5);
  reg.GetGauge("obs_test.snap.occupancy")->Set(3.5);
  obs::Histogram* h = reg.GetHistogram("obs_test.snap.latency");
  h->Record(10);
  h->Record(20);

  const obs::Snapshot snap = reg.TakeSnapshot("obs_test.snap.");
  EXPECT_EQ(snap.ValueOf("obs_test.snap.requests"), 5.0);
  EXPECT_EQ(snap.ValueOf("obs_test.snap.occupancy"), 3.5);
  EXPECT_EQ(snap.ValueOf("obs_test.snap.latency.count"), 2.0);
  EXPECT_TRUE(snap.Has("obs_test.snap.latency.p50"));
  EXPECT_TRUE(snap.Has("obs_test.snap.latency.p90"));
  EXPECT_TRUE(snap.Has("obs_test.snap.latency.p99"));
  EXPECT_TRUE(snap.Has("obs_test.snap.latency.max"));
  // The prefix filter excludes everything else.
  for (const auto& [name, value] : snap.values) {
    EXPECT_EQ(name.rfind("obs_test.snap.", 0), 0u) << name;
  }
  // Sorted by name.
  for (size_t i = 1; i < snap.values.size(); ++i) {
    EXPECT_LT(snap.values[i - 1].first, snap.values[i].first);
  }
  EXPECT_EQ(snap.ValueOf("obs_test.snap.absent", -1.0), -1.0);
}

// -------------------------------------------------------------- rendering ---

TEST(RenderTest, TextIsOneNameValueLinePerEntry) {
  obs::Snapshot snap;
  snap.values = {{"a.count", 3.0}, {"b.ratio", 0.5}};
  EXPECT_EQ(obs::RenderText(snap), "a.count 3\nb.ratio 0.5\n");
}

TEST(RenderTest, JsonIsFlatAndNonFiniteBecomesNull) {
  obs::Snapshot snap;
  snap.values = {{"a", 1.0},
                 {"b", std::numeric_limits<double>::infinity()},
                 {"c", std::numeric_limits<double>::quiet_NaN()}};
  const std::string json = obs::RenderJson(snap);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"a\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"b\": null"), std::string::npos);
  EXPECT_NE(json.find("\"c\": null"), std::string::npos);
}

// ---------------------------------------------------------------- startup ---

TEST(StartupTest, LinePinnedFormatAndIsaGauge) {
  // The unified line embeds the kernel resolution verbatim. CI greps this
  // exact prefix from the test's stderr — change them together.
  const std::string line = obs::StartupLine();
  EXPECT_EQ(line.rfind("[dhmm] startup: kernels isa=", 0), 0u) << line;
  EXPECT_NE(line.find(" detected="), std::string::npos);
  EXPECT_NE(line.find(" override="), std::string::npos);
  EXPECT_NE(line.find(" fixed_k<="), std::string::npos);
  EXPECT_EQ(line.find('\n'), std::string::npos);

  // LogStartup prints once per process (to stderr, where CI greps it) and
  // refreshes the ISA gauge on every call.
  obs::LogStartup();
  obs::LogStartup();
  const obs::Snapshot snap = obs::Registry::Global().TakeSnapshot("startup.");
  ASSERT_TRUE(snap.Has("startup.kernel_isa"));
  const double isa = snap.ValueOf("startup.kernel_isa", -1.0);
  EXPECT_EQ(isa, static_cast<double>(
                     static_cast<int>(linalg::kernels::ActiveIsa())));
  EXPECT_GE(isa, 0.0);
  EXPECT_LE(isa, 2.0);
}

}  // namespace
}  // namespace dhmm
