// The wire-protocol codec contract (serve/wire.h):
//  - the 40-byte header encodes to pinned little-endian bytes on every
//    host (cross-endian stability by construction),
//  - request and response frames round-trip bitwise over random contents,
//  - every strict prefix of a valid frame decodes to a non-OK Status —
//    truncation is an error, never a crash or an abort,
//  - malformed frames (bad magic, bad version, oversized payload, unknown
//    kind, response/request bit confusion, count/length mismatch) are all
//    typed errors.
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/request.h"
#include "serve/wire.h"
#include "util/status.h"

namespace dhmm::serve {
namespace {

wire::FrameHeader KnownHeader() {
  wire::FrameHeader h;
  h.kind = static_cast<uint8_t>(DecodeKind::kPosterior);
  h.model = 0x0102030405060708ull;
  h.request_id = 0x1122334455667788ull;
  h.deadline_micros = 0x00000000000F4240ull;  // 1e6
  h.payload_len = 0x00000A0Bu;
  return h;
}

TEST(WireHeaderTest, BytesArePinnedLittleEndian) {
  uint8_t buf[wire::kHeaderSize];
  wire::EncodeHeader(KnownHeader(), buf);
  const uint8_t expected[wire::kHeaderSize] = {
      0x44, 0x48, 0x4D, 0x4D,  // magic "DHMM"
      0x01, 0x00,              // version 1
      0x01,                    // kind = kPosterior
      0x00,                    // flags
      0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01,  // model id
      0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11,  // request id
      0x40, 0x42, 0x0F, 0x00, 0x00, 0x00, 0x00, 0x00,  // deadline 1e6 us
      0x0B, 0x0A, 0x00, 0x00,  // payload_len
      0x00, 0x00, 0x00, 0x00,  // reserved
  };
  EXPECT_EQ(0, std::memcmp(buf, expected, wire::kHeaderSize));
}

TEST(WireHeaderTest, RoundTrip) {
  uint8_t buf[wire::kHeaderSize];
  const wire::FrameHeader h = KnownHeader();
  wire::EncodeHeader(h, buf);
  wire::FrameHeader back;
  ASSERT_TRUE(wire::DecodeHeader(buf, sizeof(buf), &back).ok());
  EXPECT_EQ(back.kind, h.kind);
  EXPECT_EQ(back.model, h.model);
  EXPECT_EQ(back.request_id, h.request_id);
  EXPECT_EQ(back.deadline_micros, h.deadline_micros);
  EXPECT_EQ(back.payload_len, h.payload_len);
  EXPECT_FALSE(back.is_response());
  EXPECT_EQ(back.decode_kind(), DecodeKind::kPosterior);
}

TEST(WireHeaderTest, RejectsTruncationBadMagicBadVersionOversized) {
  uint8_t buf[wire::kHeaderSize];
  wire::EncodeHeader(KnownHeader(), buf);
  wire::FrameHeader h;
  for (size_t n = 0; n < wire::kHeaderSize; ++n) {
    EXPECT_FALSE(wire::DecodeHeader(buf, n, &h).ok()) << "prefix " << n;
  }
  uint8_t bad[wire::kHeaderSize];
  std::memcpy(bad, buf, sizeof(buf));
  bad[0] ^= 0xFF;  // magic
  EXPECT_EQ(wire::DecodeHeader(bad, sizeof(bad), &h).code(),
            StatusCode::kInvalidArgument);
  std::memcpy(bad, buf, sizeof(buf));
  bad[4] = 0x7F;  // version
  EXPECT_EQ(wire::DecodeHeader(bad, sizeof(bad), &h).code(),
            StatusCode::kInvalidArgument);
  std::memcpy(bad, buf, sizeof(buf));
  bad[35] = 0xFF;  // payload_len top byte -> far above kMaxPayload
  EXPECT_EQ(wire::DecodeHeader(bad, sizeof(bad), &h).code(),
            StatusCode::kOutOfRange);
}

// ------------------------------------------------------------- requests ---

template <typename Obs>
void ExpectRequestRoundTrip(const DecodeRequest<Obs>& req) {
  std::vector<uint8_t> frame;
  ASSERT_TRUE(wire::EncodeRequest(req, &frame).ok());
  wire::FrameHeader h;
  ASSERT_TRUE(wire::DecodeHeader(frame.data(), frame.size(), &h).ok());
  ASSERT_EQ(frame.size(), wire::kHeaderSize + h.payload_len);
  EXPECT_EQ(h.model, req.model);
  EXPECT_EQ(h.request_id, req.request_id);
  EXPECT_EQ(h.deadline_micros, req.deadline_micros);
  EXPECT_EQ(h.decode_kind(), req.kind);
  std::vector<Obs> obs;
  ASSERT_TRUE(wire::DecodeRequestPayload<Obs>(h, frame.data() + wire::kHeaderSize,
                                              h.payload_len, &obs)
                  .ok());
  ASSERT_EQ(obs.size(), req.obs->size());
  // Bitwise comparison (EXPECT_EQ on doubles would miss NaN payloads). An
  // empty payload (e.g. a kStats request) has no bytes to compare, and
  // data() on an empty vector may be null — memcmp(null, null, 0) is UB.
  if (!obs.empty()) {
    EXPECT_EQ(0, std::memcmp(obs.data(), req.obs->data(),
                             obs.size() * sizeof(Obs)));
  }
}

TEST(WireRequestTest, RandomDoubleRoundTrips) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> val(-1e6, 1e6);
  std::uniform_int_distribution<size_t> len(0, 300);
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<double> obs(len(rng));
    for (double& v : obs) v = val(rng);
    DecodeRequest<double> req;
    req.request_id = rng();
    req.model = rng();
    req.kind = static_cast<DecodeKind>(iter % 3);
    req.deadline_micros = rng() % 2 == 0 ? 0 : rng();
    req.obs = &obs;
    ExpectRequestRoundTrip(req);
  }
}

TEST(WireRequestTest, NonFiniteDoublesRoundTripBitwise) {
  std::vector<double> obs = {std::numeric_limits<double>::infinity(),
                             -std::numeric_limits<double>::infinity(),
                             std::numeric_limits<double>::quiet_NaN(),
                             -0.0,
                             std::numeric_limits<double>::denorm_min()};
  DecodeRequest<double> req;
  req.obs = &obs;
  ExpectRequestRoundTrip(req);
}

TEST(WireRequestTest, RandomIntRoundTrips) {
  std::mt19937_64 rng(13);
  std::uniform_int_distribution<int> val(-1000000, 1000000);
  std::uniform_int_distribution<size_t> len(0, 300);
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<int> obs(len(rng));
    for (int& v : obs) v = val(rng);
    DecodeRequest<int> req;
    req.request_id = rng();
    req.model = rng();
    req.kind = static_cast<DecodeKind>(iter % 3);
    req.obs = &obs;
    ExpectRequestRoundTrip(req);
  }
}

TEST(WireRequestTest, SessionPushOpcodeIsPinnedAndRoundTrips) {
  // kSessionPush is wire kind byte 3 — pinned so independently compiled
  // clients and servers agree on the session front-end opcode.
  EXPECT_EQ(static_cast<uint8_t>(DecodeKind::kSessionPush), 3);
  std::vector<double> obs = {0.25, -1.5, 7.75};
  DecodeRequest<double> req;
  req.request_id = 99;
  req.model = 4;
  req.kind = DecodeKind::kSessionPush;
  req.obs = &obs;
  ExpectRequestRoundTrip(req);
}

TEST(WireRequestTest, StatsOpcodeIsPinnedAndRoundTrips) {
  // kStats is wire kind byte 4 — pinned so independently compiled clients
  // and servers agree on the stats opcode. The payload is an (ignored)
  // empty observation sequence.
  EXPECT_EQ(static_cast<uint8_t>(DecodeKind::kStats), 4);
  std::vector<double> obs;
  DecodeRequest<double> req;
  req.request_id = 1234;
  req.kind = DecodeKind::kStats;
  req.obs = &obs;
  ExpectRequestRoundTrip(req);
}

TEST(WireResponseTest, StatsTextRidesTheMessageFieldOfOkResponses) {
  // An OK response's message bytes are DecodeResponse::text (the rendered
  // stats snapshot); a non-OK response's are status.message(). Same frame
  // layout either way — kStats added no wire fields.
  DecodeResponse resp;
  resp.request_id = 77;
  resp.kind = DecodeKind::kStats;
  resp.status = Status::OK();
  resp.text = "frontend.frames_accepted 12\nstartup.kernel_isa 0\n";
  std::vector<uint8_t> frame;
  ASSERT_TRUE(wire::EncodeResponse(resp, 0, &frame).ok());
  wire::FrameHeader h;
  DecodeResponse back;
  ASSERT_TRUE(
      wire::DecodeResponseFrame(frame.data(), frame.size(), &h, &back).ok());
  EXPECT_EQ(back.kind, DecodeKind::kStats);
  EXPECT_TRUE(back.status.ok());
  EXPECT_EQ(back.text, resp.text);

  // Error responses keep the message field for the status and clear text.
  resp.status = Status::Unavailable("shed");
  resp.text.clear();
  frame.clear();
  ASSERT_TRUE(wire::EncodeResponse(resp, 0, &frame).ok());
  ASSERT_TRUE(
      wire::DecodeResponseFrame(frame.data(), frame.size(), &h, &back).ok());
  EXPECT_EQ(back.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(back.status.message(), "shed");
  EXPECT_TRUE(back.text.empty());
}

TEST(WireRequestTest, EveryPrefixTruncationFails) {
  std::vector<double> obs = {1.5, -2.25, 3.0};
  DecodeRequest<double> req;
  req.request_id = 42;
  req.model = 7;
  req.obs = &obs;
  std::vector<uint8_t> frame;
  ASSERT_TRUE(wire::EncodeRequest(req, &frame).ok());
  for (size_t n = 0; n < frame.size(); ++n) {
    wire::FrameHeader h;
    Status st = wire::DecodeHeader(frame.data(), n, &h);
    if (st.ok()) {
      std::vector<double> out;
      st = wire::DecodeRequestPayload<double>(
          h, frame.data() + wire::kHeaderSize, n - wire::kHeaderSize, &out);
    }
    EXPECT_FALSE(st.ok()) << "prefix " << n << " of " << frame.size();
  }
}

TEST(WireRequestTest, RejectsMalformedPayloads) {
  std::vector<double> obs = {1.0, 2.0};
  DecodeRequest<double> req;
  req.obs = &obs;
  std::vector<uint8_t> frame;
  ASSERT_TRUE(wire::EncodeRequest(req, &frame).ok());
  wire::FrameHeader h;
  ASSERT_TRUE(wire::DecodeHeader(frame.data(), frame.size(), &h).ok());
  const uint8_t* payload = frame.data() + wire::kHeaderSize;
  std::vector<double> out;

  wire::FrameHeader resp_marked = h;
  resp_marked.kind |= wire::kResponseBit;
  EXPECT_FALSE(wire::DecodeRequestPayload<double>(resp_marked, payload,
                                                  h.payload_len, &out)
                   .ok());

  // 3 is kSessionPush and 4 is kStats, both valid opcodes; the first
  // unknown kind is 5.
  wire::FrameHeader unknown = h;
  unknown.kind = 5;
  EXPECT_FALSE(
      wire::DecodeRequestPayload<double>(unknown, payload, h.payload_len, &out)
          .ok());

  // Count says 2 but the frame carries bytes for 1: length mismatch.
  std::vector<uint8_t> short_payload(payload, payload + 4 + 8);
  wire::FrameHeader lying = h;
  lying.payload_len = static_cast<uint32_t>(short_payload.size());
  EXPECT_FALSE(wire::DecodeRequestPayload<double>(lying, short_payload.data(),
                                                  short_payload.size(), &out)
                   .ok());

  DecodeRequest<double> null_req;
  std::vector<uint8_t> sink;
  EXPECT_EQ(wire::EncodeRequest(null_req, &sink).code(),
            StatusCode::kInvalidArgument);
}

// ------------------------------------------------------------ responses ---

DecodeResponse RandomResponse(std::mt19937_64& rng) {
  DecodeResponse resp;
  resp.request_id = rng();
  resp.kind = static_cast<DecodeKind>(rng() % 3);
  resp.model_version = rng();
  std::uniform_real_distribution<double> val(-1e9, 1e9);
  resp.value = val(rng);
  resp.path.resize(rng() % 200);
  for (int& s : resp.path) s = static_cast<int>(rng() % 64);
  switch (rng() % 4) {
    case 0:
      resp.status = Status::OK();
      break;
    case 1:
      resp.status = Status::InvalidArgument("impossible at frame 3");
      break;
    case 2:
      resp.status = Status::DeadlineExceeded("too slow");
      break;
    default:
      resp.status = Status::Unavailable("shed");
      break;
  }
  return resp;
}

TEST(WireResponseTest, RandomRoundTrips) {
  std::mt19937_64 rng(29);
  for (int iter = 0; iter < 50; ++iter) {
    const DecodeResponse resp = RandomResponse(rng);
    const ModelId model = rng();
    std::vector<uint8_t> frame;
    ASSERT_TRUE(wire::EncodeResponse(resp, model, &frame).ok());
    wire::FrameHeader h;
    DecodeResponse back;
    ASSERT_TRUE(
        wire::DecodeResponseFrame(frame.data(), frame.size(), &h, &back).ok());
    EXPECT_TRUE(h.is_response());
    EXPECT_EQ(h.model, model);
    EXPECT_EQ(back.request_id, resp.request_id);
    EXPECT_EQ(back.kind, resp.kind);
    EXPECT_EQ(back.model_version, resp.model_version);
    EXPECT_EQ(back.value, resp.value);  // bitwise
    EXPECT_EQ(back.path, resp.path);
    EXPECT_EQ(back.status.code(), resp.status.code());
    EXPECT_EQ(back.status.message(), resp.status.message());
  }
}

TEST(WireResponseTest, EveryPrefixTruncationFails) {
  DecodeResponse resp;
  resp.request_id = 9;
  resp.kind = DecodeKind::kViterbi;
  resp.path = {0, 1, 2, 1};
  resp.value = -12.5;
  resp.status = Status::InvalidArgument("impossible at frame 2");
  std::vector<uint8_t> frame;
  ASSERT_TRUE(wire::EncodeResponse(resp, 5, &frame).ok());
  for (size_t n = 0; n < frame.size(); ++n) {
    wire::FrameHeader h;
    DecodeResponse back;
    EXPECT_FALSE(wire::DecodeResponseFrame(frame.data(), n, &h, &back).ok())
        << "prefix " << n << " of " << frame.size();
  }
}

TEST(WireResponseTest, RejectsRequestFrameAndPathOverrun) {
  DecodeResponse resp;
  resp.path = {1, 2};
  std::vector<uint8_t> frame;
  ASSERT_TRUE(wire::EncodeResponse(resp, 1, &frame).ok());
  wire::FrameHeader h;
  ASSERT_TRUE(wire::DecodeHeader(frame.data(), frame.size(), &h).ok());
  DecodeResponse back;

  wire::FrameHeader req_marked = h;
  req_marked.kind &= ~wire::kResponseBit;
  EXPECT_FALSE(wire::DecodeResponsePayload(req_marked,
                                           frame.data() + wire::kHeaderSize,
                                           h.payload_len, &back)
                   .ok());

  // Corrupt the path length so it claims more entries than the payload
  // holds: must be rejected before any buffer is sized from it.
  std::vector<uint8_t> corrupt(frame.begin() + wire::kHeaderSize, frame.end());
  corrupt[20] = 0xFF;
  corrupt[21] = 0xFF;
  EXPECT_FALSE(
      wire::DecodeResponsePayload(h, corrupt.data(), corrupt.size(), &back)
          .ok());
}

TEST(WireResponseTest, OutOfEnumStatusCodeDegradesToInternal) {
  DecodeResponse resp;
  resp.status = Status::Unavailable("x");
  std::vector<uint8_t> frame;
  ASSERT_TRUE(wire::EncodeResponse(resp, 1, &frame).ok());
  frame[wire::kHeaderSize] = 0x63;  // status code 99: a newer peer's code
  wire::FrameHeader h;
  DecodeResponse back;
  ASSERT_TRUE(
      wire::DecodeResponseFrame(frame.data(), frame.size(), &h, &back).ok());
  EXPECT_EQ(back.status.code(), StatusCode::kInternal);
  EXPECT_EQ(back.status.message(), "x");
}

}  // namespace
}  // namespace dhmm::serve
