// The multi-model serving contract (ModelRegistry + FrontEnd):
//  - registry: register/acquire/version bookkeeping, LRU eviction of
//    unpinned models with transparent cold reload from the remembered
//    checkpoint, pinned models never evicted,
//  - hot-reload error path: a failed (torn/corrupt/missing) checkpoint
//    load leaves the previous snapshot serving and surfaces a Status,
//  - loopback integration: wire requests against every registered model
//    decode bitwise-identically to offline single-threaded references,
//  - typed error responses: unknown model -> NotFound, expired deadline ->
//    DeadlineExceeded, full queue -> Unavailable, malformed payload ->
//    InvalidArgument — never a crash or an abort,
//  - steady-state wire round trips at a fixed shape make zero heap
//    allocations (instrumented operator new).
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "hmm/inference.h"
#include "hmm/model.h"
#include "hmm/posterior_decoding.h"
#include "hmm/sampler.h"
#include "hmm/sequence.h"
#include "hmm/serialization.h"
#include "prob/gaussian_emission.h"
#include "prob/rng.h"
#include "obs/metrics.h"
#include "serve/decode_service.h"
#include "serve/frontend.h"
#include "serve/model_registry.h"
#include "serve/session_manager.h"
#include "serve/streaming_decoder.h"
#include "serve/wire_client.h"

// ----------------------------------------------------- allocation counter ---

// Global operator new instrumentation, the serve_test/kernels_test pattern:
// a zero delta across a call proves the call is allocation-free.
namespace {
std::atomic<long> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dhmm {
namespace {

namespace wire = serve::wire;

std::shared_ptr<const hmm::HmmModel<double>> MakeModel(size_t k,
                                                       uint64_t seed) {
  prob::Rng rng(seed);
  linalg::Vector mu(k);
  linalg::Vector sigma(k, 0.8);
  for (size_t i = 0; i < k; ++i) mu[i] = static_cast<double>(i);
  return std::make_shared<const hmm::HmmModel<double>>(
      rng.DirichletSymmetric(k, 2.0), rng.RandomStochasticMatrix(k, k, 2.0),
      std::make_unique<prob::GaussianEmission>(mu, sigma));
}

std::vector<double> MakeObs(const hmm::HmmModel<double>& model, size_t length,
                            uint64_t seed) {
  prob::Rng rng(seed);
  return hmm::SampleSequence(model, length, rng).obs;
}

struct OfflineRef {
  hmm::ViterbiResult viterbi;
  std::vector<int> posterior;
  double log_likelihood;
};

OfflineRef Offline(const hmm::HmmModel<double>& m,
                   const std::vector<double>& obs) {
  OfflineRef ref;
  linalg::Matrix log_b = m.emission->LogProbTable(obs);
  ref.viterbi = hmm::Viterbi(m.pi, m.a, log_b);
  ref.posterior = hmm::PosteriorDecode(m.pi, m.a, log_b);
  ref.log_likelihood = hmm::LogLikelihood(m.pi, m.a, log_b);
  return ref;
}

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// --------------------------------------------------------- ModelRegistry ---

TEST(ModelRegistryTest, RegisterAcquireVersionLifecycle) {
  serve::ModelRegistry<double> registry;
  ASSERT_TRUE(registry.Register(1, MakeModel(3, 10)).ok());
  ASSERT_TRUE(registry.Register(2, MakeModel(4, 20)).ok());

  EXPECT_EQ(registry.ModelVersion(1).value_or(0), 1u);
  EXPECT_EQ(registry.resident_count(), 2u);
  EXPECT_EQ(registry.Ids(), (std::vector<serve::ModelId>{1, 2}));

  // Re-registering a live id is an explicit error, not a silent swap.
  EXPECT_EQ(registry.Register(1, MakeModel(3, 11)).code(),
            StatusCode::kFailedPrecondition);

  ASSERT_TRUE(registry.UpdateModel(1, MakeModel(3, 12)).ok());
  EXPECT_EQ(registry.ModelVersion(1).value_or(0), 2u);

  EXPECT_EQ(registry.Acquire(99).code(), StatusCode::kNotFound);
  EXPECT_EQ(registry.UpdateModel(99, MakeModel(2, 1)).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(registry.ModelVersion(99).code(), StatusCode::kNotFound);

  auto svc = registry.Acquire(1);
  ASSERT_TRUE(svc.ok());
  const std::vector<double> obs = MakeObs(*MakeModel(3, 12), 9, 3);
  auto fut = svc.value()->Submit(serve::DecodeKind::kViterbi, obs);
  EXPECT_TRUE(fut.Wait().status.ok());
}

TEST(ModelRegistryTest, LruEvictsOldestUnpinnedAndColdReloads) {
  const std::string p1 = TempPath("registry_lru_1.hmm");
  const std::string p2 = TempPath("registry_lru_2.hmm");
  const std::string p3 = TempPath("registry_lru_3.hmm");
  auto m1 = MakeModel(3, 31);
  auto m2 = MakeModel(4, 32);
  auto m3 = MakeModel(5, 33);
  ASSERT_TRUE(hmm::SaveHmmToFile(*m1, p1).ok());
  ASSERT_TRUE(hmm::SaveHmmToFile(*m2, p2).ok());
  ASSERT_TRUE(hmm::SaveHmmToFile(*m3, p3).ok());

  serve::ModelRegistryOptions opts;
  opts.max_resident = 2;
  serve::ModelRegistry<double> registry(opts);
  ASSERT_TRUE(registry.RegisterFromFile(1, p1).ok());
  ASSERT_TRUE(registry.RegisterFromFile(2, p2).ok());
  ASSERT_TRUE(registry.RegisterFromFile(3, p3).ok());

  // 1 was least recently touched: registering 3 evicted it.
  EXPECT_EQ(registry.resident_count(), 2u);
  ASSERT_TRUE(registry.Acquire(2).ok());
  ASSERT_TRUE(registry.Acquire(3).ok());
  EXPECT_EQ(registry.resident_count(), 2u);

  // Cold reload: the evicted model comes back from its checkpoint and
  // still decodes bitwise-identically to the in-memory original.
  const std::vector<double> obs = MakeObs(*m1, 11, 5);
  const OfflineRef ref = Offline(*m1, obs);
  auto svc = registry.Acquire(1);
  ASSERT_TRUE(svc.ok());
  auto fut = svc.value()->Submit(serve::DecodeKind::kViterbi, obs);
  const serve::DecodeResult& r = fut.Wait();
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.path, ref.viterbi.path);
  EXPECT_EQ(r.value, ref.viterbi.log_joint);
  fut.Release();
  // Loading 1 pushed the residency back over the cap: still 2 resident.
  EXPECT_EQ(registry.resident_count(), 2u);

  std::filesystem::remove(p1);
  std::filesystem::remove(p2);
  std::filesystem::remove(p3);
}

TEST(ModelRegistryTest, PinnedModelsNeverEvicted) {
  serve::ModelRegistryOptions opts;
  opts.max_resident = 1;
  serve::ModelRegistry<double> registry(opts);
  ASSERT_TRUE(registry.Register(1, MakeModel(3, 41), /*pinned=*/true).ok());
  ASSERT_TRUE(registry.Register(2, MakeModel(3, 42), /*pinned=*/true).ok());
  // Both pinned: the cap cannot be enforced and both stay resident.
  EXPECT_EQ(registry.resident_count(), 2u);
  EXPECT_EQ(registry.Evict(1).code(), StatusCode::kFailedPrecondition);

  // Unpinning re-applies the cap: the stale model goes.
  ASSERT_TRUE(registry.Pin(1, false).ok());
  EXPECT_EQ(registry.resident_count(), 1u);
  // 1 had no checkpoint path: acquiring it is a typed Unavailable.
  EXPECT_EQ(registry.Acquire(1).code(), StatusCode::kUnavailable);
  EXPECT_TRUE(registry.Acquire(2).ok());
}

TEST(ModelRegistryTest, FailedReloadKeepsPreviousSnapshotServing) {
  const std::string path = TempPath("registry_reload.hmm");
  auto m1 = MakeModel(3, 51);
  ASSERT_TRUE(hmm::SaveHmmToFile(*m1, path).ok());
  serve::ModelRegistry<double> registry;
  ASSERT_TRUE(registry.RegisterFromFile(1, path).ok());

  const std::vector<double> obs = MakeObs(*m1, 13, 6);
  const OfflineRef ref = Offline(*m1, obs);

  // Simulate a torn write landing mid-reload: truncate the checkpoint to
  // half its bytes, then reload. The load must fail and the registry must
  // keep serving the registered snapshot.
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  const Status torn = registry.ReloadModel(1);
  EXPECT_FALSE(torn.ok());
  EXPECT_EQ(registry.ModelVersion(1).value_or(0), 1u);  // no version bump

  // Missing file: same contract.
  std::filesystem::remove(path);
  EXPECT_FALSE(registry.ReloadModel(1).ok());

  auto svc = registry.Acquire(1);
  ASSERT_TRUE(svc.ok());
  auto fut = svc.value()->Submit(serve::DecodeKind::kViterbi, obs);
  const serve::DecodeResult& r = fut.Wait();
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.path, ref.viterbi.path);
  EXPECT_EQ(r.value, ref.viterbi.log_joint);
  fut.Release();

  // A good checkpoint reloads and bumps the version.
  auto m2 = MakeModel(3, 52);
  ASSERT_TRUE(hmm::SaveHmmToFile(*m2, path).ok());
  ASSERT_TRUE(registry.ReloadModel(1).ok());
  EXPECT_EQ(registry.ModelVersion(1).value_or(0), 2u);
  EXPECT_EQ(registry.ReloadModel(99).code(), StatusCode::kNotFound);
  std::filesystem::remove(path);
}

// -------------------------------------------------------------- FrontEnd ---

class FrontEndTest : public ::testing::Test {
 protected:
  void StartFrontEnd(const serve::FrontEndOptions& opts = {}) {
    frontend_ =
        std::make_unique<serve::FrontEnd<double>>(&registry_, opts);
    ASSERT_TRUE(frontend_->Start().ok());
  }

  serve::DecodeRequest<double> Request(serve::ModelId model,
                                       serve::DecodeKind kind,
                                       const std::vector<double>* obs,
                                       uint64_t id) {
    serve::DecodeRequest<double> req;
    req.request_id = id;
    req.model = model;
    req.kind = kind;
    req.obs = obs;
    return req;
  }

  serve::ModelRegistry<double> registry_;
  std::unique_ptr<serve::FrontEnd<double>> frontend_;
};

TEST_F(FrontEndTest, LoopbackBitwiseMatchesOfflineForEveryModel) {
  auto m1 = MakeModel(3, 61);
  auto m2 = MakeModel(5, 62);
  ASSERT_TRUE(registry_.Register(1, m1).ok());
  ASSERT_TRUE(registry_.Register(2, m2).ok());
  StartFrontEnd();

  serve::WireClient client;
  ASSERT_TRUE(client.Connect(frontend_->port()).ok());

  uint64_t next_id = 1;
  for (const auto& [model_id, model] :
       {std::pair{serve::ModelId{1}, m1}, std::pair{serve::ModelId{2}, m2}}) {
    for (uint64_t seed = 0; seed < 4; ++seed) {
      const std::vector<double> obs = MakeObs(*model, 15, 70 + seed);
      const OfflineRef ref = Offline(*model, obs);

      serve::DecodeResponse resp;
      wire::FrameHeader h;
      ASSERT_TRUE(client
                      .Call(Request(model_id, serve::DecodeKind::kViterbi,
                                    &obs, next_id),
                            &resp, &h)
                      .ok());
      ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
      EXPECT_EQ(h.model, model_id);
      EXPECT_EQ(resp.request_id, next_id);
      EXPECT_EQ(resp.path, ref.viterbi.path);
      EXPECT_EQ(resp.value, ref.viterbi.log_joint);  // bitwise
      ++next_id;

      ASSERT_TRUE(client
                      .Call(Request(model_id, serve::DecodeKind::kPosterior,
                                    &obs, next_id),
                            &resp)
                      .ok());
      ASSERT_TRUE(resp.status.ok());
      EXPECT_EQ(resp.path, ref.posterior);
      EXPECT_EQ(resp.value, ref.log_likelihood);
      ++next_id;

      ASSERT_TRUE(client
                      .Call(Request(model_id, serve::DecodeKind::kLogLikelihood,
                                    &obs, next_id),
                            &resp)
                      .ok());
      ASSERT_TRUE(resp.status.ok());
      EXPECT_TRUE(resp.path.empty());
      EXPECT_EQ(resp.value, ref.log_likelihood);
      ++next_id;
    }
  }
  EXPECT_EQ(frontend_->requests_served(), next_id - 1);
}

TEST_F(FrontEndTest, PipelinedRequestsAcrossModelsKeepTheirIds) {
  auto m1 = MakeModel(3, 81);
  auto m2 = MakeModel(4, 82);
  ASSERT_TRUE(registry_.Register(1, m1).ok());
  ASSERT_TRUE(registry_.Register(2, m2).ok());
  StartFrontEnd();

  const std::vector<double> obs1 = MakeObs(*m1, 12, 83);
  const std::vector<double> obs2 = MakeObs(*m2, 12, 84);
  const OfflineRef ref1 = Offline(*m1, obs1);
  const OfflineRef ref2 = Offline(*m2, obs2);

  serve::WireClient client;
  ASSERT_TRUE(client.Connect(frontend_->port()).ok());
  constexpr int kRounds = 8;
  for (int i = 0; i < kRounds; ++i) {
    const bool first = i % 2 == 0;
    ASSERT_TRUE(client
                    .Send(Request(first ? 1 : 2, serve::DecodeKind::kViterbi,
                                  first ? &obs1 : &obs2,
                                  static_cast<uint64_t>(i)))
                    .ok());
  }
  for (int i = 0; i < kRounds; ++i) {
    serve::DecodeResponse resp;
    ASSERT_TRUE(client.Receive(&resp).ok());
    // One connection: responses come back in submission order.
    ASSERT_EQ(resp.request_id, static_cast<uint64_t>(i));
    ASSERT_TRUE(resp.status.ok());
    const OfflineRef& ref = i % 2 == 0 ? ref1 : ref2;
    EXPECT_EQ(resp.path, ref.viterbi.path);
    EXPECT_EQ(resp.value, ref.viterbi.log_joint);
  }
}

TEST_F(FrontEndTest, UnknownModelIsTypedNotFound) {
  ASSERT_TRUE(registry_.Register(1, MakeModel(3, 91)).ok());
  StartFrontEnd();
  serve::WireClient client;
  ASSERT_TRUE(client.Connect(frontend_->port()).ok());
  const std::vector<double> obs = {0.5, 1.5};

  serve::DecodeResponse resp;
  ASSERT_TRUE(
      client.Call(Request(999, serve::DecodeKind::kViterbi, &obs, 7), &resp)
          .ok());
  EXPECT_EQ(resp.status.code(), StatusCode::kNotFound);
  EXPECT_EQ(resp.request_id, 7u);
  EXPECT_EQ(frontend_->routing_errors(), 1u);

  // The connection survives a routing error.
  ASSERT_TRUE(
      client.Call(Request(1, serve::DecodeKind::kViterbi, &obs, 8), &resp)
          .ok());
  EXPECT_TRUE(resp.status.ok());
}

TEST_F(FrontEndTest, ExpiredDeadlineIsTypedDeadlineExceeded) {
  ASSERT_TRUE(registry_.Register(1, MakeModel(3, 92)).ok());
  StartFrontEnd();
  serve::WireClient client;
  ASSERT_TRUE(client.Connect(frontend_->port()).ok());
  const std::vector<double> obs = {0.5, 1.5, 2.5};

  // Hold the dispatcher so the deadline provably expires while queued.
  frontend_->PauseDispatch();
  serve::DecodeRequest<double> req =
      Request(1, serve::DecodeKind::kViterbi, &obs, 11);
  req.deadline_micros = 1;
  ASSERT_TRUE(client.Send(req).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  frontend_->ResumeDispatch();

  serve::DecodeResponse resp;
  ASSERT_TRUE(client.Receive(&resp).ok());
  EXPECT_EQ(resp.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(resp.request_id, 11u);
  EXPECT_EQ(frontend_->deadline_expired(), 1u);

  // An ample deadline decodes normally.
  req.deadline_micros = 60'000'000;
  req.request_id = 12;
  ASSERT_TRUE(client.Call(req, &resp).ok());
  EXPECT_TRUE(resp.status.ok());
}

TEST_F(FrontEndTest, FullQueueShedsWithTypedUnavailable) {
  ASSERT_TRUE(registry_.Register(1, MakeModel(3, 93)).ok());
  serve::FrontEndOptions opts;
  opts.queue_capacity = 2;
  StartFrontEnd(opts);
  serve::WireClient client;
  ASSERT_TRUE(client.Connect(frontend_->port()).ok());
  const std::vector<double> obs = {0.5, 1.5, 2.5};

  // With the dispatcher held, only queue_capacity requests fit; the rest
  // must be shed immediately with Unavailable.
  frontend_->PauseDispatch();
  constexpr uint64_t kTotal = 6;
  for (uint64_t i = 0; i < kTotal; ++i) {
    ASSERT_TRUE(
        client.Send(Request(1, serve::DecodeKind::kLogLikelihood, &obs, i))
            .ok());
  }
  // Wait until the IO thread has processed (and shed) the overflow.
  for (int spin = 0; spin < 200 && frontend_->requests_shed() < kTotal - 2;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  frontend_->ResumeDispatch();

  size_t ok = 0, shed = 0;
  for (uint64_t i = 0; i < kTotal; ++i) {
    serve::DecodeResponse resp;
    ASSERT_TRUE(client.Receive(&resp).ok());
    if (resp.status.ok()) {
      ++ok;
    } else {
      EXPECT_EQ(resp.status.code(), StatusCode::kUnavailable);
      ++shed;
    }
  }
  EXPECT_EQ(ok, 2u);
  EXPECT_EQ(shed, kTotal - 2);
  EXPECT_EQ(frontend_->requests_shed(), kTotal - 2);
}

TEST_F(FrontEndTest, MalformedPayloadGetsTypedErrorAndConnectionSurvives) {
  ASSERT_TRUE(registry_.Register(1, MakeModel(3, 94)).ok());
  StartFrontEnd();
  serve::WireClient client;
  ASSERT_TRUE(client.Connect(frontend_->port()).ok());
  const std::vector<double> obs = {0.5, 1.5};

  // Unknown request kind, framing otherwise intact.
  std::vector<uint8_t> frame;
  ASSERT_TRUE(
      wire::EncodeRequest(Request(1, serve::DecodeKind::kViterbi, &obs, 21),
                          &frame)
          .ok());
  frame[6] = 7;  // kind byte
  ASSERT_TRUE(client.SendRaw(frame.data(), frame.size()).ok());
  serve::DecodeResponse resp;
  ASSERT_TRUE(client.Receive(&resp).ok());
  EXPECT_EQ(resp.status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(resp.request_id, 21u);
  EXPECT_EQ(frontend_->protocol_errors(), 1u);

  // Framing was intact, so the connection keeps working.
  ASSERT_TRUE(
      client.Call(Request(1, serve::DecodeKind::kViterbi, &obs, 22), &resp)
          .ok());
  EXPECT_TRUE(resp.status.ok());
}

TEST_F(FrontEndTest, GarbageHeaderClosesConnection) {
  ASSERT_TRUE(registry_.Register(1, MakeModel(3, 95)).ok());
  StartFrontEnd();
  serve::WireClient client;
  ASSERT_TRUE(client.Connect(frontend_->port()).ok());
  std::vector<uint8_t> garbage(wire::kHeaderSize, 0xAB);
  ASSERT_TRUE(client.SendRaw(garbage.data(), garbage.size()).ok());
  serve::DecodeResponse resp;
  EXPECT_FALSE(client.Receive(&resp).ok());  // server closed the stream

  // The server itself is unharmed: a fresh connection decodes fine.
  const std::vector<double> obs = {0.5, 1.5};
  serve::WireClient client2;
  ASSERT_TRUE(client2.Connect(frontend_->port()).ok());
  ASSERT_TRUE(
      client2.Call(Request(1, serve::DecodeKind::kViterbi, &obs, 31), &resp)
          .ok());
  EXPECT_TRUE(resp.status.ok());
}

TEST_F(FrontEndTest, OversizedPayloadGetsOutOfRangeThenClose) {
  ASSERT_TRUE(registry_.Register(1, MakeModel(3, 96)).ok());
  serve::FrontEndOptions opts;
  opts.max_payload_bytes = 256;
  StartFrontEnd(opts);
  serve::WireClient client;
  ASSERT_TRUE(client.Connect(frontend_->port()).ok());

  wire::FrameHeader h;
  h.kind = static_cast<uint8_t>(serve::DecodeKind::kViterbi);
  h.model = 1;
  h.request_id = 41;
  h.payload_len = 4096;  // over the front-end cap, under the wire cap
  uint8_t header[wire::kHeaderSize];
  wire::EncodeHeader(h, header);
  ASSERT_TRUE(client.SendRaw(header, sizeof(header)).ok());

  serve::DecodeResponse resp;
  ASSERT_TRUE(client.Receive(&resp).ok());
  EXPECT_EQ(resp.status.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(resp.request_id, 41u);
  // After the typed response the connection is gone (its framing cannot
  // be resynchronized past an unread payload).
  EXPECT_FALSE(client.Receive(&resp).ok());
}

TEST_F(FrontEndTest, SteadyStateWireRoundTripIsAllocationFree) {
  ASSERT_TRUE(registry_.Register(1, MakeModel(4, 97)).ok());
  StartFrontEnd();
  serve::WireClient client;
  ASSERT_TRUE(client.Connect(frontend_->port()).ok());
  auto snapshot = registry_.Acquire(1);
  ASSERT_TRUE(snapshot.ok());
  const std::vector<double> obs =
      MakeObs(*snapshot.value()->ModelSnapshot(), 17, 98);
  snapshot.value().reset();

  auto round = [&](uint64_t id, serve::DecodeResponse* resp) {
    serve::DecodeRequest<double> req =
        Request(1, serve::DecodeKind::kViterbi, &obs, id);
    return client.Call(req, resp).ok() && resp->status.ok();
  };

  serve::DecodeResponse resp;
  for (uint64_t i = 0; i < 50; ++i) ASSERT_TRUE(round(i, &resp));  // warm-up

  const long before = g_alloc_count.load(std::memory_order_relaxed);
  bool all_ok = true;
  for (uint64_t i = 0; i < 20; ++i) all_ok = all_ok && round(100 + i, &resp);
  const long after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_TRUE(all_ok);
  EXPECT_EQ(after - before, 0)
      << "steady-state wire round trips must not allocate";
}

TEST_F(FrontEndTest, HotSwapDuringTrafficServesBothVersions) {
  auto m1 = MakeModel(3, 99);
  auto m2 = MakeModel(3, 100);
  ASSERT_TRUE(registry_.Register(1, m1).ok());
  StartFrontEnd();
  serve::WireClient client;
  ASSERT_TRUE(client.Connect(frontend_->port()).ok());
  const std::vector<double> obs = MakeObs(*m1, 14, 101);

  serve::DecodeResponse resp;
  ASSERT_TRUE(
      client.Call(Request(1, serve::DecodeKind::kViterbi, &obs, 51), &resp)
          .ok());
  ASSERT_TRUE(resp.status.ok());
  const OfflineRef ref1 = Offline(*m1, obs);
  EXPECT_EQ(resp.path, ref1.viterbi.path);
  EXPECT_EQ(resp.value, ref1.viterbi.log_joint);

  ASSERT_TRUE(registry_.UpdateModel(1, m2).ok());
  ASSERT_TRUE(
      client.Call(Request(1, serve::DecodeKind::kViterbi, &obs, 52), &resp)
          .ok());
  ASSERT_TRUE(resp.status.ok());
  const OfflineRef ref2 = Offline(*m2, obs);
  EXPECT_EQ(resp.path, ref2.viterbi.path);
  EXPECT_EQ(resp.value, ref2.viterbi.log_joint);
  EXPECT_GT(resp.model_version, 1u);  // the swap is visible on the wire
}

// ------------------------------------------------- sessions on the wire ---

TEST_F(FrontEndTest, SessionPushRoundTripsOverTheWire) {
  auto model = MakeModel(4, 141);
  ASSERT_TRUE(registry_.Register(1, model).ok());
  serve::SessionManagerOptions mopts;
  mopts.lag = 2;
  serve::SessionManager<double> sessions(model, mopts);
  frontend_ = std::make_unique<serve::FrontEnd<double>>(&registry_);
  frontend_->EnableSessions(&sessions, 1);
  ASSERT_TRUE(frontend_->Start().ok());
  serve::WireClient client;
  ASSERT_TRUE(client.Connect(frontend_->port()).ok());

  // Reference: the single-stream decoder over the same math, same lag.
  const std::vector<double> obs = MakeObs(*model, 8, 142);
  serve::StreamingOptions sopts;
  sopts.lag = 2;
  serve::StreamingDecoder<double> ref(model, sopts);
  std::vector<int> want_labels;
  for (const double y : obs) {
    if (ref.Push(y)) want_labels.push_back(ref.last_label());
  }
  ASSERT_TRUE(ref.ok());

  // First push: 6 frames in, lag 2 => labels for frames 0..3 come back.
  const std::vector<double> first(obs.begin(), obs.begin() + 6);
  serve::DecodeResponse resp;
  ASSERT_TRUE(
      client.Call(Request(1, serve::DecodeKind::kSessionPush, &first, 61),
                  &resp)
          .ok());
  ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  EXPECT_EQ(resp.request_id, 61u);
  EXPECT_EQ(resp.path,
            std::vector<int>(want_labels.begin(), want_labels.begin() + 4));

  // Second push on the same connection continues the same resident
  // session: two more labels, and the running log-likelihood is the
  // 8-frame prefix value, bitwise.
  const std::vector<double> second(obs.begin() + 6, obs.end());
  ASSERT_TRUE(
      client.Call(Request(1, serve::DecodeKind::kSessionPush, &second, 62),
                  &resp)
          .ok());
  ASSERT_TRUE(resp.status.ok());
  EXPECT_EQ(resp.path,
            std::vector<int>(want_labels.begin() + 4, want_labels.end()));
  EXPECT_EQ(resp.value, ref.log_likelihood());  // bitwise
  EXPECT_EQ(resp.model_version, 1u);
  EXPECT_EQ(sessions.live_sessions(), 1u);

  // Session pushes serve exactly the designated model id.
  ASSERT_TRUE(
      client.Call(Request(2, serve::DecodeKind::kSessionPush, &second, 63),
                  &resp)
          .ok());
  EXPECT_EQ(resp.status.code(), StatusCode::kNotFound);

  frontend_.reset();  // the manager must outlive the front-end threads
}

TEST_F(FrontEndTest, SessionPushWithoutSessionsEnabledIsTypedError) {
  ASSERT_TRUE(registry_.Register(1, MakeModel(3, 143)).ok());
  StartFrontEnd();
  serve::WireClient client;
  ASSERT_TRUE(client.Connect(frontend_->port()).ok());
  const std::vector<double> obs = {0.5, 1.5};
  serve::DecodeResponse resp;
  ASSERT_TRUE(
      client.Call(Request(1, serve::DecodeKind::kSessionPush, &obs, 71),
                  &resp)
          .ok());
  EXPECT_EQ(resp.status.code(), StatusCode::kFailedPrecondition);
  // The batch service path refuses the opcode outright too.
  serve::DecodeService<double> service(MakeModel(3, 144));
  auto fut = service.Submit(serve::DecodeKind::kSessionPush, obs);
  EXPECT_EQ(fut.Wait().status.code(), StatusCode::kInvalidArgument);
}

// --------------------------------------------- WireClient receive deadline ---

TEST_F(FrontEndTest, ReceiveDeadlineExpiresAndConnectionRecovers) {
  ASSERT_TRUE(registry_.Register(1, MakeModel(3, 151)).ok());
  StartFrontEnd();
  serve::WireClientOptions copts;
  copts.receive_timeout_ms = 60;
  serve::WireClient client(copts);
  ASSERT_TRUE(client.Connect(frontend_->port()).ok());
  const std::vector<double> obs = {0.5, 1.5, 2.5};

  // Hold the dispatcher: the response cannot arrive inside the deadline.
  frontend_->PauseDispatch();
  ASSERT_TRUE(
      client.Send(Request(1, serve::DecodeKind::kViterbi, &obs, 81)).ok());
  serve::DecodeResponse resp;
  EXPECT_EQ(client.Receive(&resp).code(), StatusCode::kDeadlineExceeded);

  // The connection was left intact: once the server catches up, the late
  // frame is still readable by a later Receive.
  frontend_->ResumeDispatch();
  Status st = Status::DeadlineExceeded("retry");
  for (int attempt = 0; attempt < 50 && !st.ok(); ++attempt) {
    st = client.Receive(&resp);
  }
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(resp.status.ok());
  EXPECT_EQ(resp.request_id, 81u);

  // The option is Validate()-checked like every serve options struct.
  serve::WireClientOptions bad;
  bad.receive_timeout_ms = -1;
  EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(serve::WireClientOptions{}.Validate().ok());
}

// ------------------------------------------------- registry LRU edge cases ---

TEST(ModelRegistryTest, EvictLruIsTypedWhenNothingIsEvictable) {
  serve::ModelRegistry<double> registry;
  // Empty registry: nothing resident.
  EXPECT_EQ(registry.EvictLru().code(), StatusCode::kFailedPrecondition);

  ASSERT_TRUE(registry.Register(1, MakeModel(3, 161), /*pinned=*/true).ok());
  ASSERT_TRUE(registry.Register(2, MakeModel(3, 162), /*pinned=*/true).ok());
  // Every resident model pinned: a typed refusal, never an abort.
  EXPECT_EQ(registry.EvictLru().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(registry.resident_count(), 2u);

  // One unpinned model makes it the (only) LRU victim.
  ASSERT_TRUE(registry.Pin(2, false).ok());
  EXPECT_TRUE(registry.EvictLru().ok());
  EXPECT_EQ(registry.resident_count(), 1u);
  // 2 had no checkpoint path, so acquiring it now is a typed Unavailable.
  EXPECT_EQ(registry.Acquire(2).code(), StatusCode::kUnavailable);
  EXPECT_TRUE(registry.Acquire(1).ok());
}

TEST(ModelRegistryTest, ColdReloadRacingUpdateModelStaysCoherent) {
  const std::string path = TempPath("registry_race.hmm");
  auto m1 = MakeModel(3, 171);
  auto m2 = MakeModel(3, 172);
  ASSERT_TRUE(hmm::SaveHmmToFile(*m1, path).ok());
  serve::ModelRegistry<double> registry;
  ASSERT_TRUE(registry.RegisterFromFile(1, path).ok());

  // Thread A cold-loads through Acquire while thread B hot-swaps and
  // evicts the same id. Acquired services are shared_ptr snapshots, so
  // every acquired handle must stay usable whatever the interleaving.
  const std::vector<double> obs = MakeObs(*m1, 10, 173);
  std::atomic<int> acquire_failures{0};
  std::thread loader([&] {
    for (int i = 0; i < 200; ++i) {
      auto svc = registry.Acquire(1);
      if (!svc.ok()) {
        ++acquire_failures;
        continue;
      }
      auto fut = svc.value()->Submit(serve::DecodeKind::kLogLikelihood, obs);
      if (!fut.Wait().status.ok()) ++acquire_failures;
    }
  });
  std::thread swapper([&] {
    for (int i = 0; i < 200; ++i) {
      registry.UpdateModel(1, i % 2 == 0 ? m2 : m1);
      registry.Evict(1);  // next Acquire cold-loads from the checkpoint
    }
  });
  loader.join();
  swapper.join();
  // Every interleaving resolves to a served decode: the remembered
  // checkpoint makes eviction transparent to Acquire.
  EXPECT_EQ(acquire_failures.load(), 0);

  // Determinism after the dust settles: evicted state reloads the
  // checkpoint bytes (m1), bitwise.
  registry.Evict(1);
  const OfflineRef ref = Offline(*m1, obs);
  auto svc = registry.Acquire(1);
  ASSERT_TRUE(svc.ok());
  auto fut = svc.value()->Submit(serve::DecodeKind::kViterbi, obs);
  const serve::DecodeResult& r = fut.Wait();
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.path, ref.viterbi.path);
  EXPECT_EQ(r.value, ref.viterbi.log_joint);
  fut.Release();
  std::filesystem::remove(path);
}

TEST_F(FrontEndTest, OptionsValidateRejectsNonsense) {
  serve::FrontEndOptions opts;
  opts.queue_capacity = 0;
  EXPECT_FALSE(opts.Validate().ok());
  opts = {};
  opts.max_payload_bytes = wire::kMaxPayload + 1;
  EXPECT_FALSE(opts.Validate().ok());
  opts = {};
  opts.max_connections = 0;
  EXPECT_FALSE(opts.Validate().ok());
  opts = {};
  opts.poll_timeout_ms = 0;
  EXPECT_FALSE(opts.Validate().ok());
  opts = {};
  opts.max_inflight_batch = 0;
  EXPECT_FALSE(opts.Validate().ok());
  EXPECT_TRUE(serve::FrontEndOptions{}.Validate().ok());
  serve::ModelRegistryOptions ropts;
  ropts.max_resident = 0;
  EXPECT_FALSE(ropts.Validate().ok());
}

// ------------------------------------------------- kStats on the wire ---

TEST_F(FrontEndTest, StatsOpcodeReturnsRenderedSnapshotInline) {
  ASSERT_TRUE(registry_.Register(1, MakeModel(3, 181)).ok());
  StartFrontEnd();
  serve::WireClient client;
  ASSERT_TRUE(client.Connect(frontend_->port()).ok());
  const std::vector<double> obs = {0.5, 1.5, 2.5};

  // Some decode traffic first, so the snapshot has non-zero counters.
  serve::DecodeResponse resp;
  for (uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        client.Call(Request(1, serve::DecodeKind::kViterbi, &obs, i), &resp)
            .ok());
    ASSERT_TRUE(resp.status.ok());
  }

  // The stats query itself: model id is ignored, the observation payload
  // is empty, and the rendered snapshot rides the message field.
  const std::vector<double> empty;
  ASSERT_TRUE(
      client.Call(Request(0, serve::DecodeKind::kStats, &empty, 91), &resp)
          .ok());
  ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  EXPECT_EQ(resp.request_id, 91u);
  EXPECT_EQ(resp.kind, serve::DecodeKind::kStats);
  ASSERT_FALSE(resp.text.empty());
  // The full (unprefixed) snapshot: front-end counters, the latency
  // histogram expansion, and the startup ISA gauge all show up.
  EXPECT_NE(resp.text.find("frontend.frames_accepted "), std::string::npos)
      << resp.text;
  EXPECT_NE(resp.text.find("frontend.requests.stats "), std::string::npos);
  EXPECT_NE(resp.text.find("frontend.request_latency_us.p99 "),
            std::string::npos);
  EXPECT_NE(resp.text.find("startup.kernel_isa "), std::string::npos);

  // The in-process accessor renders only the "frontend." prefix.
  const std::string s = frontend_->StatsString();
  EXPECT_NE(s.find("frontend.frames_accepted "), std::string::npos);
  EXPECT_EQ(s.find("startup."), std::string::npos);

  // A later decode on the same connection still works: stats queries are
  // ordinary frames, not a connection mode.
  ASSERT_TRUE(
      client.Call(Request(1, serve::DecodeKind::kViterbi, &obs, 92), &resp)
          .ok());
  EXPECT_TRUE(resp.status.ok());
}

TEST_F(FrontEndTest, StatsFrameSurvivesEveryPrefixTruncation) {
  ASSERT_TRUE(registry_.Register(1, MakeModel(3, 182)).ok());
  StartFrontEnd();

  std::vector<uint8_t> frame;
  const std::vector<double> empty;
  ASSERT_TRUE(
      wire::EncodeRequest(Request(0, serve::DecodeKind::kStats, &empty, 93),
                          &frame)
          .ok());

  // Every strict prefix of the frame, sent and abandoned: the server must
  // treat each as an incomplete frame and drop the connection on EOF
  // without crashing, wedging, or leaking the IO thread.
  for (size_t len = 0; len < frame.size(); ++len) {
    serve::WireClient partial;
    ASSERT_TRUE(partial.Connect(frontend_->port()).ok()) << "len=" << len;
    if (len > 0) {
      ASSERT_TRUE(partial.SendRaw(frame.data(), len).ok());
    }
    partial.Close();
  }

  // A kStats frame with an intact header but a lying payload (declares 5
  // observations, carries none) gets the typed error, kind preserved, and
  // the connection survives — framing itself was coherent.
  serve::WireClient client;
  ASSERT_TRUE(client.Connect(frontend_->port()).ok());
  std::vector<uint8_t> bad = frame;
  bad[32] = 4;  // payload_len stays 4 (just the count field)...
  bad[wire::kHeaderSize] = 5;  // ...but the count now claims 5 obs
  ASSERT_TRUE(client.SendRaw(bad.data(), bad.size()).ok());
  serve::DecodeResponse resp;
  ASSERT_TRUE(client.Receive(&resp).ok());
  EXPECT_EQ(resp.status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(resp.request_id, 93u);
  EXPECT_EQ(resp.kind, serve::DecodeKind::kStats);

  // After all that abuse, the server still answers a well-formed stats
  // query on the surviving connection.
  ASSERT_TRUE(
      client.Call(Request(0, serve::DecodeKind::kStats, &empty, 94), &resp)
          .ok());
  ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  EXPECT_FALSE(resp.text.empty());
}

// --------------------------------------------- counter reconciliation ---

TEST(FrontEndObsTest, PerKindCountersReconcileExactlyForEveryWorkerCount) {
  // The per-kind counters partition accepted frames: for any decode
  // worker count, sum over kinds == frames_accepted, exactly. Counters
  // are process-wide, so everything is asserted on before/after deltas.
  for (const int workers : {1, 2, 4}) {
    serve::ModelRegistryOptions ropts;
    ropts.service.num_threads = workers;
    serve::ModelRegistry<double> registry(ropts);
    ASSERT_TRUE(registry.Register(1, MakeModel(3, 183)).ok());
    serve::FrontEnd<double> frontend(&registry);
    ASSERT_TRUE(frontend.Start().ok());
    serve::WireClient client;
    ASSERT_TRUE(client.Connect(frontend.port()).ok());
    const std::vector<double> obs = {0.5, 1.5, 2.5, 3.5};
    const std::vector<double> empty;

    const obs::Snapshot before =
        obs::Registry::Global().TakeSnapshot("frontend.");

    // Distinct per-kind counts catch a mismapped counter index; the
    // session pushes (sessions not enabled => FailedPrecondition) prove
    // "accepted" means well-formed, not successfully served.
    const struct {
      serve::DecodeKind kind;
      const std::vector<double>* payload;
      uint64_t count;
    } mix[] = {{serve::DecodeKind::kViterbi, &obs, 7},
               {serve::DecodeKind::kPosterior, &obs, 5},
               {serve::DecodeKind::kLogLikelihood, &obs, 3},
               {serve::DecodeKind::kSessionPush, &obs, 2},
               {serve::DecodeKind::kStats, &empty, 1}};
    uint64_t id = 0, total = 0;
    serve::DecodeResponse resp;
    for (const auto& m : mix) {
      for (uint64_t i = 0; i < m.count; ++i, ++total) {
        serve::DecodeRequest<double> req;
        req.request_id = ++id;
        req.model = 1;
        req.kind = m.kind;
        req.obs = m.payload;
        ASSERT_TRUE(client.Call(req, &resp).ok());
      }
    }

    const obs::Snapshot after =
        obs::Registry::Global().TakeSnapshot("frontend.");
    const auto delta = [&](const std::string& name) {
      return after.ValueOf(name) - before.ValueOf(name);
    };
    EXPECT_EQ(delta("frontend.requests.viterbi"), 7.0) << workers;
    EXPECT_EQ(delta("frontend.requests.posterior"), 5.0) << workers;
    EXPECT_EQ(delta("frontend.requests.loglik"), 3.0) << workers;
    EXPECT_EQ(delta("frontend.requests.session_push"), 2.0) << workers;
    EXPECT_EQ(delta("frontend.requests.stats"), 1.0) << workers;
    EXPECT_EQ(delta("frontend.frames_accepted"),
              static_cast<double>(total))
        << workers;
    EXPECT_EQ(delta("frontend.request_latency_us.count"),
              static_cast<double>(total))
        << workers;
  }
}

// ------------------------------------------- WireClient connect deadline ---

TEST(WireClientConnectTest, ValidateAndRefusalAreTyped) {
  serve::WireClientOptions bad;
  bad.connect_timeout_ms = -1;
  EXPECT_EQ(bad.Validate().code(), StatusCode::kInvalidArgument);

  // A dead port refuses outright: that is a connect error carrying the
  // SO_ERROR/errno detail, not a DeadlineExceeded — the deadline is only
  // for connects that never resolve.
  uint16_t dead_port = 0;
  {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    socklen_t alen = sizeof(addr);
    ASSERT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &alen),
              0);
    dead_port = ntohs(addr.sin_port);
    ::close(fd);  // bound but never listened: the port now refuses
  }
  serve::WireClientOptions copts;
  copts.connect_timeout_ms = 500;
  serve::WireClient client(copts);
  const Status st = client.Connect(dead_port);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.code(), StatusCode::kDeadlineExceeded) << st.ToString();
  EXPECT_FALSE(client.connected());
}

TEST(WireClientConnectTest, ConnectTimeoutIsTypedDeadlineExceeded) {
  // A listener that never accepts, with the smallest backlog: once the
  // kernel accept queue fills, further SYNs are dropped and the connect
  // hangs — exactly what connect_timeout_ms exists to bound.
  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(lfd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(lfd, /*backlog=*/0), 0);
  socklen_t alen = sizeof(addr);
  ASSERT_EQ(::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &alen), 0);
  const uint16_t port = ntohs(addr.sin_port);

  serve::WireClientOptions copts;
  copts.connect_timeout_ms = 250;
  // Fillers saturate the backlog; the exact capacity is a kernel detail,
  // so connect until one times out.
  std::vector<std::unique_ptr<serve::WireClient>> fillers;
  bool saw_timeout = false;
  for (int attempt = 0; attempt < 16 && !saw_timeout; ++attempt) {
    auto c = std::make_unique<serve::WireClient>(copts);
    const auto t0 = std::chrono::steady_clock::now();
    const Status st = c->Connect(port);
    if (st.ok()) {
      fillers.push_back(std::move(c));
      continue;
    }
    ASSERT_EQ(st.code(), StatusCode::kDeadlineExceeded) << st.ToString();
    EXPECT_NE(st.message().find("connect deadline"), std::string::npos);
    EXPECT_FALSE(c->connected());
    // The deadline was honored, not busy-failed and not ignored.
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - t0);
    EXPECT_GE(elapsed.count(), 200);
    EXPECT_LT(elapsed.count(), 5000);
    saw_timeout = true;
  }
  EXPECT_TRUE(saw_timeout)
      << "no connect timed out against a saturated backlog";
  ::close(lfd);
}

}  // namespace
}  // namespace dhmm
