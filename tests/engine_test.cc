// The batched inference engine: workspace kernels must reproduce the
// allocating kernels bitwise, pinned pre-refactor values must survive the
// cached-shifted-emissions and flat-backpointer rewrites, and every
// batched reduction must be invariant to the thread count.
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/dhmm_trainer.h"
#include "data/toy.h"
#include "hmm/engine.h"
#include "hmm/inference.h"
#include "hmm/posterior_decoding.h"
#include "hmm/trainer.h"
#include "prob/gaussian_emission.h"
#include "prob/rng.h"

// ----------------------------------------------------- allocation counter ---

// Byte-counting operator new instrumentation (the serve_test pattern, with
// sizes instead of counts): the checkpointed-sweep memory test pins how
// many bytes an E-step over a million-frame sequence actually allocates.
namespace {
std::atomic<long long> g_alloc_bytes{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_bytes.fetch_add(static_cast<long long>(size),
                          std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_bytes.fetch_add(static_cast<long long>(size),
                          std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dhmm::hmm {
namespace {

// Fixed 3-state, 4-frame chain used by the pinned regression tests.
struct PinnedChain {
  linalg::Vector pi{0.5, 0.3, 0.2};
  linalg::Matrix a{{0.6, 0.3, 0.1}, {0.2, 0.5, 0.3}, {0.3, 0.3, 0.4}};
  linalg::Matrix log_b{{-0.1, -1.2, -2.3},
                       {-1.0, -0.2, -0.7},
                       {-2.0, -0.3, -0.4},
                       {-0.5, -0.9, -0.1}};
};

// Values computed by the seed implementation (which called ShiftedEmissions
// up to three times per frame and used nested-vector backpointers) before
// the workspace refactor. The rewrite must reproduce them to 1e-12.
TEST(EngineRegressionTest, ForwardBackwardPinnedValues) {
  PinnedChain c;
  ForwardBackwardResult fb = ForwardBackward(c.pi, c.a, c.log_b);
  EXPECT_NEAR(fb.log_likelihood, -2.3606710163800129, 1e-12);

  const double gamma[4][3] = {
      {0.75266503919421801, 0.2086403271407247, 0.038694633665057244},
      {0.25799299104274015, 0.60056175305671933, 0.1414452559005405},
      {0.089128556159183928, 0.56674813017857262, 0.34412331366224341},
      {0.26565712157670701, 0.27519040703209308, 0.45915247139119991}};
  const double xi[3][3] = {
      {0.34716877050779182, 0.60757366383055422, 0.14504415205779636},
      {0.15642284133557552, 0.6965333159862771, 0.52299405305416402},
      {0.10918705693526387, 0.13839331045055389, 0.27668283584202347}};
  for (size_t t = 0; t < 4; ++t) {
    for (size_t i = 0; i < 3; ++i) {
      EXPECT_NEAR(fb.gamma(t, i), gamma[t][i], 1e-12) << "t=" << t;
    }
  }
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(fb.xi_sum(i, j), xi[i][j], 1e-12) << "i=" << i;
    }
  }
}

TEST(EngineRegressionTest, ViterbiAndLogLikelihoodPinnedValues) {
  PinnedChain c;
  ViterbiResult vit = Viterbi(c.pi, c.a, c.log_b);
  EXPECT_NEAR(vit.log_joint, -4.4942399697717628, 1e-12);
  EXPECT_EQ(vit.path, (std::vector<int>{0, 1, 1, 2}));
  EXPECT_NEAR(LogLikelihood(c.pi, c.a, c.log_b), -2.3606710163800129, 1e-12);
}

// Equal delta scores must resolve to the lowest state index, so storage
// rewrites of the backpointer table cannot silently change decoded paths.
TEST(ViterbiTest, TieBreaksToLowestStateIndex) {
  const size_t k = 3, big_t = 5;
  linalg::Vector pi(k, 1.0 / 3.0);
  linalg::Matrix a(k, k, 1.0 / 3.0);
  linalg::Matrix log_b(big_t, k, -1.25);  // every state ties at every frame
  ViterbiResult vit = Viterbi(pi, a, log_b);
  for (size_t t = 0; t < big_t; ++t) {
    EXPECT_EQ(vit.path[t], 0) << "t=" << t;
  }
}

TEST(ViterbiTest, TieBreakWithPartialTies) {
  // States 1 and 2 tie as predecessors of every state; state 0 is worse.
  linalg::Vector pi{0.0, 0.5, 0.5};
  linalg::Matrix a{{0.8, 0.1, 0.1}, {0.25, 0.5, 0.25}, {0.25, 0.25, 0.5}};
  linalg::Matrix log_b(3, 3, -0.5);
  ViterbiResult vit = Viterbi(pi, a, log_b);
  // pi ties states 1 and 2; both rows give the same transition scores into
  // their best successors, so the backtrack must consistently pick the
  // lower-numbered option.
  EXPECT_EQ(vit.path[0], 1);
}

TEST(WorkspaceTest, MatchesAllocatingFormAcrossShapes) {
  prob::Rng rng(91);
  InferenceWorkspace ws;  // deliberately reused dirty across all shapes
  ForwardBackwardResult batched;
  ViterbiResult decoded;
  const std::vector<std::pair<size_t, size_t>> shapes = {
      {5, 6}, {15, 24}, {26, 8}, {3, 250}, {15, 250}, {2, 1}};
  for (auto [k, big_t] : shapes) {
    linalg::Vector pi = rng.DirichletSymmetric(k, 1.5);
    linalg::Matrix a = rng.RandomStochasticMatrix(k, k, 1.5);
    linalg::Matrix log_b(big_t, k);
    for (size_t t = 0; t < big_t; ++t) {
      for (size_t i = 0; i < k; ++i) log_b(t, i) = -8.0 * rng.Uniform();
    }

    ForwardBackwardResult fresh = ForwardBackward(pi, a, log_b);
    ForwardBackward(pi, a, log_b, &ws, &batched);
    EXPECT_DOUBLE_EQ(batched.log_likelihood, fresh.log_likelihood);
    ASSERT_EQ(batched.gamma.rows(), big_t);
    for (size_t t = 0; t < big_t; ++t) {
      for (size_t i = 0; i < k; ++i) {
        ASSERT_DOUBLE_EQ(batched.gamma(t, i), fresh.gamma(t, i));
      }
    }
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = 0; j < k; ++j) {
        ASSERT_DOUBLE_EQ(batched.xi_sum(i, j), fresh.xi_sum(i, j));
      }
    }

    EXPECT_DOUBLE_EQ(LogLikelihood(pi, a, log_b, &ws),
                     LogLikelihood(pi, a, log_b));

    ViterbiResult vit_fresh = Viterbi(pi, a, log_b);
    Viterbi(pi, a, log_b, &ws, &decoded);
    EXPECT_DOUBLE_EQ(decoded.log_joint, vit_fresh.log_joint);
    EXPECT_EQ(decoded.path, vit_fresh.path);
  }
}

// ----------------------------------------------------------- BatchEStep ---

hmm::Dataset<double> MakeToyData(size_t num_sequences) {
  prob::Rng rng(1234);
  return data::GenerateToyDataset(/*sigma=*/0.4, num_sequences, /*length=*/6,
                                  rng);
}

TEST(BatchEStepTest, MatchesHandRolledSequentialEStep) {
  Dataset<double> data = MakeToyData(24);
  HmmModel<double> model = data::ToyGroundTruthModel(0.4);
  const size_t k = model.num_states();

  // Reference: the seed FitEm E-step, spelled out sequentially.
  linalg::Vector pi_acc(k);
  linalg::Matrix trans_acc(k, k);
  double loglik = 0.0;
  for (const auto& seq : data) {
    linalg::Matrix log_b = model.emission->LogProbTable(seq.obs);
    ForwardBackwardResult fb = ForwardBackward(model.pi, model.a, log_b);
    loglik += fb.log_likelihood;
    for (size_t i = 0; i < k; ++i) pi_acc[i] += fb.gamma(0, i);
    trans_acc += fb.xi_sum;
  }

  for (int threads : {1, 2, 4}) {
    EStepStats stats = BatchEStep(model, data, BatchOptions{threads});
    EXPECT_DOUBLE_EQ(stats.log_likelihood, loglik) << threads;
    for (size_t i = 0; i < k; ++i) {
      EXPECT_DOUBLE_EQ(stats.pi_acc[i], pi_acc[i]) << threads;
      for (size_t j = 0; j < k; ++j) {
        EXPECT_DOUBLE_EQ(stats.trans_acc(i, j), trans_acc(i, j)) << threads;
      }
    }
  }
}

TEST(BatchEStepTest, EngineReuseAcrossIterationsIsStable) {
  Dataset<double> data = MakeToyData(16);
  HmmModel<double> model = data::ToyGroundTruthModel(0.4);
  BatchEmEngine<double> engine(BatchOptions{2});
  EStepStats first = engine.EStep(model, data);
  for (int rep = 0; rep < 3; ++rep) {
    EStepStats again = engine.EStep(model, data);
    EXPECT_DOUBLE_EQ(again.log_likelihood, first.log_likelihood);
  }
  EXPECT_DOUBLE_EQ(engine.LogLikelihood(model, data),
                   DatasetLogLikelihood(model, data));
  EXPECT_EQ(engine.Decode(model, data), DecodeDataset(model, data));
}

TEST(BatchEStepTest, ZeroThreadsResolvesToHardware) {
  BatchEmEngine<double> engine{BatchOptions{0}};
  EXPECT_GE(engine.num_threads(), 1);
}

// ------------------------------------------- thread-count determinism ---

TEST(EmDeterminismTest, FitEmLoglikHistoryBitwiseInvariantToThreads) {
  Dataset<double> data = MakeToyData(40);
  prob::Rng init_rng(77);
  HmmModel<double> init = data::ToyRandomInit(init_rng);

  EmOptions options;
  options.max_iters = 8;
  options.num_threads = 1;
  HmmModel<double> m1 = init;
  EmResult r1 = FitEm(&m1, data, options);
  ASSERT_EQ(r1.iterations, 8);

  for (int threads : {2, 4}) {
    options.num_threads = threads;
    HmmModel<double> mn = init;
    EmResult rn = FitEm(&mn, data, options);
    ASSERT_EQ(rn.loglik_history.size(), r1.loglik_history.size()) << threads;
    for (size_t i = 0; i < r1.loglik_history.size(); ++i) {
      // Bitwise: the engine reduces per-sequence statistics in sequence
      // order regardless of which worker produced them.
      EXPECT_EQ(rn.loglik_history[i], r1.loglik_history[i])
          << "threads=" << threads << " iter=" << i;
    }
    EXPECT_EQ(rn.final_loglik, r1.final_loglik) << threads;
    for (size_t i = 0; i < m1.pi.size(); ++i) {
      EXPECT_EQ(mn.pi[i], m1.pi[i]) << threads;
      for (size_t j = 0; j < m1.pi.size(); ++j) {
        EXPECT_EQ(mn.a(i, j), m1.a(i, j)) << threads;
      }
    }
  }
}

TEST(EmDeterminismTest, FitDiversifiedLoglikHistoryBitwiseInvariant) {
  Dataset<double> data = MakeToyData(24);
  prob::Rng init_rng(78);
  HmmModel<double> init = data::ToyRandomInit(init_rng);

  core::DiversifiedEmOptions options;
  options.alpha = 0.5;
  options.max_iters = 4;
  options.num_threads = 1;
  HmmModel<double> m1 = init;
  core::DiversifiedFitResult r1 = core::FitDiversifiedHmm(&m1, data, options);

  for (int threads : {2, 4}) {
    options.num_threads = threads;
    HmmModel<double> mn = init;
    core::DiversifiedFitResult rn =
        core::FitDiversifiedHmm(&mn, data, options);
    ASSERT_EQ(rn.loglik_history.size(), r1.loglik_history.size()) << threads;
    for (size_t i = 0; i < r1.loglik_history.size(); ++i) {
      EXPECT_EQ(rn.loglik_history[i], r1.loglik_history[i])
          << "threads=" << threads << " iter=" << i;
      EXPECT_EQ(rn.map_objective_history[i], r1.map_objective_history[i])
          << "threads=" << threads << " iter=" << i;
    }
    EXPECT_EQ(rn.final_map_objective, r1.final_map_objective) << threads;
  }
}

// -------------------------------------------- checkpointed sweep bitwise ---

linalg::Matrix RandomLogB(size_t big_t, size_t k, prob::Rng& rng) {
  linalg::Matrix log_b(big_t, k);
  for (size_t t = 0; t < big_t; ++t) {
    for (size_t i = 0; i < k; ++i) log_b(t, i) = -8.0 * rng.Uniform();
  }
  return log_b;
}

TEST(CheckpointedFbTest, BitwiseGridAgainstFullSweep) {
  prob::Rng rng(4242);
  InferenceWorkspace ws_full;
  InferenceWorkspace ws_cp;  // deliberately reused dirty across the grid
  ForwardBackwardResult full;
  ForwardBackwardResult cp;
  for (size_t big_t : {size_t{1}, size_t{2}, size_t{1000}, size_t{1001},
                       size_t{4096}}) {
    for (size_t k : {size_t{1}, size_t{5}, size_t{20}}) {
      linalg::Vector pi = rng.DirichletSymmetric(k, 1.5);
      linalg::Matrix a = rng.RandomStochasticMatrix(k, k, 1.5);
      linalg::Matrix log_b = RandomLogB(big_t, k, rng);
      ASSERT_TRUE(TryForwardBackward(pi, a, log_b, &ws_full, &full).ok());
      // panel 0 = auto ceil(sqrt(T)); the explicit sizes hit the extreme
      // panelings (every frame a checkpoint / one giant panel).
      for (size_t panel : {size_t{0}, size_t{1}, size_t{7}, big_t}) {
        ASSERT_TRUE(TryForwardBackwardCheckpointed(pi, a, log_b, panel,
                                                   &ws_cp, &cp)
                        .ok());
        // Bitwise, not approximate: the checkpointed sweep replays the
        // identical kernel calls on identical input bits.
        ASSERT_EQ(cp.log_likelihood, full.log_likelihood)
            << "T=" << big_t << " k=" << k << " panel=" << panel;
        size_t gamma_diff = 0;
        size_t xi_diff = 0;
        for (size_t t = 0; t < big_t; ++t) {
          for (size_t i = 0; i < k; ++i) {
            gamma_diff += cp.gamma(t, i) != full.gamma(t, i);
          }
        }
        for (size_t i = 0; i < k; ++i) {
          for (size_t j = 0; j < k; ++j) {
            xi_diff += cp.xi_sum(i, j) != full.xi_sum(i, j);
          }
        }
        EXPECT_EQ(gamma_diff, 0u)
            << "T=" << big_t << " k=" << k << " panel=" << panel;
        EXPECT_EQ(xi_diff, 0u)
            << "T=" << big_t << " k=" << k << " panel=" << panel;
      }
    }
  }
}

TEST(CheckpointedFbTest, RowsLogLikelihoodMatchesTableBitwise) {
  prob::Rng rng(4243);
  InferenceWorkspace ws;
  for (size_t big_t : {size_t{1}, size_t{37}, size_t{1000}}) {
    const size_t k = 6;
    linalg::Vector pi = rng.DirichletSymmetric(k, 1.5);
    linalg::Matrix a = rng.RandomStochasticMatrix(k, k, 1.5);
    linalg::Matrix log_b = RandomLogB(big_t, k, rng);
    double from_table = 0.0;
    double from_rows = 0.0;
    ASSERT_TRUE(TryLogLikelihood(pi, a, log_b, &ws, &from_table).ok());
    ASSERT_TRUE(
        TryLogLikelihoodRows(pi, a, MatrixLogBRows(log_b), &ws, &from_rows)
            .ok());
    EXPECT_EQ(from_rows, from_table);
  }
}

TEST(CheckpointedFbTest, PosteriorDecodePathsBitwiseIdentical) {
  prob::Rng rng(4244);
  InferenceWorkspace ws;
  ForwardBackwardResult fb_full;
  ForwardBackwardResult fb_cp;
  std::vector<int> path_full;
  std::vector<int> path_cp;
  for (size_t big_t : {size_t{1}, size_t{300}, size_t{1001}}) {
    const size_t k = 5;
    linalg::Vector pi = rng.DirichletSymmetric(k, 1.5);
    linalg::Matrix a = rng.RandomStochasticMatrix(k, k, 1.5);
    linalg::Matrix log_b = RandomLogB(big_t, k, rng);
    ASSERT_TRUE(
        TryPosteriorDecode(pi, a, log_b, &ws, &fb_full, &path_full).ok());
    // threshold 1 forces every sequence through the checkpointed sweep.
    ASSERT_TRUE(TryPosteriorDecode(pi, a, log_b, /*threshold=*/1, &ws,
                                   &fb_cp, &path_cp)
                    .ok());
    EXPECT_EQ(path_cp, path_full) << big_t;
    EXPECT_EQ(fb_cp.log_likelihood, fb_full.log_likelihood) << big_t;
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = 0; j < k; ++j) {
        ASSERT_EQ(fb_cp.xi_sum(i, j), fb_full.xi_sum(i, j)) << big_t;
      }
    }
  }
}

TEST(CheckpointedFbTest, FitEmBitwiseInvariantToCheckpointingAndThreads) {
  Dataset<double> data = MakeToyData(32);
  prob::Rng init_rng(79);
  HmmModel<double> init = data::ToyRandomInit(init_rng);

  EmOptions options;
  options.max_iters = 6;
  options.num_threads = 1;
  options.checkpoint_threshold_frames = 0;  // full path everywhere
  HmmModel<double> m_full = init;
  EmResult r_full = FitEm(&m_full, data, options);

  for (int threads : {1, 2, 4}) {
    options.num_threads = threads;
    options.checkpoint_threshold_frames = 1;  // checkpointed everywhere
    HmmModel<double> m_cp = init;
    EmResult r_cp = FitEm(&m_cp, data, options);
    ASSERT_EQ(r_cp.loglik_history.size(), r_full.loglik_history.size());
    for (size_t i = 0; i < r_full.loglik_history.size(); ++i) {
      EXPECT_EQ(r_cp.loglik_history[i], r_full.loglik_history[i])
          << "threads=" << threads << " iter=" << i;
    }
    for (size_t i = 0; i < m_full.pi.size(); ++i) {
      EXPECT_EQ(m_cp.pi[i], m_full.pi[i]) << threads;
      for (size_t j = 0; j < m_full.pi.size(); ++j) {
        EXPECT_EQ(m_cp.a(i, j), m_full.a(i, j)) << threads;
      }
    }
  }
}

TEST(CheckpointedFbTest, FitDiversifiedBitwiseInvariantToCheckpointing) {
  Dataset<double> data = MakeToyData(20);
  prob::Rng init_rng(80);
  HmmModel<double> init = data::ToyRandomInit(init_rng);

  core::DiversifiedEmOptions options;
  options.alpha = 0.5;
  options.max_iters = 3;
  options.num_threads = 2;
  options.checkpoint_threshold_frames = 0;
  HmmModel<double> m_full = init;
  core::DiversifiedFitResult r_full =
      core::FitDiversifiedHmm(&m_full, data, options);

  options.checkpoint_threshold_frames = 1;
  HmmModel<double> m_cp = init;
  core::DiversifiedFitResult r_cp =
      core::FitDiversifiedHmm(&m_cp, data, options);
  ASSERT_EQ(r_cp.loglik_history.size(), r_full.loglik_history.size());
  for (size_t i = 0; i < r_full.loglik_history.size(); ++i) {
    EXPECT_EQ(r_cp.loglik_history[i], r_full.loglik_history[i]) << i;
    EXPECT_EQ(r_cp.map_objective_history[i], r_full.map_objective_history[i])
        << i;
  }
  EXPECT_EQ(r_cp.final_map_objective, r_full.final_map_objective);
}

// The memory contract the whole tentpole exists for: an E-step over one
// million frames at k = 20 through the checkpointed sweep. The full path
// would materialize the T x k emission table plus a T x k gamma — 160 MB
// each; the checkpointed path allocates O(sqrt(T) * k) panels plus the
// O(T) scale vector and observation copies, tens of MB in total. The bound
// below fails loudly if anyone reintroduces a T x k buffer on this path.
TEST(CheckpointedMemoryTest, MillionFrameEStepStaysSubTableMemory) {
  const size_t k = 20;
  const size_t frames = 1000000;
  prob::Rng rng(81);
  HmmModel<double> model(
      rng.DirichletSymmetric(k, 2.0), rng.RandomStochasticMatrix(k, k, 2.0),
      std::make_unique<prob::GaussianEmission>(
          prob::GaussianEmission::RandomInit(k, rng)));
  Dataset<double> data(1);
  data[0].obs.resize(frames);
  for (size_t t = 0; t < frames; ++t) data[0].obs[t] = rng.Gaussian(3.0, 2.0);

  BatchEmEngine<double> engine(
      BatchOptions{/*num_threads=*/1, /*checkpoint_threshold_frames=*/4096});
  std::unique_ptr<prob::EmissionModel<double>> em_acc = model.emission->Clone();
  em_acc->BeginAccumulate();
  EStepStats stats;
  stats.Reset(k);

  const long long before = g_alloc_bytes.load(std::memory_order_relaxed);
  engine.AccumulateEStep(model, data, &stats, em_acc.get());
  const long long delta =
      g_alloc_bytes.load(std::memory_order_relaxed) - before;

  EXPECT_EQ(stats.frames, frames);
  EXPECT_GT(stats.sequences, 0u);
  // One full T x k table alone is 160 MB; everything the checkpointed
  // E-step allocates together must stay far under that.
  EXPECT_LT(delta, 40ll << 20) << "checkpointed E-step allocated " << delta;
}

}  // namespace
}  // namespace dhmm::hmm
